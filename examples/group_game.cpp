// Location-based game: two peer groups (two "neighbourhoods") update a
// shared world; inside a group the PSI commit variant arbitrates grabbing
// a unique item (no double-ownership anomaly — the paper's Pokémon Go
// motivation, section 2.3); a player then migrates between groups.
//
//   $ ./group_game
#include <cstdio>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"
#include "crdt/registers.hpp"

namespace {

using namespace colony;

const ObjectKey kWorldScore{"game", "world-score"};
const ObjectKey kRareItem{"game", "rare-item-owner"};

}  // namespace

int main() {
  ClusterConfig cfg;
  cfg.num_dcs = 1;
  Cluster cluster(cfg);

  PeerGroupParent& downtown = cluster.add_group_parent(0);
  PeerGroupParent& uptown = cluster.add_group_parent(0);

  EdgeNode& ana = cluster.add_edge(ClientMode::kPeerGroup, 0, 1);
  EdgeNode& ben = cluster.add_edge(ClientMode::kPeerGroup, 0, 2);
  EdgeNode& cho = cluster.add_edge(ClientMode::kPeerGroup, 0, 3);
  cluster.wire_peer_links({downtown.id(), ana.id(), ben.id()});
  cluster.wire_peer_links({uptown.id(), cho.id()});
  // Pre-wire ben <-> uptown for his later move.
  cluster.wire_peer_links({uptown.id(), ben.id()});

  Session sa(ana), sb(ben), sc(cho);
  ana.join_group(downtown.id(), [](Result<void>) {});
  ben.join_group(downtown.id(), [](Result<void>) {});
  cho.join_group(uptown.id(), [](Result<void>) {});
  cluster.run_for(500 * kMillisecond);
  for (Session* s : {&sa, &sb, &sc}) {
    s->subscribe({kWorldScore, kRareItem}, [](Result<void>) {});
  }
  cluster.run_for(500 * kMillisecond);

  // Everyone scores points (commutative, no coordination needed).
  for (Session* s : {&sa, &sb, &sc}) {
    auto txn = s->begin();
    s->increment(txn, kWorldScore, 10);
    (void)s->commit(std::move(txn));
  }
  cluster.run_for(3 * kSecond);
  std::printf("world score at the DC: %lld (all 3 players counted)\n",
              static_cast<long long>(
                  dynamic_cast<const PnCounter*>(
                      cluster.dc(0).store().current(kWorldScore))
                      ->value()));

  // Ana and Ben, standing next to each other, both try to grab the rare
  // item. The PSI variant orders the grabs up-front: exactly one wins.
  std::printf("\nana and ben both grab the rare item (PSI commit):\n");
  auto grab = [&](Session& s, const char* name) {
    auto txn = s.begin();
    s.assign(txn, kRareItem, name);
    s.commit_ordered(std::move(txn), [name](Result<Dot> r) {
      std::printf("  %s: %s\n", name,
                  r.ok() ? "got it!" : "aborted (someone was faster)");
    });
  };
  grab(sa, "ana");
  grab(sb, "ben");
  cluster.run_for(3 * kSecond);
  const auto* owner =
      dynamic_cast<const LwwRegister*>(cluster.dc(0).store().current(kRareItem));
  std::printf("item owner according to the cloud: %s — no double-ownership "
              "anomaly\n",
              owner != nullptr ? owner->value().c_str() : "(none)");

  // Ben walks uptown: leave one group, join the other (section 5.2).
  std::printf("\nben migrates from downtown to uptown...\n");
  ben.leave_group([](Result<void>) {});
  cluster.run_for(500 * kMillisecond);
  ben.join_group(uptown.id(), [](Result<void> r) {
    std::printf("ben joined uptown: %s\n",
                r.ok() ? "seamless" : r.error().message.c_str());
  });
  cluster.run_for(1 * kSecond);
  sb.subscribe({kWorldScore, kRareItem}, [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  auto txn = sb.begin();
  sb.increment(txn, kWorldScore, 5);
  (void)sb.commit(std::move(txn));
  cluster.run_for(3 * kSecond);
  std::printf("world score after ben scored uptown: %lld\n",
              static_cast<long long>(
                  dynamic_cast<const PnCounter*>(
                      cluster.dc(0).store().current(kWorldScore))
                      ->value()));
  std::printf("downtown members: %zu, uptown members: %zu\n",
              downtown.member_count(), uptown.member_count());
  return 0;
}
