// Offline notes: a phone takes notes while disconnected, reconnects, and a
// laptop sees them; then the phone migrates to another DC without losing
// anything (paper sections 3.7-3.8: asynchronous commit, symbolic commit
// vectors, migration with dot-based duplicate filtering).
//
//   $ ./offline_notes
#include <cstdio>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/rga.hpp"

namespace {

using namespace colony;

const ObjectKey kNotes{"notes", "todo"};

void show(const char* who, const EdgeNode& node) {
  const auto* seq = dynamic_cast<const Rga*>(node.cached(kNotes));
  std::printf("%s:", who);
  if (seq == nullptr || seq->size() == 0) {
    std::printf(" (empty)\n");
    return;
  }
  for (const auto& line : seq->values()) std::printf("\n   - %s", line.c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  ClusterConfig cfg;
  cfg.num_dcs = 2;  // two DCs so the phone can migrate
  Cluster cluster(cfg);

  EdgeNode& phone = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EdgeNode& laptop = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session on_phone(phone), on_laptop(laptop);

  on_laptop.subscribe({kNotes}, [](Result<void>) {});
  cluster.run_for(500 * kMillisecond);

  std::printf("-- phone goes into a tunnel (offline) --\n");
  cluster.set_uplink(phone.id(), 0, false);
  cluster.set_uplink(phone.id(), 1, false);

  for (const auto* note : {"buy milk", "review Colony paper", "call mum"}) {
    auto txn = on_phone.begin();
    on_phone.append(txn, kNotes, note);
    const auto r = on_phone.commit(std::move(txn));
    std::printf("noted '%s' -> %s\n", note,
                r.ok() ? "committed locally" : r.error().message.c_str());
  }
  show("phone (offline)", phone);
  std::printf("unacknowledged on phone: %zu; laptop still sees nothing\n",
              phone.unacked_count());
  show("laptop", laptop);

  std::printf("\n-- phone back online --\n");
  cluster.set_uplink(phone.id(), 0, true);
  cluster.set_uplink(phone.id(), 1, true);
  cluster.run_for(8 * kSecond);
  std::printf("unacknowledged on phone: %zu\n", phone.unacked_count());
  show("laptop (synced)", laptop);

  std::printf("\n-- phone travels: migrates from DC0 to DC1 --\n");
  phone.migrate_to_dc(cluster.dc_node_id(1), [](Result<void> r) {
    std::printf("migration: %s\n",
                r.ok() ? "seamless" : r.error().message.c_str());
  });
  cluster.run_for(2 * kSecond);

  auto txn = on_phone.begin();
  on_phone.append(txn, kNotes, "note taken via DC1");
  (void)on_phone.commit(std::move(txn));
  cluster.run_for(5 * kSecond);

  show("phone ", phone);
  show("laptop", laptop);
  std::printf("\nDC0 sequenced %llu txns, DC1 sequenced %llu — the phone's "
              "note chain stayed intact across the move\n",
              static_cast<unsigned long long>(cluster.dc(0).committed()),
              static_cast<unsigned long long>(cluster.dc(1).committed()));
  return 0;
}
