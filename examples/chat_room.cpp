// Chat room: three users in a peer group exchange messages; the group goes
// offline, keeps chatting, and syncs with the cloud on reconnection —
// the core ColonyChat scenario (paper sections 5, 7.1).
//
//   $ ./chat_room
#include <cstdio>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/rga.hpp"

namespace {

using namespace colony;

const ObjectKey kChannel{"chat", "room.general"};

void post(Session& session, const std::string& text) {
  auto txn = session.begin();
  session.append(txn, kChannel, text);
  const auto r = session.commit(std::move(txn));
  std::printf("  %-28s -> commit %s\n", text.c_str(),
              r.ok() ? "ok (local, instant)" : r.error().message.c_str());
}

void show(const char* who, const EdgeNode& node) {
  const auto* seq = dynamic_cast<const Rga*>(node.cached(kChannel));
  std::printf("%s sees:", who);
  if (seq == nullptr) {
    std::printf(" (nothing)\n");
    return;
  }
  for (const auto& line : seq->values()) std::printf(" [%s]", line.c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  Cluster cluster(ClusterConfig{});
  PeerGroupParent& parent = cluster.add_group_parent(0);

  EdgeNode& alice = cluster.add_edge(ClientMode::kPeerGroup, 0, 1);
  EdgeNode& bob = cluster.add_edge(ClientMode::kPeerGroup, 0, 2);
  EdgeNode& carol = cluster.add_edge(ClientMode::kPeerGroup, 0, 3);
  cluster.wire_peer_links({parent.id(), alice.id(), bob.id(), carol.id()});

  Session sa(alice), sb(bob), sc(carol);
  for (EdgeNode* node : {&alice, &bob, &carol}) {
    node->join_group(parent.id(), [](Result<void> r) {
      if (!r.ok()) std::printf("join failed: %s\n", r.error().message.c_str());
    });
  }
  cluster.run_for(500 * kMillisecond);
  for (Session* s : {&sa, &sb, &sc}) {
    s->subscribe({kChannel}, [](Result<void>) {});
  }
  cluster.run_for(500 * kMillisecond);
  std::printf("group formed: %zu members, epoch %llu\n\n",
              parent.member_count(),
              static_cast<unsigned long long>(parent.epoch()));

  std::printf("alice posts:\n");
  post(sa, "alice: hi all");
  cluster.run_for(200 * kMillisecond);
  std::printf("bob replies:\n");
  post(sb, "bob: hey alice");
  cluster.run_for(500 * kMillisecond);
  show("carol", carol);

  std::printf("\n-- the group loses its cloud uplink (still chatting) --\n");
  cluster.set_uplink(parent.id(), 0, false);
  post(sc, "carol: are we offline?");
  post(sa, "alice: yes, and it still works");
  cluster.run_for(500 * kMillisecond);
  show("alice", alice);
  show("bob  ", bob);
  show("carol", carol);
  std::printf("DC committed so far: %llu (the offline posts are queued at "
              "the sync point)\n",
              static_cast<unsigned long long>(cluster.dc(0).committed()));

  std::printf("\n-- uplink restored --\n");
  cluster.set_uplink(parent.id(), 0, true);
  cluster.run_for(8 * kSecond);
  std::printf("DC committed now: %llu; sync-point backlog: %zu\n",
              static_cast<unsigned long long>(cluster.dc(0).committed()),
              parent.forward_backlog());

  // A latecomer outside the group reads the channel from the DC.
  EdgeNode& dave = cluster.add_edge(ClientMode::kClientCache, 0, 4);
  Session sd(dave);
  auto txn = sd.begin();
  sd.read_sequence(txn, kChannel,
                   [](Result<std::vector<std::string>> r, ReadSource src) {
                     std::printf("\ndave (not in the group, via %s) sees %zu "
                                 "messages, in the same causal order:\n",
                                 to_string(src), r.value().size());
                     for (const auto& line : r.value()) {
                       std::printf("  [%s]\n", line.c_str());
                     }
                   });
  cluster.run_for(1 * kSecond);
  return 0;
}
