// Quickstart: the Figure 3 program in C++.
//
// Builds a one-DC cluster with a single edge client, increments a counter,
// then updates a grow-only map holding a register and a set in one atomic
// transaction, and reads everything back.
//
//   $ ./quickstart
#include <cstdio>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/maps.hpp"
#include "crdt/or_set.hpp"
#include "crdt/registers.hpp"

int main() {
  using namespace colony;

  // One DC, one edge client connected over a cellular-grade uplink.
  Cluster cluster(ClusterConfig{});
  EdgeNode& device = cluster.add_edge(ClientMode::kClientCache, /*dc=*/0,
                                      /*user=*/1);
  Session session(device);

  // let cnt = dc_connection.counter("myCounter"); cnt.increment(3)
  {
    auto txn = session.begin();
    session.increment(txn, {"app", "myCounter"}, 3);
    const auto committed = session.commit(std::move(txn));
    std::printf("counter transaction committed locally as %s\n",
                committed.value().to_string().c_str());
  }

  // tx.update([ map.register("a").assign(42), map.set("e").addAll(...) ])
  {
    auto txn = session.begin();
    session.map_assign(txn, {"app", "myMap"}, "a", "42");
    for (const auto* element : {"1", "2", "3", "4"}) {
      session.map_add_to_set(txn, {"app", "myMap"}, "e", element);
    }
    const auto committed = session.commit(std::move(txn));
    std::printf("map transaction committed locally as %s\n",
                committed.value().to_string().c_str());
  }

  // Run the world until the asynchronous DC acknowledgements land.
  cluster.run_for(2 * kSecond);
  std::printf("unacknowledged transactions: %zu (all acked by the DC)\n",
              device.unacked_count());

  // await peer_connection.gmap("myMap").set("e").read()
  auto txn = session.begin();
  session.read_counter(txn, {"app", "myCounter"},
                       [](Result<std::int64_t> value, ReadSource source) {
                         std::printf("myCounter = %lld (served from %s)\n",
                                     static_cast<long long>(value.value()),
                                     to_string(source));
                       });
  session.read_object(
      txn, {"app", "myMap"}, CrdtType::kGMap,
      [](Result<std::shared_ptr<Crdt>> map, ReadSource source) {
        const auto* gmap = dynamic_cast<const GMap*>(map.value().get());
        std::printf("myMap.a = %s (served from %s)\n",
                    gmap->field_as<LwwRegister>("a")->value().c_str(),
                    to_string(source));
        std::printf("myMap.e = {");
        for (const auto& element : gmap->field_as<OrSet>("e")->elements()) {
          std::printf(" %s", element.c_str());
        }
        std::printf(" }\n");
      });
  cluster.run_for(1 * kSecond);

  std::printf("\nstate vector of the device: %s — one entry per DC, not per "
              "replica\n",
              device.state_vector().to_string().c_str());
  return 0;
}
