// Secure shared board: access control with right inheritance, deferred
// post-commit enforcement (a banned user's posts are masked, transitively),
// and end-to-end sealing so the cloud only ever stores ciphertext
// (paper sections 2.4, 5.3, 6.4).
//
//   $ ./secure_board
#include <cstdio>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"
#include "crdt/registers.hpp"
#include "security/crypto_sim.hpp"
#include "security/sealed.hpp"

namespace {

using namespace colony;

constexpr UserId kAlice = 1;  // administrator
constexpr UserId kBob = 2;    // collaborator
constexpr UserId kMallory = 3;

const ObjectKey kBoard{"board", "pinned-count"};

long long board_at_dc(Cluster& cluster) {
  const auto* c =
      dynamic_cast<const PnCounter*>(cluster.dc(0).store().current(kBoard));
  return c == nullptr ? 0 : c->value();
}

}  // namespace

int main() {
  Cluster cluster(ClusterConfig{});
  EdgeNode& alice = cluster.add_edge(ClientMode::kClientCache, 0, kAlice);
  EdgeNode& bob = cluster.add_edge(ClientMode::kClientCache, 0, kBob);
  EdgeNode& mallory = cluster.add_edge(ClientMode::kClientCache, 0, kMallory);
  Session sa(alice), sb(bob), sm(mallory);

  // Alice installs the policy: she owns everything; "board" objects inherit
  // from the bucket; Bob may write the bucket.
  {
    auto txn = sa.begin();
    sa.grant(txn, {"_sys", kAlice, security::Permission::kOwn});
    sa.grant(txn, {"board", kAlice, security::Permission::kOwn});
    sa.grant(txn, {"board", kBob, security::Permission::kWrite});
    sa.grant(txn, {"board", kBob, security::Permission::kRead});
    (void)sa.commit(std::move(txn));
  }
  cluster.run_for(2 * kSecond);
  std::printf("policy installed; DC knows %zu grant(s)\n",
              cluster.dc(0).acl()->grant_count());
  // (Bob keeps a read grant throughout; only his write right is revoked
  // below — readers can still receive session keys.)

  auto pin = [&](Session& s, const char* who) {
    auto txn = s.begin();
    s.increment(txn, kBoard, 1);
    (void)s.commit(std::move(txn));  // always succeeds locally...
    std::printf("%s pinned an item (commits locally)\n", who);
  };

  pin(sb, "bob");
  pin(sm, "mallory");  // ...but mallory has no grant
  cluster.run_for(3 * kSecond);
  std::printf("board count at the DC: %lld — mallory's pin was masked by "
              "the deferred ACL check\n\n",
              board_at_dc(cluster));

  // Alice revokes Bob: his *later* pins disappear, the earlier one stays.
  {
    auto read_txn = sa.begin();
    sa.read_object(read_txn, security::acl_object_key(), CrdtType::kAcl,
                   [](Result<std::shared_ptr<Crdt>>, ReadSource) {});
    cluster.run_for(1 * kSecond);
    auto txn = sa.begin();
    sa.revoke(txn, {"board", kBob, security::Permission::kWrite});
    (void)sa.commit(std::move(txn));
  }
  cluster.run_for(3 * kSecond);
  pin(sb, "bob (after revocation)");
  cluster.run_for(3 * kSecond);
  std::printf("board count at the DC: %lld — the pre-revocation pin "
              "survives, the new one is masked\n\n",
              board_at_dc(cluster));

  // End-to-end sealing: open sessions to get the bucket key, write through
  // the sealed API; the cloud replicates ciphertext it cannot read.
  const ObjectKey kDrafts{"board", "drafts"};
  sa.open_session({"board"}, [](Result<void>) {});
  sb.open_session({"board"}, [](Result<void>) {});
  sb.subscribe({kDrafts}, [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  auto sealed_txn = sa.begin();
  const bool sealed_ok = sa.sealed_update(
      sealed_txn, kDrafts, CrdtType::kLwwRegister,
      LwwRegister::prepare_assign("merger plans: top secret",
                                  alice.make_arb()));
  std::printf("\nalice writes a sealed draft: %s\n",
              sealed_ok ? "sealed with the session key" : "NO KEY");
  (void)sa.commit(std::move(sealed_txn));
  cluster.run_for(3 * kSecond);

  const auto* at_dc = dynamic_cast<const security::SealedObject*>(
      cluster.dc(0).store().current(kDrafts));
  std::printf("the DC replicated %zu sealed entr%s — ciphertext only\n",
              at_dc->entry_count(), at_dc->entry_count() == 1 ? "y" : "ies");

  const auto bob_view = sb.sealed_read(kDrafts, CrdtType::kLwwRegister);
  std::printf("bob decrypts with the shared session key: \"%s\"\n",
              bob_view.has_value()
                  ? dynamic_cast<const LwwRegister*>(bob_view->get())
                        ->value()
                        .c_str()
                  : "FAILED");
  return 0;
}
