// Analytics offload: a resource-hungry transaction migrates to the core
// cloud (paper section 3.9). The phone records activity locally (fast,
// offline-capable); the heavy scan over many objects runs at the DC with
// the same snapshot semantics as a local run — it sees all of the phone's
// own writes, including unacknowledged ones.
//
//   $ ./analytics_offload
#include <cstdio>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"

namespace {

using namespace colony;

ObjectKey day_key(int day) {
  return ObjectKey{"fitness", "steps.day" + std::to_string(day)};
}

}  // namespace

int main() {
  Cluster cluster(ClusterConfig{});
  EdgeNode& phone = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(phone);

  // A month of step counts, committed locally in quick succession — the
  // last few are still unacknowledged when the analytics query fires.
  constexpr int kDays = 30;
  for (int day = 0; day < kDays; ++day) {
    auto txn = session.begin();
    session.increment(txn, day_key(day), 4000 + 137 * day);
    (void)session.commit(std::move(txn));
  }
  std::printf("phone committed %d daily counters; %zu still await the DC "
              "ack\n",
              kDays, phone.unacked_count());

  // The scan over all 30 objects would be 30 cache-miss fetches at the
  // edge; migrate it instead (reads execute at the DC, section 3.9).
  std::vector<ObjectKey> all_days;
  for (int day = 0; day < kDays; ++day) all_days.push_back(day_key(day));

  session.migrate_transaction(
      all_days, {}, [&](Result<proto::DcExecuteResp> r) {
        if (!r.ok()) {
          std::printf("migrated query failed: %s\n",
                      r.error().message.c_str());
          return;
        }
        long long total = 0;
        int missing = 0;
        for (const auto& snap : r.value().read_values) {
          if (snap.state.empty()) {
            ++missing;
            continue;
          }
          PnCounter c;
          c.restore(snap.state);
          total += c.value();
        }
        std::printf("cloud-side scan: total steps = %lld over %d days "
                    "(%d missing)\n",
                    total, kDays, missing);
        long long expected = 0;
        for (int d = 0; d < kDays; ++d) expected += 4000 + 137 * d;
        std::printf("expected        = %lld — the migrated transaction saw "
                    "every local write, acknowledged or not\n",
                    expected);
      });

  cluster.run_for(10 * kSecond);
  std::printf("phone unacked after the run: %zu\n", phone.unacked_count());
  return 0;
}
