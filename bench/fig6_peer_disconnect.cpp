// Figure 6 (paper section 7.3.1): impact of a peer-group member
// disconnection. Same workload as Figure 5; one member loses its peer links
// at t=25s and reconnects at t=45s. The member keeps working locally; upon
// rejoining there is only a sub-millisecond bump while its cache refreshes
// with the content the group published meanwhile.
#include <cstdio>

#include "bench_util.hpp"
#include "chat/driver.hpp"

int main() {
  using namespace colony;
  benchutil::header("Figure 6: impact of a peer-group member disconnection",
                    "Toumlilt et al., Middleware'21, Fig. 6");

  ClusterConfig cluster_cfg;
  cluster_cfg.num_dcs = 1;
  cluster_cfg.seed = 13;
  Cluster cluster(cluster_cfg);

  chat::ChatDriverConfig cfg;
  cfg.mode = ClientMode::kPeerGroup;
  cfg.clients = 12;
  cfg.group_size = 12;
  cfg.trace.num_users = 36;
  cfg.trace.num_workspaces = 1;
  cfg.trace.channels_per_workspace = 20;
  cfg.think_time = 150 * kMillisecond;
  cfg.cache_capacity = 16;
  cfg.seed = 23;
  chat::ChatDriver driver(cluster, cfg);
  constexpr std::size_t kVictim = 5;
  driver.spotlight(kVictim);
  driver.start();

  constexpr SimTime kDisconnectAt = 25 * kSecond;
  constexpr SimTime kReconnectAt = 45 * kSecond;
  constexpr SimTime kEnd = 70 * kSecond;

  const auto group_nodes = driver.group_node_ids(0);
  cluster.scheduler().at(kDisconnectAt, [&] {
    cluster.set_peer_links(driver.client(kVictim).id(), group_nodes, false);
    cluster.set_uplink(driver.client(kVictim).id(), 0, false);
    std::printf("[t=25s] member disconnected from its peer group\n");
  });
  cluster.scheduler().at(kReconnectAt, [&] {
    cluster.set_peer_links(driver.client(kVictim).id(), group_nodes, true);
    cluster.set_uplink(driver.client(kVictim).id(), 0, true);
    driver.rejoin_group(kVictim);
    std::printf("[t=45s] member reconnected and rejoined\n");
  });

  cluster.run_until(kEnd);
  driver.stop();

  benchutil::section("per-second response time, disconnected member");
  benchutil::print_series_buckets(driver.spotlight_series(), kEnd);

  benchutil::section("per-second response time, rest of the group");
  benchutil::print_series_buckets(driver.series(ReadSource::kLocal), kEnd);
  benchutil::print_series_buckets(driver.series(ReadSource::kPeer), kEnd);

  benchutil::section("summary (paper: latency only slightly impacted, "
                     "sub-millisecond bump on rejoin)");
  benchutil::print_latency_line("member (all reads)",
                                driver.spotlight_latency());
  benchutil::print_latency_line("group client hits",
                                driver.latency(ReadSource::kLocal));
  benchutil::print_latency_line("group peer hits",
                                driver.latency(ReadSource::kPeer));

  const auto& victim = driver.spotlight_series();
  std::printf(
      "\nmember mean before/during/after disconnection: %.3f / %.3f / %.3f "
      "ms\n",
      victim.mean_in(5 * kSecond, kDisconnectAt),
      victim.mean_in(kDisconnectAt, kReconnectAt),
      victim.mean_in(kReconnectAt, kEnd));
  std::printf("DC committed %llu transactions in total (the member's offline "
              "work included after rejoin)\n",
              static_cast<unsigned long long>(cluster.dc(0).committed()));
  return 0;
}
