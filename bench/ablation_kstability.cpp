// K-stability ablation (paper section 3.8): K trades edge-visibility
// latency against migration safety. K=1 shows updates to the edge as soon
// as one DC has them but risks causal incompatibility when the edge
// migrates to a DC that has not; K=N waits for every DC, so a single slow
// DC delays all edge visibility.
#include <cstdio>

#include "bench_util.hpp"
#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"

namespace colony {
namespace {

const ObjectKey kX{"app", "x"};

struct KResult {
  std::size_t k = 0;
  double mean_lag_ms = 0;
  double p99_lag_ms = 0;
  int migration_failures = 0;
  int migration_attempts = 0;
};

KResult run_k(std::size_t k) {
  ClusterConfig cfg;
  cfg.num_dcs = 3;
  cfg.k_stability = k;
  cfg.seed = 100 + k;
  // A slow, jittery mesh makes the trade-off visible.
  cfg.inter_dc = sim::LatencyModel{250 * kMillisecond, 200 * kMillisecond};
  Cluster cluster(cfg);

  EdgeNode& writer = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EdgeNode& observer = cluster.add_edge(ClientMode::kClientCache, 0, 2);
  EdgeNode& mobile = cluster.add_edge(ClientMode::kClientCache, 0, 3);
  Session ws(writer), os(observer), mos(mobile);
  os.subscribe({kX}, [](Result<void>) {});
  mos.subscribe({kX}, [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  KResult result;
  result.k = k;
  LatencyHistogram lag;

  constexpr int kRounds = 30;
  for (int round = 1; round <= kRounds; ++round) {
    auto txn = ws.begin();
    ws.increment(txn, kX, 1);
    (void)ws.commit(std::move(txn));
    const SimTime committed_at = cluster.now();

    // Wait (sampling) until the observer's cache shows the new value.
    for (int step = 0; step < 4000; ++step) {
      cluster.run_for(5 * kMillisecond);
      const auto* c = dynamic_cast<const PnCounter*>(observer.cached(kX));
      if (c != nullptr && c->value() >= round) break;
    }
    lag.record(cluster.now() - committed_at);

    // Migration probe: the mobile node saw the K-stable update at DC0 and
    // immediately hops to DC1. With small K, DC1 may lack its causal past.
    ++result.migration_attempts;
    bool failed = false;
    bool done = false;
    mobile.migrate_to_dc(cluster.dc_node_id(round % 2 == 0 ? 1 : 2),
                         [&](Result<void> r) {
                           failed = !r.ok() && r.error().code ==
                                                   Error::Code::kIncompatible;
                           done = true;
                         });
    cluster.run_for(1 * kSecond);
    if (!done || failed) ++result.migration_failures;
    // Go home for the next round.
    mobile.migrate_to_dc(cluster.dc_node_id(0), [](Result<void>) {});
    cluster.run_for(2 * kSecond);
  }

  result.mean_lag_ms = lag.mean_us() / 1000.0;
  result.p99_lag_ms = benchutil::ms(lag.percentile_us(99));
  return result;
}

}  // namespace
}  // namespace colony

int main() {
  using namespace colony;
  benchutil::header("K-stability ablation",
                    "Toumlilt et al., Middleware'21, section 3.8 "
                    "(K trade-off discussion)");

  std::printf("\nslow 3-DC mesh (250ms +-200ms); 30 write/observe/migrate "
              "rounds per K\n\n");
  std::printf("%4s %18s %16s %22s\n", "K", "visibility lag", "p99 lag",
              "migration failures");
  for (const std::size_t k : {1u, 2u, 3u}) {
    const KResult r = run_k(k);
    std::printf("%4zu %16.1fms %14.1fms %15d / %d\n", r.k, r.mean_lag_ms,
                r.p99_lag_ms, r.migration_failures, r.migration_attempts);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: lag grows with K; migration failures shrink "
              "with K (paper: K=1 high incompatibility risk, K=N slowest "
              "DC gates visibility).\n");
  return 0;
}
