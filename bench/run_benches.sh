#!/usr/bin/env bash
# Perf gate runner: executes the micro-benchmark suite, writes a
# machine-readable BENCH_micro.json (ns/op plus allocs/op counters), and
# compares wall-clock numbers against the committed baseline
# bench/BENCH_baseline.json.
#
# A benchmark more than 25% slower than its baseline entry fails the gate
# (exit 1) — unless BENCH_WARN_ONLY=1, which downgrades regressions to
# warnings (the ctest `bench-smoke` registration uses that, so shared CI
# machines cannot flake the build; run this script directly before merging
# perf-sensitive changes).
#
# Environment:
#   BUILD_DIR      build tree holding bench/micro_benchmarks (default: build)
#   BENCH_OUT      output JSON path (default: <repo>/BENCH_micro.json)
#   BENCH_FILTER   --benchmark_filter regex (default: whole suite)
#   BENCH_WARN_ONLY=1  report regressions without failing
#   BENCH_MIN_SCALING  required multi-worker speedup for workers:N series
#                      (default 2.0; armed only on hosts with >= 4 CPUs —
#                      single-core machines report the scaling table
#                      informationally)
#
# To refresh the baseline after an intentional perf change:
#   bench/run_benches.sh && cp BENCH_micro.json bench/BENCH_baseline.json
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="${BENCH_OUT:-$ROOT/BENCH_micro.json}"
BASELINE="$ROOT/bench/BENCH_baseline.json"
BIN="$BUILD/bench/micro_benchmarks"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (cmake --build $BUILD --target micro_benchmarks)" >&2
  exit 2
fi

args=(--benchmark_out="$OUT" --benchmark_out_format=json
      --benchmark_min_time=0.05)
if [ -n "${BENCH_FILTER:-}" ]; then
  args+=("--benchmark_filter=${BENCH_FILTER}")
fi

echo "== running micro benchmarks -> $OUT"
"$BIN" "${args[@]}"

if [ ! -f "$BASELINE" ]; then
  echo "== no committed baseline at $BASELINE; skipping comparison"
  echo "   (cp $OUT $BASELINE to create one)"
  exit 0
fi

warn_flag=()
if [ "${BENCH_WARN_ONLY:-0}" = "1" ]; then
  warn_flag=(--warn-only)
fi
python3 "$ROOT/bench/compare_bench.py" "$BASELINE" "$OUT" \
  --threshold 1.25 --min-scaling "${BENCH_MIN_SCALING:-2.0}" "${warn_flag[@]}"
