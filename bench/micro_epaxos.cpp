// Wall-clock micro-costs of the EPaxos message path (in-memory transport):
// full propose->commit->execute cycles, with and without interference.
#include <benchmark/benchmark.h>

#include <deque>
#include <memory>

#include "consensus/epaxos.hpp"

namespace colony::consensus {
namespace {

/// Replicas wired through an in-memory FIFO (no simulated latency: this
/// measures CPU cost per consensus cycle).
class Loop {
 public:
  explicit Loop(std::size_t n) {
    std::vector<NodeId> ids;
    for (std::size_t i = 0; i < n; ++i) ids.push_back(i + 1);
    for (std::size_t i = 0; i < n; ++i) {
      replicas_.push_back(std::make_unique<Epaxos>(
          ids[i], ids,
          [this, self = ids[i]](NodeId to, const EpaxosMsg& msg) {
            queue_.push_back({self, to, msg});
          },
          [this](const Command&) { ++executed_; }));
    }
  }

  Epaxos& replica(std::size_t i) { return *replicas_[i]; }

  void pump() {
    while (!queue_.empty()) {
      auto [from, to, msg] = queue_.front();
      queue_.pop_front();
      replicas_[to - 1]->on_message(from, msg);
    }
  }

  std::uint64_t executed() const { return executed_; }

 private:
  struct Queued {
    NodeId from, to;
    EpaxosMsg msg;
  };
  std::vector<std::unique_ptr<Epaxos>> replicas_;
  std::deque<Queued> queue_;
  std::uint64_t executed_ = 0;
};

void BM_EpaxosNonInterfering(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Loop loop(n);
  std::uint64_t cmd = 0;
  for (auto _ : state) {
    loop.replica(cmd % n).propose(
        Command{Dot{1, ++cmd},
                {ObjectKey{"b", "k" + std::to_string(cmd)}},
                {}});
    loop.pump();
  }
  benchmark::DoNotOptimize(loop.executed());
}
BENCHMARK(BM_EpaxosNonInterfering)->Arg(3)->Arg(5)->Arg(9);

void BM_EpaxosInterfering(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Loop loop(n);
  std::uint64_t cmd = 0;
  const std::vector<ObjectKey> hot{{"b", "hot"}};
  for (auto _ : state) {
    loop.replica(cmd % n).propose(Command{Dot{1, ++cmd}, hot, {}});
    loop.pump();
  }
  benchmark::DoNotOptimize(loop.executed());
}
BENCHMARK(BM_EpaxosInterfering)->Arg(3)->Arg(5)->Arg(9);

void BM_EpaxosConcurrentConflicts(benchmark::State& state) {
  std::uint64_t cmd = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Loop loop(5);
    state.ResumeTiming();
    const std::vector<ObjectKey> hot{{"b", "hot"}};
    for (std::size_t r = 0; r < 5; ++r) {
      loop.replica(r).propose(Command{Dot{r + 1, ++cmd}, hot, {}});
    }
    loop.pump();
    benchmark::DoNotOptimize(loop.executed());
  }
}
BENCHMARK(BM_EpaxosConcurrentConflicts);

}  // namespace
}  // namespace colony::consensus
