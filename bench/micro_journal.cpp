// Wall-clock micro-costs of the versioned store: journal append,
// materialisation at a cut, base advancement, snapshot export/import.
#include <benchmark/benchmark.h>

#include "crdt/counter.hpp"
#include "storage/hash_ring.hpp"
#include "storage/journal_store.hpp"

namespace colony {
namespace {

const ObjectKey kKey{"bench", "object"};

void BM_JournalApply(benchmark::State& state) {
  JournalStore store;
  const Bytes op = PnCounter::prepare_add(1);
  std::uint64_t n = 0;
  for (auto _ : state) {
    store.apply(kKey, CrdtType::kPnCounter, Dot{1, ++n}, op);
  }
}
BENCHMARK(BM_JournalApply);

void BM_JournalMaterializeAtCut(benchmark::State& state) {
  JournalStore store;
  const Bytes op = PnCounter::prepare_add(1);
  const auto len = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 1; i <= len; ++i) {
    store.apply(kKey, CrdtType::kPnCounter, Dot{1, i}, op);
  }
  const std::uint64_t cut = len / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.materialize(
        kKey, [cut](const Dot& d) { return d.counter <= cut; }));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_JournalMaterializeAtCut)->Range(64, 8192)->Complexity();

void BM_JournalAdvanceBase(benchmark::State& state) {
  const Bytes op = PnCounter::prepare_add(1);
  for (auto _ : state) {
    state.PauseTiming();
    JournalStore store;
    for (std::uint64_t i = 1; i <= 1024; ++i) {
      store.apply(kKey, CrdtType::kPnCounter, Dot{1, i}, op);
    }
    state.ResumeTiming();
    store.advance_base(kKey, [](const Dot& d) { return d.counter <= 512; });
  }
}
BENCHMARK(BM_JournalAdvanceBase);

void BM_SnapshotExportImport(benchmark::State& state) {
  JournalStore source;
  const Bytes op = PnCounter::prepare_add(1);
  for (std::uint64_t i = 1; i <= 512; ++i) {
    source.apply(kKey, CrdtType::kPnCounter, Dot{1, i}, op);
  }
  for (auto _ : state) {
    JournalStore dest;
    dest.import_snapshot(*source.export_snapshot(kKey));
    benchmark::DoNotOptimize(dest.current(kKey));
  }
}
BENCHMARK(BM_SnapshotExportImport);

void BM_HashRingOwner(benchmark::State& state) {
  HashRing ring;
  for (std::uint32_t s = 0; s < 16; ++s) ring.add_shard(s);
  std::uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ring.owner(ObjectKey{"bench", "key" + std::to_string(++n % 1024)}));
  }
}
BENCHMARK(BM_HashRingOwner);

}  // namespace
}  // namespace colony
