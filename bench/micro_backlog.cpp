// Backlog-scale drain benchmark: the reconnect burst. A replica receives a
// large backlog of transactions in reverse causal order (every push pends
// until its predecessor arrives), then everything cascades. This is the
// workload the indexed wake-list scheduler exists for; the fixpoint
// reference runs the same backlog as the "before" series, so one
// BENCH_micro.json carries both sides of the comparison.
//
// Variants: backlog size 1k/5k/20k, with and without ACL masking (masking
// exercises the per-origin/per-key masked-write index vs. the reference's
// full masked-set rescans).
#include <benchmark/benchmark.h>

#include <vector>

#include "alloc_counter.hpp"
#include "core/visibility.hpp"
#include "crdt/counter.hpp"

namespace colony {
namespace {

using DrainMode = VisibilityEngine::DrainMode;

Transaction make_txn(DcId dc, Timestamp ts, std::size_t num_dcs) {
  Transaction txn;
  txn.meta.dot = Dot{100 + dc, ts};
  txn.meta.origin = 100 + dc;
  txn.meta.snapshot = VersionVector(num_dcs);
  txn.meta.snapshot.set(dc, ts - 1);
  txn.meta.mark_accepted(dc, ts);
  // Spread ops over a handful of keys so key-overlap mask propagation has
  // real buckets to consult.
  txn.ops.push_back(OpRecord{{"b", std::string("k") + char('a' + ts % 8)},
                             CrdtType::kPnCounter,
                             PnCounter::prepare_add(1)});
  return txn;
}

void run_backlog(benchmark::State& state, DrainMode mode, bool masking) {
  const auto n = static_cast<Timestamp>(state.range(0));
  benchalloc::Scope allocs;
  for (auto _ : state) {
    state.PauseTiming();
    TxnStore txns;
    JournalStore store;
    VisibilityEngine::set_default_drain_mode(mode);
    VisibilityEngine engine(txns, store, 3);
    VisibilityEngine::set_default_drain_mode(DrainMode::kIndexed);
    if (masking) {
      // Every 7th transaction is vetoed; key overlap then drags causal
      // dependants into the mask transitively.
      engine.set_security_check([](const Transaction& txn) {
        return txn.meta.dot.counter % 7 != 0;
      });
    }
    std::vector<Transaction> backlog;
    backlog.reserve(n);
    for (Timestamp ts = 1; ts <= n; ++ts) {
      backlog.push_back(make_txn(0, ts, 3));
    }
    state.ResumeTiming();
    for (auto it = backlog.rbegin(); it != backlog.rend(); ++it) {
      engine.ingest(*it);
    }
    if (engine.pending_count() != 0) {
      state.SkipWithError("backlog did not drain");
      break;
    }
    benchmark::DoNotOptimize(engine.state_vector());
  }
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(allocs.allocs()), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}

void BM_BacklogDrainIndexed(benchmark::State& state) {
  run_backlog(state, DrainMode::kIndexed, /*masking=*/false);
}
BENCHMARK(BM_BacklogDrainIndexed)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_BacklogDrainReference(benchmark::State& state) {
  run_backlog(state, DrainMode::kFixpointReference, /*masking=*/false);
}
BENCHMARK(BM_BacklogDrainReference)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);  // quadratic: one deterministic pass is the number

void BM_BacklogDrainMaskedIndexed(benchmark::State& state) {
  run_backlog(state, DrainMode::kIndexed, /*masking=*/true);
}
BENCHMARK(BM_BacklogDrainMaskedIndexed)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_BacklogDrainMaskedReference(benchmark::State& state) {
  run_backlog(state, DrainMode::kFixpointReference, /*masking=*/true);
}
BENCHMARK(BM_BacklogDrainMaskedReference)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace colony
