// Backlog-scale drain benchmark: the reconnect burst. A replica receives a
// large backlog of transactions in reverse causal order (every push pends
// until its predecessor arrives), then everything cascades. This is the
// workload the indexed wake-list scheduler exists for; the fixpoint
// reference runs the same backlog as the "before" series, so one
// BENCH_micro.json carries both sides of the comparison.
//
// Variants: backlog size 1k/5k/20k, with and without ACL masking (masking
// exercises the per-origin/per-key masked-write index vs. the reference's
// full masked-set rescans).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "alloc_counter.hpp"
#include "core/visibility.hpp"
#include "crdt/counter.hpp"
#include "crdt/or_set.hpp"
#include "storage/apply_pool.hpp"

namespace colony {
namespace {

using DrainMode = VisibilityEngine::DrainMode;

Transaction make_txn(DcId dc, Timestamp ts, std::size_t num_dcs) {
  Transaction txn;
  txn.meta.dot = Dot{100 + dc, ts};
  txn.meta.origin = 100 + dc;
  txn.meta.snapshot = VersionVector(num_dcs);
  txn.meta.snapshot.set(dc, ts - 1);
  txn.meta.mark_accepted(dc, ts);
  // Spread ops over a handful of keys so key-overlap mask propagation has
  // real buckets to consult.
  txn.ops.push_back(OpRecord{{"b", std::string("k") + char('a' + ts % 8)},
                             CrdtType::kPnCounter,
                             PnCounter::prepare_add(1)});
  return txn;
}

void run_backlog(benchmark::State& state, DrainMode mode, bool masking) {
  const auto n = static_cast<Timestamp>(state.range(0));
  benchalloc::Scope allocs;
  for (auto _ : state) {
    state.PauseTiming();
    TxnStore txns;
    JournalStore store;
    VisibilityEngine::set_default_drain_mode(mode);
    VisibilityEngine engine(txns, store, 3);
    VisibilityEngine::set_default_drain_mode(DrainMode::kIndexed);
    if (masking) {
      // Every 7th transaction is vetoed; key overlap then drags causal
      // dependants into the mask transitively.
      engine.set_security_check([](const Transaction& txn) {
        return txn.meta.dot.counter % 7 != 0;
      });
    }
    std::vector<Transaction> backlog;
    backlog.reserve(n);
    for (Timestamp ts = 1; ts <= n; ++ts) {
      backlog.push_back(make_txn(0, ts, 3));
    }
    state.ResumeTiming();
    for (auto it = backlog.rbegin(); it != backlog.rend(); ++it) {
      engine.ingest(*it);
    }
    if (engine.pending_count() != 0) {
      state.SkipWithError("backlog did not drain");
      break;
    }
    benchmark::DoNotOptimize(engine.state_vector());
  }
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(allocs.allocs()), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}

void BM_BacklogDrainIndexed(benchmark::State& state) {
  run_backlog(state, DrainMode::kIndexed, /*masking=*/false);
}
BENCHMARK(BM_BacklogDrainIndexed)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_BacklogDrainReference(benchmark::State& state) {
  run_backlog(state, DrainMode::kFixpointReference, /*masking=*/false);
}
BENCHMARK(BM_BacklogDrainReference)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);  // quadratic: one deterministic pass is the number

void BM_BacklogDrainMaskedIndexed(benchmark::State& state) {
  run_backlog(state, DrainMode::kIndexed, /*masking=*/true);
}
BENCHMARK(BM_BacklogDrainMaskedIndexed)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_BacklogDrainMaskedReference(benchmark::State& state) {
  run_backlog(state, DrainMode::kFixpointReference, /*masking=*/true);
}
BENCHMARK(BM_BacklogDrainMaskedReference)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// --- parallel apply -------------------------------------------------------

/// Apply-heavy transaction: 8 mixed-type ops spread over 64 keys, so the
/// journal-append + CRDT-fold tail dominates the drain and the sharded
/// worker pool has real work to fan out.
Transaction make_heavy_txn(Timestamp ts, std::size_t num_dcs) {
  Transaction txn;
  txn.meta.dot = Dot{100, ts};
  txn.meta.origin = 100;
  txn.meta.snapshot = VersionVector(num_dcs);
  txn.meta.snapshot.set(0, ts - 1);
  txn.meta.mark_accepted(0, ts);
  for (std::uint64_t op = 0; op < 8; ++op) {
    const ObjectKey key{"b", "h" + std::to_string((ts * 8 + op) % 64)};
    if (op % 2 == 0) {
      txn.ops.push_back(
          OpRecord{key, CrdtType::kPnCounter, PnCounter::prepare_add(1)});
    } else {
      txn.ops.push_back(OpRecord{
          key, CrdtType::kOrSet,
          OrSet::prepare_add("m" + std::to_string(ts), txn.meta.dot)});
    }
  }
  return txn;
}

/// The reconnect cascade with the apply tail handed to a worker pool.
/// `workers` = 0 runs the inline path (the scaling baseline); the series
/// name carries the worker count so compare_bench.py can build a
/// per-worker-count scaling table. On a single-core host the pooled rows
/// measure handoff overhead, not speedup — the scaling target applies to
/// multi-core hosts (see bench/README note in DESIGN.md §10).
void run_pooled_backlog(benchmark::State& state) {
  const auto n = static_cast<Timestamp>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  const std::unique_ptr<ApplyPool> pool =
      workers > 0 ? std::make_unique<ApplyPool>(workers) : nullptr;
  benchalloc::Scope allocs;
  for (auto _ : state) {
    state.PauseTiming();
    TxnStore txns;
    JournalStore store;
    if (pool != nullptr) store.set_apply_pool(pool.get());
    VisibilityEngine engine(txns, store, 3);
    std::vector<Transaction> backlog;
    backlog.reserve(n);
    for (Timestamp ts = 1; ts <= n; ++ts) {
      backlog.push_back(make_heavy_txn(ts, 3));
    }
    state.ResumeTiming();
    for (auto it = backlog.rbegin(); it != backlog.rend(); ++it) {
      engine.ingest(*it);
    }
    if (engine.pending_count() != 0) {
      state.SkipWithError("backlog did not drain");
      break;
    }
    benchmark::DoNotOptimize(engine.state_vector());
  }
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(allocs.allocs()), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * 8);
}

void BM_BacklogDrainPooledApply(benchmark::State& state) {
  run_pooled_backlog(state);
}
BENCHMARK(BM_BacklogDrainPooledApply)
    ->ArgsProduct({{1000, 5000, 20000}, {0, 1, 2, 4}})
    ->ArgNames({"n", "workers"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace colony
