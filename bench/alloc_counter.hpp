// Allocation counting for micro-benchmarks: the bench binary replaces the
// global operator new/delete (alloc_counter.cpp) and benches read the
// counters around their measurement loop to report allocations per
// operation next to ns/op in BENCH_micro.json. Counting is per-thread
// (padded slots summed at read), so apply-pool workers are counted without
// adding a contended cache line to the timed region.
#pragma once

#include <cstddef>
#include <cstdint>

namespace colony::benchalloc {

/// Total number of successful global operator new calls so far.
[[nodiscard]] std::uint64_t allocation_count();
/// Total bytes requested from global operator new so far.
[[nodiscard]] std::uint64_t allocated_bytes();

/// Snapshot-delta helper: construct before the loop, call `attribute`
/// after it to publish allocs/op and bytes/op counters on the state.
class Scope {
 public:
  Scope() : allocs_(allocation_count()), bytes_(allocated_bytes()) {}
  [[nodiscard]] std::uint64_t allocs() const {
    return allocation_count() - allocs_;
  }
  [[nodiscard]] std::uint64_t bytes() const {
    return allocated_bytes() - bytes_;
  }

 private:
  std::uint64_t allocs_;
  std::uint64_t bytes_;
};

}  // namespace colony::benchalloc
