// Figure 4 (paper section 7.3): throughput vs. response time of the three
// configurations — AntidoteDB-like (no client cache), SwiftCloud-like
// (client cache, no groups) and Colony (client cache + peer groups) — with
// one and three DCs, under increasing client counts.
//
// Also prints the headline-claims summary of section 1: local/group caching
// improves throughput ~1.4x/~1.6x and response time ~8x/~20x compared to
// the classical cloud configuration.
// Set COLONY_APPLY_WORKERS=N to run every DC with an N-worker apply pool
// (the §10 parallel-apply path); the converged results are identical by the
// pool-equivalence guarantee, only the wall-clock changes. The scaling
// claim (>= 2x at 4 workers) applies to multi-core hosts.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "chat/driver.hpp"

namespace colony {
namespace {

struct Point {
  ClientMode mode;
  std::size_t dcs = 1;
  std::size_t clients = 0;
  double throughput = 0;     // client-side completed actions / s
  double dc_throughput = 0;  // transactions sequenced at the DCs / s
  double mean_ms = 0;
  double p99_ms = 0;
};

Point run_point(ClientMode mode, std::size_t dcs, std::size_t clients,
                SimTime duration) {
  ClusterConfig cluster_cfg;
  cluster_cfg.num_dcs = dcs;
  cluster_cfg.k_stability = 1;
  cluster_cfg.seed = 42 + clients;
  if (const char* workers = std::getenv("COLONY_APPLY_WORKERS")) {
    cluster_cfg.apply_workers_per_dc =
        static_cast<std::size_t>(std::strtoul(workers, nullptr, 10));
  }
  Cluster cluster(cluster_cfg);

  chat::ChatDriverConfig cfg;
  cfg.mode = mode;
  cfg.clients = clients;
  cfg.group_size = 12;
  cfg.trace.num_users = clients;
  cfg.trace.num_workspaces = 3;
  cfg.trace.channels_per_workspace = 20;
  cfg.think_time = 100 * kMillisecond;
  cfg.cache_capacity = 32;
  cfg.seed = 7 + clients;
  chat::ChatDriver driver(cluster, cfg);
  driver.start();
  cluster.run_for(duration);
  driver.stop();

  Point p;
  p.mode = mode;
  p.dcs = dcs;
  p.clients = clients;
  p.throughput = driver.throughput().steady_rate_per_second();
  std::uint64_t committed = 0;
  for (DcId d = 0; d < dcs; ++d) committed += cluster.dc(d).committed();
  p.dc_throughput = static_cast<double>(committed) /
                    (static_cast<double>(duration) / kSecond);
  p.mean_ms = driver.overall_latency().mean_us() / 1000.0;
  p.p99_ms = benchutil::ms(driver.overall_latency().percentile_us(99));
  return p;
}

const char* config_name(ClientMode mode) {
  switch (mode) {
    case ClientMode::kCloudOnly: return "AntidoteDB";
    case ClientMode::kClientCache: return "SwiftCloud";
    case ClientMode::kPeerGroup: return "Colony";
  }
  return "?";
}

}  // namespace
}  // namespace colony

int main() {
  using namespace colony;
  benchutil::header("Figure 4: performance of Colony",
                    "Toumlilt et al., Middleware'21, Fig. 4 + section 1 "
                    "headline claims");

  const std::vector<std::size_t> client_counts{4, 16, 64, 256, 1024};
  const SimTime duration = 8 * kSecond;

  std::vector<Point> points;
  std::printf("\n%-12s %4s %8s %14s %14s %12s %12s\n", "config", "DCs",
              "clients", "actions/s", "dc-txn/s", "mean(ms)", "p99(ms)");
  for (const ClientMode mode :
       {ClientMode::kCloudOnly, ClientMode::kClientCache,
        ClientMode::kPeerGroup}) {
    for (const std::size_t dcs : {1u, 3u}) {
      for (const std::size_t clients : client_counts) {
        const Point p = run_point(mode, dcs, clients, duration);
        points.push_back(p);
        std::printf("%-12s %4zu %8zu %14.0f %14.0f %12.3f %12.3f\n",
                    config_name(p.mode), p.dcs, p.clients, p.throughput,
                    p.dc_throughput, p.mean_ms, p.p99_ms);
        std::fflush(stdout);
      }
    }
  }

  auto find = [&](ClientMode mode, std::size_t dcs,
                  std::size_t clients) -> const Point& {
    for (const Point& p : points) {
      if (p.mode == mode && p.dcs == dcs && p.clients == clients) return p;
    }
    return points.front();
  };
  // Throughput ratios at the saturation point; latency ratios just below
  // saturation (the flat region of the curves, as the paper reads them).
  const std::size_t sat = client_counts.back();
  const std::size_t flat = client_counts[client_counts.size() - 2];
  const Point& antidote = find(ClientMode::kCloudOnly, 1, sat);
  const Point& antidote3 = find(ClientMode::kCloudOnly, 3, sat);
  const Point& swift = find(ClientMode::kClientCache, 1, sat);
  const Point& colony = find(ClientMode::kPeerGroup, 1, sat);
  const Point& antidote_flat = find(ClientMode::kCloudOnly, 1, flat);
  const Point& swift_flat = find(ClientMode::kClientCache, 1, flat);
  const Point& colony_flat = find(ClientMode::kPeerGroup, 1, flat);

  benchutil::section("Headline claims (paper section 1 / 7.3)");
  std::printf("local caching  (SwiftCloud/AntidoteDB): throughput x%.2f "
              "(paper ~1.4x), response time x%.1f faster (paper ~8x)\n",
              swift.throughput / antidote.throughput,
              antidote_flat.mean_ms / swift_flat.mean_ms);
  std::printf("group caching  (Colony/AntidoteDB):     throughput x%.2f "
              "(paper ~1.6x), response time x%.1f faster (paper ~20x)\n",
              colony.throughput / antidote.throughput,
              antidote_flat.mean_ms / colony_flat.mean_ms);
  std::printf("adding DCs to the cloud config:         max throughput +%.0f%% "
              "(paper ~+40%%), latency %.2fms -> %.2fms (paper: unchanged)\n",
              100.0 * (antidote3.throughput / antidote.throughput - 1.0),
              antidote.mean_ms, antidote3.mean_ms);
  std::printf("\nNote: actions/s is the client-side closed-loop rate; with "
              "local caches it exceeds the paper's server-bound ratios "
              "because cached actions complete without the DC. dc-txn/s is "
              "the durable (DC-sequenced) rate, the server-side view.\n");
  return 0;
}
