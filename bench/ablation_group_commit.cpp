// Group-commit variant ablation (paper section 5.1.4): within a peer group,
// Colony offers two commit protocols —
//   variant 1: EPaxos on the critical path (PSI; conflicting transactions
//              are ordered a priori and may abort),
//   variant 2: local commit with EPaxos ordering in the background (the
//              variant the paper's experiments use).
// This bench measures commit latency, abort rate, and the consensus
// fast/slow-path split as write contention grows.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"

namespace colony {
namespace {

struct Variant {
  const char* name;
  bool ordered;
};

void run_contention(double hot_probability) {
  for (const Variant variant : {Variant{"variant2-async", false},
                                Variant{"variant1-PSI", true}}) {
    ClusterConfig cfg;
    cfg.seed = 31 + static_cast<std::uint64_t>(hot_probability * 100);
    Cluster cluster(cfg);
    PeerGroupParent& parent = cluster.add_group_parent(0);
    constexpr std::size_t kMembers = 8;
    std::vector<EdgeNode*> members;
    std::vector<NodeId> node_ids{parent.id()};
    for (std::size_t i = 0; i < kMembers; ++i) {
      members.push_back(&cluster.add_edge(ClientMode::kPeerGroup, 0, 10 + i));
      node_ids.push_back(members.back()->id());
    }
    cluster.wire_peer_links(node_ids);
    for (EdgeNode* m : members) {
      m->join_group(parent.id(), [](Result<void>) {});
      cluster.run_for(100 * kMillisecond);
    }
    cluster.run_for(1 * kSecond);

    Rng rng(97);
    LatencyHistogram commit_latency;
    std::uint64_t aborts = 0, commits = 0;
    constexpr int kRoundsPerMember = 25;

    for (int round = 0; round < kRoundsPerMember; ++round) {
      for (std::size_t i = 0; i < kMembers; ++i) {
        EdgeNode& node = *members[i];
        const ObjectKey key =
            rng.chance(hot_probability)
                ? ObjectKey{"game", "hot"}
                : ObjectKey{"game", "own" + std::to_string(i)};
        auto txn = node.begin();
        node.update(txn, OpRecord{key, CrdtType::kPnCounter,
                                  PnCounter::prepare_add(1)});
        const SimTime started = cluster.now();
        if (variant.ordered) {
          node.commit_ordered(std::move(txn), [&, started](Result<Dot> r) {
            if (r.ok()) {
              ++commits;
              commit_latency.record(cluster.now() - started);
            } else {
              ++aborts;
            }
          });
        } else {
          if (node.commit(std::move(txn)).ok()) {
            ++commits;
            commit_latency.record(cluster.now() - started);  // ~0: local
          }
        }
      }
      cluster.run_for(300 * kMillisecond);
    }
    cluster.run_for(5 * kSecond);

    std::uint64_t fast = 0, slow = 0;
    for (const EdgeNode* m : members) {
      if (const auto* ep = m->group_consensus()) {
        fast += ep->fast_path_commits();
        slow += ep->slow_path_commits();
      }
    }
    std::printf("hot=%4.0f%%  %-15s commits=%-5llu aborts=%-4llu "
                "mean=%8.3fms p99=%8.3fms  leader fast/slow=%llu/%llu\n",
                hot_probability * 100, variant.name,
                static_cast<unsigned long long>(commits),
                static_cast<unsigned long long>(aborts),
                commit_latency.mean_us() / 1000.0,
                benchutil::ms(commit_latency.percentile_us(99)),
                static_cast<unsigned long long>(fast),
                static_cast<unsigned long long>(slow));
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace colony

int main() {
  using namespace colony;
  benchutil::header("Group-commit variant ablation",
                    "Toumlilt et al., Middleware'21, section 5.1.4 "
                    "(the two commit variants)");
  std::printf("\n8-member peer group, 25 rounds/member; 'hot' = probability "
              "a write touches the shared contended key\n\n");
  for (const double hot : {0.0, 0.25, 0.5, 1.0}) {
    run_contention(hot);
  }
  std::printf("\nExpected shape: variant 2 commits in ~0ms regardless of "
              "contention and never aborts; variant 1 pays the consensus "
              "round (milliseconds at peer-link latency) and aborts "
              "conflicting transactions as contention grows.\n");
  return 0;
}
