// Wall-clock micro-costs of the metadata layer: version vectors, K-cuts,
// dot tracking, HLC ticks.
#include <benchmark/benchmark.h>

#include "clock/dot_tracker.hpp"
#include "clock/hlc.hpp"
#include "clock/version_vector.hpp"

namespace colony {
namespace {

void BM_VectorMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VersionVector a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) b.set(static_cast<DcId>(i), i * 7);
  for (auto _ : state) {
    a.merge(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_VectorMerge)->Arg(3)->Arg(16)->Arg(128);

void BM_VectorLeq(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VersionVector a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(static_cast<DcId>(i), i);
    b.set(static_cast<DcId>(i), i + 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.leq(b));
  }
}
BENCHMARK(BM_VectorLeq)->Arg(3)->Arg(16)->Arg(128);

void BM_KStableCut(benchmark::State& state) {
  const auto dcs = static_cast<std::size_t>(state.range(0));
  std::vector<VersionVector> states;
  for (std::size_t d = 0; d < dcs; ++d) {
    VersionVector v(dcs);
    for (std::size_t c = 0; c < dcs; ++c) {
      v.set(static_cast<DcId>(c), (d * 31 + c * 17) % 1000);
    }
    states.push_back(std::move(v));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(k_stable_cut(states, dcs / 2 + 1));
  }
}
BENCHMARK(BM_KStableCut)->Arg(3)->Arg(8)->Arg(16);

void BM_DotTrackerRecord(benchmark::State& state) {
  DotTracker tracker;
  std::uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.record(Dot{1, ++n}));
  }
}
BENCHMARK(BM_DotTrackerRecord);

void BM_DotTrackerOutOfOrder(benchmark::State& state) {
  std::uint64_t base = 0;
  for (auto _ : state) {
    state.PauseTiming();
    DotTracker tracker;
    state.ResumeTiming();
    // Deliver a window of 64 in reverse (worst-case gap bookkeeping).
    for (std::uint64_t i = 64; i >= 1; --i) {
      benchmark::DoNotOptimize(tracker.record(Dot{1, base + i}));
    }
    base += 64;
  }
}
BENCHMARK(BM_DotTrackerOutOfOrder);

void BM_HlcTick(benchmark::State& state) {
  HybridLogicalClock hlc;
  SimTime now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hlc.tick(++now));
  }
}
BENCHMARK(BM_HlcTick);

void BM_VectorCodec(benchmark::State& state) {
  VersionVector v(16);
  for (std::size_t i = 0; i < 16; ++i) v.set(static_cast<DcId>(i), i * 1001);
  for (auto _ : state) {
    Encoder enc;
    v.encode(enc);
    Decoder dec(enc.data());
    benchmark::DoNotOptimize(VersionVector::decode(dec));
  }
}
BENCHMARK(BM_VectorCodec);

}  // namespace
}  // namespace colony
