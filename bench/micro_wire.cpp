// Wire framing round-trip costs. The zero-copy hot path (single-allocation
// frame::encode, decode_view straight out of the delivered buffer) is
// benchmarked against a faithful reimplementation of the seed's owning
// path (trailer re-encode + insert splice on send, payload copy + tail
// copy on receive), so BENCH_micro.json carries before and after numbers —
// both ns/op and allocations per round trip.
#include <benchmark/benchmark.h>

#include "alloc_counter.hpp"
#include "core/txn.hpp"
#include "crdt/counter.hpp"
#include "sim/network.hpp"
#include "util/codec.hpp"

namespace colony {
namespace {

Bytes make_payload() {
  Transaction txn;
  txn.meta.dot = Dot{7, 42};
  txn.meta.origin = 7;
  txn.meta.snapshot = VersionVector{10, 20, 30};
  txn.meta.mark_accepted(1, 21);
  for (int i = 0; i < 4; ++i) {
    txn.ops.push_back(OpRecord{{"bucket", "key" + std::to_string(i)},
                               CrdtType::kPnCounter,
                               PnCounter::prepare_add(i)});
  }
  return txn.to_bytes();
}

/// The seed's frame::encode, reimplemented verbatim for comparison: build
/// the header+payload in one encoder, then a second encoder for the crc
/// trailer, spliced on with insert.
Bytes legacy_encode(std::uint32_t kind, const Bytes& payload) {
  Encoder enc;
  enc.u32(kind);
  enc.u32(static_cast<std::uint32_t>(payload.size()));
  enc.raw(payload);
  Bytes frm = enc.take();
  const std::uint32_t crc = crc32(frm);
  Encoder trailer;
  trailer.u32(crc);
  frm.insert(frm.end(), trailer.data().begin(), trailer.data().end());
  return frm;
}

void BM_FrameRoundTripZeroCopy(benchmark::State& state) {
  const Bytes payload = make_payload();
  benchalloc::Scope allocs;
  for (auto _ : state) {
    const Bytes frm = sim::frame::encode(17, payload);
    const auto view = sim::frame::decode_view(frm);
    // Receive side: RPC envelope peeled as views, no payload copy.
    Decoder dec(view->payload);
    benchmark::DoNotOptimize(dec.tail_view());
    benchmark::DoNotOptimize(view->kind);
  }
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(allocs.allocs()), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FrameRoundTripZeroCopy);

void BM_FrameRoundTripOwningSeed(benchmark::State& state) {
  const Bytes payload = make_payload();
  benchalloc::Scope allocs;
  for (auto _ : state) {
    const Bytes frm = legacy_encode(17, payload);
    const auto view = sim::frame::decode(frm);  // owning payload copy
    // Receive side as seeded: the dispatcher tail()-copied the envelope.
    Decoder dec(view->payload);
    benchmark::DoNotOptimize(dec.tail());
    benchmark::DoNotOptimize(view->kind);
  }
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(allocs.allocs()), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FrameRoundTripOwningSeed);

void BM_FrameTypedRoundTrip(benchmark::State& state) {
  // End to end: encode a transaction, seal, open, decode the transaction.
  // Dominated by the typed codec (which must own its Bytes fields), so the
  // framing win shows up as a smaller but real delta.
  const Bytes payload = make_payload();
  benchalloc::Scope allocs;
  for (auto _ : state) {
    const Bytes frm = sim::frame::encode(17, payload);
    const auto view = sim::frame::decode_view(frm);
    benchmark::DoNotOptimize(codec::from_bytes<Transaction>(view->payload));
  }
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(allocs.allocs()), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FrameTypedRoundTrip);

void BM_FrameEncodeOnly(benchmark::State& state) {
  const Bytes payload = make_payload();
  benchalloc::Scope allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::frame::encode(17, payload));
  }
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(allocs.allocs()), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FrameEncodeOnly);

}  // namespace
}  // namespace colony
