// Figure 7 (paper section 7.4): synchronising with a peer group.
//
// A 12-member group collaborates; at t=45s a mobile client with a
// completely invalid chat history joins the group. Its first transactions
// pay the cache-synchronisation cost (the paper measures bumps below 12ms,
// far below a DC reconnection), then match the group's latency.
#include <cstdio>

#include "bench_util.hpp"
#include "chat/driver.hpp"

int main() {
  using namespace colony;
  benchutil::header("Figure 7: synchronising with a peer group",
                    "Toumlilt et al., Middleware'21, Fig. 7");

  ClusterConfig cluster_cfg;
  cluster_cfg.num_dcs = 1;
  cluster_cfg.seed = 17;
  Cluster cluster(cluster_cfg);

  chat::ChatDriverConfig cfg;
  cfg.mode = ClientMode::kPeerGroup;
  cfg.clients = 13;  // 12 established members + the joiner
  cfg.group_size = 13;
  cfg.trace.num_users = 36;
  cfg.trace.num_workspaces = 1;
  cfg.trace.channels_per_workspace = 20;
  cfg.think_time = 100 * kMillisecond;
  cfg.cache_capacity = 16;
  cfg.seed = 29;
  chat::ChatDriver driver(cluster, cfg);

  constexpr std::size_t kJoiner = 12;
  constexpr SimTime kJoinAt = 45 * kSecond;
  constexpr SimTime kEnd = 70 * kSecond;
  driver.spotlight(kJoiner);
  driver.set_start_delay(kJoiner, kJoinAt);
  driver.start();

  cluster.scheduler().at(kJoinAt, [&] {
    // "Completely invalid chat history": whatever the client cached in a
    // previous life is dropped before it joins.
    driver.client(kJoiner).invalidate_cache();
    std::printf("[t=45s] mobile client with invalid cache joins the group\n");
  });

  cluster.run_until(kEnd);
  driver.stop();

  benchutil::section("per-second response time, joining client");
  benchutil::print_series_buckets(driver.spotlight_series(), kEnd);

  benchutil::section("per-second response time, rest of the group");
  benchutil::print_series_buckets(driver.series(ReadSource::kLocal), kEnd);
  benchutil::print_series_buckets(driver.series(ReadSource::kPeer), kEnd);

  benchutil::section("summary (paper: first transactions < 12ms, then back "
                     "to group-normal within seconds; far cheaper than a DC "
                     "re-fetch at ~82ms)");
  benchutil::print_latency_line("joiner (all reads)",
                                driver.spotlight_latency());
  benchutil::print_latency_line("group client hits",
                                driver.latency(ReadSource::kLocal));
  benchutil::print_latency_line("group peer hits",
                                driver.latency(ReadSource::kPeer));

  const auto& joiner = driver.spotlight_series();
  std::printf("\njoiner mean first 5s vs later: %.3f ms vs %.3f ms\n",
              joiner.mean_in(kJoinAt, kJoinAt + 5 * kSecond),
              joiner.mean_in(kJoinAt + 5 * kSecond, kEnd));
  std::printf("joiner max latency after join: %.3f ms (paper: below 12 ms)\n",
              benchutil::ms(driver.spotlight_latency().max_us()));
  return 0;
}
