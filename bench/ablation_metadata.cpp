// Metadata-size ablation (paper sections 3.3-3.5): Colony bounds causal
// metadata to one vector entry per *DC*, whereas a precise representation
// of happened-before among N concurrent writers needs a vector of size N
// (Charron-Bost). The analytic table quantifies that design claim; the
// measured tables come from the framed byte transport — a small cluster
// runs a replicated workload and the network's wire counters report the
// bytes every message kind actually put on the links.
#include <cstdio>
#include <cstdint>

#include "bench_util.hpp"
#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "core/txn.hpp"
#include "crdt/counter.hpp"
#include "dc/messages.hpp"
#include "sim/network.hpp"

namespace {

void print_wire_table(const colony::WireStats& stats) {
  using colony::sim::frame::kOverheadBytes;
  std::printf("%-18s %8s %12s %10s %10s\n", "kind", "frames", "bytes",
              "B/frame", "share");
  const double total = static_cast<double>(stats.total().bytes);
  for (const auto& [kind, counter] : stats.per_kind()) {
    std::printf("%-18s %8llu %12llu %10.1f %9.1f%%\n",
                colony::proto::kind_name(kind),
                static_cast<unsigned long long>(counter.frames),
                static_cast<unsigned long long>(counter.bytes),
                static_cast<double>(counter.bytes) /
                    static_cast<double>(counter.frames),
                100.0 * static_cast<double>(counter.bytes) / total);
  }
  std::printf("%-18s %8llu %12llu   (frame overhead: %zu B each)\n", "total",
              static_cast<unsigned long long>(stats.total().frames),
              static_cast<unsigned long long>(stats.total().bytes),
              kOverheadBytes);
}

}  // namespace

int main() {
  using namespace colony;
  benchutil::header("Metadata ablation: per-DC vs per-replica vectors",
                    "Toumlilt et al., Middleware'21, sections 3.3-3.5 "
                    "(design claim) + measured wire traffic");

  constexpr std::size_t kDcs = 3;
  // A transaction carries a snapshot vector, a commit vector and a dot
  // (section 3.5); each vector component is 8 bytes (footnote 2).
  const std::size_t colony_meta =
      2 * VersionVector(kDcs).wire_size() + 2 * sizeof(std::uint64_t);

  benchutil::section("per-transaction causality metadata (bytes, analytic)");
  std::printf("%12s %18s %18s %10s\n", "replicas", "per-replica(B)",
              "colony per-DC(B)", "ratio");
  for (const std::size_t replicas :
       {10ul, 100ul, 1'000ul, 10'000ul, 100'000ul, 1'000'000ul}) {
    const std::size_t naive =
        2 * VersionVector(replicas).wire_size() + 2 * sizeof(std::uint64_t);
    std::printf("%12zu %18zu %18zu %9.0fx\n", replicas, naive, colony_meta,
                static_cast<double>(naive) /
                    static_cast<double>(colony_meta));
  }

  // --- measured: a replicated workload over the framed transport -----------
  //
  // 3 DCs (K=2), one writer edge and one reader edge. Every frame any
  // message put on a link was metered by the network at send time; the
  // per-kind table below is measurement, not offline re-encoding.
  ClusterConfig cfg;
  cfg.num_dcs = kDcs;
  cfg.k_stability = 2;
  Cluster cluster(cfg);
  EdgeNode& writer = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EdgeNode& reader = cluster.add_edge(ClientMode::kClientCache, 1, 2);
  const ObjectKey key{"chat", "ws.0.ch.5.msgs"};

  Session ws(writer), rs(reader);
  rs.subscribe({key}, [](Result<void>) {});
  cluster.run_for(kSecond);
  cluster.network().wire_stats().clear();  // drop setup traffic

  constexpr int kTxns = 50;
  for (int i = 0; i < kTxns; ++i) {
    auto txn = ws.begin();
    ws.increment(txn, key, 1);
    ws.commit(std::move(txn));
    cluster.run_for(200 * kMillisecond);
  }
  cluster.quiesce(30 * kSecond);

  const WireStats& stats = cluster.network().wire_stats();
  benchutil::section("measured wire traffic per kind (50 txns, 3 DCs, K=2)");
  print_wire_table(stats);

  benchutil::section("measured per-transaction replication cost");
  const WireStats::Counter repl = stats.for_kind(proto::kReplicateTxn);
  const WireStats::Counter push = stats.for_kind(proto::kPushTxn);
  const WireStats::Counter commit = stats.for_kind(proto::kEdgeCommit);
  if (repl.frames > 0) {
    std::printf("replicate-txn: %.1f B/frame — each commit crosses the DC "
                "mesh %.1f times\n",
                static_cast<double>(repl.bytes) /
                    static_cast<double>(repl.frames),
                static_cast<double>(repl.frames) / kTxns);
  }
  if (push.frames > 0) {
    std::printf("push-txn:      %.1f B/frame to session subscribers\n",
                static_cast<double>(push.bytes) /
                    static_cast<double>(push.frames));
  }
  if (commit.frames > 0) {
    std::printf("edge-commit:   %.1f B/frame (request+response average)\n",
                static_cast<double>(commit.bytes) /
                    static_cast<double>(commit.frames));
  }
  std::printf("metadata share of a minimal 1-op transaction: %zu B of %zu B "
              "encoded\n",
              colony_meta, [] {
                Transaction txn;
                txn.meta.dot = Dot{12345, 1};
                txn.meta.origin = 12345;
                txn.meta.user = 42;
                txn.meta.snapshot = VersionVector(kDcs);
                txn.meta.mark_accepted(0, 7);
                txn.ops.push_back(OpRecord{{"chat", "ws.0.ch.5.msgs"},
                                           CrdtType::kPnCounter,
                                           PnCounter::prepare_add(1)});
                return txn.to_bytes().size();
              }());

  benchutil::section("equivalent-commit optimisation (section 3.8)");
  // After migration a transaction may hold up to N commit timestamps; the
  // compact encoding stores them in one vector + a 4-byte mask instead of
  // N full vectors.
  TxnMeta meta;
  meta.snapshot = VersionVector(kDcs);
  meta.mark_accepted(0, 5);
  meta.mark_accepted(2, 9);
  Encoder enc;
  meta.encode(enc);
  const std::size_t compact = enc.size();
  const std::size_t naive_equiv =
      VersionVector(kDcs).wire_size() * 2  // snapshot + 1st commit vector
      + VersionVector(kDcs).wire_size()    // 2nd equivalent commit vector
      + 2 * sizeof(std::uint64_t);
  std::printf("2 equivalent commits, compact encoding: %zu bytes "
              "(naive per-vector: %zu bytes)\n",
              compact, naive_equiv);
  return 0;
}
