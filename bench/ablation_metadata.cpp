// Metadata-size ablation (paper sections 3.3-3.5): Colony bounds causal
// metadata to one vector entry per *DC*, whereas a precise representation
// of happened-before among N concurrent writers needs a vector of size N
// (Charron-Bost). This bench quantifies the per-transaction wire overhead
// of both designs as the replica population grows, and the size of a full
// Colony transaction record.
#include <cstdio>

#include "bench_util.hpp"
#include "core/txn.hpp"
#include "crdt/counter.hpp"

int main() {
  using namespace colony;
  benchutil::header("Metadata ablation: per-DC vs per-replica vectors",
                    "Toumlilt et al., Middleware'21, sections 3.3-3.5 "
                    "(design claim)");

  constexpr std::size_t kDcs = 3;
  // A transaction carries a snapshot vector, a commit vector and a dot
  // (section 3.5); each vector component is 8 bytes (footnote 2).
  const std::size_t colony_meta =
      2 * VersionVector(kDcs).wire_size() + 2 * sizeof(std::uint64_t);

  benchutil::section("per-transaction causality metadata (bytes)");
  std::printf("%12s %18s %18s %10s\n", "replicas", "per-replica(B)",
              "colony per-DC(B)", "ratio");
  for (const std::size_t replicas :
       {10ul, 100ul, 1'000ul, 10'000ul, 100'000ul, 1'000'000ul}) {
    const std::size_t naive =
        2 * VersionVector(replicas).wire_size() + 2 * sizeof(std::uint64_t);
    std::printf("%12zu %18zu %18zu %9.0fx\n", replicas, naive, colony_meta,
                static_cast<double>(naive) /
                    static_cast<double>(colony_meta));
  }

  benchutil::section("full transaction record on the wire");
  for (const std::size_t ops : {1ul, 5ul, 20ul}) {
    Transaction txn;
    txn.meta.dot = Dot{12345, 1};
    txn.meta.origin = 12345;
    txn.meta.user = 42;
    txn.meta.snapshot = VersionVector(kDcs);
    txn.meta.mark_accepted(0, 7);
    for (std::size_t i = 0; i < ops; ++i) {
      txn.ops.push_back(OpRecord{{"chat", "ws.0.ch.5.msgs"},
                                 CrdtType::kPnCounter,
                                 PnCounter::prepare_add(1)});
    }
    const auto bytes = txn.to_bytes();
    std::printf("%2zu op(s): %4zu bytes total, %zu bytes metadata (%.0f%%)\n",
                ops, bytes.size(), colony_meta,
                100.0 * static_cast<double>(colony_meta) /
                    static_cast<double>(bytes.size()));
  }

  benchutil::section("equivalent-commit optimisation (section 3.8)");
  // After migration a transaction may hold up to N commit timestamps; the
  // compact encoding stores them in one vector + a 4-byte mask instead of
  // N full vectors.
  TxnMeta meta;
  meta.snapshot = VersionVector(kDcs);
  meta.mark_accepted(0, 5);
  meta.mark_accepted(2, 9);
  Encoder enc;
  meta.encode(enc);
  const std::size_t compact = enc.size();
  const std::size_t naive_equiv =
      VersionVector(kDcs).wire_size() * 2  // snapshot + 1st commit vector
      + VersionVector(kDcs).wire_size()    // 2nd equivalent commit vector
      + 2 * sizeof(std::uint64_t);
  std::printf("2 equivalent commits, compact encoding: %zu bytes "
              "(naive per-vector: %zu bytes)\n",
              compact, naive_equiv);
  return 0;
}
