#!/usr/bin/env python3
"""Compare two google-benchmark JSON files for wall-clock regressions.

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 1.25]
                        [--warn-only]

Every benchmark present in both files is compared on real_time (normalised
to nanoseconds). Entries slower than threshold x baseline are regressions:
listed loudly, and the script exits 1 unless --warn-only. Benchmarks only
present on one side are reported informationally and never fail the gate.
"""
import argparse
import json
import sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        ns = bench["real_time"] * UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
        out[name] = ns
    return out


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=1.25)
    ap.add_argument("--warn-only", action="store_true")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("== no overlapping benchmarks between baseline and current; "
              "nothing to compare")
        return 0

    regressions = []
    print(f"== comparing {len(shared)} benchmarks "
          f"(threshold {args.threshold:.2f}x)")
    for name in shared:
        ratio = cur[name] / base[name] if base[name] > 0 else float("inf")
        marker = " <-- REGRESSION" if ratio > args.threshold else ""
        print(f"  {name}: {fmt_ns(base[name])} -> {fmt_ns(cur[name])} "
              f"({ratio:.2f}x){marker}")
        if ratio > args.threshold:
            regressions.append((name, ratio))

    for name in sorted(set(base) - set(cur)):
        print(f"  {name}: in baseline only (not run)")
    for name in sorted(set(cur) - set(base)):
        print(f"  {name}: new benchmark (no baseline)")

    if regressions:
        print(f"\n!! {len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.2f}x:")
        for name, ratio in regressions:
            print(f"!!   {name} ({ratio:.2f}x)")
        if args.warn_only:
            print("!! BENCH_WARN_ONLY set: reporting only, not failing")
            return 0
        return 1
    print("== perf gate clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
