#!/usr/bin/env python3
"""Compare two google-benchmark JSON files for wall-clock regressions.

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 1.25]
                        [--warn-only] [--min-scaling X] [--force-scaling]

Every benchmark present in both files is compared on real_time (normalised
to nanoseconds). Entries slower than threshold x baseline are regressions:
listed loudly, and the script exits 1 unless --warn-only. Benchmarks only
present on one side are reported informationally and never fail the gate.

Benchmarks whose names carry a `workers:N` argument (the apply-pool
variants) are additionally grouped into per-worker-count series and printed
as a scaling table — speedup of each worker count against the inline
(`workers:0`, falling back to `workers:1`) row of the same series. With
--min-scaling X the best multi-worker speedup of each series must reach X;
that gate only arms on hosts with >= 4 CPUs (a single-core container can
only measure handoff overhead, never speedup) unless --force-scaling.
"""
import argparse
import json
import os
import re
import sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

WORKERS_RE = re.compile(r"^(.*?)/workers:(\d+)(.*)$")


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        ns = bench["real_time"] * UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
        out[name] = ns
    return out


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def worker_series(results):
    """Group `name/workers:N[/...]` entries: series key -> {N: ns}."""
    series = {}
    for name, ns in results.items():
        m = WORKERS_RE.match(name)
        if m:
            series.setdefault(m.group(1) + m.group(3), {})[int(m.group(2))] = ns
    return series


def report_scaling(cur, min_scaling, force):
    series = worker_series(cur)
    if not series:
        if min_scaling:
            print("== no workers:N series in current run; scaling gate idle")
        return 0

    cores = os.cpu_count() or 1
    gate_armed = min_scaling and (cores >= 4 or force)
    print("\n== apply-pool scaling (speedup vs inline of the same series, "
          f"host cores: {cores})")
    failures = []
    for key in sorted(series):
        rows = series[key]
        base = rows.get(0, rows.get(1))
        if base is None:
            print(f"  {key}: no workers:0/1 baseline row; skipped")
            continue
        cells = []
        best = 0.0
        for n in sorted(rows):
            speedup = base / rows[n] if rows[n] > 0 else float("inf")
            if n > 1:
                best = max(best, speedup)
            cells.append(f"workers:{n} {fmt_ns(rows[n])} ({speedup:.2f}x)")
        print(f"  {key}:\n    " + "\n    ".join(cells))
        if gate_armed and best < min_scaling:
            failures.append((key, best))

    if min_scaling and not gate_armed:
        print(f"== scaling gate ({min_scaling:.2f}x) not armed: "
              f"{cores} core(s) < 4 (use --force-scaling to override)")
    if failures:
        print(f"\n!! {len(failures)} series below the {min_scaling:.2f}x "
              "scaling target:")
        for key, best in failures:
            print(f"!!   {key} (best {best:.2f}x)")
        return 1
    if gate_armed:
        print(f"== scaling gate clean (>= {min_scaling:.2f}x)")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=1.25)
    ap.add_argument("--warn-only", action="store_true")
    ap.add_argument("--min-scaling", type=float, default=0.0,
                    help="required best multi-worker speedup per series "
                         "(armed only on hosts with >= 4 CPUs)")
    ap.add_argument("--force-scaling", action="store_true",
                    help="arm --min-scaling regardless of host core count")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    shared = sorted(set(base) & set(cur))

    regressions = []
    if not shared:
        print("== no overlapping benchmarks between baseline and current; "
              "nothing to compare")
    else:
        print(f"== comparing {len(shared)} benchmarks "
              f"(threshold {args.threshold:.2f}x)")
        for name in shared:
            ratio = cur[name] / base[name] if base[name] > 0 else float("inf")
            marker = " <-- REGRESSION" if ratio > args.threshold else ""
            print(f"  {name}: {fmt_ns(base[name])} -> {fmt_ns(cur[name])} "
                  f"({ratio:.2f}x){marker}")
            if ratio > args.threshold:
                regressions.append((name, ratio))

        for name in sorted(set(base) - set(cur)):
            print(f"  {name}: in baseline only (not run)")
        for name in sorted(set(cur) - set(base)):
            print(f"  {name}: new benchmark (no baseline)")

    scaling_rc = report_scaling(cur, args.min_scaling, args.force_scaling)

    if regressions:
        print(f"\n!! {len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.2f}x:")
        for name, ratio in regressions:
            print(f"!!   {name} ({ratio:.2f}x)")
        if args.warn_only:
            print("!! BENCH_WARN_ONLY set: reporting only, not failing")
            return scaling_rc
        return 1
    if scaling_rc:
        return scaling_rc
    print("== perf gate clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
