// Shared output helpers for the figure-reproduction harnesses.
#pragma once

#include <cstdio>
#include <string>

#include "util/metrics.hpp"

namespace colony::benchutil {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

inline double ms(SimTime us) { return static_cast<double>(us) / 1000.0; }

/// Print a time series as one row per bucket: mean latency (ms) and count
/// in each `bucket` of simulated time — the textual form of the figures'
/// scatter plots.
inline void print_series_buckets(const Series& series, SimTime duration,
                                 SimTime bucket = kSecond) {
  std::printf("%8s  %12s  %8s   (%s)\n", "t(s)", "mean(ms)", "samples",
              series.label().c_str());
  for (SimTime t = 0; t < duration; t += bucket) {
    const auto n = series.count_in(t, t + bucket);
    if (n == 0) {
      std::printf("%8.1f  %12s  %8zu\n",
                  static_cast<double>(t) / kSecond, "-", n);
    } else {
      std::printf("%8.1f  %12.3f  %8zu\n",
                  static_cast<double>(t) / kSecond,
                  series.mean_in(t, t + bucket), n);
    }
  }
}

inline void print_latency_line(const std::string& label,
                               const LatencyHistogram& h) {
  std::printf("%-24s n=%-8zu mean=%9.3fms  p50=%9.3fms  p99=%9.3fms\n",
              label.c_str(), h.count(), h.mean_us() / 1000.0,
              ms(h.percentile_us(50)), ms(h.percentile_us(99)));
}

}  // namespace colony::benchutil
