// Wall-clock micro-costs of the CRDT data path (supporting measurements;
// the simulator measures protocol latencies, these measure CPU).
#include <benchmark/benchmark.h>

#include "crdt/counter.hpp"
#include "crdt/maps.hpp"
#include "crdt/or_set.hpp"
#include "crdt/registers.hpp"
#include "crdt/rga.hpp"

namespace colony {
namespace {

void BM_PnCounterApply(benchmark::State& state) {
  PnCounter counter;
  const Bytes op = PnCounter::prepare_add(1);
  for (auto _ : state) {
    counter.apply(op);
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_PnCounterApply);

void BM_LwwRegisterApply(benchmark::State& state) {
  LwwRegister reg;
  std::uint64_t n = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const Bytes op =
        LwwRegister::prepare_assign("value", Arb{++n, Dot{1, n}});
    state.ResumeTiming();
    reg.apply(op);
  }
}
BENCHMARK(BM_LwwRegisterApply);

void BM_OrSetAdd(benchmark::State& state) {
  OrSet set;
  std::uint64_t n = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const Bytes op =
        OrSet::prepare_add("element" + std::to_string(n % 64), Dot{1, ++n});
    state.ResumeTiming();
    set.apply(op);
  }
}
BENCHMARK(BM_OrSetAdd);

void BM_OrSetRemovePrepare(benchmark::State& state) {
  OrSet set;
  for (std::uint64_t i = 0; i < 64; ++i) {
    set.apply(OrSet::prepare_add("element" + std::to_string(i), Dot{1, i + 1}));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.prepare_remove("element42"));
  }
}
BENCHMARK(BM_OrSetRemovePrepare);

void BM_GMapNestedUpdate(benchmark::State& state) {
  GMap map;
  const Bytes nested = PnCounter::prepare_add(1);
  for (auto _ : state) {
    map.apply(GMap::prepare_update("field", CrdtType::kPnCounter, nested));
  }
}
BENCHMARK(BM_GMapNestedUpdate);

void BM_RgaAppend(benchmark::State& state) {
  Rga seq;
  std::uint64_t n = 0;
  Dot last{};
  for (auto _ : state) {
    state.PauseTiming();
    const Arb arb{++n, Dot{1, n}};
    const Bytes op = Rga::prepare_insert(last, "message", arb);
    last = arb.dot;
    state.ResumeTiming();
    seq.apply(op);
  }
}
BENCHMARK(BM_RgaAppend);

void BM_RgaMaterialize(benchmark::State& state) {
  Rga seq;
  Dot last{};
  for (std::uint64_t i = 1; i <= static_cast<std::uint64_t>(state.range(0));
       ++i) {
    const Arb arb{i, Dot{1, i}};
    seq.apply(Rga::prepare_insert(last, "message", arb));
    last = arb.dot;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq.values());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RgaMaterialize)->Range(64, 4096)->Complexity();

void BM_CrdtSnapshotRoundTrip(benchmark::State& state) {
  OrSet set;
  for (std::uint64_t i = 0; i < 256; ++i) {
    set.apply(OrSet::prepare_add("element" + std::to_string(i), Dot{1, i + 1}));
  }
  for (auto _ : state) {
    OrSet copy;
    copy.restore(set.snapshot());
    benchmark::DoNotOptimize(copy.size());
  }
}
BENCHMARK(BM_CrdtSnapshotRoundTrip);

}  // namespace
}  // namespace colony
