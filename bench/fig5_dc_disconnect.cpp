// Figure 5 (paper section 7.3.1): impact of a DC disconnection.
//
// One ColonyChat workspace with 36 users; 12 of them form a peer group, the
// other 24 run independently (SwiftCloud-style client caches). The group's
// uplink to the DC is cut between t=25s and t=45s. The figure plots the
// response time of every transaction, classified as client hit / peer-group
// hit / DC hit; local and group latency must be unaffected by the outage.
#include <cstdio>

#include "bench_util.hpp"
#include "chat/driver.hpp"

int main() {
  using namespace colony;
  benchutil::header("Figure 5: impact of a DC disconnection",
                    "Toumlilt et al., Middleware'21, Fig. 5");

  ClusterConfig cluster_cfg;
  cluster_cfg.num_dcs = 1;
  cluster_cfg.seed = 11;
  Cluster cluster(cluster_cfg);

  // The peer group: 12 users.
  chat::ChatDriverConfig group_cfg;
  group_cfg.mode = ClientMode::kPeerGroup;
  group_cfg.clients = 12;
  group_cfg.group_size = 12;
  group_cfg.trace.num_users = 36;
  group_cfg.trace.num_workspaces = 1;
  group_cfg.trace.channels_per_workspace = 20;
  group_cfg.think_time = 150 * kMillisecond;
  group_cfg.cache_capacity = 16;
  group_cfg.seed = 21;
  chat::ChatDriver group(cluster, group_cfg);

  // The 24 independent users.
  chat::ChatDriverConfig solo_cfg = group_cfg;
  solo_cfg.mode = ClientMode::kClientCache;
  solo_cfg.clients = 24;
  solo_cfg.seed = 22;
  chat::ChatDriver solo(cluster, solo_cfg);

  group.start();
  solo.start();

  constexpr SimTime kDisconnectAt = 25 * kSecond;
  constexpr SimTime kReconnectAt = 45 * kSecond;
  constexpr SimTime kEnd = 70 * kSecond;

  // In the tree topology (Fig. 1) the group members route to the DC via
  // their parent's PoP; cutting the group's uplink severs all of them.
  const auto group_nodes = group.group_node_ids(0);
  cluster.scheduler().at(kDisconnectAt, [&] {
    for (const NodeId node : group_nodes) cluster.set_uplink(node, 0, false);
    std::printf("[t=25s] peer group uplink to DC cut\n");
  });
  cluster.scheduler().at(kReconnectAt, [&] {
    for (const NodeId node : group_nodes) cluster.set_uplink(node, 0, true);
    std::printf("[t=45s] peer group uplink restored\n");
  });

  cluster.run_until(kEnd);
  group.stop();
  solo.stop();

  benchutil::section("per-second response time, peer-group users");
  benchutil::print_series_buckets(group.series(ReadSource::kLocal), kEnd);
  benchutil::print_series_buckets(group.series(ReadSource::kPeer), kEnd);
  benchutil::print_series_buckets(group.series(ReadSource::kDc), kEnd);

  benchutil::section("per-second response time, independent users (DC hits)");
  benchutil::print_series_buckets(solo.series(ReadSource::kDc), kEnd);

  benchutil::section("summary (paper: client ~0ms, group ~2.3ms, DC ~82ms "
                     "at 50ms cellular uplink; offline latency unchanged)");
  benchutil::print_latency_line("client hit", group.latency(ReadSource::kLocal));
  benchutil::print_latency_line("peer-group hit",
                                group.latency(ReadSource::kPeer));
  benchutil::print_latency_line("DC hit (independent)",
                                solo.latency(ReadSource::kDc));

  const auto& local = group.series(ReadSource::kLocal);
  const auto& peer = group.series(ReadSource::kPeer);
  std::printf(
      "\nclient-hit mean before/during/after outage: %.3f / %.3f / %.3f ms\n",
      local.mean_in(5 * kSecond, kDisconnectAt),
      local.mean_in(kDisconnectAt, kReconnectAt),
      local.mean_in(kReconnectAt, kEnd));
  std::printf(
      "peer-hit   mean before/during/after outage: %.3f / %.3f / %.3f ms\n",
      peer.mean_in(5 * kSecond, kDisconnectAt),
      peer.mean_in(kDisconnectAt, kReconnectAt),
      peer.mean_in(kReconnectAt, kEnd));
  std::printf("group commits forwarded after reconnection: DC committed %llu "
              "transactions in total\n",
              static_cast<unsigned long long>(cluster.dc(0).committed()));
  return 0;
}
