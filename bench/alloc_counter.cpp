// Global operator new/delete replacement that counts allocations. Linked
// into the micro-benchmark binary only — production code never depends on
// it. Relaxed atomics: the counters are read as before/after snapshots
// around single-threaded measurement loops.
#include "alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted_alloc(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return p;
}

}  // namespace

namespace colony::benchalloc {

std::uint64_t allocation_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t allocated_bytes() {
  return g_bytes.load(std::memory_order_relaxed);
}

}  // namespace colony::benchalloc

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
