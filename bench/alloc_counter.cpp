// Global operator new/delete replacement that counts allocations. Linked
// into the micro-benchmark binary only — production code never depends on
// it.
//
// Thread-safe without contention: each thread claims a cache-line-padded
// counter slot on first allocation and only ever writes its own slot, so
// apply-pool workers never bounce a shared line while the timed loop runs.
// Readers sum all slots; the before/after snapshots the benches take happen
// while workers are quiescent (after a pool barrier), whose release/acquire
// pairing also publishes the workers' relaxed slot updates.
#include "alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

constexpr std::size_t kSlots = 256;

struct alignas(64) Slot {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> bytes{0};
};

Slot g_slots[kSlots];
std::atomic<std::size_t> g_next_slot{0};

Slot& my_slot() {
  // Claiming a slot must not itself allocate (we are inside operator new).
  // Threads past kSlots share slot 0 — counts stay correct, they just
  // contend; 256 is far beyond any pool size the benches spawn.
  thread_local Slot* slot = [] {
    const std::size_t i = g_next_slot.fetch_add(1, std::memory_order_relaxed);
    return &g_slots[i < kSlots ? i : 0];
  }();
  return *slot;
}

void* counted_alloc(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  Slot& s = my_slot();
  s.allocs.fetch_add(1, std::memory_order_relaxed);
  s.bytes.fetch_add(size, std::memory_order_relaxed);
  return p;
}

}  // namespace

namespace colony::benchalloc {

std::uint64_t allocation_count() {
  std::uint64_t total = 0;
  for (const Slot& s : g_slots) {
    total += s.allocs.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t allocated_bytes() {
  std::uint64_t total = 0;
  for (const Slot& s : g_slots) {
    total += s.bytes.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace colony::benchalloc

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
