// Wall-clock micro-costs of the visibility layer: transaction ingest with
// causal checks, visibility tests against a cut, K-stable predicate
// evaluation, and security-mask recomputation over a history.
#include <benchmark/benchmark.h>

#include "core/visibility.hpp"
#include "crdt/counter.hpp"

namespace colony {
namespace {

Transaction make_txn(DcId dc, Timestamp ts, std::size_t num_dcs) {
  Transaction txn;
  txn.meta.dot = Dot{100 + dc, ts};
  txn.meta.origin = 100 + dc;
  txn.meta.snapshot = VersionVector(num_dcs);
  txn.meta.snapshot.set(dc, ts - 1);
  txn.meta.mark_accepted(dc, ts);
  txn.ops.push_back(OpRecord{{"b", "x"}, CrdtType::kPnCounter,
                             PnCounter::prepare_add(1)});
  return txn;
}

void BM_EngineIngestSequential(benchmark::State& state) {
  TxnStore txns;
  JournalStore store;
  VisibilityEngine engine(txns, store, 3);
  Timestamp ts = 0;
  for (auto _ : state) {
    engine.ingest(make_txn(0, ++ts, 3));
  }
  benchmark::DoNotOptimize(engine.state_vector());
}
BENCHMARK(BM_EngineIngestSequential);

void BM_EngineIngestOutOfOrderWindow(benchmark::State& state) {
  // Deliver windows of 32 transactions in reverse: worst case for the
  // pending-buffer drain.
  Timestamp base = 0;
  for (auto _ : state) {
    state.PauseTiming();
    TxnStore txns;
    JournalStore store;
    VisibilityEngine engine(txns, store, 3);
    std::vector<Transaction> window;
    for (Timestamp i = 1; i <= 32; ++i) {
      window.push_back(make_txn(0, base + i, 3));
    }
    state.ResumeTiming();
    for (auto it = window.rbegin(); it != window.rend(); ++it) {
      engine.ingest(*it);
    }
    benchmark::DoNotOptimize(engine.pending_count());
  }
}
BENCHMARK(BM_EngineIngestOutOfOrderWindow);

void BM_VisibleAtCut(benchmark::State& state) {
  TxnStore txns;
  for (Timestamp ts = 1; ts <= 1024; ++ts) {
    Transaction txn = make_txn(ts % 3, ts, 3);
    txns.add(txn);
  }
  const VersionVector cut{500, 500, 500};
  Timestamp probe = 0;
  for (auto _ : state) {
    const Dot dot{100 + (probe % 3), (probe % 1024) + 1};
    benchmark::DoNotOptimize(txns.visible_at(dot, cut));
    ++probe;
  }
}
BENCHMARK(BM_VisibleAtCut);

void BM_RecomputeMasksOverHistory(benchmark::State& state) {
  const auto history = static_cast<Timestamp>(state.range(0));
  TxnStore txns;
  JournalStore store;
  VisibilityEngine engine(txns, store, 3);
  bool block = false;
  engine.set_security_check([&block](const Transaction& txn) {
    return !(block && txn.meta.dot.counter % 7 == 0);
  });
  for (Timestamp ts = 1; ts <= history; ++ts) {
    engine.ingest(make_txn(0, ts, 3));
  }
  for (auto _ : state) {
    block = !block;  // flip the policy: every recompute changes masks
    benchmark::DoNotOptimize(engine.recompute_masks());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RecomputeMasksOverHistory)->Range(64, 1024)->Complexity();

void BM_ReapplyMissing(benchmark::State& state) {
  TxnStore txns;
  JournalStore store;
  VisibilityEngine engine(txns, store, 3);
  for (Timestamp ts = 1; ts <= 256; ++ts) {
    engine.ingest(make_txn(0, ts, 3));
  }
  const auto snap = store.export_snapshot({"b", "x"});
  ObjectSnapshot empty = *snap;
  empty.applied.clear();  // pretend the fetched copy has nothing
  empty.state = PnCounter().snapshot();
  for (auto _ : state) {
    store.import_snapshot(empty);
    engine.reapply_missing({"b", "x"}, empty);
  }
}
BENCHMARK(BM_ReapplyMissing);

}  // namespace
}  // namespace colony
