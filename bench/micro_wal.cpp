// Wall-clock micro-costs of the durability layer: WAL append throughput,
// checkpoint write, and full recovery scans at small and large log sizes
// (the recovery numbers bound how long a crash-restarted node blocks
// before serving again).
#include <benchmark/benchmark.h>

#include "storage/wal.hpp"

namespace colony::storage {
namespace {

Bytes payload_of(std::size_t size) { return Bytes(size, 0xAB); }

void BM_WalAppend(benchmark::State& state) {
  const Bytes payload = payload_of(static_cast<std::size_t>(state.range(0)));
  Wal wal;
  for (auto _ : state) {
    wal.append(1, payload);
    // Keep the simulated disk bounded so the benchmark measures framing +
    // CRC cost, not unbounded vector growth.
    if (wal.log_bytes() > (64u << 20)) {
      state.PauseTiming();
      wal.clear();
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_WalAppend)->Arg(64)->Arg(1024);

void BM_WalCheckpoint(benchmark::State& state) {
  const Bytes snapshot = payload_of(16 * 1024);
  for (auto _ : state) {
    state.PauseTiming();
    Wal wal;
    wal.append(1, payload_of(128));
    state.ResumeTiming();
    wal.write_checkpoint(snapshot);
  }
}
BENCHMARK(BM_WalCheckpoint);

/// Recovery scan of a log with `range(0)` records (no checkpoint: the
/// worst case, a genesis replay).
void BM_WalRecover(benchmark::State& state) {
  Wal wal;
  const Bytes payload = payload_of(128);
  const auto records = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < records; ++i) wal.append(1, payload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.recover());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WalRecover)->Arg(1000)->Arg(20000)->Complexity();

/// Recovery when a fresh checkpoint covers most of the log: the common
/// restart case — scan cost is dominated by the snapshot copy plus the
/// short tail.
void BM_WalRecoverCheckpointed(benchmark::State& state) {
  Wal wal;
  const Bytes payload = payload_of(128);
  const auto records = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < records; ++i) wal.append(1, payload);
  wal.write_checkpoint(payload_of(16 * 1024));
  for (std::uint64_t i = 0; i < 32; ++i) wal.append(1, payload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.recover());
  }
}
BENCHMARK(BM_WalRecoverCheckpointed)->Arg(20000);

/// Checkpoint truncation of a log with `range(0)` records below the newest
/// checkpoint: the periodic-compaction cost a DC pays right after writing a
/// checkpoint. Dominated by the prefix erase + checkpoint-stream rescan.
void BM_WalTruncateToCheckpoint(benchmark::State& state) {
  Wal pristine;
  const Bytes payload = payload_of(128);
  const auto records = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < records; ++i) pristine.append(1, payload);
  pristine.write_checkpoint(payload_of(16 * 1024));
  for (std::uint64_t i = 0; i < 32; ++i) pristine.append(1, payload);
  std::uint64_t reclaimed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Wal wal = pristine;  // truncation mutates; copy outside the clock
    state.ResumeTiming();
    reclaimed = wal.truncate_to_checkpoint();
    benchmark::DoNotOptimize(reclaimed);
  }
  state.counters["reclaimed_bytes"] = static_cast<double>(reclaimed);
}
BENCHMARK(BM_WalTruncateToCheckpoint)->Arg(1000)->Arg(20000);

}  // namespace
}  // namespace colony::storage
