// Edge-case semantics of the client API and replication paths.
#include <gtest/gtest.h>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"
#include "crdt/registers.hpp"

namespace colony {
namespace {

const ObjectKey kX{"app", "x"};

TEST(EdgeCases, MultipleOpsOnSameKeyInOneTransaction) {
  Cluster cluster(ClusterConfig{});
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);
  auto txn = session.begin();
  for (int i = 0; i < 5; ++i) session.increment(txn, kX, 1);
  ASSERT_TRUE(session.commit(std::move(txn)).ok());
  EXPECT_EQ(dynamic_cast<const PnCounter*>(node.cached(kX))->value(), 5);
  cluster.run_for(2 * kSecond);
  EXPECT_EQ(
      dynamic_cast<const PnCounter*>(cluster.dc(0).store().current(kX))
          ->value(),
      5);
}

TEST(EdgeCases, LwwWithinTransactionLastAssignWins) {
  Cluster cluster(ClusterConfig{});
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);
  auto txn = session.begin();
  session.assign(txn, kX, "first");
  session.assign(txn, kX, "last");
  ASSERT_TRUE(session.commit(std::move(txn)).ok());
  EXPECT_EQ(dynamic_cast<const LwwRegister*>(node.cached(kX))->value(),
            "last");
}

TEST(EdgeCases, SubscribeEmptyInterestOpensSession) {
  Cluster cluster(ClusterConfig{});
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  bool done = false;
  node.subscribe({}, [&](Result<void> r) { done = r.ok(); });
  cluster.run_for(1 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(cluster.dc(0).session_count(), 1u);
}

TEST(EdgeCases, DoubleJoinSameGroupIsIdempotent) {
  Cluster cluster(ClusterConfig{});
  PeerGroupParent& parent = cluster.add_group_parent(0);
  EdgeNode& node = cluster.add_edge(ClientMode::kPeerGroup, 0, 1);
  cluster.wire_peer_links({parent.id(), node.id()});
  int joins = 0;
  node.join_group(parent.id(), [&](Result<void> r) { joins += r.ok(); });
  cluster.run_for(500 * kMillisecond);
  node.join_group(parent.id(), [&](Result<void> r) { joins += r.ok(); });
  cluster.run_for(500 * kMillisecond);
  EXPECT_EQ(joins, 2);
  EXPECT_EQ(parent.member_count(), 1u);  // no duplicate membership
}

TEST(EdgeCases, UnwatchInsideCallbackIsSafe) {
  Cluster cluster(ClusterConfig{});
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);
  int fired = 0;
  std::uint64_t handle = 0;
  handle = session.watch(kX, [&](const ObjectKey&) {
    ++fired;
    session.unwatch(handle);  // re-entrant unwatch
  });
  for (int i = 0; i < 3; ++i) {
    auto txn = session.begin();
    session.increment(txn, kX, 1);
    ASSERT_TRUE(session.commit(std::move(txn)).ok());
  }
  EXPECT_EQ(fired, 1);
}

TEST(EdgeCases, ThreeDcCausalChainAcrossCloud) {
  // A chain of dependent writes hopping DC0 -> DC1 -> DC2 through three
  // clients; each must observe the previous link before extending.
  ClusterConfig cfg;
  cfg.num_dcs = 3;
  Cluster cluster(cfg);
  std::vector<EdgeNode*> nodes;
  std::vector<std::unique_ptr<Session>> sessions;
  for (DcId d = 0; d < 3; ++d) {
    nodes.push_back(&cluster.add_edge(ClientMode::kClientCache, d, 10 + d));
    sessions.push_back(std::make_unique<Session>(*nodes.back()));
    sessions.back()->subscribe({kX}, [](Result<void>) {});
  }
  cluster.run_for(1 * kSecond);

  for (int link = 0; link < 3; ++link) {
    Session& s = *sessions[static_cast<std::size_t>(link)];
    // Wait until this client sees the previous links.
    for (int step = 0; step < 100; ++step) {
      const auto* c = dynamic_cast<const PnCounter*>(
          nodes[static_cast<std::size_t>(link)]->cached(kX));
      if ((c == nullptr ? 0 : c->value()) >= link) break;
      cluster.run_for(100 * kMillisecond);
    }
    auto txn = s.begin();
    s.increment(txn, kX, 1);
    ASSERT_TRUE(s.commit(std::move(txn)).ok());
    cluster.run_for(3 * kSecond);
  }
  for (DcId d = 0; d < 3; ++d) {
    EXPECT_EQ(
        dynamic_cast<const PnCounter*>(cluster.dc(d).store().current(kX))
            ->value(),
        3)
        << "DC " << d;
  }
}

TEST(EdgeCases, CloudModeReadOfUnknownKeyReturnsEmpty) {
  Cluster cluster(ClusterConfig{});
  EdgeNode& node = cluster.add_edge(ClientMode::kCloudOnly, 0, 1);
  bool done = false;
  node.cloud_execute({kX}, {}, [&](Result<proto::DcExecuteResp> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().read_values[0].state.empty());
    done = true;
  });
  cluster.run_for(2 * kSecond);
  EXPECT_TRUE(done);
}

TEST(EdgeCases, MigrationWithEmptyHistoryIsTrivial) {
  ClusterConfig cfg;
  cfg.num_dcs = 2;
  Cluster cluster(cfg);
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  bool migrated = false;
  node.migrate_to_dc(cluster.dc_node_id(1),
                     [&](Result<void> r) { migrated = r.ok(); });
  cluster.run_for(2 * kSecond);
  EXPECT_TRUE(migrated);
}

}  // namespace
}  // namespace colony
