// Node migration between DCs (paper section 3.8): duplicate suppression,
// equivalent commit timestamps, and causal compatibility checks.
#include <gtest/gtest.h>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"

namespace colony {
namespace {

const ObjectKey kX{"app", "x"};

TEST(Migration, SeamlessWhenStatesCompatible) {
  ClusterConfig cfg;
  cfg.num_dcs = 2;
  Cluster cluster(cfg);
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);

  auto txn = session.begin();
  session.increment(txn, kX, 1);
  ASSERT_TRUE(session.commit(std::move(txn)).ok());
  cluster.run_for(3 * kSecond);  // acked by DC0, replicated to DC1

  bool migrated = false;
  node.migrate_to_dc(cluster.dc_node_id(1), [&](Result<void> r) {
    ASSERT_TRUE(r.ok());
    migrated = true;
  });
  cluster.run_for(2 * kSecond);
  ASSERT_TRUE(migrated);
  EXPECT_EQ(node.connected_dc(), cluster.dc_node_id(1));

  // Work continues against the new DC.
  auto txn2 = session.begin();
  session.increment(txn2, kX, 1);
  ASSERT_TRUE(session.commit(std::move(txn2)).ok());
  cluster.run_for(3 * kSecond);
  EXPECT_EQ(node.unacked_count(), 0u);
  EXPECT_EQ(cluster.dc(1).committed(), 1u);  // sequenced at DC1 now
}

TEST(Migration, UnackedTransactionsResentWithoutDuplication) {
  ClusterConfig cfg;
  cfg.num_dcs = 2;
  Cluster cluster(cfg);
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);

  // DC0 processes the commit but the ack is lost; then the node migrates.
  auto txn = session.begin();
  session.increment(txn, kX, 5);
  ASSERT_TRUE(session.commit(std::move(txn)).ok());
  cluster.run_for(20 * kMillisecond);  // request reaches the uplink
  cluster.set_uplink(node.id(), 0, false);
  cluster.run_for(2 * kSecond);
  EXPECT_EQ(cluster.dc(0).committed(), 1u);  // DC0 has it
  EXPECT_EQ(node.unacked_count(), 1u);       // node does not know

  // Migrate to DC1 once DC0's commit replicated there.
  cluster.run_for(2 * kSecond);
  bool migrated = false;
  node.migrate_to_dc(cluster.dc_node_id(1), [&](Result<void> r) {
    migrated = r.ok();
  });
  cluster.run_for(5 * kSecond);
  ASSERT_TRUE(migrated);
  EXPECT_EQ(node.unacked_count(), 0u);

  // Exactly one increment system-wide: the dot filtered the duplicate, and
  // DC1 answered with the existing (equivalent) commit timestamp.
  const auto* c0 =
      dynamic_cast<const PnCounter*>(cluster.dc(0).store().current(kX));
  const auto* c1 =
      dynamic_cast<const PnCounter*>(cluster.dc(1).store().current(kX));
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c0->value(), 5);
  EXPECT_EQ(c1->value(), 5);
}

TEST(Migration, TrulyUnsentTransactionCommitsAtNewDc) {
  ClusterConfig cfg;
  cfg.num_dcs = 2;
  Cluster cluster(cfg);
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);

  // Commit while fully offline: DC0 never hears about it.
  cluster.set_uplink(node.id(), 0, false);
  auto txn = session.begin();
  session.increment(txn, kX, 7);
  ASSERT_TRUE(session.commit(std::move(txn)).ok());
  cluster.run_for(1 * kSecond);
  EXPECT_EQ(cluster.dc(0).committed(), 0u);

  bool migrated = false;
  node.migrate_to_dc(cluster.dc_node_id(1), [&](Result<void> r) {
    migrated = r.ok();
  });
  cluster.run_for(5 * kSecond);
  ASSERT_TRUE(migrated);
  EXPECT_EQ(node.unacked_count(), 0u);
  EXPECT_EQ(cluster.dc(1).committed(), 1u);  // sequenced at DC1

  cluster.run_for(3 * kSecond);  // replicate back to DC0
  const auto* c0 =
      dynamic_cast<const PnCounter*>(cluster.dc(0).store().current(kX));
  ASSERT_NE(c0, nullptr);
  EXPECT_EQ(c0->value(), 7);
}

TEST(Migration, IncompatibleWhenNewDcMissesDependencies) {
  // The node's state depends on DC0 commits that never reached DC1.
  ClusterConfig cfg;
  cfg.num_dcs = 2;
  Cluster cluster(cfg);
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);

  cluster.network().set_link_up(cluster.dc_node_id(0), cluster.dc_node_id(1),
                                false);
  auto txn = session.begin();
  session.increment(txn, kX, 1);
  ASSERT_TRUE(session.commit(std::move(txn)).ok());
  cluster.run_for(2 * kSecond);
  EXPECT_TRUE(VersionVector({1, 0}).leq(node.state_vector()));

  bool incompatible = false;
  node.migrate_to_dc(cluster.dc_node_id(1), [&](Result<void> r) {
    incompatible =
        !r.ok() && r.error().code == Error::Code::kIncompatible;
  });
  cluster.run_for(2 * kSecond);
  EXPECT_TRUE(incompatible);

  // Once the mesh heals, the migration succeeds on retry.
  cluster.network().set_link_up(cluster.dc_node_id(0), cluster.dc_node_id(1),
                                true);
  cluster.run_for(2 * kSecond);
  bool migrated = false;
  node.migrate_to_dc(cluster.dc_node_id(1), [&](Result<void> r) {
    migrated = r.ok();
  });
  cluster.run_for(2 * kSecond);
  EXPECT_TRUE(migrated);
}

TEST(Migration, EquivalentCommitTimestampsRecorded) {
  // Force the duplicate-send path and verify the transaction ends up with
  // two accepting DCs on some replica's record (section 3.8 "a same
  // transaction may carry up to N equivalent commit timestamps").
  ClusterConfig cfg;
  cfg.num_dcs = 2;
  Cluster cluster(cfg);
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);

  // Cut the DC mesh so DC1 cannot learn the txn from DC0 before the node
  // re-sends it there.
  cluster.network().set_link_up(cluster.dc_node_id(0), cluster.dc_node_id(1),
                                false);
  auto txn = session.begin();
  session.increment(txn, kX, 5);
  const auto dot = session.commit(std::move(txn));
  ASSERT_TRUE(dot.ok());
  cluster.run_for(20 * kMillisecond);
  cluster.set_uplink(node.id(), 0, false);  // ack lost
  cluster.run_for(2 * kSecond);
  ASSERT_EQ(cluster.dc(0).committed(), 1u);

  // The node, still holding the unacked txn, migrates to DC1, which
  // sequences it independently.
  bool migrated = false;
  node.migrate_to_dc(cluster.dc_node_id(1), [&](Result<void> r) {
    migrated = r.ok();
  });
  cluster.run_for(5 * kSecond);
  ASSERT_TRUE(migrated);
  ASSERT_EQ(cluster.dc(1).committed(), 1u);

  // Heal everything; both DCs replicate their copies and merge the
  // equivalent commit info; the increment applies exactly once.
  cluster.network().set_link_up(cluster.dc_node_id(0), cluster.dc_node_id(1),
                                true);
  cluster.run_for(5 * kSecond);
  const Transaction* at_dc0 = cluster.dc(0).txns().find(dot.value());
  ASSERT_NE(at_dc0, nullptr);
  EXPECT_TRUE(at_dc0->meta.accepted_by(0));
  EXPECT_TRUE(at_dc0->meta.accepted_by(1));
  const auto* c0 =
      dynamic_cast<const PnCounter*>(cluster.dc(0).store().current(kX));
  const auto* c1 =
      dynamic_cast<const PnCounter*>(cluster.dc(1).store().current(kX));
  EXPECT_EQ(c0->value(), 5);
  EXPECT_EQ(c1->value(), 5);
}

}  // namespace
}  // namespace colony
