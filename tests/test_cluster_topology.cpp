// Cluster topology builder: node-id layout, link wiring, failure-injection
// helpers, and config validation.
#include <gtest/gtest.h>

#include "colony/cluster.hpp"

namespace colony {
namespace {

TEST(ClusterTopology, DcMeshFullyConnected) {
  ClusterConfig cfg;
  cfg.num_dcs = 3;
  cfg.k_stability = 2;
  Cluster cluster(cfg);
  for (DcId a = 0; a < 3; ++a) {
    for (DcId b = 0; b < 3; ++b) {
      if (a == b) continue;
      EXPECT_TRUE(cluster.network().link_exists(cluster.dc_node_id(a),
                                                cluster.dc_node_id(b)));
    }
    EXPECT_EQ(cluster.dc(a).dc_id(), a);
  }
}

TEST(ClusterTopology, EdgeLinkedToEveryDc) {
  ClusterConfig cfg;
  cfg.num_dcs = 3;
  Cluster cluster(cfg);
  EdgeNode& edge = cluster.add_edge(ClientMode::kClientCache, 1, 7);
  EXPECT_EQ(edge.connected_dc(), cluster.dc_node_id(1));
  for (DcId d = 0; d < 3; ++d) {
    EXPECT_TRUE(cluster.network().link_exists(edge.id(),
                                              cluster.dc_node_id(d)))
        << "migration requires a link to DC " << d;
  }
}

TEST(ClusterTopology, DistinctNodeIds) {
  ClusterConfig cfg;
  cfg.num_dcs = 2;
  Cluster cluster(cfg);
  EdgeNode& a = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EdgeNode& b = cluster.add_edge(ClientMode::kPeerGroup, 1, 2);
  PeerGroupParent& p = cluster.add_group_parent(0);
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(a.id(), p.id());
  EXPECT_NE(a.id(), cluster.dc_node_id(0));
}

TEST(ClusterTopology, WirePeerLinksIsIdempotent) {
  Cluster cluster(ClusterConfig{});
  EdgeNode& a = cluster.add_edge(ClientMode::kPeerGroup, 0, 1);
  EdgeNode& b = cluster.add_edge(ClientMode::kPeerGroup, 0, 2);
  cluster.wire_peer_links({a.id(), b.id()});
  cluster.wire_peer_links({a.id(), b.id()});  // no duplicate-link issues
  EXPECT_TRUE(cluster.network().link_exists(a.id(), b.id()));
}

TEST(ClusterTopology, UplinkToggle) {
  Cluster cluster(ClusterConfig{});
  EdgeNode& edge = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EXPECT_TRUE(cluster.network().link_up(edge.id(), cluster.dc_node_id(0)));
  cluster.set_uplink(edge.id(), 0, false);
  EXPECT_FALSE(cluster.network().link_up(edge.id(), cluster.dc_node_id(0)));
  cluster.set_uplink(edge.id(), 0, true);
  EXPECT_TRUE(cluster.network().link_up(edge.id(), cluster.dc_node_id(0)));
}

TEST(ClusterTopology, RunForAdvancesTime) {
  Cluster cluster(ClusterConfig{});
  const SimTime before = cluster.now();
  cluster.run_for(3 * kSecond);
  EXPECT_EQ(cluster.now(), before + 3 * kSecond);
}

TEST(ClusterTopologyDeath, RejectsBadConfigs) {
  ClusterConfig zero;
  zero.num_dcs = 0;
  EXPECT_DEATH(Cluster{zero}, "core sizes");
  ClusterConfig bad_k;
  bad_k.num_dcs = 2;
  bad_k.k_stability = 3;
  EXPECT_DEATH(Cluster{bad_k}, "K out of range");
}

}  // namespace
}  // namespace colony
