// Reactive update subscriptions (section 6.1) and versioned reads
// (section 4.1).
#include <gtest/gtest.h>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"

namespace colony {
namespace {

const ObjectKey kX{"app", "x"};
const ObjectKey kY{"app", "y"};

TEST(Watch, FiresOnOwnAndRemoteUpdates) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  EdgeNode& a = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EdgeNode& b = cluster.add_edge(ClientMode::kClientCache, 0, 2);
  Session sa(a), sb(b);
  sb.subscribe({kX}, [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  int a_events = 0, b_events = 0;
  sa.watch(kX, [&](const ObjectKey&) { ++a_events; });
  sb.watch(kX, [&](const ObjectKey&) { ++b_events; });

  auto txn = sa.begin();
  sa.increment(txn, kX, 1);
  ASSERT_TRUE(sa.commit(std::move(txn)).ok());
  EXPECT_EQ(a_events, 1);  // own commit fires synchronously

  cluster.run_for(3 * kSecond);
  EXPECT_EQ(b_events, 1);  // remote update fires when pushed
}

TEST(Watch, OnlyMatchingKeyFires) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  EdgeNode& a = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session sa(a);
  int events = 0;
  sa.watch(kY, [&](const ObjectKey&) { ++events; });
  auto txn = sa.begin();
  sa.increment(txn, kX, 1);
  ASSERT_TRUE(sa.commit(std::move(txn)).ok());
  EXPECT_EQ(events, 0);
}

TEST(Watch, UnwatchStops) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  EdgeNode& a = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session sa(a);
  int events = 0;
  const auto handle = sa.watch(kX, [&](const ObjectKey&) { ++events; });
  auto t1 = sa.begin();
  sa.increment(t1, kX, 1);
  ASSERT_TRUE(sa.commit(std::move(t1)).ok());
  sa.unwatch(handle);
  auto t2 = sa.begin();
  sa.increment(t2, kX, 1);
  ASSERT_TRUE(sa.commit(std::move(t2)).ok());
  EXPECT_EQ(events, 1);
}

TEST(Watch, MultipleWatchersSameKey) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  EdgeNode& a = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session sa(a);
  int first = 0, second = 0;
  sa.watch(kX, [&](const ObjectKey&) { ++first; });
  sa.watch(kX, [&](const ObjectKey&) { ++second; });
  auto txn = sa.begin();
  sa.increment(txn, kX, 1);
  ASSERT_TRUE(sa.commit(std::move(txn)).ok());
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(Versioning, ReadAtOlderCut) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);

  // Three resolved commits: states [1], [2], [3].
  for (int i = 0; i < 3; ++i) {
    auto txn = session.begin();
    session.increment(txn, kX, 1);
    ASSERT_TRUE(session.commit(std::move(txn)).ok());
    cluster.run_for(2 * kSecond);
  }
  ASSERT_EQ(node.state_vector(), (VersionVector{3}));

  for (Timestamp cut = 0; cut <= 3; ++cut) {
    const auto value = session.read_version(kX, VersionVector{cut});
    ASSERT_NE(value, nullptr) << "cut " << cut;
    EXPECT_EQ(dynamic_cast<const PnCounter*>(value.get())->value(),
              static_cast<std::int64_t>(cut))
        << "cut " << cut;
  }
}

TEST(Versioning, UncachedReturnsNull) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EXPECT_EQ(node.read_at(kX, VersionVector{0}), nullptr);
}

}  // namespace
}  // namespace colony
