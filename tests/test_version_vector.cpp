#include "clock/version_vector.hpp"

#include <gtest/gtest.h>

namespace colony {
namespace {

TEST(VersionVector, DefaultIsBottom) {
  VersionVector v(3);
  EXPECT_EQ(v.at(0), 0u);
  EXPECT_EQ(v.at(2), 0u);
  EXPECT_EQ(v.at(9), 0u);  // out-of-range components read as zero
}

TEST(VersionVector, SetAndGet) {
  VersionVector v(3);
  v.set(1, 42);
  EXPECT_EQ(v.at(1), 42u);
  v.set(5, 7);  // grows on demand
  EXPECT_EQ(v.at(5), 7u);
  EXPECT_EQ(v.size(), 6u);
}

TEST(VersionVector, MergeIsComponentwiseMax) {
  VersionVector a{3, 0, 5};
  VersionVector b{1, 4, 2};
  a.merge(b);
  EXPECT_EQ(a, (VersionVector{3, 4, 5}));
}

TEST(VersionVector, LubIsSymmetric) {
  const VersionVector a{3, 0, 5};
  const VersionVector b{1, 4, 2};
  EXPECT_EQ(VersionVector::lub(a, b), VersionVector::lub(b, a));
}

TEST(VersionVector, PartialOrder) {
  const VersionVector a{1, 2, 3};
  const VersionVector b{2, 2, 3};
  const VersionVector c{0, 5, 0};
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
  EXPECT_TRUE(a.lt(b));
  EXPECT_FALSE(a.lt(a));
  EXPECT_TRUE(a.concurrent_with(c));
  EXPECT_TRUE(c.concurrent_with(b));
  EXPECT_FALSE(a.concurrent_with(b));
}

TEST(VersionVector, PaddingEquivalence) {
  // [1,0] and [1] denote the same causal point.
  const VersionVector a{1, 0};
  const VersionVector b{1};
  EXPECT_TRUE(a.leq(b));
  EXPECT_TRUE(b.leq(a));
  EXPECT_FALSE(a.lt(b));
  EXPECT_FALSE(a.concurrent_with(b));
}

TEST(VersionVector, CodecRoundTrip) {
  VersionVector v{9, 0, 123456789};
  Encoder enc;
  v.encode(enc);
  EXPECT_EQ(enc.size(), v.wire_size());
  Decoder dec(enc.data());
  EXPECT_EQ(VersionVector::decode(dec), v);
}

TEST(VersionVector, WireSizeIsEightBytesPerDc) {
  // Footnote 2: each component is 8 bytes.
  VersionVector v(5);
  EXPECT_EQ(v.wire_size(), 4u + 5 * 8u);
}

// --- K-stability cut --------------------------------------------------------

TEST(KStableCut, KEqualsOneIsComponentwiseMax) {
  const std::vector<VersionVector> states{{5, 1, 0}, {3, 4, 0}, {0, 0, 9}};
  EXPECT_EQ(k_stable_cut(states, 1), (VersionVector{5, 4, 9}));
}

TEST(KStableCut, KEqualsNIsComponentwiseMin) {
  const std::vector<VersionVector> states{{5, 1, 2}, {3, 4, 2}, {4, 2, 9}};
  EXPECT_EQ(k_stable_cut(states, 3), (VersionVector{3, 1, 2}));
}

TEST(KStableCut, MiddleKPicksKthLargest) {
  const std::vector<VersionVector> states{{5, 1, 2}, {3, 4, 2}, {4, 2, 9}};
  EXPECT_EQ(k_stable_cut(states, 2), (VersionVector{4, 2, 2}));
}

TEST(KStableCut, MonotoneInK) {
  const std::vector<VersionVector> states{{5, 1, 2}, {3, 4, 2}, {4, 2, 9}};
  VersionVector prev = k_stable_cut(states, 1);
  for (std::size_t k = 2; k <= 3; ++k) {
    const VersionVector cut = k_stable_cut(states, k);
    EXPECT_TRUE(cut.leq(prev)) << "K=" << k;
    prev = cut;
  }
}

TEST(KStableCutDeath, RejectsBadK) {
  const std::vector<VersionVector> states{{1}, {2}};
  EXPECT_DEATH(k_stable_cut(states, 0), "K out of range");
  EXPECT_DEATH(k_stable_cut(states, 3), "K out of range");
}

}  // namespace
}  // namespace colony
