// Wal framing + recovery contract, including the torn-tail fuzz sweeps:
// truncate the record log at EVERY byte offset inside the last frame and
// flip a bit at EVERY byte offset of the last frame — in all cases
// recover() must surface exactly the intact prefix, flag the log torn, and
// never resurrect a damaged record.
#include "storage/wal.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace colony::storage {
namespace {

Bytes bytes_of(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

/// A small log with distinguishable records; returns the payloads.
std::vector<Bytes> fill(Wal& wal, std::size_t n) {
  std::vector<Bytes> payloads;
  for (std::size_t i = 0; i < n; ++i) {
    payloads.push_back(bytes_of("record-" + std::to_string(i) +
                                std::string(i % 7, '#')));
    wal.append(static_cast<std::uint32_t>(i + 1), payloads.back());
  }
  return payloads;
}

TEST(Wal, EmptyLogRecoversToGenesis) {
  const Wal wal;
  const WalRecovery rec = wal.recover();
  EXPECT_FALSE(rec.checkpoint.has_value());
  EXPECT_EQ(rec.checkpoint_offset, 0u);
  EXPECT_TRUE(rec.tail.empty());
  EXPECT_EQ(rec.valid_bytes, 0u);
  EXPECT_FALSE(rec.torn);
}

TEST(Wal, AppendedRecordsRecoverInOrder) {
  Wal wal;
  const auto payloads = fill(wal, 5);
  const WalRecovery rec = wal.recover();
  EXPECT_FALSE(rec.torn);
  EXPECT_EQ(rec.valid_bytes, wal.log_bytes());
  ASSERT_EQ(rec.tail.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rec.tail[i].type, i + 1);
    EXPECT_EQ(rec.tail[i].payload, payloads[i]);
  }
}

TEST(Wal, CheckpointAnchorsTheTail) {
  Wal wal;
  fill(wal, 3);
  wal.write_checkpoint(bytes_of("snapshot-at-3"));
  const auto later = fill(wal, 2);
  const WalRecovery rec = wal.recover();
  ASSERT_TRUE(rec.checkpoint.has_value());
  EXPECT_EQ(*rec.checkpoint, bytes_of("snapshot-at-3"));
  ASSERT_EQ(rec.tail.size(), 2u);  // only records after the anchor
  EXPECT_EQ(rec.tail[0].payload, later[0]);
  EXPECT_EQ(rec.tail[1].payload, later[1]);
  EXPECT_EQ(wal.records_since_checkpoint(), 2u);
}

TEST(Wal, RecoverIsIdempotent) {
  Wal wal;
  fill(wal, 4);
  wal.write_checkpoint(bytes_of("cp"));
  fill(wal, 2);
  const WalRecovery a = wal.recover();
  const WalRecovery b = wal.recover();
  EXPECT_EQ(a.checkpoint, b.checkpoint);
  EXPECT_EQ(a.checkpoint_offset, b.checkpoint_offset);
  EXPECT_EQ(a.tail, b.tail);
  EXPECT_EQ(a.valid_bytes, b.valid_bytes);
}

// --- torn-tail fuzz -------------------------------------------------------

TEST(Wal, TruncationAtEveryByteOfLastRecordDropsExactlyIt) {
  Wal pristine;
  const auto payloads = fill(pristine, 4);
  const std::size_t full = pristine.log_bytes();
  const std::size_t last_frame = Wal::kHeaderBytes + payloads.back().size() +
                                 Wal::kTrailerBytes;
  const std::size_t boundary = full - last_frame;

  for (std::size_t cut = boundary; cut < full; ++cut) {
    Wal wal = pristine;
    wal.mutable_log().resize(cut);
    const WalRecovery rec = wal.recover();
    ASSERT_EQ(rec.tail.size(), 3u) << "cut at byte " << cut;
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(rec.tail[i].payload, payloads[i]) << "cut at byte " << cut;
    }
    EXPECT_EQ(rec.valid_bytes, boundary) << "cut at byte " << cut;
    // A cut exactly on the frame boundary leaves a well-formed (shorter)
    // log; any cut inside the frame is a torn tail.
    EXPECT_EQ(rec.torn, cut != boundary) << "cut at byte " << cut;
  }
}

TEST(Wal, BitFlipAtEveryByteOfLastRecordNeverResurrectsIt) {
  Wal pristine;
  const auto payloads = fill(pristine, 4);
  const std::size_t full = pristine.log_bytes();
  const std::size_t last_frame = Wal::kHeaderBytes + payloads.back().size() +
                                 Wal::kTrailerBytes;
  const std::size_t boundary = full - last_frame;

  for (std::size_t at = boundary; at < full; ++at) {
    for (const std::uint8_t mask : {0x01, 0x80}) {
      Wal wal = pristine;
      wal.mutable_log()[at] ^= mask;
      const WalRecovery rec = wal.recover();
      EXPECT_TRUE(rec.torn) << "flip 0x" << std::hex << int(mask)
                            << std::dec << " at byte " << at;
      ASSERT_EQ(rec.tail.size(), 3u) << "flip at byte " << at;
      for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(rec.tail[i].payload, payloads[i]) << "flip at byte " << at;
      }
      EXPECT_EQ(rec.valid_bytes, boundary) << "flip at byte " << at;
    }
  }
}

TEST(Wal, CorruptionMidLogDropsEverythingAfterIt) {
  // The recovery contract is prefix-only: a record after a damaged frame is
  // unreachable even if its own bytes are intact (framing offsets cannot be
  // trusted past the first tear).
  Wal pristine;
  const auto payloads = fill(pristine, 5);
  const std::size_t frame1 = Wal::kHeaderBytes + payloads[0].size() +
                             Wal::kTrailerBytes;
  Wal wal = pristine;
  wal.mutable_log()[frame1 + 2] ^= 0x40;  // inside record #2
  const WalRecovery rec = wal.recover();
  EXPECT_TRUE(rec.torn);
  ASSERT_EQ(rec.tail.size(), 1u);
  EXPECT_EQ(rec.tail[0].payload, payloads[0]);
  EXPECT_EQ(rec.valid_bytes, frame1);
}

TEST(Wal, DamagedNewestCheckpointFallsBackToOlder) {
  Wal wal;
  fill(wal, 2);
  wal.write_checkpoint(bytes_of("older"));
  fill(wal, 2);
  const std::size_t newest_at = wal.checkpoint_bytes();
  wal.write_checkpoint(bytes_of("newest"));

  // Flip a bit in every byte of the newest checkpoint frame in turn: the
  // older checkpoint must be chosen each time, and the records after its
  // anchor must come back as the tail.
  const Bytes intact_cp = wal.raw_checkpoints();
  for (std::size_t at = newest_at; at < intact_cp.size(); ++at) {
    wal.mutable_checkpoints() = intact_cp;
    wal.mutable_checkpoints()[at] ^= 0x04;
    const WalRecovery rec = wal.recover();
    ASSERT_TRUE(rec.checkpoint.has_value()) << "flip at byte " << at;
    EXPECT_EQ(*rec.checkpoint, bytes_of("older")) << "flip at byte " << at;
    EXPECT_EQ(rec.tail.size(), 2u) << "flip at byte " << at;
    EXPECT_TRUE(rec.torn) << "flip at byte " << at;
  }
}

TEST(Wal, CheckpointAheadOfValidLogIsRejected) {
  // A checkpoint anchored past the intact record prefix describes state the
  // log cannot prove — it must be skipped (else recovery would trust data
  // that the torn tail no longer backs).
  Wal wal;
  const auto payloads = fill(wal, 3);
  wal.write_checkpoint(bytes_of("over-eager"));
  const std::size_t last_frame = Wal::kHeaderBytes + payloads.back().size() +
                                 Wal::kTrailerBytes;
  wal.mutable_log().resize(wal.log_bytes() - last_frame + 3);  // tear #3
  const WalRecovery rec = wal.recover();
  EXPECT_FALSE(rec.checkpoint.has_value());
  EXPECT_TRUE(rec.torn);
  ASSERT_EQ(rec.tail.size(), 2u);
  EXPECT_EQ(rec.tail[0].payload, payloads[0]);
  EXPECT_EQ(rec.tail[1].payload, payloads[1]);
}

TEST(Wal, TruncateToCleansTornTailForNewAppends) {
  Wal wal;
  fill(wal, 3);
  wal.mutable_log().resize(wal.log_bytes() - 2);  // tear the last frame
  WalRecovery rec = wal.recover();
  ASSERT_TRUE(rec.torn);
  wal.truncate_to(rec.valid_bytes);
  wal.append(99, bytes_of("fresh"));
  rec = wal.recover();
  EXPECT_FALSE(rec.torn);
  ASSERT_EQ(rec.tail.size(), 3u);
  EXPECT_EQ(rec.tail.back().type, 99u);
  EXPECT_EQ(rec.tail.back().payload, bytes_of("fresh"));
}

// --- checkpoint truncation ------------------------------------------------

TEST(Wal, TruncateToCheckpointReclaimsPrefixAndKeepsRecovery) {
  Wal wal;
  fill(wal, 3);
  wal.write_checkpoint(bytes_of("snap"));
  const auto later = fill(wal, 2);

  const WalRecovery before = wal.recover();
  const std::uint64_t anchor = before.checkpoint_offset;
  ASSERT_GT(anchor, 0u);

  const std::uint64_t dropped = wal.truncate_to_checkpoint();
  EXPECT_EQ(dropped, anchor);
  EXPECT_EQ(wal.log_base(), anchor);
  EXPECT_EQ(wal.truncated_bytes(), anchor);

  // Recovery after truncation is logically unchanged: same checkpoint, same
  // tail, same logical end — only the dead prefix is gone from memory.
  const WalRecovery after = wal.recover();
  EXPECT_FALSE(after.torn);
  ASSERT_TRUE(after.checkpoint.has_value());
  EXPECT_EQ(*after.checkpoint, bytes_of("snap"));
  EXPECT_EQ(after.checkpoint_offset, anchor);
  EXPECT_EQ(after.valid_bytes, before.valid_bytes);
  ASSERT_EQ(after.tail.size(), 2u);
  EXPECT_EQ(after.tail[0].payload, later[0]);
  EXPECT_EQ(after.tail[1].payload, later[1]);

  // The log keeps growing normally from the truncated base.
  wal.append(42, bytes_of("post-truncation"));
  const WalRecovery grown = wal.recover();
  ASSERT_EQ(grown.tail.size(), 3u);
  EXPECT_EQ(grown.tail.back().payload, bytes_of("post-truncation"));
}

TEST(Wal, TruncateToCheckpointWithoutCheckpointIsANoop) {
  Wal wal;
  fill(wal, 4);
  const std::size_t before = wal.log_bytes();
  EXPECT_EQ(wal.truncate_to_checkpoint(), 0u);
  EXPECT_EQ(wal.log_bytes(), before);
  EXPECT_EQ(wal.log_base(), 0u);
}

TEST(Wal, TruncateToCheckpointIsIdempotent) {
  Wal wal;
  fill(wal, 3);
  wal.write_checkpoint(bytes_of("snap"));
  fill(wal, 2);
  EXPECT_GT(wal.truncate_to_checkpoint(), 0u);
  // The surviving checkpoint anchors exactly at log_base: nothing more to
  // reclaim until a NEWER checkpoint lands.
  EXPECT_EQ(wal.truncate_to_checkpoint(), 0u);
}

TEST(Wal, TruncateToCheckpointShedsSupersededCheckpoints) {
  Wal wal;
  fill(wal, 2);
  wal.write_checkpoint(bytes_of("older"));
  fill(wal, 2);
  wal.write_checkpoint(bytes_of("newest"));
  const std::size_t two_cp_bytes = wal.checkpoint_bytes();

  EXPECT_GT(wal.truncate_to_checkpoint(), 0u);
  EXPECT_LT(wal.checkpoint_bytes(), two_cp_bytes);  // "older" gone
  EXPECT_EQ(wal.log_bytes(), 0u);                   // everything folded
  const WalRecovery rec = wal.recover();
  ASSERT_TRUE(rec.checkpoint.has_value());
  EXPECT_EQ(*rec.checkpoint, bytes_of("newest"));
  EXPECT_TRUE(rec.tail.empty());
}

TEST(Wal, TornTruncationIntermediateStateStillRecovers) {
  // Crash between truncation's two steps: the checkpoint stream is already
  // compacted but the record log still holds the full prefix. Recovery must
  // behave exactly as if truncation had completed (or never started).
  Wal pristine;
  fill(pristine, 2);
  pristine.write_checkpoint(bytes_of("older"));
  const auto later = fill(pristine, 2);
  pristine.write_checkpoint(bytes_of("newest"));
  const WalRecovery want = pristine.recover();

  Wal done = pristine;
  done.truncate_to_checkpoint();

  Wal intermediate;  // compacted checkpoints + untouched log, base still 0
  intermediate.mutable_log() = pristine.raw_log();
  intermediate.mutable_checkpoints() = done.raw_checkpoints();
  const WalRecovery rec = intermediate.recover();
  ASSERT_TRUE(rec.checkpoint.has_value());
  EXPECT_EQ(*rec.checkpoint, bytes_of("newest"));
  EXPECT_EQ(rec.checkpoint_offset, want.checkpoint_offset);
  EXPECT_EQ(rec.tail, want.tail);
  EXPECT_FALSE(rec.torn);
}

TEST(Wal, TruncatedLogSurvivesTornTailFuzz) {
  // The full torn-tail sweep over a truncated wal: logical offsets must keep
  // lining up when the in-memory stream no longer starts at genesis.
  Wal pristine;
  fill(pristine, 3);
  pristine.write_checkpoint(bytes_of("snap"));
  ASSERT_GT(pristine.truncate_to_checkpoint(), 0u);
  const auto later = fill(pristine, 2);
  const std::size_t full = pristine.log_bytes();
  const std::size_t last_frame =
      Wal::kHeaderBytes + later.back().size() + Wal::kTrailerBytes;
  const std::size_t boundary = full - last_frame;

  for (std::size_t cut = boundary; cut < full; ++cut) {
    Wal wal = pristine;
    wal.mutable_log().resize(cut);
    const WalRecovery rec = wal.recover();
    ASSERT_TRUE(rec.checkpoint.has_value()) << "cut at byte " << cut;
    EXPECT_EQ(*rec.checkpoint, bytes_of("snap")) << "cut at byte " << cut;
    ASSERT_EQ(rec.tail.size(), 1u) << "cut at byte " << cut;
    EXPECT_EQ(rec.tail[0].payload, later[0]) << "cut at byte " << cut;
    EXPECT_EQ(rec.valid_bytes, wal.log_base() + boundary)
        << "cut at byte " << cut;

    // Post-recovery cleanup + append must work against logical offsets.
    wal.truncate_to(rec.valid_bytes);
    wal.append(77, bytes_of("fresh"));
    const WalRecovery again = wal.recover();
    EXPECT_FALSE(again.torn) << "cut at byte " << cut;
    ASSERT_EQ(again.tail.size(), 2u) << "cut at byte " << cut;
    EXPECT_EQ(again.tail.back().payload, bytes_of("fresh"))
        << "cut at byte " << cut;
  }
}

TEST(Wal, CheckpointAfterTruncationAnchorsLogically) {
  Wal wal;
  fill(wal, 3);
  wal.write_checkpoint(bytes_of("first"));
  const std::uint64_t first_drop = wal.truncate_to_checkpoint();
  ASSERT_GT(first_drop, 0u);
  fill(wal, 2);
  wal.write_checkpoint(bytes_of("second"));

  const WalRecovery rec = wal.recover();
  ASSERT_TRUE(rec.checkpoint.has_value());
  EXPECT_EQ(*rec.checkpoint, bytes_of("second"));
  EXPECT_EQ(rec.checkpoint_offset, wal.log_base() + wal.log_bytes());
  EXPECT_TRUE(rec.tail.empty());

  // A second truncation reclaims the two records behind "second" and keeps
  // compounding the logical base.
  const std::uint64_t second_drop = wal.truncate_to_checkpoint();
  EXPECT_GT(second_drop, 0u);
  EXPECT_EQ(wal.truncated_bytes(), first_drop + second_drop);
  EXPECT_EQ(wal.log_base(), first_drop + second_drop);
  EXPECT_EQ(wal.log_bytes(), 0u);
}

TEST(Wal, EmptyPayloadRecordsRoundTrip) {
  Wal wal;
  wal.append(7, Bytes{});
  wal.append(8, Bytes{});
  const WalRecovery rec = wal.recover();
  ASSERT_EQ(rec.tail.size(), 2u);
  EXPECT_EQ(rec.tail[0].type, 7u);
  EXPECT_TRUE(rec.tail[0].payload.empty());
  EXPECT_FALSE(rec.torn);
}

}  // namespace
}  // namespace colony::storage
