// ColonyChat workload machinery: trace statistics and a short end-to-end
// run in each client mode.
#include <gtest/gtest.h>

#include "chat/driver.hpp"

namespace colony::chat {
namespace {

TEST(Trace, RespectsReadWriteRatio) {
  TraceConfig cfg;
  cfg.bot_fraction = 0.0;
  cfg.write_ratio = 0.10;
  Rng rng(3);
  UserScript script(cfg, 1, rng);
  std::size_t writes = 0;
  constexpr std::size_t kN = 20'000;
  for (std::size_t i = 0; i < kN; ++i) {
    if (script.next(rng).kind == ActionKind::kPostMessage) ++writes;
  }
  EXPECT_NEAR(static_cast<double>(writes) / kN, 0.10, 0.02);
}

TEST(Trace, BotsWriteMore) {
  TraceConfig cfg;
  cfg.bot_fraction = 1.0;  // everyone is a bot
  Rng rng(3);
  UserScript script(cfg, 1, rng);
  EXPECT_TRUE(script.is_bot());
  std::size_t writes = 0;
  constexpr std::size_t kN = 10'000;
  for (std::size_t i = 0; i < kN; ++i) {
    if (script.next(rng).kind == ActionKind::kPostMessage) ++writes;
  }
  EXPECT_NEAR(static_cast<double>(writes) / kN, cfg.bot_write_ratio, 0.03);
}

TEST(Trace, ChannelRefreshEveryN) {
  TraceConfig cfg;
  cfg.refresh_every = 5;
  Rng rng(3);
  UserScript script(cfg, 1, rng);
  std::size_t switches = 0;
  for (std::size_t i = 1; i <= 100; ++i) {
    const Action a = script.next(rng);
    if (a.channel_switch) {
      ++switches;
      EXPECT_EQ(i % 5, 0u) << "switch off cadence";
    }
  }
  EXPECT_EQ(switches, 20u);
}

TEST(Trace, DiurnalFactorOscillates) {
  const SimTime day = 60 * kSecond;
  const double morning = diurnal_factor(day / 4, day);
  const double night = diurnal_factor(3 * day / 4, day);
  EXPECT_LT(morning, 1.0);
  EXPECT_GT(night, 1.0);
}

TEST(Trace, ActivityIsParetoSkewed) {
  TraceConfig cfg;
  Rng rng(5);
  std::vector<double> activity;
  for (UserId u = 0; u < 500; ++u) {
    activity.push_back(UserScript(cfg, u, rng).activity());
  }
  std::sort(activity.begin(), activity.end());
  double total = 0, top = 0;
  for (double a : activity) total += a;
  for (std::size_t i = activity.size() * 4 / 5; i < activity.size(); ++i) {
    top += activity[i];
  }
  EXPECT_GT(top / total, 0.5);  // top 20% of users dominate
}

class DriverModeTest : public ::testing::TestWithParam<ClientMode> {};

TEST_P(DriverModeTest, ShortRunCompletesActions) {
  ClusterConfig cluster_cfg;
  cluster_cfg.num_dcs = 1;
  Cluster cluster(cluster_cfg);

  ChatDriverConfig cfg;
  cfg.mode = GetParam();
  cfg.clients = 8;
  cfg.group_size = 4;
  cfg.trace.num_users = 8;
  cfg.trace.channels_per_workspace = 5;
  cfg.think_time = 50 * kMillisecond;
  ChatDriver driver(cluster, cfg);
  driver.start();
  cluster.run_for(20 * kSecond);
  driver.stop();
  cluster.run_for(5 * kSecond);

  EXPECT_GT(driver.completed(), 100u) << to_string(GetParam());
  EXPECT_EQ(driver.failed_reads(), 0u);
  EXPECT_GT(driver.throughput().total(), 0u);
  // Latency class sanity: cloud mode has only DC hits; cached modes have
  // mostly local hits.
  if (GetParam() == ClientMode::kCloudOnly) {
    EXPECT_EQ(driver.latency(ReadSource::kLocal).count(), 0u);
    EXPECT_GT(driver.latency(ReadSource::kDc).count(), 0u);
  } else {
    EXPECT_GT(driver.latency(ReadSource::kLocal).count(),
              driver.latency(ReadSource::kDc).count());
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, DriverModeTest,
                         ::testing::Values(ClientMode::kCloudOnly,
                                           ClientMode::kClientCache,
                                           ClientMode::kPeerGroup),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Driver, GroupTopologyHelpers) {
  ClusterConfig cluster_cfg;
  Cluster cluster(cluster_cfg);
  ChatDriverConfig cfg;
  cfg.mode = ClientMode::kPeerGroup;
  cfg.clients = 6;
  cfg.group_size = 3;
  cfg.trace.num_users = 6;
  ChatDriver driver(cluster, cfg);
  EXPECT_EQ(driver.group_count(), 2u);
  EXPECT_EQ(driver.group_of(0), 0u);
  EXPECT_EQ(driver.group_of(5), 1u);
  EXPECT_EQ(driver.group_node_ids(0).size(), 4u);  // parent + 3 members
}

}  // namespace
}  // namespace colony::chat
