// EPaxos stall recovery: the nudge path (forcing the slow path when a
// member died before the fast quorum completed) and write-through commits
// at the edge.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "consensus/epaxos.hpp"
#include "crdt/counter.hpp"

namespace colony {
namespace {

using consensus::Command;
using consensus::Epaxos;
using consensus::EpaxosMsg;
using consensus::InstanceStatus;

struct MiniNet {
  explicit MiniNet(std::size_t n) {
    std::vector<NodeId> ids;
    for (std::size_t i = 0; i < n; ++i) ids.push_back(i + 1);
    for (std::size_t i = 0; i < n; ++i) {
      replicas.push_back(std::make_unique<Epaxos>(
          ids[i], ids,
          [this, self = ids[i]](NodeId to, const EpaxosMsg& msg) {
            queue.push_back({self, to, msg});
          },
          [this](const Command& cmd) { delivered.push_back(cmd.id); }));
    }
  }
  void pump() {
    while (!queue.empty()) {
      auto [from, to, msg] = queue.front();
      queue.pop_front();
      if (down.contains(to) || down.contains(from)) continue;
      replicas[to - 1]->on_message(from, msg);
    }
  }
  struct Queued {
    NodeId from, to;
    EpaxosMsg msg;
  };
  std::vector<std::unique_ptr<Epaxos>> replicas;
  std::deque<Queued> queue;
  std::vector<Dot> delivered;
  std::set<NodeId> down;
};

TEST(EpaxosNudge, ForcesSlowPathWithMajority) {
  MiniNet net(5);  // fast quorum 4, slow quorum 3
  net.down.insert(5);  // one replica dead: fast quorum unreachable
  const auto inst =
      net.replicas[0]->propose(Command{Dot{1, 1}, {{"b", "x"}}, {}});
  net.pump();
  // 3 replies (of 4 live peers) < fast quorum: stalled pre-accepted.
  EXPECT_EQ(net.replicas[0]->status(inst), InstanceStatus::kPreAccepted);
  EXPECT_EQ(net.replicas[0]->committed_count(), 0u);

  // The nudge forces the accept round; majority (3/5) suffices.
  EXPECT_TRUE(net.replicas[0]->nudge(inst));
  net.pump();
  EXPECT_EQ(net.replicas[0]->status(inst), InstanceStatus::kExecuted);
  EXPECT_GE(net.replicas[0]->slow_path_commits(), 1u);
}

TEST(EpaxosNudge, RefusedWithoutMajority) {
  MiniNet net(5);
  net.down.insert(3);
  net.down.insert(4);
  net.down.insert(5);  // only 2 of 5 alive: no quorum possible
  const auto inst =
      net.replicas[0]->propose(Command{Dot{1, 1}, {{"b", "x"}}, {}});
  net.pump();
  EXPECT_FALSE(net.replicas[0]->nudge(inst));  // 1 reply + self < 3
  EXPECT_EQ(net.replicas[0]->committed_count(), 0u);
}

TEST(EpaxosNudge, NoopOnCommittedOrUnknown) {
  MiniNet net(3);
  const auto inst =
      net.replicas[0]->propose(Command{Dot{1, 1}, {{"b", "x"}}, {}});
  net.pump();
  EXPECT_EQ(net.replicas[0]->status(inst), InstanceStatus::kExecuted);
  EXPECT_FALSE(net.replicas[0]->nudge(inst));            // already done
  EXPECT_FALSE(net.replicas[0]->nudge({9, 9}));          // unknown
  EXPECT_FALSE(net.replicas[1]->nudge(inst));            // not the leader
}

TEST(EpaxosNudge, GroupSurvivesSilentMemberViaNudgeTimer) {
  // End-to-end: a member's links drop *silently*; before the heartbeat
  // removes it, other members' proposals would stall on the fast quorum —
  // the scheduled nudges push them through the slow path.
  ClusterConfig cfg;
  Cluster cluster(cfg);
  PeerGroupParent& parent = cluster.add_group_parent(0);
  std::vector<EdgeNode*> members;
  std::vector<NodeId> ids{parent.id()};
  for (int i = 0; i < 4; ++i) {
    members.push_back(&cluster.add_edge(ClientMode::kPeerGroup, 0, 60 + i));
    ids.push_back(members.back()->id());
  }
  cluster.wire_peer_links(ids);
  for (EdgeNode* m : members) {
    m->join_group(parent.id(), [](Result<void>) {});
    cluster.run_for(100 * kMillisecond);
  }
  cluster.run_for(500 * kMillisecond);

  // Member 3 goes dark silently.
  cluster.set_peer_links(members[3]->id(), ids, false);

  // Member 0 commits immediately after: the proposal cannot reach the full
  // fast quorum, but must still commit well before the heartbeat epoch
  // change (nudges fire at 300 ms).
  Session s0(*members[0]);
  auto txn = s0.begin();
  s0.increment(txn, {"app", "x"}, 1);
  ASSERT_TRUE(s0.commit(std::move(txn)).ok());
  cluster.run_for(1 * kSecond);
  EXPECT_EQ(cluster.dc(0).committed(), 1u);
}

TEST(WriteThrough, CallbackFiresOnDcAck) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);

  auto txn = session.begin();
  session.increment(txn, {"app", "x"}, 1);
  bool durable = false;
  SimTime acked_at = 0;
  node.commit_write_through(std::move(txn), [&](Result<Dot> r) {
    ASSERT_TRUE(r.ok());
    durable = true;
    acked_at = cluster.now();
  });
  EXPECT_FALSE(durable);  // local commit done, cloud ack pending
  cluster.run_for(2 * kSecond);
  EXPECT_TRUE(durable);
  EXPECT_GT(acked_at, 0u);  // took a round trip
}

TEST(WriteThrough, ReadOnlyCompletesImmediately) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  bool done = false;
  node.commit_write_through(node.begin(), [&](Result<Dot> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value().valid());
    done = true;
  });
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace colony
