// Group-level migration: a member moving between peer groups (section
// 5.2) and a whole subtree (parent + members) moving between DCs
// (section 3.8, "migrate a node or a group").
#include <gtest/gtest.h>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"

namespace colony {
namespace {

const ObjectKey kX{"app", "x"};

std::int64_t value_of(const Crdt* c) {
  const auto* counter = dynamic_cast<const PnCounter*>(c);
  return counter == nullptr ? 0 : counter->value();
}

TEST(GroupMigration, MemberMovesBetweenGroups) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  PeerGroupParent& downtown = cluster.add_group_parent(0);
  PeerGroupParent& uptown = cluster.add_group_parent(0);
  EdgeNode& mover = cluster.add_edge(ClientMode::kPeerGroup, 0, 1);
  EdgeNode& local = cluster.add_edge(ClientMode::kPeerGroup, 0, 2);
  cluster.wire_peer_links({downtown.id(), mover.id(), local.id()});
  cluster.wire_peer_links({uptown.id(), mover.id()});

  mover.join_group(downtown.id(), [](Result<void>) {});
  local.join_group(downtown.id(), [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  Session sm(mover);
  sm.subscribe({kX}, [](Result<void>) {});
  cluster.run_for(500 * kMillisecond);
  auto t1 = sm.begin();
  sm.increment(t1, kX, 1);
  ASSERT_TRUE(sm.commit(std::move(t1)).ok());
  cluster.run_for(3 * kSecond);

  // Leave downtown, join uptown; work continues in the new group.
  bool left = false, joined = false;
  mover.leave_group([&](Result<void>) { left = true; });
  cluster.run_for(500 * kMillisecond);
  ASSERT_TRUE(left);
  mover.join_group(uptown.id(), [&](Result<void> r) { joined = r.ok(); });
  cluster.run_for(2 * kSecond);
  ASSERT_TRUE(joined);
  EXPECT_EQ(downtown.member_count(), 1u);
  EXPECT_EQ(uptown.member_count(), 1u);

  auto t2 = sm.begin();
  sm.increment(t2, kX, 1);
  ASSERT_TRUE(sm.commit(std::move(t2)).ok());
  cluster.run_for(3 * kSecond);

  EXPECT_EQ(cluster.dc(0).committed(), 2u);
  EXPECT_EQ(value_of(cluster.dc(0).store().current(kX)), 2);
  EXPECT_EQ(mover.unacked_count(), 0u);
}

TEST(GroupMigration, SubtreeMovesBetweenDcs) {
  ClusterConfig cfg;
  cfg.num_dcs = 2;
  Cluster cluster(cfg);
  PeerGroupParent& parent = cluster.add_group_parent(0);
  EdgeNode& a = cluster.add_edge(ClientMode::kPeerGroup, 0, 1);
  EdgeNode& b = cluster.add_edge(ClientMode::kPeerGroup, 0, 2);
  cluster.wire_peer_links({parent.id(), a.id(), b.id()});
  a.join_group(parent.id(), [](Result<void>) {});
  b.join_group(parent.id(), [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  Session sa(a), sb(b);
  sa.subscribe({kX}, [](Result<void>) {});
  sb.subscribe({kX}, [](Result<void>) {});
  cluster.run_for(500 * kMillisecond);

  auto t1 = sa.begin();
  sa.increment(t1, kX, 1);
  ASSERT_TRUE(sa.commit(std::move(t1)).ok());
  cluster.run_for(3 * kSecond);
  ASSERT_EQ(cluster.dc(0).committed(), 1u);

  // The whole subtree migrates to DC1 (its commit replicated there first).
  bool migrated = false;
  parent.migrate_to_dc(cluster.dc_node_id(1), [&](Result<void> r) {
    migrated = r.ok();
  });
  cluster.run_for(2 * kSecond);
  ASSERT_TRUE(migrated);
  EXPECT_EQ(parent.connected_dc(), cluster.dc_node_id(1));

  // New group work is sequenced at DC1; members need no reconfiguration.
  auto t2 = sb.begin();
  sb.increment(t2, kX, 1);
  ASSERT_TRUE(sb.commit(std::move(t2)).ok());
  cluster.run_for(3 * kSecond);
  EXPECT_EQ(cluster.dc(1).committed(), 1u);
  cluster.run_for(3 * kSecond);  // replicate back
  EXPECT_EQ(value_of(cluster.dc(0).store().current(kX)), 2);
  EXPECT_EQ(value_of(cluster.dc(1).store().current(kX)), 2);
}

TEST(GroupMigration, SubtreeMigrationRefusedWhenIncompatible) {
  ClusterConfig cfg;
  cfg.num_dcs = 2;
  Cluster cluster(cfg);
  PeerGroupParent& parent = cluster.add_group_parent(0);
  EdgeNode& a = cluster.add_edge(ClientMode::kPeerGroup, 0, 1);
  cluster.wire_peer_links({parent.id(), a.id()});
  a.join_group(parent.id(), [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  // Cut the DC mesh: DC1 will miss the group's commit.
  cluster.network().set_link_up(cluster.dc_node_id(0), cluster.dc_node_id(1),
                                false);
  Session sa(a);
  auto txn = sa.begin();
  sa.increment(txn, kX, 1);
  ASSERT_TRUE(sa.commit(std::move(txn)).ok());
  cluster.run_for(3 * kSecond);
  ASSERT_TRUE(VersionVector({1, 0}).leq(parent.state_vector()));

  bool incompatible = false;
  parent.migrate_to_dc(cluster.dc_node_id(1), [&](Result<void> r) {
    incompatible = !r.ok() && r.error().code == Error::Code::kIncompatible;
  });
  cluster.run_for(2 * kSecond);
  EXPECT_TRUE(incompatible);
  EXPECT_EQ(parent.connected_dc(), cluster.dc_node_id(0));  // stayed put
}

TEST(GroupMigration, OfflineSubtreeFlushesAtNewDc) {
  // The group works offline from DC0 entirely, then migrates to DC1 and
  // flushes its backlog there — failover without ever reconnecting to the
  // original DC.
  ClusterConfig cfg;
  cfg.num_dcs = 2;
  Cluster cluster(cfg);
  PeerGroupParent& parent = cluster.add_group_parent(0);
  EdgeNode& a = cluster.add_edge(ClientMode::kPeerGroup, 0, 1);
  cluster.wire_peer_links({parent.id(), a.id()});
  a.join_group(parent.id(), [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  cluster.set_uplink(parent.id(), 0, false);
  Session sa(a);
  for (int i = 0; i < 3; ++i) {
    auto txn = sa.begin();
    sa.increment(txn, kX, 1);
    ASSERT_TRUE(sa.commit(std::move(txn)).ok());
  }
  cluster.run_for(2 * kSecond);
  EXPECT_GE(parent.forward_backlog(), 1u);

  bool migrated = false;
  parent.migrate_to_dc(cluster.dc_node_id(1), [&](Result<void> r) {
    migrated = r.ok();
  });
  cluster.run_for(5 * kSecond);
  ASSERT_TRUE(migrated);
  EXPECT_EQ(parent.forward_backlog(), 0u);
  EXPECT_EQ(cluster.dc(1).committed(), 3u);
  EXPECT_EQ(value_of(cluster.dc(1).store().current(kX)), 3);
  EXPECT_EQ(a.unacked_count(), 0u);
}

}  // namespace
}  // namespace colony
