#include "clock/dot_tracker.hpp"

#include <gtest/gtest.h>

namespace colony {
namespace {

TEST(Dot, OrderingAndValidity) {
  EXPECT_FALSE(Dot{}.valid());
  EXPECT_TRUE((Dot{1, 1}).valid());
  EXPECT_LT((Dot{1, 5}), (Dot{2, 1}));
  EXPECT_LT((Dot{1, 5}), (Dot{1, 6}));
}

TEST(Dot, CodecRoundTrip) {
  const Dot d{77, 123456};
  Encoder enc;
  d.encode(enc);
  Decoder dec(enc.data());
  EXPECT_EQ(Dot::decode(dec), d);
}

TEST(DotTracker, RecordsInOrder) {
  DotTracker t;
  EXPECT_TRUE(t.record({1, 1}));
  EXPECT_TRUE(t.record({1, 2}));
  EXPECT_TRUE(t.record({1, 3}));
  EXPECT_EQ(t.prefix(1), 3u);
}

TEST(DotTracker, RejectsDuplicates) {
  DotTracker t;
  EXPECT_TRUE(t.record({1, 1}));
  EXPECT_FALSE(t.record({1, 1}));
  EXPECT_TRUE(t.record({1, 5}));
  EXPECT_FALSE(t.record({1, 5}));
}

TEST(DotTracker, HandlesGapsAndCompacts) {
  DotTracker t;
  EXPECT_TRUE(t.record({1, 3}));
  EXPECT_EQ(t.prefix(1), 0u);
  EXPECT_TRUE(t.contains({1, 3}));
  EXPECT_FALSE(t.contains({1, 2}));
  EXPECT_TRUE(t.record({1, 1}));
  EXPECT_EQ(t.prefix(1), 1u);
  EXPECT_TRUE(t.record({1, 2}));
  EXPECT_EQ(t.prefix(1), 3u);  // the gap closed; 3 absorbed into the prefix
  EXPECT_TRUE(t.contains({1, 3}));
  EXPECT_FALSE(t.record({1, 3}));
}

TEST(DotTracker, TracksOriginsIndependently) {
  DotTracker t;
  EXPECT_TRUE(t.record({1, 1}));
  EXPECT_TRUE(t.record({2, 1}));
  EXPECT_FALSE(t.record({2, 1}));
  EXPECT_EQ(t.prefix(1), 1u);
  EXPECT_EQ(t.prefix(2), 1u);
  EXPECT_EQ(t.origins(), 2u);
}

TEST(DotTrackerDeath, RejectsInvalidDot) {
  DotTracker t;
  EXPECT_DEATH(t.record(Dot{}), "invalid dot");
}

}  // namespace
}  // namespace colony
