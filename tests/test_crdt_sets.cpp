#include "crdt/or_set.hpp"

#include <gtest/gtest.h>

namespace colony {
namespace {

TEST(GSet, AddOnly) {
  GSet s;
  s.apply(GSet::prepare_add("a"));
  s.apply(GSet::prepare_add("b"));
  s.apply(GSet::prepare_add("a"));  // idempotent
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains("a"));
  EXPECT_TRUE(s.contains("b"));
  EXPECT_FALSE(s.contains("c"));
}

TEST(GSet, SnapshotRoundTrip) {
  GSet s;
  s.apply(GSet::prepare_add("x"));
  s.apply(GSet::prepare_add("y"));
  GSet t;
  t.restore(s.snapshot());
  EXPECT_EQ(t.elements(), s.elements());
}

TEST(OrSet, AddThenRemove) {
  OrSet s;
  s.apply(OrSet::prepare_add("a", Dot{1, 1}));
  EXPECT_TRUE(s.contains("a"));
  s.apply(s.prepare_remove("a"));
  EXPECT_FALSE(s.contains("a"));
  EXPECT_EQ(s.size(), 0u);
}

TEST(OrSet, RemoveOfAbsentIsNoop) {
  OrSet s;
  s.apply(s.prepare_remove("ghost"));
  EXPECT_EQ(s.size(), 0u);
}

TEST(OrSet, AddWinsOverConcurrentRemove) {
  // Replica X adds "a" (tag 1:1). Replica Y observes it, prepares a remove.
  // Concurrently X adds "a" again (tag 1:2). Add must win.
  OrSet x;
  const auto add1 = OrSet::prepare_add("a", Dot{1, 1});
  x.apply(add1);
  OrSet y;
  y.apply(add1);
  const auto remove = y.prepare_remove("a");  // observed only tag 1:1
  const auto add2 = OrSet::prepare_add("a", Dot{1, 2});

  // Apply in both orders; "a" must survive via the unobserved tag 1:2.
  OrSet r1;
  r1.apply(add1); r1.apply(add2); r1.apply(remove);
  EXPECT_TRUE(r1.contains("a"));

  OrSet r2;
  r2.apply(add1); r2.apply(remove); r2.apply(add2);
  EXPECT_TRUE(r2.contains("a"));

  EXPECT_EQ(r1.elements(), r2.elements());
}

TEST(OrSet, ReAddAfterRemove) {
  OrSet s;
  s.apply(OrSet::prepare_add("a", Dot{1, 1}));
  s.apply(s.prepare_remove("a"));
  EXPECT_FALSE(s.contains("a"));
  s.apply(OrSet::prepare_add("a", Dot{1, 2}));
  EXPECT_TRUE(s.contains("a"));
}

TEST(OrSet, ElementsSortedAndDeduplicated) {
  OrSet s;
  s.apply(OrSet::prepare_add("b", Dot{1, 1}));
  s.apply(OrSet::prepare_add("a", Dot{1, 2}));
  s.apply(OrSet::prepare_add("a", Dot{2, 1}));  // second tag, same element
  EXPECT_EQ(s.elements(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(s.size(), 2u);
}

TEST(OrSet, RemoveClearsAllObservedTags) {
  OrSet s;
  s.apply(OrSet::prepare_add("a", Dot{1, 1}));
  s.apply(OrSet::prepare_add("a", Dot{2, 1}));
  s.apply(s.prepare_remove("a"));  // observed both tags
  EXPECT_FALSE(s.contains("a"));
}

TEST(OrSet, SnapshotRoundTripPreservesTags) {
  OrSet s;
  s.apply(OrSet::prepare_add("a", Dot{1, 1}));
  s.apply(OrSet::prepare_add("b", Dot{2, 5}));
  OrSet t;
  t.restore(s.snapshot());
  EXPECT_EQ(t.elements(), s.elements());
  // Tag-level fidelity: a remove prepared at t must clear s's tags too.
  s.apply(t.prepare_remove("a"));
  EXPECT_FALSE(s.contains("a"));
}

}  // namespace
}  // namespace colony
