#include "security/acl.hpp"

#include <gtest/gtest.h>

#include "crdt/counter.hpp"

namespace colony::security {
namespace {

constexpr UserId kAlice = 1;
constexpr UserId kBob = 2;
constexpr UserId kCarl = 3;

TEST(AclObject, GrantAndCheck) {
  AclObject acl;
  acl.apply(AclObject::prepare_grant({"book", kAlice, Permission::kOwn},
                                     Dot{1, 1}));
  EXPECT_TRUE(acl.check("book", kAlice, Permission::kOwn));
  EXPECT_FALSE(acl.check("book", kBob, Permission::kOwn));
  EXPECT_FALSE(acl.check("shelf", kAlice, Permission::kOwn));
}

TEST(AclObject, PermissionImplication) {
  AclObject acl;
  acl.apply(AclObject::prepare_grant({"x", kAlice, Permission::kOwn},
                                     Dot{1, 1}));
  acl.apply(AclObject::prepare_grant({"y", kBob, Permission::kWrite},
                                     Dot{1, 2}));
  // own => write => read
  EXPECT_TRUE(acl.check("x", kAlice, Permission::kWrite));
  EXPECT_TRUE(acl.check("x", kAlice, Permission::kRead));
  EXPECT_TRUE(acl.check("y", kBob, Permission::kRead));
  EXPECT_FALSE(acl.check("y", kBob, Permission::kOwn));
}

TEST(AclObject, RevokeRemovesGrant) {
  AclObject acl;
  const AclTuple t{"book", kAlice, Permission::kWrite};
  acl.apply(AclObject::prepare_grant(t, Dot{1, 1}));
  acl.apply(acl.prepare_revoke(t));
  EXPECT_FALSE(acl.check("book", kAlice, Permission::kWrite));
  EXPECT_EQ(acl.grant_count(), 0u);
}

TEST(AclObject, GrantWinsOverConcurrentRevoke) {
  // Observed-remove semantics on grants: a revoke only clears the grant
  // tags its issuer observed; a concurrent re-grant survives.
  AclObject base;
  const AclTuple t{"book", kAlice, Permission::kWrite};
  const auto grant1 = AclObject::prepare_grant(t, Dot{1, 1});
  base.apply(grant1);
  const auto revoke = base.prepare_revoke(t);
  const auto grant2 = AclObject::prepare_grant(t, Dot{2, 1});

  AclObject a;
  a.apply(grant1); a.apply(grant2); a.apply(revoke);
  EXPECT_TRUE(a.check("book", kAlice, Permission::kWrite));

  AclObject b;
  b.apply(grant1); b.apply(revoke); b.apply(grant2);
  EXPECT_TRUE(b.check("book", kAlice, Permission::kWrite));
}

TEST(AclObject, ObjectInheritance) {
  // The paper's C2 example: the book sits on a shelf readable by Bob.
  AclObject acl;
  acl.apply(AclObject::prepare_grant({"shelf", kBob, Permission::kRead},
                                     Dot{1, 1}));
  acl.apply(AclObject::prepare_set_object_parent("book", "shelf",
                                                 Arb{1, {1, 2}}));
  EXPECT_TRUE(acl.check("book", kBob, Permission::kRead));
  EXPECT_FALSE(acl.check("book", kCarl, Permission::kRead));
}

TEST(AclObject, UserInheritance) {
  AclObject acl;
  acl.apply(AclObject::prepare_grant({"doc", kAlice, Permission::kWrite},
                                     Dot{1, 1}));
  acl.apply(AclObject::prepare_set_user_parent(kBob, kAlice, Arb{1, {1, 2}}));
  EXPECT_TRUE(acl.check("doc", kBob, Permission::kWrite));
  EXPECT_FALSE(acl.check("doc", kCarl, Permission::kWrite));
}

TEST(AclObject, CombinedForests) {
  AclObject acl;
  acl.apply(AclObject::prepare_grant({"shelf", kAlice, Permission::kRead},
                                     Dot{1, 1}));
  acl.apply(AclObject::prepare_set_object_parent("book", "shelf",
                                                 Arb{1, {1, 2}}));
  acl.apply(AclObject::prepare_set_user_parent(kBob, kAlice, Arb{2, {1, 3}}));
  EXPECT_TRUE(acl.check("book", kBob, Permission::kRead));
}

TEST(AclObject, ParentUpdateIsLww) {
  AclObject acl;
  acl.apply(AclObject::prepare_set_object_parent("book", "shelf1",
                                                 Arb{1, {1, 1}}));
  acl.apply(AclObject::prepare_set_object_parent("book", "shelf2",
                                                 Arb{2, {1, 2}}));
  EXPECT_EQ(acl.object_parent("book"), "shelf2");
  // Stale update loses.
  acl.apply(AclObject::prepare_set_object_parent("book", "shelf0",
                                                 Arb{1, {2, 1}}));
  EXPECT_EQ(acl.object_parent("book"), "shelf2");
}

TEST(AclObject, InheritanceCycleTerminates) {
  AclObject acl;
  acl.apply(AclObject::prepare_set_object_parent("a", "b", Arb{1, {1, 1}}));
  acl.apply(AclObject::prepare_set_object_parent("b", "a", Arb{2, {1, 2}}));
  EXPECT_FALSE(acl.check("a", kAlice, Permission::kRead));  // no hang
}

TEST(AclObject, SnapshotRoundTrip) {
  AclObject acl;
  acl.apply(AclObject::prepare_grant({"x", kAlice, Permission::kOwn},
                                     Dot{1, 1}));
  acl.apply(AclObject::prepare_set_object_parent("y", "x", Arb{1, {1, 2}}));
  acl.apply(AclObject::prepare_set_user_parent(kBob, kAlice, Arb{2, {1, 3}}));
  AclObject copy;
  copy.restore(acl.snapshot());
  EXPECT_TRUE(copy.check("y", kBob, Permission::kWrite));
  EXPECT_EQ(copy.grant_count(), 1u);
}

TEST(AclObject, RegisteredWithFactory) {
  register_acl_crdt();
  const auto obj = make_crdt(CrdtType::kAcl);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->type(), CrdtType::kAcl);
}

// --- txn_allowed (deferred enforcement predicate) ---------------------------

Transaction data_txn(UserId user, const ObjectKey& key) {
  Transaction txn;
  txn.meta.dot = Dot{1, 1};
  txn.meta.user = user;
  txn.ops.push_back(
      OpRecord{key, CrdtType::kPnCounter, PnCounter::prepare_add(1)});
  return txn;
}

TEST(TxnAllowed, OpenPolicyAllowsAll) {
  EXPECT_TRUE(txn_allowed(nullptr, data_txn(kAlice, {"b", "x"})));
  AclObject empty;
  EXPECT_TRUE(txn_allowed(&empty, data_txn(kAlice, {"b", "x"})));
}

TEST(TxnAllowed, WriteRequiresGrant) {
  AclObject acl;
  acl.apply(AclObject::prepare_grant({"x", kAlice, Permission::kWrite},
                                     Dot{1, 1}));
  EXPECT_TRUE(txn_allowed(&acl, data_txn(kAlice, {"b", "x"})));
  EXPECT_FALSE(txn_allowed(&acl, data_txn(kBob, {"b", "x"})));
}

TEST(TxnAllowed, BucketGrantCoversObjects) {
  AclObject acl;
  acl.apply(AclObject::prepare_grant({"chat", kAlice, Permission::kWrite},
                                     Dot{1, 1}));
  EXPECT_TRUE(txn_allowed(&acl, data_txn(kAlice, {"chat", "anything"})));
  EXPECT_FALSE(txn_allowed(&acl, data_txn(kAlice, {"other", "x"})));
}

TEST(TxnAllowed, AclUpdatesRequireOwn) {
  AclObject acl;
  acl.apply(AclObject::prepare_grant({"_sys", kAlice, Permission::kOwn},
                                     Dot{1, 1}));
  Transaction txn;
  txn.meta.user = kAlice;
  txn.ops.push_back(OpRecord{
      acl_object_key(), CrdtType::kAcl,
      AclObject::prepare_grant({"x", kBob, Permission::kRead}, Dot{1, 2})});
  EXPECT_TRUE(txn_allowed(&acl, txn));
  txn.meta.user = kBob;
  EXPECT_FALSE(txn_allowed(&acl, txn));
}

}  // namespace
}  // namespace colony::security
