#include "crdt/rga.hpp"

#include <gtest/gtest.h>

namespace colony {
namespace {

Arb arb(Timestamp ts, NodeId node, std::uint64_t counter) {
  return Arb{ts, Dot{node, counter}};
}

TEST(Rga, AppendChain) {
  Rga seq;
  seq.apply(Rga::prepare_insert(Dot{}, "a", arb(1, 1, 1)));
  seq.apply(Rga::prepare_insert(seq.last_id(), "b", arb(2, 1, 2)));
  seq.apply(Rga::prepare_insert(seq.last_id(), "c", arb(3, 1, 3)));
  EXPECT_EQ(seq.values(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(seq.size(), 3u);
}

TEST(Rga, InsertInMiddle) {
  Rga seq;
  seq.apply(Rga::prepare_insert(Dot{}, "a", arb(1, 1, 1)));
  seq.apply(Rga::prepare_insert(seq.id_at(0), "c", arb(2, 1, 2)));
  // Insert "b" right after "a" (before "c").
  seq.apply(Rga::prepare_insert(seq.id_at(0), "b", arb(3, 1, 3)));
  EXPECT_EQ(seq.values(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Rga, RemoveTombstones) {
  Rga seq;
  seq.apply(Rga::prepare_insert(Dot{}, "a", arb(1, 1, 1)));
  seq.apply(Rga::prepare_insert(seq.last_id(), "b", arb(2, 1, 2)));
  seq.apply(Rga::prepare_remove(seq.id_at(0)));
  EXPECT_EQ(seq.values(), (std::vector<std::string>{"b"}));
  EXPECT_EQ(seq.size(), 1u);
  // Re-delivery of the remove is idempotent.
}

TEST(Rga, InsertAfterTombstonedElement) {
  Rga seq;
  seq.apply(Rga::prepare_insert(Dot{}, "a", arb(1, 1, 1)));
  const Dot a_id = seq.id_at(0);
  seq.apply(Rga::prepare_remove(a_id));
  // A concurrent writer inserts after "a" before learning of the delete.
  seq.apply(Rga::prepare_insert(a_id, "b", arb(2, 2, 1)));
  EXPECT_EQ(seq.values(), (std::vector<std::string>{"b"}));
}

TEST(Rga, ConcurrentInsertsAtSamePositionConverge) {
  // Two replicas insert after the same element concurrently; all replicas
  // must order the siblings identically (by descending arbitration).
  const auto base = Rga::prepare_insert(Dot{}, "base", arb(1, 1, 1));
  Rga probe;
  probe.apply(base);
  const Dot base_id = probe.id_at(0);

  const auto from_a = Rga::prepare_insert(base_id, "A", arb(5, 1, 2));
  const auto from_b = Rga::prepare_insert(base_id, "B", arb(6, 2, 1));

  Rga x, y;
  x.apply(base); x.apply(from_a); x.apply(from_b);
  y.apply(base); y.apply(from_b); y.apply(from_a);
  EXPECT_EQ(x.values(), y.values());
  // Higher arbitration sorts first among siblings.
  EXPECT_EQ(x.values(), (std::vector<std::string>{"base", "B", "A"}));
}

TEST(Rga, InterleavedChainsStayContiguous) {
  // Each writer extends its own message chain; RGA keeps each chain in
  // order (prefix property of conversations).
  const auto m1 = Rga::prepare_insert(Dot{}, "a1", arb(1, 1, 1));
  Rga probe;
  probe.apply(m1);
  const auto m2 = Rga::prepare_insert(Dot{1, 1}, "a2", arb(2, 1, 2));
  const auto n1 = Rga::prepare_insert(Dot{}, "b1", arb(3, 2, 1));

  Rga x;
  x.apply(m1); x.apply(m2); x.apply(n1);
  Rga y;
  y.apply(n1); y.apply(m1); y.apply(m2);
  EXPECT_EQ(x.values(), y.values());
  // "a1" must come directly before "a2".
  const auto vals = x.values();
  const auto a1 = std::find(vals.begin(), vals.end(), "a1");
  ASSERT_NE(a1, vals.end());
  EXPECT_EQ(*(a1 + 1), "a2");
}

TEST(Rga, SnapshotRoundTripWithTombstones) {
  Rga seq;
  seq.apply(Rga::prepare_insert(Dot{}, "a", arb(1, 1, 1)));
  seq.apply(Rga::prepare_insert(seq.last_id(), "b", arb(2, 1, 2)));
  seq.apply(Rga::prepare_remove(seq.id_at(0)));
  Rga restored;
  restored.restore(seq.snapshot());
  EXPECT_EQ(restored.values(), seq.values());
  EXPECT_EQ(restored.size(), 1u);
}

TEST(Rga, LastIdOnEmptyIsSentinel) {
  Rga seq;
  EXPECT_EQ(seq.last_id(), Dot{});
  EXPECT_TRUE(seq.values().empty());
}

TEST(Rga, DuplicateInsertIgnored) {
  Rga seq;
  const auto op = Rga::prepare_insert(Dot{}, "a", arb(1, 1, 1));
  seq.apply(op);
  seq.apply(op);
  EXPECT_EQ(seq.size(), 1u);
}

TEST(RgaDeath, IndexOutOfRange) {
  Rga seq;
  EXPECT_DEATH(seq.id_at(0), "out of range");
}

}  // namespace
}  // namespace colony
