// Offline operation: an edge client keeps reading and committing while
// disconnected; its transactions reach the DC after reconnection with
// causality intact (paper sections 2.2, 3.7, 7.3.1).
#include <gtest/gtest.h>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"

namespace colony {
namespace {

const ObjectKey kX{"app", "x"};

TEST(EdgeOffline, CommitsQueueAndFlushOnReconnect) {
  ClusterConfig cfg;
  cfg.num_dcs = 1;
  Cluster cluster(cfg);
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);

  cluster.set_uplink(node.id(), 0, false);
  for (int i = 0; i < 3; ++i) {
    auto txn = session.begin();
    session.increment(txn, kX, 1);
    ASSERT_TRUE(session.commit(std::move(txn)).ok());
  }
  cluster.run_for(3 * kSecond);
  EXPECT_EQ(node.unacked_count(), 3u);
  EXPECT_EQ(cluster.dc(0).committed(), 0u);

  // Local value reflects all offline work.
  const auto* counter = dynamic_cast<const PnCounter*>(node.cached(kX));
  EXPECT_EQ(counter->value(), 3);

  cluster.set_uplink(node.id(), 0, true);
  cluster.run_for(5 * kSecond);
  EXPECT_EQ(node.unacked_count(), 0u);
  EXPECT_EQ(cluster.dc(0).committed(), 3u);
  const auto* dc_counter =
      dynamic_cast<const PnCounter*>(cluster.dc(0).store().current(kX));
  EXPECT_EQ(dc_counter->value(), 3);
}

TEST(EdgeOffline, LocalReadsUnaffectedByDisconnection) {
  ClusterConfig cfg;
  cfg.num_dcs = 1;
  Cluster cluster(cfg);
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);

  // Populate the cache (a local commit creates the object), then go dark.
  auto seed = session.begin();
  session.increment(seed, kX, 1);
  ASSERT_TRUE(session.commit(std::move(seed)).ok());
  cluster.run_for(1 * kSecond);
  cluster.set_uplink(node.id(), 0, false);

  auto txn = session.begin();
  bool read_ok = false;
  ReadSource src{};
  session.read_counter(txn, kX, [&](Result<std::int64_t> r, ReadSource s) {
    read_ok = r.ok();
    src = s;
  });
  EXPECT_TRUE(read_ok);  // synchronous cache hit while offline
  EXPECT_EQ(src, ReadSource::kLocal);
}

TEST(EdgeOffline, UncachedReadFailsWhileOffline) {
  ClusterConfig cfg;
  cfg.num_dcs = 1;
  Cluster cluster(cfg);
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);
  cluster.set_uplink(node.id(), 0, false);

  auto txn = session.begin();
  bool failed = false;
  session.read_counter(txn, {"app", "never-seen"},
                       [&](Result<std::int64_t> r, ReadSource) {
                         failed = !r.ok() &&
                                  r.error().code == Error::Code::kUnavailable;
                       });
  cluster.run_for(10 * kSecond);
  EXPECT_TRUE(failed);  // inherent limitation (section 4.2)
}

TEST(EdgeOffline, DuplicateSuppressionOnRetry) {
  // The commit RPC can time out after the DC already processed it; the
  // retry must not double-apply (dot filtering, section 3.8).
  ClusterConfig cfg;
  cfg.num_dcs = 1;
  Cluster cluster(cfg);
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);

  auto txn = session.begin();
  session.increment(txn, kX, 1);
  ASSERT_TRUE(session.commit(std::move(txn)).ok());
  // Drop the ack direction only: DC receives, edge never hears back, so the
  // pump retries the same transaction.
  cluster.run_for(20 * kMillisecond);  // request in flight towards the DC
  cluster.set_uplink(node.id(), 0, false);
  cluster.run_for(10 * kSecond);  // several retry rounds, all dropped
  cluster.set_uplink(node.id(), 0, true);
  cluster.run_for(10 * kSecond);

  EXPECT_EQ(node.unacked_count(), 0u);
  const auto* counter =
      dynamic_cast<const PnCounter*>(cluster.dc(0).store().current(kX));
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value(), 1);  // applied exactly once
  EXPECT_EQ(cluster.dc(0).committed(), 1u);
}

TEST(EdgeOffline, OfflineWorkFromTwoClientsMerges) {
  ClusterConfig cfg;
  cfg.num_dcs = 1;
  Cluster cluster(cfg);
  EdgeNode& a = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EdgeNode& b = cluster.add_edge(ClientMode::kClientCache, 0, 2);
  Session sa(a), sb(b);
  sa.subscribe({kX}, [](Result<void>) {});
  sb.subscribe({kX}, [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  cluster.set_uplink(a.id(), 0, false);
  cluster.set_uplink(b.id(), 0, false);
  for (int i = 0; i < 2; ++i) {
    auto ta = sa.begin();
    sa.increment(ta, kX, 1);
    ASSERT_TRUE(sa.commit(std::move(ta)).ok());
    auto tb = sb.begin();
    sb.increment(tb, kX, 10);
    ASSERT_TRUE(sb.commit(std::move(tb)).ok());
  }
  cluster.run_for(2 * kSecond);

  cluster.set_uplink(a.id(), 0, true);
  cluster.set_uplink(b.id(), 0, true);
  cluster.run_for(10 * kSecond);

  // CRDT merge: all four increments survive at every replica.
  const auto* dc_counter =
      dynamic_cast<const PnCounter*>(cluster.dc(0).store().current(kX));
  EXPECT_EQ(dc_counter->value(), 22);
  EXPECT_EQ(dynamic_cast<const PnCounter*>(a.cached(kX))->value(), 22);
  EXPECT_EQ(dynamic_cast<const PnCounter*>(b.cached(kX))->value(), 22);
}

}  // namespace
}  // namespace colony
