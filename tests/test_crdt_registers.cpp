#include "crdt/registers.hpp"

#include <gtest/gtest.h>

namespace colony {
namespace {

Arb arb(Timestamp ts, NodeId node, std::uint64_t counter) {
  return Arb{ts, Dot{node, counter}};
}

TEST(LwwRegister, LastWriterWins) {
  LwwRegister r;
  r.apply(LwwRegister::prepare_assign("first", arb(1, 1, 1)));
  r.apply(LwwRegister::prepare_assign("second", arb(2, 1, 2)));
  EXPECT_EQ(r.value(), "second");
}

TEST(LwwRegister, StaleWriteIgnored) {
  LwwRegister r;
  r.apply(LwwRegister::prepare_assign("new", arb(10, 1, 2)));
  r.apply(LwwRegister::prepare_assign("old", arb(5, 1, 1)));
  EXPECT_EQ(r.value(), "new");
}

TEST(LwwRegister, DotBreaksTimestampTies) {
  LwwRegister a, b;
  const auto op1 = LwwRegister::prepare_assign("from-node-1", arb(7, 1, 1));
  const auto op2 = LwwRegister::prepare_assign("from-node-2", arb(7, 2, 1));
  a.apply(op1); a.apply(op2);
  b.apply(op2); b.apply(op1);
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.value(), "from-node-2");  // higher node id wins the tie
}

TEST(LwwRegister, SnapshotRoundTrip) {
  LwwRegister r;
  r.apply(LwwRegister::prepare_assign("persisted", arb(3, 4, 5)));
  LwwRegister s;
  s.restore(r.snapshot());
  EXPECT_EQ(s.value(), "persisted");
  EXPECT_EQ(s.arb(), arb(3, 4, 5));
}

TEST(MvRegister, SingleWriterHasOneValue) {
  MvRegister r;
  r.apply(r.prepare_assign("v1", Dot{1, 1}));
  ASSERT_EQ(r.values().size(), 1u);
  EXPECT_EQ(r.values()[0], "v1");
}

TEST(MvRegister, SequentialAssignReplaces) {
  MvRegister r;
  r.apply(r.prepare_assign("v1", Dot{1, 1}));
  r.apply(r.prepare_assign("v2", Dot{1, 2}));  // observed v1
  ASSERT_EQ(r.version_count(), 1u);
  EXPECT_EQ(r.values()[0], "v2");
}

TEST(MvRegister, ConcurrentAssignsBothKept) {
  // Two replicas assign concurrently from the same (empty) observation.
  MvRegister base;
  const auto op_a = base.prepare_assign("a", Dot{1, 1});
  const auto op_b = base.prepare_assign("b", Dot{2, 1});
  MvRegister r;
  r.apply(op_a);
  r.apply(op_b);
  EXPECT_EQ(r.version_count(), 2u);
  const auto vals = r.values();
  EXPECT_EQ(vals, (std::vector<std::string>{"a", "b"}));
}

TEST(MvRegister, AssignAfterMergeCollapses) {
  MvRegister base;
  const auto op_a = base.prepare_assign("a", Dot{1, 1});
  const auto op_b = base.prepare_assign("b", Dot{2, 1});
  MvRegister r;
  r.apply(op_a);
  r.apply(op_b);
  // A writer that observed both replaces both.
  r.apply(r.prepare_assign("merged", Dot{3, 1}));
  ASSERT_EQ(r.version_count(), 1u);
  EXPECT_EQ(r.values()[0], "merged");
}

TEST(MvRegister, ConvergesUnderReordering) {
  MvRegister base;
  const auto op_a = base.prepare_assign("a", Dot{1, 1});
  const auto op_b = base.prepare_assign("b", Dot{2, 1});
  MvRegister x, y;
  x.apply(op_a); x.apply(op_b);
  y.apply(op_b); y.apply(op_a);
  EXPECT_EQ(x.values(), y.values());
}

TEST(MvRegister, SnapshotRoundTrip) {
  MvRegister base;
  MvRegister r;
  r.apply(base.prepare_assign("a", Dot{1, 1}));
  r.apply(base.prepare_assign("b", Dot{2, 1}));
  MvRegister s;
  s.restore(r.snapshot());
  EXPECT_EQ(s.values(), r.values());
}

}  // namespace
}  // namespace colony
