// Randomized peer-group churn property test: members commit concurrently
// while links flap, members get removed by heartbeat and rejoin; after the
// dust settles, the group, its parent, and the DC must agree on a CRDT
// counter whose value equals the number of successful commits.
#include <gtest/gtest.h>

#include <memory>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"
#include "util/rng.hpp"

namespace colony {
namespace {

const ObjectKey kX{"app", "x"};

std::int64_t value_of(const Crdt* c) {
  const auto* counter = dynamic_cast<const PnCounter*>(c);
  return counter == nullptr ? 0 : counter->value();
}

class GroupChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupChurnTest, ConvergesThroughChurn) {
  const std::uint64_t seed = GetParam();
  ClusterConfig cfg;
  cfg.seed = seed;
  Cluster cluster(cfg);
  Rng rng(seed * 131 + 7);

  PeerGroupParent& parent = cluster.add_group_parent(0);
  constexpr std::size_t kMembers = 4;
  std::vector<EdgeNode*> members;
  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<NodeId> node_ids{parent.id()};
  for (std::size_t i = 0; i < kMembers; ++i) {
    members.push_back(&cluster.add_edge(ClientMode::kPeerGroup, 0, 50 + i));
    sessions.push_back(std::make_unique<Session>(*members.back()));
    node_ids.push_back(members.back()->id());
  }
  cluster.wire_peer_links(node_ids);
  for (EdgeNode* m : members) {
    m->join_group(parent.id(), [](Result<void>) {});
    cluster.run_for(100 * kMillisecond);
  }
  for (auto& s : sessions) s->subscribe({kX}, [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  std::int64_t expected = 0;
  std::vector<bool> detached(kMembers, false);

  for (int round = 0; round < 40; ++round) {
    const std::size_t m = rng.below(kMembers);
    const double dice = rng.uniform();
    if (dice < 0.15 && !detached[m]) {
      // Detach a member from the group fabric.
      cluster.set_peer_links(members[m]->id(), node_ids, false);
      cluster.set_uplink(members[m]->id(), 0, false);
      detached[m] = true;
    } else if (dice < 0.30 && detached[m]) {
      cluster.set_peer_links(members[m]->id(), node_ids, true);
      cluster.set_uplink(members[m]->id(), 0, true);
      members[m]->join_group(parent.id(), [](Result<void>) {});
      detached[m] = false;
    } else if (dice < 0.38) {
      // Flap the parent's uplink.
      cluster.set_uplink(parent.id(), 0, rng.chance(0.5));
    } else if (members[m]->unacked_count() < 64) {
      auto txn = sessions[m]->begin();
      sessions[m]->increment(txn, kX, 1);
      if (sessions[m]->commit(std::move(txn)).ok()) ++expected;
    }
    cluster.run_for(rng.between(100, 600) * kMillisecond);
  }

  // Heal everything and let every queue drain.
  cluster.set_uplink(parent.id(), 0, true);
  for (std::size_t i = 0; i < kMembers; ++i) {
    cluster.set_peer_links(members[i]->id(), node_ids, true);
    cluster.set_uplink(members[i]->id(), 0, true);
    if (detached[i]) {
      members[i]->join_group(parent.id(), [](Result<void>) {});
    }
  }
  cluster.run_for(40 * kSecond);

  // Strong convergence across the whole deployment.
  EXPECT_EQ(value_of(cluster.dc(0).store().current(kX)), expected);
  EXPECT_EQ(value_of(parent.store().current(kX)), expected);
  for (std::size_t i = 0; i < kMembers; ++i) {
    EXPECT_EQ(value_of(members[i]->cached(kX)), expected)
        << "member " << i << " seed " << seed;
    EXPECT_EQ(members[i]->unacked_count(), 0u)
        << "member " << i << " seed " << seed;
  }
  EXPECT_EQ(parent.forward_backlog(), 0u);
  EXPECT_EQ(cluster.dc(0).committed(), static_cast<std::uint64_t>(expected));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupChurnTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace colony
