#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace colony {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(42);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(42);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(9);
  double sum = 0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / kN, 100.0, 2.5);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ParetoIsSkewed) {
  // With alpha ~1.16, the top 20% of samples should carry most of the mass
  // (the 80/20 rule the workload relies on).
  Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 20'000; ++i) samples.push_back(rng.pareto(1.0, 1.16));
  std::sort(samples.begin(), samples.end());
  double total = 0, top = 0;
  for (double s : samples) total += s;
  for (std::size_t i = samples.size() * 4 / 5; i < samples.size(); ++i) {
    top += samples[i];
  }
  EXPECT_GT(top / total, 0.6);
}

TEST(Rng, SkewedIndexFavoursLowIndices) {
  Rng rng(17);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20'000; ++i) {
    ++counts[rng.skewed_index(100, 1.16)];
  }
  int first_decile = 0;
  for (int i = 0; i < 10; ++i) first_decile += counts[i];
  EXPECT_GT(first_decile, 20'000 / 4);
}

TEST(Weighted, RespectsWeights) {
  Rng rng(21);
  Weighted w({1.0, 0.0, 3.0});
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40'000; ++i) ++counts[w.sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(WeightedDeath, RejectsEmptyAndZero) {
  EXPECT_DEATH(Weighted({}), "at least one weight");
  EXPECT_DEATH(Weighted({0.0, 0.0}), "must not all be zero");
}

}  // namespace
}  // namespace colony
