// DC-level integration: ClockSI execution over shards, geo-replication
// across the mesh, gossip, and the cloud-mode execution path.
#include <gtest/gtest.h>

#include "chat/model.hpp"
#include "colony/cluster.hpp"
#include "crdt/counter.hpp"
#include "crdt/rga.hpp"

namespace colony {
namespace {

const ObjectKey kX{"bench", "x"};

OpRecord inc(std::int64_t delta) {
  return OpRecord{kX, CrdtType::kPnCounter, PnCounter::prepare_add(delta)};
}

TEST(DcBasic, CloudExecuteCommitsAndReads) {
  ClusterConfig cfg;
  cfg.num_dcs = 1;
  Cluster cluster(cfg);
  EdgeNode& client = cluster.add_edge(ClientMode::kCloudOnly, 0, 1);

  bool done = false;
  client.cloud_execute({}, {inc(5)}, [&](Result<proto::DcExecuteResp> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().dot.valid());
    done = true;
  });
  cluster.run_for(2 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(cluster.dc(0).committed(), 1u);

  // Read it back through the shard path.
  std::int64_t value = 0;
  client.cloud_execute({kX}, {}, [&](Result<proto::DcExecuteResp> r) {
    ASSERT_TRUE(r.ok());
    PnCounter c;
    if (!r.value().read_values[0].state.empty()) {
      c.restore(r.value().read_values[0].state);
    }
    value = c.value();
  });
  cluster.run_for(2 * kSecond);
  EXPECT_EQ(value, 5);
}

TEST(DcBasic, MultiShardTransactionIsAtomic) {
  ClusterConfig cfg;
  cfg.num_dcs = 1;
  cfg.shards_per_dc = 8;  // keys spread across many shards
  Cluster cluster(cfg);
  EdgeNode& client = cluster.add_edge(ClientMode::kCloudOnly, 0, 1);

  // One transaction touching many keys (different shard owners).
  std::vector<OpRecord> ops;
  std::vector<ObjectKey> keys;
  for (int i = 0; i < 16; ++i) {
    const ObjectKey key{"bench", "k" + std::to_string(i)};
    keys.push_back(key);
    ops.push_back(OpRecord{key, CrdtType::kPnCounter,
                           PnCounter::prepare_add(1)});
  }
  bool committed = false;
  client.cloud_execute({}, ops, [&](Result<proto::DcExecuteResp> r) {
    ASSERT_TRUE(r.ok());
    committed = true;
  });
  cluster.run_for(2 * kSecond);
  ASSERT_TRUE(committed);

  // All-or-nothing: every key shows the increment.
  std::size_t seen = 0;
  client.cloud_execute(keys, {}, [&](Result<proto::DcExecuteResp> r) {
    ASSERT_TRUE(r.ok());
    for (const auto& snap : r.value().read_values) {
      PnCounter c;
      ASSERT_FALSE(snap.state.empty());
      c.restore(snap.state);
      EXPECT_EQ(c.value(), 1);
      ++seen;
    }
  });
  cluster.run_for(2 * kSecond);
  EXPECT_EQ(seen, 16u);
}

TEST(DcBasic, GeoReplicationReachesAllDcs) {
  ClusterConfig cfg;
  cfg.num_dcs = 3;
  Cluster cluster(cfg);
  EdgeNode& client = cluster.add_edge(ClientMode::kCloudOnly, 0, 1);

  client.cloud_execute({}, {inc(7)}, [](Result<proto::DcExecuteResp>) {});
  cluster.run_for(3 * kSecond);

  for (DcId d = 0; d < 3; ++d) {
    const auto* counter =
        dynamic_cast<const PnCounter*>(cluster.dc(d).store().current(kX));
    ASSERT_NE(counter, nullptr) << "DC " << d;
    EXPECT_EQ(counter->value(), 7) << "DC " << d;
  }
  // State vectors converge on [1,0,0].
  EXPECT_EQ(cluster.dc(1).state_vector(), (VersionVector{1, 0, 0}));
}

TEST(DcBasic, ConcurrentCommitsAtDifferentDcsMerge) {
  ClusterConfig cfg;
  cfg.num_dcs = 2;
  Cluster cluster(cfg);
  EdgeNode& a = cluster.add_edge(ClientMode::kCloudOnly, 0, 1);
  EdgeNode& b = cluster.add_edge(ClientMode::kCloudOnly, 1, 2);

  a.cloud_execute({}, {inc(1)}, [](Result<proto::DcExecuteResp>) {});
  b.cloud_execute({}, {inc(2)}, [](Result<proto::DcExecuteResp>) {});
  cluster.run_for(3 * kSecond);

  for (DcId d = 0; d < 2; ++d) {
    const auto* counter =
        dynamic_cast<const PnCounter*>(cluster.dc(d).store().current(kX));
    ASSERT_NE(counter, nullptr);
    EXPECT_EQ(counter->value(), 3) << "DC " << d;
  }
  EXPECT_EQ(cluster.dc(0).state_vector(), (VersionVector{1, 1}));
}

TEST(DcBasic, ReplicationCatchesUpAfterMeshPartition) {
  ClusterConfig cfg;
  cfg.num_dcs = 2;
  Cluster cluster(cfg);
  EdgeNode& a = cluster.add_edge(ClientMode::kCloudOnly, 0, 1);

  cluster.network().set_link_up(cluster.dc_node_id(0), cluster.dc_node_id(1),
                                false);
  a.cloud_execute({}, {inc(9)}, [](Result<proto::DcExecuteResp>) {});
  cluster.run_for(2 * kSecond);
  EXPECT_EQ(cluster.dc(1).store().current(kX), nullptr);  // partitioned

  // Heal the mesh: gossip-driven anti-entropy re-sends the lost suffix of
  // DC0's commit stream.
  cluster.network().set_link_up(cluster.dc_node_id(0), cluster.dc_node_id(1),
                                true);
  a.cloud_execute({}, {inc(1)}, [](Result<proto::DcExecuteResp>) {});
  cluster.run_for(5 * kSecond);

  const auto* counter =
      dynamic_cast<const PnCounter*>(cluster.dc(1).store().current(kX));
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value(), 10);
  EXPECT_EQ(cluster.dc(1).engine().pending_count(), 0u);
  EXPECT_EQ(cluster.dc(1).state_vector(), (VersionVector{2, 0}));
}

TEST(DcBasic, AclObjectReplicates) {
  ClusterConfig cfg;
  cfg.num_dcs = 2;
  Cluster cluster(cfg);
  EdgeNode& client = cluster.add_edge(ClientMode::kCloudOnly, 0, 1);

  OpRecord grant{security::acl_object_key(), CrdtType::kAcl,
                 security::AclObject::prepare_grant(
                     {"bench", 1, security::Permission::kOwn}, Dot{99, 1})};
  client.cloud_execute({}, {grant}, [](Result<proto::DcExecuteResp>) {});
  cluster.run_for(3 * kSecond);

  const auto* acl = cluster.dc(1).acl();
  ASSERT_NE(acl, nullptr);
  EXPECT_TRUE(acl->check("bench", 1, security::Permission::kOwn));
}

}  // namespace
}  // namespace colony
