#include "util/binary_codec.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace colony {
namespace {

TEST(BinaryCodec, RoundTripsScalars) {
  Encoder enc;
  enc.u8(0x7f);
  enc.u16(0xbeef);
  enc.u32(0xdeadbeef);
  enc.u64(0x0123456789abcdefULL);
  enc.i64(-42);
  enc.f64(3.14159);
  enc.boolean(true);
  enc.boolean(false);

  Decoder dec(enc.data());
  EXPECT_EQ(dec.u8(), 0x7f);
  EXPECT_EQ(dec.u16(), 0xbeef);
  EXPECT_EQ(dec.u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(dec.i64(), -42);
  EXPECT_DOUBLE_EQ(dec.f64(), 3.14159);
  EXPECT_TRUE(dec.boolean());
  EXPECT_FALSE(dec.boolean());
  EXPECT_TRUE(dec.done());
}

TEST(BinaryCodec, RoundTripsStringsAndBytes) {
  Encoder enc;
  enc.str("");
  enc.str("hello colony");
  enc.str(std::string("emb\0edded", 9));
  enc.bytes(Bytes{1, 2, 3, 255});
  enc.bytes(Bytes{});

  Decoder dec(enc.data());
  EXPECT_EQ(dec.str(), "");
  EXPECT_EQ(dec.str(), "hello colony");
  EXPECT_EQ(dec.str(), std::string("emb\0edded", 9));
  EXPECT_EQ(dec.bytes(), (Bytes{1, 2, 3, 255}));
  EXPECT_EQ(dec.bytes(), Bytes{});
  EXPECT_TRUE(dec.done());
}

TEST(BinaryCodec, RoundTripsExtremeValues) {
  Encoder enc;
  enc.u64(std::numeric_limits<std::uint64_t>::max());
  enc.i64(std::numeric_limits<std::int64_t>::min());
  enc.f64(-0.0);
  enc.f64(std::numeric_limits<double>::infinity());

  Decoder dec(enc.data());
  EXPECT_EQ(dec.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(dec.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(dec.f64(), 0.0);
  EXPECT_EQ(dec.f64(), std::numeric_limits<double>::infinity());
}

TEST(BinaryCodec, RemainingTracksProgress) {
  Encoder enc;
  enc.u32(5);
  enc.u32(6);
  Decoder dec(enc.data());
  EXPECT_EQ(dec.remaining(), 8u);
  dec.u32();
  EXPECT_EQ(dec.remaining(), 4u);
  dec.u32();
  EXPECT_EQ(dec.remaining(), 0u);
  EXPECT_TRUE(dec.done());
}

TEST(BinaryCodec, OverrunLatchesFailureInsteadOfAborting) {
  // Untrusted input must never crash the decoder: a read past the end
  // returns a zero value and latches the failure flag, which stays latched
  // for every subsequent read.
  Encoder enc;
  enc.u8(1);
  Decoder dec(enc.data());
  dec.u8();
  EXPECT_TRUE(dec.ok());
  EXPECT_EQ(dec.u32(), 0u);
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.u64(), 0u);  // still failed; reads stay inert
  EXPECT_FALSE(dec.ok());
}

TEST(BinaryCodec, TruncatedLengthPrefixFails) {
  // A string/bytes length prefix larger than the remaining input must be
  // rejected without allocating or reading out of bounds.
  Encoder enc;
  enc.u32(1000);  // claims 1000 payload bytes; none follow
  Decoder dec(enc.data());
  EXPECT_EQ(dec.str(), "");
  EXPECT_FALSE(dec.ok());
}

TEST(BinaryCodec, TakeMovesBuffer) {
  Encoder enc;
  enc.u32(7);
  const Bytes data = enc.take();
  EXPECT_EQ(data.size(), 4u);
  EXPECT_EQ(enc.size(), 0u);
}

}  // namespace
}  // namespace colony
