#include "consensus/epaxos.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>

#include "util/rng.hpp"

namespace colony::consensus {
namespace {

/// In-memory harness: N replicas exchanging messages through a queue whose
/// delivery order the test controls.
class Net {
 public:
  explicit Net(std::size_t n, std::uint64_t seed = 1) : rng_(seed) {
    std::vector<NodeId> ids;
    for (std::size_t i = 0; i < n; ++i) ids.push_back(i + 1);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId self = ids[i];
      replicas_.push_back(std::make_unique<Epaxos>(
          self, ids,
          [this, self](NodeId to, const EpaxosMsg& msg) {
            queue_.push_back({self, to, msg});
          },
          [this, self](const Command& cmd) {
            delivered_[self].push_back(cmd.id);
          }));
    }
  }

  Epaxos& replica(std::size_t i) { return *replicas_[i]; }
  const std::vector<Dot>& delivered(std::size_t i) {
    return delivered_[i + 1];
  }

  /// Deliver all queued messages, FIFO.
  void pump() {
    while (!queue_.empty()) {
      auto [from, to, msg] = queue_.front();
      queue_.pop_front();
      if (down_.contains(to) || down_.contains(from)) continue;
      replicas_[to - 1]->on_message(from, msg);
    }
  }

  /// Deliver all queued messages in pseudo-random order.
  void pump_shuffled() {
    while (!queue_.empty()) {
      const std::size_t idx = rng_.below(queue_.size());
      auto [from, to, msg] = queue_[idx];
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
      if (down_.contains(to) || down_.contains(from)) continue;
      replicas_[to - 1]->on_message(from, msg);
    }
  }

  void set_down(NodeId id, bool down) {
    if (down) {
      down_.insert(id);
    } else {
      down_.erase(id);
    }
  }

 private:
  struct Queued {
    NodeId from, to;
    EpaxosMsg msg;
  };
  Rng rng_;
  std::vector<std::unique_ptr<Epaxos>> replicas_;
  std::deque<Queued> queue_;
  std::map<NodeId, std::vector<Dot>> delivered_;
  std::set<NodeId> down_;
};

Command cmd(NodeId origin, std::uint64_t n, const std::string& key) {
  return Command{Dot{origin, n}, {ObjectKey{"b", key}}, {}};
}

TEST(Epaxos, SingleReplicaCommitsInline) {
  Net net(1);
  net.replica(0).propose(cmd(1, 1, "x"));
  EXPECT_EQ(net.replica(0).executed_count(), 1u);
  EXPECT_EQ(net.delivered(0).size(), 1u);
}

TEST(Epaxos, ThreeReplicasExecuteEverywhere) {
  Net net(3);
  net.replica(0).propose(cmd(1, 1, "x"));
  net.pump();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(net.delivered(i).size(), 1u) << "replica " << i;
    EXPECT_EQ(net.delivered(i)[0], (Dot{1, 1}));
  }
  EXPECT_EQ(net.replica(0).fast_path_commits(), 1u);
}

TEST(Epaxos, NonInterferingCommandsBothExecute) {
  Net net(3);
  net.replica(0).propose(cmd(1, 1, "x"));
  net.replica(1).propose(cmd(2, 1, "y"));
  net.pump();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(net.delivered(i).size(), 2u);
  }
}

TEST(Epaxos, InterferingCommandsSameOrderEverywhere) {
  Net net(3);
  // Concurrent interfering proposals from two leaders.
  net.replica(0).propose(cmd(1, 1, "x"));
  net.replica(1).propose(cmd(2, 1, "x"));
  net.pump();
  ASSERT_EQ(net.delivered(0).size(), 2u);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(net.delivered(i), net.delivered(0)) << "replica " << i;
  }
}

TEST(Epaxos, ManyConcurrentInterferingAgree) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Net net(5, seed);
    std::uint64_t n = 0;
    for (std::size_t r = 0; r < 5; ++r) {
      for (int k = 0; k < 4; ++k) {
        net.replica(r).propose(
            cmd(static_cast<NodeId>(r + 1), ++n, "hot"));
      }
    }
    net.pump_shuffled();
    ASSERT_EQ(net.delivered(0).size(), 20u) << "seed " << seed;
    for (std::size_t i = 1; i < 5; ++i) {
      EXPECT_EQ(net.delivered(i), net.delivered(0))
          << "replica " << i << " seed " << seed;
    }
  }
}

TEST(Epaxos, SequentialInterferingKeepOrder) {
  Net net(3);
  net.replica(0).propose(cmd(1, 1, "x"));
  net.pump();
  net.replica(1).propose(cmd(2, 1, "x"));
  net.pump();
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(net.delivered(i).size(), 2u);
    EXPECT_EQ(net.delivered(i)[0], (Dot{1, 1}));
    EXPECT_EQ(net.delivered(i)[1], (Dot{2, 1}));
  }
}

TEST(Epaxos, SlowPathUsedUnderConflict) {
  Net net(3);
  net.replica(0).propose(cmd(1, 1, "x"));
  net.replica(1).propose(cmd(2, 1, "x"));
  net.pump();
  const auto total_slow = net.replica(0).slow_path_commits() +
                          net.replica(1).slow_path_commits();
  EXPECT_GE(total_slow, 1u);  // at least one leader saw updated attributes
}

TEST(Epaxos, CatchUpViaCommittedInstances) {
  Net net(3);
  net.replica(0).propose(cmd(1, 1, "x"));
  net.replica(0).propose(cmd(1, 2, "x"));
  net.pump();

  // A fresh replica (e.g. a group joiner in a new epoch) installs the
  // committed instances and executes them in the same order.
  std::vector<Dot> delivered;
  Epaxos joiner(
      9, {9}, [](NodeId, const EpaxosMsg&) {},
      [&](const Command& c) { delivered.push_back(c.id); });
  joiner.install_committed(net.replica(0).committed_instances());
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered, net.delivered(0));
}

TEST(Epaxos, MinorityFailureStillCommits) {
  Net net(3);
  net.set_down(3, true);  // one of three replicas down
  net.replica(0).propose(cmd(1, 1, "x"));
  net.pump();
  // Fast quorum (N-1 = 2 replies) cannot be reached, but the slow quorum
  // path is not triggered without changed attributes; with one replica
  // down the leader still gets 1 reply = N-2... For N=3 the fast quorum is
  // 2 and only 1 reply arrives, so the command must NOT commit yet.
  EXPECT_EQ(net.replica(0).committed_count(), 0u);
  // When the replica recovers and the leader re-broadcasts via another
  // proposal round in a new epoch (modelled here by replaying the message),
  // progress resumes — the group layer handles this via epoch changes.
  net.set_down(3, false);
  net.replica(1).propose(cmd(2, 1, "y"));
  net.pump();
  EXPECT_GE(net.replica(1).committed_count(), 1u);
}

TEST(Epaxos, StatusTransitions) {
  Net net(3);
  const InstanceId inst = net.replica(0).propose(cmd(1, 1, "x"));
  EXPECT_EQ(net.replica(0).status(inst), InstanceStatus::kPreAccepted);
  net.pump();
  EXPECT_EQ(net.replica(0).status(inst), InstanceStatus::kExecuted);
  EXPECT_EQ(net.replica(1).status(inst), InstanceStatus::kExecuted);
  EXPECT_EQ(net.replica(0).status(InstanceId{9, 9}), InstanceStatus::kNone);
}

TEST(Command, InterferenceBySharedKey) {
  const Command a{Dot{1, 1}, {ObjectKey{"b", "x"}, ObjectKey{"b", "y"}}, {}};
  const Command b{Dot{2, 1}, {ObjectKey{"b", "y"}}, {}};
  const Command c{Dot{3, 1}, {ObjectKey{"b", "z"}}, {}};
  EXPECT_TRUE(a.interferes(b));
  EXPECT_TRUE(b.interferes(a));
  EXPECT_FALSE(a.interferes(c));
  EXPECT_FALSE(c.interferes(b));
}

}  // namespace
}  // namespace colony::consensus
