#include "sim/rpc.hpp"

#include <gtest/gtest.h>

#include "util/codec.hpp"

namespace colony::sim {
namespace {

/// Echo server; can also defer replies to test asynchronous servers.
struct EchoServer final : RpcActor {
  EchoServer(Network& net, NodeId id) : RpcActor(net, id) {}
  bool defer = false;
  ReplyFn deferred;

  void on_message(NodeId, std::uint32_t, ByteView) override {}
  void on_request(NodeId /*from*/, std::uint32_t method, ByteView payload,
                  ReplyFn reply) override {
    if (method == 99) {
      reply(Error{Error::Code::kInvalidArgument, "bad method"});
      return;
    }
    if (defer) {
      deferred = std::move(reply);
      return;
    }
    reply(codec::to_bytes(codec::from_bytes<int>(payload) + 1));
  }
};

struct Client final : RpcActor {
  Client(Network& net, NodeId id) : RpcActor(net, id) {}
  void on_message(NodeId, std::uint32_t, ByteView) override {}
  void on_request(NodeId, std::uint32_t, ByteView,
                  ReplyFn reply) override {
    reply(Error{Error::Code::kInvalidArgument, "not a server"});
  }
};

class RpcTest : public ::testing::Test {
 protected:
  Scheduler sched;
  Network net{sched, 1};
};

TEST_F(RpcTest, RoundTrip) {
  EchoServer server(net, 1);
  Client client(net, 2);
  net.connect(1, 2, LatencyModel{5 * kMillisecond, 0});

  int got = 0;
  SimTime completed_at = 0;
  client.call(1, 7, 41, [&](Result<Bytes> r) {
    ASSERT_TRUE(r.ok());
    got = codec::from_bytes<int>(r.value());
    completed_at = sched.now();
  });
  sched.run_all();  // also drains the (ignored) timeout event
  EXPECT_EQ(got, 42);
  EXPECT_EQ(completed_at, 10 * kMillisecond);  // one round trip
}

TEST_F(RpcTest, ErrorsPropagate) {
  EchoServer server(net, 1);
  Client client(net, 2);
  net.connect(1, 2, LatencyModel{1 * kMillisecond, 0});

  Error::Code code{};
  client.call(1, 99, 0, [&](Result<Bytes> r) {
    ASSERT_FALSE(r.ok());
    code = r.error().code;
  });
  sched.run_all();
  // Application errors surface as kUnavailable with the message preserved.
  EXPECT_EQ(code, Error::Code::kUnavailable);
}

TEST_F(RpcTest, TimeoutFiresWhenServerUnreachable) {
  EchoServer server(net, 1);
  Client client(net, 2);
  net.connect(1, 2, LatencyModel{1 * kMillisecond, 0});
  net.set_link_up(1, 2, false);

  bool timed_out = false;
  client.call(1, 7, 1, [&](Result<Bytes> r) {
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, Error::Code::kUnavailable);
    timed_out = true;
  }, /*timeout=*/1 * kSecond);
  sched.run_all();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(sched.now(), 1 * kSecond);
}

TEST_F(RpcTest, CallbackFiresExactlyOnceOnLateReply) {
  EchoServer server(net, 1);
  server.defer = true;
  Client client(net, 2);
  net.connect(1, 2, LatencyModel{1 * kMillisecond, 0});

  int calls = 0;
  client.call(1, 7, 1, [&](Result<Bytes>) { ++calls; },
              /*timeout=*/10 * kMillisecond);
  sched.run_until(20 * kMillisecond);
  EXPECT_EQ(calls, 1);  // timeout fired
  server.deferred(codec::to_bytes(5));  // late reply after timeout
  sched.run_all();
  EXPECT_EQ(calls, 1);  // ignored
}

TEST_F(RpcTest, ReplyInFlightWhenTimeoutFiresIsDropped) {
  // The reply is already on the wire when the timeout fires: the pending
  // entry is erased exactly once, so on_response must fire exactly once
  // (with the timeout error) and the landing reply is dropped.
  EchoServer server(net, 1);
  Client client(net, 2);
  net.connect(1, 2, LatencyModel{5 * kMillisecond, 0});

  int calls = 0;
  bool ok = true;
  client.call(1, 7, 1, [&](Result<Bytes> r) {
    ++calls;
    ok = r.ok();
  }, /*timeout=*/8 * kMillisecond);  // reply lands at 10ms
  sched.run_all();
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(ok);
}

TEST_F(RpcTest, ReplyAndTimeoutAtTheSameInstantFireOnce) {
  // Exact tie: both the timeout event and the response delivery land at
  // t=10ms. The timeout was scheduled first (at call time) so it wins the
  // FIFO tie-break; either way the erase must make the loser a no-op.
  EchoServer server(net, 1);
  Client client(net, 2);
  net.connect(1, 2, LatencyModel{5 * kMillisecond, 0});

  int calls = 0;
  client.call(1, 7, 1, [&](Result<Bytes>) { ++calls; },
              /*timeout=*/10 * kMillisecond);
  sched.run_all();
  EXPECT_EQ(calls, 1);
}

TEST_F(RpcTest, DanglingTimeoutAfterSuccessfulReplyIsNoOp) {
  // The success path erases the pending entry; the still-scheduled timeout
  // event later finds nothing and must not double-fire on_response.
  EchoServer server(net, 1);
  Client client(net, 2);
  net.connect(1, 2, LatencyModel{1 * kMillisecond, 0});

  int calls = 0;
  bool ok = false;
  client.call(1, 7, 41, [&](Result<Bytes> r) {
    ++calls;
    ok = r.ok();
  }, /*timeout=*/30 * kSecond);
  sched.run_all();  // drains the reply AND the dangling timeout event
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(ok);
  EXPECT_EQ(sched.now(), 30 * kSecond);  // the timeout event did fire
}

TEST_F(RpcTest, AsynchronousServerReply) {
  EchoServer server(net, 1);
  server.defer = true;
  Client client(net, 2);
  net.connect(1, 2, LatencyModel{1 * kMillisecond, 0});

  int got = 0;
  client.call(1, 7, 1, [&](Result<Bytes> r) {
    ASSERT_TRUE(r.ok());
    got = codec::from_bytes<int>(r.value());
  });
  sched.run_until(5 * kMillisecond);
  ASSERT_TRUE(static_cast<bool>(server.deferred));
  server.deferred(codec::to_bytes(123));  // server answers later
  sched.run_all();
  EXPECT_EQ(got, 123);
}

TEST_F(RpcTest, ConcurrentCallsCorrelate) {
  EchoServer server(net, 1);
  Client client(net, 2);
  net.connect(1, 2, LatencyModel{1 * kMillisecond, 0});

  std::vector<int> results(10, 0);
  for (int i = 0; i < 10; ++i) {
    client.call(1, 7, i * 100, [&results, i](Result<Bytes> r) {
      ASSERT_TRUE(r.ok());
      results[static_cast<std::size_t>(i)] = codec::from_bytes<int>(r.value());
    });
  }
  sched.run_all();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], i * 100 + 1);
  }
}

}  // namespace
}  // namespace colony::sim
