// K-stability (paper section 3.8): a transaction becomes visible to edge
// nodes only once >= K data centres know it.
#include <gtest/gtest.h>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"

namespace colony {
namespace {

const ObjectKey kX{"app", "x"};

std::int64_t cached_value(const EdgeNode& node) {
  const auto* c = dynamic_cast<const PnCounter*>(node.cached(kX));
  return c == nullptr ? 0 : c->value();
}

TEST(KStability, K2DelaysEdgeVisibilityUntilSecondDcKnows) {
  ClusterConfig cfg;
  cfg.num_dcs = 3;
  cfg.k_stability = 2;
  Cluster cluster(cfg);

  EdgeNode& writer = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EdgeNode& observer = cluster.add_edge(ClientMode::kClientCache, 1, 2);
  Session ws(writer), os(observer);
  os.subscribe({kX}, [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  // Cut DC0's mesh links: its commits cannot become 2-stable.
  cluster.network().set_link_up(cluster.dc_node_id(0), cluster.dc_node_id(1),
                                false);
  cluster.network().set_link_up(cluster.dc_node_id(0), cluster.dc_node_id(2),
                                false);

  auto txn = ws.begin();
  ws.increment(txn, kX, 5);
  ASSERT_TRUE(ws.commit(std::move(txn)).ok());
  cluster.run_for(3 * kSecond);

  // DC0 has it; the observer at DC1 must not see it (k = 1 < K = 2).
  EXPECT_EQ(cluster.dc(0).committed(), 1u);
  EXPECT_EQ(cached_value(observer), 0);

  // Writer still reads its own write (read-my-writes).
  EXPECT_EQ(cached_value(writer), 5);

  // Heal the mesh: the transaction becomes 2-stable and reaches the edge.
  cluster.network().set_link_up(cluster.dc_node_id(0), cluster.dc_node_id(1),
                                true);
  cluster.network().set_link_up(cluster.dc_node_id(0), cluster.dc_node_id(2),
                                true);
  cluster.run_for(5 * kSecond);
  EXPECT_EQ(cached_value(observer), 5);
}

TEST(KStability, K1MakesUpdatesVisibleImmediately) {
  ClusterConfig cfg;
  cfg.num_dcs = 3;
  cfg.k_stability = 1;
  Cluster cluster(cfg);

  EdgeNode& writer = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EdgeNode& observer = cluster.add_edge(ClientMode::kClientCache, 0, 2);
  Session ws(writer), os(observer);
  os.subscribe({kX}, [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  auto txn = ws.begin();
  ws.increment(txn, kX, 5);
  ASSERT_TRUE(ws.commit(std::move(txn)).ok());
  cluster.run_for(2 * kSecond);
  EXPECT_EQ(cached_value(observer), 5);
}

TEST(KStability, DcCutIsKStable) {
  ClusterConfig cfg;
  cfg.num_dcs = 3;
  cfg.k_stability = 2;
  Cluster cluster(cfg);
  EdgeNode& writer = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session ws(writer);

  auto txn = ws.begin();
  ws.increment(txn, kX, 1);
  ASSERT_TRUE(ws.commit(std::move(txn)).ok());
  cluster.run_for(3 * kSecond);

  // With a healthy mesh, the K-cut catches up to the commit everywhere.
  for (DcId d = 0; d < 3; ++d) {
    EXPECT_TRUE(VersionVector({1, 0, 0}).leq(cluster.dc(d).k_cut()))
        << "DC " << d;
  }
}

TEST(KStability, SubscribeSnapshotsRespectKCut) {
  // A fresh subscriber during the partition gets the K-stable state, not
  // DC0's unstable head.
  ClusterConfig cfg;
  cfg.num_dcs = 2;
  cfg.k_stability = 2;
  Cluster cluster(cfg);
  EdgeNode& writer = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session ws(writer);

  cluster.network().set_link_up(cluster.dc_node_id(0), cluster.dc_node_id(1),
                                false);
  auto txn = ws.begin();
  ws.increment(txn, kX, 9);
  ASSERT_TRUE(ws.commit(std::move(txn)).ok());
  cluster.run_for(2 * kSecond);

  EdgeNode& late = cluster.add_edge(ClientMode::kClientCache, 0, 3);
  Session ls(late);
  ls.subscribe({kX}, [](Result<void>) {});
  cluster.run_for(2 * kSecond);
  EXPECT_EQ(cached_value(late), 0);  // unstable update withheld
}

}  // namespace
}  // namespace colony
