#include "clock/hlc.hpp"

#include <gtest/gtest.h>

namespace colony {
namespace {

TEST(Hlc, MonotoneUnderAdvancingPhysicalClock) {
  HybridLogicalClock hlc;
  Timestamp prev = 0;
  for (SimTime t = 1; t <= 100; ++t) {
    const Timestamp ts = hlc.tick(t);
    EXPECT_GT(ts, prev);
    prev = ts;
  }
}

TEST(Hlc, MonotoneUnderStalledPhysicalClock) {
  HybridLogicalClock hlc;
  Timestamp prev = hlc.tick(5);
  for (int i = 0; i < 1000; ++i) {
    const Timestamp ts = hlc.tick(5);  // physical clock frozen
    EXPECT_GT(ts, prev);
    prev = ts;
  }
}

TEST(Hlc, MonotoneUnderBackwardsPhysicalClock) {
  HybridLogicalClock hlc;
  const Timestamp a = hlc.tick(100);
  const Timestamp b = hlc.tick(50);  // skewed clock jumped back
  EXPECT_GT(b, a);
}

TEST(Hlc, WitnessOrdersAfterRemote) {
  HybridLogicalClock slow, fast;
  const Timestamp remote = fast.tick(1000);
  const Timestamp local = slow.witness(1, remote);
  EXPECT_GT(local, remote);
  // And stays monotone afterwards.
  EXPECT_GT(slow.tick(2), local);
}

TEST(Hlc, CausalChainAcrossThreeClocks) {
  HybridLogicalClock a, b, c;
  const Timestamp t1 = a.tick(10);
  const Timestamp t2 = b.witness(5, t1);
  const Timestamp t3 = c.witness(1, t2);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
}

}  // namespace
}  // namespace colony
