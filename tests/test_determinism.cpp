// Simulation determinism: the reproducibility guarantee behind every
// figure — identical seeds yield bit-identical outcomes; different seeds
// yield different schedules.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "chat/driver.hpp"
#include "crdt/counter.hpp"

namespace colony {
namespace {

struct RunResult {
  std::uint64_t completed = 0;
  std::uint64_t dc_committed = 0;
  double mean_latency = 0;
  VersionVector dc_state;
};

RunResult run_once(std::uint64_t cluster_seed, std::uint64_t driver_seed) {
  ClusterConfig cfg;
  cfg.seed = cluster_seed;
  Cluster cluster(cfg);
  chat::ChatDriverConfig dcfg;
  dcfg.mode = ClientMode::kClientCache;
  dcfg.clients = 8;
  dcfg.trace.num_users = 8;
  dcfg.think_time = 50 * kMillisecond;
  dcfg.seed = driver_seed;
  chat::ChatDriver driver(cluster, dcfg);
  driver.start();
  cluster.run_for(10 * kSecond);
  driver.stop();
  cluster.run_for(2 * kSecond);

  RunResult r;
  r.completed = driver.completed();
  r.dc_committed = cluster.dc(0).committed();
  r.mean_latency = driver.overall_latency().mean_us();
  r.dc_state = cluster.dc(0).state_vector();
  return r;
}

TEST(Determinism, SameSeedsSameWorld) {
  const RunResult a = run_once(42, 7);
  const RunResult b = run_once(42, 7);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dc_committed, b.dc_committed);
  EXPECT_DOUBLE_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.dc_state, b.dc_state);
}

// Replay sweep: bit-identical reproduction must hold across the seed
// space, not just for one hand-picked pair — chaos debugging depends on it.
class DeterminismSweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {
};

TEST_P(DeterminismSweep, BitIdenticalReplay) {
  const auto [cluster_seed, driver_seed] = GetParam();
  const RunResult a = run_once(cluster_seed, driver_seed);
  const RunResult b = run_once(cluster_seed, driver_seed);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dc_committed, b.dc_committed);
  EXPECT_DOUBLE_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.dc_state, b.dc_state);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> seed_pairs() {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
  for (std::uint64_t i = 0; i < 10; ++i) {
    pairs.emplace_back(1000 + 17 * i, 5 + 31 * i);
  }
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(SeedPairs, DeterminismSweep,
                         ::testing::ValuesIn(seed_pairs()));

TEST(Determinism, DifferentSeedsDifferentSchedules) {
  const RunResult a = run_once(42, 7);
  const RunResult b = run_once(43, 8);
  // Same workload statistics, but the schedules (and thus exact counts)
  // should differ.
  EXPECT_TRUE(a.completed != b.completed ||
              a.mean_latency != b.mean_latency);
}

}  // namespace
}  // namespace colony
