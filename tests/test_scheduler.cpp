#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace colony::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(30, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(1); });
  s.at(20, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Scheduler, SameTimeIsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.at(7, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, AfterIsRelative) {
  Scheduler s;
  s.at(100, [] {});
  s.run_all();
  SimTime fired_at = 0;
  s.after(50, [&] { fired_at = s.now(); });
  s.run_all();
  EXPECT_EQ(fired_at, 150u);
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  int fired = 0;
  s.at(1, [&] {
    ++fired;
    s.after(1, [&] {
      ++fired;
      s.after(1, [&] { ++fired; });
    });
  });
  s.run_all();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(s.now(), 3u);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  int fired = 0;
  s.at(10, [&] { ++fired; });
  s.at(20, [&] { ++fired; });
  s.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 15u);
  EXPECT_EQ(s.pending(), 1u);
  s.run_until(25);
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.at(0, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(s.executed(), 1u);
}

TEST(SchedulerDeath, RejectsPastEvents) {
  Scheduler s;
  s.at(10, [] {});
  s.run_all();
  EXPECT_DEATH(s.at(5, [] {}), "in the past");
}

}  // namespace
}  // namespace colony::sim
