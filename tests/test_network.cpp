#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace colony::sim {
namespace {

struct Recorder final : Actor {
  Recorder(Network& net, NodeId id) : Actor(net, id) {}
  std::vector<std::pair<std::uint32_t, SimTime>> received;

  void handle(NodeId /*from*/, std::uint32_t kind,
              ByteView /*body*/) override {
    received.emplace_back(kind, net_.now());
  }
};

class NetworkTest : public ::testing::Test {
 protected:
  Scheduler sched;
  Network net{sched, /*seed=*/1};
};

TEST_F(NetworkTest, DeliversWithLatency) {
  Recorder a(net, 1), b(net, 2);
  net.connect(1, 2, LatencyModel{10 * kMillisecond, 0});
  net.send(1, 2, 42, {});
  sched.run_all();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, 42u);
  EXPECT_EQ(b.received[0].second, 10 * kMillisecond);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST_F(NetworkTest, NoLinkDrops) {
  Recorder a(net, 1), b(net, 2);
  net.send(1, 2, 1, {});
  sched.run_all();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST_F(NetworkTest, DownLinkDropsAndRecoveryDelivers) {
  Recorder a(net, 1), b(net, 2);
  net.connect(1, 2, LatencyModel{1 * kMillisecond, 0});
  net.set_link_up(1, 2, false);
  net.send(1, 2, 1, {});
  sched.run_all();
  EXPECT_TRUE(b.received.empty());
  net.set_link_up(1, 2, true);
  net.send(1, 2, 2, {});
  sched.run_all();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, 2u);
}

TEST_F(NetworkTest, DownNodeDropsBothDirections) {
  Recorder a(net, 1), b(net, 2);
  net.connect(1, 2, LatencyModel{1 * kMillisecond, 0});
  net.set_node_up(2, false);
  net.send(1, 2, 1, {});
  net.send(2, 1, 2, {});
  sched.run_all();
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(b.received.empty());
  net.set_node_up(2, true);
  net.send(1, 2, 3, {});
  sched.run_all();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(NetworkTest, CrashInFlightDropsAtDelivery) {
  Recorder a(net, 1), b(net, 2);
  net.connect(1, 2, LatencyModel{10 * kMillisecond, 0});
  net.send(1, 2, 1, {});
  sched.run_until(5 * kMillisecond);
  net.set_node_up(2, false);  // crashes while the message is in flight
  sched.run_all();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(NetworkTest, PerLinkFifoDespiteJitter) {
  Recorder a(net, 1), b(net, 2);
  net.connect(1, 2, LatencyModel{10 * kMillisecond, 9 * kMillisecond});
  for (std::uint32_t i = 0; i < 50; ++i) {
    net.send(1, 2, i, {});
  }
  sched.run_all();
  ASSERT_EQ(b.received.size(), 50u);
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(b.received[i].first, i);  // FIFO preserved
  }
}

TEST_F(NetworkTest, LossRateDropsSome) {
  Recorder a(net, 1), b(net, 2);
  LatencyModel lossy{1 * kMillisecond, 0, 0.5};
  net.connect(1, 2, lossy);
  for (int i = 0; i < 200; ++i) net.send(1, 2, 1, {});
  sched.run_all();
  EXPECT_GT(b.received.size(), 50u);
  EXPECT_LT(b.received.size(), 150u);
}

TEST_F(NetworkTest, LatencySampleWithinJitterBounds) {
  Rng rng(3);
  const LatencyModel m{100, 30};
  for (int i = 0; i < 1000; ++i) {
    const SimTime s = m.sample(rng);
    EXPECT_GE(s, 70u);
    EXPECT_LE(s, 130u);
  }
}

TEST_F(NetworkTest, LinkQueries) {
  Recorder a(net, 1), b(net, 2);
  EXPECT_FALSE(net.link_exists(1, 2));
  net.connect(1, 2, LatencyModel{1, 0});
  EXPECT_TRUE(net.link_exists(1, 2));
  EXPECT_TRUE(net.link_up(1, 2));
  net.set_link_up(1, 2, false);
  EXPECT_FALSE(net.link_up(1, 2));
}

}  // namespace
}  // namespace colony::sim
