// Edge-client integration (SwiftCloud-like client-cache mode): local
// transactions, asynchronous commit, read-my-writes, subscriptions and
// update pushes.
#include <gtest/gtest.h>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"
#include "crdt/rga.hpp"

namespace colony {
namespace {

const ObjectKey kX{"app", "x"};
const ObjectKey kSeq{"app", "seq"};

class EdgeBasicTest : public ::testing::Test {
 protected:
  EdgeBasicTest() : cluster([] {
    ClusterConfig cfg;
    cfg.num_dcs = 1;
    return cfg;
  }()) {}

  Cluster cluster;
};

TEST_F(EdgeBasicTest, LocalCommitIsImmediateAndAsynchronouslyAcked) {
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);

  auto txn = session.begin();
  session.increment(txn, kX, 5);
  const auto result = session.commit(std::move(txn));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().valid());

  // Read-my-writes before any network round trip.
  const auto* counter = dynamic_cast<const PnCounter*>(node.cached(kX));
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value(), 5);
  EXPECT_EQ(node.unacked_count(), 1u);
  EXPECT_EQ(node.state_vector(), VersionVector(1));  // not yet concrete

  cluster.run_for(2 * kSecond);
  EXPECT_EQ(node.unacked_count(), 0u);
  EXPECT_EQ(node.state_vector(), (VersionVector{1}));  // resolved to [1]
  EXPECT_EQ(cluster.dc(0).committed(), 1u);
}

TEST_F(EdgeBasicTest, ChainedCommitsResolveInOrder) {
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);

  for (int i = 0; i < 5; ++i) {
    auto txn = session.begin();
    session.increment(txn, kX, 1);
    ASSERT_TRUE(session.commit(std::move(txn)).ok());
  }
  EXPECT_EQ(node.unacked_count(), 5u);
  cluster.run_for(3 * kSecond);
  EXPECT_EQ(node.unacked_count(), 0u);
  EXPECT_EQ(cluster.dc(0).committed(), 5u);
  EXPECT_EQ(node.state_vector(), (VersionVector{5}));
  // DC sees the full count.
  const auto* counter =
      dynamic_cast<const PnCounter*>(cluster.dc(0).store().current(kX));
  EXPECT_EQ(counter->value(), 5);
}

TEST_F(EdgeBasicTest, ReadThroughFetchesAndCaches) {
  // Writer creates the object at the DC; reader fetches on first read.
  EdgeNode& writer = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session ws(writer);
  auto wtxn = ws.begin();
  ws.increment(wtxn, kX, 3);
  ASSERT_TRUE(ws.commit(std::move(wtxn)).ok());
  cluster.run_for(2 * kSecond);

  EdgeNode& reader = cluster.add_edge(ClientMode::kClientCache, 0, 2);
  Session rs(reader);
  auto rtxn = rs.begin();
  std::int64_t value = -1;
  ReadSource source{};
  rs.read_counter(rtxn, kX, [&](Result<std::int64_t> r, ReadSource src) {
    ASSERT_TRUE(r.ok());
    value = r.value();
    source = src;
  });
  cluster.run_for(2 * kSecond);
  EXPECT_EQ(value, 3);
  EXPECT_EQ(source, ReadSource::kDc);  // first read misses

  // Second read hits the cache.
  auto rtxn2 = rs.begin();
  rs.read_counter(rtxn2, kX, [&](Result<std::int64_t> r, ReadSource src) {
    ASSERT_TRUE(r.ok());
    value = r.value();
    source = src;
  });
  EXPECT_EQ(source, ReadSource::kLocal);  // synchronous hit
  EXPECT_EQ(value, 3);
}

TEST_F(EdgeBasicTest, SubscriptionPushesRemoteUpdates) {
  EdgeNode& a = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EdgeNode& b = cluster.add_edge(ClientMode::kClientCache, 0, 2);
  Session sa(a), sb(b);

  bool subscribed = false;
  sb.subscribe({kX}, [&](Result<void> r) {
    ASSERT_TRUE(r.ok());
    subscribed = true;
  });
  cluster.run_for(1 * kSecond);
  ASSERT_TRUE(subscribed);

  auto txn = sa.begin();
  sa.increment(txn, kX, 7);
  ASSERT_TRUE(sa.commit(std::move(txn)).ok());
  cluster.run_for(3 * kSecond);

  const auto* counter = dynamic_cast<const PnCounter*>(b.cached(kX));
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value(), 7);  // pushed, no explicit read needed
}

TEST_F(EdgeBasicTest, TransactionReadsOwnBufferedUpdates) {
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);

  auto txn = session.begin();
  session.increment(txn, kX, 2);
  session.increment(txn, kX, 3);
  std::int64_t value = -1;
  session.read_counter(txn, kX, [&](Result<std::int64_t> r, ReadSource) {
    ASSERT_TRUE(r.ok());
    value = r.value();
  });
  cluster.run_for(1 * kSecond);
  EXPECT_EQ(value, 5);  // both buffered ops visible inside the transaction
  // But not outside until commit.
  const auto* counter = dynamic_cast<const PnCounter*>(node.cached(kX));
  if (counter != nullptr) {
    EXPECT_EQ(counter->value(), 0);
  }
}

TEST_F(EdgeBasicTest, AtomicMultiObjectCommit) {
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);
  const ObjectKey kY{"app", "y"};

  auto txn = session.begin();
  session.increment(txn, kX, 1);
  session.increment(txn, kY, 1);
  ASSERT_TRUE(session.commit(std::move(txn)).ok());
  cluster.run_for(2 * kSecond);

  // Both or neither at the DC (atomicity): check both applied by the same
  // transaction dot.
  const auto dots_x = cluster.dc(0).store().journalled_dots(kX);
  const auto dots_y = cluster.dc(0).store().journalled_dots(kY);
  ASSERT_EQ(dots_x.size(), 1u);
  ASSERT_EQ(dots_y.size(), 1u);
  EXPECT_EQ(dots_x[0], dots_y[0]);
}

TEST_F(EdgeBasicTest, SequenceAppendsPreserveOrderAcrossClients) {
  EdgeNode& a = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EdgeNode& b = cluster.add_edge(ClientMode::kClientCache, 0, 2);
  Session sa(a), sb(b);

  sb.subscribe({kSeq}, [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  auto t1 = sa.begin();
  sa.append(t1, kSeq, "first");
  ASSERT_TRUE(sa.commit(std::move(t1)).ok());
  cluster.run_for(2 * kSecond);

  // b sees "first", replies "second": causal order must hold everywhere.
  auto t2 = sb.begin();
  std::vector<std::string> seen;
  sb.read_sequence(t2, kSeq, [&](Result<std::vector<std::string>> r,
                                 ReadSource) {
    ASSERT_TRUE(r.ok());
    seen = r.value();
  });
  cluster.run_for(1 * kSecond);
  ASSERT_EQ(seen, (std::vector<std::string>{"first"}));
  sb.append(t2, kSeq, "second");
  ASSERT_TRUE(sb.commit(std::move(t2)).ok());
  cluster.run_for(3 * kSecond);

  const auto* seq =
      dynamic_cast<const Rga*>(cluster.dc(0).store().current(kSeq));
  ASSERT_NE(seq, nullptr);
  EXPECT_EQ(seq->values(), (std::vector<std::string>{"first", "second"}));
}

TEST_F(EdgeBasicTest, BackpressureWhenUnackedQueueFull) {
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);
  // Cut the uplink so acks never arrive.
  cluster.set_uplink(node.id(), 0, false);

  Result<Dot> last{Dot{}};
  for (std::size_t i = 0; i < node.config().max_unacked + 1; ++i) {
    auto txn = session.begin();
    session.increment(txn, kX, 1);
    last = session.commit(std::move(txn));
  }
  EXPECT_FALSE(last.ok());
  EXPECT_EQ(last.error().code, Error::Code::kUnavailable);
}

TEST_F(EdgeBasicTest, CacheEvictionUnsubscribes) {
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1,
                                    /*cache_capacity=*/2);
  Session session(node);
  for (int i = 0; i < 3; ++i) {
    auto txn = session.begin();
    session.increment(txn, {"app", "k" + std::to_string(i)}, 1);
    ASSERT_TRUE(session.commit(std::move(txn)).ok());
  }
  // Oldest object evicted from the cache.
  EXPECT_FALSE(node.is_cached({"app", "k0"}));
  EXPECT_TRUE(node.is_cached({"app", "k1"}));
  EXPECT_TRUE(node.is_cached({"app", "k2"}));
  cluster.run_for(2 * kSecond);
}

}  // namespace
}  // namespace colony
