// End-to-end encrypted objects (paper section 2.4): the cloud replicates,
// journals and pushes sealed buckets without ever holding plaintext; keyed
// clients decrypt and merge locally.
#include <gtest/gtest.h>

#include <algorithm>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"
#include "crdt/rga.hpp"
#include "security/sealed.hpp"

namespace colony {
namespace {

const ObjectKey kVault{"vault", "journal"};

TEST(SealedUnit, AppendKeepsNonceOrderAndDedups) {
  security::SealedObject obj;
  const auto p2 = security::seal("vault", 1, 2, Bytes{'b'});
  const auto p1 = security::seal("vault", 1, 1, Bytes{'a'});
  obj.apply(security::SealedObject::prepare_append(p2));
  obj.apply(security::SealedObject::prepare_append(p1));
  obj.apply(security::SealedObject::prepare_append(p1));  // duplicate
  ASSERT_EQ(obj.entry_count(), 2u);
  EXPECT_EQ(obj.entries()[0].nonce, 1u);
  EXPECT_EQ(obj.entries()[1].nonce, 2u);
}

TEST(SealedUnit, SnapshotRoundTrip) {
  security::SealedObject obj;
  obj.apply(security::SealedObject::prepare_append(
      security::seal("vault", 1, 5, Bytes{'x'})));
  security::SealedObject copy;
  copy.restore(obj.snapshot());
  EXPECT_EQ(copy.entry_count(), 1u);
  EXPECT_EQ(copy.entries()[0].nonce, 5u);
}

TEST(SealedUnit, UnsealReplaysInnerOps) {
  security::register_sealed_crdt();
  security::SealedObject obj;
  const security::SessionKey key = 0xfeed;
  for (std::uint64_t n = 1; n <= 3; ++n) {
    const OpRecord op = security::seal_op(
        kVault, key, n, CrdtType::kPnCounter, PnCounter::prepare_add(2));
    obj.apply(op.payload);
  }
  const auto value = security::unseal(obj, key, CrdtType::kPnCounter);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(dynamic_cast<const PnCounter*>(value->get())->value(), 6);
  // Wrong key fails authentication.
  EXPECT_FALSE(security::unseal(obj, key + 1, CrdtType::kPnCounter)
                   .has_value());
  // Wrong expected type is rejected.
  EXPECT_FALSE(security::unseal(obj, key, CrdtType::kGSet).has_value());
}

TEST(SealedE2e, CloudStoresOnlyCiphertext) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  EdgeNode& alice = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EdgeNode& bob = cluster.add_edge(ClientMode::kClientCache, 0, 2);
  Session sa(alice), sb(bob);

  bool a_ready = false, b_ready = false;
  sa.open_session({"vault"}, [&](Result<void> r) { a_ready = r.ok(); });
  sb.open_session({"vault"}, [&](Result<void> r) { b_ready = r.ok(); });
  sb.subscribe({kVault}, [](Result<void>) {});
  cluster.run_for(1 * kSecond);
  ASSERT_TRUE(a_ready);
  ASSERT_TRUE(b_ready);

  // Alice appends a secret note into the sealed journal.
  const std::string secret = "the treasure is buried at the old oak";
  auto txn = sa.begin();
  ASSERT_TRUE(sa.sealed_update(
      txn, kVault, CrdtType::kRga,
      Rga::prepare_insert(Dot{}, secret, alice.make_arb())));
  ASSERT_TRUE(sa.commit(std::move(txn)).ok());
  cluster.run_for(3 * kSecond);

  // The DC replicated it — but holds no plaintext anywhere in the sealed
  // object's state.
  const auto* at_dc = dynamic_cast<const security::SealedObject*>(
      cluster.dc(0).store().current(kVault));
  ASSERT_NE(at_dc, nullptr);
  ASSERT_EQ(at_dc->entry_count(), 1u);
  const Bytes& ciphertext = at_dc->entries()[0].ciphertext;
  const std::string blob(ciphertext.begin(), ciphertext.end());
  EXPECT_EQ(blob.find("treasure"), std::string::npos);
  EXPECT_EQ(blob.find("oak"), std::string::npos);

  // Bob, holding the shared session key, reads the plaintext.
  const auto bob_view = sb.sealed_read(kVault, CrdtType::kRga);
  ASSERT_TRUE(bob_view.has_value());
  const auto* seq = dynamic_cast<const Rga*>(bob_view->get());
  ASSERT_EQ(seq->values(), (std::vector<std::string>{secret}));
}

TEST(SealedE2e, ConcurrentSealedUpdatesMerge) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  EdgeNode& alice = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EdgeNode& bob = cluster.add_edge(ClientMode::kClientCache, 0, 2);
  Session sa(alice), sb(bob);
  sa.open_session({"vault"}, [](Result<void>) {});
  sb.open_session({"vault"}, [](Result<void>) {});
  sa.subscribe({kVault}, [](Result<void>) {});
  sb.subscribe({kVault}, [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  // Both append concurrently (CRDT counter inside the seal).
  auto ta = sa.begin();
  ASSERT_TRUE(sa.sealed_update(ta, kVault, CrdtType::kPnCounter,
                               PnCounter::prepare_add(1)));
  ASSERT_TRUE(sa.commit(std::move(ta)).ok());
  auto tb = sb.begin();
  ASSERT_TRUE(sb.sealed_update(tb, kVault, CrdtType::kPnCounter,
                               PnCounter::prepare_add(10)));
  ASSERT_TRUE(sb.commit(std::move(tb)).ok());
  cluster.run_for(5 * kSecond);

  for (Session* s : {&sa, &sb}) {
    const auto view = s->sealed_read(kVault, CrdtType::kPnCounter);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(dynamic_cast<const PnCounter*>(view->get())->value(), 11);
  }
}

TEST(SealedE2e, SessionKeyDeniedWithoutReadGrant) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  // Install a policy giving only Alice access to the vault bucket.
  EdgeNode& admin = cluster.add_edge(ClientMode::kCloudOnly, 0, 1);
  std::vector<OpRecord> ops;
  ops.push_back(OpRecord{
      security::acl_object_key(), CrdtType::kAcl,
      security::AclObject::prepare_grant(
          {"_sys", 1, security::Permission::kOwn}, Dot{900, 1})});
  ops.push_back(OpRecord{
      security::acl_object_key(), CrdtType::kAcl,
      security::AclObject::prepare_grant(
          {"vault", 1, security::Permission::kOwn}, Dot{900, 2})});
  admin.cloud_execute({}, ops, [](Result<proto::DcExecuteResp>) {});
  cluster.run_for(2 * kSecond);

  EdgeNode& mallory = cluster.add_edge(ClientMode::kClientCache, 0, 3);
  bool done = false;
  mallory.open_session({"vault"}, [&](Result<void> r) {
    EXPECT_TRUE(r.ok());  // the call succeeds...
    done = true;
  });
  cluster.run_for(1 * kSecond);
  ASSERT_TRUE(done);
  // ...but no key was issued for the unauthorised bucket.
  EXPECT_FALSE(mallory.session_key("vault").has_value());
}

}  // namespace
}  // namespace colony
