// Property test of the wire codec: for every message kind, randomized
// instances must survive decode(encode(m)) == m — both through the bare
// codec and through a sealed frame. The generator mirrors the codec's type
// dispatch, so adding a field to a message automatically widens the fuzz
// coverage of its kind.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "consensus/epaxos.hpp"
#include "core/txn.hpp"
#include "dc/messages.hpp"
#include "sim/network.hpp"
#include "storage/journal_store.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace colony {
namespace {

constexpr int kIters = 1000;

template <typename T>
T fuzz(Rng& rng);

namespace fuzz_detail {

template <typename V, std::size_t... Is>
V fuzz_variant(Rng& rng, std::size_t index,
               std::index_sequence<Is...> /*alts*/) {
  V out{};
  auto try_alt = [&]<std::size_t I>() {
    if (I == index) out = fuzz<std::variant_alternative_t<I, V>>(rng);
  };
  (try_alt.template operator()<Is>(), ...);
  return out;
}

}  // namespace fuzz_detail

template <typename T>
T fuzz(Rng& rng) {
  if constexpr (std::is_same_v<T, bool>) {
    return rng.chance(0.5);
  } else if constexpr (std::is_same_v<T, CrdtType>) {
    constexpr CrdtType kTypes[] = {
        CrdtType::kGCounter, CrdtType::kPnCounter, CrdtType::kLwwRegister,
        CrdtType::kMvRegister, CrdtType::kGSet, CrdtType::kOrSet,
        CrdtType::kGMap, CrdtType::kAwMap, CrdtType::kRga, CrdtType::kAcl,
        CrdtType::kSealed};
    return kTypes[rng.below(std::size(kTypes))];
  } else if constexpr (std::is_enum_v<T>) {
    return static_cast<T>(rng.below(5));
  } else if constexpr (std::is_integral_v<T>) {
    return static_cast<T>(rng.next());
  } else if constexpr (std::is_floating_point_v<T>) {
    return static_cast<T>(static_cast<std::int64_t>(rng.below(2'000'001)) -
                          1'000'000) /
           997.0;
  } else if constexpr (std::is_same_v<T, std::string>) {
    std::string s(rng.below(9), '\0');
    for (char& c : s) c = static_cast<char>(rng.below(256));
    return s;
  } else if constexpr (std::is_same_v<T, Bytes>) {
    Bytes b(rng.below(17));
    for (std::uint8_t& v : b) v = static_cast<std::uint8_t>(rng.below(256));
    return b;
  } else if constexpr (std::is_same_v<T, Dot>) {
    return Dot{rng.next(), rng.next()};
  } else if constexpr (std::is_same_v<T, VersionVector>) {
    VersionVector v(rng.below(5));
    for (DcId dc = 0; dc < static_cast<DcId>(v.size()); ++dc) {
      v.set(dc, rng.below(1'000'000));
    }
    return v;
  } else if constexpr (codec::detail::is_vector_v<T>) {
    T out;
    const std::size_t n = rng.below(4);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(fuzz<typename T::value_type>(rng));
    }
    return out;
  } else if constexpr (codec::detail::is_set_v<T>) {
    T out;
    const std::size_t n = rng.below(4);
    for (std::size_t i = 0; i < n; ++i) {
      out.insert(fuzz<typename T::value_type>(rng));
    }
    return out;
  } else if constexpr (codec::detail::is_pair_v<T>) {
    auto first = fuzz<typename T::first_type>(rng);
    auto second = fuzz<typename T::second_type>(rng);
    return T{std::move(first), std::move(second)};
  } else if constexpr (codec::detail::is_optional_v<T>) {
    if (rng.chance(0.3)) return std::nullopt;
    return fuzz<typename T::value_type>(rng);
  } else if constexpr (codec::detail::is_variant_v<T>) {
    return fuzz_detail::fuzz_variant<T>(
        rng, rng.below(std::variant_size_v<T>),
        std::make_index_sequence<std::variant_size_v<T>>{});
  } else if constexpr (codec::FieldTuple<T>) {
    T out{};
    std::apply([&rng](auto&... f) { ((f = fuzz<std::decay_t<decltype(f)>>(rng)), ...); },
               out.fields());
    return out;
  } else {
    static_assert(!sizeof(T*), "type has no fuzz mapping");
  }
}

/// decode(encode(m)) == m, plus the same through a checksummed frame
/// (frame::encode / frame::decode), which is the path every live message
/// actually takes.
template <typename T>
void fuzz_roundtrip(std::uint32_t kind) {
  Rng rng(0xC01051ULL * 31 + kind);  // seeded: reproducible per kind
  for (int i = 0; i < kIters; ++i) {
    const T msg = fuzz<T>(rng);
    const Bytes bytes = codec::to_bytes(msg);

    const std::optional<T> direct = codec::try_from_bytes<T>(bytes);
    ASSERT_TRUE(direct.has_value()) << "iter " << i;
    ASSERT_EQ(*direct, msg) << "iter " << i;

    const Bytes frm = sim::frame::encode(kind, bytes);
    ASSERT_EQ(frm.size(), bytes.size() + sim::frame::kOverheadBytes);
    const auto view = sim::frame::decode(frm);
    ASSERT_TRUE(view.has_value()) << "iter " << i;
    ASSERT_EQ(view->kind, kind);
    ASSERT_EQ(codec::from_bytes<T>(view->payload), msg) << "iter " << i;
  }
}

#define WIRE_ROUNDTRIP_TEST(Type, Kind) \
  TEST(WireRoundTrip, Type) { fuzz_roundtrip<proto::Type>(proto::Kind); }

// Edge <-> DC session protocol.
WIRE_ROUNDTRIP_TEST(EdgeCommitReq, kEdgeCommit)
WIRE_ROUNDTRIP_TEST(EdgeCommitResp, kEdgeCommit)
WIRE_ROUNDTRIP_TEST(SubscribeReq, kSubscribe)
WIRE_ROUNDTRIP_TEST(SubscribeResp, kSubscribe)
WIRE_ROUNDTRIP_TEST(FetchReq, kFetchObject)
WIRE_ROUNDTRIP_TEST(FetchResp, kFetchObject)
WIRE_ROUNDTRIP_TEST(PushTxn, kPushTxn)
WIRE_ROUNDTRIP_TEST(StateUpdate, kStateUpdate)
WIRE_ROUNDTRIP_TEST(PushAck, kPushAck)
WIRE_ROUNDTRIP_TEST(MigrateReq, kMigrate)
WIRE_ROUNDTRIP_TEST(MigrateResp, kMigrate)
WIRE_ROUNDTRIP_TEST(DcExecuteReq, kDcExecute)
WIRE_ROUNDTRIP_TEST(DcExecuteResp, kDcExecute)
WIRE_ROUNDTRIP_TEST(OpenSessionReq, kOpenSession)
WIRE_ROUNDTRIP_TEST(OpenSessionResp, kOpenSession)

// DC <-> DC geo-replication.
WIRE_ROUNDTRIP_TEST(ReplicateTxn, kReplicateTxn)
WIRE_ROUNDTRIP_TEST(DcGossip, kDcGossip)

// Intra-DC shard protocol.
WIRE_ROUNDTRIP_TEST(ShardReadReq, kShardRead)
WIRE_ROUNDTRIP_TEST(ShardReadResp, kShardRead)
WIRE_ROUNDTRIP_TEST(ShardPrepareReq, kShardPrepare)
WIRE_ROUNDTRIP_TEST(ShardPrepareResp, kShardPrepare)
WIRE_ROUNDTRIP_TEST(ShardCommitMsg, kShardCommit)
WIRE_ROUNDTRIP_TEST(ShardApplyMsg, kShardApply)

// Peer group protocol. EpaxosEnvelope's variant payload covers all five
// consensus message types; kGroupPing carries no payload (empty request,
// bool reply) so it has no message struct to fuzz.
WIRE_ROUNDTRIP_TEST(GroupJoinReq, kGroupJoin)
WIRE_ROUNDTRIP_TEST(GroupJoinResp, kGroupJoin)
WIRE_ROUNDTRIP_TEST(GroupLeaveReq, kGroupLeave)
WIRE_ROUNDTRIP_TEST(MembershipMsg, kGroupMembership)
WIRE_ROUNDTRIP_TEST(EpaxosEnvelope, kEpaxos)
WIRE_ROUNDTRIP_TEST(CatchupReq, kGroupCatchup)
WIRE_ROUNDTRIP_TEST(CatchupResp, kGroupCatchup)
WIRE_ROUNDTRIP_TEST(PeerFetchReq, kPeerFetch)
WIRE_ROUNDTRIP_TEST(PeerFetchResp, kPeerFetch)
WIRE_ROUNDTRIP_TEST(ResolutionMsg, kResolutionRelay)
WIRE_ROUNDTRIP_TEST(InterestUpdate, kInterestUpdate)
WIRE_ROUNDTRIP_TEST(UnsubscribeMsg, kUnsubscribe)

// Not a Kind of its own: the EPaxos command payload inside a group.
TEST(WireRoundTrip, GroupCommand) {
  Rng rng(0xC01051);
  for (int i = 0; i < kIters; ++i) {
    const auto cmd = fuzz<proto::GroupCommand>(rng);
    ASSERT_EQ(proto::GroupCommand::from_bytes(cmd.to_bytes()), cmd);
  }
}

// Every kind used above reports a human-readable name (the wire accounting
// tables would otherwise print "?" rows).
TEST(WireRoundTrip, EveryKindHasAName) {
  for (std::uint32_t kind = 0; kind < 64; ++kind) {
    const bool known = std::string(proto::kind_name(kind)) != "?";
    switch (kind) {
      case proto::kEdgeCommit:
      case proto::kSubscribe:
      case proto::kFetchObject:
      case proto::kPushTxn:
      case proto::kStateUpdate:
      case proto::kMigrate:
      case proto::kDcExecute:
      case proto::kOpenSession:
      case proto::kPushAck:
      case proto::kReplicateTxn:
      case proto::kDcGossip:
      case proto::kShardRead:
      case proto::kShardPrepare:
      case proto::kShardCommit:
      case proto::kShardApply:
      case proto::kGroupJoin:
      case proto::kGroupLeave:
      case proto::kGroupMembership:
      case proto::kEpaxos:
      case proto::kGroupCatchup:
      case proto::kPeerFetch:
      case proto::kResolutionRelay:
      case proto::kInterestUpdate:
      case proto::kUnsubscribe:
      case proto::kGroupPing:
        EXPECT_TRUE(known) << "kind " << kind << " unnamed";
        break;
      default:
        EXPECT_FALSE(known) << "kind " << kind << " unexpectedly named";
    }
  }
}

// Truncation hardening end to end: chopping a fuzzed message's encoding at
// any length must fail cleanly (nullopt), never crash or mis-decode.
TEST(WireRoundTrip, TruncatedMessagesFailCleanly) {
  Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    const auto msg = fuzz<proto::PushTxn>(rng);
    const Bytes bytes = codec::to_bytes(msg);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const Bytes prefix(bytes.begin(),
                         bytes.begin() + static_cast<std::ptrdiff_t>(cut));
      const auto out = codec::try_from_bytes<proto::PushTxn>(prefix);
      // A shorter prefix can only decode if it is itself a complete valid
      // encoding — impossible here, since the codec has no padding: any
      // strict prefix leaves the decoder short or not done.
      ASSERT_FALSE(out.has_value()) << "iter " << i << " cut " << cut;
    }
  }
}

}  // namespace
}  // namespace colony
