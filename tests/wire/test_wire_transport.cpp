// Transport-level properties of the framed byte wire: checksum detection of
// in-flight damage, truncation rejection, bandwidth-dependent transmission
// delay, per-link/per-kind byte accounting, and sealed-payload opacity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/txn.hpp"
#include "crdt/counter.hpp"
#include "dc/messages.hpp"
#include "security/crypto_sim.hpp"
#include "security/sealed.hpp"
#include "sim/network.hpp"
#include "sim/rpc.hpp"
#include "util/codec.hpp"

namespace colony {
namespace {

struct Recorder final : sim::Actor {
  Recorder(sim::Network& net, NodeId id) : Actor(net, id) {}
  std::vector<std::pair<std::uint32_t, Bytes>> received;
  std::vector<SimTime> arrival_times;
  void handle(NodeId /*from*/, std::uint32_t kind,
              ByteView body) override {
    received.emplace_back(kind, Bytes(body.begin(), body.end()));
    arrival_times.push_back(net_.now());
  }
};

// --- frame layer ------------------------------------------------------------

TEST(WireFrame, RoundTripPreservesKindAndPayload) {
  const Bytes payload{1, 2, 3, 0xff, 0, 42};
  const Bytes frm = sim::frame::encode(proto::kPushTxn, payload);
  ASSERT_EQ(frm.size(), payload.size() + sim::frame::kOverheadBytes);
  const auto view = sim::frame::decode(frm);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->kind, proto::kPushTxn);
  EXPECT_EQ(view->payload, payload);
}

TEST(WireFrame, EmptyPayloadIsPureOverhead) {
  const Bytes frm = sim::frame::encode(proto::kGroupPing, {});
  EXPECT_EQ(frm.size(), sim::frame::kOverheadBytes);
  const auto view = sim::frame::decode(frm);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->payload.empty());
}

TEST(WireFrame, DetectsEveryByteFlip) {
  const Bytes payload{10, 20, 30, 40, 50};
  const Bytes frm = sim::frame::encode(7, payload);
  // Flip each byte of the frame in turn — header, payload, and trailer
  // damage must all be caught: corruption surfaces as loss, never as a
  // wrong value.
  for (std::size_t i = 0; i < frm.size(); ++i) {
    Bytes damaged = frm;
    damaged[i] ^= 0x5a;
    EXPECT_FALSE(sim::frame::decode(damaged).has_value())
        << "flip at byte " << i << " went undetected";
  }
}

TEST(WireFrame, RejectsTruncationAtEveryLength) {
  const Bytes frm = sim::frame::encode(7, Bytes{1, 2, 3, 4});
  for (std::size_t len = 0; len < frm.size(); ++len) {
    const Bytes prefix(frm.begin(),
                       frm.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(sim::frame::decode(prefix).has_value())
        << "truncation to " << len << " bytes went undetected";
  }
}

TEST(WireFrame, RejectsTrailingGarbageAndLengthMismatch) {
  Bytes frm = sim::frame::encode(7, Bytes{1, 2, 3, 4});
  frm.push_back(0);  // frame size no longer matches the length prefix
  EXPECT_FALSE(sim::frame::decode(frm).has_value());
}

// --- corruption injection ---------------------------------------------------

TEST(WireTransport, CorruptionSurfacesAsLossNeverWrongValue) {
  sim::Scheduler sched;
  sim::Network net(sched, 99);
  Recorder a(net, 1), b(net, 2);
  net.connect(1, 2, sim::LatencyModel{1 * kMillisecond, 0});

  net.set_corrupt_rate(1.0);
  const int kSends = 200;
  for (int i = 0; i < kSends; ++i) {
    net.send(1, 2, proto::kPushAck, codec::to_bytes(proto::PushAck{7}));
  }
  sched.run_all();

  EXPECT_EQ(net.messages_corrupted(), static_cast<std::uint64_t>(kSends));
  EXPECT_EQ(net.corruptions_detected(), static_cast<std::uint64_t>(kSends));
  EXPECT_GE(net.messages_dropped(), static_cast<std::uint64_t>(kSends));
  // Not one damaged frame may reach the actor: detection is all-or-nothing.
  EXPECT_TRUE(b.received.empty());
}

TEST(WireTransport, CleanFramesDeliverIntactUnderZeroRate) {
  sim::Scheduler sched;
  sim::Network net(sched, 99);
  Recorder a(net, 1), b(net, 2);
  net.connect(1, 2, sim::LatencyModel{1 * kMillisecond, 0});

  const auto msg = proto::StateUpdate{VersionVector{3, 1, 4}, 9};
  net.send(1, 2, proto::kStateUpdate, codec::to_bytes(msg));
  sched.run_all();

  EXPECT_EQ(net.messages_corrupted(), 0u);
  EXPECT_EQ(net.corruptions_detected(), 0u);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, proto::kStateUpdate);
  EXPECT_EQ(codec::from_bytes<proto::StateUpdate>(b.received[0].second), msg);
}

// --- bandwidth model --------------------------------------------------------

TEST(WireTransport, TransmissionDelayChargedBySize) {
  sim::Scheduler sched;
  sim::Network net(sched, 1);
  Recorder a(net, 1), b(net, 2);
  // 1 byte/us throughput, fixed 1 ms propagation, zero jitter: a frame of
  // N bytes lands at exactly 1000 + N microseconds.
  net.connect(1, 2, sim::LatencyModel{1 * kMillisecond, 0, 0.0, 1.0});

  const Bytes payload(88, 0xab);  // frame = 88 + 12 overhead = 100 bytes
  net.send(1, 2, proto::kPushTxn, payload);
  sched.run_all();

  ASSERT_EQ(b.arrival_times.size(), 1u);
  EXPECT_EQ(b.arrival_times[0], 1000 + 100);
}

TEST(WireTransport, UnmeteredLinkChargesNoTransmissionDelay) {
  const sim::LatencyModel unmetered{1 * kMillisecond, 0, 0.0, 0.0};
  EXPECT_EQ(unmetered.transmission_delay(1'000'000), 0);
  const sim::LatencyModel metered{1 * kMillisecond, 0, 0.0, 12.5};
  // 125 bytes at 12.5 B/us = 10 us.
  EXPECT_EQ(metered.transmission_delay(125), 10);
  // Fractional transmission times round up to a whole microsecond.
  EXPECT_EQ(metered.transmission_delay(1), 1);
}

// --- wire accounting --------------------------------------------------------

TEST(WireTransport, WireStatsMeterPerLinkAndPerKind) {
  sim::Scheduler sched;
  sim::Network net(sched, 1);
  Recorder a(net, 1), b(net, 2), c(net, 3);
  net.connect(1, 2, sim::LatencyModel{1 * kMillisecond, 0});
  net.connect(1, 3, sim::LatencyModel{1 * kMillisecond, 0});

  const Bytes ack = codec::to_bytes(proto::PushAck{1});
  const std::uint64_t frame_bytes = ack.size() + sim::frame::kOverheadBytes;
  net.send(1, 2, proto::kPushAck, ack);
  net.send(1, 2, proto::kPushAck, ack);
  net.send(1, 3, proto::kDcGossip, codec::to_bytes(proto::DcGossip{}));
  sched.run_all();

  const WireStats& stats = net.wire_stats();
  EXPECT_EQ(stats.total().frames, 3u);
  EXPECT_EQ(stats.for_kind(proto::kPushAck).frames, 2u);
  EXPECT_EQ(stats.for_kind(proto::kPushAck).bytes, 2 * frame_bytes);
  EXPECT_EQ(stats.for_kind(proto::kDcGossip).frames, 1u);
  EXPECT_EQ(stats.for_link(1, 2).frames, 2u);
  EXPECT_EQ(stats.for_link(1, 3).frames, 1u);
  EXPECT_EQ(stats.for_link(2, 1).frames, 0u);  // directed accounting
}

TEST(WireTransport, RpcTrafficAggregatesUnderItsMethodKind) {
  struct Server final : sim::RpcActor {
    Server(sim::Network& net, NodeId id) : RpcActor(net, id) {}
    void on_message(NodeId, std::uint32_t, ByteView) override {}
    void on_request(NodeId, std::uint32_t, ByteView payload,
                    ReplyFn reply) override {
      reply(Bytes(payload.begin(), payload.end()));  // echo
    }
  };
  sim::Scheduler sched;
  sim::Network net(sched, 1);
  Server server(net, 1);
  struct Client final : sim::RpcActor {
    Client(sim::Network& net, NodeId id) : RpcActor(net, id) {}
    void on_message(NodeId, std::uint32_t, ByteView) override {}
    void on_request(NodeId, std::uint32_t, ByteView,
                    ReplyFn reply) override {
      reply(Error{Error::Code::kInvalidArgument, "not a server"});
    }
  };
  Client client(net, 2);
  net.connect(1, 2, sim::LatencyModel{1 * kMillisecond, 0});

  bool answered = false;
  client.call(1, proto::kShardRead,
              proto::ShardReadReq{{"b", "x"}, 0},
              [&](Result<Bytes> r) { answered = r.ok(); });
  sched.run_all();
  ASSERT_TRUE(answered);

  // Request and response each crossed the wire once; the RPC envelope flag
  // bits are stripped by the recorder, so both frames land under the
  // protocol method's kind — no phantom flagged kinds appear.
  const WireStats& stats = net.wire_stats();
  EXPECT_EQ(stats.for_kind(proto::kShardRead).frames, 2u);
  EXPECT_EQ(stats.total().frames, 2u);
  for (const auto& [kind, counter] : stats.per_kind()) {
    EXPECT_EQ(kind & ~sim::kRpcKindMask, 0u)
        << "unstripped RPC flags in per-kind accounting";
  }
}

TEST(WireTransport, DuplicateCopiesOccupyTheWire) {
  sim::Scheduler sched;
  sim::Network net(sched, 5);
  Recorder a(net, 1), b(net, 2);
  net.connect(1, 2, sim::LatencyModel{1 * kMillisecond, 0});

  net.set_duplicate_rate(1.0);
  net.send(1, 2, proto::kPushAck, codec::to_bytes(proto::PushAck{1}));
  sched.run_all();

  EXPECT_EQ(net.wire_stats().for_kind(proto::kPushAck).frames, 2u);
  EXPECT_EQ(b.received.size(), 2u);
}

// --- sealed payload opacity -------------------------------------------------

// An end-to-end sealed operation crosses the wire as ciphertext: the frame
// containing it carries the sealed bytes opaquely (the DC relays without
// decrypting), and the plaintext never appears on the wire.
TEST(WireTransport, SealedPayloadsCrossTheWireOpaquely) {
  const ObjectKey key{"secret", "doc"};
  const security::SessionKey session_key = 0xfeedfacecafebeefULL;
  const Bytes plaintext = PnCounter::prepare_add(41);
  const OpRecord sealed_op =
      security::seal_op(key, session_key, /*nonce=*/1, CrdtType::kPnCounter,
                        plaintext);
  ASSERT_EQ(sealed_op.type, CrdtType::kSealed);

  Transaction txn;
  txn.meta.dot = Dot{10, 1};
  txn.ops.push_back(sealed_op);
  const Bytes wire = codec::to_bytes(proto::PushTxn{txn, 1});

  // The sealed ciphertext is embedded verbatim — a relay can forward it
  // without any cryptographic capability.
  ASSERT_FALSE(sealed_op.payload.empty());
  EXPECT_NE(std::search(wire.begin(), wire.end(), sealed_op.payload.begin(),
                        sealed_op.payload.end()),
            wire.end());

  // The plaintext operation does NOT appear anywhere in the wire bytes.
  EXPECT_EQ(std::search(wire.begin(), wire.end(), plaintext.begin(),
                        plaintext.end()),
            wire.end());

  // And the sealed op survives the hop bit-for-bit, so a keyed receiver can
  // still authenticate and decrypt it.
  const auto back = codec::from_bytes<proto::PushTxn>(wire);
  ASSERT_EQ(back.txn.ops.size(), 1u);
  EXPECT_EQ(back.txn.ops[0], sealed_op);
}

}  // namespace
}  // namespace colony
