// End-to-end security: replicated ACLs, deferred post-commit enforcement,
// masking with transitive dependants, and policy-change re-evaluation
// (paper sections 2.4, 5.3, 6.4).
#include <gtest/gtest.h>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"

namespace colony {
namespace {

const ObjectKey kDoc{"docs", "report"};

/// Install a policy via a cloud client: Alice (user 1) owns the "docs"
/// bucket and the policy object; Bob (2) can write; Carl (3) nothing.
void install_policy(Cluster& cluster) {
  EdgeNode& admin = cluster.add_edge(ClientMode::kCloudOnly, 0, 1);
  std::vector<OpRecord> ops;
  ops.push_back(OpRecord{
      security::acl_object_key(), CrdtType::kAcl,
      security::AclObject::prepare_grant(
          {"_sys", 1, security::Permission::kOwn}, Dot{900, 1})});
  ops.push_back(OpRecord{
      security::acl_object_key(), CrdtType::kAcl,
      security::AclObject::prepare_grant(
          {"docs", 1, security::Permission::kOwn}, Dot{900, 2})});
  ops.push_back(OpRecord{
      security::acl_object_key(), CrdtType::kAcl,
      security::AclObject::prepare_grant(
          {"docs", 2, security::Permission::kWrite}, Dot{900, 3})});
  admin.cloud_execute({}, ops, [](Result<proto::DcExecuteResp> r) {
    ASSERT_TRUE(r.ok());
  });
  cluster.run_for(2 * kSecond);
}

std::int64_t dc_value(Cluster& cluster, const ObjectKey& key) {
  const auto* c =
      dynamic_cast<const PnCounter*>(cluster.dc(0).store().current(key));
  return c == nullptr ? 0 : c->value();
}

TEST(SecurityE2e, AuthorizedWritesVisible) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  install_policy(cluster);

  EdgeNode& bob = cluster.add_edge(ClientMode::kClientCache, 0, 2);
  Session session(bob);
  auto txn = session.begin();
  session.increment(txn, kDoc, 5);
  ASSERT_TRUE(session.commit(std::move(txn)).ok());
  cluster.run_for(3 * kSecond);
  EXPECT_EQ(dc_value(cluster, kDoc), 5);
}

TEST(SecurityE2e, UnauthorizedWriteMaskedAtDc) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  install_policy(cluster);

  EdgeNode& carl = cluster.add_edge(ClientMode::kClientCache, 0, 3);
  Session session(carl);
  auto txn = session.begin();
  session.increment(txn, kDoc, 99);
  // Commit succeeds locally — enforcement is deferred to after commit.
  ASSERT_TRUE(session.commit(std::move(txn)).ok());
  cluster.run_for(3 * kSecond);

  // The DC delivered it (metadata advanced — two commits: the policy and
  // Carl's) but masked Carl's values.
  EXPECT_EQ(cluster.dc(0).committed(), 2u);
  EXPECT_EQ(dc_value(cluster, kDoc), 0);
}

TEST(SecurityE2e, MaskedUpdateHiddenFromOtherEdges) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  install_policy(cluster);

  EdgeNode& observer = cluster.add_edge(ClientMode::kClientCache, 0, 2);
  Session obs(observer);
  obs.subscribe({kDoc}, [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  EdgeNode& carl = cluster.add_edge(ClientMode::kClientCache, 0, 3);
  Session cs(carl);
  auto txn = cs.begin();
  cs.increment(txn, kDoc, 99);
  ASSERT_TRUE(cs.commit(std::move(txn)).ok());
  cluster.run_for(3 * kSecond);

  const auto* c = dynamic_cast<const PnCounter*>(observer.cached(kDoc));
  if (c != nullptr) {
    EXPECT_EQ(c->value(), 0);  // masked update never shown
  }
}

TEST(SecurityE2e, RevocationMasksLaterWrites) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  install_policy(cluster);

  EdgeNode& bob = cluster.add_edge(ClientMode::kClientCache, 0, 2);
  Session bs(bob);
  auto t1 = bs.begin();
  bs.increment(t1, kDoc, 1);
  ASSERT_TRUE(bs.commit(std::move(t1)).ok());
  cluster.run_for(2 * kSecond);
  EXPECT_EQ(dc_value(cluster, kDoc), 1);

  // Alice revokes Bob's write permission.
  EdgeNode& alice = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session as(alice);
  // Alice needs the current ACL tags to prepare the revoke: read first.
  auto read_txn = as.begin();
  bool have_acl = false;
  as.read_object(read_txn, security::acl_object_key(), CrdtType::kAcl,
                 [&](Result<std::shared_ptr<Crdt>> r, ReadSource) {
                   have_acl = r.ok();
                 });
  cluster.run_for(2 * kSecond);
  ASSERT_TRUE(have_acl);
  auto t2 = as.begin();
  as.revoke(t2, {"docs", 2, security::Permission::kWrite});
  ASSERT_TRUE(as.commit(std::move(t2)).ok());
  cluster.run_for(3 * kSecond);

  // Bob writes again; the write is causally after the revocation at the DC
  // and must be masked there.
  auto t3 = bs.begin();
  bs.increment(t3, kDoc, 10);
  ASSERT_TRUE(bs.commit(std::move(t3)).ok());
  cluster.run_for(3 * kSecond);
  EXPECT_EQ(dc_value(cluster, kDoc), 1);  // pre-revocation value only
}

TEST(SecurityE2e, OpenPolicyAllowsEveryone) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  EdgeNode& anyone = cluster.add_edge(ClientMode::kClientCache, 0, 42);
  Session session(anyone);
  auto txn = session.begin();
  session.increment(txn, kDoc, 3);
  ASSERT_TRUE(session.commit(std::move(txn)).ok());
  cluster.run_for(2 * kSecond);
  EXPECT_EQ(dc_value(cluster, kDoc), 3);
}

}  // namespace
}  // namespace colony
