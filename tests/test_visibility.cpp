#include "core/visibility.hpp"

#include <gtest/gtest.h>

#include "crdt/counter.hpp"

namespace colony {
namespace {

const ObjectKey kX{"b", "x"};

Transaction txn_at_dc(DcId dc, Timestamp ts, VersionVector snapshot,
                      std::int64_t delta = 1, UserId user = 0) {
  Transaction txn;
  txn.meta.dot = Dot{100 + dc, ts};
  txn.meta.origin = 100 + dc;
  txn.meta.user = user;
  txn.meta.snapshot = std::move(snapshot);
  txn.meta.mark_accepted(dc, ts);
  txn.ops.push_back(
      OpRecord{kX, CrdtType::kPnCounter, PnCounter::prepare_add(delta)});
  return txn;
}

std::int64_t value_of(const JournalStore& store) {
  const auto* c = dynamic_cast<const PnCounter*>(store.current(kX));
  return c == nullptr ? 0 : c->value();
}

class VisibilityTest : public ::testing::Test {
 protected:
  TxnStore txns;
  JournalStore store;
  VisibilityEngine engine{txns, store, 2};
};

TEST_F(VisibilityTest, AppliesConcreteInOrder) {
  engine.ingest(txn_at_dc(0, 1, VersionVector{0, 0}));
  engine.ingest(txn_at_dc(0, 2, VersionVector{1, 0}));
  EXPECT_EQ(engine.state_vector(), (VersionVector{2, 0}));
  EXPECT_EQ(value_of(store), 2);
  EXPECT_EQ(engine.log().size(), 2u);
  EXPECT_EQ(engine.pending_count(), 0u);
}

TEST_F(VisibilityTest, BuffersUntilDependencyArrives) {
  // Second txn arrives first: snapshot [1,0] not yet covered.
  engine.ingest(txn_at_dc(0, 2, VersionVector{1, 0}));
  EXPECT_EQ(value_of(store), 0);
  EXPECT_EQ(engine.pending_count(), 1u);
  engine.ingest(txn_at_dc(0, 1, VersionVector{0, 0}));
  EXPECT_EQ(value_of(store), 2);
  EXPECT_EQ(engine.pending_count(), 0u);
  // Log order respects causality.
  EXPECT_EQ(engine.log().entries()[0], (Dot{100, 1}));
  EXPECT_EQ(engine.log().entries()[1], (Dot{100, 2}));
}

TEST_F(VisibilityTest, CrossDcDependency) {
  engine.ingest(txn_at_dc(1, 1, VersionVector{1, 0}));  // needs DC0's first
  EXPECT_EQ(value_of(store), 0);
  engine.ingest(txn_at_dc(0, 1, VersionVector{0, 0}));
  EXPECT_EQ(value_of(store), 2);
  EXPECT_EQ(engine.state_vector(), (VersionVector{1, 1}));
}

TEST_F(VisibilityTest, DuplicateIngestIsIdempotent) {
  const Transaction txn = txn_at_dc(0, 1, VersionVector{0, 0});
  EXPECT_TRUE(engine.ingest(txn));
  EXPECT_FALSE(engine.ingest(txn));
  EXPECT_EQ(value_of(store), 1);
}

TEST_F(VisibilityTest, LocalApplyBeforeResolution) {
  // An edge transaction with a symbolic commit is visible locally
  // (read-my-writes) but does not advance the state vector.
  Transaction txn;
  txn.meta.dot = Dot{7, 1};
  txn.meta.origin = 7;
  txn.meta.snapshot = VersionVector{0, 0};
  txn.ops.push_back(
      OpRecord{kX, CrdtType::kPnCounter, PnCounter::prepare_add(5)});
  engine.ingest(txn);
  engine.apply_local(txn.meta.dot);
  EXPECT_EQ(value_of(store), 5);
  EXPECT_EQ(engine.state_vector(), (VersionVector{0, 0}));

  engine.resolve(txn.meta.dot, 0, 1);
  EXPECT_EQ(engine.state_vector(), (VersionVector{1, 0}));
  EXPECT_EQ(value_of(store), 5);  // not applied twice
}

TEST_F(VisibilityTest, ResolveFullInstallsSnapshotAndClearsDeps) {
  Transaction t1;
  t1.meta.dot = Dot{7, 1};
  t1.meta.origin = 7;
  t1.meta.snapshot = VersionVector{0, 0};
  t1.ops.push_back(
      OpRecord{kX, CrdtType::kPnCounter, PnCounter::prepare_add(1)});
  Transaction t2 = t1;
  t2.meta.dot = Dot{7, 2};
  t2.meta.pending_deps.push_back(t1.meta.dot);

  engine.ingest(t1);
  engine.apply_local(t1.meta.dot);
  engine.ingest(t2);
  engine.apply_local(t2.meta.dot);
  EXPECT_EQ(value_of(store), 2);

  engine.resolve_full(t1.meta.dot, 0, 1, VersionVector{0, 0});
  engine.resolve_full(t2.meta.dot, 0, 2, VersionVector{1, 0});
  EXPECT_EQ(engine.state_vector(), (VersionVector{2, 0}));
  EXPECT_TRUE(txns.find(t2.meta.dot)->meta.pending_deps.empty());
}

TEST_F(VisibilityTest, ApplyCausalRequiresSnapshotAndDeps) {
  Transaction remote;
  remote.meta.dot = Dot{8, 1};
  remote.meta.origin = 8;
  remote.meta.snapshot = VersionVector{1, 0};  // ahead of our state
  remote.ops.push_back(
      OpRecord{kX, CrdtType::kPnCounter, PnCounter::prepare_add(3)});
  txns.add(remote);
  EXPECT_FALSE(engine.apply_causal(remote.meta.dot));

  engine.ingest(txn_at_dc(0, 1, VersionVector{0, 0}));  // covers [1,0]
  EXPECT_TRUE(engine.apply_causal(remote.meta.dot));
  EXPECT_EQ(value_of(store), 4);

  // Same-origin pending dep gates application.
  Transaction dep_txn;
  dep_txn.meta.dot = Dot{9, 1};
  dep_txn.meta.origin = 9;
  dep_txn.meta.snapshot = VersionVector{0, 0};
  dep_txn.ops.push_back(
      OpRecord{kX, CrdtType::kPnCounter, PnCounter::prepare_add(1)});
  Transaction dependent = dep_txn;
  dependent.meta.dot = Dot{9, 2};
  dependent.meta.pending_deps.push_back(dep_txn.meta.dot);
  txns.add(dep_txn);
  txns.add(dependent);
  EXPECT_FALSE(engine.apply_causal(dependent.meta.dot));
  EXPECT_TRUE(engine.apply_causal(dep_txn.meta.dot));
  EXPECT_TRUE(engine.apply_causal(dependent.meta.dot));
}

TEST_F(VisibilityTest, VisibleHookFires) {
  std::vector<Dot> seen;
  engine.set_visible_hook(
      [&](const Transaction& txn) { seen.push_back(txn.meta.dot); });
  engine.ingest(txn_at_dc(0, 1, VersionVector{0, 0}));
  engine.ingest(txn_at_dc(0, 2, VersionVector{1, 0}));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (Dot{100, 1}));
}

TEST_F(VisibilityTest, SecurityMaskHidesValuesButAdvancesState) {
  engine.set_security_check(
      [](const Transaction& txn) { return txn.meta.user != 666; });
  engine.ingest(txn_at_dc(0, 1, VersionVector{0, 0}, 1, /*user=*/666));
  EXPECT_EQ(value_of(store), 0);  // masked
  EXPECT_EQ(engine.state_vector(), (VersionVector{1, 0}));  // still delivered
  EXPECT_TRUE(engine.is_masked({100, 1}));

  // A later legitimate txn applies above the masked one.
  engine.ingest(txn_at_dc(1, 1, VersionVector{0, 0}, 10, /*user=*/1));
  EXPECT_EQ(value_of(store), 10);
}

TEST_F(VisibilityTest, TransitiveMasking) {
  engine.set_security_check(
      [](const Transaction& txn) { return txn.meta.user != 666; });
  engine.ingest(txn_at_dc(0, 1, VersionVector{0, 0}, 1, /*user=*/666));
  // A txn that causally depends on the masked one is masked too.
  engine.ingest(txn_at_dc(1, 1, VersionVector{1, 0}, 10, /*user=*/1));
  EXPECT_EQ(value_of(store), 0);
  EXPECT_TRUE(engine.is_masked({101, 1}));
}

TEST_F(VisibilityTest, RecomputeMasksAfterPolicyChange) {
  bool block = false;
  engine.set_security_check(
      [&block](const Transaction& txn) {
        return !(block && txn.meta.user == 666);
      });
  engine.ingest(txn_at_dc(0, 1, VersionVector{0, 0}, 7, /*user=*/666));
  EXPECT_EQ(value_of(store), 7);  // allowed at apply time

  block = true;  // policy changes retroactively
  EXPECT_EQ(engine.recompute_masks(), 1u);
  EXPECT_EQ(value_of(store), 0);  // value masked after rebuild

  block = false;  // policy relaxed again
  EXPECT_EQ(engine.recompute_masks(), 1u);
  EXPECT_EQ(value_of(store), 7);
}

TEST_F(VisibilityTest, VisiblePredicateFiltersMasked) {
  engine.set_security_check(
      [](const Transaction& txn) { return txn.meta.user != 666; });
  engine.ingest(txn_at_dc(0, 1, VersionVector{0, 0}, 1, 666));
  engine.ingest(txn_at_dc(1, 1, VersionVector{0, 0}, 2, 1));
  const auto pred = engine.visible_predicate();
  EXPECT_FALSE(pred(Dot{100, 1}));
  EXPECT_TRUE(pred(Dot{101, 1}));
  EXPECT_FALSE(pred(Dot{9, 9}));  // unknown
}

}  // namespace
}  // namespace colony
