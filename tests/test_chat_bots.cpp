// Bot behaviour in the ColonyChat driver: bots react to messages on their
// subscribed channel through the reactive watch API (paper section 7.1:
// "bots act randomly upon receiving a message on the channel they have
// subscribed to" and "generate a large number of update transactions").
#include <gtest/gtest.h>

#include "chat/driver.hpp"
#include "crdt/or_set.hpp"
#include "crdt/rga.hpp"

namespace colony::chat {
namespace {

TEST(ChatBots, BotsGenerateReactions) {
  ClusterConfig cluster_cfg;
  Cluster cluster(cluster_cfg);

  ChatDriverConfig cfg;
  cfg.mode = ClientMode::kClientCache;
  cfg.clients = 10;
  cfg.trace.num_users = 10;
  cfg.trace.bot_fraction = 0.5;  // plenty of bots
  cfg.trace.channels_per_workspace = 2;  // dense channel sharing
  cfg.trace.num_workspaces = 1;
  cfg.think_time = 50 * kMillisecond;
  cfg.seed = 77;
  ChatDriver driver(cluster, cfg);
  driver.start();
  cluster.run_for(20 * kSecond);
  driver.stop();
  cluster.run_for(2 * kSecond);

  // Bot reactions land in channel sequences as "botNNN: ack" messages.
  std::size_t bot_messages = 0;
  for (std::size_t ws = 0; ws < 1; ++ws) {
    for (std::size_t ch = 0; ch < 2; ++ch) {
      const auto* seq = dynamic_cast<const Rga*>(
          cluster.dc(0).store().current(channel_messages_key(ws, ch)));
      if (seq == nullptr) continue;
      for (const auto& msg : seq->values()) {
        if (msg.starts_with("bot") && msg.ends_with(": ack")) {
          ++bot_messages;
        }
      }
    }
  }
  EXPECT_GT(bot_messages, 0u);
}

TEST(ChatBots, NoBotsNoReactions) {
  ClusterConfig cluster_cfg;
  Cluster cluster(cluster_cfg);
  ChatDriverConfig cfg;
  cfg.mode = ClientMode::kClientCache;
  cfg.clients = 6;
  cfg.trace.num_users = 6;
  cfg.trace.bot_fraction = 0.0;
  cfg.trace.num_workspaces = 1;
  cfg.trace.channels_per_workspace = 2;
  cfg.think_time = 50 * kMillisecond;
  cfg.seed = 78;
  ChatDriver driver(cluster, cfg);
  driver.start();
  cluster.run_for(10 * kSecond);
  driver.stop();
  cluster.run_for(2 * kSecond);

  for (std::size_t ch = 0; ch < 2; ++ch) {
    const auto* seq = dynamic_cast<const Rga*>(
        cluster.dc(0).store().current(channel_messages_key(0, ch)));
    if (seq == nullptr) continue;
    for (const auto& msg : seq->values()) {
      EXPECT_FALSE(msg.starts_with("bot") && msg.ends_with(": ack")) << msg;
    }
  }
}

TEST(ChatBots, WorkspaceMembershipInvariant) {
  // The atomic seeding transaction maintains "user in workspace iff
  // workspace in user's profile" (section 7.1).
  ClusterConfig cluster_cfg;
  Cluster cluster(cluster_cfg);
  ChatDriverConfig cfg;
  cfg.mode = ClientMode::kClientCache;
  cfg.clients = 8;
  cfg.trace.num_users = 8;
  cfg.trace.num_workspaces = 2;
  cfg.seed = 79;
  ChatDriver driver(cluster, cfg);
  driver.start();
  cluster.run_for(10 * kSecond);
  driver.stop();
  cluster.run_for(2 * kSecond);

  std::size_t cross_checked = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const UserId user = 1000 + i;
    const auto* user_ws = dynamic_cast<const OrSet*>(
        cluster.dc(0).store().current(user_workspaces_key(user)));
    if (user_ws == nullptr) continue;
    for (const auto& ws_str : user_ws->elements()) {
      const std::size_t ws = std::stoul(ws_str);
      const auto* members = dynamic_cast<const OrSet*>(
          cluster.dc(0).store().current(workspace_members_key(ws)));
      ASSERT_NE(members, nullptr);
      EXPECT_TRUE(members->contains(
          member_element(user, MemberStatus::kOrdinary)))
          << "user " << user << " workspace " << ws;
      ++cross_checked;
    }
  }
  EXPECT_GT(cross_checked, 0u);
}

}  // namespace
}  // namespace colony::chat
