#include "security/crypto_sim.hpp"

#include <gtest/gtest.h>

namespace colony::security {
namespace {

const Bytes kPlain{'h', 'e', 'l', 'l', 'o'};

TEST(CryptoSim, SealOpenRoundTrip) {
  const auto sealed = seal("bucket", 0xabcdef, 1, kPlain);
  const auto opened = open(sealed, 0xabcdef);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, kPlain);
}

TEST(CryptoSim, CiphertextDiffersFromPlaintext) {
  const auto sealed = seal("bucket", 0xabcdef, 1, kPlain);
  EXPECT_NE(sealed.ciphertext, kPlain);
}

TEST(CryptoSim, WrongKeyFailsMac) {
  const auto sealed = seal("bucket", 0xabcdef, 1, kPlain);
  EXPECT_FALSE(open(sealed, 0xabcdee).has_value());
}

TEST(CryptoSim, TamperingDetected) {
  auto sealed = seal("bucket", 0xabcdef, 1, kPlain);
  sealed.ciphertext[0] ^= 0xff;
  EXPECT_FALSE(open(sealed, 0xabcdef).has_value());
}

TEST(CryptoSim, NonceChangesCiphertext) {
  const auto s1 = seal("bucket", 0xabcdef, 1, kPlain);
  const auto s2 = seal("bucket", 0xabcdef, 2, kPlain);
  EXPECT_NE(s1.ciphertext, s2.ciphertext);
  EXPECT_EQ(*open(s2, 0xabcdef), kPlain);
}

TEST(CryptoSim, EmptyPayload) {
  const auto sealed = seal("bucket", 1, 1, Bytes{});
  const auto opened = open(sealed, 1);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(KeyService, AuthorizationGatesKeys) {
  KeyService svc(42);
  EXPECT_FALSE(svc.key_for("docs", 1).has_value());
  svc.authorize("docs", 1);
  const auto key = svc.key_for("docs", 1);
  ASSERT_TRUE(key.has_value());
  EXPECT_TRUE(svc.authorized("docs", 1));
  EXPECT_FALSE(svc.authorized("docs", 2));
}

TEST(KeyService, SameBucketSameKeyAcrossUsers) {
  // Session keys are per shared object/bucket (section 5.3): collaborators
  // share one key and it survives reconnection.
  KeyService svc(42);
  svc.authorize("docs", 1);
  svc.authorize("docs", 2);
  EXPECT_EQ(*svc.key_for("docs", 1), *svc.key_for("docs", 2));
}

TEST(KeyService, DifferentBucketsDifferentKeys) {
  KeyService svc(42);
  svc.authorize("a", 1);
  svc.authorize("b", 1);
  EXPECT_NE(*svc.key_for("a", 1), *svc.key_for("b", 1));
}

TEST(KeyService, DeauthorizeRevokesAccess) {
  KeyService svc(42);
  svc.authorize("docs", 1);
  svc.deauthorize("docs", 1);
  EXPECT_FALSE(svc.key_for("docs", 1).has_value());
}

TEST(KeyService, EndToEnd) {
  // Alice seals an update; Bob (authorised) reads it; the "cloud" (no key)
  // cannot.
  KeyService svc(7);
  svc.authorize("shared", 1);
  svc.authorize("shared", 2);
  const auto sealed = seal("shared", *svc.key_for("shared", 1), 99, kPlain);
  EXPECT_EQ(*open(sealed, *svc.key_for("shared", 2)), kPlain);
  EXPECT_FALSE(open(sealed, /*cloud guess=*/0).has_value());
}

}  // namespace
}  // namespace colony::security
