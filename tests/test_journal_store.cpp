#include "storage/journal_store.hpp"

#include <gtest/gtest.h>

#include "clock/dot_tracker.hpp"
#include "crdt/counter.hpp"
#include "crdt/or_set.hpp"
#include "crdt/registers.hpp"

namespace colony {
namespace {

const ObjectKey kKey{"bucket", "obj"};

TEST(JournalStore, EnsureAndTypeChecks) {
  JournalStore js;
  EXPECT_FALSE(js.has(kKey));
  EXPECT_TRUE(js.ensure(kKey, CrdtType::kPnCounter));
  EXPECT_TRUE(js.has(kKey));
  EXPECT_TRUE(js.ensure(kKey, CrdtType::kPnCounter));   // idempotent
  EXPECT_FALSE(js.ensure(kKey, CrdtType::kOrSet));      // type clash
  EXPECT_EQ(js.type_of(kKey), CrdtType::kPnCounter);
}

TEST(JournalStore, ApplyFoldsIntoCurrent) {
  JournalStore js;
  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 1}, PnCounter::prepare_add(5));
  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 2}, PnCounter::prepare_add(3));
  const auto* counter = dynamic_cast<const PnCounter*>(js.current(kKey));
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value(), 8);
  EXPECT_EQ(js.journal_length(kKey), 2u);
}

TEST(JournalStore, MaskedOpJournalledButHidden) {
  JournalStore js;
  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 1}, PnCounter::prepare_add(5));
  js.apply(kKey, CrdtType::kPnCounter, Dot{2, 1}, PnCounter::prepare_add(100),
           /*masked=*/true);
  EXPECT_EQ(dynamic_cast<const PnCounter*>(js.current(kKey))->value(), 5);
  EXPECT_EQ(js.journal_length(kKey), 2u);  // state kept, visibility filtered
}

TEST(JournalStore, RebuildCurrentUnmasks) {
  JournalStore js;
  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 1}, PnCounter::prepare_add(5));
  js.apply(kKey, CrdtType::kPnCounter, Dot{2, 1}, PnCounter::prepare_add(100),
           /*masked=*/true);
  js.rebuild_current(kKey, [](const Dot&) { return true; });
  EXPECT_EQ(dynamic_cast<const PnCounter*>(js.current(kKey))->value(), 105);
}

TEST(JournalStore, MaterializeAtOlderCut) {
  JournalStore js;
  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 1}, PnCounter::prepare_add(1));
  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 2}, PnCounter::prepare_add(2));
  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 3}, PnCounter::prepare_add(4));
  const auto old_value = js.materialize(
      kKey, [](const Dot& d) { return d.counter <= 2; });
  EXPECT_EQ(dynamic_cast<const PnCounter*>(old_value.get())->value(), 3);
  // Current unaffected.
  EXPECT_EQ(dynamic_cast<const PnCounter*>(js.current(kKey))->value(), 7);
}

TEST(JournalStore, AdvanceBasePrunesJournal) {
  JournalStore js;
  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 1}, PnCounter::prepare_add(1));
  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 2}, PnCounter::prepare_add(2));
  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 3}, PnCounter::prepare_add(4));
  js.advance_base(kKey, [](const Dot& d) { return d.counter <= 2; });
  EXPECT_EQ(js.journal_length(kKey), 1u);
  // Value unchanged after baking.
  EXPECT_EQ(dynamic_cast<const PnCounter*>(js.current(kKey))->value(), 7);
  const auto all = js.materialize(kKey, [](const Dot&) { return true; });
  EXPECT_EQ(dynamic_cast<const PnCounter*>(all.get())->value(), 7);
}

TEST(JournalStore, ExportImportSnapshot) {
  JournalStore source;
  source.apply(kKey, CrdtType::kPnCounter, Dot{1, 1},
               PnCounter::prepare_add(9));
  const auto snap = source.export_snapshot(kKey);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->applied, (std::vector<Dot>{{1, 1}}));

  JournalStore dest;
  dest.import_snapshot(*snap);
  EXPECT_EQ(dynamic_cast<const PnCounter*>(dest.current(kKey))->value(), 9);
}

TEST(JournalStore, ImportedDotsAreNotReapplied) {
  JournalStore source;
  source.apply(kKey, CrdtType::kPnCounter, Dot{1, 1},
               PnCounter::prepare_add(9));
  JournalStore dest;
  dest.import_snapshot(*source.export_snapshot(kKey));
  // The same op arrives later through the push path: must be a no-op.
  dest.apply(kKey, CrdtType::kPnCounter, Dot{1, 1},
             PnCounter::prepare_add(9));
  EXPECT_EQ(dynamic_cast<const PnCounter*>(dest.current(kKey))->value(), 9);
  // A genuinely new op still applies.
  dest.apply(kKey, CrdtType::kPnCounter, Dot{1, 2},
             PnCounter::prepare_add(1));
  EXPECT_EQ(dynamic_cast<const PnCounter*>(dest.current(kKey))->value(), 10);
}

TEST(JournalStore, ExportAtCutFiltersJournal) {
  JournalStore js;
  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 1}, PnCounter::prepare_add(1));
  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 2}, PnCounter::prepare_add(2));
  const auto snap =
      js.export_at(kKey, [](const Dot& d) { return d.counter <= 1; });
  ASSERT_TRUE(snap.has_value());
  PnCounter restored;
  restored.restore(snap->state);
  EXPECT_EQ(restored.value(), 1);
  EXPECT_EQ(snap->applied, (std::vector<Dot>{{1, 1}}));
}

TEST(JournalStore, EraseForgetsObject) {
  JournalStore js;
  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 1}, PnCounter::prepare_add(1));
  js.erase(kKey);
  EXPECT_FALSE(js.has(kKey));
  EXPECT_EQ(js.current(kKey), nullptr);
  EXPECT_EQ(js.materialize(kKey, [](const Dot&) { return true; }), nullptr);
}

TEST(JournalStore, BakedDotRejectedAfterAdvanceBase) {
  // The O(1) base-dot hash set: once advance_base bakes a dot into the
  // base version, a re-delivery of the same op must be dropped — not
  // re-journalled, not double-counted — and the audit list must show the
  // dot exactly once.
  JournalStore js;
  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 1}, PnCounter::prepare_add(4));
  js.advance_base(kKey, [](const Dot&) { return true; });
  EXPECT_EQ(js.journal_length(kKey), 0u);

  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 1}, PnCounter::prepare_add(4));
  EXPECT_EQ(js.journal_length(kKey), 0u);
  EXPECT_EQ(dynamic_cast<const PnCounter*>(js.current(kKey))->value(), 4);
  EXPECT_EQ(js.applied_dots(kKey), (std::vector<Dot>{{1, 1}}));
}

TEST(JournalStore, BakedDotSetSurvivesManyBaseAdvances) {
  // Repeated advance_base cycles accumulate base dots; every one of them
  // must keep rejecting duplicates (regression for the set being rebuilt
  // from only the latest batch).
  JournalStore js;
  for (Timestamp ts = 1; ts <= 20; ++ts) {
    js.apply(kKey, CrdtType::kPnCounter, Dot{1, ts},
             PnCounter::prepare_add(1));
    if (ts % 4 == 0) js.advance_base(kKey, [](const Dot&) { return true; });
  }
  js.advance_base(kKey, [](const Dot&) { return true; });
  for (Timestamp ts = 1; ts <= 20; ++ts) {
    js.apply(kKey, CrdtType::kPnCounter, Dot{1, ts},
             PnCounter::prepare_add(1));
  }
  EXPECT_EQ(js.journal_length(kKey), 0u);
  EXPECT_EQ(dynamic_cast<const PnCounter*>(js.current(kKey))->value(), 20);
  EXPECT_EQ(js.applied_dots(kKey).size(), 20u);
}

// --- durability idempotence ----------------------------------------------
// The checkpoint contract: encode is a pure function of the store's
// logical state, so checkpoint -> restore -> checkpoint is byte-identical,
// and replaying the same ops into a restored store is a no-op.

namespace {
Bytes checkpoint_of(const JournalStore& js) {
  Encoder enc;
  js.encode(enc);
  return enc.take();
}

JournalStore busy_store() {
  JournalStore js;
  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 1}, PnCounter::prepare_add(5));
  js.apply(kKey, CrdtType::kPnCounter, Dot{2, 1}, PnCounter::prepare_add(7),
           /*masked=*/true);
  js.apply({"bucket", "set"}, CrdtType::kGSet, Dot{1, 2},
           GSet::prepare_add("v"));
  js.advance_base(kKey, [](const Dot& d) { return d.origin == 1; });
  js.apply(kKey, CrdtType::kPnCounter, Dot{1, 3}, PnCounter::prepare_add(2));
  return js;
}
}  // namespace

TEST(JournalStore, CheckpointRestoreCheckpointIsByteIdentical) {
  const JournalStore original = busy_store();
  const Bytes first = checkpoint_of(original);

  JournalStore restored;
  Decoder dec(first);
  restored.decode(dec);
  ASSERT_TRUE(dec.ok());
  ASSERT_TRUE(dec.done());

  EXPECT_EQ(checkpoint_of(restored), first);

  // And a second generation of the same round trip stays stable.
  JournalStore twice;
  Decoder dec2(first);
  twice.decode(dec2);
  EXPECT_EQ(checkpoint_of(twice), first);
}

TEST(JournalStore, ReplayIntoRestoredStoreIsNoOp) {
  // Double WAL replay must be a no-op through the stack a node actually
  // replays with: the store itself rejects dots baked into the base, and
  // the (checkpointed) DotTracker filters re-delivery of everything still
  // in the journal before apply() is reached.
  JournalStore original = busy_store();
  DotTracker tracker;
  for (const Dot& d :
       {Dot{1, 1}, Dot{2, 1}, Dot{1, 2}, Dot{1, 3}}) {
    tracker.record(d);
  }
  const Bytes snapshot = checkpoint_of(original);
  Encoder tracker_enc;
  tracker.encode(tracker_enc);

  JournalStore restored;
  Decoder dec(snapshot);
  restored.decode(dec);
  ASSERT_TRUE(dec.ok());
  DotTracker restored_tracker;
  Decoder tdec(tracker_enc.data());
  restored_tracker.decode(tdec);
  ASSERT_TRUE(tdec.ok());

  const auto replay = [&](const ObjectKey& key, CrdtType type, Dot dot,
                          const Bytes& op, bool masked = false) {
    if (!restored_tracker.record(dot)) return;  // duplicate: filtered
    restored.apply(key, type, dot, op, masked);
  };
  replay(kKey, CrdtType::kPnCounter, Dot{1, 1}, PnCounter::prepare_add(5));
  replay(kKey, CrdtType::kPnCounter, Dot{2, 1}, PnCounter::prepare_add(7),
         /*masked=*/true);
  replay({"bucket", "set"}, CrdtType::kGSet, Dot{1, 2},
         GSet::prepare_add("v"));
  replay(kKey, CrdtType::kPnCounter, Dot{1, 3}, PnCounter::prepare_add(2));

  EXPECT_EQ(checkpoint_of(restored), snapshot);
  EXPECT_EQ(dynamic_cast<const PnCounter*>(restored.current(kKey))->value(),
            7);  // 5 + 2; the masked +7 stays hidden

  // And the store-layer guarantee on its own: a dot baked into the base is
  // rejected by apply() even without the tracker in front.
  restored.apply(kKey, CrdtType::kPnCounter, Dot{1, 1},
                 PnCounter::prepare_add(5));
  EXPECT_EQ(checkpoint_of(restored), snapshot);
}

TEST(JournalStore, DecodeReplacesExistingContents) {
  const JournalStore original = busy_store();
  const Bytes snapshot = checkpoint_of(original);

  JournalStore target;
  target.apply({"other", "junk"}, CrdtType::kPnCounter, Dot{9, 9},
               PnCounter::prepare_add(1));
  Decoder dec(snapshot);
  target.decode(dec);
  EXPECT_EQ(checkpoint_of(target), snapshot);
  EXPECT_FALSE(target.has({"other", "junk"}));
}

TEST(JournalStore, KeysEnumerates) {
  JournalStore js;
  js.ensure({"b", "x"}, CrdtType::kGSet);
  js.ensure({"a", "y"}, CrdtType::kGSet);
  EXPECT_EQ(js.keys().size(), 2u);
}

}  // namespace
}  // namespace colony
