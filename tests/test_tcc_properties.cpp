// System-level TCC+ property checks (paper section 3.1) on randomized
// multi-DC, multi-edge runs with failure injection:
//   * Causal Consistency — an observer that sees a dependent update sees
//     its dependency;
//   * Rollback-freedom — values read at a node never regress;
//   * Strong Convergence — after quiescence all replicas agree;
//   * Atomicity — a transaction's updates appear together.
#include <gtest/gtest.h>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"
#include "util/rng.hpp"

namespace colony {
namespace {

const ObjectKey kA{"app", "a"};
const ObjectKey kB{"app", "b"};

std::int64_t value_of(const Crdt* c) {
  const auto* counter = dynamic_cast<const PnCounter*>(c);
  return counter == nullptr ? 0 : counter->value();
}

class TccRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TccRandomTest, InvariantsHoldUnderChurn) {
  const std::uint64_t seed = GetParam();
  ClusterConfig cfg;
  cfg.num_dcs = 3;
  cfg.k_stability = 1;
  cfg.seed = seed;
  Cluster cluster(cfg);
  Rng rng(seed * 7 + 1);

  constexpr std::size_t kEdges = 4;
  std::vector<EdgeNode*> edges;
  std::vector<std::unique_ptr<Session>> sessions;
  for (std::size_t i = 0; i < kEdges; ++i) {
    EdgeNode& node = cluster.add_edge(ClientMode::kClientCache,
                                      static_cast<DcId>(i % 3), 10 + i);
    edges.push_back(&node);
    sessions.push_back(std::make_unique<Session>(node));
    sessions.back()->subscribe({kA, kB}, [](Result<void>) {});
  }
  cluster.run_for(1 * kSecond);

  // Causality pattern: every writer increments A, then (in a later txn)
  // increments B. Observing n increments of B implies >= n of A from the
  // same writer... aggregated: B's total never exceeds A's total at any
  // observer. Rollback-freedom: per-node readings never regress.
  std::vector<std::int64_t> last_a(kEdges, 0), last_b(kEdges, 0);

  for (int round = 0; round < 60; ++round) {
    const std::size_t w = rng.below(kEdges);
    // Random failure injection.
    if (rng.chance(0.1)) {
      cluster.set_uplink(edges[w]->id(), static_cast<DcId>(w % 3),
                         rng.chance(0.5));
    }
    if (rng.chance(0.05)) {
      const DcId x = static_cast<DcId>(rng.below(3));
      const DcId y = static_cast<DcId>(rng.below(3));
      if (x != y) {
        cluster.network().set_link_up(cluster.dc_node_id(x),
                                      cluster.dc_node_id(y),
                                      rng.chance(0.5));
      }
    }
    if (edges[w]->unacked_count() < 100) {
      auto ta = sessions[w]->begin();
      sessions[w]->increment(ta, kA, 1);
      ASSERT_TRUE(sessions[w]->commit(std::move(ta)).ok());
      auto tb = sessions[w]->begin();
      sessions[w]->increment(tb, kB, 1);
      ASSERT_TRUE(sessions[w]->commit(std::move(tb)).ok());
    }
    cluster.run_for(rng.between(50, 400) * kMillisecond);

    for (std::size_t i = 0; i < kEdges; ++i) {
      const std::int64_t a = value_of(edges[i]->cached(kA));
      const std::int64_t b = value_of(edges[i]->cached(kB));
      // Rollback-freedom.
      EXPECT_GE(a, last_a[i]) << "edge " << i << " rolled back A";
      EXPECT_GE(b, last_b[i]) << "edge " << i << " rolled back B";
      last_a[i] = a;
      last_b[i] = b;
    }
    // Causal consistency at the DCs: B at a DC never exceeds A there,
    // because each B-increment causally follows its A-increment.
    for (DcId d = 0; d < 3; ++d) {
      const std::int64_t a = value_of(cluster.dc(d).store().current(kA));
      const std::int64_t b = value_of(cluster.dc(d).store().current(kB));
      EXPECT_LE(b, a) << "DC " << d << " shows effect before cause";
    }
  }

  // Heal everything and drain.
  for (std::size_t i = 0; i < kEdges; ++i) {
    for (DcId d = 0; d < 3; ++d) cluster.set_uplink(edges[i]->id(), d, true);
  }
  for (DcId x = 0; x < 3; ++x) {
    for (DcId y = 0; y < 3; ++y) {
      if (x != y) {
        cluster.network().set_link_up(cluster.dc_node_id(x),
                                      cluster.dc_node_id(y), true);
      }
    }
  }
  cluster.run_for(30 * kSecond);

  // Strong convergence: all DCs agree; every edge agrees with its DC.
  const std::int64_t a0 = value_of(cluster.dc(0).store().current(kA));
  const std::int64_t b0 = value_of(cluster.dc(0).store().current(kB));
  EXPECT_EQ(a0, b0);  // every writer paired its increments
  for (DcId d = 1; d < 3; ++d) {
    EXPECT_EQ(value_of(cluster.dc(d).store().current(kA)), a0);
    EXPECT_EQ(value_of(cluster.dc(d).store().current(kB)), b0);
  }
  for (std::size_t i = 0; i < kEdges; ++i) {
    EXPECT_EQ(value_of(edges[i]->cached(kA)), a0) << "edge " << i;
    EXPECT_EQ(value_of(edges[i]->cached(kB)), b0) << "edge " << i;
    EXPECT_EQ(edges[i]->unacked_count(), 0u) << "edge " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TccRandomTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(TccAtomicity, PairedUpdatesNeverObservedSplit) {
  // One transaction updates A and B together; at every replica and every
  // instant, the two counters must be equal (atomicity + snapshot).
  ClusterConfig cfg;
  cfg.num_dcs = 2;
  Cluster cluster(cfg);
  EdgeNode& writer = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EdgeNode& reader = cluster.add_edge(ClientMode::kClientCache, 1, 2);
  Session ws(writer), rs(reader);
  rs.subscribe({kA, kB}, [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  for (int i = 0; i < 10; ++i) {
    auto txn = ws.begin();
    ws.increment(txn, kA, 1);
    ws.increment(txn, kB, 1);
    ASSERT_TRUE(ws.commit(std::move(txn)).ok());
    // Sample at fine granularity while the update propagates.
    for (int step = 0; step < 20; ++step) {
      cluster.run_for(37 * kMillisecond);
      EXPECT_EQ(value_of(reader.cached(kA)), value_of(reader.cached(kB)))
          << "atomicity violated at reader";
      for (DcId d = 0; d < 2; ++d) {
        EXPECT_EQ(value_of(cluster.dc(d).store().current(kA)),
                  value_of(cluster.dc(d).store().current(kB)))
            << "atomicity violated at DC " << d;
      }
    }
  }
}

}  // namespace
}  // namespace colony
