#include "util/metrics.hpp"

#include <gtest/gtest.h>

namespace colony {
namespace {

TEST(LatencyHistogram, BasicStats) {
  LatencyHistogram h;
  for (SimTime v : {10, 20, 30, 40, 50}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean_us(), 30.0);
  EXPECT_EQ(h.min_us(), 10u);
  EXPECT_EQ(h.max_us(), 50u);
  EXPECT_EQ(h.percentile_us(50), 30u);
  EXPECT_EQ(h.percentile_us(0), 10u);
  EXPECT_EQ(h.percentile_us(100), 50u);
}

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_us(), 0.0);
  EXPECT_EQ(h.percentile_us(99), 0u);
}

TEST(LatencyHistogram, RecordAfterQueryResorts) {
  LatencyHistogram h;
  h.record(50);
  EXPECT_EQ(h.max_us(), 50u);
  h.record(10);
  EXPECT_EQ(h.min_us(), 10u);
  EXPECT_EQ(h.max_us(), 50u);
}

TEST(ThroughputCounter, RatesPerWindow) {
  ThroughputCounter c(kSecond);
  // 3 events in second 0, 1 event in second 2 (second 1 idle).
  c.record(100 * kMillisecond);
  c.record(200 * kMillisecond);
  c.record(900 * kMillisecond);
  c.record(2 * kSecond + 1);
  const auto rates = c.rates_per_second();
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[0], 3.0);
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
  EXPECT_DOUBLE_EQ(rates[2], 1.0);
  EXPECT_EQ(c.total(), 4u);
}

TEST(ThroughputCounter, SteadyRateTrimsEdges) {
  ThroughputCounter c(kSecond);
  // Warm-up second: 1 event; middle 6 seconds: 10 events each; cool-down: 1.
  c.record(1);
  for (int s = 1; s <= 6; ++s) {
    for (int i = 0; i < 10; ++i) {
      c.record(static_cast<SimTime>(s) * kSecond + static_cast<SimTime>(i));
    }
  }
  c.record(7 * kSecond + 1);
  EXPECT_NEAR(c.steady_rate_per_second(), 10.0, 2.6);
}

TEST(Series, WindowedQueries) {
  Series s("test");
  s.add(1 * kSecond, 5.0);
  s.add(2 * kSecond, 15.0);
  s.add(3 * kSecond, 25.0);
  EXPECT_EQ(s.count_in(0, 10 * kSecond), 3u);
  EXPECT_DOUBLE_EQ(s.mean_in(0, 10 * kSecond), 15.0);
  EXPECT_DOUBLE_EQ(s.mean_in(2 * kSecond, 3 * kSecond), 15.0);
  EXPECT_EQ(s.count_in(5 * kSecond, 6 * kSecond), 0u);
  EXPECT_DOUBLE_EQ(s.mean_in(5 * kSecond, 6 * kSecond), 0.0);
}

}  // namespace
}  // namespace colony
