// Transaction migration (paper section 3.9): resource-hungry transactions
// execute in the core cloud with the same effect as running at the edge —
// the client primes the snapshot with its state vector and the DC waits
// until it has the client's dependencies.
#include <gtest/gtest.h>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"

namespace colony {
namespace {

const ObjectKey kX{"app", "x"};

std::int64_t counter_of(const ObjectSnapshot& snap) {
  PnCounter c;
  if (!snap.state.empty()) c.restore(snap.state);
  return c.value();
}

TEST(TxnMigration, SeesTheClientsOwnPriorWrites) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);

  // Local (still unacknowledged) writes, then a migrated read of the same
  // object: the DC must observe them first (read-my-writes across the
  // migration, section 3.9).
  for (int i = 0; i < 3; ++i) {
    auto txn = session.begin();
    session.increment(txn, kX, 1);
    ASSERT_TRUE(session.commit(std::move(txn)).ok());
  }

  std::int64_t seen = -1;
  session.migrate_transaction({kX}, {},
                              [&](Result<proto::DcExecuteResp> r) {
                                ASSERT_TRUE(r.ok());
                                seen = counter_of(r.value().read_values[0]);
                              });
  cluster.run_for(5 * kSecond);
  EXPECT_EQ(seen, 3);
}

TEST(TxnMigration, UpdatesCommitAtTheDc) {
  ClusterConfig cfg;
  Cluster cluster(cfg);
  EdgeNode& node = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  Session session(node);
  session.subscribe({kX}, [](Result<void>) {});
  cluster.run_for(1 * kSecond);

  bool done = false;
  OpRecord op{kX, CrdtType::kPnCounter, PnCounter::prepare_add(7)};
  session.migrate_transaction({}, {op},
                              [&](Result<proto::DcExecuteResp> r) {
                                ASSERT_TRUE(r.ok());
                                EXPECT_TRUE(r.value().dot.valid());
                                done = true;
                              });
  cluster.run_for(3 * kSecond);
  ASSERT_TRUE(done);
  // The result flows back to the edge through the normal push path.
  const auto* c = dynamic_cast<const PnCounter*>(node.cached(kX));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 7);
}

TEST(TxnMigration, DcDefersUntilSnapshotCovered) {
  // Prime a snapshot the DC does not have yet (a commit stuck behind a
  // cut uplink): the migrated transaction must wait, not read stale state.
  ClusterConfig cfg;
  Cluster cluster(cfg);
  EdgeNode& writer = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EdgeNode& analyst = cluster.add_edge(ClientMode::kClientCache, 0, 2);
  Session ws(writer);

  auto txn = ws.begin();
  ws.increment(txn, kX, 5);
  ASSERT_TRUE(ws.commit(std::move(txn)).ok());
  cluster.run_for(2 * kSecond);  // now at the DC: state [1]

  bool answered = false;
  std::int64_t seen = -1;
  analyst.cloud_execute({kX}, {}, [&](Result<proto::DcExecuteResp> r) {
    // Plain read first, to prove the DC is responsive at state [1].
    ASSERT_TRUE(r.ok());
    seen = counter_of(r.value().read_values[0]);
  });
  cluster.run_for(1 * kSecond);
  EXPECT_EQ(seen, 5);

  // A local commit on the analyst followed by a migrated read: the read is
  // primed past the commit, so it must observe it (deferred execution at
  // the DC until the commit pump delivers the dependency).
  Session sa(analyst);
  auto txn2 = sa.begin();
  sa.increment(txn2, kX, 1);
  ASSERT_TRUE(sa.commit(std::move(txn2)).ok());
  sa.migrate_transaction({kX}, {}, [&](Result<proto::DcExecuteResp> r) {
    ASSERT_TRUE(r.ok());
    answered = true;
    seen = counter_of(r.value().read_values[0]);
  });
  cluster.run_for(5 * kSecond);
  EXPECT_TRUE(answered);
  EXPECT_EQ(seen, 6);  // the migrated read saw the analyst's own write
}

}  // namespace
}  // namespace colony
