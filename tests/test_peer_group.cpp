// Peer groups (paper section 5): membership, EPaxos-ordered visibility,
// the collaborative cache, sync-point forwarding, offline groups, and both
// commit variants.
#include <gtest/gtest.h>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"
#include "crdt/rga.hpp"

namespace colony {
namespace {

const ObjectKey kX{"app", "x"};

struct GroupFixture {
  explicit GroupFixture(std::size_t members, std::size_t num_dcs = 1) {
    ClusterConfig cfg;
    cfg.num_dcs = num_dcs;
    cluster = std::make_unique<Cluster>(cfg);
    parent = &cluster->add_group_parent(0);
    std::vector<NodeId> node_ids{parent->id()};
    for (std::size_t i = 0; i < members; ++i) {
      EdgeNode& node =
          cluster->add_edge(ClientMode::kPeerGroup, 0, 100 + i);
      nodes.push_back(&node);
      sessions.push_back(std::make_unique<Session>(node));
      node_ids.push_back(node.id());
    }
    cluster->wire_peer_links(node_ids);
  }

  void join_all() {
    for (EdgeNode* node : nodes) {
      node->join_group(parent->id(), [](Result<void> r) {
        ASSERT_TRUE(r.ok());
      });
      cluster->run_for(200 * kMillisecond);
    }
  }

  std::unique_ptr<Cluster> cluster;
  PeerGroupParent* parent = nullptr;
  std::vector<EdgeNode*> nodes;
  std::vector<std::unique_ptr<Session>> sessions;
};

TEST(PeerGroup, JoinBuildsMembership) {
  GroupFixture fx(3);
  fx.join_all();
  EXPECT_EQ(fx.parent->member_count(), 3u);
  for (EdgeNode* node : fx.nodes) {
    EXPECT_TRUE(node->in_group());
  }
  // Everybody agrees on the epoch after the churn settles.
  fx.cluster->run_for(1 * kSecond);
  for (EdgeNode* node : fx.nodes) {
    EXPECT_EQ(node->group_epoch(), fx.parent->epoch());
  }
}

TEST(PeerGroup, GroupCommitPropagatesToMembersAndDc) {
  GroupFixture fx(3);
  fx.join_all();
  // Members declare interest in the shared object; only subscribed keys
  // are materialised from group deliveries (section 5.1.2).
  for (auto& session : fx.sessions) {
    session->subscribe({kX}, [](Result<void>) {});
  }
  fx.cluster->run_for(1 * kSecond);

  auto txn = fx.sessions[0]->begin();
  fx.sessions[0]->increment(txn, kX, 4);
  ASSERT_TRUE(fx.sessions[0]->commit(std::move(txn)).ok());
  fx.cluster->run_for(3 * kSecond);

  // Every member and the parent observe the update via consensus delivery.
  for (EdgeNode* node : fx.nodes) {
    const auto* c = dynamic_cast<const PnCounter*>(node->cached(kX));
    ASSERT_NE(c, nullptr) << "member " << node->id();
    EXPECT_EQ(c->value(), 4);
  }
  const auto* pc =
      dynamic_cast<const PnCounter*>(fx.parent->store().current(kX));
  ASSERT_NE(pc, nullptr);
  EXPECT_EQ(pc->value(), 4);

  // The sync point forwarded it: the DC sequenced it and the member's
  // commit resolved.
  EXPECT_EQ(fx.cluster->dc(0).committed(), 1u);
  EXPECT_EQ(fx.nodes[0]->unacked_count(), 0u);
  EXPECT_EQ(fx.parent->forward_backlog(), 0u);
}

TEST(PeerGroup, VisibilityOrderIdenticalAcrossMembers) {
  GroupFixture fx(3);
  fx.join_all();
  fx.cluster->run_for(1 * kSecond);

  // Concurrent interfering commits from all members.
  for (std::size_t i = 0; i < 3; ++i) {
    auto txn = fx.sessions[i]->begin();
    fx.sessions[i]->increment(txn, kX, 1);
    ASSERT_TRUE(fx.sessions[i]->commit(std::move(txn)).ok());
  }
  fx.cluster->run_for(3 * kSecond);

  for (EdgeNode* node : fx.nodes) {
    const auto* c = dynamic_cast<const PnCounter*>(node->cached(kX));
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value(), 3);
  }
  EXPECT_EQ(fx.cluster->dc(0).committed(), 3u);
}

TEST(PeerGroup, CollaborativeCacheServesMisses) {
  GroupFixture fx(2);
  fx.join_all();
  fx.cluster->run_for(1 * kSecond);

  // Member 0 creates the object; member 1 reads it cold: the fetch should
  // be served by the group (parent), not the DC.
  auto txn = fx.sessions[0]->begin();
  fx.sessions[0]->increment(txn, kX, 6);
  ASSERT_TRUE(fx.sessions[0]->commit(std::move(txn)).ok());
  fx.cluster->run_for(2 * kSecond);

  // Ensure member 1 does not already cache it via consensus delivery (it
  // does — so invalidate its cache to force the miss path).
  fx.nodes[1]->invalidate_cache();

  auto txn2 = fx.sessions[1]->begin();
  std::int64_t value = -1;
  ReadSource src{};
  fx.sessions[1]->read_counter(txn2, kX,
                               [&](Result<std::int64_t> r, ReadSource s) {
                                 ASSERT_TRUE(r.ok());
                                 value = r.value();
                                 src = s;
                               });
  fx.cluster->run_for(1 * kSecond);
  EXPECT_EQ(value, 6);
  EXPECT_EQ(src, ReadSource::kPeer);
}

TEST(PeerGroup, OfflineGroupKeepsCollaborating) {
  GroupFixture fx(3);
  fx.join_all();
  fx.cluster->run_for(1 * kSecond);

  // Cut the parent's uplink: the group is offline (Figure 5 scenario).
  fx.cluster->set_uplink(fx.parent->id(), 0, false);

  for (std::size_t i = 0; i < 3; ++i) {
    auto txn = fx.sessions[i]->begin();
    fx.sessions[i]->increment(txn, kX, 1);
    ASSERT_TRUE(fx.sessions[i]->commit(std::move(txn)).ok());
  }
  fx.cluster->run_for(3 * kSecond);

  // Intra-group convergence despite the outage.
  for (EdgeNode* node : fx.nodes) {
    const auto* c = dynamic_cast<const PnCounter*>(node->cached(kX));
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value(), 3);
  }
  EXPECT_EQ(fx.cluster->dc(0).committed(), 0u);
  EXPECT_GE(fx.parent->forward_backlog(), 1u);

  // Reconnect: the sync point drains its backlog.
  fx.cluster->set_uplink(fx.parent->id(), 0, true);
  fx.cluster->run_for(5 * kSecond);
  EXPECT_EQ(fx.cluster->dc(0).committed(), 3u);
  EXPECT_EQ(fx.parent->forward_backlog(), 0u);
}

TEST(PeerGroup, DisconnectedMemberRemovedAndRejoins) {
  GroupFixture fx(3);
  fx.join_all();
  fx.cluster->run_for(1 * kSecond);

  // Member 2 loses its peer links (Figure 6 scenario).
  const auto group_nodes = [&] {
    std::vector<NodeId> ids{fx.parent->id()};
    for (EdgeNode* n : fx.nodes) ids.push_back(n->id());
    return ids;
  }();
  fx.cluster->set_peer_links(fx.nodes[2]->id(), group_nodes, false);

  // The heartbeat eventually removes it so the rest keep a live quorum.
  fx.cluster->run_for(5 * kSecond);
  EXPECT_EQ(fx.parent->member_count(), 2u);

  // The remaining members still commit through consensus.
  auto txn = fx.sessions[0]->begin();
  fx.sessions[0]->increment(txn, kX, 1);
  ASSERT_TRUE(fx.sessions[0]->commit(std::move(txn)).ok());
  fx.cluster->run_for(3 * kSecond);
  EXPECT_EQ(fx.cluster->dc(0).committed(), 1u);

  // The disconnected member worked locally meanwhile.
  auto txn2 = fx.sessions[2]->begin();
  fx.sessions[2]->increment(txn2, kX, 10);
  ASSERT_TRUE(fx.sessions[2]->commit(std::move(txn2)).ok());

  // Reconnect and rejoin.
  fx.cluster->set_peer_links(fx.nodes[2]->id(), group_nodes, true);
  bool rejoined = false;
  fx.nodes[2]->join_group(fx.parent->id(), [&](Result<void> r) {
    rejoined = r.ok();
  });
  fx.cluster->run_for(5 * kSecond);
  EXPECT_TRUE(rejoined);
  EXPECT_EQ(fx.parent->member_count(), 3u);
  fx.cluster->run_for(5 * kSecond);

  // Its offline commit flowed through the group to the DC.
  EXPECT_EQ(fx.cluster->dc(0).committed(), 2u);
  const auto* pc =
      dynamic_cast<const PnCounter*>(fx.parent->store().current(kX));
  ASSERT_NE(pc, nullptr);
  EXPECT_EQ(pc->value(), 11);
}

TEST(PeerGroup, OrderedCommitVariantDetectsConflicts) {
  GroupFixture fx(2);
  fx.join_all();
  fx.cluster->run_for(1 * kSecond);

  // Two members issue PSI (critical-path) commits on the same key
  // concurrently: exactly one must abort (section 5.1.4 variant 1).
  int ok_count = 0, abort_count = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    auto txn = fx.sessions[i]->begin();
    fx.sessions[i]->increment(txn, kX, 1);
    fx.sessions[i]->commit_ordered(std::move(txn), [&](Result<Dot> r) {
      if (r.ok()) {
        ++ok_count;
      } else {
        EXPECT_EQ(r.error().code, Error::Code::kAborted);
        ++abort_count;
      }
    });
  }
  fx.cluster->run_for(3 * kSecond);
  EXPECT_EQ(ok_count, 1);
  EXPECT_EQ(abort_count, 1);

  // The surviving increment propagates; the aborted one does not.
  fx.cluster->run_for(3 * kSecond);
  const auto* pc =
      dynamic_cast<const PnCounter*>(fx.parent->store().current(kX));
  ASSERT_NE(pc, nullptr);
  EXPECT_EQ(pc->value(), 1);
  EXPECT_EQ(fx.cluster->dc(0).committed(), 1u);
}

TEST(PeerGroup, OrderedCommitsSucceedWhenDisjoint) {
  GroupFixture fx(2);
  fx.join_all();
  fx.cluster->run_for(1 * kSecond);

  int ok_count = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    auto txn = fx.sessions[i]->begin();
    fx.sessions[i]->increment(txn, {"app", "k" + std::to_string(i)}, 1);
    fx.sessions[i]->commit_ordered(std::move(txn), [&](Result<Dot> r) {
      if (r.ok()) ++ok_count;
    });
  }
  fx.cluster->run_for(3 * kSecond);
  EXPECT_EQ(ok_count, 2);  // non-conflicting: both commit in parallel
}

TEST(PeerGroup, JoinRejectedWhenAheadOfParent) {
  GroupFixture fx(1);
  // Sever the parent's uplink so it cannot track the DC's cut; the member
  // commits against the DC directly (groupless peer-group mode falls back
  // to the direct pump), advancing its state beyond the parent's.
  fx.cluster->set_uplink(fx.parent->id(), 0, false);
  auto txn = fx.sessions[0]->begin();
  fx.sessions[0]->increment(txn, kX, 1);
  ASSERT_TRUE(fx.sessions[0]->commit(std::move(txn)).ok());
  fx.cluster->run_for(2 * kSecond);
  ASSERT_TRUE(VersionVector({1}).leq(fx.nodes[0]->state_vector()));

  // The parent has never heard from the DC, so the joiner is "ahead".
  bool rejected = false;
  fx.nodes[0]->join_group(fx.parent->id(), [&](Result<void> r) {
    rejected = !r.ok() && r.error().code == Error::Code::kIncompatible;
  });
  fx.cluster->run_for(1 * kSecond);
  EXPECT_TRUE(rejected);
  EXPECT_FALSE(fx.nodes[0]->in_group());
}

TEST(PeerGroup, LeaveShrinksMembership) {
  GroupFixture fx(2);
  fx.join_all();
  fx.cluster->run_for(1 * kSecond);
  bool left = false;
  fx.nodes[0]->leave_group([&](Result<void>) { left = true; });
  fx.cluster->run_for(1 * kSecond);
  EXPECT_TRUE(left);
  EXPECT_FALSE(fx.nodes[0]->in_group());
  EXPECT_EQ(fx.parent->member_count(), 1u);
}

}  // namespace
}  // namespace colony
