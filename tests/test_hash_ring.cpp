#include "storage/hash_ring.hpp"

#include <gtest/gtest.h>

#include <map>

namespace colony {
namespace {

ObjectKey key(int i) { return ObjectKey{"chat", "obj" + std::to_string(i)}; }

TEST(HashRing, DeterministicOwner) {
  HashRing a, b;
  for (std::uint32_t s = 0; s < 4; ++s) {
    a.add_shard(s);
    b.add_shard(s);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.owner(key(i)), b.owner(key(i)));
  }
}

TEST(HashRing, ReasonablyBalanced) {
  HashRing ring;
  for (std::uint32_t s = 0; s < 4; ++s) ring.add_shard(s);
  std::map<std::uint32_t, int> counts;
  constexpr int kKeys = 4000;
  for (int i = 0; i < kKeys; ++i) ++counts[ring.owner(key(i))];
  for (const auto& [shard, count] : counts) {
    // 64 vnodes/shard gives a rough balance; accept a 2.5x spread.
    EXPECT_GT(count, kKeys / 12) << "shard " << shard;
    EXPECT_LT(count, kKeys / 2) << "shard " << shard;
  }
}

TEST(HashRing, RemovalMovesOnlyVictimKeys) {
  HashRing before;
  for (std::uint32_t s = 0; s < 4; ++s) before.add_shard(s);

  HashRing after;
  for (std::uint32_t s = 0; s < 4; ++s) after.add_shard(s);
  after.remove_shard(3);

  int moved = 0;
  constexpr int kKeys = 2000;
  for (int i = 0; i < kKeys; ++i) {
    const auto was = before.owner(key(i));
    const auto now = after.owner(key(i));
    if (was != 3) {
      EXPECT_EQ(was, now) << "non-victim key moved";
    } else {
      EXPECT_NE(now, 3u);
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(HashRing, AdditionStealsOnlyFromExisting) {
  HashRing before;
  for (std::uint32_t s = 0; s < 3; ++s) before.add_shard(s);
  HashRing after;
  for (std::uint32_t s = 0; s < 3; ++s) after.add_shard(s);
  after.add_shard(3);
  constexpr int kKeys = 2000;
  for (int i = 0; i < kKeys; ++i) {
    const auto was = before.owner(key(i));
    const auto now = after.owner(key(i));
    // A key either stays put or moves to the new shard.
    EXPECT_TRUE(now == was || now == 3u);
  }
}

TEST(HashRing, SingleShardOwnsEverything) {
  HashRing ring;
  ring.add_shard(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.owner(key(i)), 7u);
  }
}

TEST(HashRingDeath, EmptyRingAborts) {
  HashRing ring;
  EXPECT_DEATH(ring.owner(key(1)), "empty");
}

TEST(HashRingDeath, DuplicateShardAborts) {
  HashRing ring;
  ring.add_shard(1);
  EXPECT_DEATH(ring.add_shard(1), "already");
}

TEST(HashRing, FnvMatchesKnownVector) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(HashRing::hash(""), 14695981039346656037ULL);
}

}  // namespace
}  // namespace colony
