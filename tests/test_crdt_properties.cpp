// Property test: Strong Convergence of every CRDT type under randomized
// causal delivery (paper section 3.1). N replicas prepare operations
// against their local state and exchange them in arbitrary orders that
// respect causality; all replicas must converge to identical state.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "crdt/counter.hpp"
#include "crdt/crdt.hpp"
#include "crdt/maps.hpp"
#include "crdt/or_set.hpp"
#include "crdt/registers.hpp"
#include "crdt/rga.hpp"
#include "util/rng.hpp"

namespace colony {
namespace {

struct GeneratedOp {
  std::size_t id = 0;
  Bytes payload;
  std::set<std::size_t> deps;  // ops the preparing replica had applied
};

struct Replica {
  std::unique_ptr<Crdt> state;
  std::set<std::size_t> applied;
  std::vector<std::size_t> pending;  // op ids known but not yet deliverable
};

class Harness {
 public:
  Harness(CrdtType type, std::size_t replicas, std::uint64_t seed)
      : type_(type), rng_(seed) {
    for (std::size_t i = 0; i < replicas; ++i) {
      replicas_.push_back(Replica{make_crdt(type), {}, {}});
    }
  }

  void run(std::size_t steps) {
    for (std::size_t s = 0; s < steps; ++s) {
      if (rng_.chance(0.5)) {
        originate();
      } else {
        deliver_one();
      }
    }
    deliver_all();
  }

  void expect_converged() {
    const Bytes reference = replicas_[0].state->snapshot();
    for (std::size_t i = 1; i < replicas_.size(); ++i) {
      EXPECT_EQ(replicas_[i].state->snapshot(), reference)
          << "replica " << i << " diverged";
    }
  }

 private:
  void originate() {
    const std::size_t r = rng_.below(replicas_.size());
    Replica& rep = replicas_[r];
    GeneratedOp op;
    op.id = ops_.size();
    op.deps = rep.applied;
    op.payload = make_payload(rep, r);
    rep.state->apply(op.payload);
    rep.applied.insert(op.id);
    ops_.push_back(op);
    // Announce to every other replica.
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (i != r) replicas_[i].pending.push_back(op.id);
    }
  }

  // Deliver one randomly chosen deliverable pending op somewhere.
  void deliver_one() {
    for (std::size_t attempt = 0; attempt < replicas_.size(); ++attempt) {
      const std::size_t r = rng_.below(replicas_.size());
      Replica& rep = replicas_[r];
      for (std::size_t i = 0; i < rep.pending.size(); ++i) {
        const std::size_t idx =
            (i + rng_.below(rep.pending.size())) % rep.pending.size();
        const std::size_t op_id = rep.pending[idx];
        if (deliverable(rep, op_id)) {
          rep.state->apply(ops_[op_id].payload);
          rep.applied.insert(op_id);
          rep.pending.erase(rep.pending.begin() +
                            static_cast<std::ptrdiff_t>(idx));
          return;
        }
      }
    }
  }

  void deliver_all() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (Replica& rep : replicas_) {
        for (std::size_t i = 0; i < rep.pending.size();) {
          const std::size_t op_id = rep.pending[i];
          if (deliverable(rep, op_id)) {
            rep.state->apply(ops_[op_id].payload);
            rep.applied.insert(op_id);
            rep.pending.erase(rep.pending.begin() +
                              static_cast<std::ptrdiff_t>(i));
            progress = true;
          } else {
            ++i;
          }
        }
      }
    }
    for (const Replica& rep : replicas_) {
      EXPECT_TRUE(rep.pending.empty()) << "undeliverable op stuck";
    }
  }

  [[nodiscard]] bool deliverable(const Replica& rep,
                                 std::size_t op_id) const {
    for (const std::size_t dep : ops_[op_id].deps) {
      if (!rep.applied.contains(dep)) return false;
    }
    return true;
  }

  Dot next_dot(std::size_t replica) {
    return Dot{replica + 1, ++dot_counters_[replica]};
  }

  Bytes make_payload(Replica& rep, std::size_t r) {
    switch (type_) {
      case CrdtType::kGCounter:
        return GCounter::prepare_increment(
            static_cast<std::int64_t>(rng_.below(10)));
      case CrdtType::kPnCounter:
        return PnCounter::prepare_add(
            static_cast<std::int64_t>(rng_.below(20)) - 10);
      case CrdtType::kLwwRegister:
        return LwwRegister::prepare_assign(
            "v" + std::to_string(rng_.below(100)),
            Arb{++ts_, next_dot(r)});
      case CrdtType::kMvRegister:
        return dynamic_cast<MvRegister*>(rep.state.get())
            ->prepare_assign("v" + std::to_string(rng_.below(100)),
                             next_dot(r));
      case CrdtType::kGSet:
        return GSet::prepare_add("e" + std::to_string(rng_.below(8)));
      case CrdtType::kOrSet: {
        auto* set = dynamic_cast<OrSet*>(rep.state.get());
        const std::string elem = "e" + std::to_string(rng_.below(8));
        if (rng_.chance(0.4) && set->contains(elem)) {
          return set->prepare_remove(elem);
        }
        return OrSet::prepare_add(elem, next_dot(r));
      }
      case CrdtType::kGMap: {
        const std::string field = "f" + std::to_string(rng_.below(4));
        return GMap::prepare_update(field, CrdtType::kPnCounter,
                                    PnCounter::prepare_add(1));
      }
      case CrdtType::kAwMap: {
        auto* map = dynamic_cast<AwMap*>(rep.state.get());
        const std::string field = "f" + std::to_string(rng_.below(4));
        if (rng_.chance(0.3) && map->present(field)) {
          return map->prepare_remove(field);
        }
        return AwMap::prepare_update(field, CrdtType::kPnCounter,
                                     PnCounter::prepare_add(1),
                                     next_dot(r));
      }
      case CrdtType::kRga: {
        auto* seq = dynamic_cast<Rga*>(rep.state.get());
        if (rng_.chance(0.25) && seq->size() > 0) {
          return Rga::prepare_remove(seq->id_at(rng_.below(seq->size())));
        }
        const Dot after = seq->size() > 0 && rng_.chance(0.7)
                              ? seq->id_at(rng_.below(seq->size()))
                              : Dot{};
        return Rga::prepare_insert(after,
                                   "m" + std::to_string(rng_.below(100)),
                                   Arb{++ts_, next_dot(r)});
      }
      default:
        ADD_FAILURE() << "unhandled type";
        return {};
    }
  }

  CrdtType type_;
  Rng rng_;
  std::vector<Replica> replicas_;
  std::vector<GeneratedOp> ops_;
  std::map<std::size_t, std::uint64_t> dot_counters_;
  Timestamp ts_ = 0;
};

using Param = std::tuple<CrdtType, std::uint64_t>;

class ConvergenceTest : public ::testing::TestWithParam<Param> {};

TEST_P(ConvergenceTest, ReplicasConvergeUnderCausalDelivery) {
  const auto [type, seed] = GetParam();
  Harness h(type, 4, seed);
  h.run(300);
  h.expect_converged();
}

INSTANTIATE_TEST_SUITE_P(
    AllTypesAndSeeds, ConvergenceTest,
    ::testing::Combine(
        ::testing::Values(CrdtType::kGCounter, CrdtType::kPnCounter,
                          CrdtType::kLwwRegister, CrdtType::kMvRegister,
                          CrdtType::kGSet, CrdtType::kOrSet, CrdtType::kGMap,
                          CrdtType::kAwMap, CrdtType::kRga),
        ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::string(to_string(std::get<0>(info.param))) +
                         "_seed" + std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(CrdtRegistry, FactoryCoversAllTypes) {
  for (const CrdtType t :
       {CrdtType::kGCounter, CrdtType::kPnCounter, CrdtType::kLwwRegister,
        CrdtType::kMvRegister, CrdtType::kGSet, CrdtType::kOrSet,
        CrdtType::kGMap, CrdtType::kAwMap, CrdtType::kRga}) {
    const auto obj = make_crdt(t);
    ASSERT_NE(obj, nullptr);
    EXPECT_EQ(obj->type(), t);
    // Fresh objects round-trip an empty snapshot.
    auto clone = make_crdt(t);
    clone->restore(obj->snapshot());
  }
}

}  // namespace
}  // namespace colony
