#include "core/txn.hpp"

#include <gtest/gtest.h>

#include "crdt/counter.hpp"

namespace colony {
namespace {

Transaction make_txn(Dot dot, VersionVector snapshot) {
  Transaction txn;
  txn.meta.dot = dot;
  txn.meta.origin = dot.origin;
  txn.meta.snapshot = std::move(snapshot);
  txn.ops.push_back(OpRecord{{"b", "x"}, CrdtType::kPnCounter,
                             PnCounter::prepare_add(1)});
  return txn;
}

TEST(TxnMeta, CommitVectorViaAcceptingDc) {
  TxnMeta m;
  m.snapshot = VersionVector{1, 2, 0};
  m.mark_accepted(0, 5);
  EXPECT_TRUE(m.concrete);
  EXPECT_TRUE(m.accepted_by(0));
  EXPECT_FALSE(m.accepted_by(1));
  EXPECT_EQ(m.commit_vector_via(0), (VersionVector{5, 2, 0}));
}

TEST(TxnMeta, EquivalentCommitsShareOneVector) {
  // Section 3.8: after migration a transaction may be accepted by two DCs;
  // both timestamps live in one stored vector.
  TxnMeta m;
  m.snapshot = VersionVector{1, 2, 0};
  m.mark_accepted(0, 5);
  m.mark_accepted(2, 9);
  EXPECT_EQ(m.commit_vector_via(0), (VersionVector{5, 2, 0}));
  EXPECT_EQ(m.commit_vector_via(2), (VersionVector{1, 2, 9}));
  EXPECT_EQ(m.commit_lub(), (VersionVector{5, 2, 9}));
}

TEST(TxnMetaDeath, CommitVectorForNonAcceptingDc) {
  TxnMeta m;
  m.mark_accepted(0, 5);
  EXPECT_DEATH(m.commit_vector_via(1), "no commit timestamp");
}

TEST(TxnCodec, RoundTrip) {
  Transaction txn = make_txn(Dot{7, 3}, VersionVector{1, 0, 4});
  txn.meta.user = 55;
  txn.meta.pending_deps.push_back(Dot{7, 2});
  txn.meta.mark_accepted(1, 9);
  const Transaction back = Transaction::from_bytes(txn.to_bytes());
  EXPECT_EQ(back.meta.dot, txn.meta.dot);
  EXPECT_EQ(back.meta.user, 55u);
  EXPECT_EQ(back.meta.snapshot, txn.meta.snapshot);
  EXPECT_EQ(back.meta.pending_deps, txn.meta.pending_deps);
  EXPECT_TRUE(back.meta.concrete);
  EXPECT_TRUE(back.meta.accepted_by(1));
  EXPECT_EQ(back.meta.commit.at(1), 9u);
  ASSERT_EQ(back.ops.size(), 1u);
  EXPECT_EQ(back.ops[0].key, (ObjectKey{"b", "x"}));
}

TEST(TxnStore, AddAndFind) {
  TxnStore store;
  EXPECT_TRUE(store.add(make_txn({1, 1}, VersionVector{0})));
  EXPECT_FALSE(store.add(make_txn({1, 1}, VersionVector{0})));  // dup
  EXPECT_TRUE(store.contains({1, 1}));
  EXPECT_NE(store.find({1, 1}), nullptr);
  EXPECT_EQ(store.find({9, 9}), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST(TxnStore, DuplicateMergesCommitInfo) {
  TxnStore store;
  store.add(make_txn({1, 1}, VersionVector{0, 0}));
  Transaction dup = make_txn({1, 1}, VersionVector{0, 0});
  dup.meta.mark_accepted(1, 4);
  EXPECT_FALSE(store.add(dup));
  const Transaction* merged = store.find({1, 1});
  EXPECT_TRUE(merged->meta.concrete);
  EXPECT_TRUE(merged->meta.accepted_by(1));
  EXPECT_EQ(merged->meta.commit.at(1), 4u);
}

TEST(TxnStore, DuplicateAdoptsResolvedSnapshot) {
  TxnStore store;
  Transaction symbolic = make_txn({1, 2}, VersionVector{0, 0});
  symbolic.meta.pending_deps.push_back(Dot{1, 1});
  store.add(symbolic);

  Transaction concrete = make_txn({1, 2}, VersionVector{3, 0});
  concrete.meta.mark_accepted(0, 4);
  store.add(concrete);

  const Transaction* merged = store.find({1, 2});
  EXPECT_TRUE(merged->meta.pending_deps.empty());
  EXPECT_EQ(merged->meta.snapshot, (VersionVector{3, 0}));
}

TEST(TxnStore, EffectiveSnapshotResolvesDeps) {
  TxnStore store;
  Transaction dep = make_txn({1, 1}, VersionVector{0, 0});
  dep.meta.mark_accepted(0, 3);
  store.add(dep);

  Transaction txn = make_txn({1, 2}, VersionVector{0, 1});
  txn.meta.pending_deps.push_back(Dot{1, 1});
  store.add(txn);

  VersionVector eff;
  ASSERT_TRUE(store.effective_snapshot({1, 2}, eff));
  EXPECT_EQ(eff, (VersionVector{3, 1}));
}

TEST(TxnStore, EffectiveSnapshotFailsOnUnresolvedDep) {
  TxnStore store;
  store.add(make_txn({1, 1}, VersionVector{0}));  // still symbolic
  Transaction txn = make_txn({1, 2}, VersionVector{0});
  txn.meta.pending_deps.push_back(Dot{1, 1});
  store.add(txn);
  VersionVector eff;
  EXPECT_FALSE(store.effective_snapshot({1, 2}, eff));
  // Missing dep entirely:
  Transaction orphan = make_txn({2, 1}, VersionVector{0});
  orphan.meta.pending_deps.push_back(Dot{9, 9});
  store.add(orphan);
  EXPECT_FALSE(store.effective_snapshot({2, 1}, eff));
}

TEST(TxnStore, VisibleAtRespectsCommitAndSnapshot) {
  TxnStore store;
  Transaction txn = make_txn({1, 1}, VersionVector{2, 1});
  txn.meta.mark_accepted(0, 3);  // commit vector via DC0 = [3,1]
  store.add(txn);

  EXPECT_TRUE(store.visible_at({1, 1}, VersionVector{3, 1}));
  EXPECT_TRUE(store.visible_at({1, 1}, VersionVector{5, 5}));
  EXPECT_FALSE(store.visible_at({1, 1}, VersionVector{2, 1}));  // ts too low
  EXPECT_FALSE(store.visible_at({1, 1}, VersionVector{3, 0}));  // snap ahead
}

TEST(TxnStore, VisibleAtAnyEquivalentCommit) {
  TxnStore store;
  Transaction txn = make_txn({1, 1}, VersionVector{0, 0});
  txn.meta.mark_accepted(0, 5);
  txn.meta.mark_accepted(1, 2);
  store.add(txn);
  // Visible through DC1's timestamp even where DC0's is not covered.
  EXPECT_TRUE(store.visible_at({1, 1}, VersionVector{0, 2}));
  EXPECT_TRUE(store.visible_at({1, 1}, VersionVector{5, 0}));
  EXPECT_FALSE(store.visible_at({1, 1}, VersionVector{4, 1}));
}

TEST(TxnStore, SymbolicNeverVisible) {
  TxnStore store;
  store.add(make_txn({1, 1}, VersionVector{0}));
  EXPECT_FALSE(store.visible_at({1, 1}, VersionVector{100}));
}

TEST(TxnStore, ResolveMarksAccepted) {
  TxnStore store;
  store.add(make_txn({1, 1}, VersionVector{0, 0}));
  store.resolve({1, 1}, 1, 7);
  EXPECT_TRUE(store.find({1, 1})->meta.concrete);
  EXPECT_TRUE(store.visible_at({1, 1}, VersionVector{0, 7}));
}

TEST(TxnStore, EraseRemoves) {
  TxnStore store;
  store.add(make_txn({1, 1}, VersionVector{0}));
  store.erase({1, 1});
  EXPECT_FALSE(store.contains({1, 1}));
}

}  // namespace
}  // namespace colony
