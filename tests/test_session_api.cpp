// The typed Session API (the Figure 3 programming model).
#include <gtest/gtest.h>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/maps.hpp"
#include "crdt/or_set.hpp"
#include "crdt/registers.hpp"

namespace colony {
namespace {

class SessionApiTest : public ::testing::Test {
 protected:
  SessionApiTest()
      : cluster(ClusterConfig{}),
        node(cluster.add_edge(ClientMode::kClientCache, 0, 1)),
        session(node) {}

  Cluster cluster;
  EdgeNode& node;
  Session session;
};

TEST_F(SessionApiTest, Fig3StyleProgram) {
  // Mirrors the paper's example: increment a counter, then update a gmap
  // holding a register ("a" := 42) and a set ("e" += {1,2,3,4}) atomically.
  auto t1 = session.begin();
  session.increment(t1, {"app", "myCounter"}, 3);
  ASSERT_TRUE(session.commit(std::move(t1)).ok());

  auto t2 = session.begin();
  session.map_assign(t2, {"app", "myMap"}, "a", "42");
  for (const auto* e : {"1", "2", "3", "4"}) {
    session.map_add_to_set(t2, {"app", "myMap"}, "e", e);
  }
  ASSERT_TRUE(session.commit(std::move(t2)).ok());
  cluster.run_for(2 * kSecond);

  auto t3 = session.begin();
  std::vector<std::string> set_content;
  session.read_object(t3, {"app", "myMap"}, CrdtType::kGMap,
                      [&](Result<std::shared_ptr<Crdt>> r, ReadSource) {
                        ASSERT_TRUE(r.ok());
                        const auto* map =
                            dynamic_cast<const GMap*>(r.value().get());
                        ASSERT_NE(map, nullptr);
                        EXPECT_EQ(map->field_as<LwwRegister>("a")->value(),
                                  "42");
                        set_content = map->field_as<OrSet>("e")->elements();
                      });
  cluster.run_for(1 * kSecond);
  EXPECT_EQ(set_content, (std::vector<std::string>{"1", "2", "3", "4"}));
}

TEST_F(SessionApiTest, RegisterAssignLww) {
  auto txn = session.begin();
  session.assign(txn, {"app", "reg"}, "v1");
  session.assign(txn, {"app", "reg"}, "v2");
  ASSERT_TRUE(session.commit(std::move(txn)).ok());
  std::string value;
  auto t2 = session.begin();
  session.read_register(t2, {"app", "reg"},
                        [&](Result<std::string> r, ReadSource) {
                          ASSERT_TRUE(r.ok());
                          value = r.value();
                        });
  EXPECT_EQ(value, "v2");
}

TEST_F(SessionApiTest, SetAddRemove) {
  const ObjectKey key{"app", "set"};
  auto t1 = session.begin();
  session.add_to_set(t1, key, "a");
  session.add_to_set(t1, key, "b");
  ASSERT_TRUE(session.commit(std::move(t1)).ok());

  auto t2 = session.begin();
  session.remove_from_set(t2, key, "a");
  ASSERT_TRUE(session.commit(std::move(t2)).ok());

  std::vector<std::string> elements;
  auto t3 = session.begin();
  session.read_set(t3, key, [&](Result<std::vector<std::string>> r,
                                ReadSource) {
    ASSERT_TRUE(r.ok());
    elements = r.value();
  });
  EXPECT_EQ(elements, (std::vector<std::string>{"b"}));
}

TEST_F(SessionApiTest, SequenceAppendWithinTransactionChains) {
  const ObjectKey key{"app", "log"};
  auto txn = session.begin();
  session.append(txn, key, "one");
  session.append(txn, key, "two");
  session.append(txn, key, "three");
  ASSERT_TRUE(session.commit(std::move(txn)).ok());

  std::vector<std::string> values;
  auto t2 = session.begin();
  session.read_sequence(t2, key, [&](Result<std::vector<std::string>> r,
                                     ReadSource) {
    ASSERT_TRUE(r.ok());
    values = r.value();
  });
  EXPECT_EQ(values, (std::vector<std::string>{"one", "two", "three"}));
}

TEST_F(SessionApiTest, ReadOnlyCommitHasNoEffect) {
  auto txn = session.begin();
  const auto result = session.commit(std::move(txn));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().valid());  // no dot assigned
  EXPECT_EQ(node.unacked_count(), 0u);
}

TEST_F(SessionApiTest, CloudOnlyRejectsLocalCommit) {
  EdgeNode& cloud_node = cluster.add_edge(ClientMode::kCloudOnly, 0, 2);
  Session cloud_session(cloud_node);
  auto txn = cloud_session.begin();
  cloud_session.increment(txn, {"app", "c"}, 1);
  const auto result = cloud_session.commit(std::move(txn));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Error::Code::kInvalidArgument);
}

TEST_F(SessionApiTest, GrantViaSession) {
  auto txn = session.begin();
  session.grant(txn, {"app", 7, security::Permission::kRead});
  ASSERT_TRUE(session.commit(std::move(txn)).ok());
  cluster.run_for(2 * kSecond);
  const auto* acl = cluster.dc(0).acl();
  ASSERT_NE(acl, nullptr);
  EXPECT_TRUE(acl->check("app", 7, security::Permission::kRead));
}

}  // namespace
}  // namespace colony
