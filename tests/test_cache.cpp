#include "storage/cache.hpp"

#include <gtest/gtest.h>

namespace colony {
namespace {

ObjectKey key(int i) { return ObjectKey{"b", "k" + std::to_string(i)}; }

TEST(InterestSet, UnboundedNeverEvicts) {
  InterestSet set(0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(set.add(key(i)).has_value());
  }
  EXPECT_EQ(set.size(), 1000u);
}

TEST(InterestSet, EvictsLeastRecentlyUsed) {
  InterestSet set(2);
  EXPECT_FALSE(set.add(key(1)).has_value());
  EXPECT_FALSE(set.add(key(2)).has_value());
  const auto victim = set.add(key(3));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, key(1));
  EXPECT_FALSE(set.contains(key(1)));
  EXPECT_TRUE(set.contains(key(2)));
  EXPECT_TRUE(set.contains(key(3)));
}

TEST(InterestSet, TouchRefreshesRecency) {
  InterestSet set(2);
  set.add(key(1));
  set.add(key(2));
  set.touch(key(1));  // 2 becomes the LRU
  const auto victim = set.add(key(3));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, key(2));
}

TEST(InterestSet, ReAddRefreshesWithoutEviction) {
  InterestSet set(2);
  set.add(key(1));
  set.add(key(2));
  EXPECT_FALSE(set.add(key(1)).has_value());  // refresh, no growth
  const auto victim = set.add(key(3));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, key(2));
}

TEST(InterestSet, RemoveFreesSlot) {
  InterestSet set(2);
  set.add(key(1));
  set.add(key(2));
  set.remove(key(1));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_FALSE(set.add(key(3)).has_value());
}

TEST(InterestSet, RemoveAbsentIsNoop) {
  InterestSet set(2);
  set.remove(key(9));
  EXPECT_EQ(set.size(), 0u);
}

TEST(InterestSet, KeysMostRecentFirst) {
  InterestSet set(0);
  set.add(key(1));
  set.add(key(2));
  set.touch(key(1));
  const auto keys = set.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], key(1));
  EXPECT_EQ(keys[1], key(2));
}

}  // namespace
}  // namespace colony
