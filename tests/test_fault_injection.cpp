// Message duplication and reordering injection: the Network-level hooks,
// their counters, and the system-level guarantee that at-least-once
// delivery never becomes more-than-once application (DotTracker contract).
#include <gtest/gtest.h>

#include <vector>

#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"
#include "dc/shard.hpp"
#include "sim/network.hpp"

namespace colony {
namespace {

const ObjectKey kX{"app", "x"};

struct Recorder final : sim::Actor {
  Recorder(sim::Network& net, NodeId id) : Actor(net, id) {}
  std::vector<std::uint32_t> received;
  void handle(NodeId /*from*/, std::uint32_t kind,
              ByteView /*body*/) override {
    received.push_back(kind);
  }
};

TEST(FaultInjection, DuplicateRateDoublesDeliveryAndCounts) {
  sim::Scheduler sched;
  sim::Network net(sched, 1);
  Recorder a(net, 1), b(net, 2);
  net.connect(1, 2, sim::LatencyModel{1 * kMillisecond, 0});

  net.set_duplicate_rate(1.0);
  for (std::uint32_t i = 0; i < 10; ++i) net.send(1, 2, i, {});
  sched.run_all();

  EXPECT_EQ(net.messages_duplicated(), 10u);
  EXPECT_EQ(b.received.size(), 20u);
}

TEST(FaultInjection, ZeroRatesLeaveDeliveryUntouched) {
  sim::Scheduler sched;
  sim::Network net(sched, 1);
  Recorder a(net, 1), b(net, 2);
  net.connect(1, 2, sim::LatencyModel{1 * kMillisecond, 0});

  for (std::uint32_t i = 0; i < 5; ++i) net.send(1, 2, i, {});
  sched.run_all();

  EXPECT_EQ(net.messages_duplicated(), 0u);
  EXPECT_EQ(net.messages_reordered(), 0u);
  EXPECT_EQ(b.received.size(), 5u);
  // FIFO preserved.
  EXPECT_EQ(b.received, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(FaultInjection, ReorderInjectionBreaksFifoAndCounts) {
  sim::Scheduler sched;
  sim::Network net(sched, 1);
  Recorder a(net, 1), b(net, 2);
  // Zero jitter: without injection delivery would be strictly FIFO.
  net.connect(1, 2, sim::LatencyModel{1 * kMillisecond, 0});

  net.set_reorder_rate(1.0, 50 * kMillisecond);
  for (std::uint32_t i = 0; i < 40; ++i) net.send(1, 2, i, {});
  sched.run_all();

  EXPECT_EQ(net.messages_reordered(), 40u);
  ASSERT_EQ(b.received.size(), 40u);
  EXPECT_FALSE(std::is_sorted(b.received.begin(), b.received.end()))
      << "reorder injection left delivery in FIFO order";
}

TEST(FaultInjection, ReorderFilterScopesInjectionToMatchingLinks) {
  sim::Scheduler sched;
  sim::Network net(sched, 1);
  Recorder a(net, 1), b(net, 2), c(net, 3);
  net.connect(1, 2, sim::LatencyModel{1 * kMillisecond, 0});
  net.connect(1, 3, sim::LatencyModel{1 * kMillisecond, 0});

  net.set_reorder_rate(1.0, 50 * kMillisecond);
  net.set_reorder_filter(
      [](NodeId /*from*/, NodeId to) { return to == 3; });
  for (std::uint32_t i = 0; i < 20; ++i) {
    net.send(1, 2, i, {});
    net.send(1, 3, i, {});
  }
  sched.run_all();

  EXPECT_EQ(net.messages_reordered(), 20u);  // only the 1->3 sends
  ASSERT_EQ(b.received.size(), 20u);
  EXPECT_TRUE(std::is_sorted(b.received.begin(), b.received.end()))
      << "filtered-out link was reordered";
}

TEST(FaultInjection, ShardAppliesDuplicatedUpdateOnce) {
  sim::Scheduler sched;
  sim::Network net(sched, 1);
  ShardServer shard(net, 2);
  Recorder sender(net, 3);
  net.connect(2, 3, sim::LatencyModel{1 * kMillisecond, 0});

  proto::ShardApplyMsg msg;
  msg.seq = 1;
  msg.dot = Dot{9, 1};
  msg.ops.push_back(
      OpRecord{{"b", "x"}, CrdtType::kPnCounter, PnCounter::prepare_add(5)});

  net.set_duplicate_rate(1.0);  // every send delivered twice
  net.send(3, 2, proto::kShardApply, codec::to_bytes(msg));
  sched.run_until(sched.now() + kSecond);

  EXPECT_EQ(net.messages_duplicated(), 1u);
  const auto* counter =
      dynamic_cast<const PnCounter*>(shard.object({"b", "x"}));
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value(), 5) << "duplicated kShardApply applied twice";
}

// End to end: with every message duplicated, committed transactions are
// applied exactly once everywhere — the dot filters at DCs, edges, and
// shards drop the second copy.
TEST(FaultInjection, DuplicatedTransactionDeliveryIsFilteredByDotTracker) {
  ClusterConfig cfg;
  cfg.num_dcs = 2;
  cfg.k_stability = 1;
  Cluster cluster(cfg);
  EdgeNode& writer = cluster.add_edge(ClientMode::kClientCache, 0, 1);
  EdgeNode& reader = cluster.add_edge(ClientMode::kClientCache, 1, 2);
  Session ws(writer), rs(reader);
  rs.subscribe({kX}, [](Result<void>) {});
  cluster.run_for(kSecond);

  cluster.network().set_duplicate_rate(1.0);
  std::int64_t expected = 0;
  for (int i = 0; i < 8; ++i) {
    auto txn = ws.begin();
    ws.increment(txn, kX, 3);
    ASSERT_TRUE(ws.commit(std::move(txn)).ok());
    expected += 3;
    cluster.run_for(500 * kMillisecond);
  }
  cluster.network().set_duplicate_rate(0.0);
  ASSERT_TRUE(cluster.quiesce(30 * kSecond));
  EXPECT_GT(cluster.network().messages_duplicated(), 0u);

  for (DcId d = 0; d < cluster.num_dcs(); ++d) {
    const auto* c =
        dynamic_cast<const PnCounter*>(cluster.dc(d).store().current(kX));
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value(), expected) << "dc" << d << " saw a duplicate apply";
  }
  ASSERT_TRUE(reader.is_cached(kX));
  const auto* c = dynamic_cast<const PnCounter*>(reader.cached(kX));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), expected) << "reader edge saw a duplicate apply";
}

}  // namespace
}  // namespace colony
