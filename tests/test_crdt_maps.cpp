#include "crdt/maps.hpp"

#include <gtest/gtest.h>

#include "crdt/counter.hpp"
#include "crdt/or_set.hpp"
#include "crdt/registers.hpp"

namespace colony {
namespace {

TEST(GMap, NestedRegisterAndSet) {
  GMap m;
  m.apply(GMap::prepare_update(
      "a", CrdtType::kLwwRegister,
      LwwRegister::prepare_assign("42", Arb{1, {1, 1}})));
  m.apply(GMap::prepare_update("e", CrdtType::kOrSet,
                               OrSet::prepare_add("1", Dot{1, 2})));
  m.apply(GMap::prepare_update("e", CrdtType::kOrSet,
                               OrSet::prepare_add("2", Dot{1, 3})));

  const auto* reg = m.field_as<LwwRegister>("a");
  ASSERT_NE(reg, nullptr);
  EXPECT_EQ(reg->value(), "42");
  const auto* set = m.field_as<OrSet>("e");
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->elements(), (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(m.fields(), (std::vector<std::string>{"a", "e"}));
}

TEST(GMap, AbsentFieldIsNull) {
  GMap m;
  EXPECT_EQ(m.field("missing"), nullptr);
  EXPECT_EQ(m.field_as<OrSet>("missing"), nullptr);
}

TEST(GMapDeath, TypeClashAborts) {
  GMap m;
  m.apply(GMap::prepare_update("x", CrdtType::kPnCounter,
                               PnCounter::prepare_add(1)));
  EXPECT_DEATH(m.apply(GMap::prepare_update(
                   "x", CrdtType::kOrSet,
                   OrSet::prepare_add("e", Dot{1, 1}))),
               "mismatched CRDT type");
}

TEST(GMap, SnapshotRoundTripDeep) {
  GMap m;
  m.apply(GMap::prepare_update("c", CrdtType::kPnCounter,
                               PnCounter::prepare_add(7)));
  GMap n;
  n.restore(m.snapshot());
  EXPECT_EQ(n.field_as<PnCounter>("c")->value(), 7);
}

TEST(GMap, CloneIsDeep) {
  GMap m;
  m.apply(GMap::prepare_update("c", CrdtType::kPnCounter,
                               PnCounter::prepare_add(1)));
  auto copy_ptr = m.clone();
  auto* copy = dynamic_cast<GMap*>(copy_ptr.get());
  m.apply(GMap::prepare_update("c", CrdtType::kPnCounter,
                               PnCounter::prepare_add(1)));
  EXPECT_EQ(copy->field_as<PnCounter>("c")->value(), 1);
  EXPECT_EQ(m.field_as<PnCounter>("c")->value(), 2);
}

TEST(AwMap, UpdateMakesPresent) {
  AwMap m;
  m.apply(AwMap::prepare_update("f", CrdtType::kPnCounter,
                                PnCounter::prepare_add(1), Dot{1, 1}));
  EXPECT_TRUE(m.present("f"));
  EXPECT_EQ(m.field_as<PnCounter>("f")->value(), 1);
}

TEST(AwMap, RemoveHidesField) {
  AwMap m;
  m.apply(AwMap::prepare_update("f", CrdtType::kPnCounter,
                                PnCounter::prepare_add(1), Dot{1, 1}));
  m.apply(m.prepare_remove("f"));
  EXPECT_FALSE(m.present("f"));
  EXPECT_EQ(m.field("f"), nullptr);
  EXPECT_TRUE(m.fields().empty());
}

TEST(AwMap, ConcurrentUpdateWinsOverRemove) {
  AwMap base;
  const auto up1 = AwMap::prepare_update("f", CrdtType::kPnCounter,
                                         PnCounter::prepare_add(1), Dot{1, 1});
  base.apply(up1);
  const auto remove = base.prepare_remove("f");  // observed tag 1:1 only
  const auto up2 = AwMap::prepare_update("f", CrdtType::kPnCounter,
                                         PnCounter::prepare_add(2), Dot{2, 1});
  AwMap m;
  m.apply(up1);
  m.apply(up2);
  m.apply(remove);
  EXPECT_TRUE(m.present("f"));  // concurrent update survives (add-wins)
  // Nested state keeps both increments (keep-value semantics).
  EXPECT_EQ(m.field_as<PnCounter>("f")->value(), 3);
}

TEST(AwMap, SnapshotRoundTrip) {
  AwMap m;
  m.apply(AwMap::prepare_update("f", CrdtType::kPnCounter,
                                PnCounter::prepare_add(5), Dot{1, 1}));
  AwMap n;
  n.restore(m.snapshot());
  EXPECT_TRUE(n.present("f"));
  EXPECT_EQ(n.field_as<PnCounter>("f")->value(), 5);
}

}  // namespace
}  // namespace colony
