// ShardServer unit tests: ClockSI deferred reads and the 2PC skeleton.
#include <gtest/gtest.h>

#include "crdt/counter.hpp"
#include "crdt/or_set.hpp"
#include "dc/shard.hpp"

namespace colony {
namespace {

class ShardTest : public ::testing::Test {
 protected:
  ShardTest() : net(sched, 1), shard(net, 2), client(net, 3) {
    net.connect(2, 3, sim::LatencyModel{1 * kMillisecond, 0});
  }

  struct Client final : sim::RpcActor {
    Client(sim::Network& net, NodeId id) : RpcActor(net, id) {}
    void on_message(NodeId, std::uint32_t, ByteView) override {}
    void on_request(NodeId, std::uint32_t, ByteView,
                    ReplyFn reply) override {
      reply(Error{Error::Code::kInvalidArgument, "not a server"});
    }
  };

  void apply(Timestamp seq, Dot dot, std::int64_t delta) {
    proto::ShardApplyMsg msg;
    msg.seq = seq;
    msg.dot = dot;
    msg.ops.push_back(OpRecord{{"b", "x"}, CrdtType::kPnCounter,
                               PnCounter::prepare_add(delta)});
    net.send(3, 2, proto::kShardApply, codec::to_bytes(msg));
    // Bounded drain: run_all would also fire pending RPC-timeout events
    // scheduled far in the future.
    sched.run_until(sched.now() + 10 * kMillisecond);
  }

  sim::Scheduler sched;
  sim::Network net;
  ShardServer shard;
  Client client;
};

TEST_F(ShardTest, AppliesOpsAndAdvancesSeq) {
  apply(1, Dot{9, 1}, 5);
  EXPECT_EQ(shard.applied_seq(), 1u);
  EXPECT_EQ(shard.object_count(), 1u);
  apply(2, Dot{9, 2}, 3);
  EXPECT_EQ(shard.applied_seq(), 2u);
}

TEST_F(ShardTest, ReadReturnsValue) {
  apply(1, Dot{9, 1}, 7);
  std::int64_t value = -1;
  client.call(2, proto::kShardRead, proto::ShardReadReq{{"b", "x"}, 1},
              [&](Result<Bytes> r) {
                ASSERT_TRUE(r.ok());
                const auto resp =
                    codec::from_bytes<proto::ShardReadResp>(r.value());
                ASSERT_TRUE(resp.found);
                PnCounter c;
                c.restore(resp.state);
                value = c.value();
              });
  sched.run_all();
  EXPECT_EQ(value, 7);
}

TEST_F(ShardTest, ReadOfUnknownKeyNotFound) {
  bool found = true;
  client.call(2, proto::kShardRead, proto::ShardReadReq{{"b", "none"}, 0},
              [&](Result<Bytes> r) {
                ASSERT_TRUE(r.ok());
                found = codec::from_bytes<proto::ShardReadResp>(r.value())
                            .found;
              });
  sched.run_all();
  EXPECT_FALSE(found);
}

TEST_F(ShardTest, ClockSiReadWaitsForSnapshot) {
  apply(1, Dot{9, 1}, 1);
  // Read at snapshot seq 3: must not answer until the shard catches up.
  std::int64_t value = -1;
  SimTime answered_at = 0;
  client.call(2, proto::kShardRead, proto::ShardReadReq{{"b", "x"}, 3},
              [&](Result<Bytes> r) {
                ASSERT_TRUE(r.ok());
                const auto resp =
                    codec::from_bytes<proto::ShardReadResp>(r.value());
                PnCounter c;
                c.restore(resp.state);
                value = c.value();
                answered_at = sched.now();
              },
              /*timeout=*/60 * kSecond);  // run_all drains shorter timeouts
  sched.run_until(10 * kMillisecond);
  EXPECT_EQ(value, -1);  // still deferred

  apply(2, Dot{9, 2}, 1);
  EXPECT_EQ(value, -1);
  const SimTime before = sched.now();
  apply(3, Dot{9, 3}, 1);  // catches up; reply released
  sched.run_until(sched.now() + 100 * kMillisecond);
  EXPECT_EQ(value, 3);
  EXPECT_GE(answered_at, before);
}

TEST_F(ShardTest, PrepareVotesCommitAndBuffers) {
  bool vote = false;
  proto::ShardPrepareReq prep;
  prep.txn_id = 42;
  prep.ops.push_back(OpRecord{{"b", "x"}, CrdtType::kPnCounter,
                              PnCounter::prepare_add(1)});
  client.call(2, proto::kShardPrepare, prep, [&](Result<Bytes> r) {
    ASSERT_TRUE(r.ok());
    vote = codec::from_bytes<proto::ShardPrepareResp>(r.value())
               .vote_commit;
  });
  sched.run_all();
  EXPECT_TRUE(vote);
  // Data is not applied by prepare (it arrives via kShardApply).
  EXPECT_EQ(shard.object_count(), 0u);
  // Commit releases the buffer without crashing.
  net.send(3, 2, proto::kShardCommit,
           codec::to_bytes(proto::ShardCommitMsg{42, true, 1, Dot{9, 1}}));
  sched.run_all();
}

TEST_F(ShardTest, PrepareVotesAbortOnTypeClash) {
  apply(1, Dot{9, 1}, 1);  // "x" exists as a counter
  bool vote = true;
  proto::ShardPrepareReq prep;
  prep.txn_id = 43;
  prep.ops.push_back(OpRecord{{"b", "x"}, CrdtType::kGSet,
                              GSet::prepare_add("boom")});
  client.call(2, proto::kShardPrepare, prep, [&](Result<Bytes> r) {
    ASSERT_TRUE(r.ok());
    vote = codec::from_bytes<proto::ShardPrepareResp>(r.value())
               .vote_commit;
  });
  sched.run_all();
  EXPECT_FALSE(vote);
}

}  // namespace
}  // namespace colony
