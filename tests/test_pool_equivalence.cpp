// Pool-size equivalence sweep: determinism beneath the event boundary
// (DESIGN.md §10) means one seeded history must converge to byte-identical
// state at EVERY apply-pool size — the worker count may change scheduling,
// never outcomes.
//
// Two layers of evidence:
//   * An engine-level sweep (100+ seeds, fast): each seed generates a
//     shuffled multi-DC history — causal chains with cross-DC snapshot
//     edges, out-of-order symbolic resolutions, pending deps, read-my-writes
//     apply_local, ACL masking — and replays it through a fresh
//     VisibilityEngine at pool sizes {inline, 1, 2, 4}, byte-comparing the
//     journal-store encoding, the engine state encoding, and the
//     visibility-log digest.
//   * A full-cluster chaos sweep (heavier, fewer seeds by default): the
//     same fault schedule + workload at apply_workers {1, 2, 4}, comparing
//     the converged digest, the commit count, and every DC's encode_durable
//     bytes — the exact image crash-recovery replays from.
//
// Seed range overrides (read when the binary runs):
//   COLONY_POOL_EQ_SEED_BASE     first engine-level seed (default 1)
//   COLONY_POOL_EQ_SEEDS         engine-level seed count (default 100)
//   COLONY_POOL_CHAOS_SEED_BASE  first chaos seed (default 1)
//   COLONY_POOL_CHAOS_SEEDS     chaos seed count (default 100)
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "chaos_harness.hpp"
#include "core/visibility.hpp"
#include "crdt/counter.hpp"
#include "crdt/or_set.hpp"
#include "storage/apply_pool.hpp"
#include "util/rng.hpp"

namespace colony {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const std::uint64_t parsed = std::strtoull(v, nullptr, 10);
  return parsed == 0 ? fallback : parsed;
}

std::vector<std::uint64_t> seeds_from_env(const char* base_name,
                                          const char* count_name,
                                          std::uint64_t default_count) {
  const std::uint64_t base = env_u64(base_name, 1);
  const std::uint64_t count = env_u64(count_name, default_count);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) seeds.push_back(base + i);
  return seeds;
}

// ---------------------------------------------------------------------------
// Engine-level sweep.
// ---------------------------------------------------------------------------

/// Everything a run can externalize; two equivalent runs must match in all
/// three fields byte-for-byte.
struct RunImage {
  Bytes store;
  Bytes engine;
  std::uint64_t log_digest = 0;
};

/// Replay one seeded history through a fresh engine. The Rng is consumed
/// identically on every call — the pool is invisible to generation and
/// delivery, so any divergence in the returned image is the pool's fault.
RunImage run_history(std::uint64_t seed, ApplyPool* pool) {
  constexpr std::size_t kDcs = 3;
  constexpr Timestamp kChainLen = 20;

  Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
  TxnStore txns;
  JournalStore store;
  if (pool != nullptr) store.set_apply_pool(pool);
  VisibilityEngine engine(txns, store, kDcs);
  engine.set_security_check([](const Transaction& txn) {
    return txn.meta.dot.counter % 5 != 0;  // periodic ACL veto
  });

  struct Event {
    enum Kind { kIngest, kResolve } kind;
    Transaction txn;   // kIngest
    Dot dot;           // kResolve
    DcId dc = 0;       // kResolve
    Timestamp ts = 0;  // kResolve
  };
  std::vector<Event> events;
  std::vector<Event> resolutions;

  // Interleaved generation keeps the causal graph acyclic (snapshot edges
  // only point at already-generated txns) — see test_drain_equivalence.
  std::vector<Timestamp> generated(kDcs, 0);
  while (true) {
    std::vector<DcId> open;
    for (DcId dc = 0; dc < kDcs; ++dc) {
      if (generated[dc] < kChainLen) open.push_back(dc);
    }
    if (open.empty()) break;
    const DcId dc = open[rng.below(open.size())];
    const Timestamp ts = ++generated[dc];
    VersionVector snap(kDcs);
    snap.set(dc, ts - 1);
    for (DcId other = 0; other < kDcs; ++other) {
      if (other != dc && generated[other] > 0 && rng.chance(0.3)) {
        snap.set(other, rng.between(1, generated[other]));
      }
    }
    Transaction txn;
    txn.meta.dot = Dot{100 + dc, ts};
    txn.meta.origin = 100 + dc;
    txn.meta.snapshot = std::move(snap);
    txn.meta.mark_accepted(dc, ts);
    // Multi-op body over a small hot key set: counters collide across DCs
    // (worker-order-sensitive if the single-writer partition were broken)
    // and OR-Set journals pin per-key FIFO order in the encoding.
    txn.ops.push_back(
        OpRecord{{"eq", "c" + std::to_string((ts + dc) % 4)},
                 CrdtType::kPnCounter,
                 PnCounter::prepare_add(static_cast<std::int64_t>(ts % 7))});
    txn.ops.push_back(OpRecord{
        {"eq", "s" + std::to_string((ts * 3 + dc) % 8)}, CrdtType::kOrSet,
        OrSet::prepare_add("e" + std::to_string(ts) + "-" + std::to_string(dc),
                           txn.meta.dot)});
    if (rng.chance(0.25) && ts > 1) {
      txn.meta.pending_deps.push_back(Dot{100 + dc, ts - 1});
    }
    if (rng.chance(0.35)) {
      txn.meta.commit = VersionVector{};
      txn.meta.accepted_mask = 0;
      txn.meta.concrete = false;
      Event res;
      res.kind = Event::kResolve;
      res.dot = txn.meta.dot;
      res.dc = dc;
      res.ts = ts;
      events.push_back(res);
      resolutions.push_back(res);
    }
    Event ing;
    ing.kind = Event::kIngest;
    ing.txn = std::move(txn);
    events.push_back(std::move(ing));
  }

  for (std::size_t i = events.size(); i > 1; --i) {
    std::swap(events[i - 1], events[rng.below(i)]);
  }

  for (Event& ev : events) {
    if (ev.kind == Event::kIngest) {
      const Dot dot = ev.txn.meta.dot;
      const bool symbolic = !ev.txn.meta.concrete;
      engine.ingest(std::move(ev.txn));
      if (symbolic && rng.chance(0.3)) {
        engine.apply_local(dot);  // read-my-writes mid-history
      }
    } else {
      engine.resolve(ev.dot, ev.dc, ev.ts);
    }
  }

  // Mid-run ACL flip: recompute_masks() rebuilds CRDT values from journals,
  // a whole-store reader that must observe every pending pooled apply.
  engine.set_security_check([](const Transaction& txn) {
    return txn.meta.dot.counter % 7 != 0;
  });
  engine.recompute_masks();

  for (const Event& res : resolutions) {
    engine.resolve(res.dot, res.dc, res.ts);
  }
  engine.drain();
  EXPECT_EQ(engine.pending_count(), 0u) << "seed " << seed;
  EXPECT_FALSE(store.applies_pending()) << "seed " << seed;

  RunImage image;
  Encoder store_enc;
  store.encode(store_enc);
  image.store = store_enc.take();
  Encoder engine_enc;
  engine.encode_state(engine_enc);
  image.engine = engine_enc.take();
  image.log_digest = engine.log().digest();
  return image;
}

class PoolEquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PoolEquivalenceSweep, EveryPoolSizeMatchesInline) {
  const std::uint64_t seed = GetParam();
  const RunImage inline_image = run_history(seed, nullptr);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    ApplyPool pool(workers);
    const RunImage pooled = run_history(seed, &pool);
    EXPECT_GT(pool.submitted(), 0u)
        << "seed " << seed << ": pool of " << workers << " never used";
    EXPECT_EQ(inline_image.store, pooled.store)
        << "seed " << seed << " store bytes diverged at " << workers
        << " workers";
    EXPECT_EQ(inline_image.engine, pooled.engine)
        << "seed " << seed << " engine state diverged at " << workers
        << " workers";
    EXPECT_EQ(inline_image.log_digest, pooled.log_digest)
        << "seed " << seed << " visibility-log order diverged at " << workers
        << " workers";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PoolEquivalenceSweep,
    ::testing::ValuesIn(seeds_from_env("COLONY_POOL_EQ_SEED_BASE",
                                       "COLONY_POOL_EQ_SEEDS", 100)),
    [](const auto& info) { return "seed" + std::to_string(info.param); });

// ---------------------------------------------------------------------------
// Full-cluster chaos sweep.
// ---------------------------------------------------------------------------

struct ClusterImage {
  std::string digest;
  std::uint64_t commits = 0;
  std::vector<Bytes> durable;  // encode_durable per DC, the recovery image
};

ClusterImage observe_cluster(std::uint64_t seed, std::size_t workers) {
  chaos_test::HarnessConfig cfg;
  cfg.seed = seed;
  cfg.apply_workers = workers;
  // Each seed runs three full clusters; a slightly shorter schedule than
  // the main chaos sweep keeps 100 seeds affordable (coverage comes from
  // seed count, not per-seed duration).
  cfg.chaos.epochs = 2;
  chaos_test::Harness harness(cfg);
  const chaos_test::RunResult result = harness.run();
  EXPECT_TRUE(result.ok()) << "seed " << seed << " at " << workers
                           << " workers:\n"
                           << result.report.to_string();
  ClusterImage image;
  image.digest = result.final_digest;
  image.commits = result.commits;
  for (DcId d = 0; d < static_cast<DcId>(cfg.num_dcs); ++d) {
    image.durable.push_back(harness.cluster().dc(d).durable_bytes());
  }
  return image;
}

class PoolChaosEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PoolChaosEquivalence, ChaosRunMatchesAcrossPoolSizes) {
  const std::uint64_t seed = GetParam();
  const ClusterImage base = observe_cluster(seed, 1);
  EXPECT_GT(base.commits, 0u) << "seed " << seed << " produced no commits";
  for (const std::size_t workers : {2u, 4u}) {
    const ClusterImage got = observe_cluster(seed, workers);
    EXPECT_EQ(base.digest, got.digest)
        << "seed " << seed << " converged digest diverged at " << workers
        << " workers";
    EXPECT_EQ(base.commits, got.commits)
        << "seed " << seed << " commit count diverged at " << workers
        << " workers";
    ASSERT_EQ(base.durable.size(), got.durable.size());
    for (std::size_t d = 0; d < base.durable.size(); ++d) {
      EXPECT_EQ(base.durable[d], got.durable[d])
          << "seed " << seed << " dc" << d << " durable bytes diverged at "
          << workers << " workers";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PoolChaosEquivalence,
    ::testing::ValuesIn(seeds_from_env("COLONY_POOL_CHAOS_SEED_BASE",
                                       "COLONY_POOL_CHAOS_SEEDS", 100)),
    [](const auto& info) { return "seed" + std::to_string(info.param); });

}  // namespace
}  // namespace colony
