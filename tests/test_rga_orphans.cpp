// RGA orphan buffering: inserts/removes whose parent element is locally
// unknown (a cache seeded from a snapshot older than already-observed
// operations) are buffered invisibly and attach when the parent arrives.
#include <gtest/gtest.h>

#include "crdt/rga.hpp"

namespace colony {
namespace {

Arb arb(Timestamp ts, NodeId node, std::uint64_t counter) {
  return Arb{ts, Dot{node, counter}};
}

TEST(RgaOrphans, OrphanInsertInvisibleUntilParentArrives) {
  Rga seq;
  // Child references parent (1:1) that has not been applied here.
  seq.apply(Rga::prepare_insert(Dot{1, 1}, "child", arb(2, 1, 2)));
  EXPECT_TRUE(seq.values().empty());
  EXPECT_EQ(seq.orphan_count(), 1u);

  seq.apply(Rga::prepare_insert(Dot{}, "parent", arb(1, 1, 1)));
  EXPECT_EQ(seq.values(), (std::vector<std::string>{"parent", "child"}));
  EXPECT_EQ(seq.orphan_count(), 0u);
}

TEST(RgaOrphans, OrphanChainsAttachTransitively) {
  Rga seq;
  seq.apply(Rga::prepare_insert(Dot{1, 2}, "c", arb(3, 1, 3)));  // after b
  seq.apply(Rga::prepare_insert(Dot{1, 1}, "b", arb(2, 1, 2)));  // after a
  EXPECT_EQ(seq.orphan_count(), 2u);
  seq.apply(Rga::prepare_insert(Dot{}, "a", arb(1, 1, 1)));
  EXPECT_EQ(seq.values(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(seq.orphan_count(), 0u);
}

TEST(RgaOrphans, OrphanRemoveAppliesOnArrival) {
  Rga seq;
  seq.apply(Rga::prepare_remove(Dot{1, 1}));  // element unknown yet
  EXPECT_EQ(seq.orphan_count(), 1u);
  seq.apply(Rga::prepare_insert(Dot{}, "doomed", arb(1, 1, 1)));
  EXPECT_TRUE(seq.values().empty());  // tombstoned on arrival
  EXPECT_EQ(seq.size(), 0u);
  EXPECT_EQ(seq.orphan_count(), 0u);
}

TEST(RgaOrphans, SnapshotCarriesOrphans) {
  Rga seq;
  seq.apply(Rga::prepare_insert(Dot{1, 1}, "child", arb(2, 1, 2)));
  seq.apply(Rga::prepare_remove(Dot{9, 9}));
  Rga restored;
  restored.restore(seq.snapshot());
  EXPECT_EQ(restored.orphan_count(), 2u);
  // The buffered child still attaches after restore.
  restored.apply(Rga::prepare_insert(Dot{}, "parent", arb(1, 1, 1)));
  EXPECT_EQ(restored.values(),
            (std::vector<std::string>{"parent", "child"}));
}

TEST(RgaOrphans, CloneCarriesOrphans) {
  Rga seq;
  seq.apply(Rga::prepare_insert(Dot{1, 1}, "child", arb(2, 1, 2)));
  auto clone_ptr = seq.clone();
  auto* clone = dynamic_cast<Rga*>(clone_ptr.get());
  clone->apply(Rga::prepare_insert(Dot{}, "parent", arb(1, 1, 1)));
  EXPECT_EQ(clone->values(), (std::vector<std::string>{"parent", "child"}));
  EXPECT_EQ(seq.orphan_count(), 1u);  // original untouched
}

TEST(RgaOrphans, ConvergesRegardlessOfOrphanOrder) {
  const auto parent_op = Rga::prepare_insert(Dot{}, "p", arb(1, 1, 1));
  const auto child_op = Rga::prepare_insert(Dot{1, 1}, "c", arb(2, 2, 1));
  const auto sibling_op = Rga::prepare_insert(Dot{1, 1}, "s", arb(3, 3, 1));
  Rga x, y;
  x.apply(parent_op); x.apply(child_op); x.apply(sibling_op);
  y.apply(sibling_op); y.apply(child_op); y.apply(parent_op);
  EXPECT_EQ(x.values(), y.values());
  EXPECT_EQ(x.snapshot(), y.snapshot());
}

}  // namespace
}  // namespace colony
