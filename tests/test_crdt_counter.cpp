#include "crdt/counter.hpp"

#include <gtest/gtest.h>

namespace colony {
namespace {

TEST(GCounter, IncrementAccumulates) {
  GCounter c;
  c.apply(GCounter::prepare_increment(3));
  c.apply(GCounter::prepare_increment(0));
  c.apply(GCounter::prepare_increment(4));
  EXPECT_EQ(c.value(), 7);
}

TEST(GCounterDeath, RejectsNegativePrepare) {
  EXPECT_DEATH(GCounter::prepare_increment(-1), "non-negative");
}

TEST(GCounter, SnapshotRoundTrip) {
  GCounter c;
  c.apply(GCounter::prepare_increment(11));
  GCounter d;
  d.restore(c.snapshot());
  EXPECT_EQ(d.value(), 11);
}

TEST(GCounter, CloneIsIndependent) {
  GCounter c;
  c.apply(GCounter::prepare_increment(1));
  auto copy = c.clone();
  c.apply(GCounter::prepare_increment(1));
  EXPECT_EQ(dynamic_cast<GCounter*>(copy.get())->value(), 1);
  EXPECT_EQ(c.value(), 2);
}

TEST(PnCounter, MixedSignDeltas) {
  PnCounter c;
  c.apply(PnCounter::prepare_add(10));
  c.apply(PnCounter::prepare_add(-4));
  c.apply(PnCounter::prepare_add(-7));
  EXPECT_EQ(c.value(), -1);
  EXPECT_EQ(c.increments(), 10);
  EXPECT_EQ(c.decrements(), 11);
}

TEST(PnCounter, OpsCommute) {
  const auto a = PnCounter::prepare_add(5);
  const auto b = PnCounter::prepare_add(-3);
  const auto c = PnCounter::prepare_add(100);
  PnCounter x, y;
  x.apply(a); x.apply(b); x.apply(c);
  y.apply(c); y.apply(a); y.apply(b);
  EXPECT_EQ(x.value(), y.value());
}

TEST(PnCounter, SnapshotPreservesBothSides) {
  PnCounter c;
  c.apply(PnCounter::prepare_add(5));
  c.apply(PnCounter::prepare_add(-2));
  PnCounter d;
  d.restore(c.snapshot());
  EXPECT_EQ(d.increments(), 5);
  EXPECT_EQ(d.decrements(), 2);
}

class CounterParamTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CounterParamTest, ValueMatchesDelta) {
  PnCounter c;
  c.apply(PnCounter::prepare_add(GetParam()));
  EXPECT_EQ(c.value(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Deltas, CounterParamTest,
                         ::testing::Values(-1000000, -1, 0, 1, 42,
                                           1000000000LL));

}  // namespace
}  // namespace colony
