// Drain-scheduler equivalence: the indexed wake-list scheduler must compute
// exactly the visibility relation of the fixpoint reference (DESIGN.md §8).
//
// Two layers of evidence:
//   * A randomized sweep (100+ seeds): each seed drives one primary engine
//     in kIndexed mode carrying a kFixpointReference shadow fed the same
//     event stream — shuffled multi-DC ingest, out-of-order resolutions,
//     pending deps, read-my-writes apply_local, ACL mask flips — and
//     asserts shadow_matches() (identical applied set, masked set, state
//     vector, pending set) throughout and at quiescence.
//   * Deterministic wake-guard unit tests, one per guard class: own commit
//     symbolic, dep unknown (admit()), state-vector threshold, within-batch
//     causal order, masked-index rebuild, and mid-run set_drain_mode
//     switches.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/visibility.hpp"
#include "crdt/counter.hpp"
#include "util/rng.hpp"

namespace colony {
namespace {

using DrainMode = VisibilityEngine::DrainMode;

Transaction chain_txn(DcId dc, Timestamp ts, VersionVector snapshot,
                      const std::string& key, std::int64_t delta = 1) {
  Transaction txn;
  txn.meta.dot = Dot{100 + dc, ts};
  txn.meta.origin = 100 + dc;
  txn.meta.snapshot = std::move(snapshot);
  txn.meta.mark_accepted(dc, ts);
  txn.ops.push_back(OpRecord{{"b", key}, CrdtType::kPnCounter,
                             PnCounter::prepare_add(delta)});
  return txn;
}

/// RAII: enable the reference shadow for engines constructed in scope.
struct ShadowScope {
  ShadowScope() { VisibilityEngine::set_shadow_default(true); }
  ~ShadowScope() { VisibilityEngine::set_shadow_default(false); }
};

// ---------------------------------------------------------------------------
// Randomized sweep.
// ---------------------------------------------------------------------------

/// One seeded run: generate per-DC causal chains with cross-DC snapshot
/// edges, symbolic commits, pending deps and transitive masking; deliver in
/// a shuffled order with resolutions interleaved; verify the shadow agrees
/// after every step and that everything drains at the end.
void run_equivalence_seed(std::uint64_t seed) {
  constexpr std::size_t kDcs = 3;
  constexpr Timestamp kChainLen = 24;

  Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
  ShadowScope shadow_on;
  TxnStore txns;
  JournalStore store;
  VisibilityEngine engine(txns, store, kDcs);
  ASSERT_NE(engine.shadow(), nullptr);

  // Every 5th counter value is vetoed; key overlap and same-origin edges
  // then drag causal dependants into the mask transitively — on both sides.
  engine.set_security_check([](const Transaction& txn) {
    return txn.meta.dot.counter % 5 != 0;
  });

  struct Event {
    enum Kind { kIngest, kResolve } kind;
    Transaction txn;   // kIngest
    Dot dot;           // kResolve
    DcId dc = 0;       // kResolve
    Timestamp ts = 0;  // kResolve
  };
  std::vector<Event> events;
  std::vector<Event> resolutions;  // replayed at cleanup so none is lost

  // Generate the history in one interleaved total order: a txn's cross-DC
  // snapshot edges may only reference txns generated before it, so the
  // causal graph is acyclic — exactly what real executions produce (a
  // snapshot reflects state some replica actually observed). Independent
  // random edges could manufacture cyclic wait-for configurations that
  // never drain.
  std::vector<Timestamp> generated(kDcs, 0);
  while (true) {
    std::vector<DcId> open;
    for (DcId dc = 0; dc < kDcs; ++dc) {
      if (generated[dc] < kChainLen) open.push_back(dc);
    }
    if (open.empty()) break;
    const DcId dc = open[rng.below(open.size())];
    const Timestamp ts = ++generated[dc];
    {
      VersionVector snap(kDcs);
      snap.set(dc, ts - 1);  // own-chain predecessor
      for (DcId other = 0; other < kDcs; ++other) {
        if (other != dc && generated[other] > 0 && rng.chance(0.3)) {
          // Cross-DC causal edge to an already-generated point.
          snap.set(other, rng.between(1, generated[other]));
        }
      }
      Transaction txn = chain_txn(
          dc, ts, std::move(snap),
          std::string("k") + static_cast<char>('a' + (ts + dc) % 6));
      if (rng.chance(0.25) && ts > 1) {
        // Name the predecessor as an explicit pending dep: its commit must
        // be concrete before the effective snapshot resolves.
        txn.meta.pending_deps.push_back(Dot{100 + dc, ts - 1});
      }
      if (rng.chance(0.35)) {
        // Symbolic at ingest: the commit timestamp arrives as a separate
        // resolution event, possibly well out of order.
        txn.meta.commit = VersionVector{};
        txn.meta.accepted_mask = 0;
        txn.meta.concrete = false;
        Event res;
        res.kind = Event::kResolve;
        res.dot = txn.meta.dot;
        res.dc = dc;
        res.ts = ts;
        events.push_back(res);
        resolutions.push_back(res);
      }
      Event ing;
      ing.kind = Event::kIngest;
      ing.txn = std::move(txn);
      events.push_back(std::move(ing));
    }
  }

  // Delivery is shuffled below, so the generation interleaving only shapes
  // the causal graph, not the arrival order.

  // Fisher-Yates over the whole stream: resolutions can precede their
  // ingest (resolve() drops them; the cleanup replay below re-issues).
  for (std::size_t i = events.size(); i > 1; --i) {
    std::swap(events[i - 1], events[rng.below(i)]);
  }

  std::string why;
  std::size_t step = 0;
  for (Event& ev : events) {
    if (ev.kind == Event::kIngest) {
      const Dot dot = ev.txn.meta.dot;
      const bool symbolic = !ev.txn.meta.concrete;
      engine.ingest(std::move(ev.txn));
      if (symbolic && rng.chance(0.3)) {
        engine.apply_local(dot);  // read-my-writes before resolution
      }
    } else {
      engine.resolve(ev.dot, ev.dc, ev.ts);
    }
    ++step;
    ASSERT_TRUE(engine.shadow_matches(&why))
        << "seed " << seed << " diverged at step " << step << ": " << why;
  }

  // Mid-run ACL flip: unmask everything, then re-mask a different slice.
  engine.set_security_check(nullptr);
  engine.recompute_masks();
  ASSERT_TRUE(engine.shadow_matches(&why))
      << "seed " << seed << " diverged after unmask: " << why;
  engine.set_security_check([](const Transaction& txn) {
    return txn.meta.dot.counter % 7 != 0;
  });
  engine.recompute_masks();
  ASSERT_TRUE(engine.shadow_matches(&why))
      << "seed " << seed << " diverged after re-mask: " << why;

  // Cleanup: replay every resolution (some were shuffled ahead of their
  // ingest and dropped), then require full drain on both sides.
  for (const Event& res : resolutions) {
    engine.resolve(res.dot, res.dc, res.ts);
  }
  engine.drain();
  ASSERT_TRUE(engine.shadow_matches(&why))
      << "seed " << seed << " diverged at quiescence: " << why;
  EXPECT_EQ(engine.pending_count(), 0u) << "seed " << seed;
  EXPECT_EQ(engine.applied_set().size(), kDcs * kChainLen) << "seed " << seed;
  EXPECT_EQ(engine.state_vector(),
            (VersionVector{kChainLen, kChainLen, kChainLen}))
      << "seed " << seed;
}

class DrainEquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DrainEquivalenceSweep, IndexedMatchesReference) {
  run_equivalence_seed(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DrainEquivalenceSweep,
                         ::testing::Range<std::uint64_t>(1, 121),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Wake-guard unit tests.
// ---------------------------------------------------------------------------

class WakeGuardTest : public ::testing::Test {
 protected:
  TxnStore txns;
  JournalStore store;
  VisibilityEngine engine{txns, store, 2};
};

TEST_F(WakeGuardTest, SymbolicCommitsResolvedOutOfOrder) {
  // Both txns symbolic: nothing can apply until resolutions arrive, and
  // they arrive inverted — ts=2 first (stays blocked on the state guard
  // for ts=1), then ts=1 (cascades both, in causal order).
  for (Timestamp ts : {Timestamp{1}, Timestamp{2}}) {
    Transaction txn;
    txn.meta.dot = Dot{7, ts};
    txn.meta.origin = 7;
    txn.meta.snapshot = VersionVector{ts - 1, 0};
    txn.ops.push_back(
        OpRecord{{"b", "x"}, CrdtType::kPnCounter, PnCounter::prepare_add(1)});
    engine.ingest(txn);
  }
  EXPECT_EQ(engine.pending_count(), 2u);

  engine.resolve(Dot{7, 2}, 0, 2);
  EXPECT_EQ(engine.pending_count(), 2u);  // still waiting on state_[0] >= 1
  EXPECT_EQ(engine.state_vector(), (VersionVector{0, 0}));

  engine.resolve(Dot{7, 1}, 0, 1);
  EXPECT_EQ(engine.pending_count(), 0u);
  EXPECT_EQ(engine.state_vector(), (VersionVector{2, 0}));
  ASSERT_EQ(engine.log().size(), 2u);
  EXPECT_EQ(engine.log().entries()[0], (Dot{7, 1}));
  EXPECT_EQ(engine.log().entries()[1], (Dot{7, 2}));
}

TEST_F(WakeGuardTest, AdmitWakesDependantThroughGuardChain) {
  // B names A as a pending dep before A is even known: B parks on the
  // dep-unknown guard. admit(A) (the consensus-ordered peer-group path —
  // stored, not scheduled) must re-examine B, which then re-parks on the
  // state guard until apply_causal(A) advances the vector.
  Transaction a;
  a.meta.dot = Dot{7, 1};
  a.meta.origin = 7;
  a.meta.snapshot = VersionVector{0, 0};
  a.meta.mark_accepted(0, 1);
  a.ops.push_back(
      OpRecord{{"b", "x"}, CrdtType::kPnCounter, PnCounter::prepare_add(1)});

  Transaction b = a;
  b.meta.dot = Dot{7, 2};
  b.meta.pending_deps.push_back(a.meta.dot);
  b.meta.mark_accepted(0, 2);

  engine.ingest(b);
  EXPECT_EQ(engine.pending_count(), 1u);  // dep unknown

  EXPECT_TRUE(engine.admit(a));
  EXPECT_EQ(engine.pending_count(), 1u);  // re-examined, now state-guarded
  EXPECT_FALSE(engine.is_applied(Dot{7, 1}));

  EXPECT_TRUE(engine.apply_causal(Dot{7, 1}));
  EXPECT_EQ(engine.pending_count(), 0u);  // state wake cascaded B
  EXPECT_TRUE(engine.is_applied(Dot{7, 2}));
  EXPECT_EQ(engine.state_vector(), (VersionVector{2, 0}));
}

TEST_F(WakeGuardTest, StateThresholdWakesOnExactComponent) {
  // A cross-DC reader blocked on state_[0] >= 2 must wake exactly when the
  // second DC0 txn applies — not before, and without any rescans between.
  engine.ingest(chain_txn(1, 1, VersionVector{2, 0}, "y"));
  EXPECT_EQ(engine.pending_count(), 1u);

  engine.ingest(chain_txn(0, 1, VersionVector{0, 0}, "x"));
  EXPECT_EQ(engine.pending_count(), 1u);  // threshold 2 not reached at 1
  engine.ingest(chain_txn(0, 2, VersionVector{1, 0}, "x"));
  EXPECT_EQ(engine.pending_count(), 0u);
  EXPECT_EQ(engine.state_vector(), (VersionVector{2, 1}));
}

TEST_F(WakeGuardTest, BatchOrderDefersBehindCoveredPendingPredecessor) {
  // Seeding a cut can make several pending txns applicable at once, and
  // the wake order examines the causal SUCCESSOR first (both guards sit on
  // dc0 >= 1; equal multimap keys pop in insertion order, successor
  // first). The within-batch rule must defer it behind the still-pending
  // predecessor so the log stays in causal order.
  TxnStore t3;
  JournalStore s3;
  VisibilityEngine wide(t3, s3, 3);

  Transaction pred;  // committed at dc1 slot 5
  pred.meta.dot = Dot{100, 1};
  pred.meta.origin = 100;
  pred.meta.snapshot = VersionVector{1, 4, 0};
  pred.meta.mark_accepted(1, 5);
  pred.ops.push_back(
      OpRecord{{"b", "x"}, CrdtType::kPnCounter, PnCounter::prepare_add(1)});

  Transaction succ = pred;  // snapshot covers pred's commit
  succ.meta.dot = Dot{100, 2};
  succ.meta.snapshot = VersionVector{1, 5, 0};
  succ.meta.commit = VersionVector{};
  succ.meta.accepted_mask = 0;
  succ.meta.concrete = false;
  succ.meta.mark_accepted(1, 6);

  wide.ingest(succ);  // parked first: wakes first on the dc0 threshold
  wide.ingest(pred);
  EXPECT_EQ(wide.pending_count(), 2u);

  wide.seed_state(VersionVector{1, 5, 0});  // checkout import premise
  wide.drain();
  EXPECT_EQ(wide.pending_count(), 0u);
  ASSERT_EQ(wide.log().size(), 2u);
  EXPECT_EQ(wide.log().entries()[0], (Dot{100, 1}));
  EXPECT_EQ(wide.log().entries()[1], (Dot{100, 2}));
}

TEST_F(WakeGuardTest, MaskFlipRebuildsIndexAndValues) {
  ShadowScope shadow_on;
  TxnStore t2;
  JournalStore s2;
  VisibilityEngine masked_engine(t2, s2, 2);
  masked_engine.set_security_check(
      [](const Transaction& txn) { return txn.meta.origin != 100; });

  masked_engine.ingest(chain_txn(0, 1, VersionVector{0, 0}, "x", 10));
  // Same key, different origin: transitively masked through data flow.
  masked_engine.ingest(chain_txn(1, 1, VersionVector{1, 0}, "x", 5));
  EXPECT_TRUE(masked_engine.is_masked(Dot{100, 1}));
  EXPECT_TRUE(masked_engine.is_masked(Dot{101, 1}));
  const auto* c = dynamic_cast<const PnCounter*>(s2.current({"b", "x"}));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 0);

  std::string why;
  EXPECT_TRUE(masked_engine.shadow_matches(&why)) << why;

  // ACL change: unmask everything. The per-origin/per-key buckets must be
  // rebuilt (not just the masked set) or later transitive checks would
  // consult stale dots.
  masked_engine.set_security_check(nullptr);
  EXPECT_EQ(masked_engine.recompute_masks(), 2u);
  EXPECT_FALSE(masked_engine.is_masked(Dot{100, 1}));
  EXPECT_EQ(dynamic_cast<const PnCounter*>(s2.current({"b", "x"}))->value(),
            15);
  EXPECT_TRUE(masked_engine.shadow_matches(&why)) << why;

  // New txn on the same key must NOT inherit a mask from the old buckets.
  masked_engine.ingest(chain_txn(0, 2, VersionVector{1, 1}, "x", 1));
  EXPECT_FALSE(masked_engine.is_masked(Dot{100, 2}));
  EXPECT_EQ(dynamic_cast<const PnCounter*>(s2.current({"b", "x"}))->value(),
            16);
  EXPECT_TRUE(masked_engine.shadow_matches(&why)) << why;
}

TEST_F(WakeGuardTest, SetDrainModeMidRunRebuildsAndDrains) {
  // Park a blocked backlog in indexed mode, switch to the reference (wake
  // index dropped, arrival list rebuilt), unblock there, then switch back
  // with a fresh blocked txn outstanding.
  engine.ingest(chain_txn(0, 3, VersionVector{2, 0}, "x"));
  engine.ingest(chain_txn(0, 2, VersionVector{1, 0}, "x"));
  EXPECT_EQ(engine.pending_count(), 2u);

  engine.set_drain_mode(DrainMode::kFixpointReference);
  EXPECT_EQ(engine.pending_count(), 2u);  // rebuild alone unblocks nothing
  engine.ingest(chain_txn(0, 1, VersionVector{0, 0}, "x"));
  EXPECT_EQ(engine.pending_count(), 0u);
  EXPECT_EQ(engine.state_vector(), (VersionVector{3, 0}));

  engine.ingest(chain_txn(1, 2, VersionVector{0, 1}, "y"));
  EXPECT_EQ(engine.pending_count(), 1u);
  engine.set_drain_mode(DrainMode::kIndexed);
  EXPECT_EQ(engine.pending_count(), 1u);
  engine.ingest(chain_txn(1, 1, VersionVector{0, 0}, "y"));
  EXPECT_EQ(engine.pending_count(), 0u);
  EXPECT_EQ(engine.state_vector(), (VersionVector{3, 2}));
}

TEST_F(WakeGuardTest, DuplicateIngestWithNewCommitSlotsWakesWaiters) {
  // A symbolic txn re-delivered with commit info (migration duplicate,
  // section 3.8) must wake both itself and dependants via the txn event —
  // the original guard registration is stale after the merge.
  Transaction sym = chain_txn(0, 1, VersionVector{0, 0}, "x");
  sym.meta.commit = VersionVector{};
  sym.meta.accepted_mask = 0;
  sym.meta.concrete = false;
  engine.ingest(sym);
  engine.ingest(chain_txn(0, 2, VersionVector{1, 0}, "x"));
  EXPECT_EQ(engine.pending_count(), 2u);

  Transaction resolved = chain_txn(0, 1, VersionVector{0, 0}, "x");
  EXPECT_FALSE(engine.ingest(resolved));  // duplicate dot, merged metadata
  EXPECT_EQ(engine.pending_count(), 0u);
  EXPECT_EQ(engine.state_vector(), (VersionVector{2, 0}));
}

}  // namespace
}  // namespace colony
