// ApplyPool unit coverage: the sharded worker pool must be byte-equivalent
// to the inline apply path (single-writer-per-object + per-key FIFO =>
// deterministic state at any pool size), and the JournalStore's defensive
// flushes must make pending work invisible to every reader.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/visibility.hpp"
#include "crdt/counter.hpp"
#include "crdt/or_set.hpp"
#include "storage/apply_pool.hpp"
#include "storage/journal_store.hpp"

namespace colony {
namespace {

ObjectKey key_n(std::size_t i) {
  return ObjectKey{"pool", "k" + std::to_string(i)};
}

Bytes store_bytes(const JournalStore& store) {
  Encoder enc;
  store.encode(enc);
  return enc.take();
}

/// Drive the same mixed-type op stream into a store, inline or pooled.
/// Payloads are staged in a vector first: the pooled apply path defers the
/// journal copy to a worker, so payloads must outlive the applies — the
/// flush before returning honours that contract (real callers' payloads
/// live in the TxnStore / the decoded message, both of which outlive the
/// event's barrier).
void feed(JournalStore& store, std::size_t ops, std::size_t keys,
          bool mask_some) {
  std::vector<Bytes> payloads;
  payloads.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    const Dot dot{7, static_cast<std::uint64_t>(i + 1)};
    if (i % 2 == 0) {
      payloads.push_back(
          PnCounter::prepare_add(static_cast<std::int64_t>(i % 9)));
    } else {
      payloads.push_back(OrSet::prepare_add("elem-" + std::to_string(i), dot));
    }
  }
  for (std::size_t i = 0; i < ops; ++i) {
    const Dot dot{7, static_cast<std::uint64_t>(i + 1)};
    const bool masked = mask_some && i % 5 == 0;
    store.apply(key_n(i % keys),
                i % 2 == 0 ? CrdtType::kPnCounter : CrdtType::kOrSet, dot,
                payloads[i], masked);
  }
  store.flush_applies();
}

TEST(ApplyPool, PooledStoreMatchesInlineBytes) {
  for (const std::size_t workers : {2u, 3u, 4u}) {
    JournalStore inline_store;
    feed(inline_store, 500, 16, /*mask_some=*/true);

    ApplyPool pool(workers);
    JournalStore pooled;
    pooled.set_apply_pool(&pool);
    feed(pooled, 500, 16, /*mask_some=*/true);

    EXPECT_GT(pool.submitted(), 0u);
    EXPECT_EQ(store_bytes(inline_store), store_bytes(pooled))
        << "divergence at " << workers << " workers";
  }
}

TEST(ApplyPool, SameKeyOpsStaySequenced) {
  // Every op hits one key: all tasks land on one worker and must fold in
  // submission order (OR-Set add/remove order is visible in the state).
  ApplyPool pool(4);
  JournalStore pooled;
  pooled.set_apply_pool(&pool);
  JournalStore inline_store;
  std::vector<Bytes> ops;  // outlives the deferred pooled applies
  ops.reserve(200);        // no reallocation under live payload pointers
  for (std::size_t i = 0; i < 200; ++i) {
    const Dot dot{3, static_cast<std::uint64_t>(i + 1)};
    ops.push_back(OrSet::prepare_add("x" + std::to_string(i % 7), dot));
    pooled.apply(key_n(0), CrdtType::kOrSet, dot, ops.back());
    inline_store.apply(key_n(0), CrdtType::kOrSet, dot, ops.back());
  }
  pooled.flush_applies();
  EXPECT_EQ(store_bytes(inline_store), store_bytes(pooled));
}

TEST(ApplyPool, ReadersFlushDefensively) {
  ApplyPool pool(2);
  JournalStore store;
  store.set_apply_pool(&pool);
  const Bytes add5 = PnCounter::prepare_add(5);  // outlives the flush
  store.apply(key_n(1), CrdtType::kPnCounter, Dot{1, 1}, add5);
  ASSERT_TRUE(store.applies_pending());

  // Touching a different key must NOT force the join (per-key pending
  // tracking keeps hot reads like the ACL check from destroying batching).
  EXPECT_EQ(store.current(key_n(2)), nullptr);
  EXPECT_TRUE(store.applies_pending());

  // Reading the touched key joins and sees the folded value.
  const auto* counter =
      dynamic_cast<const PnCounter*>(store.current(key_n(1)));
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value(), 5);
  EXPECT_FALSE(store.applies_pending());
}

TEST(ApplyPool, MaskedPooledAppliesJournalOnly) {
  ApplyPool pool(2);
  JournalStore store;
  store.set_apply_pool(&pool);
  const Bytes add9 = PnCounter::prepare_add(9);  // outlives the flush
  store.apply(key_n(0), CrdtType::kPnCounter, Dot{1, 1}, add9,
              /*masked=*/true);
  store.flush_applies();
  EXPECT_EQ(store.journal_length(key_n(0)), 1u);
  const auto* counter =
      dynamic_cast<const PnCounter*>(store.current(key_n(0)));
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value(), 0);  // masked: journalled, not folded
}

TEST(ApplyPool, BakedDotsSkippedBeforeHandoff) {
  ApplyPool pool(2);
  JournalStore store;
  store.set_apply_pool(&pool);
  ObjectSnapshot snap;
  snap.key = key_n(0);
  snap.type = CrdtType::kPnCounter;
  PnCounter seeded;
  seeded.apply(PnCounter::prepare_add(4));
  snap.state = seeded.snapshot();
  snap.applied = {Dot{1, 1}};
  store.import_snapshot(snap);

  const Bytes add4 = PnCounter::prepare_add(4);
  store.apply(key_n(0), CrdtType::kPnCounter, Dot{1, 1},
              add4);                      // duplicate of a baked dot
  EXPECT_FALSE(store.applies_pending());  // dropped on the control thread
  const auto* counter =
      dynamic_cast<const PnCounter*>(store.current(key_n(0)));
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value(), 4);
}

TEST(ApplyPool, DetachJoinsPendingWork) {
  ApplyPool pool(2);
  JournalStore store;
  store.set_apply_pool(&pool);
  const Bytes add2 = PnCounter::prepare_add(2);  // outlives the detach join
  store.apply(key_n(0), CrdtType::kPnCounter, Dot{1, 1}, add2);
  store.set_apply_pool(nullptr);
  EXPECT_FALSE(store.applies_pending());
  const auto* counter =
      dynamic_cast<const PnCounter*>(store.current(key_n(0)));
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value(), 2);
}

TEST(ApplyPool, OwnerIsStableAndInRange) {
  ApplyPool pool(4);
  for (std::size_t i = 0; i < 64; ++i) {
    const std::uint32_t owner = pool.owner(key_n(i));
    EXPECT_LT(owner, pool.size());
    EXPECT_EQ(owner, pool.owner(key_n(i)));  // deterministic partition
  }
}

/// The engine-level contract: a full backlog drain through the visibility
/// engine with a pooled store matches the inline drain bit-for-bit —
/// store bytes, engine state, and visibility-log digest.
TEST(ApplyPool, EngineBacklogDrainEquivalence) {
  const auto run = [](ApplyPool* pool) {
    TxnStore txns;
    JournalStore store;
    if (pool != nullptr) store.set_apply_pool(pool);
    VisibilityEngine engine(txns, store, 3);
    engine.set_security_check([](const Transaction& txn) {
      return txn.meta.dot.counter % 7 != 0;  // periodic mask
    });
    std::vector<Transaction> backlog;
    for (Timestamp ts = 1; ts <= 400; ++ts) {
      Transaction txn;
      txn.meta.dot = Dot{100, ts};
      txn.meta.origin = 100;
      txn.meta.snapshot = VersionVector(3);
      txn.meta.snapshot.set(0, ts - 1);
      txn.meta.mark_accepted(0, ts);
      for (int op = 0; op < 4; ++op) {
        txn.ops.push_back(
            OpRecord{key_n((ts + static_cast<Timestamp>(op)) % 24),
                     CrdtType::kOrSet,
                     OrSet::prepare_add("m" + std::to_string(ts), Dot{100, ts})});
      }
      backlog.push_back(std::move(txn));
    }
    for (auto it = backlog.rbegin(); it != backlog.rend(); ++it) {
      engine.ingest(*it);
    }
    EXPECT_EQ(engine.pending_count(), 0u);
    EXPECT_FALSE(store.applies_pending());  // event boundary joined
    Encoder state;
    engine.encode_state(state);
    return std::tuple{store_bytes(store), state.take(),
                      engine.log().digest()};
  };

  const auto baseline = run(nullptr);
  for (const std::size_t workers : {2u, 4u}) {
    ApplyPool pool(workers);
    const auto pooled = run(&pool);
    EXPECT_GT(pool.submitted(), 0u);
    EXPECT_EQ(std::get<0>(baseline), std::get<0>(pooled)) << workers;
    EXPECT_EQ(std::get<1>(baseline), std::get<1>(pooled)) << workers;
    EXPECT_EQ(std::get<2>(baseline), std::get<2>(pooled)) << workers;
  }
}

}  // namespace
}  // namespace colony
