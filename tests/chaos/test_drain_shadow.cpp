// Chaos-level drain equivalence: run the full fault-schedule sweep with a
// kFixpointReference shadow attached to EVERY visibility engine in the
// cluster (DC replicas and edge caches), and require the indexed scheduler
// to agree with the reference on applied set, masked set, state vector,
// and pending set at the end of each run — under partitions, duplication,
// reordering, migration, and reconnection backlogs.
//
// This complements tests/test_drain_equivalence.cpp (pure-engine seeded
// histories, per-event assertions): here the event stream is whatever the
// real protocol stack produces.
//
// Seed range overrides, as in test_chaos_sweep.cpp:
//   COLONY_DRAIN_SHADOW_SEED_BASE  first seed (default 1)
//   COLONY_DRAIN_SHADOW_SEEDS      how many consecutive seeds (default 100)
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "chaos_harness.hpp"
#include "core/visibility.hpp"

namespace colony::chaos_test {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const std::uint64_t parsed = std::strtoull(v, nullptr, 10);
  return parsed == 0 ? fallback : parsed;
}

std::vector<std::uint64_t> shadow_seeds() {
  const std::uint64_t base = env_u64("COLONY_DRAIN_SHADOW_SEED_BASE", 1);
  const std::uint64_t count = env_u64("COLONY_DRAIN_SHADOW_SEEDS", 100);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) seeds.push_back(base + i);
  return seeds;
}

/// RAII: every engine constructed inside carries a reference shadow.
struct ShadowScope {
  ShadowScope() { VisibilityEngine::set_shadow_default(true); }
  ~ShadowScope() { VisibilityEngine::set_shadow_default(false); }
};

class DrainShadowSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DrainShadowSweep, IndexedDrainMatchesReferenceUnderChaos) {
  HarnessConfig cfg;
  cfg.seed = GetParam();

  ShadowScope shadows;
  Harness harness(cfg);
  const RunResult result = harness.run();
  EXPECT_TRUE(result.ok()) << "seed " << cfg.seed
                           << " baseline invariants failed:\n"
                           << result.report.to_string();

  const Cluster& cluster = harness.cluster();
  std::string why;
  for (DcId d = 0; d < cluster.num_dcs(); ++d) {
    EXPECT_TRUE(cluster.dc(d).engine().shadow_matches(&why))
        << "seed " << cfg.seed << " dc" << d
        << " diverged from reference drain: " << why;
  }
  for (std::size_t i = 0; i < cluster.num_edges(); ++i) {
    EXPECT_TRUE(cluster.edge(i).engine().shadow_matches(&why))
        << "seed " << cfg.seed << " edge" << i
        << " diverged from reference drain: " << why;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DrainShadowSweep,
                         ::testing::ValuesIn(shadow_seeds()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace colony::chaos_test
