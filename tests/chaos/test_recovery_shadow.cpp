// Chaos-level recovery equivalence: run the full fault-schedule sweep with
// crash-restart faults boosted, and at the end of each run prove every
// WAL-backed replica recoverable in place — an offline twin rebuilt purely
// from a copy of the node's disk must match the live node's durable
// projection byte-for-byte (DcNode/EdgeNode::verify_recovery).
//
// This complements tests/test_wal.cpp (framing + torn-tail fuzz on the Wal
// itself) the way test_drain_shadow.cpp complements
// test_drain_equivalence.cpp: here the record stream is whatever the real
// protocol stack wrote while partitions, duplication, reordering,
// migration, and actual crash-restarts were in flight.
//
// Seed range overrides, as in test_chaos_sweep.cpp:
//   COLONY_RECOVERY_SHADOW_SEED_BASE  first seed (default 1)
//   COLONY_RECOVERY_SHADOW_SEEDS      how many consecutive seeds (default 100)
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "chaos_harness.hpp"

namespace colony::chaos_test {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const std::uint64_t parsed = std::strtoull(v, nullptr, 10);
  return parsed == 0 ? fallback : parsed;
}

std::vector<std::uint64_t> recovery_seeds() {
  const std::uint64_t base = env_u64("COLONY_RECOVERY_SHADOW_SEED_BASE", 1);
  const std::uint64_t count = env_u64("COLONY_RECOVERY_SHADOW_SEEDS", 100);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) seeds.push_back(base + i);
  return seeds;
}

class RecoveryShadowSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecoveryShadowSweep, OfflineReplicaMatchesLiveNodeUnderChaos) {
  HarnessConfig cfg;
  cfg.seed = GetParam();
  // Make crash-restart the headline fault of this sweep (the baseline
  // weight already includes it; boosting it packs several full
  // wipe-and-replay cycles into every epoch).
  cfg.chaos.w_crash_restart = 4.0;

  Harness harness(cfg);
  const RunResult result = harness.run();
  EXPECT_TRUE(result.ok()) << "seed " << cfg.seed
                           << " baseline invariants failed:\n"
                           << result.report.to_string();

  // run() already audited durability at every barrier (check_quiescent);
  // assert it once more explicitly so a divergence names the seed + node
  // even if the baseline report changed shape.
  const Cluster& cluster = harness.cluster();
  std::string why;
  for (DcId d = 0; d < cluster.num_dcs(); ++d) {
    EXPECT_TRUE(cluster.dc(d).verify_recovery(&why))
        << "seed " << cfg.seed << " dc" << d
        << " offline replica diverged: " << why;
  }
  for (std::size_t i = 0; i < cluster.num_edges(); ++i) {
    EXPECT_TRUE(cluster.edge(i).verify_recovery(&why))
        << "seed " << cfg.seed << " edge" << i
        << " offline replica diverged: " << why;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryShadowSweep,
                         ::testing::ValuesIn(recovery_seeds()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace colony::chaos_test
