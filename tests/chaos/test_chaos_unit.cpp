// ChaosSchedule generation, schedule shrinking, ChaosRunner application,
// and end-to-end determinism of the harness itself.
#include <gtest/gtest.h>

#include <algorithm>

#include "chaos_harness.hpp"
#include "sim/chaos.hpp"

namespace colony::sim {
namespace {

ChaosTopology small_topology() {
  return ChaosTopology{{1, 2, 3}, {10'005, 10'006, 10'007, 10'008}};
}

std::size_t fault_count(const std::vector<ChaosEvent>& events) {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(), [](const ChaosEvent& e) {
        return e.type != ChaosEventType::kHealAll;
      }));
}

TEST(ChaosSchedule, SameSeedYieldsByteIdenticalSchedule) {
  ChaosConfig cfg;
  cfg.seed = 0xDEADBEEF;
  const ChaosSchedule a = ChaosSchedule::generate(cfg, small_topology());
  const ChaosSchedule b = ChaosSchedule::generate(cfg, small_topology());
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.events, b.events);
}

TEST(ChaosSchedule, DifferentSeedsDiverge) {
  ChaosConfig a_cfg, b_cfg;
  a_cfg.seed = 7;
  b_cfg.seed = 8;
  const ChaosSchedule a = ChaosSchedule::generate(a_cfg, small_topology());
  const ChaosSchedule b = ChaosSchedule::generate(b_cfg, small_topology());
  EXPECT_NE(a.to_string(), b.to_string());
}

TEST(ChaosSchedule, OneBarrierPerEpochAtEpochEnd) {
  ChaosConfig cfg;
  cfg.epochs = 4;
  cfg.epoch_length = 2 * kSecond;
  const ChaosSchedule s = ChaosSchedule::generate(cfg, small_topology());
  const std::vector<SimTime> barriers = s.barriers();
  ASSERT_EQ(barriers.size(), 4u);
  for (std::size_t i = 0; i < barriers.size(); ++i) {
    EXPECT_EQ(barriers[i], (i + 1) * cfg.epoch_length);
  }
}

TEST(ChaosSchedule, EventsSortedAndRepairsPrecedeTheirBarrier) {
  ChaosConfig cfg;
  cfg.seed = 99;
  cfg.faults_per_second = 8.0;
  const ChaosSchedule s = ChaosSchedule::generate(cfg, small_topology());
  ASSERT_GT(fault_count(s.events), 0u);
  for (std::size_t i = 1; i < s.events.size(); ++i) {
    EXPECT_LE(s.events[i - 1].at, s.events[i].at);
  }
  // Every event falls inside the run and repair events never collide with
  // a barrier (outages landing past the epoch end are subsumed by it).
  const SimTime total = cfg.epochs * cfg.epoch_length;
  for (const ChaosEvent& e : s.events) {
    EXPECT_LE(e.at, total);
    if (e.type == ChaosEventType::kLinkUp ||
        e.type == ChaosEventType::kNodeRecover) {
      EXPECT_NE(e.at % cfg.epoch_length, 0u) << e.to_string();
    }
  }
}

TEST(ChaosShrink, ReducesToTheCulpritChunk) {
  ChaosConfig cfg;
  cfg.seed = 1234;
  cfg.epochs = 3;
  cfg.faults_per_second = 10.0;  // a dense schedule worth shrinking
  ChaosSchedule s = ChaosSchedule::generate(cfg, small_topology());
  const std::size_t original = fault_count(s.events);
  ASSERT_GE(original, 20u);

  // Plant a known culprit: the failure "reproduces" iff the schedule still
  // partitions the 1<->2 DC link. The shrinker must isolate that event.
  const auto culprit = [](const std::vector<ChaosEvent>& events) {
    return std::any_of(events.begin(), events.end(), [](const ChaosEvent& e) {
      return e.type == ChaosEventType::kLinkDown &&
             ((e.a == 1 && e.b == 2) || (e.a == 2 && e.b == 1));
    });
  };
  if (!culprit(s.events)) {
    GTEST_SKIP() << "seed produced no 1<->2 partition";
  }

  const std::vector<ChaosEvent> shrunk = shrink_schedule(s.events, culprit);
  EXPECT_TRUE(culprit(shrunk));
  // Greedy halving must get well under a quarter of the original faults.
  EXPECT_LE(fault_count(shrunk) * 4, original);
  // Barriers are structural and never dropped.
  ChaosSchedule min;
  min.events = shrunk;
  EXPECT_EQ(min.barriers().size(), cfg.epochs);
}

TEST(ChaosShrink, KeepsEverythingWhenAllEventsMatter) {
  ChaosConfig cfg;
  cfg.seed = 5;
  ChaosSchedule s = ChaosSchedule::generate(cfg, small_topology());
  const std::size_t original = fault_count(s.events);
  ASSERT_GT(original, 0u);
  // Failure requires the complete fault set: nothing can be dropped.
  const auto needs_all = [original](const std::vector<ChaosEvent>& events) {
    return fault_count(events) == original;
  };
  const std::vector<ChaosEvent> shrunk = shrink_schedule(s.events, needs_all);
  EXPECT_EQ(fault_count(shrunk), original);
}

TEST(ChaosRunner, AppliesAndResetsNetworkFaults) {
  Scheduler sched;
  Network net(sched, 1);
  net.connect(1, 2, LatencyModel{1 * kMillisecond, 0});

  ChaosRunner runner(net, {});
  runner.apply({0, ChaosEventType::kLinkDown, 1, 2, 0});
  EXPECT_FALSE(net.link_up(1, 2));
  runner.apply({0, ChaosEventType::kNodeCrash, 2, 0, 0});
  EXPECT_FALSE(net.node_up(2));
  runner.apply({0, ChaosEventType::kDuplicateOn, 0, 0, 500'000});
  runner.apply({0, ChaosEventType::kClockSkew, 2, 0, 250});
  EXPECT_EQ(net.local_now(2), net.now() + 250);

  runner.reset();
  EXPECT_TRUE(net.link_up(1, 2));
  EXPECT_TRUE(net.node_up(2));
  EXPECT_EQ(net.local_now(2), net.now());
}

TEST(ChaosRunner, MigrateEventReachesTheHook) {
  Scheduler sched;
  Network net(sched, 1);
  NodeId migrated = 0;
  std::size_t target = 99;
  ChaosRunner runner(net, {});
  runner.migrate_hook = [&](NodeId node, std::size_t dc_index) {
    migrated = node;
    target = dc_index;
  };
  runner.apply({0, ChaosEventType::kMigrateEdge, 10'005, 0, 2});
  EXPECT_EQ(migrated, 10'005u);
  EXPECT_EQ(target, 2u);
}

}  // namespace
}  // namespace colony::sim

namespace colony::chaos_test {
namespace {

TEST(ChaosHarness, SameSeedReplaysByteForByte) {
  HarnessConfig cfg;
  cfg.seed = 42;
  cfg.chaos.epochs = 2;

  Harness first(cfg);
  Harness second(cfg);
  EXPECT_EQ(first.schedule().to_string(), second.schedule().to_string());

  const RunResult a = first.run();
  const RunResult b = second.run();
  EXPECT_TRUE(a.ok()) << a.report.to_string();
  EXPECT_TRUE(b.ok()) << b.report.to_string();
  EXPECT_EQ(a.final_digest, b.final_digest);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.report.to_string(), b.report.to_string());
}

TEST(ChaosHarness, WorkloadCommitsAndConverges) {
  HarnessConfig cfg;
  cfg.seed = 7;
  cfg.chaos.epochs = 1;

  Harness harness(cfg);
  const RunResult result = harness.run();
  EXPECT_TRUE(result.ok()) << result.report.to_string();
  EXPECT_GT(result.commits, 0u);
  EXPECT_NE(result.final_digest.find("commits="), std::string::npos);
}

}  // namespace
}  // namespace colony::chaos_test
