// The chaos sweep: one test per seed, each driving a full fault schedule
// against a live cluster and auditing the TCC+ invariants at every epoch
// barrier. On failure the test prints the seed and the complete schedule,
// then greedily shrinks the schedule to a minimal reproducer.
//
// Seed range overrides (read when the binary runs):
//   COLONY_CHAOS_SEED_BASE  first seed (default 1)
//   COLONY_CHAOS_SEEDS      how many consecutive seeds (default 100)
// Note: `ctest -L chaos` enumerates tests at build time, so env overrides
// apply when running the chaos_tests binary directly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "chaos_harness.hpp"

namespace colony::chaos_test {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

std::vector<std::uint64_t> sweep_seeds() {
  const std::uint64_t base = env_u64("COLONY_CHAOS_SEED_BASE", 1);
  std::uint64_t count = env_u64("COLONY_CHAOS_SEEDS", 100);
  if (count == 0) {
    // An empty sweep trips gtest's uninstantiated-suite check with a
    // message that never names the knob; fail soft and say what happened.
    std::fprintf(stderr,
                 "COLONY_CHAOS_SEEDS=%s is not a positive integer; "
                 "running 1 seed\n",
                 std::getenv("COLONY_CHAOS_SEEDS"));
    count = 1;
  }
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) seeds.push_back(base + i);
  return seeds;
}

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, InvariantsHoldUnderFaults) {
  HarnessConfig cfg;
  cfg.seed = GetParam();

  Harness harness(cfg);
  const sim::ChaosSchedule schedule = harness.schedule();
  const RunResult result = harness.run(schedule.events);

  if (!result.ok()) {
    std::string msg = "chaos seed " + std::to_string(cfg.seed) +
                      " violated invariants:\n" + result.report.to_string() +
                      "\nfull " + schedule.to_string();
    const std::vector<sim::ChaosEvent> shrunk =
        shrink_against(cfg, schedule.events);
    sim::ChaosSchedule minimized;
    minimized.seed = cfg.seed;
    minimized.events = shrunk;
    msg += "\nminimized " + minimized.to_string();
    Harness replay(cfg);
    const RunResult confirm = replay.run(shrunk);
    msg += "minimized run violations:\n" + confirm.report.to_string();
    msg += "\nreproduce: COLONY_CHAOS_SEED_BASE=" + std::to_string(cfg.seed) +
           " COLONY_CHAOS_SEEDS=1 ./chaos_tests";
    FAIL() << msg;
  }

  // A schedule that silenced the workload would vacuously pass; require
  // that clients actually committed through the chaos.
  EXPECT_GT(result.commits, 0u)
      << "seed " << cfg.seed << " produced no commits";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::ValuesIn(sweep_seeds()));

}  // namespace
}  // namespace colony::chaos_test
