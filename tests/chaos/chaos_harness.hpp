// Chaos harness: drives a simulated cluster through a deterministic fault
// schedule while a seeded multi-client workload commits, and audits the
// TCC+ invariants at every epoch barrier (and samples the mid-run-safe
// checkers inside epochs).
//
// One Harness instance is one run: construct, call run() (or
// run(events) to replay an explicit — possibly shrunk — schedule), inspect
// the RunResult. The whole run is a pure function of HarnessConfig, so a
// failing seed reproduces byte-for-byte and shrinking can re-execute
// candidate schedules in fresh harnesses.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "crdt/counter.hpp"
#include "sim/chaos.hpp"
#include "util/rng.hpp"

namespace colony::chaos_test {

struct HarnessConfig {
  std::uint64_t seed = 1;

  // Topology.
  std::size_t num_dcs = 3;
  std::size_t k_stability = 2;
  std::size_t num_edges = 4;
  std::size_t num_counters = 2;  // independent shared PN-counters
  /// Apply worker threads per DC (0/1 = inline). The converged state must
  /// be byte-identical at any setting — the pool equivalence sweep runs
  /// the same seed at several sizes and compares.
  std::size_t apply_workers = 0;

  // Fault schedule (chaos.seed is overwritten with `seed`).
  sim::ChaosConfig chaos;

  // Workload pacing.
  SimTime settle = 1 * kSecond;            // subscribe + warm caches
  SimTime think_mean = 150 * kMillisecond;  // mean gap between commits
  double pair_txn_prob = 0.3;               // two-key atomic increment
  SimTime sample_interval = 400 * kMillisecond;
  SimTime quiesce_wait = 60 * kSecond;
};

struct RunResult {
  check::Report report;    // mid-run samples are tagged "@<time>us"
  bool quiesced = true;    // every barrier reached structural idleness
  std::uint64_t commits = 0;
  /// Order-stable digest of the converged state (dc0 state vector plus the
  /// final counter values): two runs of the same seed must agree exactly.
  std::string final_digest;

  [[nodiscard]] bool ok() const { return report.ok() && quiesced; }
};

class Harness {
 public:
  explicit Harness(const HarnessConfig& cfg)
      : cfg_(cfg), wl_rng_(cfg.seed ^ 0x9e3779b97f4a7c15ull) {
    cfg_.chaos.seed = cfg_.seed;
    ClusterConfig cluster_cfg;
    cluster_cfg.num_dcs = cfg_.num_dcs;
    cluster_cfg.k_stability = cfg_.k_stability;
    cluster_cfg.seed = cfg_.seed;
    cluster_cfg.apply_workers_per_dc = cfg_.apply_workers;
    cluster_ = std::make_unique<Cluster>(cluster_cfg);

    pair_keys_ = {ObjectKey{"chaos", "pair_a"}, ObjectKey{"chaos", "pair_b"}};
    for (std::size_t c = 0; c < cfg_.num_counters; ++c) {
      counter_keys_.push_back(ObjectKey{"chaos", "c" + std::to_string(c)});
    }
    std::vector<ObjectKey> all_keys = pair_keys_;
    all_keys.insert(all_keys.end(), counter_keys_.begin(),
                    counter_keys_.end());

    for (std::size_t i = 0; i < cfg_.num_edges; ++i) {
      EdgeNode& edge = cluster_->add_edge(
          ClientMode::kClientCache, static_cast<DcId>(i % cfg_.num_dcs),
          static_cast<UserId>(100 + i));
      sessions_.push_back(std::make_unique<Session>(edge));
      sessions_.back()->subscribe(all_keys, [](Result<void>) {});
    }
    cluster_->run_for(cfg_.settle);
  }

  [[nodiscard]] sim::ChaosSchedule schedule() const {
    sim::ChaosTopology topo{cluster_->dc_node_ids(),
                            cluster_->edge_node_ids()};
    return sim::ChaosSchedule::generate(cfg_.chaos, topo);
  }

  RunResult run() { return run(schedule().events); }

  /// Replay an explicit event list (used by the shrinker). Call once.
  RunResult run(const std::vector<sim::ChaosEvent>& events) {
    sim::ChaosRunner runner(cluster_->network(), events);
    runner.crash_hook = [this](NodeId node) { cluster_->crash_node(node); };
    runner.restart_hook = [this](NodeId node) {
      cluster_->restart_node(node);
    };
    runner.migrate_hook = [this](NodeId node, std::size_t dc_index) {
      for (std::size_t i = 0; i < cluster_->num_edges(); ++i) {
        if (cluster_->edge(i).id() == node) {
          cluster_->edge(i).migrate_to_dc(
              cluster_->dc_node_id(static_cast<DcId>(dc_index)),
              [](Result<void>) {});  // failure = stays pending; chaos goes on
        }
      }
    };
    // Reordering is only sound on the DC full mesh: edge<->DC session
    // channels carry FIFO-dependent push/state-update pairs, while the DC
    // replication plane buffers out-of-order transactions by design.
    const std::set<NodeId> dc_ids = [this] {
      const auto v = cluster_->dc_node_ids();
      return std::set<NodeId>(v.begin(), v.end());
    }();
    cluster_->network().set_reorder_filter([dc_ids](NodeId from, NodeId to) {
      return dc_ids.contains(from) && dc_ids.contains(to);
    });

    std::vector<SimTime> barriers;
    for (const sim::ChaosEvent& e : events) {
      if (e.type == sim::ChaosEventType::kHealAll) barriers.push_back(e.at);
    }
    if (barriers.empty()) {
      barriers.push_back(cfg_.chaos.epochs * cfg_.chaos.epoch_length);
    }

    RunResult result;
    SimTime origin = 0;
    for (const SimTime barrier : barriers) {
      runner.arm_window(origin, barrier);
      start_workload();
      const SimTime epoch_end = cluster_->now() + (barrier - origin);
      while (cluster_->now() < epoch_end) {
        cluster_->run_until(
            std::min(epoch_end, cluster_->now() + cfg_.sample_interval));
        sample_safety(result);
      }
      stop_workload();
      runner.reset();
      if (!cluster_->quiesce(cfg_.quiesce_wait)) {
        result.quiesced = false;
        result.report.add("liveness",
                          "cluster failed to quiesce at barrier @" +
                              std::to_string(barrier) + "us");
      }
      audit_quiescent(result, barrier);
      origin = barrier;
    }

    result.commits = commits_;
    result.final_digest = digest();
    return result;
  }

  [[nodiscard]] const Cluster& cluster() const { return *cluster_; }

 private:
  // --- workload ------------------------------------------------------------

  void start_workload() {
    ++generation_;
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      schedule_action(i, generation_);
    }
  }

  void stop_workload() { ++generation_; }

  void schedule_action(std::size_t i, std::uint64_t gen) {
    const SimTime think = std::max<SimTime>(
        static_cast<SimTime>(
            wl_rng_.exponential(static_cast<double>(cfg_.think_mean))),
        1);
    cluster_->scheduler().after(think, [this, i, gen] {
      if (gen != generation_) return;  // epoch ended; client paused
      act(i);
      schedule_action(i, gen);
    });
  }

  void act(std::size_t i) {
    Session& session = *sessions_[i];
    auto txn = session.begin();
    std::vector<std::pair<ObjectKey, std::int64_t>> deltas;
    if (wl_rng_.chance(cfg_.pair_txn_prob)) {
      // Atomic two-key increment: pair_a and pair_b move in lock-step, so
      // any replica where they differ saw a torn transaction.
      const auto delta =
          static_cast<std::int64_t>(wl_rng_.between(1, 3));
      session.increment(txn, pair_keys_[0], delta);
      session.increment(txn, pair_keys_[1], delta);
      deltas = {{pair_keys_[0], delta}, {pair_keys_[1], delta}};
    } else {
      const ObjectKey& key =
          counter_keys_[wl_rng_.below(counter_keys_.size())];
      session.increment(txn, key, 1);
      deltas = {{key, 1}};
    }
    if (session.commit(std::move(txn)).ok()) {
      ++commits_;
      for (const auto& [key, delta] : deltas) ledger_[key] += delta;
    }
  }

  // --- auditing ------------------------------------------------------------

  /// Mid-run samples only run the partition-tolerant checkers; repeated
  /// sightings of the same violation are collapsed.
  void sample_safety(RunResult& result) {
    check::Report sample;
    check::check_safety(*cluster_, sample);
    check_pairs(sample);
    merge_fresh(sample, "@" + std::to_string(cluster_->now()) + "us ",
                result);
  }

  void audit_quiescent(RunResult& result, SimTime barrier) {
    check::Report audit;
    check::check_quiescent(*cluster_, ledger_, audit);
    check_pairs(audit);
    merge_fresh(audit, "barrier@" + std::to_string(barrier) + "us ", result);
  }

  /// Atomic visibility at the value level: the two pair counters are only
  /// ever incremented together, so they must be equal at every replica that
  /// holds both — at any instant, not just at quiescence.
  void check_pairs(check::Report& report) {
    auto value_of = [](const Crdt* c) -> std::int64_t {
      const auto* counter = dynamic_cast<const PnCounter*>(c);
      return counter == nullptr ? 0 : counter->value();
    };
    for (DcId d = 0; d < cluster_->num_dcs(); ++d) {
      const auto& store = cluster_->dc(d).store();
      const Crdt* a = store.current(pair_keys_[0]);
      const Crdt* b = store.current(pair_keys_[1]);
      if (a == nullptr || b == nullptr) continue;
      if (value_of(a) != value_of(b)) {
        report.add("atomic-visibility",
                   "dc" + std::to_string(d) + " pair torn: " +
                       std::to_string(value_of(a)) + " vs " +
                       std::to_string(value_of(b)));
      }
    }
    for (std::size_t i = 0; i < cluster_->num_edges(); ++i) {
      const EdgeNode& edge = cluster_->edge(i);
      if (!edge.is_cached(pair_keys_[0]) || !edge.is_cached(pair_keys_[1])) {
        continue;
      }
      const std::int64_t a = value_of(edge.cached(pair_keys_[0]));
      const std::int64_t b = value_of(edge.cached(pair_keys_[1]));
      if (a != b) {
        report.add("atomic-visibility",
                   "edge" + std::to_string(edge.id()) + " pair torn: " +
                       std::to_string(a) + " vs " + std::to_string(b));
      }
    }
  }

  void merge_fresh(const check::Report& sub, const std::string& tag,
                   RunResult& result) {
    for (const check::Violation& v : sub.violations()) {
      const std::string fingerprint = v.invariant + "|" + v.detail;
      if (seen_violations_.insert(fingerprint).second) {
        result.report.add(v.invariant, tag + v.detail);
      }
    }
  }

  [[nodiscard]] std::string digest() const {
    std::string s = "state=" + cluster_->dc(0).state_vector().to_string();
    auto append_value = [&](const ObjectKey& key) {
      const auto* c = dynamic_cast<const PnCounter*>(
          cluster_->dc(0).store().current(key));
      s += " " + key.full() + "=" +
           std::to_string(c == nullptr ? 0 : c->value());
    };
    for (const ObjectKey& key : pair_keys_) append_value(key);
    for (const ObjectKey& key : counter_keys_) append_value(key);
    s += " commits=" + std::to_string(commits_);
    return s;
  }

  HarnessConfig cfg_;
  Rng wl_rng_;  // workload randomness, independent of the schedule stream
  std::unique_ptr<Cluster> cluster_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<ObjectKey> pair_keys_;
  std::vector<ObjectKey> counter_keys_;
  std::map<ObjectKey, std::int64_t> ledger_;
  std::set<std::string> seen_violations_;
  std::uint64_t generation_ = 0;
  std::uint64_t commits_ = 0;
};

/// The sweep test's failure handler: rerun-from-scratch predicate for the
/// shrinker. A candidate schedule "still fails" if a fresh harness running
/// it reports any violation or fails to quiesce.
inline std::vector<sim::ChaosEvent> shrink_against(
    const HarnessConfig& cfg, const std::vector<sim::ChaosEvent>& events,
    std::size_t max_trials = 64) {
  return sim::shrink_schedule(
      events,
      [&cfg](const std::vector<sim::ChaosEvent>& candidate) {
        Harness trial(cfg);
        return !trial.run(candidate).ok();
      },
      max_trials);
}

}  // namespace colony::chaos_test
