#include "edge/edge_node.hpp"

#include <algorithm>

#include "security/sealed.hpp"
#include "util/assert.hpp"

namespace colony {

const char* to_string(ClientMode m) {
  switch (m) {
    case ClientMode::kCloudOnly: return "cloud-only";
    case ClientMode::kClientCache: return "client-cache";
    case ClientMode::kPeerGroup: return "peer-group";
  }
  return "unknown";
}

const char* to_string(ReadSource s) {
  switch (s) {
    case ReadSource::kLocal: return "local";
    case ReadSource::kPeer: return "peer";
    case ReadSource::kDc: return "dc";
  }
  return "unknown";
}

EdgeNode::EdgeNode(sim::Network& net, NodeId id, EdgeConfig config)
    : RpcActor(net, id),
      config_(config),
      engine_(txns_, store_, config.num_dcs),
      interest_(config.cache_capacity),
      initial_dc_(config.dc) {
  security::register_acl_crdt();
  security::register_sealed_crdt();
  engine_.set_security_check([this](const Transaction& txn) {
    const Crdt* obj = store_.current(security::acl_object_key());
    return security::txn_allowed(
        dynamic_cast<const security::AclObject*>(obj), txn);
  });
  engine_.set_policy_key(security::acl_object_key());
  engine_.set_key_filter([this](const ObjectKey& key) {
    return key == security::acl_object_key() || interest_.contains(key) ||
           store_.has(key);
  });
  engine_.set_visible_hook([this](const Transaction& txn) {
    for (const OpRecord& op : txn.ops) {
      if (op.key == security::acl_object_key()) {
        engine_.recompute_masks();
        break;
      }
    }
    notify_watchers(txn);
  });
  if (config_.disk != nullptr) schedule_checkpoint();
}

void EdgeNode::notify_watchers(const Transaction& txn) {
  if (watchers_.empty()) return;
  // Collect first: a callback may watch/unwatch re-entrantly.
  std::vector<std::pair<WatchCb, ObjectKey>> to_call;
  for (const auto& [_, watcher] : watchers_) {
    for (const OpRecord& op : txn.ops) {
      if (op.key == watcher.key) {
        to_call.emplace_back(watcher.cb, op.key);
        break;
      }
    }
  }
  for (auto& [cb, key] : to_call) cb(key);
}

std::uint64_t EdgeNode::watch(const ObjectKey& key, WatchCb cb) {
  const std::uint64_t handle = next_watcher_++;
  watchers_.emplace(handle, Watcher{key, std::move(cb)});
  return handle;
}

void EdgeNode::unwatch(std::uint64_t handle) { watchers_.erase(handle); }

void EdgeNode::migrate_transaction(std::vector<ObjectKey> reads,
                                   std::vector<OpRecord> updates,
                                   CloudCb cb) {
  auto run = [this, reads = std::move(reads), updates = std::move(updates),
              cb = std::move(cb)]() mutable {
    proto::DcExecuteReq req;
    req.reads = std::move(reads);
    req.updates = std::move(updates);
    req.user = config_.user;
    req.min_snapshot = engine_.state_vector();
    call(config_.dc, proto::kDcExecute, std::move(req),
         [cb = std::move(cb)](Result<Bytes> r) {
           if (!r.ok()) {
             cb(r.error());
             return;
           }
           cb(codec::from_bytes<proto::DcExecuteResp>(r.value()));
         });
  };
  if (unacked_.empty()) {
    run();
  } else {
    // The DC must first receive the transactions this one depends upon
    // (section 3.9); the commit pump flushes them, then we fire.
    pending_migrated_.push_back(std::move(run));
  }
}

Arb EdgeNode::make_arb() {
  // local_now (not now) so injected clock skew flows into arbitration
  // timestamps — the HLC absorbs it, which is exactly what chaos verifies.
  const Timestamp ts = hlc_.tick(net_.local_now(id()));
  if (wal_enabled()) {
    // The tick value depends on the wall clock, which replay cannot
    // reproduce; log the resulting HLC state instead.
    Encoder rec;
    rec.u64(hlc_.last());
    log_record(kEdgeHlc, rec);
  }
  return Arb{ts, fresh_dot()};
}

Dot EdgeNode::fresh_dot() {
  const Dot dot{id(), ++dot_counter_};
  if (wal_enabled()) {
    Encoder rec;
    rec.u64(dot_counter_);
    log_record(kEdgeDot, rec);
  }
  return dot;
}

std::unique_ptr<Crdt> EdgeNode::read_at(const ObjectKey& key,
                                        const VersionVector& cut) const {
  if (!store_.has(key)) return nullptr;
  return store_.materialize(key, [this, &cut](const Dot& dot) {
    return engine_.is_applied(dot) && !engine_.is_masked(dot) &&
           txns_.visible_at(dot, cut);
  });
}

// ---------------------------------------------------------------------------
// Cache admission / eviction.
// ---------------------------------------------------------------------------

void EdgeNode::admit(const ObjectKey& key) {
  const auto victim = interest_.add(key);
  if (!victim.has_value()) return;
  store_.erase(*victim);
  if (recovering_) return;  // eviction notice is live traffic only
  const NodeId target = group_ ? group_->parent : config_.dc;
  tell(target, proto::kUnsubscribe, proto::UnsubscribeMsg{{*victim}});
}

void EdgeNode::invalidate_cache() {
  log_record(kEdgeInvalidate, Encoder{});
  const auto keys = store_.keys();
  for (const ObjectKey& key : keys) {
    store_.erase(key);
    interest_.remove(key);
  }
}

// ---------------------------------------------------------------------------
// Transactions.
// ---------------------------------------------------------------------------

EdgeNode::Txn EdgeNode::begin() {
  Txn txn;
  txn.id = ++txn_counter_;
  return txn;
}

void EdgeNode::update(Txn& txn, OpRecord op) {
  txn.ops.push_back(std::move(op));
}

void EdgeNode::finish_read(const Txn& txn, const ObjectKey& key,
                           CrdtType type, ReadCb cb, ReadSource source) {
  store_.ensure(key, type);
  interest_.touch(key);
  std::shared_ptr<Crdt> value = store_.current(key)->clone();
  for (const OpRecord& op : txn.ops) {
    if (op.key == key) value->apply(op.payload);
  }
  cb(std::move(value), source);
}

void EdgeNode::read(Txn& txn, const ObjectKey& key, CrdtType type,
                    ReadCb cb) {
  COLONY_ASSERT(config_.mode != ClientMode::kCloudOnly,
                "cloud-only clients use cloud_execute");
  if (store_.has(key)) {
    finish_read(txn, key, type, std::move(cb), ReadSource::kLocal);
    return;
  }
  if (group_) {
    // Collaborative cache first (section 5.1.2): the parent holds the
    // union of the members' interest sets.
    call(group_->parent, proto::kPeerFetch,
         proto::PeerFetchReq{key, true, id()},
         [this, &txn, key, type, cb = std::move(cb)](Result<Bytes> r) {
           if (r.ok()) {
             const auto resp =
                 codec::from_bytes<proto::PeerFetchResp>(r.value());
             if (resp.found) {
               if (wal_enabled()) {
                 // Same record shape as a DC fetch (empty cut): the peer
                 // import is an ordinary durable-state mutation.
                 Encoder rec;
                 rec.u8(1);
                 codec::write(rec, key);
                 codec::write(rec, type);
                 codec::write(rec, resp.snapshot);
                 VersionVector{}.encode(rec);
                 log_record(kEdgeFetch, rec);
               }
               import_fetched(resp.snapshot, VersionVector{});
               admit(key);
               finish_read(txn, key, type, std::move(cb), ReadSource::kPeer);
               return;
             }
           }
           fetch_from_dc(txn, key, type, std::move(cb));
         });
    return;
  }
  fetch_from_dc(txn, key, type, std::move(cb));
}

void EdgeNode::fetch_from_dc(const Txn& txn, const ObjectKey& key,
                             CrdtType type, ReadCb cb) {
  call(config_.dc, proto::kFetchObject,
       proto::FetchReq{key, true, config_.user},
       [this, &txn, key, type, cb = std::move(cb)](Result<Bytes> r) {
         if (r.ok()) {
           const auto resp = codec::from_bytes<proto::FetchResp>(r.value());
           if (wal_enabled()) {
             Encoder rec;
             rec.u8(1);  // found
             codec::write(rec, key);
             codec::write(rec, type);
             codec::write(rec, resp.snapshot);
             resp.cut.encode(rec);
             log_record(kEdgeFetch, rec);
           }
           import_fetched(resp.snapshot, resp.cut);
           admit(key);
           finish_read(txn, key, type, std::move(cb), ReadSource::kDc);
           return;
         }
         if (r.error().code == Error::Code::kNotFound ||
             r.error().message.starts_with("object unknown")) {
           // Nobody has created the object yet: start from the initial
           // (empty) state locally.
           if (wal_enabled()) {
             Encoder rec;
             rec.u8(0);  // not found: created empty
             codec::write(rec, key);
             codec::write(rec, type);
             log_record(kEdgeFetch, rec);
           }
           store_.ensure(key, type);
           admit(key);
           finish_read(txn, key, type, std::move(cb), ReadSource::kDc);
           return;
         }
         // Disconnected and not cached: the transaction cannot proceed
         // (inherent edge limitation, section 4.2).
         cb(Error{Error::Code::kUnavailable,
                  "object not retrievable: " + key.full()},
            ReadSource::kDc);
       });
}

void EdgeNode::import_fetched(const ObjectSnapshot& snap,
                              const VersionVector& cut) {
  store_.import_snapshot(snap);
  // The fetched (K-stable) version may be older than what this node had
  // already observed for the key: replay the locally-known suffix.
  engine_.reapply_missing(snap.key, snap);
  engine_.seed_state(cut);
  engine_.drain();
  if (group_) drain_group_queue();
}

std::vector<ObjectKey> EdgeNode::command_keys(
    const Transaction& record) const {
  std::vector<ObjectKey> keys;
  for (const OpRecord& op : record.ops) keys.push_back(op.key);
  // Synthetic per-origin key: all commands from one node interfere, so
  // EPaxos delivers them in proposal order. Without it, a node's later
  // transaction (which causally depends on its earlier one via the
  // symbolic-commit chain) could be delivered and forwarded first.
  keys.push_back(ObjectKey{"_origin", std::to_string(id())});
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

Transaction EdgeNode::make_transaction(Txn&& txn) {
  Transaction out;
  out.meta.dot = fresh_dot();
  out.meta.origin = id();
  out.meta.user = config_.user;
  out.meta.snapshot = engine_.state_vector();
  if (last_local_unresolved_.has_value()) {
    out.meta.pending_deps.push_back(*last_local_unresolved_);
  }
  out.ops = std::move(txn.ops);
  return out;
}

Result<Dot> EdgeNode::commit(Txn&& txn) {
  if (crashed_) {
    return Error{Error::Code::kUnavailable, "node is crashed"};
  }
  if (config_.mode == ClientMode::kCloudOnly) {
    return Error{Error::Code::kInvalidArgument,
                 "cloud-only clients use cloud_execute"};
  }
  if (txn.ops.empty()) return Dot{};  // read-only: no side effects
  if (unacked_.size() >= config_.max_unacked) {
    return Error{Error::Code::kUnavailable,
                 "commit backlog full (out of storage)"};
  }

  Transaction record = make_transaction(std::move(txn));
  const Dot dot = record.meta.dot;
  const auto keys = command_keys(record);

  if (wal_enabled()) {
    Encoder rec;
    record.encode(rec);
    log_record(kEdgeCommit, rec);
  }

  // Admit the written keys into the cache before applying, so the key
  // filter materialises them.
  for (const OpRecord& op : record.ops) admit(op.key);
  engine_.ingest(record);
  engine_.apply_local(dot);  // read-my-writes (section 3.8)
  last_local_unresolved_ = dot;
  unacked_.push_back(dot);
  ++commits_;

  if (group_) {
    // Variant 2 (section 5.1.4): commit is local; EPaxos ordering and the
    // sync point's DC handoff happen in the background.
    proto::GroupCommand gc;
    gc.ordered = false;
    gc.txn = record;
    consensus::Command cmd{dot, keys, gc.to_bytes()};
    group_->pending_cmds.emplace(dot, cmd);
    group_->undelivered.insert(dot);
    for (const ObjectKey& key : keys) ++group_->own_pending_per_key[key];
    const auto inst = group_->epaxos->propose(std::move(cmd));
    schedule_nudge(inst, group_->epoch);
  } else {
    pump_commits();
  }
  return dot;
}

void EdgeNode::commit_write_through(Txn&& txn, CommitCb cb) {
  const Result<Dot> local = commit(std::move(txn));
  if (!local.ok()) {
    cb(local.error());
    return;
  }
  const Dot dot = local.value();
  if (!dot.valid()) {  // read-only
    cb(dot);
    return;
  }
  ack_waiters_.emplace(dot, std::move(cb));
}

void EdgeNode::commit_ordered(Txn&& txn, CommitCb cb) {
  if (!group_) {
    cb(Error{Error::Code::kInvalidArgument,
             "ordered commit requires a peer group"});
    return;
  }
  if (txn.ops.empty()) {
    cb(Dot{});
    return;
  }
  Transaction record = make_transaction(std::move(txn));
  const Dot dot = record.meta.dot;
  const auto keys = command_keys(record);

  proto::GroupCommand gc;
  gc.ordered = true;
  gc.txn = record;
  for (const ObjectKey& key : keys) {
    const auto seen = group_->seen_per_key.count(key)
                          ? group_->seen_per_key.at(key)
                          : 0;
    const auto own = group_->own_pending_per_key.count(key)
                         ? group_->own_pending_per_key.at(key)
                         : 0;
    gc.expected.emplace_back(key, seen + own);
  }

  for (const OpRecord& op : record.ops) admit(op.key);
  // Stored but not applied until consensus orders it (variant 1); going
  // through the engine lets pending dependants see the record arrive.
  // Unlogged (group state is volatile): flag the node for verification.
  group_tainted_ = true;
  engine_.admit(record);
  consensus::Command cmd{dot, keys, gc.to_bytes()};
  group_->pending_cmds.emplace(dot, cmd);
  group_->undelivered.insert(dot);
  group_->ordered_waiting.emplace(dot, std::move(cb));
  for (const ObjectKey& key : keys) ++group_->own_pending_per_key[key];
  const auto inst = group_->epaxos->propose(std::move(cmd));
  schedule_nudge(inst, group_->epoch);
}

void EdgeNode::cloud_execute(std::vector<ObjectKey> reads,
                             std::vector<OpRecord> updates, CloudCb cb) {
  call(config_.dc, proto::kDcExecute,
       proto::DcExecuteReq{std::move(reads), std::move(updates),
                           config_.user},
       [cb = std::move(cb)](Result<Bytes> r) {
         if (!r.ok()) {
           cb(r.error());
           return;
         }
         cb(codec::from_bytes<proto::DcExecuteResp>(r.value()));
       });
}

// ---------------------------------------------------------------------------
// Commit pump (direct DC attachment).
// ---------------------------------------------------------------------------

void EdgeNode::pump_commits() {
  if (crashed_ || group_ || pump_in_flight_ || unacked_.empty()) return;
  pump_in_flight_ = true;
  const Dot dot = unacked_.front();
  const Transaction* txn = txns_.find(dot);
  COLONY_ASSERT(txn != nullptr, "unacked dot without record");
  call(config_.dc, proto::kEdgeCommit, proto::EdgeCommitReq{*txn},
       [this, dot](Result<Bytes> r) {
         pump_in_flight_ = false;
         if (r.ok()) {
           on_commit_ack(
               dot, codec::from_bytes<proto::EdgeCommitResp>(r.value()));
           pump_commits();
           return;
         }
         // Offline or incompatible: retry later; duplicates are filtered
         // by dot at the DC (section 3.8). The retry chain dies with its
         // incarnation (the restarted pump starts its own).
         net_.scheduler().after(config_.retry_interval,
                                [this, inc = incarnation_] {
                                  if (inc == incarnation_) pump_commits();
                                });
       });
}

void EdgeNode::on_commit_ack(const Dot& dot,
                             const proto::EdgeCommitResp& resp) {
  if (wal_enabled()) {
    Encoder rec;
    dot.encode(rec);
    rec.u32(resp.dc);
    rec.u64(resp.ts);
    resp.resolved_snapshot.encode(rec);
    log_record(kEdgeAck, rec);
  }
  engine_.resolve_full(dot, resp.dc, resp.ts, resp.resolved_snapshot);
  const auto it = std::find(unacked_.begin(), unacked_.end(), dot);
  if (it != unacked_.end()) unacked_.erase(it);
  if (last_local_unresolved_ == dot) last_local_unresolved_.reset();
  if (const auto wit = ack_waiters_.find(dot); wit != ack_waiters_.end()) {
    CommitCb cb = std::move(wit->second);
    ack_waiters_.erase(wit);
    cb(dot);
  }
  if (unacked_.empty() && !pending_migrated_.empty()) {
    // The chain flushed: launch deferred migrated transactions (§3.9).
    std::vector<std::function<void()>> ready;
    ready.swap(pending_migrated_);
    for (auto& run : ready) run();
  }
}

// ---------------------------------------------------------------------------
// Session management.
// ---------------------------------------------------------------------------

void EdgeNode::subscribe(std::vector<ObjectKey> keys, DoneCb done) {
  const NodeId target = group_ ? group_->parent : config_.dc;
  call(target, proto::kSubscribe, proto::SubscribeReq{keys, config_.user},
       [this, keys, done = std::move(done)](Result<Bytes> r) {
         if (!r.ok()) {
           done(r.error());
           return;
         }
         const auto resp = codec::from_bytes<proto::SubscribeResp>(r.value());
         if (wal_enabled()) {
           Encoder rec;
           codec::write(rec, keys);
           codec::write(rec, resp.snapshots);
           resp.cut.encode(rec);
           log_record(kEdgeSubscribe, rec);
         }
         for (const ObjectSnapshot& snap : resp.snapshots) {
           store_.import_snapshot(snap);
           engine_.reapply_missing(snap.key, snap);
         }
         for (const ObjectKey& key : keys) admit(key);
         engine_.seed_state(resp.cut);
         engine_.drain();
         if (group_) drain_group_queue();
         done(Result<void>{});
       });
}

void EdgeNode::open_session(std::vector<std::string> buckets, DoneCb done) {
  call(config_.dc, proto::kOpenSession,
       proto::OpenSessionReq{config_.user, std::move(buckets)},
       [this, done = std::move(done)](Result<Bytes> r) {
         if (!r.ok()) {
           done(r.error());
           return;
         }
         const auto resp =
             codec::from_bytes<proto::OpenSessionResp>(r.value());
         if (wal_enabled() && !resp.keys.empty()) {
           // Keys stay valid across disconnection (section 5.3), so they
           // must also survive a crash.
           Encoder rec;
           codec::write(rec, resp.keys);
           log_record(kEdgeSessionKey, rec);
         }
         for (const auto& [bucket, key] : resp.keys) {
           session_keys_[bucket] = key;
         }
         done(Result<void>{});
       });
}

std::optional<security::SessionKey> EdgeNode::session_key(
    const std::string& bucket) const {
  const auto it = session_keys_.find(bucket);
  if (it == session_keys_.end()) return std::nullopt;
  return it->second;
}

void EdgeNode::migrate_to_dc(NodeId new_dc, DoneCb done) {
  if (wal_enabled()) {
    Encoder rec;
    rec.u64(new_dc);
    log_record(kEdgeMigrate, rec);
  }
  config_.dc = new_dc;
  call(new_dc, proto::kMigrate,
       proto::MigrateReq{engine_.state_vector(), interest_.keys(),
                         config_.user, engine_.seeded_cut()},
       [this, done = std::move(done)](Result<Bytes> r) {
         if (!r.ok()) {
           done(r.error());
           return;
         }
         const auto resp = codec::from_bytes<proto::MigrateResp>(r.value());
         if (!resp.compatible) {
           // The new DC is missing our dependencies (section 3.8); the
           // caller may retry once the DC catches up.
           done(Error{Error::Code::kIncompatible,
                      "new DC lacks causal dependencies"});
           return;
         }
         // Do NOT seed resp.cut here: the cut can cover transactions
         // still in flight (or lost) on the old DC's channel, and seeding
         // past them would let their successors become visible first. The
         // new DC backfills everything between our state and its cut over
         // the session channel and then announces the cut with a receive
         // watermark — the safe seeding point.
         // Re-send unacknowledged transactions; the dot filter at the DCs
         // drops duplicates.
         pump_commits();
         done(Result<void>{});
       });
}

// ---------------------------------------------------------------------------
// Peer group.
// ---------------------------------------------------------------------------

void EdgeNode::join_group(NodeId parent, DoneCb done) {
  call(parent, proto::kGroupJoin,
       proto::GroupJoinReq{id(), config_.user, engine_.state_vector(),
                           interest_.keys()},
       [this, parent, done = std::move(done)](Result<Bytes> r) {
         if (!r.ok()) {
           done(r.error());
           return;
         }
         const auto resp = codec::from_bytes<proto::GroupJoinResp>(r.value());
         if (!resp.accepted) {
           done(Error{Error::Code::kIncompatible,
                      "group parent rejected join (causal incompatibility)"});
           return;
         }
         Group g;
         g.parent = parent;
         g.epoch = resp.epoch;
         g.members = resp.members;
         if (group_) {
           // Rejoin after a disconnection: carry over commands that were
           // proposed into the old (dead) epoch so they get re-ordered.
           g.undelivered = std::move(group_->undelivered);
           g.pending_cmds = std::move(group_->pending_cmds);
           g.ordered_waiting = std::move(group_->ordered_waiting);
         }
         // Locally committed but never group-delivered transactions from a
         // fully offline phase also need (re-)proposal.
         for (const Dot& dot : unacked_) {
           if (!g.undelivered.contains(dot) && txns_.contains(dot)) {
             const Transaction* txn = txns_.find(dot);
             proto::GroupCommand gc;
             gc.ordered = false;
             gc.txn = *txn;
             g.pending_cmds.emplace(
                 dot,
                 consensus::Command{dot, command_keys(*txn), gc.to_bytes()});
             g.undelivered.insert(dot);
           }
         }
         group_.emplace(std::move(g));
         rebuild_epaxos();
         // Repopulate the cache through the group's content-sharing
         // network (section 6.3): relays missed while disconnected are
         // recovered from the parent's snapshots.
         const auto interest = interest_.keys();
         if (!interest.empty()) {
           subscribe(interest, [](Result<void>) {});
         }
         done(Result<void>{});
       });
}

void EdgeNode::leave_group(DoneCb done) {
  if (!group_) {
    done(Result<void>{});
    return;
  }
  const NodeId parent = group_->parent;
  group_.reset();
  call(parent, proto::kGroupLeave, proto::GroupLeaveReq{id()},
       [done = std::move(done)](Result<Bytes> /*r*/) {
         done(Result<void>{});
       });
  // Fall back to direct DC attachment for any unacknowledged commits.
  pump_commits();
}

void EdgeNode::schedule_nudge(consensus::InstanceId inst,
                              std::uint64_t epoch) {
  net_.scheduler().after(300 * kMillisecond, [this, inst, epoch] {
    if (!group_ || group_->epoch != epoch) return;  // reconfigured
    const auto status = group_->epaxos->status(inst);
    if (status >= consensus::InstanceStatus::kCommitted ||
        status == consensus::InstanceStatus::kNone) {
      return;
    }
    group_->epaxos->nudge(inst);
    schedule_nudge(inst, epoch);  // keep trying until it commits
  });
}

void EdgeNode::rebuild_epaxos() {
  COLONY_ASSERT(group_.has_value(), "no group to rebuild");
  group_->epaxos = std::make_unique<consensus::Epaxos>(
      id(), group_->members,
      [this](NodeId to, const consensus::EpaxosMsg& msg) {
        tell(to, proto::kEpaxos, proto::EpaxosEnvelope{group_->epoch, msg});
      },
      [this](const consensus::Command& cmd) { on_group_deliver(cmd); });
  // Re-propose own undelivered commands in the new epoch.
  for (const Dot& dot : group_->undelivered) {
    const auto it = group_->pending_cmds.find(dot);
    if (it != group_->pending_cmds.end()) {
      const auto inst = group_->epaxos->propose(it->second);
      schedule_nudge(inst, group_->epoch);
    }
  }
}

void EdgeNode::on_group_deliver(const consensus::Command& cmd) {
  COLONY_ASSERT(group_.has_value(), "delivery without group");
  const proto::GroupCommand gc = proto::GroupCommand::from_bytes(cmd.payload);
  const Dot dot = gc.txn.meta.dot;

  bool conflict = false;
  if (gc.ordered) {
    for (const auto& [key, expected] : gc.expected) {
      const auto it = group_->seen_per_key.find(key);
      if (it != group_->seen_per_key.end() && it->second > expected) {
        conflict = true;
        break;
      }
    }
  }
  for (const ObjectKey& key : cmd.keys) ++group_->seen_per_key[key];

  // Group deliveries mutate local state without WAL records (group state
  // is volatile by design; §9 of DESIGN.md): mark the node so in-place
  // recovery verification is skipped until the next crash resets it.
  group_tainted_ = true;

  if (gc.txn.meta.origin == id()) {
    group_->undelivered.erase(dot);
    group_->pending_cmds.erase(dot);
    for (const ObjectKey& key : cmd.keys) {
      auto it = group_->own_pending_per_key.find(key);
      if (it != group_->own_pending_per_key.end() && it->second > 0) {
        --it->second;
      }
    }
    const auto wit = group_->ordered_waiting.find(dot);
    if (wit != group_->ordered_waiting.end()) {
      CommitCb cb = std::move(wit->second);
      group_->ordered_waiting.erase(wit);
      if (conflict) {
        txns_.erase(dot);  // PSI write-write conflict: abort (section 5.1.4)
        cb(Error{Error::Code::kAborted, "PSI write-write conflict"});
        return;
      }
      engine_.apply_local(dot);
      last_local_unresolved_ = dot;
      unacked_.push_back(dot);
      cb(dot);
    }
    return;  // variant-2 own transactions were applied at commit
  }

  if (conflict) return;  // deterministically aborted everywhere
  engine_.ingest(gc.txn);
  group_->apply_queue.push_back(dot);
  drain_group_queue();
}

void EdgeNode::drain_group_queue() {
  if (!group_) return;
  while (!group_->apply_queue.empty()) {
    const Dot dot = group_->apply_queue.front();
    if (!engine_.apply_causal(dot)) break;  // strict SI order: head blocks
    group_->apply_queue.pop_front();
  }
}

// ---------------------------------------------------------------------------
// Message handling.
// ---------------------------------------------------------------------------

void EdgeNode::on_message(NodeId from, std::uint32_t kind,
                          ByteView body) {
  if (crashed_) return;  // dead process: frames fall on the floor
  switch (kind) {
    case proto::kPushTxn: {
      const auto msg = codec::from_bytes<proto::PushTxn>(body);
      const auto push = push_recv_[from].on_push(msg.session_seq);
      if (push.ack != 0) {
        tell(from, proto::kPushAck, proto::PushAck{push.ack});
      }
      if (!push.deliver) break;  // after-gap: await the sender's rewind
      if (wal_enabled()) {
        // Delivered pushes (duplicates included — they re-drive the same
        // receive-state transition) are the channel's durable history:
        // replaying them restores both the engine AND push_recv_, so the
        // restarted node acks from the exact prefix it had confirmed.
        Encoder rec;
        rec.u64(from);
        rec.u64(msg.session_seq);
        msg.txn.encode(rec);
        log_record(kEdgePush, rec);
      }
      engine_.ingest(msg.txn);
      drain_group_queue();
      break;
    }
    case proto::kStateUpdate: {
      const auto msg = codec::from_bytes<proto::StateUpdate>(body);
      if (!push_recv_[from].covers(msg.seq_watermark)) {
        // The cut assumes session pushes we have not received (they were
        // lost in a crash window); seeding it would make successors of the
        // lost push visible first. The DC's stall detection rewinds the
        // channel and re-announces the cut.
        break;
      }
      if (wal_enabled()) {
        Encoder rec;
        msg.cut.encode(rec);
        log_record(kEdgeSeed, rec);
      }
      engine_.seed_state(msg.cut);
      engine_.drain();
      drain_group_queue();
      break;
    }
    case proto::kResolutionRelay: {
      const auto msg = codec::from_bytes<proto::ResolutionMsg>(body);
      if (wal_enabled()) {
        Encoder rec;
        msg.dot.encode(rec);
        rec.u32(msg.dc);
        rec.u64(msg.ts);
        msg.resolved_snapshot.encode(rec);
        log_record(kEdgeAck, rec);
      }
      engine_.resolve_full(msg.dot, msg.dc, msg.ts, msg.resolved_snapshot);
      const auto it = std::find(unacked_.begin(), unacked_.end(), msg.dot);
      if (it != unacked_.end()) unacked_.erase(it);
      if (last_local_unresolved_ == msg.dot) last_local_unresolved_.reset();
      drain_group_queue();
      if (const auto wit = ack_waiters_.find(msg.dot);
          wit != ack_waiters_.end()) {
        CommitCb cb = std::move(wit->second);
        ack_waiters_.erase(wit);
        cb(msg.dot);
      }
      if (unacked_.empty() && !pending_migrated_.empty()) {
        std::vector<std::function<void()>> ready;
        ready.swap(pending_migrated_);
        for (auto& run : ready) run();
      }
      break;
    }
    case proto::kGroupMembership: {
      const auto msg = codec::from_bytes<proto::MembershipMsg>(body);
      if (!group_) break;
      if (std::find(msg.members.begin(), msg.members.end(), id()) ==
          msg.members.end()) {
        group_.reset();  // removed from the group
        pump_commits();
        break;
      }
      group_->epoch = msg.epoch;
      group_->members = msg.members;
      rebuild_epaxos();
      break;
    }
    case proto::kEpaxos: {
      const auto env = codec::from_bytes<proto::EpaxosEnvelope>(body);
      if (!group_ || env.epoch != group_->epoch) break;  // stale epoch
      group_->epaxos->on_message(from, env.msg);
      break;
    }
    default:
      break;
  }
}

void EdgeNode::on_request(NodeId /*from*/, std::uint32_t method,
                          ByteView payload, ReplyFn reply) {
  if (crashed_) return;  // dead process: the caller's RPC times out
  switch (method) {
    case proto::kPeerFetch: {
      // Collaborative cache: serve a neighbour from the local cache.
      const auto req = codec::from_bytes<proto::PeerFetchReq>(payload);
      proto::PeerFetchResp resp;
      if (auto snap = store_.export_snapshot(req.key)) {
        resp.found = true;
        resp.snapshot = std::move(*snap);
      }
      reply(codec::to_bytes(resp));
      break;
    }
    case proto::kGroupPing:
      reply(codec::to_bytes(true));
      break;
    default:
      reply(Error{Error::Code::kInvalidArgument, "unknown edge method"});
  }
}

// ---------------------------------------------------------------------------
// Durability: WAL logging, checkpoints, crash, recovery.
// ---------------------------------------------------------------------------

void EdgeNode::log_record(std::uint32_t type, const Encoder& payload) {
  if (!wal_enabled()) return;
  config_.disk->append(type, payload.data());
}

void EdgeNode::replay_record(std::uint32_t type, ByteView payload) {
  Decoder dec(payload);
  switch (type) {
    case kEdgeCommit: {
      const Transaction record = Transaction::decode(dec);
      COLONY_ASSERT(dec.ok() && dec.done(), "torn kEdgeCommit payload");
      const Dot dot = record.meta.dot;
      for (const OpRecord& op : record.ops) admit(op.key);
      engine_.ingest(record);
      engine_.apply_local(dot);
      last_local_unresolved_ = dot;
      unacked_.push_back(dot);
      ++commits_;
      break;
    }
    case kEdgeAck: {
      const Dot dot = Dot::decode(dec);
      const DcId dc = dec.u32();
      const Timestamp ts = dec.u64();
      const VersionVector snapshot = VersionVector::decode(dec);
      COLONY_ASSERT(dec.ok() && dec.done(), "torn kEdgeAck payload");
      // The durable core of on_commit_ack / kResolutionRelay; waiters and
      // deferred migrations are volatile and not re-fired.
      engine_.resolve_full(dot, dc, ts, snapshot);
      const auto it = std::find(unacked_.begin(), unacked_.end(), dot);
      if (it != unacked_.end()) unacked_.erase(it);
      if (last_local_unresolved_ == dot) last_local_unresolved_.reset();
      break;
    }
    case kEdgePush: {
      const NodeId from = dec.u64();
      const std::uint64_t seq = dec.u64();
      const Transaction txn = Transaction::decode(dec);
      COLONY_ASSERT(dec.ok() && dec.done(), "torn kEdgePush payload");
      // Re-drive the receive state machine (only delivered pushes were
      // logged, so the transitions replay verbatim); no ack is sent.
      push_recv_[from].on_push(seq);
      engine_.ingest(txn);
      break;
    }
    case kEdgeSeed: {
      const VersionVector cut = VersionVector::decode(dec);
      COLONY_ASSERT(dec.ok() && dec.done(), "torn kEdgeSeed payload");
      engine_.seed_state(cut);
      engine_.drain();
      break;
    }
    case kEdgeSubscribe: {
      const auto keys = codec::read<std::vector<ObjectKey>>(dec);
      const auto snapshots = codec::read<std::vector<ObjectSnapshot>>(dec);
      const VersionVector cut = VersionVector::decode(dec);
      COLONY_ASSERT(dec.ok() && dec.done(), "torn kEdgeSubscribe payload");
      for (const ObjectSnapshot& snap : snapshots) {
        store_.import_snapshot(snap);
        engine_.reapply_missing(snap.key, snap);
      }
      for (const ObjectKey& key : keys) admit(key);
      engine_.seed_state(cut);
      engine_.drain();
      break;
    }
    case kEdgeFetch: {
      const bool found = dec.u8() != 0;
      const auto key = codec::read<ObjectKey>(dec);
      const auto type_tag = codec::read<CrdtType>(dec);
      if (found) {
        const auto snap = codec::read<ObjectSnapshot>(dec);
        const VersionVector cut = VersionVector::decode(dec);
        COLONY_ASSERT(dec.ok() && dec.done(), "torn kEdgeFetch payload");
        store_.import_snapshot(snap);
        engine_.reapply_missing(snap.key, snap);
        engine_.seed_state(cut);
        engine_.drain();
      } else {
        COLONY_ASSERT(dec.ok() && dec.done(), "torn kEdgeFetch payload");
        store_.ensure(key, type_tag);
      }
      admit(key);
      // finish_read's ensure() ran after the import on the live path; it
      // is a no-op there but must run for the found case too, in case the
      // snapshot import skipped an empty object.
      store_.ensure(key, type_tag);
      break;
    }
    case kEdgeDot: {
      dot_counter_ = dec.u64();
      COLONY_ASSERT(dec.ok() && dec.done(), "torn kEdgeDot payload");
      break;
    }
    case kEdgeHlc: {
      hlc_.restore(dec.u64());
      COLONY_ASSERT(dec.ok() && dec.done(), "torn kEdgeHlc payload");
      break;
    }
    case kEdgeMigrate: {
      config_.dc = dec.u64();
      COLONY_ASSERT(dec.ok() && dec.done(), "torn kEdgeMigrate payload");
      break;
    }
    case kEdgeInvalidate: {
      COLONY_ASSERT(dec.done(), "kEdgeInvalidate carries no payload");
      invalidate_cache();
      break;
    }
    case kEdgeSessionKey: {
      const auto keys = codec::read<
          std::vector<std::pair<std::string, security::SessionKey>>>(dec);
      COLONY_ASSERT(dec.ok() && dec.done(), "torn kEdgeSessionKey payload");
      for (const auto& [bucket, key] : keys) session_keys_[bucket] = key;
      break;
    }
    default:
      COLONY_ASSERT(false, "unknown edge WAL record type");
  }
}

void EdgeNode::encode_checkpoint(Encoder& enc) const {
  enc.u32(1);  // checkpoint layout version
  enc.u64(config_.dc);
  enc.u64(dot_counter_);
  enc.u64(commits_);
  enc.u64(hlc_.last());
  {
    auto keys = interest_.keys();
    std::sort(keys.begin(), keys.end());
    codec::write(enc, keys);
  }
  enc.u32(static_cast<std::uint32_t>(push_recv_.size()));
  for (const auto& [node, recv] : push_recv_) {
    enc.u64(node);
    enc.u64(recv.last_seq);
  }
  enc.u32(static_cast<std::uint32_t>(unacked_.size()));
  for (const Dot& dot : unacked_) dot.encode(enc);
  codec::write(enc, last_local_unresolved_);
  enc.u32(static_cast<std::uint32_t>(session_keys_.size()));
  for (const auto& [bucket, key] : session_keys_) {
    enc.str(bucket);
    enc.u64(key);
  }
  txns_.encode(enc);
  store_.encode(enc);
  engine_.encode_state(enc);
}

void EdgeNode::decode_checkpoint(ByteView snapshot) {
  Decoder dec(snapshot);
  const std::uint32_t version = dec.u32();
  COLONY_ASSERT(version == 1, "unknown edge checkpoint layout");
  config_.dc = dec.u64();
  dot_counter_ = dec.u64();
  commits_ = dec.u64();
  hlc_.restore(dec.u64());
  interest_ = InterestSet(config_.cache_capacity);
  for (const auto& key : codec::read<std::vector<ObjectKey>>(dec)) {
    interest_.add(key);
  }
  push_recv_.clear();
  const std::uint32_t recv_count = dec.u32();
  for (std::uint32_t i = 0; i < recv_count && dec.ok(); ++i) {
    const NodeId node = dec.u64();
    push_recv_[node].last_seq = dec.u64();
  }
  unacked_.clear();
  const std::uint32_t unacked_count = dec.u32();
  for (std::uint32_t i = 0; i < unacked_count && dec.ok(); ++i) {
    unacked_.push_back(Dot::decode(dec));
  }
  last_local_unresolved_ = codec::read<std::optional<Dot>>(dec);
  session_keys_.clear();
  const std::uint32_t key_count = dec.u32();
  for (std::uint32_t i = 0; i < key_count && dec.ok(); ++i) {
    const std::string bucket = dec.str();
    session_keys_[bucket] = dec.u64();
  }
  txns_.decode(dec);
  store_.decode(dec);
  engine_.decode_state(dec);
  COLONY_ASSERT(dec.ok() && dec.done(), "edge checkpoint decode mismatch");
}

void EdgeNode::encode_durable(Encoder& enc) const {
  enc.u64(config_.dc);
  enc.u64(dot_counter_);
  enc.u64(commits_);
  enc.u64(hlc_.last());
  {
    auto keys = interest_.keys();
    std::sort(keys.begin(), keys.end());
    codec::write(enc, keys);
  }
  enc.u32(static_cast<std::uint32_t>(push_recv_.size()));
  for (const auto& [node, recv] : push_recv_) {
    enc.u64(node);
    enc.u64(recv.last_seq);
  }
  enc.u32(static_cast<std::uint32_t>(unacked_.size()));
  for (const Dot& dot : unacked_) dot.encode(enc);
  codec::write(enc, last_local_unresolved_);
  enc.u32(static_cast<std::uint32_t>(session_keys_.size()));
  for (const auto& [bucket, key] : session_keys_) {
    enc.str(bucket);
    enc.u64(key);
  }
  txns_.encode(enc);
  store_.encode(enc);
  engine_.encode_state(enc);
}

void EdgeNode::schedule_checkpoint() {
  net_.scheduler().after(config_.checkpoint_interval,
                         [this, inc = incarnation_] {
                           if (inc == incarnation_) checkpoint_tick();
                         });
}

void EdgeNode::checkpoint_tick() {
  if (config_.disk != nullptr && !crashed_ &&
      config_.disk->records_since_checkpoint() > 0) {
    Encoder snapshot;
    encode_checkpoint(snapshot);
    config_.disk->write_checkpoint(snapshot.data());
    // Reclaim the log prefix (and superseded checkpoints) the fresh
    // checkpoint made redundant.
    config_.disk->truncate_to_checkpoint();
  }
  schedule_checkpoint();
}

void EdgeNode::crash() {
  COLONY_ASSERT(config_.disk != nullptr,
                "crash() on a node without durable storage");
  crashed_ = true;
  ++incarnation_;
  abort_pending_calls();
  config_.dc = initial_dc_;  // migrations replay from zero
  interest_ = InterestSet(config_.cache_capacity);
  push_recv_.clear();
  dot_counter_ = 0;
  txn_counter_ = 0;
  commits_ = 0;
  unacked_.clear();
  pump_in_flight_ = false;
  last_local_unresolved_.reset();
  group_.reset();
  group_tainted_ = false;
  watchers_.clear();
  next_watcher_ = 1;
  pending_migrated_.clear();
  ack_waiters_.clear();
  session_keys_.clear();
  hlc_.restore(0);
  txns_.clear();
  store_.clear();
  engine_.reset();
}

void EdgeNode::recover(bool reconnect) {
  COLONY_ASSERT(config_.disk != nullptr,
                "recover() on a node without durable storage");
  const storage::WalRecovery rec = config_.disk->recover();
  crashed_ = false;
  recovering_ = true;
  if (rec.checkpoint.has_value()) decode_checkpoint(*rec.checkpoint);
  for (const storage::WalRecord& record : rec.tail) {
    replay_record(record.type, record.payload);
  }
  recovering_ = false;
  if (rec.torn) config_.disk->truncate_to(rec.valid_bytes);
  if (reconnect) {
    ++incarnation_;
    // Re-send whatever the DC never acknowledged; its dot filter drops
    // anything that did arrive before the crash. The session channel
    // resyncs from the DC side once it sees the node back up.
    pump_commits();
    schedule_checkpoint();
  }
}

bool EdgeNode::verify_recovery(std::string* why) const {
  // No disk: nothing to verify. Crashed: state is intentionally empty.
  // Group-tainted: consensus mutated state outside the WAL (volatile by
  // design). Bounded cache: LRU order (hence eviction victims) depends on
  // unlogged reads, so exact restoration is not part of the contract.
  if (config_.disk == nullptr || crashed_ || in_group() || group_tainted_ ||
      config_.cache_capacity != 0) {
    return true;
  }
  sim::Scheduler scheduler;
  sim::Network net(scheduler, /*seed=*/1);
  storage::Wal disk(*config_.disk);
  EdgeConfig cfg = config_;
  cfg.dc = initial_dc_;  // replay rebuilds any migration
  cfg.disk = &disk;
  EdgeNode replica(net, id(), cfg);
  replica.recover(/*reconnect=*/false);
  Encoder mine;
  Encoder theirs;
  encode_durable(mine);
  replica.encode_durable(theirs);
  if (mine.data() == theirs.data()) return true;
  if (why != nullptr) {
    *why = "edge " + std::to_string(id()) +
           " durable projection diverges after recovery: live " +
           std::to_string(mine.size()) + "B vs replica " +
           std::to_string(theirs.size()) + "B (commits " +
           std::to_string(commits_) + " vs " +
           std::to_string(replica.commits_) + ")";
  }
  return false;
}

}  // namespace colony
