// Edge client node: local cache, asynchronous transaction runtime, offline
// queue, peer-group membership, and migration.
//
// One EdgeNode models one far-edge device (phone, browser). It runs in one
// of three client modes — the paper's evaluation configurations (§7.3):
//
//   kCloudOnly    "AntidoteDB": no local cache; every transaction executes
//                 at the connected DC (kDcExecute).
//   kClientCache  "SwiftCloud": local cache with interest-set
//                 subscriptions; transactions execute and commit locally
//                 and are acknowledged asynchronously by the DC (§3.7).
//   kPeerGroup    "Colony": additionally a member of a peer group — an SI
//                 zone ordered by EPaxos, with a collaborative cache and a
//                 parent acting as sync point (§5.1).
//
// Reads report where they were served from (local cache / peer group / DC),
// which is exactly the classification plotted in Figures 5-7.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "clock/hlc.hpp"
#include "consensus/epaxos.hpp"
#include "core/txn.hpp"
#include "core/visibility.hpp"
#include "dc/messages.hpp"
#include "security/acl.hpp"
#include "security/crypto_sim.hpp"
#include "sim/rpc.hpp"
#include "storage/cache.hpp"
#include "storage/journal_store.hpp"
#include "storage/wal.hpp"

namespace colony {

enum class ClientMode {
  kCloudOnly,    // AntidoteDB-like baseline
  kClientCache,  // SwiftCloud-like baseline
  kPeerGroup,    // full Colony
};

[[nodiscard]] const char* to_string(ClientMode m);

/// Where a read was satisfied — the latency classes of Figures 5-7.
enum class ReadSource : std::uint8_t {
  kLocal = 0,  // client cache hit
  kPeer = 1,   // peer-group collaborative cache hit
  kDc = 2,     // remote read from the connected DC
};

[[nodiscard]] const char* to_string(ReadSource s);

struct EdgeConfig {
  ClientMode mode = ClientMode::kClientCache;
  NodeId dc = 0;  // connected DC node id
  UserId user = 0;
  std::size_t num_dcs = 1;
  std::size_t cache_capacity = 0;  // objects; 0 = unbounded
  /// Commit backpressure: block new commits while this many transactions
  /// await DC acknowledgement ("runs out of storage", §3).
  std::size_t max_unacked = 256;
  SimTime retry_interval = 500 * kMillisecond;
  /// Durable write-ahead log, owned by the topology builder. nullptr = no
  /// durability; such a node must never be crash-restarted.
  storage::Wal* disk = nullptr;
  /// Cadence of full-state checkpoints into the WAL.
  SimTime checkpoint_interval = 400 * kMillisecond;
};

class EdgeNode final : public sim::RpcActor {
 public:
  EdgeNode(sim::Network& net, NodeId id, EdgeConfig config);

  // --- interactive transactions (kClientCache / kPeerGroup) --------------

  struct Txn {
    std::uint64_t id = 0;
    std::vector<OpRecord> ops;  // buffered updates, applied at commit
  };

  using ReadCb =
      std::function<void(Result<std::shared_ptr<Crdt>>, ReadSource)>;
  using DoneCb = std::function<void(Result<void>)>;
  using CommitCb = std::function<void(Result<Dot>)>;

  Txn begin();

  /// Read `key` within `txn`: the transaction's snapshot plus its own
  /// buffered updates. Cache hits call back synchronously; misses fetch
  /// from the peer group (if any) and then the DC.
  void read(Txn& txn, const ObjectKey& key, CrdtType type, ReadCb cb);

  /// Buffer an update.
  void update(Txn& txn, OpRecord op);

  /// Commit locally (asynchronous DC acknowledgement, §3.7). In peer-group
  /// mode this is the paper's *second* commit variant: EPaxos ordering is
  /// off the critical path (§5.1.4). Fails with kUnavailable when the
  /// unacked queue is full, and with kInvalidArgument in kCloudOnly mode.
  Result<Dot> commit(Txn&& txn);

  /// Peer-group commit variant 1 (PSI on the critical path, §5.1.4): the
  /// transaction is submitted to EPaxos first and applies — or aborts on a
  /// write-write conflict — when consensus orders it.
  void commit_ordered(Txn&& txn, CommitCb cb);

  /// Write-through commit (a §6.1 cache-policy option): commits locally
  /// like commit(), then invokes `cb` once the DC has assigned the concrete
  /// commit timestamp (durability in the cloud). The default commit() is
  /// the write-back policy.
  void commit_write_through(Txn&& txn, CommitCb cb);

  // --- cloud-mode execution (kCloudOnly and migrated transactions §3.9) --

  using CloudCb = std::function<void(Result<proto::DcExecuteResp>)>;
  void cloud_execute(std::vector<ObjectKey> reads,
                     std::vector<OpRecord> updates, CloudCb cb);

  /// Migrate a resource-hungry transaction to the connected DC
  /// (section 3.9): flushes this node's pending local commits, primes the
  /// snapshot with the node's state vector, and executes at the DC with
  /// the same effect as a local run — only performance differs.
  void migrate_transaction(std::vector<ObjectKey> reads,
                           std::vector<OpRecord> updates, CloudCb cb);

  // --- reactive subscriptions (section 6.1) -------------------------------

  using WatchCb = std::function<void(const ObjectKey&)>;
  /// Invoke `cb` whenever a visible update touches `key` (including this
  /// node's own commits). Returns a handle for unwatch.
  std::uint64_t watch(const ObjectKey& key, WatchCb cb);
  void unwatch(std::uint64_t handle);

  // --- session management --------------------------------------------------

  /// Declare interest and seed the cache from the DC (or the group parent).
  void subscribe(std::vector<ObjectKey> keys, DoneCb done);

  /// Open a session with the cloud session manager (section 6.2): obtain
  /// one symmetric session key per bucket the user may read. Keys remain
  /// valid across disconnection (section 5.3).
  void open_session(std::vector<std::string> buckets, DoneCb done);
  [[nodiscard]] std::optional<security::SessionKey> session_key(
      const std::string& bucket) const;

  /// Drop the whole cache (used to model a stale/invalid cache, Fig. 7).
  void invalidate_cache();

  // --- peer group ----------------------------------------------------------

  void join_group(NodeId parent, DoneCb done);
  void leave_group(DoneCb done);
  [[nodiscard]] bool in_group() const { return group_.has_value(); }
  [[nodiscard]] std::uint64_t group_epoch() const {
    return group_ ? group_->epoch : 0;
  }
  /// Group consensus instance (nullptr outside a group) — for stats.
  [[nodiscard]] const consensus::Epaxos* group_consensus() const {
    return group_ ? group_->epaxos.get() : nullptr;
  }

  // --- migration (§3.8) ----------------------------------------------------

  /// Re-attach to a different DC; unacknowledged transactions are re-sent
  /// and deduplicated by dot at the DCs.
  void migrate_to_dc(NodeId new_dc, DoneCb done);

  // --- helpers for typed op preparation -----------------------------------

  /// Fresh arbitration token (timestamp from this node's hybrid clock plus
  /// a fresh dot); unique per call.
  Arb make_arb();
  /// Mint a fresh dot. WAL-logged: reusing a counter value after a restart
  /// would alias two distinct transactions under one identity.
  Dot fresh_dot();

  /// Current visible value (nullptr if not cached) for prepare-with-context
  /// (e.g. OR-set remove needs observed tags).
  [[nodiscard]] const Crdt* cached(const ObjectKey& key) const {
    return store_.current(key);
  }

  /// Versioned read (section 4.1): materialise the cached object at an
  /// older causal cut — only transactions visible at `cut` contribute.
  /// Transactions already baked into an imported base version are always
  /// included (the cut cannot reach below the base). nullptr if not cached.
  [[nodiscard]] std::unique_ptr<Crdt> read_at(const ObjectKey& key,
                                              const VersionVector& cut) const;
  [[nodiscard]] bool is_cached(const ObjectKey& key) const {
    return store_.has(key);
  }

  // --- introspection -------------------------------------------------------

  [[nodiscard]] const EdgeConfig& config() const { return config_; }
  [[nodiscard]] const VersionVector& state_vector() const {
    return engine_.state_vector();
  }
  [[nodiscard]] std::size_t unacked_count() const { return unacked_.size(); }
  [[nodiscard]] const VisibilityEngine& engine() const { return engine_; }
  [[nodiscard]] const JournalStore& store() const { return store_; }
  [[nodiscard]] const TxnStore& txns() const { return txns_; }
  [[nodiscard]] NodeId connected_dc() const { return config_.dc; }
  [[nodiscard]] std::uint64_t commits_issued() const { return commits_; }

  // --- durability (crash / restart) ---------------------------------------

  /// Kill the device: all in-memory state (cache, unacked queue, group
  /// membership, watchers) is wiped and in-flight continuations forgotten.
  /// Requires a configured WAL. Peer-group membership does NOT survive a
  /// crash — the reborn node must join_group again; its group-delivered
  /// foreign transactions are re-obtained via subscription snapshots.
  void crash();

  /// Rebuild the node from its WAL: newest intact checkpoint plus tail
  /// replay. With `reconnect` (live restart) the commit pump restarts so
  /// restored unacknowledged transactions are re-sent (the DC's dot filter
  /// drops duplicates); verify_recovery's offline replica passes false.
  void recover(bool reconnect = true);

  /// Prove recoverability in place: build an offline replica from a copy
  /// of the WAL and compare durable projections byte-for-byte. Trivially
  /// true for group members (group state is volatile by design) and for
  /// capacity-bounded caches (LRU order is not durable).
  [[nodiscard]] bool verify_recovery(std::string* why = nullptr) const;

  [[nodiscard]] bool crashed() const { return crashed_; }

 protected:
  void on_message(NodeId from, std::uint32_t kind,
                  ByteView body) override;
  void on_request(NodeId from, std::uint32_t method,
                  ByteView payload, ReplyFn reply) override;

 private:
  struct Group {
    NodeId parent = 0;
    std::uint64_t epoch = 0;
    std::vector<NodeId> members;  // includes the parent
    std::unique_ptr<consensus::Epaxos> epaxos;
    /// Own dots proposed but not yet delivered by consensus; re-proposed
    /// on epoch change.
    std::set<Dot> undelivered;
    /// Group transactions delivered by EPaxos, applied strictly in
    /// delivery order (the group visibility order).
    std::deque<Dot> apply_queue;
    /// PSI-variant commits awaiting their consensus slot.
    std::map<Dot, CommitCb> ordered_waiting;
    /// Commands proposed but undelivered, kept for re-proposal on epoch
    /// change.
    std::map<Dot, consensus::Command> pending_cmds;
    /// Count of delivered commands per key (identical at every member);
    /// the basis of the deterministic PSI conflict check.
    std::map<ObjectKey, std::uint64_t> seen_per_key;
    /// This node's own undelivered proposals per key (folded into the
    /// conflict signature so a node does not conflict with itself).
    std::map<ObjectKey, std::uint64_t> own_pending_per_key;
  };

  // --- durability internals ------------------------------------------------

  /// WAL record vocabulary: every durable-state mutation an edge device
  /// performs maps to one record kind. Group-mode foreign deliveries are
  /// deliberately NOT logged (group state dies with the process).
  enum EdgeWalRecord : std::uint32_t {
    kEdgeCommit = 1,      // locally committed Transaction
    kEdgeAck = 2,         // DC resolution of a local commit
    kEdgePush = 3,        // session push delivered by the channel
    kEdgeSeed = 4,        // kStateUpdate cut seeded
    kEdgeSubscribe = 5,   // subscription reply imported
    kEdgeFetch = 6,       // fetched object imported (or created empty)
    kEdgeDot = 7,         // dot_counter_ after a fresh_dot()
    kEdgeHlc = 8,         // HLC value after a make_arb() tick
    kEdgeMigrate = 9,     // re-attached to a different DC
    kEdgeInvalidate = 10,  // cache dropped wholesale
    kEdgeSessionKey = 11,  // session key obtained for a bucket
  };

  [[nodiscard]] bool wal_enabled() const {
    return config_.disk != nullptr && !recovering_ && !crashed_;
  }
  void log_record(std::uint32_t type, const Encoder& payload);
  void replay_record(std::uint32_t type, ByteView payload);
  void encode_checkpoint(Encoder& enc) const;
  void decode_checkpoint(ByteView snapshot);
  /// The recovery-invariant projection (exact-restoration contract).
  /// Excludes txn_counter_ (local labels), watchers (dead callbacks),
  /// group state (volatile), and cache LRU order.
  void encode_durable(Encoder& enc) const;
  void schedule_checkpoint();
  void checkpoint_tick();

  // Commit pump towards the DC (kClientCache mode).
  void pump_commits();
  void on_commit_ack(const Dot& dot, const proto::EdgeCommitResp& resp);
  void notify_watchers(const Transaction& txn);

  // Reads.
  void finish_read(const Txn& txn, const ObjectKey& key, CrdtType type,
                   ReadCb cb, ReadSource source);
  void fetch_from_dc(const Txn& txn, const ObjectKey& key, CrdtType type,
                     ReadCb cb);
  void import_fetched(const ObjectSnapshot& snap, const VersionVector& cut);

  // Cache admission/eviction.
  void admit(const ObjectKey& key);

  // Group plumbing.
  void rebuild_epaxos();
  /// Re-run the consensus slow path if a proposal stalls (a member died
  /// before the fast quorum completed).
  void schedule_nudge(consensus::InstanceId inst, std::uint64_t epoch);
  void on_group_deliver(const consensus::Command& cmd);
  void drain_group_queue();
  Transaction make_transaction(Txn&& txn);
  /// Interference keys for an EPaxos command: the updated objects plus a
  /// synthetic per-origin key that chains a node's own commands in order.
  [[nodiscard]] std::vector<ObjectKey> command_keys(
      const Transaction& record) const;

  EdgeConfig config_;
  TxnStore txns_;
  JournalStore store_;
  VisibilityEngine engine_;
  InterestSet interest_;
  HybridLogicalClock hlc_;

  /// Per-sender receive state of the acknowledged DC session channel:
  /// contiguous push prefix, acked back so the DC can detect losses.
  std::map<NodeId, proto::PushChannelRecv> push_recv_;

  std::uint64_t dot_counter_ = 0;
  std::uint64_t txn_counter_ = 0;
  std::uint64_t commits_ = 0;

  /// Locally committed, not yet DC-acknowledged, in commit order.
  std::deque<Dot> unacked_;
  bool pump_in_flight_ = false;
  /// Tail of this node's local-commit chain while unresolved (the symbolic
  /// dependency of the next transaction, §3.7).
  std::optional<Dot> last_local_unresolved_;

  std::optional<Group> group_;

  struct Watcher {
    ObjectKey key;
    WatchCb cb;
  };
  std::map<std::uint64_t, Watcher> watchers_;
  std::uint64_t next_watcher_ = 1;

  /// Migrated transactions waiting for the local commit chain to flush.
  std::vector<std::function<void()>> pending_migrated_;

  /// Write-through commits awaiting their DC acknowledgement.
  std::map<Dot, CommitCb> ack_waiters_;

  /// Session keys by bucket (section 6.2).
  std::map<std::string, security::SessionKey> session_keys_;

  /// DC this node was built against; a crash-restart replays migrations
  /// from zero, so config_.dc must rewind to it first.
  NodeId initial_dc_ = 0;
  bool crashed_ = false;
  bool recovering_ = false;
  std::uint64_t incarnation_ = 0;
  /// Set once group consensus mutated local state (foreign deliveries,
  /// ordered commits): those paths are deliberately unlogged, so in-place
  /// recovery verification is meaningless until a crash resets the node to
  /// WAL-derived state.
  bool group_tainted_ = false;
};

}  // namespace colony
