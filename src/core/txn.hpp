// Transaction records and metadata (paper sections 3.5-3.8).
//
// A transaction carries:
//   * its dot           — unique id + arbitration tiebreaker,
//   * snapshot vector   — the causal cut it read from (T.S),
//   * commit vector(s)  — where it commits (T.C); an edge transaction's
//                         commit is *symbolic* until a DC acknowledges it,
//                         and after migration it may hold several
//                         *equivalent* commit timestamps, stored compactly
//                         as one vector plus a bitmask of accepting DCs,
//   * pending deps      — dots of same-origin predecessors whose commit
//                         vectors were still symbolic when this transaction
//                         took its snapshot (the [α,β,γ] of Fig. 2),
//   * its operations    — CRDT downstream ops to replay.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "clock/dot.hpp"
#include "clock/dot_tracker.hpp"
#include "clock/version_vector.hpp"
#include "crdt/crdt.hpp"
#include "util/types.hpp"

namespace colony {

/// One CRDT update inside a transaction.
struct OpRecord {
  ObjectKey key;
  CrdtType type{};
  Bytes payload;

  void encode(Encoder& enc) const;
  static OpRecord decode(Decoder& dec);
  bool operator==(const OpRecord&) const = default;
  auto fields() { return std::tie(key, type, payload); }
};

/// Transaction metadata, mutated as commit information is learned.
struct TxnMeta {
  Dot dot;
  NodeId origin = 0;
  UserId user = 0;

  /// Concrete part of the snapshot (DC-derived state the origin had).
  VersionVector snapshot;
  /// Same-origin predecessor transactions with symbolic commits at snapshot
  /// time. The effective snapshot is `snapshot` joined with their (later
  /// resolved) commit vectors.
  std::vector<Dot> pending_deps;

  /// True once at least one DC assigned a concrete commit timestamp.
  bool concrete = false;
  /// Commit vector; entry j is significant iff bit j of accepted_mask is
  /// set (the section 3.8 multi-commit-vector optimisation).
  VersionVector commit;
  std::uint32_t accepted_mask = 0;

  [[nodiscard]] bool accepted_by(DcId dc) const {
    return dc < kMaxDcs && (accepted_mask & (1u << dc)) != 0;
  }
  void mark_accepted(DcId dc, Timestamp ts) {
    COLONY_ASSERT(dc < kMaxDcs, "DcId beyond accepted-mask width");
    accepted_mask |= 1u << dc;
    commit.set(dc, ts);
    concrete = true;
  }

  /// Invoke `fn(dc)` for every DC that assigned this transaction a commit
  /// timestamp, iterating set bits of the mask (no fixed-bound scan).
  template <typename Fn>
  void for_each_accepted(Fn&& fn) const {
    for (std::uint32_t bits = accepted_mask; bits != 0; bits &= bits - 1) {
      fn(static_cast<DcId>(std::countr_zero(bits)));
    }
  }

  /// Lowest-numbered accepting DC; only meaningful when `concrete`.
  [[nodiscard]] DcId first_accepted() const {
    return static_cast<DcId>(std::countr_zero(accepted_mask));
  }

  /// The equivalent commit vector for accepting DC `dc`: the snapshot with
  /// component dc replaced by the assigned timestamp.
  [[nodiscard]] VersionVector commit_vector_via(DcId dc) const;

  /// Least upper bound of all known equivalent commit vectors; safe to
  /// merge into a state vector.
  [[nodiscard]] VersionVector commit_lub() const;

  void encode(Encoder& enc) const;
  static TxnMeta decode(Decoder& dec);
  bool operator==(const TxnMeta&) const = default;
  auto fields() {
    return std::tie(dot, origin, user, snapshot, pending_deps, concrete,
                    commit, accepted_mask);
  }
};

/// The accepted-DC bitmask is the single place the max-DC bound is baked
/// into a data layout; keep it and kMaxDcs in lock-step.
static_assert(
    std::numeric_limits<decltype(TxnMeta::accepted_mask)>::digits == kMaxDcs,
    "TxnMeta::accepted_mask width must equal kMaxDcs");

/// Value (wire) representation of a transaction: metadata plus operations.
struct Transaction {
  TxnMeta meta;
  std::vector<OpRecord> ops;

  void encode(Encoder& enc) const;
  static Transaction decode(Decoder& dec);
  [[nodiscard]] Bytes to_bytes() const;
  static Transaction from_bytes(const Bytes& bytes);
  bool operator==(const Transaction&) const = default;
  auto fields() { return std::tie(meta, ops); }
};

/// Node-local store of every transaction the node knows about, visible or
/// not — the paper's "backend layer" (sections 3, 4). The visibility layer
/// queries it to decide what a reader may observe.
class TxnStore {
 public:
  /// Insert (or merge commit info of) a transaction. Returns true if the
  /// transaction was new; false if its dot was already known, in which case
  /// commit metadata is merged (duplicate delivery after migration,
  /// section 3.8 "Avoiding Duplicates").
  bool add(Transaction txn);

  [[nodiscard]] const Transaction* find(const Dot& dot) const;
  Transaction* find_mutable(const Dot& dot);
  [[nodiscard]] bool contains(const Dot& dot) const {
    return txns_.contains(dot);
  }

  /// Resolve commit info: mark `dot` accepted by `dc` at `ts`, rewriting
  /// this node's copy of the metadata (the Fig. 2 step 8 fill-in).
  void resolve(const Dot& dot, DcId dc, Timestamp ts);

  /// Effective snapshot of a transaction: its concrete snapshot joined with
  /// the resolved commits of its pending deps (recursively). Returns false
  /// if some dependency is unknown or still symbolic.
  [[nodiscard]] bool effective_snapshot(const Dot& dot,
                                        VersionVector& out) const;

  /// Is the transaction visible at causal cut `cut`? True iff it is
  /// concrete and one of its equivalent commit vectors is <= cut.
  [[nodiscard]] bool visible_at(const Dot& dot,
                                const VersionVector& cut) const;

  /// Drop a transaction record (an aborted PSI-variant commit).
  void erase(const Dot& dot) { txns_.erase(dot); }

  [[nodiscard]] std::size_t size() const { return txns_.size(); }

  /// All known dots (test/inspection helper).
  [[nodiscard]] std::vector<Dot> all_dots() const;

  /// Checkpoint serialization. Deterministic: transactions encode sorted
  /// by dot (the backing map is unordered). decode() replaces contents.
  void encode(Encoder& enc) const;
  void decode(Decoder& dec);
  void clear() { txns_.clear(); }

 private:
  std::unordered_map<Dot, Transaction> txns_;
};

}  // namespace colony
