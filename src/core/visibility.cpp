#include "core/visibility.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace colony {

VisibilityEngine::VisibilityEngine(TxnStore& txns, JournalStore& store,
                                   std::size_t num_dcs)
    : txns_(txns), store_(store), state_(num_dcs), mode_(default_mode_) {
  if (shadow_default_) {
    shadow_store_ = std::make_unique<JournalStore>();
    shadow_.reset(new VisibilityEngine(txns, *shadow_store_, num_dcs,
                                       /*is_shadow=*/true));
  }
}

VisibilityEngine::VisibilityEngine(TxnStore& txns, JournalStore& store,
                                   std::size_t num_dcs, bool /*is_shadow*/)
    : txns_(txns),
      store_(store),
      state_(num_dcs),
      mode_(DrainMode::kFixpointReference) {}

namespace {

/// Does `txn` causally depend on masked transaction `m` in a way that
/// makes its values untrustworthy? Vector metadata only gives a
/// conservative happened-before; masking *everything* after a masked
/// transaction would freeze the system, so we propagate along real
/// data-flow channels: the dependant was issued by the same origin (it
/// built on its own masked state) or touches an object the masked
/// transaction wrote (it read the masked value).
bool masked_dependency(const Transaction& txn, const Transaction& m) {
  if (txn.meta.origin == m.meta.origin) return true;
  for (const OpRecord& a : txn.ops) {
    for (const OpRecord& b : m.ops) {
      if (a.key == b.key) return true;
    }
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Event entry points. Each mutates the (shared) TxnStore exactly once, then
// notifies this engine and — when equivalence checking is on — the reference
// shadow with the same event, so both observe an identical stream.
// ---------------------------------------------------------------------------

bool VisibilityEngine::ingest(Transaction txn) {
  const Dot dot = txn.meta.dot;
  const bool fresh = txns_.add(std::move(txn));
  on_ingested(dot, fresh);
  if (shadow_) shadow_->on_ingested(dot, fresh);
  return fresh;
}

bool VisibilityEngine::admit(Transaction txn) {
  const Dot dot = txn.meta.dot;
  const bool fresh = txns_.add(std::move(txn));
  on_admitted(dot);
  if (shadow_) shadow_->on_admitted(dot);
  return fresh;
}

void VisibilityEngine::resolve(const Dot& dot, DcId dc, Timestamp ts) {
  if (!txns_.contains(dot)) return;
  txns_.resolve(dot, dc, ts);
  on_resolution(dot);
  if (shadow_) shadow_->on_resolution(dot);
}

void VisibilityEngine::resolve_full(const Dot& dot, DcId dc, Timestamp ts,
                                    const VersionVector& resolved_snapshot) {
  Transaction* txn = txns_.find_mutable(dot);
  if (txn == nullptr) return;
  txn->meta.snapshot = resolved_snapshot;
  txn->meta.pending_deps.clear();
  txn->meta.mark_accepted(dc, ts);
  on_resolution(dot);
  if (shadow_) shadow_->on_resolution(dot);
}

bool VisibilityEngine::apply_causal(const Dot& dot) {
  const bool applied = apply_causal_engine(dot);
  if (shadow_) {
    const bool shadow_applied = shadow_->apply_causal_engine(dot);
    if (shadow_applied != applied && shadow_divergence_.empty()) {
      std::ostringstream os;
      os << "apply_causal(" << dot.origin << ":" << dot.counter
         << "): indexed=" << applied << " reference=" << shadow_applied;
      shadow_divergence_ = os.str();
    }
  }
  return applied;
}

void VisibilityEngine::apply_local(const Dot& dot) {
  const Transaction* txn = txns_.find(dot);
  COLONY_ASSERT(txn != nullptr, "apply_local of unknown transaction");
  if (!applied_.contains(dot)) {
    const bool masked = security_check_ != nullptr && !security_check_(*txn);
    apply_ops(*txn, masked);
    applied_.insert(dot);
    if (masked) mark_masked(dot, *txn);
    log_.append(dot);
    if (txn->meta.concrete) advance_state(txn->meta);
    if (visible_hook_ != nullptr && !masked) visible_hook_(*txn);
    if (pending_set_.contains(dot)) {
      remove_pending(dot);
      std::erase(pending_, dot);
    }
    fire_apply_event(dot);
    pump();
    store_.flush_applies();  // pump() may early-return in reference mode
  }
  if (shadow_) shadow_->apply_local(dot);
}

void VisibilityEngine::seed_state(const VersionVector& v) {
  state_.merge(v);
  seeded_cut_.merge(v);
  catch_up_state_wakes();
  if (shadow_) shadow_->seed_state(v);
}

void VisibilityEngine::set_security_check(SecurityCheck check) {
  if (shadow_) shadow_->set_security_check(check);
  security_check_ = std::move(check);
}

void VisibilityEngine::set_policy_key(ObjectKey key) {
  if (shadow_) shadow_->set_policy_key(key);
  policy_key_ = std::move(key);
}

void VisibilityEngine::set_key_filter(KeyFilter filter) {
  if (shadow_) shadow_->set_key_filter(filter);
  key_filter_ = std::move(filter);
}

void VisibilityEngine::set_sequential_components(bool on) {
  sequential_ = on;
  if (shadow_) shadow_->set_sequential_components(on);
}

void VisibilityEngine::drain() {
  if (mode_ == DrainMode::kFixpointReference) {
    drain_fixpoint();
  } else {
    catch_up_state_wakes();
    pump();
  }
  if (shadow_) shadow_->drain();
}

// ---------------------------------------------------------------------------
// Engine-side event handlers (no TxnStore mutation; shared by primary and
// shadow).
// ---------------------------------------------------------------------------

void VisibilityEngine::on_ingested(const Dot& dot, bool fresh) {
  if (fresh) {
    add_pending(dot);
    fire_txn_event(dot);
  } else if (applied_.contains(dot)) {
    // A duplicate copy can carry commit slots learned only after we applied
    // the transaction (equivalent timestamps after a migration, section
    // 3.8); fold them in so those sequence components keep advancing — and
    // wake dependants parked on this dot's commit info (a read-my-writes
    // apply can precede the commit knowledge they need).
    advance_state(txns_.find(dot)->meta);
    fire_txn_event(dot);
  } else {
    // The merge may have made the record concrete or adopted a resolved
    // snapshot: anything waiting on this dot (itself included) must look
    // again.
    fire_txn_event(dot);
  }
  drain_self();
}

void VisibilityEngine::on_admitted(const Dot& dot) {
  // The record entered the store without being scheduled for visibility
  // (external ordering owns its application) — but pending transactions
  // naming it as a dep can now resolve their effective snapshots.
  if (applied_.contains(dot)) advance_state(txns_.find(dot)->meta);
  fire_txn_event(dot);
  drain_self();
}

void VisibilityEngine::on_resolution(const Dot& dot) {
  if (applied_.contains(dot)) {
    // Already visible locally (read-my-writes fast path): the state vector
    // may now advance past its concrete commit point.
    advance_state(txns_.find(dot)->meta);
  }
  // Wake waiters in EVERY case, applied included: a dependant parked on
  // this dot's commit becoming concrete (its pending_dep) must re-resolve
  // its effective snapshot now — the apply-side events never fire for a
  // resolution that lands after a read-my-writes apply. The reference
  // drain's full rescan covers this implicitly; the indexed scheduler
  // must do it explicitly (found by the drain-equivalence sweep).
  fire_txn_event(dot);
  drain_self();
}

void VisibilityEngine::drain_self() {
  if (mode_ == DrainMode::kFixpointReference) {
    drain_fixpoint();
  } else {
    pump();
  }
}

bool VisibilityEngine::apply_causal_engine(const Dot& dot) {
  const Transaction* txn = txns_.find(dot);
  COLONY_ASSERT(txn != nullptr, "apply_causal of unknown transaction");
  if (applied_.contains(dot)) return true;
  if (!txn->meta.snapshot.leq(state_)) return false;
  for (const Dot& dep : txn->meta.pending_deps) {
    if (!applied_.contains(dep)) return false;
  }
  // Inline apply_local's tail (apply_local would also forward to the
  // shadow, which runs its own apply_causal_engine with its own gate).
  const bool masked = security_check_ != nullptr && !security_check_(*txn);
  apply_ops(*txn, masked);
  applied_.insert(dot);
  if (masked) mark_masked(dot, *txn);
  log_.append(dot);
  if (txn->meta.concrete) advance_state(txn->meta);
  if (visible_hook_ != nullptr && !masked) visible_hook_(*txn);
  if (pending_set_.contains(dot)) {
    remove_pending(dot);
    std::erase(pending_, dot);
  }
  fire_apply_event(dot);
  pump();
  store_.flush_applies();  // pump() may early-return in reference mode
  return true;
}

// ---------------------------------------------------------------------------
// Shared apply machinery.
// ---------------------------------------------------------------------------

void VisibilityEngine::apply_ops(const Transaction& txn, bool masked) {
  for (const OpRecord& op : txn.ops) {
    if (key_filter_ != nullptr && !key_filter_(op.key)) continue;
    store_.apply(op.key, op.type, txn.meta.dot, op.payload, masked);
  }
}

void VisibilityEngine::mark_masked(const Dot& dot, const Transaction& txn) {
  masked_.insert(dot);
  auto& origin_bucket = masked_by_origin_[txn.meta.origin];
  if (origin_bucket.empty() || origin_bucket.back() != dot) {
    origin_bucket.push_back(dot);
  }
  for (const OpRecord& op : txn.ops) {
    auto& key_bucket = masked_by_key_[op.key];
    if (key_bucket.empty() || key_bucket.back() != dot) {
      key_bucket.push_back(dot);
    }
  }
}

void VisibilityEngine::rebuild_masked_index() {
  masked_by_origin_.clear();
  masked_by_key_.clear();
  std::unordered_set<Dot> tmp = std::move(masked_);
  masked_.clear();
  for (const Dot& dot : tmp) {
    const Transaction* txn = txns_.find(dot);
    if (txn == nullptr) {
      masked_.insert(dot);
      continue;
    }
    mark_masked(dot, *txn);
  }
}

void VisibilityEngine::advance_state(const TxnMeta& meta) {
  const VersionVector before = state_;
  if (!sequential_) {
    state_.merge(meta.commit_lub());
  } else {
    // Contiguous semantics: record the transaction's own commit slot(s) and
    // only advance each component over its gap-free applied prefix. The
    // snapshot part is safe to merge outright — it gated the apply (it was
    // covered by state_ already) or arrived with a resolution, in which
    // case it is some other replica's (prefix-sound) vector.
    state_.merge(meta.snapshot);
    meta.for_each_accepted([&](DcId dc) {
      applied_slots_.record(Dot{dc, meta.commit.at(dc)});
      const Timestamp prefix = applied_slots_.prefix(dc);
      if (prefix > state_.at(dc)) state_.set(dc, prefix);
    });
  }
  if (mode_ != DrainMode::kIndexed) return;
  const DcId width = static_cast<DcId>(state_.size());
  for (DcId dc = 0; dc < width; ++dc) {
    if (state_.at(dc) > before.at(dc)) wake_state_component(dc);
  }
}

// ---------------------------------------------------------------------------
// Fixpoint reference scheduler — the original drain, kept verbatim as the
// executable specification the indexed scheduler is checked against.
// ---------------------------------------------------------------------------

bool VisibilityEngine::try_apply_fixpoint(const Dot& dot) {
  const Transaction* txn = txns_.find(dot);
  COLONY_ASSERT(txn != nullptr, "pending dot without transaction record");
  if (applied_.contains(dot)) return true;  // e.g. applied locally earlier
  if (!txn->meta.concrete) return false;

  VersionVector eff;
  if (!txns_.effective_snapshot(dot, eff)) return false;
  if (!eff.leq(state_)) return false;

  // Order within a ready batch: a seeded cut can make several pending
  // transactions applicable at once, and the pending buffer holds them in
  // arrival order — which, across two session channels or after a loss
  // repair, may invert causality. Defer this transaction while a causal
  // predecessor is still pending; drain() re-passes until no progress, so
  // this only reorders, never starves (causality is acyclic).
  for (const Dot& other : pending_) {
    if (other == dot) continue;
    if (txns_.visible_at(other, eff)) return false;
  }

  bool masked = security_check_ != nullptr && !security_check_(*txn);
  if (!masked) {
    // Transitive masking (paper sections 2.4 / 5.3): a transaction that
    // causally follows a masked one AND depends on it through a data-flow
    // channel is masked as well.
    for (const Dot& m : masked_) {
      const Transaction* masked_txn = txns_.find(m);
      if (masked_txn != nullptr && txns_.visible_at(m, eff) &&
          masked_dependency(*txn, *masked_txn)) {
        masked = true;
        break;
      }
    }
  }

  apply_ops(*txn, masked);
  applied_.insert(dot);
  if (masked) mark_masked(dot, *txn);
  log_.append(dot);
  advance_state(txn->meta);
  if (visible_hook_ != nullptr && !masked) visible_hook_(*txn);
  return true;
}

void VisibilityEngine::drain_fixpoint() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (try_apply_fixpoint(*it)) {
        pending_set_.erase(*it);
        it = pending_.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
  store_.flush_applies();  // event-boundary join, as in pump()
}

// ---------------------------------------------------------------------------
// Indexed wake-list scheduler.
// ---------------------------------------------------------------------------

void VisibilityEngine::add_pending(const Dot& dot) {
  pending_set_.insert(dot);
  if (mode_ == DrainMode::kFixpointReference) {
    pending_.push_back(dot);
  } else {
    push_ready(dot);
  }
}

void VisibilityEngine::remove_pending(const Dot& dot) {
  pending_set_.erase(dot);
  covered_pending_.erase(dot);
  guard_gen_.erase(dot);
}

std::uint64_t VisibilityEngine::new_guard_gen(const Dot& dot) {
  const std::uint64_t gen = ++guard_seq_;
  guard_gen_[dot] = gen;
  return gen;
}

void VisibilityEngine::guard_on_txn(const Dot& dot, const Dot& waits_on) {
  wake_on_txn_[waits_on].push_back(WakeRef{dot, new_guard_gen(dot)});
}

void VisibilityEngine::guard_on_apply(const Dot& dot, const Dot& waits_on) {
  wake_on_apply_[waits_on].push_back(WakeRef{dot, new_guard_gen(dot)});
}

void VisibilityEngine::guard_on_state(const Dot& dot, DcId dc,
                                      Timestamp threshold) {
  wake_on_state_[dc].emplace(threshold, WakeRef{dot, new_guard_gen(dot)});
}

void VisibilityEngine::fire_txn_event(const Dot& dot) {
  if (mode_ != DrainMode::kIndexed) return;
  // Coverage-index this dot BEFORE waking anything: a waiter examined
  // first must see its (now concrete) causal predecessor in
  // covered_pending_, or its within-batch order scan would let it apply
  // ahead of the predecessor — same applied set, but a log order the
  // reference never produces, which flips transitive ACL-mask decisions
  // (found by the drain-equivalence sweep).
  if (pending_set_.contains(dot)) {
    const Transaction* txn = txns_.find(dot);
    if (txn != nullptr && txn->meta.concrete) index_coverage(dot);
  }
  if (auto it = wake_on_txn_.find(dot); it != wake_on_txn_.end()) {
    std::vector<WakeRef> refs = std::move(it->second);
    wake_on_txn_.erase(it);
    for (const WakeRef& ref : refs) {
      const auto gen = guard_gen_.find(ref.dot);
      if (gen != guard_gen_.end() && gen->second == ref.gen) {
        push_ready(ref.dot);
      }
    }
  }
  // The record's own metadata changed (fresh, merged commit slots, or a
  // resolved snapshot): any guard it registered may be stale — its
  // effective snapshot can shrink as well as grow — so re-examine it from
  // scratch rather than trusting the old threshold.
  if (pending_set_.contains(dot)) {
    new_guard_gen(dot);
    push_ready(dot);
  }
}

void VisibilityEngine::fire_apply_event(const Dot& dot) {
  if (mode_ != DrainMode::kIndexed) return;
  if (auto it = wake_on_apply_.find(dot); it != wake_on_apply_.end()) {
    std::vector<WakeRef> refs = std::move(it->second);
    wake_on_apply_.erase(it);
    for (const WakeRef& ref : refs) {
      const auto gen = guard_gen_.find(ref.dot);
      if (gen != guard_gen_.end() && gen->second == ref.gen) {
        push_ready(ref.dot);
      }
    }
  }
}

void VisibilityEngine::wake_state_component(DcId dc) {
  if (mode_ != DrainMode::kIndexed) return;
  const Timestamp now = state_.at(dc);
  if (auto it = coverage_queue_.find(dc); it != coverage_queue_.end()) {
    auto& queue = it->second;
    while (!queue.empty() && queue.begin()->first <= now) {
      const Dot dot = queue.begin()->second;
      queue.erase(queue.begin());
      if (pending_set_.contains(dot)) covered_pending_.insert(dot);
    }
    if (queue.empty()) coverage_queue_.erase(it);
  }
  if (auto it = wake_on_state_.find(dc); it != wake_on_state_.end()) {
    auto& queue = it->second;
    while (!queue.empty() && queue.begin()->first <= now) {
      const WakeRef ref = queue.begin()->second;
      queue.erase(queue.begin());
      const auto gen = guard_gen_.find(ref.dot);
      if (gen != guard_gen_.end() && gen->second == ref.gen) {
        push_ready(ref.dot);
      }
    }
    if (queue.empty()) wake_on_state_.erase(it);
  }
}

void VisibilityEngine::catch_up_state_wakes() {
  if (mode_ != DrainMode::kIndexed) return;
  std::vector<DcId> dcs;
  dcs.reserve(coverage_queue_.size() + wake_on_state_.size());
  for (const auto& [dc, _] : coverage_queue_) dcs.push_back(dc);
  for (const auto& [dc, _] : wake_on_state_) dcs.push_back(dc);
  for (DcId dc : dcs) wake_state_component(dc);
}

void VisibilityEngine::index_coverage(const Dot& dot) {
  if (covered_pending_.contains(dot)) return;
  const Transaction* txn = txns_.find(dot);
  bool covered = false;
  txn->meta.for_each_accepted([&](DcId dc) {
    if (covered) return;
    if (txn->meta.commit.at(dc) <= state_.at(dc)) covered = true;
  });
  if (covered) {
    covered_pending_.insert(dot);
    return;
  }
  // Not covered by any accepted component yet: queue under each — any one
  // of them crossing its threshold suffices. Re-registration after a
  // metadata change may leave duplicate queue entries; pops tolerate them
  // (covered_pending_ is a set).
  txn->meta.for_each_accepted([&](DcId dc) {
    coverage_queue_[dc].emplace(txn->meta.commit.at(dc), dot);
  });
}

bool VisibilityEngine::masked_dependency_indexed(
    const Transaction& txn, const VersionVector& eff) const {
  const auto bucket_hits = [&](const std::vector<Dot>& bucket) {
    for (const Dot& m : bucket) {
      if (!masked_.contains(m)) continue;
      if (txns_.visible_at(m, eff)) return true;
    }
    return false;
  };
  if (auto it = masked_by_origin_.find(txn.meta.origin);
      it != masked_by_origin_.end() && bucket_hits(it->second)) {
    return true;
  }
  for (const OpRecord& op : txn.ops) {
    if (auto it = masked_by_key_.find(op.key);
        it != masked_by_key_.end() && bucket_hits(it->second)) {
      return true;
    }
  }
  return false;
}

bool VisibilityEngine::try_apply_indexed(const Dot& dot) {
  const Transaction* txn = txns_.find(dot);
  COLONY_ASSERT(txn != nullptr, "pending dot without transaction record");
  if (applied_.contains(dot)) {  // e.g. applied locally earlier
    remove_pending(dot);
    return true;
  }
  if (!txn->meta.concrete) {
    // Guard: own commit still symbolic — wake when this dot's record gains
    // commit info (resolve / duplicate merge).
    guard_on_txn(dot, dot);
    return false;
  }
  // Concrete: make it discoverable by other candidates' batch-order scans
  // even while it stays blocked on deps or state below.
  index_coverage(dot);

  for (const Dot& dep : txn->meta.pending_deps) {
    const Transaction* d = txns_.find(dep);
    if (d == nullptr || !d->meta.concrete) {
      // Guard: dep unknown or symbolic — wake when the dep's record is
      // ingested/admitted or resolves.
      guard_on_txn(dot, dep);
      return false;
    }
  }

  VersionVector eff;
  const bool have_eff = txns_.effective_snapshot(dot, eff);
  COLONY_ASSERT(have_eff, "deps concrete but effective snapshot missing");
  if (!eff.leq(state_)) {
    // Guard: state-vector component below the effective snapshot — wake
    // when that component reaches the threshold. Re-examination recomputes
    // everything, so guarding the first lagging component is enough.
    const DcId width = static_cast<DcId>(eff.size());
    for (DcId dc = 0; dc < width; ++dc) {
      if (eff.at(dc) > state_.at(dc)) {
        guard_on_state(dot, dc, eff.at(dc));
        return false;
      }
    }
    COLONY_ASSERT(false, "eff not leq state but no lagging component");
  }

  // Within-batch causal order (see try_apply_fixpoint): defer behind any
  // still-pending causal predecessor. Only a concrete pending transaction
  // with an accepted commit component inside the state vector can satisfy
  // visible_at(·, eff) with eff <= state_, and covered_pending_ is exactly
  // the maintained superset of those — so scanning it replaces scanning
  // all of pending_.
  for (const Dot& other : covered_pending_) {
    if (other == dot) continue;
    if (txns_.visible_at(other, eff)) {
      // Guard: wake when the predecessor applies (or its guards re-route
      // it; acyclicity of causal visibility prevents wait cycles).
      guard_on_apply(dot, other);
      return false;
    }
  }

  bool masked = security_check_ != nullptr && !security_check_(*txn);
  if (!masked) masked = masked_dependency_indexed(*txn, eff);

  remove_pending(dot);
  apply_ops(*txn, masked);
  applied_.insert(dot);
  if (masked) mark_masked(dot, *txn);
  log_.append(dot);
  advance_state(txn->meta);
  if (visible_hook_ != nullptr && !masked) visible_hook_(*txn);
  fire_apply_event(dot);
  return true;
}

void VisibilityEngine::pump() {
  if (draining_ || mode_ != DrainMode::kIndexed) return;
  draining_ = true;
  while (!ready_.empty()) {
    const Dot dot = ready_.front();
    ready_.pop_front();
    if (!pending_set_.contains(dot)) continue;
    try_apply_indexed(dot);
  }
  draining_ = false;
  // Join any applies handed to the worker pool before the enclosing sim
  // event completes: parallelism must stay invisible above the event
  // boundary (DESIGN.md section 10). No-op without a pool or with nothing
  // pending; nested pump() calls returned above, so this runs once per
  // outermost drain.
  store_.flush_applies();
}

void VisibilityEngine::set_drain_mode(DrainMode mode) {
  if (mode == mode_) return;
  mode_ = mode;
  rebuild_scheduler();
}

void VisibilityEngine::rebuild_scheduler() {
  // Drop every scheduler structure and rebuild from the pending set.
  wake_on_txn_.clear();
  wake_on_apply_.clear();
  wake_on_state_.clear();
  coverage_queue_.clear();
  covered_pending_.clear();
  guard_gen_.clear();
  ready_.clear();
  pending_.clear();
  if (mode_ == DrainMode::kFixpointReference) {
    pending_.assign(pending_set_.begin(), pending_set_.end());
    drain_fixpoint();
  } else {
    // Coverage-index every concrete pending txn up front (see
    // fire_txn_event): the rebuild examines them in arbitrary order, and
    // each batch-order scan must already see its covered predecessors.
    for (const Dot& dot : pending_set_) {
      const Transaction* txn = txns_.find(dot);
      if (txn != nullptr && txn->meta.concrete) index_coverage(dot);
    }
    for (const Dot& dot : pending_set_) push_ready(dot);
    pump();
  }
}

// ---------------------------------------------------------------------------
// Mask recomputation, repair, equivalence.
// ---------------------------------------------------------------------------

std::size_t VisibilityEngine::recompute_masks() {
  std::unordered_set<Dot> new_masked;
  std::unordered_set<Dot> flipped;

  for (const Dot& dot : log_.entries()) {
    const Transaction* txn = txns_.find(dot);
    COLONY_ASSERT(txn != nullptr, "visibility log references unknown txn");
    const bool is_policy_txn =
        std::any_of(txn->ops.begin(), txn->ops.end(),
                    [&](const OpRecord& op) { return op.key == policy_key_; });
    bool masked = is_policy_txn
                      ? masked_.contains(dot)
                      : security_check_ != nullptr && !security_check_(*txn);
    if (!masked && !is_policy_txn) {
      VersionVector eff;
      if (txns_.effective_snapshot(dot, eff)) {
        for (const Dot& m : new_masked) {
          const Transaction* masked_txn = txns_.find(m);
          if (masked_txn != nullptr && txns_.visible_at(m, eff) &&
              masked_dependency(*txn, *masked_txn)) {
            masked = true;
            break;
          }
        }
      }
    }
    if (masked) new_masked.insert(dot);
    const bool was = masked_.contains(dot);
    if (was != masked) flipped.insert(dot);
  }

  std::size_t result = 0;
  if (!flipped.empty()) {
    masked_ = std::move(new_masked);
    rebuild_masked_index();

    // Rebuild the current value of every object touched by a flipped txn.
    std::vector<ObjectKey> to_rebuild;
    for (const Dot& dot : flipped) {
      const Transaction* txn = txns_.find(dot);
      for (const OpRecord& op : txn->ops) to_rebuild.push_back(op.key);
    }
    std::sort(to_rebuild.begin(), to_rebuild.end());
    to_rebuild.erase(std::unique(to_rebuild.begin(), to_rebuild.end()),
                     to_rebuild.end());
    const auto visible = visible_predicate();
    for (const ObjectKey& key : to_rebuild) {
      store_.rebuild_current(key, visible);
    }
    result = flipped.size();
  }
  if (shadow_) shadow_->recompute_masks();
  return result;
}

void VisibilityEngine::reapply_missing(const ObjectKey& key,
                                       const ObjectSnapshot& snap) {
  const std::unordered_set<Dot> in_snapshot(snap.applied.begin(),
                                            snap.applied.end());
  for (const Dot& dot : log_.entries()) {
    if (in_snapshot.contains(dot)) continue;
    const Transaction* txn = txns_.find(dot);
    if (txn == nullptr) continue;
    const bool masked = masked_.contains(dot);
    for (const OpRecord& op : txn->ops) {
      if (op.key == key) {
        store_.apply(op.key, op.type, dot, op.payload, masked);
      }
    }
  }
  store_.flush_applies();
}

JournalStore::DotPredicate VisibilityEngine::visible_predicate() const {
  return [this](const Dot& dot) {
    return applied_.contains(dot) && !masked_.contains(dot);
  };
}

bool VisibilityEngine::shadow_matches(std::string* why) const {
  if (!shadow_) return true;
  const auto report = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (!shadow_divergence_.empty()) return report(shadow_divergence_);
  if (applied_ != shadow_->applied_) {
    std::ostringstream os;
    os << "applied sets differ: indexed=" << applied_.size()
       << " reference=" << shadow_->applied_.size();
    return report(os.str());
  }
  if (masked_ != shadow_->masked_) {
    std::ostringstream os;
    os << "masked sets differ: indexed=" << masked_.size()
       << " reference=" << shadow_->masked_.size();
    return report(os.str());
  }
  if (!(state_.leq(shadow_->state_) && shadow_->state_.leq(state_))) {
    return report("state vectors differ");
  }
  if (pending_set_ != shadow_->pending_set_) {
    std::ostringstream os;
    os << "pending sets differ: indexed=" << pending_set_.size()
       << " reference=" << shadow_->pending_set_.size();
    return report(os.str());
  }
  return true;
}

// ---------------------------------------------------------------------------
// Durability: checkpoint export/import.
// ---------------------------------------------------------------------------

namespace {

std::vector<Dot> sorted_dots(const std::unordered_set<Dot>& set) {
  std::vector<Dot> out(set.begin(), set.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

void VisibilityEngine::encode_state(Encoder& enc) const {
  state_.encode(enc);
  seeded_cut_.encode(enc);
  applied_slots_.encode(enc);
  log_.encode(enc);
  const auto write_dots = [&enc](const std::vector<Dot>& dots) {
    enc.u32(static_cast<std::uint32_t>(dots.size()));
    for (const Dot& dot : dots) dot.encode(enc);
  };
  write_dots(sorted_dots(applied_));
  write_dots(sorted_dots(masked_));
  write_dots(sorted_dots(pending_set_));
}

void VisibilityEngine::decode_state(Decoder& dec) {
  reset();
  state_ = VersionVector::decode(dec);
  seeded_cut_ = VersionVector::decode(dec);
  applied_slots_.decode(dec);
  log_.decode(dec);
  const auto read_dots = [&dec](std::unordered_set<Dot>& out) {
    const std::uint32_t n = dec.u32();
    if (n > dec.remaining()) dec.fail();
    for (std::uint32_t i = 0; i < n && dec.ok(); ++i) {
      out.insert(Dot::decode(dec));
    }
  };
  read_dots(applied_);
  read_dots(masked_);
  read_dots(pending_set_);
  rebuild_masked_index();
  // A checkpoint is only taken at a quiescent point within the node, so
  // every pending transaction is genuinely blocked: the rebuild registers
  // guards (indexed) or primes the scan list (reference) without applying.
  rebuild_scheduler();
  if (shadow_) shadow_->adopt_state(*this);
}

void VisibilityEngine::adopt_state(const VisibilityEngine& src) {
  reset();
  state_ = src.state_;
  seeded_cut_ = src.seeded_cut_;
  applied_slots_ = src.applied_slots_;
  log_ = src.log_;
  applied_ = src.applied_;
  masked_ = src.masked_;
  pending_set_ = src.pending_set_;
  rebuild_masked_index();
  rebuild_scheduler();
}

void VisibilityEngine::reset() {
  const std::size_t num_dcs = state_.size();
  state_ = VersionVector(num_dcs);
  seeded_cut_ = VersionVector();
  applied_slots_.clear();
  log_.clear();
  applied_.clear();
  masked_.clear();
  pending_set_.clear();
  pending_.clear();
  guard_seq_ = 0;
  guard_gen_.clear();
  wake_on_txn_.clear();
  wake_on_apply_.clear();
  wake_on_state_.clear();
  covered_pending_.clear();
  coverage_queue_.clear();
  ready_.clear();
  draining_ = false;
  masked_by_origin_.clear();
  masked_by_key_.clear();
  shadow_divergence_.clear();
  if (shadow_) shadow_->reset();
}

}  // namespace colony
