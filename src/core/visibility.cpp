#include "core/visibility.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace colony {

VisibilityEngine::VisibilityEngine(TxnStore& txns, JournalStore& store,
                                   std::size_t num_dcs)
    : txns_(txns), store_(store), state_(num_dcs) {}

namespace {

/// Does `txn` causally depend on masked transaction `m` in a way that
/// makes its values untrustworthy? Vector metadata only gives a
/// conservative happened-before; masking *everything* after a masked
/// transaction would freeze the system, so we propagate along real
/// data-flow channels: the dependant was issued by the same origin (it
/// built on its own masked state) or touches an object the masked
/// transaction wrote (it read the masked value).
bool masked_dependency(const Transaction& txn, const Transaction& m) {
  if (txn.meta.origin == m.meta.origin) return true;
  for (const OpRecord& a : txn.ops) {
    for (const OpRecord& b : m.ops) {
      if (a.key == b.key) return true;
    }
  }
  return false;
}

}  // namespace

bool VisibilityEngine::ingest(Transaction txn) {
  const Dot dot = txn.meta.dot;
  const bool fresh = txns_.add(std::move(txn));
  if (fresh) {
    pending_.push_back(dot);
  } else if (applied_.contains(dot)) {
    // A duplicate copy can carry commit slots learned only after we applied
    // the transaction (equivalent timestamps after a migration, section
    // 3.8); fold them in so those sequence components keep advancing.
    advance_state(txns_.find(dot)->meta);
  }
  drain();
  return fresh;
}

void VisibilityEngine::advance_state(const TxnMeta& meta) {
  if (!sequential_) {
    state_.merge(meta.commit_lub());
    return;
  }
  // Contiguous semantics: record the transaction's own commit slot(s) and
  // only advance each component over its gap-free applied prefix. The
  // snapshot part is safe to merge outright — it gated the apply (it was
  // covered by state_ already) or arrived with a resolution, in which case
  // it is some other replica's (prefix-sound) vector.
  state_.merge(meta.snapshot);
  for (DcId dc = 0; dc < 32; ++dc) {
    if (!meta.accepted_by(dc)) continue;
    applied_slots_.record(Dot{dc, meta.commit.at(dc)});
    const Timestamp prefix = applied_slots_.prefix(dc);
    if (prefix > state_.at(dc)) state_.set(dc, prefix);
  }
}

void VisibilityEngine::resolve(const Dot& dot, DcId dc, Timestamp ts) {
  if (!txns_.contains(dot)) return;
  txns_.resolve(dot, dc, ts);
  if (applied_.contains(dot)) {
    // Already visible locally (read-my-writes fast path): the state vector
    // may now advance past its concrete commit point.
    advance_state(txns_.find(dot)->meta);
  }
  drain();
}

void VisibilityEngine::resolve_full(const Dot& dot, DcId dc, Timestamp ts,
                                    const VersionVector& resolved_snapshot) {
  Transaction* txn = txns_.find_mutable(dot);
  if (txn == nullptr) return;
  txn->meta.snapshot = resolved_snapshot;
  txn->meta.pending_deps.clear();
  txn->meta.mark_accepted(dc, ts);
  if (applied_.contains(dot)) {
    advance_state(txn->meta);
  }
  drain();
}

bool VisibilityEngine::apply_causal(const Dot& dot) {
  const Transaction* txn = txns_.find(dot);
  COLONY_ASSERT(txn != nullptr, "apply_causal of unknown transaction");
  if (applied_.contains(dot)) return true;
  if (!txn->meta.snapshot.leq(state_)) return false;
  for (const Dot& dep : txn->meta.pending_deps) {
    if (!applied_.contains(dep)) return false;
  }
  apply_local(dot);
  return true;
}

void VisibilityEngine::apply_ops(const Transaction& txn, bool masked) {
  for (const OpRecord& op : txn.ops) {
    if (key_filter_ != nullptr && !key_filter_(op.key)) continue;
    store_.apply(op.key, op.type, txn.meta.dot, op.payload, masked);
  }
}

bool VisibilityEngine::try_apply(const Dot& dot) {
  const Transaction* txn = txns_.find(dot);
  COLONY_ASSERT(txn != nullptr, "pending dot without transaction record");
  if (applied_.contains(dot)) return true;  // e.g. applied locally earlier
  if (!txn->meta.concrete) return false;

  VersionVector eff;
  if (!txns_.effective_snapshot(dot, eff)) return false;
  if (!eff.leq(state_)) return false;

  // Order within a ready batch: a seeded cut can make several pending
  // transactions applicable at once, and the pending buffer holds them in
  // arrival order — which, across two session channels or after a loss
  // repair, may invert causality. Defer this transaction while a causal
  // predecessor is still pending; drain() re-passes until no progress, so
  // this only reorders, never starves (causality is acyclic).
  for (const Dot& other : pending_) {
    if (other == dot) continue;
    if (txns_.visible_at(other, eff)) return false;
  }

  bool masked =
      security_check_ != nullptr && !security_check_(*txn);
  if (!masked) {
    // Transitive masking (paper sections 2.4 / 5.3): a transaction that
    // causally follows a masked one AND depends on it through a data-flow
    // channel is masked as well.
    for (const Dot& m : masked_) {
      const Transaction* masked_txn = txns_.find(m);
      if (masked_txn != nullptr && txns_.visible_at(m, eff) &&
          masked_dependency(*txn, *masked_txn)) {
        masked = true;
        break;
      }
    }
  }

  apply_ops(*txn, masked);
  applied_.insert(dot);
  if (masked) masked_.insert(dot);
  log_.append(dot);
  advance_state(txn->meta);
  if (visible_hook_ != nullptr && !masked) visible_hook_(*txn);
  return true;
}

void VisibilityEngine::drain() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (try_apply(*it)) {
        it = pending_.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
}

void VisibilityEngine::apply_local(const Dot& dot) {
  const Transaction* txn = txns_.find(dot);
  COLONY_ASSERT(txn != nullptr, "apply_local of unknown transaction");
  if (applied_.contains(dot)) return;
  const bool masked =
      security_check_ != nullptr && !security_check_(*txn);
  apply_ops(*txn, masked);
  applied_.insert(dot);
  if (masked) masked_.insert(dot);
  log_.append(dot);
  if (txn->meta.concrete) advance_state(txn->meta);
  if (visible_hook_ != nullptr && !masked) visible_hook_(*txn);
}

std::size_t VisibilityEngine::recompute_masks() {
  std::unordered_set<Dot> new_masked;
  std::unordered_set<Dot> flipped;

  for (const Dot& dot : log_.entries()) {
    const Transaction* txn = txns_.find(dot);
    COLONY_ASSERT(txn != nullptr, "visibility log references unknown txn");
    const bool is_policy_txn =
        std::any_of(txn->ops.begin(), txn->ops.end(),
                    [&](const OpRecord& op) { return op.key == policy_key_; });
    bool masked = is_policy_txn
                      ? masked_.contains(dot)
                      : security_check_ != nullptr && !security_check_(*txn);
    if (!masked && !is_policy_txn) {
      VersionVector eff;
      if (txns_.effective_snapshot(dot, eff)) {
        for (const Dot& m : new_masked) {
          const Transaction* masked_txn = txns_.find(m);
          if (masked_txn != nullptr && txns_.visible_at(m, eff) &&
              masked_dependency(*txn, *masked_txn)) {
            masked = true;
            break;
          }
        }
      }
    }
    if (masked) new_masked.insert(dot);
    const bool was = masked_.contains(dot);
    if (was != masked) flipped.insert(dot);
  }

  if (flipped.empty()) return 0;
  masked_ = std::move(new_masked);

  // Rebuild the current value of every object touched by a flipped txn.
  std::vector<ObjectKey> to_rebuild;
  for (const Dot& dot : flipped) {
    const Transaction* txn = txns_.find(dot);
    for (const OpRecord& op : txn->ops) to_rebuild.push_back(op.key);
  }
  std::sort(to_rebuild.begin(), to_rebuild.end());
  to_rebuild.erase(std::unique(to_rebuild.begin(), to_rebuild.end()),
                   to_rebuild.end());
  const auto visible = visible_predicate();
  for (const ObjectKey& key : to_rebuild) {
    store_.rebuild_current(key, visible);
  }
  return flipped.size();
}

void VisibilityEngine::reapply_missing(const ObjectKey& key,
                                       const ObjectSnapshot& snap) {
  const std::unordered_set<Dot> in_snapshot(snap.applied.begin(),
                                            snap.applied.end());
  for (const Dot& dot : log_.entries()) {
    if (in_snapshot.contains(dot)) continue;
    const Transaction* txn = txns_.find(dot);
    if (txn == nullptr) continue;
    const bool masked = masked_.contains(dot);
    for (const OpRecord& op : txn->ops) {
      if (op.key == key) {
        store_.apply(op.key, op.type, dot, op.payload, masked);
      }
    }
  }
}

JournalStore::DotPredicate VisibilityEngine::visible_predicate() const {
  return [this](const Dot& dot) {
    return applied_.contains(dot) && !masked_.contains(dot);
  };
}

}  // namespace colony
