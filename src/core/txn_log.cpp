#include "core/txn_log.hpp"

#include "util/assert.hpp"

namespace colony {

void VisibilityLog::append(const Dot& dot) {
  if (index_.contains(dot)) return;
  index_.emplace(dot, entries_.size());
  entries_.push_back(dot);
}

std::uint64_t VisibilityLog::position(const Dot& dot) const {
  const auto it = index_.find(dot);
  COLONY_ASSERT(it != index_.end(), "dot not in visibility log");
  return it->second;
}

std::uint64_t VisibilityLog::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (const Dot& dot : entries_) {
    mix(dot.origin);
    mix(dot.counter);
  }
  return h;
}

std::vector<Dot> VisibilityLog::since(std::size_t from) const {
  if (from >= entries_.size()) return {};
  return {entries_.begin() + static_cast<std::ptrdiff_t>(from),
          entries_.end()};
}

void VisibilityLog::encode(Encoder& enc) const {
  enc.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const Dot& dot : entries_) dot.encode(enc);
}

void VisibilityLog::decode(Decoder& dec) {
  clear();
  const std::uint32_t n = dec.u32();
  if (n > dec.remaining()) dec.fail();
  for (std::uint32_t i = 0; i < n && dec.ok(); ++i) {
    append(Dot::decode(dec));
  }
}

}  // namespace colony
