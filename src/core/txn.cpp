#include "core/txn.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace colony {

void OpRecord::encode(Encoder& enc) const {
  enc.str(key.bucket);
  enc.str(key.name);
  enc.u8(static_cast<std::uint8_t>(type));
  enc.bytes(payload);
}

OpRecord OpRecord::decode(Decoder& dec) {
  OpRecord op;
  op.key.bucket = dec.str();
  op.key.name = dec.str();
  op.type = static_cast<CrdtType>(dec.u8());
  op.payload = dec.bytes();
  return op;
}

void TxnMeta::encode(Encoder& enc) const {
  dot.encode(enc);
  enc.u64(origin);
  enc.u64(user);
  snapshot.encode(enc);
  enc.u32(static_cast<std::uint32_t>(pending_deps.size()));
  for (const Dot& dep : pending_deps) dep.encode(enc);
  enc.boolean(concrete);
  commit.encode(enc);
  enc.u32(accepted_mask);
}

TxnMeta TxnMeta::decode(Decoder& dec) {
  TxnMeta m;
  m.dot = Dot::decode(dec);
  m.origin = dec.u64();
  m.user = dec.u64();
  m.snapshot = VersionVector::decode(dec);
  const std::uint32_t n = dec.u32();
  if (n > dec.remaining()) dec.fail();  // hostile count: reject pre-alloc
  for (std::uint32_t i = 0; i < n && dec.ok(); ++i) {
    m.pending_deps.push_back(Dot::decode(dec));
  }
  m.concrete = dec.boolean();
  m.commit = VersionVector::decode(dec);
  m.accepted_mask = dec.u32();
  return m;
}

void Transaction::encode(Encoder& enc) const {
  meta.encode(enc);
  enc.u32(static_cast<std::uint32_t>(ops.size()));
  for (const OpRecord& op : ops) op.encode(enc);
}

Transaction Transaction::decode(Decoder& dec) {
  Transaction txn;
  txn.meta = TxnMeta::decode(dec);
  const std::uint32_t n = dec.u32();
  if (n > dec.remaining()) dec.fail();
  for (std::uint32_t i = 0; i < n && dec.ok(); ++i) {
    txn.ops.push_back(OpRecord::decode(dec));
  }
  return txn;
}

Bytes Transaction::to_bytes() const {
  Encoder enc;
  encode(enc);
  return enc.take();
}

Transaction Transaction::from_bytes(const Bytes& bytes) {
  Decoder dec(bytes);
  return decode(dec);
}

VersionVector TxnMeta::commit_vector_via(DcId dc) const {
  COLONY_ASSERT(accepted_by(dc), "no commit timestamp for this DC");
  VersionVector v = snapshot;
  v.set(dc, commit.at(dc));
  return v;
}

VersionVector TxnMeta::commit_lub() const {
  VersionVector v = snapshot;
  for_each_accepted([&](DcId dc) { v.set(dc, commit.at(dc)); });
  return v;
}

bool TxnStore::add(Transaction txn) {
  auto it = txns_.find(txn.meta.dot);
  if (it != txns_.end()) {
    // Duplicate delivery: merge commit knowledge, keep existing ops.
    TxnMeta& existing = it->second.meta;
    txn.meta.for_each_accepted([&](DcId dc) {
      if (!existing.accepted_by(dc)) {
        existing.mark_accepted(dc, txn.meta.commit.at(dc));
      }
    });
    // A concrete copy also carries the DC-resolved snapshot; adopt it so
    // pending deps disappear.
    if (txn.meta.concrete && !existing.pending_deps.empty() &&
        txn.meta.pending_deps.empty()) {
      existing.snapshot = txn.meta.snapshot;
      existing.pending_deps.clear();
    }
    return false;
  }
  txns_.emplace(txn.meta.dot, std::move(txn));
  return true;
}

const Transaction* TxnStore::find(const Dot& dot) const {
  const auto it = txns_.find(dot);
  return it == txns_.end() ? nullptr : &it->second;
}

Transaction* TxnStore::find_mutable(const Dot& dot) {
  const auto it = txns_.find(dot);
  return it == txns_.end() ? nullptr : &it->second;
}

void TxnStore::resolve(const Dot& dot, DcId dc, Timestamp ts) {
  Transaction* txn = find_mutable(dot);
  COLONY_ASSERT(txn != nullptr, "resolving unknown transaction");
  txn->meta.mark_accepted(dc, ts);
}

bool TxnStore::effective_snapshot(const Dot& dot, VersionVector& out) const {
  const Transaction* txn = find(dot);
  if (txn == nullptr) return false;
  out = txn->meta.snapshot;
  for (const Dot& dep : txn->meta.pending_deps) {
    const Transaction* d = find(dep);
    if (d == nullptr || !d->meta.concrete) return false;
    out.merge(d->meta.commit_lub());
  }
  return true;
}

bool TxnStore::visible_at(const Dot& dot, const VersionVector& cut) const {
  const Transaction* txn = find(dot);
  if (txn == nullptr || !txn->meta.concrete) return false;
  const TxnMeta& m = txn->meta;
  bool visible = false;
  m.for_each_accepted([&](DcId dc) {
    if (visible || m.commit.at(dc) > cut.at(dc)) return;
    // Snapshot components other than dc must also be within the cut.
    const DcId width = static_cast<DcId>(std::max(cut.size(),
                                                  m.snapshot.size()));
    for (DcId c = 0; c < width; ++c) {
      if (c == dc) continue;
      if (m.snapshot.at(c) > cut.at(c)) return;
    }
    visible = true;
  });
  return visible;
}

std::vector<Dot> TxnStore::all_dots() const {
  std::vector<Dot> out;
  out.reserve(txns_.size());
  for (const auto& [dot, _] : txns_) out.push_back(dot);
  return out;
}

void TxnStore::encode(Encoder& enc) const {
  std::vector<Dot> dots = all_dots();
  std::sort(dots.begin(), dots.end());
  enc.u32(static_cast<std::uint32_t>(dots.size()));
  for (const Dot& dot : dots) txns_.at(dot).encode(enc);
}

void TxnStore::decode(Decoder& dec) {
  txns_.clear();
  const std::uint32_t n = dec.u32();
  if (n > dec.remaining()) dec.fail();
  for (std::uint32_t i = 0; i < n && dec.ok(); ++i) {
    Transaction txn = Transaction::decode(dec);
    const Dot dot = txn.meta.dot;
    txns_.emplace(dot, std::move(txn));
  }
}

}  // namespace colony
