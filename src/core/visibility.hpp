// The visibility engine: causal application of transactions at a replica.
//
// This is the paper's "visibility layer" (sections 3, 4): the backend
// (TxnStore) may hold transactions in any order; the engine decides when a
// transaction may become visible — all causal dependencies visible, commit
// concrete — and folds its operations into the journal store, appends it to
// the visibility log, and advances the replica's state vector. Transactions
// whose dependencies are missing wait in a pending buffer.
//
// A security hook can veto visibility of a transaction's *values* (ACL
// masking, sections 5.3/6.4): a masked transaction is still delivered and
// still advances metadata, but its operations are excluded from
// materialised values, transitively with its causal dependants.
#pragma once

#include <functional>
#include <unordered_set>
#include <vector>

#include "clock/dot_tracker.hpp"
#include "core/txn.hpp"
#include "core/txn_log.hpp"
#include "storage/journal_store.hpp"

namespace colony {

class VisibilityEngine {
 public:
  /// Returns true when the transaction's values may be shown (ACL pass).
  using SecurityCheck = std::function<bool(const Transaction&)>;
  /// Notified for every transaction that becomes visible (reactive
  /// subscriptions, replication fan-out).
  using VisibleHook = std::function<void(const Transaction&)>;
  /// Which object keys this replica materialises. Edge caches track only
  /// their interest set: ops on other keys are skipped (the transaction
  /// still counts as applied; reapply_missing repairs the gap if the key
  /// is fetched later). Replicas without a filter keep everything.
  using KeyFilter = std::function<bool(const ObjectKey&)>;

  VisibilityEngine(TxnStore& txns, JournalStore& store, std::size_t num_dcs);

  /// Ingest a transaction learned from the network or committed locally.
  /// Returns true if it was new (not a duplicate dot).
  bool ingest(Transaction txn);

  /// Merge resolution info (a DC assigned dot's commit timestamp), then try
  /// to drain the pending buffer.
  void resolve(const Dot& dot, DcId dc, Timestamp ts);

  /// Full resolution as carried by a DC commit acknowledgement: install the
  /// DC-resolved concrete snapshot (clearing symbolic pending deps) plus
  /// the commit timestamp — the Fig. 2 step-8 "fill in [α,β,γ]".
  void resolve_full(const Dot& dot, DcId dc, Timestamp ts,
                    const VersionVector& resolved_snapshot);

  /// Apply a transaction in an externally-agreed order (peer-group SI
  /// order, section 5.1.4): requires the concrete part of its snapshot to
  /// be covered by the local state and its same-origin pending deps to be
  /// applied locally, but not a concrete commit vector. Returns false if
  /// those causal prerequisites are not met yet.
  bool apply_causal(const Dot& dot);

  /// Try to apply pending transactions; call after any state change.
  void drain();

  /// Force-apply a locally committed transaction before its commit vector
  /// is concrete (read-my-writes, section 3.8): its values enter the cache
  /// immediately; the state vector advances only once it resolves.
  void apply_local(const Dot& dot);

  [[nodiscard]] const VersionVector& state_vector() const { return state_; }
  [[nodiscard]] const VisibilityLog& log() const { return log_; }
  [[nodiscard]] bool is_applied(const Dot& dot) const {
    return applied_.contains(dot);
  }
  [[nodiscard]] bool is_masked(const Dot& dot) const {
    return masked_.contains(dot);
  }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  /// Every applied dot (invariant checkers audit this against the log).
  [[nodiscard]] const std::unordered_set<Dot>& applied_set() const {
    return applied_;
  }

  void set_security_check(SecurityCheck check) {
    security_check_ = std::move(check);
  }

  /// Key of the policy object itself. Transactions touching it keep their
  /// at-apply mask decision during recompute_masks: re-judging an
  /// administrative change under the policy it created would let a
  /// bootstrap grant mask itself.
  void set_policy_key(ObjectKey key) { policy_key_ = std::move(key); }
  void set_visible_hook(VisibleHook hook) { visible_hook_ = std::move(hook); }
  void set_key_filter(KeyFilter filter) { key_filter_ = std::move(filter); }

  /// Seed the state vector (e.g. from an initial checkout). Callers must
  /// guarantee the premise a seed asserts: every transaction below `v` is
  /// materialised here — via imported snapshots or delivered pushes.
  void seed_state(const VersionVector& v) {
    state_.merge(v);
    seeded_cut_.merge(v);
  }

  /// Least upper bound of every cut ever seeded: the provable "I possess
  /// everything below this" baseline. The state vector itself can run
  /// ahead of possession — resolving an own commit merges the DC-resolved
  /// snapshot (read-my-writes), which may cover foreign transactions this
  /// replica never received — so migration hand-off must use this cut,
  /// not the state vector, to decide what the new DC needs to backfill.
  [[nodiscard]] const VersionVector& seeded_cut() const {
    return seeded_cut_;
  }

  /// DC replicas apply every transaction of every commit sequence, so each
  /// state-vector component must advance *contiguously*: state_[d] = ts
  /// asserts that all of d's slots through ts are applied here, which is
  /// what the snapshot gate and the gossip anti-entropy read off it.
  /// Merging a transaction's own commit slot directly (the default) would
  /// silently skip over a crash-induced replication gap — a later
  /// transaction of the same origin could become visible before its
  /// predecessor. Edge caches must NOT enable this: they skip transactions
  /// outside their interest cut and advance via seeded K-stable cuts.
  void set_sequential_components(bool on) { sequential_ = on; }

  /// Re-evaluate the security mask over the whole history (after an ACL
  /// change) and rebuild affected objects' current values. Returns the
  /// number of transactions whose mask flipped.
  std::size_t recompute_masks();

  /// Predicate for JournalStore::materialize: applied and not masked.
  [[nodiscard]] JournalStore::DotPredicate visible_predicate() const;

  /// After importing a fetched snapshot of `key`, re-apply the operations
  /// of locally-applied transactions the snapshot does not contain (in
  /// local visibility order). Without this, evicting an object and
  /// re-fetching an older (K-stable) version would silently lose local
  /// context the node has already observed — and a later operation
  /// depending on it (e.g. an RGA insert after a lost element) could not
  /// be replayed.
  void reapply_missing(const ObjectKey& key, const ObjectSnapshot& snap);

 private:
  bool try_apply(const Dot& dot);
  void apply_ops(const Transaction& txn, bool masked);
  /// Advance state_ with an applied transaction's commit knowledge —
  /// contiguously per component when sequential_ is set.
  void advance_state(const TxnMeta& meta);

  TxnStore& txns_;
  JournalStore& store_;
  VersionVector state_;
  VersionVector seeded_cut_;
  bool sequential_ = false;
  /// Per-DC applied commit slots (origin = DcId): contiguous prefix plus
  /// out-of-order slots, used only in sequential mode.
  DotTracker applied_slots_;
  VisibilityLog log_;
  std::unordered_set<Dot> applied_;
  std::unordered_set<Dot> masked_;
  std::vector<Dot> pending_;
  SecurityCheck security_check_;
  VisibleHook visible_hook_;
  KeyFilter key_filter_;
  ObjectKey policy_key_;
};

}  // namespace colony
