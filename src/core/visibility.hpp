// The visibility engine: causal application of transactions at a replica.
//
// This is the paper's "visibility layer" (sections 3, 4): the backend
// (TxnStore) may hold transactions in any order; the engine decides when a
// transaction may become visible — all causal dependencies visible, commit
// concrete — and folds its operations into the journal store, appends it to
// the visibility log, and advances the replica's state vector. Transactions
// whose dependencies are missing wait in a pending buffer.
//
// Two drain schedulers implement the same visibility relation (DESIGN.md
// §8):
//   * kIndexed (default): every blocked transaction registers ONE guard —
//     the first unmet condition of its applicability check (own commit
//     symbolic, a pending dep unknown/symbolic, a state-vector component
//     below a threshold, or an unapplied causal predecessor) — and is
//     re-examined only when that guard's wake event fires. Backlog drain is
//     O(n log n) instead of the fixpoint's super-quadratic rescan.
//   * kFixpointReference: the original rescan-until-no-progress drain, kept
//     verbatim as the executable specification. The chaos equivalence sweep
//     and the backlog benchmarks run both side by side.
//
// A security hook can veto visibility of a transaction's *values* (ACL
// masking, sections 5.3/6.4): a masked transaction is still delivered and
// still advances metadata, but its operations are excluded from
// materialised values, transitively with its causal dependants.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "clock/dot_tracker.hpp"
#include "core/txn.hpp"
#include "core/txn_log.hpp"
#include "storage/journal_store.hpp"

namespace colony {

class VisibilityEngine {
 public:
  /// Returns true when the transaction's values may be shown (ACL pass).
  using SecurityCheck = std::function<bool(const Transaction&)>;
  /// Notified for every transaction that becomes visible (reactive
  /// subscriptions, replication fan-out).
  using VisibleHook = std::function<void(const Transaction&)>;
  /// Which object keys this replica materialises. Edge caches track only
  /// their interest set: ops on other keys are skipped (the transaction
  /// still counts as applied; reapply_missing repairs the gap if the key
  /// is fetched later). Replicas without a filter keep everything.
  using KeyFilter = std::function<bool(const ObjectKey&)>;

  /// Which drain scheduler runs the pending buffer (see file header).
  enum class DrainMode { kIndexed, kFixpointReference };

  VisibilityEngine(TxnStore& txns, JournalStore& store, std::size_t num_dcs);

  /// Ingest a transaction learned from the network or committed locally.
  /// Returns true if it was new (not a duplicate dot).
  bool ingest(Transaction txn);

  /// Record a transaction in the backend WITHOUT scheduling it for
  /// visibility (peer-group commands await external ordering before
  /// apply_causal). Still fires dependency wakes: a pending transaction
  /// waiting on this dot as an unknown dep must be re-examined.
  /// Returns TxnStore::add's result.
  bool admit(Transaction txn);

  /// Merge resolution info (a DC assigned dot's commit timestamp), then try
  /// to drain the pending buffer.
  void resolve(const Dot& dot, DcId dc, Timestamp ts);

  /// Full resolution as carried by a DC commit acknowledgement: install the
  /// DC-resolved concrete snapshot (clearing symbolic pending deps) plus
  /// the commit timestamp — the Fig. 2 step-8 "fill in [α,β,γ]".
  void resolve_full(const Dot& dot, DcId dc, Timestamp ts,
                    const VersionVector& resolved_snapshot);

  /// Apply a transaction in an externally-agreed order (peer-group SI
  /// order, section 5.1.4): requires the concrete part of its snapshot to
  /// be covered by the local state and its same-origin pending deps to be
  /// applied locally, but not a concrete commit vector. Returns false if
  /// those causal prerequisites are not met yet.
  bool apply_causal(const Dot& dot);

  /// Try to apply pending transactions; call after any state change.
  void drain();

  /// Force-apply a locally committed transaction before its commit vector
  /// is concrete (read-my-writes, section 3.8): its values enter the cache
  /// immediately; the state vector advances only once it resolves.
  void apply_local(const Dot& dot);

  [[nodiscard]] const VersionVector& state_vector() const { return state_; }
  [[nodiscard]] const VisibilityLog& log() const { return log_; }
  [[nodiscard]] bool is_applied(const Dot& dot) const {
    return applied_.contains(dot);
  }
  [[nodiscard]] bool is_masked(const Dot& dot) const {
    return masked_.contains(dot);
  }
  [[nodiscard]] std::size_t pending_count() const {
    return pending_set_.size();
  }
  /// Every applied dot (invariant checkers audit this against the log).
  [[nodiscard]] const std::unordered_set<Dot>& applied_set() const {
    return applied_;
  }
  /// Every masked dot (equivalence checkers compare this across drains).
  [[nodiscard]] const std::unordered_set<Dot>& masked_set() const {
    return masked_;
  }

  void set_security_check(SecurityCheck check);

  /// Key of the policy object itself. Transactions touching it keep their
  /// at-apply mask decision during recompute_masks: re-judging an
  /// administrative change under the policy it created would let a
  /// bootstrap grant mask itself.
  void set_policy_key(ObjectKey key);
  void set_visible_hook(VisibleHook hook) { visible_hook_ = std::move(hook); }
  void set_key_filter(KeyFilter filter);

  /// Seed the state vector (e.g. from an initial checkout). Callers must
  /// guarantee the premise a seed asserts: every transaction below `v` is
  /// materialised here — via imported snapshots or delivered pushes.
  /// Call drain() afterwards to apply anything the seed unblocked.
  void seed_state(const VersionVector& v);

  /// Least upper bound of every cut ever seeded: the provable "I possess
  /// everything below this" baseline. The state vector itself can run
  /// ahead of possession — resolving an own commit merges the DC-resolved
  /// snapshot (read-my-writes), which may cover foreign transactions this
  /// replica never received — so migration hand-off must use this cut,
  /// not the state vector, to decide what the new DC needs to backfill.
  [[nodiscard]] const VersionVector& seeded_cut() const {
    return seeded_cut_;
  }

  /// DC replicas apply every transaction of every commit sequence, so each
  /// state-vector component must advance *contiguously*: state_[d] = ts
  /// asserts that all of d's slots through ts are applied here, which is
  /// what the snapshot gate and the gossip anti-entropy read off it.
  /// Merging a transaction's own commit slot directly (the default) would
  /// silently skip over a crash-induced replication gap — a later
  /// transaction of the same origin could become visible before its
  /// predecessor. Edge caches must NOT enable this: they skip transactions
  /// outside their interest cut and advance via seeded K-stable cuts.
  void set_sequential_components(bool on);

  /// Re-evaluate the security mask over the whole history (after an ACL
  /// change) and rebuild affected objects' current values. Returns the
  /// number of transactions whose mask flipped.
  std::size_t recompute_masks();

  /// Predicate for JournalStore::materialize: applied and not masked.
  [[nodiscard]] JournalStore::DotPredicate visible_predicate() const;

  /// After importing a fetched snapshot of `key`, re-apply the operations
  /// of locally-applied transactions the snapshot does not contain (in
  /// local visibility order). Without this, evicting an object and
  /// re-fetching an older (K-stable) version would silently lose local
  /// context the node has already observed — and a later operation
  /// depending on it (e.g. an RGA insert after a lost element) could not
  /// be replayed.
  void reapply_missing(const ObjectKey& key, const ObjectSnapshot& snap);

  // --- drain-mode selection and equivalence checking -----------------------

  /// Switch scheduler. Safe mid-run: the wake index (or the fixpoint scan
  /// list) is rebuilt from the pending set and drained once.
  void set_drain_mode(DrainMode mode);
  [[nodiscard]] DrainMode drain_mode() const { return mode_; }

  /// Default mode for newly constructed engines (benchmarks and the
  /// equivalence sweep flip this before building a cluster).
  static void set_default_drain_mode(DrainMode mode) { default_mode_ = mode; }
  [[nodiscard]] static DrainMode default_drain_mode() { return default_mode_; }

  /// When set, every engine constructed afterwards carries a *reference
  /// shadow*: a second engine in kFixpointReference mode fed the exact
  /// same event stream (sharing the TxnStore, applying into a throwaway
  /// JournalStore). shadow_matches() then proves the indexed scheduler
  /// computed the same applied set, masked set, and state vector.
  static void set_shadow_default(bool on) { shadow_default_ = on; }

  /// True when no shadow is attached, or the shadow agrees on applied set,
  /// masked set, state vector, and pending count. On mismatch `why` (if
  /// non-null) receives a description.
  [[nodiscard]] bool shadow_matches(std::string* why = nullptr) const;
  [[nodiscard]] const VisibilityEngine* shadow() const {
    return shadow_.get();
  }

  // --- durability (checkpoint export/import) -------------------------------

  /// Serialize the engine's durable state: state vector, seeded cut,
  /// applied commit slots, visibility log, applied/masked/pending sets.
  /// Deterministic — unordered sets encode sorted — so byte equality of
  /// two encodings proves state equality. Scheduler wake structures are
  /// derived state and are NOT serialized; decode_state rebuilds them.
  void encode_state(Encoder& enc) const;

  /// Restore from encode_state bytes. Configuration (security check,
  /// hooks, key filter, drain mode, sequential components) is not part of
  /// the payload and must be wired by the owner beforehand, exactly as at
  /// construction. The attached reference shadow (if any) is restored to
  /// the identical state so equivalence checking survives a crash-restart.
  void decode_state(Decoder& dec);

  /// Drop every piece of engine state (crash): applied/masked/pending
  /// sets, log, state vector, wake index, shadow. Configuration wiring
  /// survives.
  void reset();

 private:
  VisibilityEngine(TxnStore& txns, JournalStore& store, std::size_t num_dcs,
                   bool is_shadow);

  /// Re-register every pending transaction with the active scheduler (the
  /// set_drain_mode rebuild, shared with decode_state).
  void rebuild_scheduler();
  /// Copy another engine's durable state wholesale (shadow restore).
  void adopt_state(const VisibilityEngine& src);

  // Shared apply tail (both schedulers, and apply_local).
  void apply_ops(const Transaction& txn, bool masked);
  /// Advance state_ with an applied transaction's commit knowledge —
  /// contiguously per component when sequential_ is set. Fires state wakes
  /// in indexed mode.
  void advance_state(const TxnMeta& meta);
  void mark_masked(const Dot& dot, const Transaction& txn);

  // Fixpoint reference scheduler (original semantics, kept verbatim).
  bool try_apply_fixpoint(const Dot& dot);
  void drain_fixpoint();

  // Indexed wake-list scheduler.
  bool try_apply_indexed(const Dot& dot);
  void pump();
  void push_ready(const Dot& dot) { ready_.push_back(dot); }
  std::uint64_t new_guard_gen(const Dot& dot);
  void guard_on_txn(const Dot& dot, const Dot& waits_on);
  void guard_on_apply(const Dot& dot, const Dot& waits_on);
  void guard_on_state(const Dot& dot, DcId dc, Timestamp threshold);
  /// Wake everything blocked on `dot` being ingested or becoming concrete,
  /// and re-examine `dot` itself if pending.
  void fire_txn_event(const Dot& dot);
  void fire_apply_event(const Dot& dot);
  /// Pop state-threshold guards and coverage entries up to state_[dc].
  void wake_state_component(DcId dc);
  /// Pop every state/coverage queue against the current state vector.
  void catch_up_state_wakes();
  /// Register a concrete pending txn in the coverage index (the batch
  /// causal-order check scans only covered pending txns).
  void index_coverage(const Dot& dot);
  void add_pending(const Dot& dot);
  void remove_pending(const Dot& dot);
  /// Data-flow masked-dependency test via the per-origin/per-key buckets
  /// (indexed scheduler); the reference scans masked_ wholesale.
  [[nodiscard]] bool masked_dependency_indexed(const Transaction& txn,
                                               const VersionVector& eff) const;
  void rebuild_masked_index();

  // Event plumbing shared by primary and shadow (no TxnStore mutation).
  /// Mode-dispatched drain of this engine only (no shadow forwarding).
  void drain_self();
  void on_ingested(const Dot& dot, bool fresh);
  void on_admitted(const Dot& dot);
  void on_resolution(const Dot& dot);
  bool apply_causal_engine(const Dot& dot);

  inline static DrainMode default_mode_ = DrainMode::kIndexed;
  inline static bool shadow_default_ = false;

  TxnStore& txns_;
  JournalStore& store_;
  VersionVector state_;
  VersionVector seeded_cut_;
  bool sequential_ = false;
  /// Per-DC applied commit slots (origin = DcId): contiguous prefix plus
  /// out-of-order slots, used only in sequential mode.
  DotTracker applied_slots_;
  VisibilityLog log_;
  std::unordered_set<Dot> applied_;
  std::unordered_set<Dot> masked_;
  /// Pending membership (both modes). The vector preserves arrival order
  /// for the fixpoint reference's scan; the indexed scheduler leaves it
  /// empty and works off the wake index.
  std::unordered_set<Dot> pending_set_;
  std::vector<Dot> pending_;
  SecurityCheck security_check_;
  VisibleHook visible_hook_;
  KeyFilter key_filter_;
  ObjectKey policy_key_;

  // --- indexed-scheduler state ---------------------------------------------
  DrainMode mode_;
  /// Guard registrations are tagged with a generation; stale wake entries
  /// (the dot re-registered elsewhere, or applied) are skipped on fire.
  struct WakeRef {
    Dot dot;
    std::uint64_t gen = 0;
  };
  std::uint64_t guard_seq_ = 0;
  std::unordered_map<Dot, std::uint64_t> guard_gen_;
  /// dep dot -> waiters re-examined when the dep is ingested/admitted or
  /// gains commit info (covers "dep unknown", "dep symbolic", and "own
  /// commit symbolic" — the latter keyed by the waiter's own dot).
  std::unordered_map<Dot, std::vector<WakeRef>> wake_on_txn_;
  /// applied dot -> waiters deferred behind a still-pending causal
  /// predecessor (the within-batch causal-order rule).
  std::unordered_map<Dot, std::vector<WakeRef>> wake_on_apply_;
  /// Per-DC threshold queues: woken when state_[dc] reaches the key.
  std::unordered_map<DcId, std::multimap<Timestamp, WakeRef>> wake_on_state_;
  /// Pending concrete txns with some accepted commit component inside the
  /// state vector — the only txns a ready candidate can causally follow
  /// (superset of {pending visible at any cut <= state}).
  std::unordered_set<Dot> covered_pending_;
  /// Not-yet-covered concrete pending txns, keyed per accepting DC by
  /// commit[dc]; drained into covered_pending_ as state_[dc] advances.
  std::unordered_map<DcId, std::multimap<Timestamp, Dot>> coverage_queue_;
  std::deque<Dot> ready_;
  bool draining_ = false;

  /// Data-flow index over masked_: origin -> masked dots, key -> masked
  /// dots. masked_dependency(txn, m) holds iff m is in txn's origin bucket
  /// or in a bucket of a key txn touches.
  std::unordered_map<NodeId, std::vector<Dot>> masked_by_origin_;
  std::unordered_map<ObjectKey, std::vector<Dot>> masked_by_key_;

  // --- reference shadow ----------------------------------------------------
  std::unique_ptr<JournalStore> shadow_store_;
  std::unique_ptr<VisibilityEngine> shadow_;
  std::string shadow_divergence_;
};

}  // namespace colony
