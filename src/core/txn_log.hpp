// Visibility log: the order in which transactions became visible at a node.
//
// Peer-group members keep a visibility log (paper section 5.1.4); sync
// points replay it towards the DC so that "different sync points send
// identical information" (section 5.1.3). Edge nodes and DCs use the same
// structure to answer "what am I missing since index i?".
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "clock/dot.hpp"

namespace colony {

class VisibilityLog {
 public:
  /// Append the next visible transaction. Ignores duplicates.
  void append(const Dot& dot);

  [[nodiscard]] bool contains(const Dot& dot) const {
    return index_.contains(dot);
  }

  /// Position of a dot in the log (for "is A before B here?" checks).
  [[nodiscard]] std::uint64_t position(const Dot& dot) const;

  [[nodiscard]] const std::vector<Dot>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Entries from index `from` (inclusive) onwards.
  [[nodiscard]] std::vector<Dot> since(std::size_t from) const;

  /// Order-sensitive FNV-1a over the entries: a cheap cross-run fingerprint
  /// (the pool-size equivalence sweep compares logs across worker counts —
  /// identical visibility orders must hash identically).
  [[nodiscard]] std::uint64_t digest() const;

  /// Checkpoint serialization: entry order is the log's payload, so the
  /// vector encodes as-is; the position index is rebuilt on decode.
  void encode(Encoder& enc) const;
  void decode(Decoder& dec);
  void clear() {
    entries_.clear();
    index_.clear();
  }

 private:
  std::vector<Dot> entries_;
  std::unordered_map<Dot, std::uint64_t> index_;
};

}  // namespace colony
