// Edge cache bookkeeping: interest sets with LRU eviction.
//
// An edge node cannot replicate the whole database; a client declares
// interest in objects, which subscribes its node to their updates (paper
// section 4.2). The cache has bounded capacity; evicted objects are
// unsubscribed to save resources (section 5.1.2).
#pragma once

#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace colony {

class InterestSet {
 public:
  /// capacity = maximum number of objects; 0 means unbounded.
  explicit InterestSet(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Register interest (or refresh recency). Returns the key evicted to
  /// make room, if any — the caller must unsubscribe and drop it.
  std::optional<ObjectKey> add(const ObjectKey& key);

  /// Touch on read/write so hot objects stay cached.
  void touch(const ObjectKey& key);

  void remove(const ObjectKey& key);
  [[nodiscard]] bool contains(const ObjectKey& key) const {
    return index_.contains(key);
  }

  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::vector<ObjectKey> keys() const;

 private:
  std::size_t capacity_;
  std::list<ObjectKey> lru_;  // most-recent at front
  std::unordered_map<ObjectKey, std::list<ObjectKey>::iterator> index_;
};

}  // namespace colony
