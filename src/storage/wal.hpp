// Write-ahead log + checkpoint stream: the durability layer under a node.
//
// A Wal models one node's local durable disk inside the simulation: two
// append-only byte streams (the record log and the checkpoint stream),
// both framed exactly like the wire transport —
//
//   record frame:      [u32 type | u32 len | payload[len] | u32 crc32]
//   checkpoint frame:  [u32 kCheckpointMagic | u32 len |
//                       (u64 wal_offset ++ snapshot) | u32 crc32]
//
// where the CRC covers everything before it in the frame. The record
// `type` vocabulary belongs to the caller (DcNode and EdgeNode define
// their own replay enums); the Wal itself only guarantees framing,
// integrity, and the recovery contract:
//
//   * recover() scans the record log from offset 0 and accepts the
//     longest prefix of intact frames — the first torn or corrupt frame
//     ends the scan, and nothing after it is ever surfaced (a partially
//     written record cannot be resurrected);
//   * the newest checkpoint that is (a) CRC-intact, (b) anchored at a
//     valid record-frame boundary, and (c) not ahead of the valid record
//     prefix is chosen as the restore base; damaged or over-eager
//     checkpoints fall back to older ones, and with no usable checkpoint
//     recovery replays the whole log from genesis;
//   * the records strictly after the chosen checkpoint's anchor offset
//     are returned as the replay tail, in append order.
//
// Record-log positions are *logical* offsets: they count bytes since the
// log's genesis, not since the start of the in-memory stream. The two
// coincide until truncate_to_checkpoint() reclaims the prefix below the
// newest checkpoint, after which log_base() reports the logical offset of
// the first byte still present. Anchors, valid_bytes, and
// checkpoint_offset are all logical, so checkpoints stay valid across
// truncations. truncate_to() exists so a restarted node can drop a torn
// tail before appending again.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/binary_codec.hpp"

namespace colony::storage {

struct WalRecord {
  std::uint32_t type = 0;
  Bytes payload;

  bool operator==(const WalRecord&) const = default;
};

/// Everything recover() learned from the two streams.
struct WalRecovery {
  /// Snapshot bytes of the newest usable checkpoint (nullopt: replay from
  /// genesis).
  std::optional<Bytes> checkpoint;
  /// Record-log offset the checkpoint covers: every record at an earlier
  /// offset is already folded into the snapshot.
  std::uint64_t checkpoint_offset = 0;
  /// Records after checkpoint_offset, in append order.
  std::vector<WalRecord> tail;
  /// Logical end of the intact record-log prefix; bytes past it are
  /// garbage.
  std::uint64_t valid_bytes = 0;
  /// True when either stream carried a torn/corrupt tail that was dropped.
  bool torn = false;
};

class Wal {
 public:
  /// Frame `type` marker of checkpoint-stream frames.
  static constexpr std::uint32_t kCheckpointMagic = 0x43503031;  // "CP01"
  /// Fixed framing overhead: type + len header, crc trailer.
  static constexpr std::size_t kHeaderBytes = 8;
  static constexpr std::size_t kTrailerBytes = 4;

  /// Append one record frame to the log.
  void append(std::uint32_t type, ByteView payload);

  /// Append a checkpoint frame anchored at the current end of the record
  /// log: the snapshot must describe the state reached by replaying every
  /// record appended so far.
  void write_checkpoint(ByteView snapshot);

  /// Scan both streams and compute the restore plan. Never fails: corrupt
  /// input only shrinks what is recovered. Read-only — recover() on an
  /// untouched Wal is idempotent.
  [[nodiscard]] WalRecovery recover() const;

  /// Drop everything past the intact prefix (post-recovery cleanup so new
  /// appends extend a well-formed log). `valid_bytes` is logical.
  void truncate_to(std::uint64_t valid_bytes);

  /// Reclaim the record-log prefix below the newest usable checkpoint and
  /// drop the checkpoints it supersedes. Ordered so a crash at any point
  /// leaves a recoverable disk: the checkpoint stream is compacted first
  /// (the survivor is the one recover() would pick), then the log prefix
  /// behind its anchor is erased and log_base() advances to the anchor.
  /// Returns the number of log bytes reclaimed (0 when there is no usable
  /// checkpoint or nothing to drop).
  std::uint64_t truncate_to_checkpoint();

  /// Logical offset of the first byte still present in the record log.
  [[nodiscard]] std::uint64_t log_base() const { return log_base_; }
  /// Total record-log bytes ever reclaimed by truncate_to_checkpoint().
  [[nodiscard]] std::uint64_t truncated_bytes() const {
    return truncated_bytes_;
  }

  /// Records appended since the last checkpoint (checkpoint cadence).
  [[nodiscard]] std::uint64_t records_since_checkpoint() const {
    return records_since_checkpoint_;
  }
  [[nodiscard]] std::uint64_t record_count() const { return record_count_; }
  [[nodiscard]] std::uint64_t checkpoint_count() const {
    return checkpoint_count_;
  }
  [[nodiscard]] std::size_t log_bytes() const { return log_.size(); }
  [[nodiscard]] std::size_t checkpoint_bytes() const { return cp_.size(); }

  /// Raw stream access for the torn-tail fuzz tests (bit flips, truncation)
  /// and for cloning a disk into an isolated recovery probe.
  [[nodiscard]] const Bytes& raw_log() const { return log_; }
  [[nodiscard]] const Bytes& raw_checkpoints() const { return cp_; }
  Bytes& mutable_log() { return log_; }
  Bytes& mutable_checkpoints() { return cp_; }

  void clear();

 private:
  Bytes log_;
  Bytes cp_;
  std::uint64_t log_base_ = 0;  // logical offset of log_[0]
  std::uint64_t records_since_checkpoint_ = 0;
  std::uint64_t record_count_ = 0;
  std::uint64_t checkpoint_count_ = 0;
  std::uint64_t truncated_bytes_ = 0;
};

}  // namespace colony::storage
