// Versioned object storage: base version + journal of updates.
//
// Paper section 4.1: an object is stored as a base version plus a journal
// of operations since it; materialising a version reads the base and
// applies the missing updates; occasionally the base is advanced.
//
// The store also maintains a `current` materialisation — the value at this
// node's present visibility frontier — because that is what nearly every
// read wants. Reads at older cuts, and reads under a different security
// mask, re-materialise from base + filtered journal.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "clock/dot.hpp"
#include "crdt/crdt.hpp"
#include "util/binary_codec.hpp"
#include "util/types.hpp"

namespace colony {

class ApplyPool;

/// One journalled update: which transaction produced it and the op payload.
struct JournalEntry {
  Dot dot;
  Bytes payload;
};

/// Full-state transfer format for seeding a cache (group join, migration).
struct ObjectSnapshot {
  ObjectKey key;
  CrdtType type{};
  Bytes state;
  std::vector<Dot> applied;  // dots reflected in `state`

  bool operator==(const ObjectSnapshot&) const = default;
  auto fields() { return std::tie(key, type, state, applied); }
};

class JournalStore {
 public:
  using DotPredicate = std::function<bool(const Dot&)>;

  /// Create the object if absent. Returns false if it exists with a
  /// different type (a schema error surfaced to the caller).
  bool ensure(const ObjectKey& key, CrdtType type);

  [[nodiscard]] bool has(const ObjectKey& key) const;
  [[nodiscard]] std::optional<CrdtType> type_of(const ObjectKey& key) const;

  /// Journal an operation and fold it into `current` unless `masked`.
  /// Masked entries stay in the journal (state vs. visibility separation,
  /// paper section 5.3) and can surface later via rebuild_current.
  /// Operations whose dot is already baked into an imported base version
  /// are dropped entirely (they are reflected in the state already).
  ///
  /// With an apply pool attached the journal append and the fold are handed
  /// to the key's owning worker instead of executing inline; `payload` must
  /// then stay alive until the next flush_applies() (transaction records
  /// are stable for the duration of the enqueueing event, which always ends
  /// with a flush — DESIGN.md section 10).
  void apply(const ObjectKey& key, CrdtType type, const Dot& dot,
             const Bytes& payload, bool masked = false);

  /// Attach a worker pool: subsequent apply() calls are partitioned across
  /// its workers by object key. nullptr detaches (joining any pending
  /// applies first). The pool may be shared with other stores/shards — the
  /// sim scheduler serialises handlers, so only one submitter is active at
  /// a time.
  void set_apply_pool(ApplyPool* pool);
  [[nodiscard]] ApplyPool* apply_pool() const { return pool_; }

  /// Join every handed-off apply. Every read/maintenance API below flushes
  /// defensively (whole-store ops always; per-key ops only when that key
  /// has pending work, so hot paths like the per-transaction ACL read do
  /// not destroy batching), making correctness independent of callers
  /// remembering to flush. Safe and cheap with nothing pending.
  void flush_applies() const;
  [[nodiscard]] bool applies_pending() const { return pending_applies_ != 0; }

  /// The value at this node's visibility frontier (respecting the masks
  /// given to apply/rebuild_current); nullptr if the object is unknown.
  [[nodiscard]] const Crdt* current(const ObjectKey& key) const;

  /// Materialise the value at an arbitrary older cut / mask: base plus the
  /// journal entries `visible` admits. The predicate must admit a causally
  /// closed subset of the journal.
  [[nodiscard]] std::unique_ptr<Crdt> materialize(
      const ObjectKey& key, const DotPredicate& visible) const;

  /// Recompute `current` with a new visibility predicate over the full
  /// journal — used when the security mask set changes (ACL update).
  void rebuild_current(const ObjectKey& key, const DotPredicate& visible);

  /// Bake the journal prefix admitted by `visible` into the base version
  /// and prune those entries (paper: "occasionally, the system advances the
  /// base version"). Entries not admitted remain journalled.
  void advance_base(const ObjectKey& key, const DotPredicate& visible);

  /// Export/import full object state, for cache seeding on join/migration.
  [[nodiscard]] std::optional<ObjectSnapshot> export_snapshot(
      const ObjectKey& key) const;

  /// Export the state at an arbitrary cut: base plus journal entries the
  /// predicate admits (the base must only contain admitted entries — DCs
  /// advance their base with the K-stable predicate to guarantee this).
  [[nodiscard]] std::optional<ObjectSnapshot> export_at(
      const ObjectKey& key, const DotPredicate& visible) const;
  void import_snapshot(const ObjectSnapshot& snap);

  /// Dots journalled for `key` (newest last).
  [[nodiscard]] std::vector<Dot> journalled_dots(const ObjectKey& key) const;

  /// Every dot reflected in the object: base-version dots (in bake order)
  /// followed by journalled dots. Invariant checkers audit this list for
  /// exactly-once application (no dot may appear twice).
  [[nodiscard]] std::vector<Dot> applied_dots(const ObjectKey& key) const;

  [[nodiscard]] std::vector<ObjectKey> keys() const;
  [[nodiscard]] std::size_t journal_length(const ObjectKey& key) const;
  void erase(const ObjectKey& key);

  /// Checkpoint serialization: the full versioned representation of every
  /// object — base snapshot, baked dots in bake order, journal entries,
  /// and the mask-filtered `current` materialisation (which cannot be
  /// recomputed without the historical mask predicates). Deterministic:
  /// objects encode in key order, so identical stores produce identical
  /// bytes. decode() replaces the store's contents; the O(1) baked-dot
  /// set is rebuilt from the baked-dot list.
  void encode(Encoder& enc) const;
  void decode(Decoder& dec);
  void clear();

 private:
  struct ObjectState {
    CrdtType type{};
    std::unique_ptr<Crdt> base;     // checkpoint
    std::vector<Dot> base_dots;     // dots baked into base, in bake order
    std::unordered_set<Dot> base_dot_set;  // same dots, O(1) lookup
    std::vector<JournalEntry> journal;
    std::unique_ptr<Crdt> current;  // base + visible journal entries
  };

  [[nodiscard]] const ObjectState* find(const ObjectKey& key) const;
  ObjectState* find(const ObjectKey& key);

  /// Join pending applies iff `key` is among the touched objects.
  void flush_if_touched(const ObjectKey& key) const;

  /// Objects live in a std::map so ObjectState addresses are stable: a
  /// worker may hold &journal / current.get() across control-thread
  /// ensure() insertions for other keys.
  std::map<ObjectKey, ObjectState> objects_;

  // Deferred-apply bookkeeping (mutable: flushing from const readers is
  // logically const — it only makes already-submitted effects visible).
  ApplyPool* pool_ = nullptr;
  mutable std::uint64_t pending_applies_ = 0;
  mutable std::unordered_set<ObjectKey> pending_keys_;
};

}  // namespace colony
