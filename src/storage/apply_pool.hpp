// Sharded CRDT apply worker pool (DESIGN.md section 10).
//
// Op-based CRDT updates on distinct objects commute by construction, so the
// apply tail of the visibility pipeline — journal append + fold into the
// `current` materialisation — parallelises without locks once each object
// has exactly one writer. The pool partitions object keys over N worker
// threads with the same consistent-hash ring the DC uses for its shard
// servers: every key maps to one worker, interfering (same-key) operations
// serialise on that worker in submission order, and non-interfering
// operations fan out across workers.
//
// Determinism contract: the single control thread (the sim event loop)
// decides *what* to apply and in *which order* per key; workers only decide
// *when* the fold physically executes within the current event. Because a
// per-key stream lands on one worker in FIFO order, the final state is
// byte-identical to the inline apply at any pool size — provided the
// control thread joins the pool (barrier()) before anything reads the
// affected objects and before the enclosing sim event completes.
//
// Handoff is one lock-free SPSC ring per worker: the control thread is the
// only producer, the worker the only consumer. Workers spin briefly (with
// yields, so single-core hosts make progress), then park on a condition
// variable with a 1ms cap so a lost wakeup degrades to latency, never to a
// hang.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "storage/hash_ring.hpp"
#include "storage/journal_store.hpp"
#include "util/types.hpp"

namespace colony {

/// One handed-off apply. Pointers reference structures owned by the
/// submitting store/shard; the submitter guarantees they stay valid until
/// the next barrier() (applies are always joined before the enclosing sim
/// event ends, and object states live in node-stable containers).
struct ApplyTask {
  std::vector<JournalEntry>* journal = nullptr;  // append {dot, *payload}
  Crdt* value = nullptr;                         // fold *payload (unmasked)
  const Bytes* payload = nullptr;
  Dot dot;
};

class ApplyPool {
 public:
  /// Spawns `workers` threads (>= 1) and a hash ring mapping object keys
  /// onto them.
  explicit ApplyPool(std::size_t workers);
  ~ApplyPool();

  ApplyPool(const ApplyPool&) = delete;
  ApplyPool& operator=(const ApplyPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// The worker that owns `key`. All tasks touching one object must be
  /// submitted to its owner — that is the whole single-writer invariant.
  [[nodiscard]] std::uint32_t owner(const ObjectKey& key) const {
    return ring_.owner(key);
  }

  /// Enqueue a task on `worker`'s ring. Single producer: only one thread
  /// (the sim event loop) may submit or barrier at a time. Blocks (yielding)
  /// if the ring is full.
  void submit(std::uint32_t worker, const ApplyTask& task);

  /// Wait until every submitted task has executed. The acquire/release
  /// pairing on each ring's tail makes all worker-side effects visible to
  /// the caller. Cheap when nothing is pending.
  void barrier();

  /// Total tasks ever submitted (tests assert the pool actually ran).
  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }

 private:
  struct Worker;

  static void run(Worker& w);

  HashRing ring_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::uint64_t submitted_ = 0;
};

}  // namespace colony
