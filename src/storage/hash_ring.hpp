// Consistent-hash ring for intra-DC sharding.
//
// Data in a DC is sharded by consistent hashing across server machines
// (paper section 6.3, riak_core in the original). Virtual nodes smooth the
// distribution; adding/removing a shard moves only the neighbouring arcs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace colony {

class HashRing {
 public:
  explicit HashRing(std::size_t vnodes_per_shard = 64)
      : vnodes_per_shard_(vnodes_per_shard) {}

  void add_shard(std::uint32_t shard);
  void remove_shard(std::uint32_t shard);

  /// Shard owning `key`. The ring must be non-empty.
  [[nodiscard]] std::uint32_t owner(const ObjectKey& key) const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] bool empty() const { return ring_.empty(); }

  /// 64-bit FNV-1a, exposed for tests and for the workload generator.
  [[nodiscard]] static std::uint64_t hash(const std::string& s);

 private:
  std::size_t vnodes_per_shard_;
  std::map<std::uint64_t, std::uint32_t> ring_;  // point -> shard
  std::vector<std::uint32_t> shards_;
};

}  // namespace colony
