#include "storage/cache.hpp"

namespace colony {

std::optional<ObjectKey> InterestSet::add(const ObjectKey& key) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return std::nullopt;
  }
  lru_.push_front(key);
  index_[key] = lru_.begin();
  if (capacity_ != 0 && index_.size() > capacity_) {
    ObjectKey victim = lru_.back();
    lru_.pop_back();
    index_.erase(victim);
    return victim;
  }
  return std::nullopt;
}

void InterestSet::touch(const ObjectKey& key) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
  }
}

void InterestSet::remove(const ObjectKey& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
}

std::vector<ObjectKey> InterestSet::keys() const {
  return {lru_.begin(), lru_.end()};
}

}  // namespace colony
