#include "storage/hash_ring.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace colony {

std::uint64_t HashRing::hash(const std::string& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void HashRing::add_shard(std::uint32_t shard) {
  COLONY_ASSERT(std::find(shards_.begin(), shards_.end(), shard) ==
                    shards_.end(),
                "shard already on the ring");
  shards_.push_back(shard);
  for (std::size_t v = 0; v < vnodes_per_shard_; ++v) {
    const std::uint64_t point =
        hash("vnode/" + std::to_string(shard) + "/" + std::to_string(v));
    ring_.emplace(point, shard);
  }
}

void HashRing::remove_shard(std::uint32_t shard) {
  shards_.erase(std::remove(shards_.begin(), shards_.end(), shard),
                shards_.end());
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == shard ? ring_.erase(it) : std::next(it);
  }
}

std::uint32_t HashRing::owner(const ObjectKey& key) const {
  COLONY_ASSERT(!ring_.empty(), "hash ring is empty");
  const std::uint64_t point = hash(key.full());
  const auto it = ring_.lower_bound(point);
  return it == ring_.end() ? ring_.begin()->second : it->second;
}

}  // namespace colony
