#include "storage/journal_store.hpp"

#include <algorithm>

#include "storage/apply_pool.hpp"
#include "util/assert.hpp"
#include "util/codec.hpp"

namespace colony {

void JournalStore::set_apply_pool(ApplyPool* pool) {
  flush_applies();
  pool_ = pool;
}

void JournalStore::flush_applies() const {
  if (pending_applies_ == 0) return;
  pool_->barrier();
  pending_applies_ = 0;
  pending_keys_.clear();
}

void JournalStore::flush_if_touched(const ObjectKey& key) const {
  if (pending_applies_ != 0 && pending_keys_.contains(key)) flush_applies();
}

bool JournalStore::ensure(const ObjectKey& key, CrdtType type) {
  auto it = objects_.find(key);
  if (it != objects_.end()) return it->second.type == type;
  ObjectState state;
  state.type = type;
  state.base = make_crdt(type);
  state.current = make_crdt(type);
  objects_.emplace(key, std::move(state));
  return true;
}

bool JournalStore::has(const ObjectKey& key) const {
  return objects_.contains(key);
}

std::optional<CrdtType> JournalStore::type_of(const ObjectKey& key) const {
  const ObjectState* s = find(key);
  if (s == nullptr) return std::nullopt;
  return s->type;
}

const JournalStore::ObjectState* JournalStore::find(
    const ObjectKey& key) const {
  const auto it = objects_.find(key);
  return it == objects_.end() ? nullptr : &it->second;
}

JournalStore::ObjectState* JournalStore::find(const ObjectKey& key) {
  const auto it = objects_.find(key);
  return it == objects_.end() ? nullptr : &it->second;
}

void JournalStore::apply(const ObjectKey& key, CrdtType type, const Dot& dot,
                         const Bytes& payload, bool masked) {
  const bool type_ok = ensure(key, type);
  COLONY_ASSERT(type_ok, "object updated with mismatched CRDT type");
  ObjectState* s = find(key);
  if (s->base_dot_set.contains(dot)) return;  // already reflected in base
  if (pool_ == nullptr) {
    s->journal.push_back(JournalEntry{dot, payload});
    if (!masked) s->current->apply(payload);
    return;
  }
  // Hand the append + fold to the key's owning worker. The gate decisions
  // above (existence, type, baked-dot dedup) stay on the control thread;
  // per-key submission order fixes the journal and fold order, so the
  // result is byte-identical to the inline path at any pool size.
  ApplyTask task;
  task.journal = &s->journal;
  task.value = masked ? nullptr : s->current.get();
  task.payload = &payload;
  task.dot = dot;
  pool_->submit(pool_->owner(key), task);
  ++pending_applies_;
  pending_keys_.insert(key);
}

const Crdt* JournalStore::current(const ObjectKey& key) const {
  flush_if_touched(key);
  const ObjectState* s = find(key);
  return s == nullptr ? nullptr : s->current.get();
}

std::unique_ptr<Crdt> JournalStore::materialize(
    const ObjectKey& key, const DotPredicate& visible) const {
  flush_if_touched(key);
  const ObjectState* s = find(key);
  if (s == nullptr) return nullptr;
  auto value = s->base->clone();
  for (const JournalEntry& entry : s->journal) {
    if (visible(entry.dot)) value->apply(entry.payload);
  }
  return value;
}

void JournalStore::rebuild_current(const ObjectKey& key,
                                   const DotPredicate& visible) {
  flush_if_touched(key);
  ObjectState* s = find(key);
  if (s == nullptr) return;
  s->current = materialize(key, visible);
}

void JournalStore::advance_base(const ObjectKey& key,
                                const DotPredicate& visible) {
  flush_if_touched(key);
  ObjectState* s = find(key);
  if (s == nullptr) return;
  std::vector<JournalEntry> kept;
  for (JournalEntry& entry : s->journal) {
    if (visible(entry.dot)) {
      s->base->apply(entry.payload);
      s->base_dots.push_back(entry.dot);
      s->base_dot_set.insert(entry.dot);
    } else {
      kept.push_back(std::move(entry));
    }
  }
  s->journal = std::move(kept);
}

std::optional<ObjectSnapshot> JournalStore::export_snapshot(
    const ObjectKey& key) const {
  flush_if_touched(key);
  const ObjectState* s = find(key);
  if (s == nullptr) return std::nullopt;
  ObjectSnapshot snap;
  snap.key = key;
  snap.type = s->type;
  snap.state = s->current->snapshot();
  snap.applied = s->base_dots;
  for (const JournalEntry& entry : s->journal) {
    snap.applied.push_back(entry.dot);
  }
  return snap;
}

std::optional<ObjectSnapshot> JournalStore::export_at(
    const ObjectKey& key, const DotPredicate& visible) const {
  flush_if_touched(key);
  const ObjectState* s = find(key);
  if (s == nullptr) return std::nullopt;
  ObjectSnapshot snap;
  snap.key = key;
  snap.type = s->type;
  snap.state = materialize(key, visible)->snapshot();
  snap.applied = s->base_dots;
  for (const JournalEntry& entry : s->journal) {
    if (visible(entry.dot)) snap.applied.push_back(entry.dot);
  }
  return snap;
}

void JournalStore::import_snapshot(const ObjectSnapshot& snap) {
  // Replacing the object destroys the state a pending worker task may
  // reference; join first.
  flush_if_touched(snap.key);
  ObjectState state;
  state.type = snap.type;
  state.base = make_crdt(snap.type);
  state.base->restore(snap.state);
  state.base_dots = snap.applied;
  state.base_dot_set.insert(snap.applied.begin(), snap.applied.end());
  state.current = state.base->clone();
  objects_.insert_or_assign(snap.key, std::move(state));
}

std::vector<Dot> JournalStore::journalled_dots(const ObjectKey& key) const {
  flush_if_touched(key);
  const ObjectState* s = find(key);
  std::vector<Dot> out;
  if (s == nullptr) return out;
  out.reserve(s->journal.size());
  for (const JournalEntry& entry : s->journal) out.push_back(entry.dot);
  return out;
}

std::vector<Dot> JournalStore::applied_dots(const ObjectKey& key) const {
  flush_if_touched(key);
  const ObjectState* s = find(key);
  std::vector<Dot> out;
  if (s == nullptr) return out;
  out.reserve(s->base_dots.size() + s->journal.size());
  out.insert(out.end(), s->base_dots.begin(), s->base_dots.end());
  for (const JournalEntry& entry : s->journal) out.push_back(entry.dot);
  return out;
}

std::vector<ObjectKey> JournalStore::keys() const {
  std::vector<ObjectKey> out;
  out.reserve(objects_.size());
  for (const auto& [key, _] : objects_) out.push_back(key);
  return out;
}

std::size_t JournalStore::journal_length(const ObjectKey& key) const {
  flush_if_touched(key);
  const ObjectState* s = find(key);
  return s == nullptr ? 0 : s->journal.size();
}

void JournalStore::erase(const ObjectKey& key) {
  flush_if_touched(key);
  objects_.erase(key);
}

void JournalStore::clear() {
  flush_applies();
  objects_.clear();
}

void JournalStore::encode(Encoder& enc) const {
  flush_applies();
  COLONY_ASSERT(objects_.size() <= UINT32_MAX, "store exceeds u32 prefix");
  enc.u32(static_cast<std::uint32_t>(objects_.size()));
  for (const auto& [key, s] : objects_) {  // std::map: key order
    codec::write(enc, key);
    codec::write(enc, s.type);
    enc.bytes(s.base->snapshot());
    codec::write(enc, s.base_dots);
    COLONY_ASSERT(s.journal.size() <= UINT32_MAX, "journal exceeds u32");
    enc.u32(static_cast<std::uint32_t>(s.journal.size()));
    for (const JournalEntry& entry : s.journal) {
      codec::write(enc, entry.dot);
      enc.bytes(entry.payload);
    }
    enc.bytes(s.current->snapshot());
  }
}

void JournalStore::decode(Decoder& dec) {
  flush_applies();
  objects_.clear();
  const std::uint32_t count = dec.u32();
  for (std::uint32_t i = 0; i < count && dec.ok(); ++i) {
    ObjectKey key = codec::read<ObjectKey>(dec);
    ObjectState s;
    s.type = codec::read<CrdtType>(dec);
    const Bytes base = dec.bytes();
    s.base_dots = codec::read<std::vector<Dot>>(dec);
    s.base_dot_set.insert(s.base_dots.begin(), s.base_dots.end());
    const std::uint32_t entries = dec.u32();
    if (entries > dec.remaining()) {
      dec.fail();
      return;
    }
    s.journal.reserve(entries);
    for (std::uint32_t j = 0; j < entries && dec.ok(); ++j) {
      JournalEntry entry;
      entry.dot = codec::read<Dot>(dec);
      entry.payload = dec.bytes();
      s.journal.push_back(std::move(entry));
    }
    const Bytes current = dec.bytes();
    if (!dec.ok()) return;
    s.base = make_crdt(s.type);
    s.base->restore(base);
    s.current = make_crdt(s.type);
    s.current->restore(current);
    objects_.emplace(std::move(key), std::move(s));
  }
}

}  // namespace colony
