#include "storage/wal.hpp"

#include <cstring>
#include <set>

namespace colony::storage {

namespace {

/// Append one `[type | len | payload | crc]` frame to `stream`.
void put_frame(Bytes& stream, std::uint32_t type, ByteView payload) {
  Encoder enc;
  enc.reserve(Wal::kHeaderBytes + payload.size() + Wal::kTrailerBytes);
  enc.u32(type);
  enc.u32(static_cast<std::uint32_t>(payload.size()));
  enc.raw(payload);
  const std::uint32_t crc = crc32(enc.data().data(), enc.size());
  enc.u32(crc);
  const Bytes frame = enc.take();
  stream.insert(stream.end(), frame.begin(), frame.end());
}

std::uint32_t read_u32(const Bytes& b, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, b.data() + off, sizeof(v));
  return v;
}

struct ScannedFrame {
  std::uint64_t offset = 0;  // where the frame starts in the stream
  std::uint32_t type = 0;
  ByteView payload;
};

/// Walk `stream` from offset 0 collecting intact frames; stops at the
/// first frame that is truncated, oversized, or fails its CRC. Returns
/// the length of the intact prefix.
std::uint64_t scan(const Bytes& stream, std::vector<ScannedFrame>& out) {
  std::size_t off = 0;
  while (stream.size() - off >= Wal::kHeaderBytes + Wal::kTrailerBytes) {
    const std::uint32_t type = read_u32(stream, off);
    const std::uint64_t len = read_u32(stream, off + 4);
    const std::uint64_t body = Wal::kHeaderBytes + len;
    if (body + Wal::kTrailerBytes > stream.size() - off) break;  // torn tail
    const std::uint32_t want = read_u32(stream, off + body);
    const std::uint32_t got = crc32(stream.data() + off, body);
    if (want != got) break;  // corrupt frame: scan ends here
    out.push_back(ScannedFrame{
        off, type,
        ByteView(stream.data() + off + Wal::kHeaderBytes, len)});
    off += body + Wal::kTrailerBytes;
  }
  return off;
}

}  // namespace

void Wal::append(std::uint32_t type, ByteView payload) {
  put_frame(log_, type, payload);
  ++records_since_checkpoint_;
  ++record_count_;
}

void Wal::write_checkpoint(ByteView snapshot) {
  Encoder body;
  body.reserve(sizeof(std::uint64_t) + snapshot.size());
  body.u64(static_cast<std::uint64_t>(log_.size()));
  body.raw(snapshot);
  put_frame(cp_, kCheckpointMagic, body.data());
  records_since_checkpoint_ = 0;
  ++checkpoint_count_;
}

WalRecovery Wal::recover() const {
  WalRecovery out;

  std::vector<ScannedFrame> records;
  out.valid_bytes = scan(log_, records);
  out.torn = out.valid_bytes != log_.size();

  // Valid anchor offsets: the start of every intact record, plus the end
  // of the intact prefix (a checkpoint taken after the last record).
  std::set<std::uint64_t> boundaries;
  boundaries.insert(0);
  for (const ScannedFrame& r : records) boundaries.insert(r.offset);
  boundaries.insert(out.valid_bytes);

  std::vector<ScannedFrame> checkpoints;
  const std::uint64_t cp_valid = scan(cp_, checkpoints);
  if (cp_valid != cp_.size()) out.torn = true;

  // Newest checkpoint that is anchored inside the intact record prefix.
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    if (it->type != kCheckpointMagic) continue;  // foreign frame: skip
    if (it->payload.size() < sizeof(std::uint64_t)) continue;
    std::uint64_t anchor;
    std::memcpy(&anchor, it->payload.data(), sizeof(anchor));
    if (anchor > out.valid_bytes || !boundaries.contains(anchor)) continue;
    out.checkpoint = Bytes(it->payload.begin() + sizeof(std::uint64_t),
                           it->payload.end());
    out.checkpoint_offset = anchor;
    break;
  }

  for (const ScannedFrame& r : records) {
    if (r.offset < out.checkpoint_offset) continue;  // folded into snapshot
    out.tail.push_back(
        WalRecord{r.type, Bytes(r.payload.begin(), r.payload.end())});
  }
  return out;
}

void Wal::truncate_to(std::uint64_t valid_bytes) {
  if (valid_bytes < log_.size()) log_.resize(valid_bytes);
  // Drop any torn checkpoint tail as well: rescan and keep the prefix.
  std::vector<ScannedFrame> checkpoints;
  const std::uint64_t cp_valid = scan(cp_, checkpoints);
  if (cp_valid < cp_.size()) cp_.resize(cp_valid);
}

void Wal::clear() {
  log_.clear();
  cp_.clear();
  records_since_checkpoint_ = 0;
  record_count_ = 0;
  checkpoint_count_ = 0;
}

}  // namespace colony::storage
