#include "storage/wal.hpp"

#include <cstring>
#include <set>

namespace colony::storage {

namespace {

/// Append one `[type | len | payload | crc]` frame to `stream`.
void put_frame(Bytes& stream, std::uint32_t type, ByteView payload) {
  Encoder enc;
  enc.reserve(Wal::kHeaderBytes + payload.size() + Wal::kTrailerBytes);
  enc.u32(type);
  enc.u32(static_cast<std::uint32_t>(payload.size()));
  enc.raw(payload);
  const std::uint32_t crc = crc32(enc.data().data(), enc.size());
  enc.u32(crc);
  const Bytes frame = enc.take();
  stream.insert(stream.end(), frame.begin(), frame.end());
}

std::uint32_t read_u32(const Bytes& b, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, b.data() + off, sizeof(v));
  return v;
}

struct ScannedFrame {
  std::uint64_t offset = 0;  // where the frame starts in the stream
  std::uint32_t type = 0;
  ByteView payload;
};

/// Walk `stream` from offset 0 collecting intact frames; stops at the
/// first frame that is truncated, oversized, or fails its CRC. Returns
/// the length of the intact prefix.
std::uint64_t scan(const Bytes& stream, std::vector<ScannedFrame>& out) {
  std::size_t off = 0;
  while (stream.size() - off >= Wal::kHeaderBytes + Wal::kTrailerBytes) {
    const std::uint32_t type = read_u32(stream, off);
    const std::uint64_t len = read_u32(stream, off + 4);
    const std::uint64_t body = Wal::kHeaderBytes + len;
    if (body + Wal::kTrailerBytes > stream.size() - off) break;  // torn tail
    const std::uint32_t want = read_u32(stream, off + body);
    const std::uint32_t got = crc32(stream.data() + off, body);
    if (want != got) break;  // corrupt frame: scan ends here
    out.push_back(ScannedFrame{
        off, type,
        ByteView(stream.data() + off + Wal::kHeaderBytes, len)});
    off += body + Wal::kTrailerBytes;
  }
  return off;
}

}  // namespace

void Wal::append(std::uint32_t type, ByteView payload) {
  put_frame(log_, type, payload);
  ++records_since_checkpoint_;
  ++record_count_;
}

void Wal::write_checkpoint(ByteView snapshot) {
  Encoder body;
  body.reserve(sizeof(std::uint64_t) + snapshot.size());
  body.u64(log_base_ + log_.size());  // logical anchor
  body.raw(snapshot);
  put_frame(cp_, kCheckpointMagic, body.data());
  records_since_checkpoint_ = 0;
  ++checkpoint_count_;
}

WalRecovery Wal::recover() const {
  WalRecovery out;

  std::vector<ScannedFrame> records;
  const std::uint64_t phys_valid = scan(log_, records);
  out.valid_bytes = log_base_ + phys_valid;
  out.torn = phys_valid != log_.size();

  // Valid anchor offsets (logical): the start of every intact record, plus
  // the end of the intact prefix (a checkpoint taken after the last
  // record). Anchors below log_base_ point into a reclaimed prefix whose
  // records no longer exist, so such checkpoints cannot seed a replay.
  std::set<std::uint64_t> boundaries;
  boundaries.insert(log_base_);
  for (const ScannedFrame& r : records) {
    boundaries.insert(log_base_ + r.offset);
  }
  boundaries.insert(out.valid_bytes);

  std::vector<ScannedFrame> checkpoints;
  const std::uint64_t cp_valid = scan(cp_, checkpoints);
  if (cp_valid != cp_.size()) out.torn = true;

  // Newest checkpoint that is anchored inside the intact record prefix.
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    if (it->type != kCheckpointMagic) continue;  // foreign frame: skip
    if (it->payload.size() < sizeof(std::uint64_t)) continue;
    std::uint64_t anchor;
    std::memcpy(&anchor, it->payload.data(), sizeof(anchor));
    if (anchor < log_base_ || anchor > out.valid_bytes ||
        !boundaries.contains(anchor)) {
      continue;
    }
    out.checkpoint = Bytes(it->payload.begin() + sizeof(std::uint64_t),
                           it->payload.end());
    out.checkpoint_offset = anchor;
    break;
  }

  for (const ScannedFrame& r : records) {
    if (log_base_ + r.offset < out.checkpoint_offset) {
      continue;  // folded into snapshot
    }
    out.tail.push_back(
        WalRecord{r.type, Bytes(r.payload.begin(), r.payload.end())});
  }
  return out;
}

void Wal::truncate_to(std::uint64_t valid_bytes) {
  if (valid_bytes >= log_base_ && valid_bytes - log_base_ < log_.size()) {
    log_.resize(valid_bytes - log_base_);
  }
  // Drop any torn checkpoint tail as well: rescan and keep the prefix.
  std::vector<ScannedFrame> checkpoints;
  const std::uint64_t cp_valid = scan(cp_, checkpoints);
  if (cp_valid < cp_.size()) cp_.resize(cp_valid);
}

std::uint64_t Wal::truncate_to_checkpoint() {
  // Choose the newest usable checkpoint with exactly recover()'s rules, so
  // truncation never drops a byte recovery could still need.
  std::vector<ScannedFrame> records;
  const std::uint64_t phys_valid = scan(log_, records);
  const std::uint64_t valid_bytes = log_base_ + phys_valid;
  std::set<std::uint64_t> boundaries;
  boundaries.insert(log_base_);
  for (const ScannedFrame& r : records) {
    boundaries.insert(log_base_ + r.offset);
  }
  boundaries.insert(valid_bytes);

  std::vector<ScannedFrame> checkpoints;
  scan(cp_, checkpoints);
  const auto anchor_of =
      [&](const ScannedFrame& f) -> std::optional<std::uint64_t> {
    if (f.type != kCheckpointMagic) return std::nullopt;
    if (f.payload.size() < sizeof(std::uint64_t)) return std::nullopt;
    std::uint64_t anchor;
    std::memcpy(&anchor, f.payload.data(), sizeof(anchor));
    if (anchor < log_base_ || anchor > valid_bytes ||
        !boundaries.contains(anchor)) {
      return std::nullopt;
    }
    return anchor;
  };
  std::optional<std::uint64_t> chosen;
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    if (const auto anchor = anchor_of(*it); anchor.has_value()) {
      chosen = anchor;
      break;
    }
  }
  if (!chosen.has_value() || *chosen <= log_base_) return 0;

  // Step 1: compact the checkpoint stream, keeping every usable frame
  // anchored at or above the chosen checkpoint (in practice: the chosen
  // one) and shedding superseded, torn, and over-eager frames. Done first
  // so that a crash between the steps still recovers: the survivor plus
  // the still-complete log at/after its anchor is a valid disk.
  Bytes kept;
  for (const ScannedFrame& f : checkpoints) {
    const auto anchor = anchor_of(f);
    if (!anchor.has_value() || *anchor < *chosen) continue;
    const std::size_t frame_bytes =
        kHeaderBytes + f.payload.size() + kTrailerBytes;
    kept.insert(kept.end(), cp_.begin() + static_cast<std::ptrdiff_t>(f.offset),
                cp_.begin() + static_cast<std::ptrdiff_t>(f.offset +
                                                          frame_bytes));
  }
  cp_ = std::move(kept);

  // Step 2: reclaim the record-log prefix the checkpoint made redundant.
  const std::uint64_t drop = *chosen - log_base_;
  log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(drop));
  log_base_ = *chosen;
  truncated_bytes_ += drop;
  return drop;
}

void Wal::clear() {
  log_.clear();
  cp_.clear();
  log_base_ = 0;
  records_since_checkpoint_ = 0;
  record_count_ = 0;
  checkpoint_count_ = 0;
  truncated_bytes_ = 0;
}

}  // namespace colony::storage
