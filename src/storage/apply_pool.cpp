#include "storage/apply_pool.hpp"

#include <chrono>

#include "util/assert.hpp"

namespace colony {

/// Per-worker SPSC ring + parking state. head is written only by the
/// producer, tail only by the consumer; the release store on each side is
/// paired with an acquire load on the other, which carries both the slot
/// contents (producer -> worker) and the apply effects (worker -> producer
/// at barrier time).
struct ApplyPool::Worker {
  static constexpr std::uint64_t kRingSize = 4096;  // power of two

  std::vector<ApplyTask> ring{kRingSize};
  std::atomic<std::uint64_t> head{0};  // next free slot (producer)
  std::atomic<std::uint64_t> tail{0};  // next task to run (consumer)
  std::atomic<bool> asleep{false};
  std::atomic<bool> stop{false};
  std::mutex mutex;
  std::condition_variable cv;
  std::thread thread;
};

ApplyPool::ApplyPool(std::size_t workers) {
  COLONY_ASSERT(workers >= 1, "pool needs at least one worker");
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    ring_.add_shard(static_cast<std::uint32_t>(w));
    workers_.push_back(std::make_unique<Worker>());
    Worker& worker = *workers_.back();
    worker.thread = std::thread([&worker] { run(worker); });
  }
}

ApplyPool::~ApplyPool() {
  for (auto& w : workers_) {
    w->stop.store(true, std::memory_order_seq_cst);
    std::lock_guard<std::mutex> lock(w->mutex);
    w->cv.notify_one();
  }
  for (auto& w : workers_) w->thread.join();
}

void ApplyPool::submit(std::uint32_t worker, const ApplyTask& task) {
  Worker& w = *workers_[worker];
  const std::uint64_t h = w.head.load(std::memory_order_relaxed);
  // Ring full: the worker is behind by a whole ring; yield until it drains
  // a slot (the acquire load pairs with its release tail store, so the slot
  // is genuinely reusable).
  while (h - w.tail.load(std::memory_order_acquire) >= Worker::kRingSize) {
    std::this_thread::yield();
  }
  w.ring[h % Worker::kRingSize] = task;
  w.head.store(h + 1, std::memory_order_seq_cst);
  ++submitted_;
  // Dekker-style handshake with the consumer's park sequence: it stores
  // `asleep` then re-reads `head`; we store `head` then read `asleep`.
  // With both stores seq_cst at least one side observes the other, and the
  // worker's 1ms wait cap bounds the damage if the OS still loses a race.
  if (w.asleep.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(w.mutex);
    w.cv.notify_one();
  }
}

void ApplyPool::barrier() {
  for (auto& wp : workers_) {
    Worker& w = *wp;
    const std::uint64_t target = w.head.load(std::memory_order_relaxed);
    int spins = 0;
    while (w.tail.load(std::memory_order_acquire) < target) {
      // Yield-first: on a single-core host the worker cannot run until the
      // control thread gives up the CPU. Past a few hundred yields, nudge
      // the condvar in case the worker parked before seeing the last head
      // store, then back off properly.
      if (++spins > 512) {
        {
          std::lock_guard<std::mutex> lock(w.mutex);
          w.cv.notify_one();
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      } else {
        std::this_thread::yield();
      }
    }
  }
}

void ApplyPool::run(Worker& w) {
  for (;;) {
    const std::uint64_t t = w.tail.load(std::memory_order_relaxed);
    if (t != w.head.load(std::memory_order_acquire)) {
      const ApplyTask& task = w.ring[t % Worker::kRingSize];
      if (task.journal != nullptr) {
        task.journal->push_back(JournalEntry{task.dot, *task.payload});
      }
      if (task.value != nullptr) task.value->apply(*task.payload);
      w.tail.store(t + 1, std::memory_order_release);
      continue;
    }
    if (w.stop.load(std::memory_order_acquire)) return;
    // Empty: spin briefly (yielding, so a shared core makes progress), then
    // park. The re-check between the `asleep` store and the wait closes the
    // sleep/submit race — see submit().
    bool more = false;
    for (int i = 0; i < 64; ++i) {
      if (t != w.head.load(std::memory_order_acquire)) {
        more = true;
        break;
      }
      std::this_thread::yield();
    }
    if (more) continue;
    std::unique_lock<std::mutex> lock(w.mutex);
    w.asleep.store(true, std::memory_order_seq_cst);
    if (t == w.head.load(std::memory_order_seq_cst) &&
        !w.stop.load(std::memory_order_acquire)) {
      w.cv.wait_for(lock, std::chrono::milliseconds(1));
    }
    w.asleep.store(false, std::memory_order_seq_cst);
  }
}

}  // namespace colony
