#include "colony/cluster.hpp"

#include "util/assert.hpp"

namespace colony {

namespace {
// Node-id layout: DCs at 1..N, their shards at 100*dc + 101.., everything
// else allocated from 10'000 upwards.
constexpr NodeId kDcBase = 1;
constexpr NodeId kShardBase = 100;
}  // namespace

NodeId Cluster::dc_node_id(DcId id) const { return kDcBase + id; }

Cluster::Cluster(ClusterConfig config)
    : config_(config), net_(sched_, config.seed) {
  COLONY_ASSERT(config_.num_dcs >= 1 && config_.num_dcs <= 16,
                "supported core sizes: 1..16 DCs");
  COLONY_ASSERT(config_.k_stability >= 1 &&
                    config_.k_stability <= config_.num_dcs,
                "K out of range");

  // Apply pools first (shards and DCs hold pointers into them), then shard
  // servers (DC constructors expect them linked).
  if (config_.apply_workers_per_dc >= 2) {
    for (DcId d = 0; d < config_.num_dcs; ++d) {
      pools_[d] = std::make_unique<ApplyPool>(config_.apply_workers_per_dc);
    }
  }
  std::vector<std::vector<NodeId>> shard_ids(config_.num_dcs);
  for (DcId d = 0; d < config_.num_dcs; ++d) {
    for (std::size_t s = 0; s < config_.shards_per_dc; ++s) {
      const NodeId sid = kShardBase * (d + 1) + 1 + s;
      shards_.push_back(
          std::make_unique<ShardServer>(net_, sid, apply_pool(d)));
      shard_ids[d].push_back(sid);
      net_.connect(dc_node_id(d), sid, config_.intra_dc);
    }
  }

  for (DcId d = 0; d < config_.num_dcs; ++d) {
    std::vector<NodeId> peers;
    for (DcId other = 0; other < config_.num_dcs; ++other) {
      if (other != d) peers.push_back(dc_node_id(other));
    }
    DcConfig dc_config;
    dc_config.dc_id = d;
    dc_config.num_dcs = config_.num_dcs;
    dc_config.k_stability = config_.k_stability;
    dc_config.gossip_interval = config_.dc_gossip_interval;
    dc_config.rpc_service_time = config_.dc_rpc_service_time;
    dc_config.push_service_time = config_.dc_push_service_time;
    auto& disk = disks_[dc_node_id(d)];
    disk = std::make_unique<storage::Wal>();
    dc_config.disk = disk.get();
    dc_config.apply_pool = apply_pool(d);
    dcs_.push_back(std::make_unique<DcNode>(net_, dc_node_id(d), dc_config,
                                            std::move(peers), shard_ids[d]));
  }

  // Full DC mesh.
  for (DcId a = 0; a < config_.num_dcs; ++a) {
    for (DcId b = a + 1; b < config_.num_dcs; ++b) {
      net_.connect(dc_node_id(a), dc_node_id(b), config_.inter_dc);
    }
  }
}

EdgeNode& Cluster::add_edge(ClientMode mode, DcId dc, UserId user,
                            std::size_t cache_capacity) {
  const NodeId id = next_node_id_++;
  EdgeConfig cfg;
  cfg.mode = mode;
  cfg.dc = dc_node_id(dc);
  cfg.user = user;
  cfg.num_dcs = config_.num_dcs;
  cfg.cache_capacity = cache_capacity;
  auto& disk = disks_[id];
  disk = std::make_unique<storage::Wal>();
  cfg.disk = disk.get();
  edges_.push_back(std::make_unique<EdgeNode>(net_, id, cfg));
  for (DcId d = 0; d < config_.num_dcs; ++d) {
    net_.connect(id, dc_node_id(d), config_.edge_uplink);
  }
  return *edges_.back();
}

PeerGroupParent& Cluster::add_group_parent(DcId dc) {
  const NodeId id = next_node_id_++;
  GroupParentConfig cfg;
  cfg.dc = dc_node_id(dc);
  cfg.num_dcs = config_.num_dcs;
  parents_.push_back(std::make_unique<PeerGroupParent>(net_, id, cfg));
  for (DcId d = 0; d < config_.num_dcs; ++d) {
    net_.connect(id, dc_node_id(d), config_.pop_uplink);
  }
  return *parents_.back();
}

void Cluster::wire_peer_links(const std::vector<NodeId>& nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (!net_.link_exists(nodes[i], nodes[j])) {
        net_.connect(nodes[i], nodes[j], config_.peer_link);
      }
    }
  }
}

void Cluster::set_uplink(NodeId node, DcId dc, bool up) {
  net_.set_link_up(node, dc_node_id(dc), up);
}

void Cluster::set_peer_links(NodeId node, const std::vector<NodeId>& peers,
                             bool up) {
  for (const NodeId peer : peers) {
    if (peer != node) net_.set_link_up(node, peer, up);
  }
}

void Cluster::crash_node(NodeId node) {
  if (disks_.find(node) == disks_.end()) return;  // diskless: plain outage
  for (auto& dc : dcs_) {
    if (dc->id() == node) {
      if (!dc->crashed()) dc->crash();
      return;
    }
  }
  for (auto& edge : edges_) {
    if (edge->id() == node) {
      if (!edge->crashed()) edge->crash();
      return;
    }
  }
}

void Cluster::restart_node(NodeId node) {
  for (auto& dc : dcs_) {
    if (dc->id() == node) {
      if (dc->crashed()) dc->recover();
      return;
    }
  }
  for (auto& edge : edges_) {
    if (edge->id() == node) {
      if (edge->crashed()) edge->recover();
      return;
    }
  }
}

std::vector<NodeId> Cluster::dc_node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(config_.num_dcs);
  for (DcId d = 0; d < config_.num_dcs; ++d) ids.push_back(dc_node_id(d));
  return ids;
}

std::vector<NodeId> Cluster::edge_node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(edges_.size());
  for (const auto& e : edges_) ids.push_back(e->id());
  return ids;
}

bool Cluster::idle() const {
  const VersionVector& reference = dcs_.front()->state_vector();
  for (const auto& dc : dcs_) {
    if (!(dc->state_vector() == reference)) return false;
    if (dc->engine().pending_count() != 0) return false;
  }
  for (const auto& edge : edges_) {
    if (edge->unacked_count() != 0) return false;
    if (edge->engine().pending_count() != 0) return false;
  }
  return true;
}

bool Cluster::quiesce(SimTime max_wait, SimTime poll) {
  const SimTime deadline = sched_.now() + max_wait;
  bool was_idle = false;
  while (sched_.now() < deadline) {
    run_for(poll);
    if (idle()) {
      // Idle twice in a row: anything in flight at the first poll (a last
      // session push, a commit acknowledgement) has landed by the second.
      if (was_idle) return true;
      was_idle = true;
    } else {
      was_idle = false;
    }
  }
  return false;
}

}  // namespace colony
