// Session: the typed programming interface of Figure 3, over an EdgeNode.
//
// A session wraps one edge client. Transactions are interactive: reads are
// asynchronous (cache hits call back synchronously; misses fetch from the
// peer group or the DC), updates are buffered and committed atomically.
// Read-modify operations (set remove, sequence append) prepare against the
// node's cached state; read the object first if it may not be cached.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "edge/edge_node.hpp"
#include "security/acl.hpp"

namespace colony {

class Session {
 public:
  explicit Session(EdgeNode& node) : node_(node) {}

  using Txn = EdgeNode::Txn;
  using ReadSourceCb = std::function<void(ReadSource)>;

  Txn begin() { return node_.begin(); }
  Result<Dot> commit(Txn&& txn) { return node_.commit(std::move(txn)); }
  void commit_ordered(Txn&& txn, EdgeNode::CommitCb cb) {
    node_.commit_ordered(std::move(txn), std::move(cb));
  }

  // --- typed reads -----------------------------------------------------------

  void read_counter(Txn& txn, const ObjectKey& key,
                    std::function<void(Result<std::int64_t>, ReadSource)> cb);
  void read_register(Txn& txn, const ObjectKey& key,
                     std::function<void(Result<std::string>, ReadSource)> cb);
  void read_set(Txn& txn, const ObjectKey& key,
                std::function<void(Result<std::vector<std::string>>,
                                   ReadSource)> cb);
  void read_sequence(Txn& txn, const ObjectKey& key,
                     std::function<void(Result<std::vector<std::string>>,
                                        ReadSource)> cb);
  /// Generic escape hatch: a private copy of any object.
  void read_object(Txn& txn, const ObjectKey& key, CrdtType type,
                   EdgeNode::ReadCb cb) {
    node_.read(txn, key, type, std::move(cb));
  }

  /// Versioned read (section 4.1): the cached object as of an older cut.
  [[nodiscard]] std::unique_ptr<Crdt> read_version(
      const ObjectKey& key, const VersionVector& cut) const {
    return node_.read_at(key, cut);
  }

  /// Reactive subscription (section 6.1): fire on visible updates to key.
  std::uint64_t watch(const ObjectKey& key, EdgeNode::WatchCb cb) {
    return node_.watch(key, std::move(cb));
  }
  void unwatch(std::uint64_t handle) { node_.unwatch(handle); }

  /// Run a resource-hungry transaction in the core cloud (section 3.9).
  void migrate_transaction(std::vector<ObjectKey> reads,
                           std::vector<OpRecord> updates,
                           EdgeNode::CloudCb cb) {
    node_.migrate_transaction(std::move(reads), std::move(updates),
                              std::move(cb));
  }

  // --- typed updates (buffered into the transaction) -------------------------

  void increment(Txn& txn, const ObjectKey& key, std::int64_t delta = 1);
  void assign(Txn& txn, const ObjectKey& key, const std::string& value);
  void add_to_set(Txn& txn, const ObjectKey& key, const std::string& element);
  /// Observed-remove against the node's cached tags.
  void remove_from_set(Txn& txn, const ObjectKey& key,
                       const std::string& element);
  /// Append to a sequence (after the cached last element).
  void append(Txn& txn, const ObjectKey& key, const std::string& value);
  /// Nested gmap updates: map.field := register / set.
  void map_assign(Txn& txn, const ObjectKey& map_key, const std::string& field,
                  const std::string& value);
  void map_add_to_set(Txn& txn, const ObjectKey& map_key,
                      const std::string& field, const std::string& element);

  // --- end-to-end sealed objects (section 2.4) -------------------------------

  /// Buffer an update to an end-to-end encrypted object: the cloud will
  /// replicate ciphertext it cannot read. Requires a session key for the
  /// bucket (open_session). `inner_type`/`inner` describe the plaintext
  /// CRDT operation. Returns false if no key is held.
  bool sealed_update(Txn& txn, const ObjectKey& key, CrdtType inner_type,
                     const Bytes& inner);

  /// Decrypt the cached sealed object into the real CRDT; nullopt if the
  /// object is not cached, the key is missing/wrong, or entries were
  /// tampered with.
  [[nodiscard]] std::optional<std::unique_ptr<Crdt>> sealed_read(
      const ObjectKey& key, CrdtType inner_type) const;

  void open_session(std::vector<std::string> buckets, EdgeNode::DoneCb done) {
    node_.open_session(std::move(buckets), std::move(done));
  }

  // --- access control ---------------------------------------------------------

  void grant(Txn& txn, const security::AclTuple& tuple);
  void revoke(Txn& txn, const security::AclTuple& tuple);
  void set_object_parent(Txn& txn, const std::string& object,
                         const std::string& parent);
  void set_user_parent(Txn& txn, UserId user, UserId parent);

  // --- session-level operations ------------------------------------------------

  void subscribe(std::vector<ObjectKey> keys, EdgeNode::DoneCb done) {
    node_.subscribe(std::move(keys), std::move(done));
  }
  void join_group(NodeId parent, EdgeNode::DoneCb done) {
    node_.join_group(parent, std::move(done));
  }
  void leave_group(EdgeNode::DoneCb done) {
    node_.leave_group(std::move(done));
  }

  EdgeNode& node() { return node_; }
  [[nodiscard]] const EdgeNode& node() const { return node_; }

 private:
  EdgeNode& node_;
};

}  // namespace colony
