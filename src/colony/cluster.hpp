// Cluster: the topology builder and owner of a simulated Colony deployment.
//
// Mirrors Figure 1: a small core of DCs in a full mesh (each with its shard
// servers), border nodes (peer-group parents on PoPs), and far-edge client
// nodes hanging off DCs or groups. All actors, links, and the scheduler are
// owned here; experiments drive the scheduler and inspect the nodes.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "dc/dc_node.hpp"
#include "dc/shard.hpp"
#include "edge/edge_node.hpp"
#include "group/peer_group.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "storage/apply_pool.hpp"
#include "storage/wal.hpp"

namespace colony {

struct ClusterConfig {
  std::size_t num_dcs = 1;
  std::size_t shards_per_dc = 4;
  std::size_t k_stability = 1;
  std::uint64_t seed = 42;
  /// Latency classes (defaults are the paper's constants, section 7.2).
  sim::LatencyModel inter_dc = sim::latency::kInterDc;
  sim::LatencyModel intra_dc = sim::latency::kIntraDc;
  sim::LatencyModel edge_uplink = sim::latency::kCellular;
  sim::LatencyModel pop_uplink = sim::latency::kCarrierEthernet;
  sim::LatencyModel peer_link = sim::latency::kPeerLink;
  /// Forwarded into every DcConfig (service model, gossip cadence).
  SimTime dc_gossip_interval = 100 * kMillisecond;
  SimTime dc_rpc_service_time = 150 * kMicrosecond;
  SimTime dc_push_service_time = 15 * kMicrosecond;
  /// Apply worker threads per DC (shared by the DC node and its shards).
  /// 0 or 1 = no pool, apply inline on the event thread; the converged
  /// state is byte-identical either way (DESIGN.md section 10).
  std::size_t apply_workers_per_dc = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  // Non-copyable, non-movable: actors hold references into the cluster.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- topology construction ----------------------------------------------

  /// Create an edge client attached to DC `dc` (link wired to every DC so
  /// migration is possible). Returns a stable reference.
  EdgeNode& add_edge(ClientMode mode, DcId dc, UserId user,
                     std::size_t cache_capacity = 0);

  /// Create a peer-group parent on a border PoP attached to DC `dc`.
  PeerGroupParent& add_group_parent(DcId dc);

  /// Wire peer links among a set of nodes (group members and parent).
  void wire_peer_links(const std::vector<NodeId>& nodes);

  // --- access ---------------------------------------------------------------

  [[nodiscard]] std::size_t num_dcs() const { return config_.num_dcs; }
  DcNode& dc(DcId id) { return *dcs_.at(id); }
  [[nodiscard]] const DcNode& dc(DcId id) const { return *dcs_.at(id); }
  [[nodiscard]] NodeId dc_node_id(DcId id) const;
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  EdgeNode& edge(std::size_t i) { return *edges_.at(i); }
  [[nodiscard]] const EdgeNode& edge(std::size_t i) const {
    return *edges_.at(i);
  }
  [[nodiscard]] std::vector<NodeId> dc_node_ids() const;
  [[nodiscard]] std::vector<NodeId> edge_node_ids() const;
  sim::Scheduler& scheduler() { return sched_; }
  sim::Network& network() { return net_; }
  [[nodiscard]] const sim::Network& network() const { return net_; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  // --- execution -------------------------------------------------------------

  void run_for(SimTime duration) { sched_.run_until(sched_.now() + duration); }
  void run_until(SimTime deadline) { sched_.run_until(deadline); }
  [[nodiscard]] SimTime now() const { return sched_.now(); }

  // --- failure injection -----------------------------------------------------

  /// Cut / restore the uplink between a node and a DC (figures 5 & 6).
  void set_uplink(NodeId node, DcId dc, bool up);
  /// Cut / restore the links between a node and a set of peers.
  void set_peer_links(NodeId node, const std::vector<NodeId>& peers, bool up);

  /// Crash a DC or edge node: wipe its volatile state and drop everything in
  /// flight. No-op for node ids without a WAL (shards, group parents) — the
  /// fault degrades to whatever link faults accompany it.
  void crash_node(NodeId node);
  /// Restart a previously crashed node from its WAL. No-op if the node is
  /// unknown or not crashed.
  void restart_node(NodeId node);

  /// The WAL backing a node, or nullptr (tests inspect / corrupt it).
  [[nodiscard]] storage::Wal* disk(NodeId node) {
    auto it = disks_.find(node);
    return it == disks_.end() ? nullptr : it->second.get();
  }

  /// The apply pool of a DC, or nullptr when applying inline.
  [[nodiscard]] ApplyPool* apply_pool(DcId dc) {
    auto it = pools_.find(dc);
    return it == pools_.end() ? nullptr : it->second.get();
  }

  // --- quiescence (chaos harness audit points) -------------------------------

  /// Restore every link and node after arbitrary fault injection.
  void heal_all() { net_.heal(); }

  /// Structurally idle: all DC state vectors agree, no visibility engine
  /// has pending transactions, and no edge holds unacknowledged commits.
  [[nodiscard]] bool idle() const;

  /// Run in `poll`-sized steps until idle() holds at two consecutive polls
  /// (in-flight pushes land in between) or `max_wait` elapses. Returns
  /// whether the cluster reached quiescence — a liveness check in itself.
  bool quiesce(SimTime max_wait, SimTime poll = 500 * kMillisecond);

 private:
  ClusterConfig config_;
  sim::Scheduler sched_;
  sim::Network net_;

  /// One apply pool per DC when apply_workers_per_dc >= 2, keyed by DC id.
  /// Shared by the DC node and its shards; declared before them so it is
  /// destroyed after every node that might still reference it.
  std::map<DcId, std::unique_ptr<ApplyPool>> pools_;
  std::vector<std::unique_ptr<ShardServer>> shards_;
  std::vector<std::unique_ptr<DcNode>> dcs_;
  std::vector<std::unique_ptr<EdgeNode>> edges_;
  std::vector<std::unique_ptr<PeerGroupParent>> parents_;
  /// One durable log per DC / edge node, keyed by node id. Owned here so a
  /// "process" (the node object) can lose everything while its disk survives.
  std::map<NodeId, std::unique_ptr<storage::Wal>> disks_;
  NodeId next_node_id_ = 10'000;
};

}  // namespace colony
