#include "colony/session.hpp"

#include "crdt/counter.hpp"
#include "crdt/maps.hpp"
#include "crdt/or_set.hpp"
#include "crdt/registers.hpp"
#include "crdt/rga.hpp"
#include "security/sealed.hpp"

namespace colony {

// ---------------------------------------------------------------------------
// Typed reads.
// ---------------------------------------------------------------------------

void Session::read_counter(
    Txn& txn, const ObjectKey& key,
    std::function<void(Result<std::int64_t>, ReadSource)> cb) {
  node_.read(txn, key, CrdtType::kPnCounter,
             [cb = std::move(cb)](Result<std::shared_ptr<Crdt>> r,
                                  ReadSource src) {
               if (!r.ok()) {
                 cb(r.error(), src);
                 return;
               }
               const auto* counter =
                   dynamic_cast<const PnCounter*>(r.value().get());
               cb(counter->value(), src);
             });
}

void Session::read_register(
    Txn& txn, const ObjectKey& key,
    std::function<void(Result<std::string>, ReadSource)> cb) {
  node_.read(txn, key, CrdtType::kLwwRegister,
             [cb = std::move(cb)](Result<std::shared_ptr<Crdt>> r,
                                  ReadSource src) {
               if (!r.ok()) {
                 cb(r.error(), src);
                 return;
               }
               const auto* reg =
                   dynamic_cast<const LwwRegister*>(r.value().get());
               cb(reg->value(), src);
             });
}

void Session::read_set(
    Txn& txn, const ObjectKey& key,
    std::function<void(Result<std::vector<std::string>>, ReadSource)> cb) {
  node_.read(txn, key, CrdtType::kOrSet,
             [cb = std::move(cb)](Result<std::shared_ptr<Crdt>> r,
                                  ReadSource src) {
               if (!r.ok()) {
                 cb(r.error(), src);
                 return;
               }
               const auto* set = dynamic_cast<const OrSet*>(r.value().get());
               cb(set->elements(), src);
             });
}

void Session::read_sequence(
    Txn& txn, const ObjectKey& key,
    std::function<void(Result<std::vector<std::string>>, ReadSource)> cb) {
  node_.read(txn, key, CrdtType::kRga,
             [cb = std::move(cb)](Result<std::shared_ptr<Crdt>> r,
                                  ReadSource src) {
               if (!r.ok()) {
                 cb(r.error(), src);
                 return;
               }
               const auto* seq = dynamic_cast<const Rga*>(r.value().get());
               cb(seq->values(), src);
             });
}

// ---------------------------------------------------------------------------
// Typed updates.
// ---------------------------------------------------------------------------

void Session::increment(Txn& txn, const ObjectKey& key, std::int64_t delta) {
  node_.update(txn, OpRecord{key, CrdtType::kPnCounter,
                             PnCounter::prepare_add(delta)});
}

void Session::assign(Txn& txn, const ObjectKey& key,
                     const std::string& value) {
  node_.update(txn, OpRecord{key, CrdtType::kLwwRegister,
                             LwwRegister::prepare_assign(value,
                                                         node_.make_arb())});
}

void Session::add_to_set(Txn& txn, const ObjectKey& key,
                         const std::string& element) {
  node_.update(txn, OpRecord{key, CrdtType::kOrSet,
                             OrSet::prepare_add(element, node_.fresh_dot())});
}

void Session::remove_from_set(Txn& txn, const ObjectKey& key,
                              const std::string& element) {
  const auto* cached = dynamic_cast<const OrSet*>(node_.cached(key));
  const OrSet empty;
  const OrSet& base = cached != nullptr ? *cached : empty;
  node_.update(txn, OpRecord{key, CrdtType::kOrSet,
                             base.prepare_remove(element)});
}

void Session::append(Txn& txn, const ObjectKey& key,
                     const std::string& value) {
  const auto* cached = dynamic_cast<const Rga*>(node_.cached(key));
  // Append after the cached tail; within a transaction, chain after the
  // transaction's own prior appends to the same sequence.
  Dot after = cached != nullptr ? cached->last_id() : Dot{};
  for (const OpRecord& op : txn.ops) {
    if (op.key == key && op.type == CrdtType::kRga) {
      Decoder dec(op.payload);
      if (dec.u8() == 1 /*insert*/) {
        (void)Dot::decode(dec);
        (void)dec.str();
        after = Arb::decode(dec).dot;
      }
    }
  }
  node_.update(txn, OpRecord{key, CrdtType::kRga,
                             Rga::prepare_insert(after, value,
                                                 node_.make_arb())});
}

void Session::map_assign(Txn& txn, const ObjectKey& map_key,
                         const std::string& field, const std::string& value) {
  const Bytes nested =
      LwwRegister::prepare_assign(value, node_.make_arb());
  node_.update(txn,
               OpRecord{map_key, CrdtType::kGMap,
                        GMap::prepare_update(field, CrdtType::kLwwRegister,
                                             nested)});
}

void Session::map_add_to_set(Txn& txn, const ObjectKey& map_key,
                             const std::string& field,
                             const std::string& element) {
  const Bytes nested = OrSet::prepare_add(element, node_.fresh_dot());
  node_.update(txn, OpRecord{map_key, CrdtType::kGMap,
                             GMap::prepare_update(field, CrdtType::kOrSet,
                                                  nested)});
}

// ---------------------------------------------------------------------------
// End-to-end sealed objects.
// ---------------------------------------------------------------------------

bool Session::sealed_update(Txn& txn, const ObjectKey& key,
                            CrdtType inner_type, const Bytes& inner) {
  const auto session_key = node_.session_key(key.bucket);
  if (!session_key.has_value()) return false;
  // The nonce doubles as the entry's identity and order; fold the origin
  // in so concurrent writers never collide.
  const Dot nonce_dot = node_.fresh_dot();
  const std::uint64_t nonce =
      (nonce_dot.origin << 24) | (nonce_dot.counter & 0xFFFFFF);
  node_.update(txn, security::seal_op(key, *session_key, nonce, inner_type,
                                      inner));
  return true;
}

std::optional<std::unique_ptr<Crdt>> Session::sealed_read(
    const ObjectKey& key, CrdtType inner_type) const {
  const auto session_key = node_.session_key(key.bucket);
  if (!session_key.has_value()) return std::nullopt;
  const auto* sealed =
      dynamic_cast<const security::SealedObject*>(node_.cached(key));
  if (sealed == nullptr) return std::nullopt;
  return security::unseal(*sealed, *session_key, inner_type);
}

// ---------------------------------------------------------------------------
// Access control.
// ---------------------------------------------------------------------------

void Session::grant(Txn& txn, const security::AclTuple& tuple) {
  node_.update(txn, OpRecord{security::acl_object_key(), CrdtType::kAcl,
                             security::AclObject::prepare_grant(
                                 tuple, node_.fresh_dot())});
}

void Session::revoke(Txn& txn, const security::AclTuple& tuple) {
  const auto* cached = dynamic_cast<const security::AclObject*>(
      node_.cached(security::acl_object_key()));
  const security::AclObject empty;
  const security::AclObject& base = cached != nullptr ? *cached : empty;
  node_.update(txn, OpRecord{security::acl_object_key(), CrdtType::kAcl,
                             base.prepare_revoke(tuple)});
}

void Session::set_object_parent(Txn& txn, const std::string& object,
                                const std::string& parent) {
  node_.update(txn, OpRecord{security::acl_object_key(), CrdtType::kAcl,
                             security::AclObject::prepare_set_object_parent(
                                 object, parent, node_.make_arb())});
}

void Session::set_user_parent(Txn& txn, UserId user, UserId parent) {
  node_.update(txn, OpRecord{security::acl_object_key(), CrdtType::kAcl,
                             security::AclObject::prepare_set_user_parent(
                                 user, parent, node_.make_arb())});
}

}  // namespace colony
