// Replicated Growable Array (RGA): a sequence CRDT for ordered content
// such as chat-channel message lists or collaborative text.
//
// Implementation: a timestamped insertion tree. Every element is a node
// whose parent is the element it was inserted after (the sentinel root for
// position 0); siblings are ordered by descending arbitration token, and an
// in-order depth-first walk yields the sequence. Deletion is a tombstone.
// Under causal delivery this converges: a parent always arrives before its
// children, and sibling order is deterministic.
//
// Robustness: an insert whose parent is locally unknown (possible when a
// cache was seeded from a snapshot older than operations the node had
// already observed) is buffered invisibly and attached when the parent
// arrives — the standard RGA orphan-buffer technique. Orphans do not count
// towards size() or values().
#pragma once

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "crdt/crdt.hpp"

namespace colony {

class Rga final : public Crdt {
 public:
  [[nodiscard]] CrdtType type() const override { return CrdtType::kRga; }

  /// Insert `value` after element `after` (Dot{} = beginning). The new
  /// element's identity is arb.dot.
  [[nodiscard]] static Bytes prepare_insert(const Dot& after,
                                            const std::string& value,
                                            const Arb& arb);
  [[nodiscard]] static Bytes prepare_remove(const Dot& id);

  void apply(const Bytes& op) override;
  [[nodiscard]] Bytes snapshot() const override;
  void restore(const Bytes& snapshot) override;
  [[nodiscard]] std::unique_ptr<Crdt> clone() const override;

  /// Visible (non-tombstoned) values in sequence order.
  [[nodiscard]] std::vector<std::string> values() const;
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Identity of the visible element at `index` (for preparing edits).
  [[nodiscard]] Dot id_at(std::size_t index) const;

  /// Identity of the last visible element, Dot{} when empty. Appending is
  /// prepare_insert(last_id(), ...), the common chat-message case.
  [[nodiscard]] Dot last_id() const;

  /// Buffered inserts/removes awaiting a missing parent (diagnostics).
  [[nodiscard]] std::size_t orphan_count() const {
    return orphan_inserts_.size() + orphan_removes_.size();
  }

 private:
  enum class OpKind : std::uint8_t { kInsert = 1, kRemove = 2 };

  struct Node {
    std::string value;
    Arb arb;
    bool tombstone = false;
    std::vector<Dot> children;  // sorted by descending child arb
  };

  void insert_node(const Dot& parent, const Dot& id, Node node);
  void attach(const Dot& parent, const Dot& id, Node node);
  void remove_node(const Dot& id);
  void walk(const Dot& id, std::vector<const Node*>& out_nodes,
            std::vector<Dot>* out_ids) const;

  std::unordered_map<Dot, Node> nodes_;  // root sentinel is Dot{}
  std::size_t live_count_ = 0;
  // parent -> (id, node) waiting for the parent to arrive
  std::multimap<Dot, std::pair<Dot, Node>> orphan_inserts_;
  std::set<Dot> orphan_removes_;  // removes of not-yet-seen elements
};

}  // namespace colony
