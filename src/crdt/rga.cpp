#include "crdt/rga.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace colony {

Bytes Rga::prepare_insert(const Dot& after, const std::string& value,
                          const Arb& arb) {
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(OpKind::kInsert));
  after.encode(enc);
  enc.str(value);
  arb.encode(enc);
  return enc.take();
}

Bytes Rga::prepare_remove(const Dot& id) {
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(OpKind::kRemove));
  id.encode(enc);
  return enc.take();
}

void Rga::insert_node(const Dot& parent, const Dot& id, Node node) {
  // Ensure the root sentinel exists.
  nodes_.try_emplace(Dot{});
  if (nodes_.contains(id)) return;  // duplicate delivery, ignore
  if (!nodes_.contains(parent)) {
    // Orphan: the parent has not been seen here (stale snapshot seed);
    // buffer invisibly until it shows up.
    orphan_inserts_.emplace(parent, std::make_pair(id, std::move(node)));
    return;
  }
  attach(parent, id, std::move(node));
}

void Rga::attach(const Dot& parent, const Dot& id, Node node) {
  const Arb arb = node.arb;
  nodes_.emplace(id, std::move(node));
  ++live_count_;

  auto& children = nodes_.at(parent).children;
  const auto pos = std::find_if(
      children.begin(), children.end(),
      [&](const Dot& sibling) { return nodes_.at(sibling).arb < arb; });
  children.insert(pos, id);

  // A buffered remove may have been waiting for this element.
  if (orphan_removes_.erase(id) > 0) remove_node(id);

  // Attach any orphans that were waiting on this element (iteratively:
  // attaching one can unblock a chain).
  auto range = orphan_inserts_.equal_range(id);
  std::vector<std::pair<Dot, Node>> ready;
  for (auto it = range.first; it != range.second; ++it) {
    ready.push_back(std::move(it->second));
  }
  orphan_inserts_.erase(range.first, range.second);
  for (auto& [child_id, child_node] : ready) {
    if (!nodes_.contains(child_id)) {
      attach(id, child_id, std::move(child_node));
    }
  }
}

void Rga::remove_node(const Dot& id) {
  auto& node = nodes_.at(id);
  if (!node.tombstone) {
    node.tombstone = true;
    --live_count_;
  }
}

void Rga::apply(const Bytes& op) {
  Decoder dec(op);
  const auto kind = static_cast<OpKind>(dec.u8());
  switch (kind) {
    case OpKind::kInsert: {
      const Dot after = Dot::decode(dec);
      Node node;
      node.value = dec.str();
      node.arb = Arb::decode(dec);
      insert_node(after, node.arb.dot, std::move(node));
      break;
    }
    case OpKind::kRemove: {
      const Dot id = Dot::decode(dec);
      if (!nodes_.contains(id)) {
        orphan_removes_.insert(id);  // buffered until the insert arrives
        break;
      }
      remove_node(id);
      break;
    }
  }
}

void Rga::walk(const Dot& id, std::vector<const Node*>& out_nodes,
               std::vector<Dot>* out_ids) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  const Node& node = it->second;
  if (id.valid() && !node.tombstone) {
    out_nodes.push_back(&node);
    if (out_ids != nullptr) out_ids->push_back(id);
  }
  for (const Dot& child : node.children) walk(child, out_nodes, out_ids);
}

std::vector<std::string> Rga::values() const {
  std::vector<const Node*> ordered;
  walk(Dot{}, ordered, nullptr);
  std::vector<std::string> out;
  out.reserve(ordered.size());
  for (const Node* n : ordered) out.push_back(n->value);
  return out;
}

Dot Rga::id_at(std::size_t index) const {
  std::vector<const Node*> ordered;
  std::vector<Dot> ids;
  walk(Dot{}, ordered, &ids);
  COLONY_ASSERT(index < ids.size(), "RGA index out of range");
  return ids[index];
}

Dot Rga::last_id() const {
  std::vector<const Node*> ordered;
  std::vector<Dot> ids;
  walk(Dot{}, ordered, &ids);
  return ids.empty() ? Dot{} : ids.back();
}

Bytes Rga::snapshot() const {
  // Serialise as a parent-linked edge list in DFS order (parents precede
  // children) so restore can rebuild with insert_node.
  Encoder enc;
  std::vector<std::pair<Dot, Dot>> edges;  // (parent, child)
  std::vector<Dot> stack{Dot{}};
  std::vector<Dot> order;
  while (!stack.empty()) {
    const Dot id = stack.back();
    stack.pop_back();
    order.push_back(id);
    const auto it = nodes_.find(id);
    if (it == nodes_.end()) continue;
    for (const Dot& child : it->second.children) {
      edges.emplace_back(id, child);
      stack.push_back(child);
    }
  }
  enc.u32(static_cast<std::uint32_t>(edges.size()));
  for (const auto& [parent, child] : edges) {
    parent.encode(enc);
    child.encode(enc);
    const Node& node = nodes_.at(child);
    enc.str(node.value);
    node.arb.encode(enc);
    enc.boolean(node.tombstone);
  }
  // Orphan buffers are state too (they may attach after a restore).
  enc.u32(static_cast<std::uint32_t>(orphan_inserts_.size()));
  for (const auto& [parent, entry] : orphan_inserts_) {
    parent.encode(enc);
    entry.first.encode(enc);
    enc.str(entry.second.value);
    entry.second.arb.encode(enc);
  }
  enc.u32(static_cast<std::uint32_t>(orphan_removes_.size()));
  for (const Dot& id : orphan_removes_) id.encode(enc);
  return enc.take();
}

void Rga::restore(const Bytes& snapshot) {
  nodes_.clear();
  orphan_inserts_.clear();
  orphan_removes_.clear();
  live_count_ = 0;
  Decoder dec(snapshot);
  const std::uint32_t n = dec.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const Dot parent = Dot::decode(dec);
    const Dot child = Dot::decode(dec);
    Node node;
    node.value = dec.str();
    node.arb = Arb::decode(dec);
    const bool tombstone = dec.boolean();
    insert_node(parent, child, std::move(node));
    if (tombstone) remove_node(child);
  }
  const std::uint32_t orphans = dec.u32();
  for (std::uint32_t i = 0; i < orphans; ++i) {
    const Dot parent = Dot::decode(dec);
    const Dot id = Dot::decode(dec);
    Node node;
    node.value = dec.str();
    node.arb = Arb::decode(dec);
    insert_node(parent, id, std::move(node));
  }
  const std::uint32_t removes = dec.u32();
  for (std::uint32_t i = 0; i < removes; ++i) {
    const Dot id = Dot::decode(dec);
    if (nodes_.contains(id)) {
      remove_node(id);
    } else {
      orphan_removes_.insert(id);
    }
  }
}

std::unique_ptr<Crdt> Rga::clone() const {
  auto copy = std::make_unique<Rga>();
  copy->nodes_ = nodes_;
  copy->live_count_ = live_count_;
  copy->orphan_inserts_ = orphan_inserts_;
  copy->orphan_removes_ = orphan_removes_;
  return copy;
}

}  // namespace colony
