// Map CRDTs holding nested CRDTs under string fields.
//
// The paper's API exposes a grow-only map ("gmap", Fig. 3) whose fields are
// themselves CRDTs (registers, sets, ...). AwMap additionally supports
// field removal with add-wins semantics.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "crdt/crdt.hpp"

namespace colony {

/// Grow-only map: fields are created on first update and never removed.
class GMap final : public Crdt {
 public:
  GMap() = default;
  GMap(const GMap& other);
  GMap& operator=(const GMap&) = delete;

  [[nodiscard]] CrdtType type() const override { return CrdtType::kGMap; }

  /// Wrap a nested op for `field` of nested type `nested`.
  [[nodiscard]] static Bytes prepare_update(const std::string& field,
                                            CrdtType nested,
                                            const Bytes& nested_op);

  void apply(const Bytes& op) override;
  [[nodiscard]] Bytes snapshot() const override;
  void restore(const Bytes& snapshot) override;
  [[nodiscard]] std::unique_ptr<Crdt> clone() const override;

  /// Nested object for a field, or nullptr if absent. The returned pointer
  /// is owned by the map and invalidated by apply/restore.
  [[nodiscard]] const Crdt* field(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> fields() const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Typed accessor; asserts on type mismatch.
  template <typename T>
  [[nodiscard]] const T* field_as(const std::string& name) const {
    const Crdt* c = field(name);
    return c == nullptr ? nullptr : dynamic_cast<const T*>(c);
  }

 private:
  std::map<std::string, std::unique_ptr<Crdt>> entries_;
};

/// Add-wins map: like GMap plus observed-remove field deletion. A field is
/// present while it has live presence tags; updates add a tag, removes clear
/// the observed ones. Nested state is retained across remove/re-add (the
/// "keep value" variant), which matches op-based map semantics where a
/// concurrent update must survive a remove.
class AwMap final : public Crdt {
 public:
  AwMap() = default;
  AwMap(const AwMap& other);
  AwMap& operator=(const AwMap&) = delete;

  [[nodiscard]] CrdtType type() const override { return CrdtType::kAwMap; }

  [[nodiscard]] static Bytes prepare_update(const std::string& field,
                                            CrdtType nested,
                                            const Bytes& nested_op,
                                            const Dot& dot);
  [[nodiscard]] Bytes prepare_remove(const std::string& field) const;

  void apply(const Bytes& op) override;
  [[nodiscard]] Bytes snapshot() const override;
  void restore(const Bytes& snapshot) override;
  [[nodiscard]] std::unique_ptr<Crdt> clone() const override;

  [[nodiscard]] bool present(const std::string& name) const;
  [[nodiscard]] const Crdt* field(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> fields() const;

  template <typename T>
  [[nodiscard]] const T* field_as(const std::string& name) const {
    const Crdt* c = field(name);
    return c == nullptr ? nullptr : dynamic_cast<const T*>(c);
  }

 private:
  enum class OpKind : std::uint8_t { kUpdate = 1, kRemove = 2 };

  struct Entry {
    std::unique_ptr<Crdt> value;
    std::set<Dot> presence;
  };

  std::map<std::string, Entry> entries_;
};

}  // namespace colony
