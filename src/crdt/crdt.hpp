// Operation-based CRDT framework.
//
// Colony ensures convergence with operation-based CRDTs (paper sections 3,
// 4): a transaction *prepares* downstream operations against its snapshot,
// and every replica *applies* (replays) them. Determinism of apply plus the
// arbitration order carried in the operations yields Strong Convergence.
//
// Delivery contract: the visibility layer delivers operations in causal
// order and exactly once per replica (dots filter duplicates). Effects here
// may therefore assume their causal predecessors have been applied.
#pragma once

#include <cstdint>
#include <memory>

#include "clock/dot.hpp"
#include "util/binary_codec.hpp"

namespace colony {

enum class CrdtType : std::uint8_t {
  kGCounter = 1,
  kPnCounter = 2,
  kLwwRegister = 3,
  kMvRegister = 4,
  kGSet = 5,
  kOrSet = 6,
  kGMap = 7,
  kAwMap = 8,
  kRga = 9,
  // Extension types registered at run time (see register_crdt_factory).
  kAcl = 32,
  kSealed = 33,
};

[[nodiscard]] const char* to_string(CrdtType t);

/// Arbitration token attached to every operation: a timestamp (from the
/// origin's hybrid clock) plus the dot as tiebreaker. This realises the
/// paper's total arbitration order over concurrent operations (section 3.5).
struct Arb {
  Timestamp ts = 0;
  Dot dot;

  auto operator<=>(const Arb&) const = default;

  void encode(Encoder& enc) const {
    enc.u64(ts);
    dot.encode(enc);
  }
  static Arb decode(Decoder& dec) {
    Arb a;
    a.ts = dec.u64();
    a.dot = Dot::decode(dec);
    return a;
  }
};

/// Type-erased replicated object. Concrete types add typed prepare/read
/// methods; the journal and the replication path only need this interface.
class Crdt {
 public:
  virtual ~Crdt() = default;

  [[nodiscard]] virtual CrdtType type() const = 0;

  /// Replay a downstream operation produced by a prepare on some replica.
  ///
  /// Threading contract (DESIGN.md section 10): an object is only ever
  /// mutated by its single owning thread — the sim event thread, or the
  /// apply-pool worker that owns the object's key. Implementations must
  /// confine all mutable state to the instance; touching global mutable
  /// state from apply() would break the pool's lock-free single-writer
  /// invariant. (make_crdt is safe to call here: the factory registry is
  /// only written during node construction, never while a pool is active.)
  virtual void apply(const Bytes& op) = 0;

  /// Full-state checkpoint, used for base versions (section 4.1) and for
  /// seeding caches of joining nodes.
  [[nodiscard]] virtual Bytes snapshot() const = 0;
  virtual void restore(const Bytes& snapshot) = 0;

  [[nodiscard]] virtual std::unique_ptr<Crdt> clone() const = 0;
};

/// Factory for an empty object of the given type.
[[nodiscard]] std::unique_ptr<Crdt> make_crdt(CrdtType type);

/// Register a factory for an extension CRDT type (e.g. the ACL object in
/// the security module, which cannot live in this library without a
/// dependency cycle). Idempotent per type.
void register_crdt_factory(CrdtType type,
                           std::unique_ptr<Crdt> (*factory)());

}  // namespace colony
