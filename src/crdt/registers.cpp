#include "crdt/registers.hpp"

namespace colony {

Bytes LwwRegister::prepare_assign(const std::string& value, const Arb& arb) {
  Encoder enc;
  enc.str(value);
  arb.encode(enc);
  return enc.take();
}

void LwwRegister::apply(const Bytes& op) {
  Decoder dec(op);
  std::string value = dec.str();
  const Arb arb = Arb::decode(dec);
  if (arb > arb_) {
    value_ = std::move(value);
    arb_ = arb;
  }
}

Bytes LwwRegister::snapshot() const {
  Encoder enc;
  enc.str(value_);
  arb_.encode(enc);
  return enc.take();
}

void LwwRegister::restore(const Bytes& snapshot) {
  Decoder dec(snapshot);
  value_ = dec.str();
  arb_ = Arb::decode(dec);
}

std::unique_ptr<Crdt> LwwRegister::clone() const {
  auto copy = std::make_unique<LwwRegister>();
  copy->value_ = value_;
  copy->arb_ = arb_;
  return copy;
}

Bytes MvRegister::prepare_assign(const std::string& value,
                                 const Dot& dot) const {
  Encoder enc;
  enc.str(value);
  dot.encode(enc);
  enc.u32(static_cast<std::uint32_t>(versions_.size()));
  for (const auto& [observed, _] : versions_) observed.encode(enc);
  return enc.take();
}

void MvRegister::apply(const Bytes& op) {
  Decoder dec(op);
  std::string value = dec.str();
  const Dot dot = Dot::decode(dec);
  const std::uint32_t n = dec.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    versions_.erase(Dot::decode(dec));
  }
  versions_.emplace(dot, std::move(value));
}

Bytes MvRegister::snapshot() const {
  Encoder enc;
  enc.u32(static_cast<std::uint32_t>(versions_.size()));
  for (const auto& [dot, value] : versions_) {
    dot.encode(enc);
    enc.str(value);
  }
  return enc.take();
}

void MvRegister::restore(const Bytes& snapshot) {
  versions_.clear();
  Decoder dec(snapshot);
  const std::uint32_t n = dec.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const Dot dot = Dot::decode(dec);
    versions_.emplace(dot, dec.str());
  }
}

std::unique_ptr<Crdt> MvRegister::clone() const {
  auto copy = std::make_unique<MvRegister>();
  copy->versions_ = versions_;
  return copy;
}

std::vector<std::string> MvRegister::values() const {
  std::vector<std::string> out;
  out.reserve(versions_.size());
  for (const auto& [_, value] : versions_) out.push_back(value);
  return out;
}

}  // namespace colony
