#include "crdt/maps.hpp"

#include "util/assert.hpp"

namespace colony {

GMap::GMap(const GMap& other) {
  for (const auto& [name, value] : other.entries_) {
    entries_.emplace(name, value->clone());
  }
}

Bytes GMap::prepare_update(const std::string& field, CrdtType nested,
                           const Bytes& nested_op) {
  Encoder enc;
  enc.str(field);
  enc.u8(static_cast<std::uint8_t>(nested));
  enc.bytes(nested_op);
  return enc.take();
}

void GMap::apply(const Bytes& op) {
  Decoder dec(op);
  std::string field = dec.str();
  const auto nested = static_cast<CrdtType>(dec.u8());
  const Bytes nested_op = dec.bytes();

  auto it = entries_.find(field);
  if (it == entries_.end()) {
    it = entries_.emplace(std::move(field), make_crdt(nested)).first;
  }
  COLONY_ASSERT(it->second->type() == nested,
                "GMap field updated with mismatched CRDT type");
  it->second->apply(nested_op);
}

Bytes GMap::snapshot() const {
  Encoder enc;
  enc.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [name, value] : entries_) {
    enc.str(name);
    enc.u8(static_cast<std::uint8_t>(value->type()));
    enc.bytes(value->snapshot());
  }
  return enc.take();
}

void GMap::restore(const Bytes& snapshot) {
  entries_.clear();
  Decoder dec(snapshot);
  const std::uint32_t n = dec.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = dec.str();
    const auto nested = static_cast<CrdtType>(dec.u8());
    auto value = make_crdt(nested);
    value->restore(dec.bytes());
    entries_.emplace(std::move(name), std::move(value));
  }
}

std::unique_ptr<Crdt> GMap::clone() const {
  return std::make_unique<GMap>(*this);
}

const Crdt* GMap::field(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.get();
}

std::vector<std::string> GMap::fields() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

AwMap::AwMap(const AwMap& other) {
  for (const auto& [name, entry] : other.entries_) {
    entries_.emplace(name, Entry{entry.value->clone(), entry.presence});
  }
}

Bytes AwMap::prepare_update(const std::string& field, CrdtType nested,
                            const Bytes& nested_op, const Dot& dot) {
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(OpKind::kUpdate));
  enc.str(field);
  enc.u8(static_cast<std::uint8_t>(nested));
  enc.bytes(nested_op);
  dot.encode(enc);
  return enc.take();
}

Bytes AwMap::prepare_remove(const std::string& field) const {
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(OpKind::kRemove));
  enc.str(field);
  const auto it = entries_.find(field);
  if (it == entries_.end()) {
    enc.u32(0);
  } else {
    enc.u32(static_cast<std::uint32_t>(it->second.presence.size()));
    for (const Dot& tag : it->second.presence) tag.encode(enc);
  }
  return enc.take();
}

void AwMap::apply(const Bytes& op) {
  Decoder dec(op);
  const auto kind = static_cast<OpKind>(dec.u8());
  std::string field = dec.str();
  switch (kind) {
    case OpKind::kUpdate: {
      const auto nested = static_cast<CrdtType>(dec.u8());
      const Bytes nested_op = dec.bytes();
      const Dot dot = Dot::decode(dec);
      auto it = entries_.find(field);
      if (it == entries_.end()) {
        it = entries_.emplace(std::move(field), Entry{make_crdt(nested), {}})
                 .first;
      }
      COLONY_ASSERT(it->second.value->type() == nested,
                    "AwMap field updated with mismatched CRDT type");
      it->second.value->apply(nested_op);
      it->second.presence.insert(dot);
      break;
    }
    case OpKind::kRemove: {
      const auto it = entries_.find(field);
      const std::uint32_t n = dec.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        const Dot tag = Dot::decode(dec);
        if (it != entries_.end()) it->second.presence.erase(tag);
      }
      break;
    }
  }
}

Bytes AwMap::snapshot() const {
  Encoder enc;
  enc.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [name, entry] : entries_) {
    enc.str(name);
    enc.u8(static_cast<std::uint8_t>(entry.value->type()));
    enc.bytes(entry.value->snapshot());
    enc.u32(static_cast<std::uint32_t>(entry.presence.size()));
    for (const Dot& tag : entry.presence) tag.encode(enc);
  }
  return enc.take();
}

void AwMap::restore(const Bytes& snapshot) {
  entries_.clear();
  Decoder dec(snapshot);
  const std::uint32_t n = dec.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = dec.str();
    const auto nested = static_cast<CrdtType>(dec.u8());
    Entry entry{make_crdt(nested), {}};
    entry.value->restore(dec.bytes());
    const std::uint32_t m = dec.u32();
    for (std::uint32_t j = 0; j < m; ++j) {
      entry.presence.insert(Dot::decode(dec));
    }
    entries_.emplace(std::move(name), std::move(entry));
  }
}

std::unique_ptr<Crdt> AwMap::clone() const {
  return std::make_unique<AwMap>(*this);
}

bool AwMap::present(const std::string& name) const {
  const auto it = entries_.find(name);
  return it != entries_.end() && !it->second.presence.empty();
}

const Crdt* AwMap::field(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.presence.empty()) return nullptr;
  return it->second.value.get();
}

std::vector<std::string> AwMap::fields() const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.presence.empty()) out.push_back(name);
  }
  return out;
}

}  // namespace colony
