// Counter CRDTs. Increments commute, so the op payload is just a delta.
#pragma once

#include <cstdint>

#include "crdt/crdt.hpp"

namespace colony {

/// Grow-only counter: deltas must be non-negative.
class GCounter final : public Crdt {
 public:
  [[nodiscard]] CrdtType type() const override { return CrdtType::kGCounter; }

  /// Prepare an increment by `delta` (>= 0).
  [[nodiscard]] static Bytes prepare_increment(std::int64_t delta);

  void apply(const Bytes& op) override;
  [[nodiscard]] Bytes snapshot() const override;
  void restore(const Bytes& snapshot) override;
  [[nodiscard]] std::unique_ptr<Crdt> clone() const override;

  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Positive-negative counter: deltas may be negative.
class PnCounter final : public Crdt {
 public:
  [[nodiscard]] CrdtType type() const override { return CrdtType::kPnCounter; }

  [[nodiscard]] static Bytes prepare_add(std::int64_t delta);

  void apply(const Bytes& op) override;
  [[nodiscard]] Bytes snapshot() const override;
  void restore(const Bytes& snapshot) override;
  [[nodiscard]] std::unique_ptr<Crdt> clone() const override;

  [[nodiscard]] std::int64_t value() const { return positive_ - negative_; }
  [[nodiscard]] std::int64_t increments() const { return positive_; }
  [[nodiscard]] std::int64_t decrements() const { return negative_; }

 private:
  std::int64_t positive_ = 0;
  std::int64_t negative_ = 0;
};

}  // namespace colony
