#include "crdt/or_set.hpp"

#include "util/assert.hpp"

namespace colony {

Bytes GSet::prepare_add(const std::string& element) {
  Encoder enc;
  enc.str(element);
  return enc.take();
}

void GSet::apply(const Bytes& op) {
  Decoder dec(op);
  elements_.insert(dec.str());
}

Bytes GSet::snapshot() const {
  Encoder enc;
  enc.u32(static_cast<std::uint32_t>(elements_.size()));
  for (const auto& e : elements_) enc.str(e);
  return enc.take();
}

void GSet::restore(const Bytes& snapshot) {
  elements_.clear();
  Decoder dec(snapshot);
  const std::uint32_t n = dec.u32();
  for (std::uint32_t i = 0; i < n; ++i) elements_.insert(dec.str());
}

std::unique_ptr<Crdt> GSet::clone() const {
  auto copy = std::make_unique<GSet>();
  copy->elements_ = elements_;
  return copy;
}

Bytes OrSet::prepare_add(const std::string& element, const Dot& dot) {
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(OpKind::kAdd));
  enc.str(element);
  dot.encode(enc);
  return enc.take();
}

Bytes OrSet::prepare_remove(const std::string& element) const {
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(OpKind::kRemove));
  enc.str(element);
  const auto it = tags_.find(element);
  if (it == tags_.end()) {
    enc.u32(0);
  } else {
    enc.u32(static_cast<std::uint32_t>(it->second.size()));
    for (const Dot& tag : it->second) tag.encode(enc);
  }
  return enc.take();
}

void OrSet::apply(const Bytes& op) {
  Decoder dec(op);
  const auto kind = static_cast<OpKind>(dec.u8());
  std::string element = dec.str();
  switch (kind) {
    case OpKind::kAdd: {
      tags_[std::move(element)].insert(Dot::decode(dec));
      break;
    }
    case OpKind::kRemove: {
      const auto it = tags_.find(element);
      const std::uint32_t n = dec.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        const Dot tag = Dot::decode(dec);
        if (it != tags_.end()) it->second.erase(tag);
      }
      if (it != tags_.end() && it->second.empty()) tags_.erase(it);
      break;
    }
  }
}

Bytes OrSet::snapshot() const {
  Encoder enc;
  enc.u32(static_cast<std::uint32_t>(tags_.size()));
  for (const auto& [element, tags] : tags_) {
    enc.str(element);
    enc.u32(static_cast<std::uint32_t>(tags.size()));
    for (const Dot& tag : tags) tag.encode(enc);
  }
  return enc.take();
}

void OrSet::restore(const Bytes& snapshot) {
  tags_.clear();
  Decoder dec(snapshot);
  const std::uint32_t n = dec.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string element = dec.str();
    const std::uint32_t m = dec.u32();
    auto& tags = tags_[std::move(element)];
    for (std::uint32_t j = 0; j < m; ++j) tags.insert(Dot::decode(dec));
  }
}

std::unique_ptr<Crdt> OrSet::clone() const {
  auto copy = std::make_unique<OrSet>();
  copy->tags_ = tags_;
  return copy;
}

bool OrSet::contains(const std::string& element) const {
  return tags_.contains(element);
}

std::vector<std::string> OrSet::elements() const {
  std::vector<std::string> out;
  out.reserve(tags_.size());
  for (const auto& [element, _] : tags_) out.push_back(element);
  return out;
}

}  // namespace colony
