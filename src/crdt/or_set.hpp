// Set CRDTs: grow-only set and add-wins observed-remove set.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "crdt/crdt.hpp"

namespace colony {

/// Grow-only set of strings.
class GSet final : public Crdt {
 public:
  [[nodiscard]] CrdtType type() const override { return CrdtType::kGSet; }

  [[nodiscard]] static Bytes prepare_add(const std::string& element);

  void apply(const Bytes& op) override;
  [[nodiscard]] Bytes snapshot() const override;
  void restore(const Bytes& snapshot) override;
  [[nodiscard]] std::unique_ptr<Crdt> clone() const override;

  [[nodiscard]] bool contains(const std::string& element) const {
    return elements_.contains(element);
  }
  [[nodiscard]] const std::set<std::string>& elements() const {
    return elements_;
  }
  [[nodiscard]] std::size_t size() const { return elements_.size(); }

 private:
  std::set<std::string> elements_;
};

/// Observed-remove set with add-wins semantics: each add is tagged with its
/// dot; a remove deletes exactly the tags its origin had observed, so a
/// concurrent add survives. Requires causal delivery.
class OrSet final : public Crdt {
 public:
  [[nodiscard]] CrdtType type() const override { return CrdtType::kOrSet; }

  [[nodiscard]] static Bytes prepare_add(const std::string& element,
                                         const Dot& dot);
  /// Remove carries the observed tags for the element at the origin.
  [[nodiscard]] Bytes prepare_remove(const std::string& element) const;

  void apply(const Bytes& op) override;
  [[nodiscard]] Bytes snapshot() const override;
  void restore(const Bytes& snapshot) override;
  [[nodiscard]] std::unique_ptr<Crdt> clone() const override;

  [[nodiscard]] bool contains(const std::string& element) const;
  [[nodiscard]] std::vector<std::string> elements() const;
  [[nodiscard]] std::size_t size() const { return tags_.size(); }

 private:
  enum class OpKind : std::uint8_t { kAdd = 1, kRemove = 2 };

  // element -> set of live add tags
  std::map<std::string, std::set<Dot>> tags_;
};

}  // namespace colony
