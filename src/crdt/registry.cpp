#include "crdt/crdt.hpp"

#include <map>

#include "crdt/counter.hpp"
#include "crdt/maps.hpp"
#include "crdt/or_set.hpp"
#include "crdt/registers.hpp"
#include "crdt/rga.hpp"
#include "util/assert.hpp"

namespace colony {

const char* to_string(CrdtType t) {
  switch (t) {
    case CrdtType::kGCounter: return "gcounter";
    case CrdtType::kPnCounter: return "pncounter";
    case CrdtType::kLwwRegister: return "lww-register";
    case CrdtType::kMvRegister: return "mv-register";
    case CrdtType::kGSet: return "gset";
    case CrdtType::kOrSet: return "orset";
    case CrdtType::kGMap: return "gmap";
    case CrdtType::kAwMap: return "awmap";
    case CrdtType::kRga: return "rga";
    case CrdtType::kAcl: return "acl";
    case CrdtType::kSealed: return "sealed";
  }
  return "unknown";
}

namespace {
// The only shared mutable state in the CRDT layer. Writes (registration)
// happen exclusively during node construction on the control thread while
// every apply pool is quiescent; apply-pool workers may read it through
// make_crdt (nested map fields), so registering while a pool has pending
// tasks would be a data race — don't.
std::map<CrdtType, std::unique_ptr<Crdt> (*)()>& extension_factories() {
  static std::map<CrdtType, std::unique_ptr<Crdt> (*)()> factories;
  return factories;
}
}  // namespace

void register_crdt_factory(CrdtType type,
                           std::unique_ptr<Crdt> (*factory)()) {
  extension_factories()[type] = factory;
}

std::unique_ptr<Crdt> make_crdt(CrdtType type) {
  switch (type) {
    case CrdtType::kGCounter: return std::make_unique<GCounter>();
    case CrdtType::kPnCounter: return std::make_unique<PnCounter>();
    case CrdtType::kLwwRegister: return std::make_unique<LwwRegister>();
    case CrdtType::kMvRegister: return std::make_unique<MvRegister>();
    case CrdtType::kGSet: return std::make_unique<GSet>();
    case CrdtType::kOrSet: return std::make_unique<OrSet>();
    case CrdtType::kGMap: return std::make_unique<GMap>();
    case CrdtType::kAwMap: return std::make_unique<AwMap>();
    case CrdtType::kRga: return std::make_unique<Rga>();
    default: break;
  }
  const auto& factories = extension_factories();
  const auto it = factories.find(type);
  COLONY_ASSERT(it != factories.end(), "unknown CRDT type tag");
  return it->second();
}

}  // namespace colony
