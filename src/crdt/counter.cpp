#include "crdt/counter.hpp"

#include "util/assert.hpp"

namespace colony {

Bytes GCounter::prepare_increment(std::int64_t delta) {
  COLONY_ASSERT(delta >= 0, "GCounter increments must be non-negative");
  Encoder enc;
  enc.i64(delta);
  return enc.take();
}

void GCounter::apply(const Bytes& op) {
  Decoder dec(op);
  const std::int64_t delta = dec.i64();
  COLONY_ASSERT(delta >= 0, "corrupt GCounter op");
  value_ += delta;
}

Bytes GCounter::snapshot() const {
  Encoder enc;
  enc.i64(value_);
  return enc.take();
}

void GCounter::restore(const Bytes& snapshot) {
  Decoder dec(snapshot);
  value_ = dec.i64();
}

std::unique_ptr<Crdt> GCounter::clone() const {
  auto copy = std::make_unique<GCounter>();
  copy->value_ = value_;
  return copy;
}

Bytes PnCounter::prepare_add(std::int64_t delta) {
  Encoder enc;
  enc.i64(delta);
  return enc.take();
}

void PnCounter::apply(const Bytes& op) {
  Decoder dec(op);
  const std::int64_t delta = dec.i64();
  if (delta >= 0) {
    positive_ += delta;
  } else {
    negative_ += -delta;
  }
}

Bytes PnCounter::snapshot() const {
  Encoder enc;
  enc.i64(positive_);
  enc.i64(negative_);
  return enc.take();
}

void PnCounter::restore(const Bytes& snapshot) {
  Decoder dec(snapshot);
  positive_ = dec.i64();
  negative_ = dec.i64();
}

std::unique_ptr<Crdt> PnCounter::clone() const {
  auto copy = std::make_unique<PnCounter>();
  copy->positive_ = positive_;
  copy->negative_ = negative_;
  return copy;
}

}  // namespace colony
