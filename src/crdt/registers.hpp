// Register CRDTs: last-writer-wins and multi-value.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "crdt/crdt.hpp"

namespace colony {

/// LWW register: the assignment with the greatest arbitration token wins.
/// Strong convergence follows from Arb being a total order.
class LwwRegister final : public Crdt {
 public:
  [[nodiscard]] CrdtType type() const override {
    return CrdtType::kLwwRegister;
  }

  [[nodiscard]] static Bytes prepare_assign(const std::string& value,
                                            const Arb& arb);

  void apply(const Bytes& op) override;
  [[nodiscard]] Bytes snapshot() const override;
  void restore(const Bytes& snapshot) override;
  [[nodiscard]] std::unique_ptr<Crdt> clone() const override;

  [[nodiscard]] const std::string& value() const { return value_; }
  [[nodiscard]] const Arb& arb() const { return arb_; }

 private:
  std::string value_;
  Arb arb_{};  // zero Arb = unwritten; any real write beats it
};

/// Multi-value register: concurrent assignments are all kept; a new
/// assignment replaces exactly the versions its origin had observed.
/// Requires causal delivery (guaranteed by the visibility layer).
class MvRegister final : public Crdt {
 public:
  [[nodiscard]] CrdtType type() const override { return CrdtType::kMvRegister; }

  /// The op carries the dots of the currently visible versions (to be
  /// superseded) plus the new (value, dot) pair.
  [[nodiscard]] Bytes prepare_assign(const std::string& value,
                                     const Dot& dot) const;

  void apply(const Bytes& op) override;
  [[nodiscard]] Bytes snapshot() const override;
  void restore(const Bytes& snapshot) override;
  [[nodiscard]] std::unique_ptr<Crdt> clone() const override;

  /// All concurrent values, in deterministic (dot) order.
  [[nodiscard]] std::vector<std::string> values() const;
  [[nodiscard]] std::size_t version_count() const { return versions_.size(); }

 private:
  std::map<Dot, std::string> versions_;
};

}  // namespace colony
