#include "dc/shard.hpp"

#include <algorithm>

#include "storage/apply_pool.hpp"
#include "util/assert.hpp"

namespace colony {

ShardServer::ShardServer(sim::Network& net, NodeId id, ApplyPool* pool)
    : RpcActor(net, id), pool_(pool) {}

proto::ShardReadResp ShardServer::read_value(const ObjectKey& key) const {
  proto::ShardReadResp resp;
  const auto it = data_.find(key);
  if (it == data_.end()) return resp;
  resp.found = true;
  resp.type = it->second.first;
  resp.state = it->second.second->snapshot();
  return resp;
}

void ShardServer::apply_ops(const std::vector<OpRecord>& ops) {
  if (pool_ == nullptr || ops.size() <= 1) {
    for (const OpRecord& op : ops) {
      auto it = data_.find(op.key);
      if (it == data_.end()) {
        it = data_.emplace(op.key,
                           std::make_pair(op.type, make_crdt(op.type)))
                 .first;
      }
      COLONY_ASSERT(it->second.first == op.type,
                    "shard object type mismatch");
      it->second.second->apply(op.payload);
    }
    return;
  }
  // Pooled path: object creation and type checks stay on the event thread
  // (std::map nodes are address-stable, so worker tasks can reference the
  // values while later insertions proceed); folds fan out to each key's
  // owning worker and are joined before the handler returns, keeping the
  // payloads (owned by the caller's decoded message) alive long enough.
  for (const OpRecord& op : ops) {
    auto it = data_.find(op.key);
    if (it == data_.end()) {
      it = data_.emplace(op.key,
                         std::make_pair(op.type, make_crdt(op.type)))
               .first;
    }
    COLONY_ASSERT(it->second.first == op.type,
                  "shard object type mismatch");
    ApplyTask task;
    task.value = it->second.second.get();
    task.payload = &op.payload;
    pool_->submit(pool_->owner(op.key), task);
  }
  pool_->barrier();
}

void ShardServer::serve_ready_reads() {
  auto ready = [this](const PendingRead& pr) {
    return pr.min_seq <= applied_seq_;
  };
  for (auto it = waiting_reads_.begin(); it != waiting_reads_.end();) {
    if (ready(*it)) {
      it->reply(codec::to_bytes(read_value(it->key)));
      it = waiting_reads_.erase(it);
    } else {
      ++it;
    }
  }
}

void ShardServer::on_message(NodeId /*from*/, std::uint32_t kind,
                             ByteView body) {
  switch (kind) {
    case proto::kShardApply: {
      const auto msg = codec::from_bytes<proto::ShardApplyMsg>(body);
      // At-least-once delivery: a duplicated apply still advances the seq
      // watermark but must not replay its operations.
      if (seen_.record(msg.dot)) apply_ops(msg.ops);
      applied_seq_ = std::max(applied_seq_, msg.seq);
      serve_ready_reads();
      break;
    }
    case proto::kShardCommit: {
      const auto msg = codec::from_bytes<proto::ShardCommitMsg>(body);
      // The 2PC decision releases the prepared buffer; the data itself
      // arrives through the uniform kShardApply path so every transaction
      // flows through exactly one apply pipeline.
      prepared_.erase(msg.txn_id);
      break;
    }
    default:
      COLONY_ASSERT(false, "unexpected one-way message at shard");
  }
}

void ShardServer::on_request(NodeId /*from*/, std::uint32_t method,
                             ByteView payload, ReplyFn reply) {
  switch (method) {
    case proto::kShardRead: {
      const auto req = codec::from_bytes<proto::ShardReadReq>(payload);
      if (req.min_seq > applied_seq_) {
        // ClockSI read rule: this shard has not caught up to the snapshot;
        // defer the reply until it has.
        waiting_reads_.push_back(PendingRead{req.min_seq, req.key,
                                             std::move(reply)});
        return;
      }
      reply(codec::to_bytes(read_value(req.key)));
      break;
    }
    case proto::kShardPrepare: {
      const auto req = codec::from_bytes<proto::ShardPrepareReq>(payload);
      // CRDT updates never write-conflict; vote no only on a type clash.
      bool ok = true;
      for (const OpRecord& op : req.ops) {
        const auto it = data_.find(op.key);
        if (it != data_.end() && it->second.first != op.type) {
          ok = false;
          break;
        }
      }
      if (ok) prepared_[req.txn_id] = req.ops;
      reply(codec::to_bytes(proto::ShardPrepareResp{req.txn_id, ok}));
      break;
    }
    default:
      reply(Error{Error::Code::kInvalidArgument, "unknown shard method"});
  }
}

}  // namespace colony
