// Wire protocol between edge nodes, peer groups, and data centres.
//
// Message bodies travel through the simulated network as typed structs (the
// simulator delivers std::any); kinds below identify them. Metadata sizes
// for the ablation bench are computed from the structs' codec encodings.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "clock/version_vector.hpp"
#include "consensus/epaxos.hpp"
#include "core/txn.hpp"
#include "storage/journal_store.hpp"
#include "util/types.hpp"

namespace colony::proto {

enum Kind : std::uint32_t {
  // Edge <-> DC session protocol.
  kEdgeCommit = 10,   // RPC  EdgeCommitReq -> EdgeCommitResp
  kSubscribe = 11,    // RPC  SubscribeReq  -> SubscribeResp
  kFetchObject = 12,  // RPC  FetchReq      -> FetchResp
  kPushTxn = 13,      // 1way PushTxn (DC/parent -> edge)
  kStateUpdate = 14,  // 1way StateUpdate (k-stable cut advance)
  kMigrate = 15,      // RPC  MigrateReq    -> MigrateResp
  kDcExecute = 16,    // RPC  DcExecuteReq  -> DcExecuteResp (cloud mode)
  kOpenSession = 17,  // RPC  OpenSessionReq -> OpenSessionResp (keys)
  kPushAck = 18,      // 1way PushAck (edge -> DC, cumulative session ack)

  // DC <-> DC geo-replication.
  kReplicateTxn = 20,  // 1way Transaction in commit order
  kDcGossip = 21,      // 1way state-vector gossip (drives K-stability)

  // Intra-DC shard protocol (ClockSI-style).
  kShardRead = 30,     // RPC  ShardReadReq -> ShardReadResp
  kShardPrepare = 31,  // RPC  ShardPrepareReq -> ShardPrepareResp
  kShardCommit = 32,   // 1way ShardCommitMsg
  kShardApply = 33,    // 1way ShardApplyMsg (replicated/edge txn fan-out)

  // Peer group protocol.
  kGroupJoin = 40,        // RPC  GroupJoinReq -> GroupJoinResp
  kGroupLeave = 41,       // RPC  GroupLeaveReq -> (empty)
  kGroupMembership = 42,  // 1way MembershipMsg (parent -> members)
  kEpaxos = 43,           // 1way consensus::EpaxosMsg between members
  kGroupCatchup = 44,     // RPC  CatchupReq -> CatchupResp
  kPeerFetch = 45,        // RPC  PeerFetchReq -> PeerFetchResp
  kResolutionRelay = 46,  // 1way ResolutionMsg (parent -> members)
  kInterestUpdate = 47,   // 1way member interest-set publication
  kUnsubscribe = 48,      // 1way UnsubscribeMsg (edge -> DC/parent)
  kGroupPing = 49,        // RPC  parent -> member liveness probe
};

// --- Edge <-> DC -----------------------------------------------------------

struct EdgeCommitReq {
  Transaction txn;  // symbolic commit; pending_deps reference earlier dots
};
struct EdgeCommitResp {
  Dot dot;
  DcId dc = 0;
  Timestamp ts = 0;                 // assigned commit timestamp T.C[dc]
  VersionVector resolved_snapshot;  // DC-resolved concrete snapshot
};

struct SubscribeReq {
  std::vector<ObjectKey> keys;
  UserId user = 0;
};
struct SubscribeResp {
  std::vector<ObjectSnapshot> snapshots;
  VersionVector cut;  // k-stable cut the snapshots were materialised at
};

struct FetchReq {
  ObjectKey key;
  bool subscribe = true;  // also add the key to the session interest set
  UserId user = 0;
};
struct FetchResp {
  ObjectSnapshot snapshot;
  VersionVector cut;
};

struct PushTxn {
  Transaction txn;
  /// Dense per-session sequence number when pushed over an acknowledged DC
  /// session channel; 0 on unacked channels (peer-group parents). The
  /// subscriber acks its contiguous receive prefix so the DC can detect
  /// pushes lost to a crash or connection break and rewind (Go-Back-N).
  std::uint64_t session_seq = 0;
};
struct StateUpdate {
  VersionVector cut;
  /// The sender's session_seq at the time the cut was computed: the cut
  /// asserts that everything below it was delivered (or is uninteresting),
  /// which is only true once the subscriber has received every session
  /// push up to this watermark. A subscriber must NOT seed its state from
  /// a cut whose watermark exceeds its contiguous receive prefix — doing
  /// so would let successors of a lost push become visible first.
  std::uint64_t seq_watermark = 0;
};
/// Cumulative acknowledgement of session pushes: all pushes with
/// session_seq <= seq have been received (links are FIFO).
struct PushAck {
  std::uint64_t seq = 0;
};

/// Receiver half of the acknowledged session channel. Crash windows can
/// drop a message yet deliver a later one on the same FIFO link (delivery-
/// time liveness), so receipt of seq N does not imply receipt of N-1; the
/// receiver acks only its contiguous prefix and withholds acks on a gap,
/// which makes the sender's cumulative-ack bookkeeping truthful and
/// eventually triggers its stall-detection rewind.
struct PushChannelRecv {
  std::uint64_t last_seq = 0;  // contiguous receive prefix

  /// Returns the seq to acknowledge, or 0 to withhold (gap detected or
  /// unacked channel).
  std::uint64_t on_push(std::uint64_t seq) {
    if (seq == 0) return 0;  // unacked channel (peer-group parent)
    if (seq == last_seq + 1) return ++last_seq;
    if (seq <= last_seq) return last_seq;  // duplicate: re-ack the prefix
    return 0;  // gap: withhold; the sender stalls and rewinds
  }
  [[nodiscard]] bool covers(std::uint64_t watermark) const {
    return watermark <= last_seq;
  }
};

struct MigrateReq {
  VersionVector state;  // edge's state vector (causal-compatibility check)
  std::vector<ObjectKey> interest;
  UserId user = 0;
  /// Everything below this cut is materialised at the edge (its seeded-cut
  /// baseline). The state vector above can exceed possession — resolving
  /// an own commit merges a DC snapshot covering foreign transactions the
  /// edge never received — so the new DC backfills from here instead.
  VersionVector possessed;
};
struct MigrateResp {
  bool compatible = false;
  VersionVector cut;
};

/// Cloud-mode (AntidoteDB-like) and migrated-transaction execution: the DC
/// runs the transaction. Reads return materialised values; updates are ops
/// prepared by the client against the read values.
///
/// For a migrated transaction (section 3.9) the client primes
/// `min_snapshot` with its own state vector: the DC defers execution until
/// its state covers it, so the migrated transaction observes everything the
/// client had (same effect as running at the edge, only faster).
struct DcExecuteReq {
  std::vector<ObjectKey> reads;
  std::vector<OpRecord> updates;
  UserId user = 0;
  VersionVector min_snapshot;
};
struct DcExecuteResp {
  std::vector<ObjectSnapshot> read_values;
  Dot dot;  // of the committed update transaction (if updates non-empty)
};

/// Session opening (section 6.1-6.2): the session manager in the core
/// cloud authenticates the client and hands out one symmetric session key
/// per requested bucket — the keys that make end-to-end sealing work.
struct OpenSessionReq {
  UserId user = 0;
  std::vector<std::string> buckets;
};
struct OpenSessionResp {
  /// (bucket, key) pairs for the buckets the user is authorised to read;
  /// unauthorised buckets are omitted.
  std::vector<std::pair<std::string, std::uint64_t>> keys;
};

// --- DC <-> DC --------------------------------------------------------------

struct ReplicateTxn {
  Transaction txn;
};
struct DcGossip {
  DcId dc = 0;
  VersionVector state;
};

// --- Intra-DC shards ---------------------------------------------------------

struct ShardReadReq {
  ObjectKey key;
  Timestamp min_seq = 0;  // ClockSI read rule: wait until shard caught up
};
struct ShardReadResp {
  bool found = false;
  CrdtType type{};
  Bytes state;
};
struct ShardPrepareReq {
  std::uint64_t txn_id = 0;
  std::vector<OpRecord> ops;  // ops owned by this shard
};
struct ShardPrepareResp {
  std::uint64_t txn_id = 0;
  bool vote_commit = false;
};
struct ShardCommitMsg {
  std::uint64_t txn_id = 0;
  bool commit = false;
  Timestamp seq = 0;  // DC sequence number of the transaction
  Dot dot;
};
struct ShardApplyMsg {
  Timestamp seq = 0;
  Dot dot;
  std::vector<OpRecord> ops;  // ops owned by this shard
};

// --- Peer group --------------------------------------------------------------

struct GroupJoinReq {
  NodeId node = 0;
  UserId user = 0;
  VersionVector state;  // causal compatibility check (section 5.2)
  std::vector<ObjectKey> interest;
};
struct GroupJoinResp {
  bool accepted = false;
  std::uint64_t epoch = 0;
  std::vector<NodeId> members;  // includes the parent
  std::uint64_t session_key = 0;
};
struct GroupLeaveReq {
  NodeId node = 0;
};
struct MembershipMsg {
  std::uint64_t epoch = 0;
  std::vector<NodeId> members;
};
struct EpaxosEnvelope {
  std::uint64_t epoch = 0;
  consensus::EpaxosMsg msg;
};
struct CatchupReq {
  NodeId node = 0;
};
struct CatchupResp {
  std::vector<consensus::CommitMsg> instances;
  std::vector<Transaction> txns;  // records referenced by the instances
  VersionVector cut;
};
struct PeerFetchReq {
  ObjectKey key;
  bool subscribe = true;
  NodeId member = 0;
};
struct PeerFetchResp {
  bool found = false;
  ObjectSnapshot snapshot;
};
struct ResolutionMsg {
  Dot dot;
  DcId dc = 0;
  Timestamp ts = 0;
  VersionVector resolved_snapshot;
};
struct InterestUpdate {
  NodeId node = 0;
  std::vector<ObjectKey> keys;
};
struct UnsubscribeMsg {
  std::vector<ObjectKey> keys;
};

/// Payload of an EPaxos command inside a peer group: the transaction plus,
/// for the PSI commit variant, the proposer's conflict signature (expected
/// count of delivered interfering commands per key). Every member computes
/// the same abort decision from it, deterministically.
struct GroupCommand {
  bool ordered = false;  // true = PSI-on-critical-path variant (§5.1.4)
  Transaction txn;
  std::vector<std::pair<ObjectKey, std::uint64_t>> expected;

  [[nodiscard]] Bytes to_bytes() const {
    Encoder enc;
    enc.boolean(ordered);
    txn.encode(enc);
    enc.u32(static_cast<std::uint32_t>(expected.size()));
    for (const auto& [key, count] : expected) {
      enc.str(key.bucket);
      enc.str(key.name);
      enc.u64(count);
    }
    return enc.take();
  }

  static GroupCommand from_bytes(const Bytes& bytes) {
    Decoder dec(bytes);
    GroupCommand gc;
    gc.ordered = dec.boolean();
    gc.txn = Transaction::decode(dec);
    const std::uint32_t n = dec.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      ObjectKey key;
      key.bucket = dec.str();
      key.name = dec.str();
      gc.expected.emplace_back(std::move(key), dec.u64());
    }
    return gc;
  }
};

}  // namespace colony::proto
