// Wire protocol between edge nodes, peer groups, and data centres.
//
// Message bodies cross the simulated network as length-prefixed,
// checksummed byte frames; kinds below identify them. Every struct exposes
// its members via `fields()` so the generic codec (util/codec.hpp) derives
// its encoding — senders encode, receivers decode on every hop, and the
// metadata ablation bench reports the *measured* per-kind frame bytes the
// network metered.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "clock/version_vector.hpp"
#include "consensus/epaxos.hpp"
#include "core/txn.hpp"
#include "storage/journal_store.hpp"
#include "util/codec.hpp"
#include "util/types.hpp"

namespace colony::proto {

enum Kind : std::uint32_t {
  // Edge <-> DC session protocol.
  kEdgeCommit = 10,   // RPC  EdgeCommitReq -> EdgeCommitResp
  kSubscribe = 11,    // RPC  SubscribeReq  -> SubscribeResp
  kFetchObject = 12,  // RPC  FetchReq      -> FetchResp
  kPushTxn = 13,      // 1way PushTxn (DC/parent -> edge)
  kStateUpdate = 14,  // 1way StateUpdate (k-stable cut advance)
  kMigrate = 15,      // RPC  MigrateReq    -> MigrateResp
  kDcExecute = 16,    // RPC  DcExecuteReq  -> DcExecuteResp (cloud mode)
  kOpenSession = 17,  // RPC  OpenSessionReq -> OpenSessionResp (keys)
  kPushAck = 18,      // 1way PushAck (edge -> DC, cumulative session ack)

  // DC <-> DC geo-replication.
  kReplicateTxn = 20,  // 1way Transaction in commit order
  kDcGossip = 21,      // 1way state-vector gossip (drives K-stability)

  // Intra-DC shard protocol (ClockSI-style).
  kShardRead = 30,     // RPC  ShardReadReq -> ShardReadResp
  kShardPrepare = 31,  // RPC  ShardPrepareReq -> ShardPrepareResp
  kShardCommit = 32,   // 1way ShardCommitMsg
  kShardApply = 33,    // 1way ShardApplyMsg (replicated/edge txn fan-out)

  // Peer group protocol.
  kGroupJoin = 40,        // RPC  GroupJoinReq -> GroupJoinResp
  kGroupLeave = 41,       // RPC  GroupLeaveReq -> (empty)
  kGroupMembership = 42,  // 1way MembershipMsg (parent -> members)
  kEpaxos = 43,           // 1way consensus::EpaxosMsg between members
  kGroupCatchup = 44,     // RPC  CatchupReq -> CatchupResp
  kPeerFetch = 45,        // RPC  PeerFetchReq -> PeerFetchResp
  kResolutionRelay = 46,  // 1way ResolutionMsg (parent -> members)
  kInterestUpdate = 47,   // 1way member interest-set publication
  kUnsubscribe = 48,      // 1way UnsubscribeMsg (edge -> DC/parent)
  kGroupPing = 49,        // RPC  parent -> member liveness probe
};

/// Human-readable kind label (per-kind wire accounting reports).
[[nodiscard]] constexpr const char* kind_name(std::uint32_t kind) {
  switch (kind) {
    case kEdgeCommit: return "edge-commit";
    case kSubscribe: return "subscribe";
    case kFetchObject: return "fetch-object";
    case kPushTxn: return "push-txn";
    case kStateUpdate: return "state-update";
    case kMigrate: return "migrate";
    case kDcExecute: return "dc-execute";
    case kOpenSession: return "open-session";
    case kPushAck: return "push-ack";
    case kReplicateTxn: return "replicate-txn";
    case kDcGossip: return "dc-gossip";
    case kShardRead: return "shard-read";
    case kShardPrepare: return "shard-prepare";
    case kShardCommit: return "shard-commit";
    case kShardApply: return "shard-apply";
    case kGroupJoin: return "group-join";
    case kGroupLeave: return "group-leave";
    case kGroupMembership: return "group-membership";
    case kEpaxos: return "epaxos";
    case kGroupCatchup: return "group-catchup";
    case kPeerFetch: return "peer-fetch";
    case kResolutionRelay: return "resolution-relay";
    case kInterestUpdate: return "interest-update";
    case kUnsubscribe: return "unsubscribe";
    case kGroupPing: return "group-ping";
    default: return "?";
  }
}

// --- Edge <-> DC -----------------------------------------------------------

struct EdgeCommitReq {
  Transaction txn;  // symbolic commit; pending_deps reference earlier dots

  bool operator==(const EdgeCommitReq&) const = default;
  auto fields() { return std::tie(txn); }
};
struct EdgeCommitResp {
  Dot dot;
  DcId dc = 0;
  Timestamp ts = 0;                 // assigned commit timestamp T.C[dc]
  VersionVector resolved_snapshot;  // DC-resolved concrete snapshot

  bool operator==(const EdgeCommitResp&) const = default;
  auto fields() { return std::tie(dot, dc, ts, resolved_snapshot); }
};

struct SubscribeReq {
  std::vector<ObjectKey> keys;
  UserId user = 0;

  bool operator==(const SubscribeReq&) const = default;
  auto fields() { return std::tie(keys, user); }
};
struct SubscribeResp {
  std::vector<ObjectSnapshot> snapshots;
  VersionVector cut;  // k-stable cut the snapshots were materialised at

  bool operator==(const SubscribeResp&) const = default;
  auto fields() { return std::tie(snapshots, cut); }
};

struct FetchReq {
  ObjectKey key;
  bool subscribe = true;  // also add the key to the session interest set
  UserId user = 0;

  bool operator==(const FetchReq&) const = default;
  auto fields() { return std::tie(key, subscribe, user); }
};
struct FetchResp {
  ObjectSnapshot snapshot;
  VersionVector cut;

  bool operator==(const FetchResp&) const = default;
  auto fields() { return std::tie(snapshot, cut); }
};

struct PushTxn {
  Transaction txn;
  /// Dense per-session sequence number when pushed over an acknowledged DC
  /// session channel; 0 on unacked channels (peer-group parents). The
  /// subscriber acks its contiguous receive prefix so the DC can detect
  /// pushes lost to a crash or connection break and rewind (Go-Back-N).
  std::uint64_t session_seq = 0;

  bool operator==(const PushTxn&) const = default;
  auto fields() { return std::tie(txn, session_seq); }
};
struct StateUpdate {
  VersionVector cut;
  /// The sender's session_seq at the time the cut was computed: the cut
  /// asserts that everything below it was delivered (or is uninteresting),
  /// which is only true once the subscriber has received every session
  /// push up to this watermark. A subscriber must NOT seed its state from
  /// a cut whose watermark exceeds its contiguous receive prefix — doing
  /// so would let successors of a lost push become visible first.
  std::uint64_t seq_watermark = 0;

  bool operator==(const StateUpdate&) const = default;
  auto fields() { return std::tie(cut, seq_watermark); }
};
/// Cumulative acknowledgement of session pushes: all pushes with
/// session_seq <= seq have been received (links are FIFO).
struct PushAck {
  std::uint64_t seq = 0;

  bool operator==(const PushAck&) const = default;
  auto fields() { return std::tie(seq); }
};

/// Receiver half of the acknowledged session channel. Crash windows can
/// drop a message yet deliver a later one on the same FIFO link (delivery-
/// time liveness), so receipt of seq N does not imply receipt of N-1; the
/// receiver acks only its contiguous prefix and withholds acks on a gap,
/// which makes the sender's cumulative-ack bookkeeping truthful and
/// eventually triggers its stall-detection rewind.
struct PushChannelRecv {
  std::uint64_t last_seq = 0;  // contiguous receive prefix

  struct Push {
    bool deliver = false;   // payload may be handed to the engine
    std::uint64_t ack = 0;  // seq to acknowledge, 0 to withhold
  };

  /// Go-Back-N receive. In-order pushes are delivered and acked; duplicates
  /// are delivered (the dot filter drops them) and re-acked. After-gap
  /// pushes are DISCARDED, not just left unacked: a push that jumps the gap
  /// carries a transaction whose applied commit vector can cover the lost
  /// one's slot, letting successors of the lost transaction become visible
  /// first. The withheld ack stalls the sender into its rewind, which
  /// re-sends the suffix from the acknowledged prefix in order.
  Push on_push(std::uint64_t seq) {
    if (seq == 0) return {true, 0};  // unacked channel (peer-group parent)
    if (seq == last_seq + 1) return {true, ++last_seq};
    if (seq <= last_seq) return {true, last_seq};  // duplicate: re-ack
    return {false, 0};  // gap: drop; the sender stalls and rewinds
  }
  [[nodiscard]] bool covers(std::uint64_t watermark) const {
    return watermark <= last_seq;
  }
};

struct MigrateReq {
  VersionVector state;  // edge's state vector (causal-compatibility check)
  std::vector<ObjectKey> interest;
  UserId user = 0;
  /// Everything below this cut is materialised at the edge (its seeded-cut
  /// baseline). The state vector above can exceed possession — resolving
  /// an own commit merges a DC snapshot covering foreign transactions the
  /// edge never received — so the new DC backfills from here instead.
  VersionVector possessed;

  bool operator==(const MigrateReq&) const = default;
  auto fields() { return std::tie(state, interest, user, possessed); }
};
struct MigrateResp {
  bool compatible = false;
  VersionVector cut;

  bool operator==(const MigrateResp&) const = default;
  auto fields() { return std::tie(compatible, cut); }
};

/// Cloud-mode (AntidoteDB-like) and migrated-transaction execution: the DC
/// runs the transaction. Reads return materialised values; updates are ops
/// prepared by the client against the read values.
///
/// For a migrated transaction (section 3.9) the client primes
/// `min_snapshot` with its own state vector: the DC defers execution until
/// its state covers it, so the migrated transaction observes everything the
/// client had (same effect as running at the edge, only faster).
struct DcExecuteReq {
  std::vector<ObjectKey> reads;
  std::vector<OpRecord> updates;
  UserId user = 0;
  VersionVector min_snapshot;

  bool operator==(const DcExecuteReq&) const = default;
  auto fields() { return std::tie(reads, updates, user, min_snapshot); }
};
struct DcExecuteResp {
  std::vector<ObjectSnapshot> read_values;
  Dot dot;  // of the committed update transaction (if updates non-empty)

  bool operator==(const DcExecuteResp&) const = default;
  auto fields() { return std::tie(read_values, dot); }
};

/// Session opening (section 6.1-6.2): the session manager in the core
/// cloud authenticates the client and hands out one symmetric session key
/// per requested bucket — the keys that make end-to-end sealing work.
struct OpenSessionReq {
  UserId user = 0;
  std::vector<std::string> buckets;

  bool operator==(const OpenSessionReq&) const = default;
  auto fields() { return std::tie(user, buckets); }
};
struct OpenSessionResp {
  /// (bucket, key) pairs for the buckets the user is authorised to read;
  /// unauthorised buckets are omitted.
  std::vector<std::pair<std::string, std::uint64_t>> keys;

  bool operator==(const OpenSessionResp&) const = default;
  auto fields() { return std::tie(keys); }
};

// --- DC <-> DC --------------------------------------------------------------

struct ReplicateTxn {
  Transaction txn;

  bool operator==(const ReplicateTxn&) const = default;
  auto fields() { return std::tie(txn); }
};
struct DcGossip {
  DcId dc = 0;
  VersionVector state;

  bool operator==(const DcGossip&) const = default;
  auto fields() { return std::tie(dc, state); }
};

// --- Intra-DC shards ---------------------------------------------------------

struct ShardReadReq {
  ObjectKey key;
  Timestamp min_seq = 0;  // ClockSI read rule: wait until shard caught up

  bool operator==(const ShardReadReq&) const = default;
  auto fields() { return std::tie(key, min_seq); }
};
struct ShardReadResp {
  bool found = false;
  CrdtType type{};
  Bytes state;

  bool operator==(const ShardReadResp&) const = default;
  auto fields() { return std::tie(found, type, state); }
};
struct ShardPrepareReq {
  std::uint64_t txn_id = 0;
  std::vector<OpRecord> ops;  // ops owned by this shard

  bool operator==(const ShardPrepareReq&) const = default;
  auto fields() { return std::tie(txn_id, ops); }
};
struct ShardPrepareResp {
  std::uint64_t txn_id = 0;
  bool vote_commit = false;

  bool operator==(const ShardPrepareResp&) const = default;
  auto fields() { return std::tie(txn_id, vote_commit); }
};
struct ShardCommitMsg {
  std::uint64_t txn_id = 0;
  bool commit = false;
  Timestamp seq = 0;  // DC sequence number of the transaction
  Dot dot;

  bool operator==(const ShardCommitMsg&) const = default;
  auto fields() { return std::tie(txn_id, commit, seq, dot); }
};
struct ShardApplyMsg {
  Timestamp seq = 0;
  Dot dot;
  std::vector<OpRecord> ops;  // ops owned by this shard

  bool operator==(const ShardApplyMsg&) const = default;
  auto fields() { return std::tie(seq, dot, ops); }
};

// --- Peer group --------------------------------------------------------------

struct GroupJoinReq {
  NodeId node = 0;
  UserId user = 0;
  VersionVector state;  // causal compatibility check (section 5.2)
  std::vector<ObjectKey> interest;

  bool operator==(const GroupJoinReq&) const = default;
  auto fields() { return std::tie(node, user, state, interest); }
};
struct GroupJoinResp {
  bool accepted = false;
  std::uint64_t epoch = 0;
  std::vector<NodeId> members;  // includes the parent
  std::uint64_t session_key = 0;

  bool operator==(const GroupJoinResp&) const = default;
  auto fields() { return std::tie(accepted, epoch, members, session_key); }
};
struct GroupLeaveReq {
  NodeId node = 0;

  bool operator==(const GroupLeaveReq&) const = default;
  auto fields() { return std::tie(node); }
};
struct MembershipMsg {
  std::uint64_t epoch = 0;
  std::vector<NodeId> members;

  bool operator==(const MembershipMsg&) const = default;
  auto fields() { return std::tie(epoch, members); }
};
struct EpaxosEnvelope {
  std::uint64_t epoch = 0;
  consensus::EpaxosMsg msg;

  bool operator==(const EpaxosEnvelope&) const = default;
  auto fields() { return std::tie(epoch, msg); }
};
struct CatchupReq {
  NodeId node = 0;

  bool operator==(const CatchupReq&) const = default;
  auto fields() { return std::tie(node); }
};
struct CatchupResp {
  std::vector<consensus::CommitMsg> instances;
  std::vector<Transaction> txns;  // records referenced by the instances
  VersionVector cut;

  bool operator==(const CatchupResp&) const = default;
  auto fields() { return std::tie(instances, txns, cut); }
};
struct PeerFetchReq {
  ObjectKey key;
  bool subscribe = true;
  NodeId member = 0;

  bool operator==(const PeerFetchReq&) const = default;
  auto fields() { return std::tie(key, subscribe, member); }
};
struct PeerFetchResp {
  bool found = false;
  ObjectSnapshot snapshot;

  bool operator==(const PeerFetchResp&) const = default;
  auto fields() { return std::tie(found, snapshot); }
};
struct ResolutionMsg {
  Dot dot;
  DcId dc = 0;
  Timestamp ts = 0;
  VersionVector resolved_snapshot;

  bool operator==(const ResolutionMsg&) const = default;
  auto fields() { return std::tie(dot, dc, ts, resolved_snapshot); }
};
struct InterestUpdate {
  NodeId node = 0;
  std::vector<ObjectKey> keys;

  bool operator==(const InterestUpdate&) const = default;
  auto fields() { return std::tie(node, keys); }
};
struct UnsubscribeMsg {
  std::vector<ObjectKey> keys;

  bool operator==(const UnsubscribeMsg&) const = default;
  auto fields() { return std::tie(keys); }
};

/// Payload of an EPaxos command inside a peer group: the transaction plus,
/// for the PSI commit variant, the proposer's conflict signature (expected
/// count of delivered interfering commands per key). Every member computes
/// the same abort decision from it, deterministically.
struct GroupCommand {
  bool ordered = false;  // true = PSI-on-critical-path variant (§5.1.4)
  Transaction txn;
  std::vector<std::pair<ObjectKey, std::uint64_t>> expected;

  bool operator==(const GroupCommand&) const = default;
  auto fields() { return std::tie(ordered, txn, expected); }

  [[nodiscard]] Bytes to_bytes() const { return codec::to_bytes(*this); }
  static GroupCommand from_bytes(const Bytes& bytes) {
    return codec::from_bytes<GroupCommand>(bytes);
  }
};

}  // namespace colony::proto
