// Data-centre node: sequencer, geo-replication endpoint, edge session
// manager, and ClockSI coordinator over its shard servers.
//
// Externally a DC behaves as one sequential node (paper section 3.4): its
// transactions carry dense sequence numbers in component `dc_id` of the
// version vector. Internally it coordinates shard servers (section 3.6),
// replicates committed transactions to the other DCs over the mesh, tracks
// K-stability from gossiped state vectors (section 3.8), and serves edge
// sessions: interest-set subscriptions, pushes of K-stable transactions,
// commit acknowledgement, fetch, and migration.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "clock/hlc.hpp"
#include "core/txn.hpp"
#include "core/visibility.hpp"
#include "dc/messages.hpp"
#include "security/acl.hpp"
#include "security/crypto_sim.hpp"
#include "sim/rpc.hpp"
#include "storage/hash_ring.hpp"
#include "storage/journal_store.hpp"
#include "storage/wal.hpp"
#include "util/metrics.hpp"

namespace colony {

class ApplyPool;

struct DcConfig {
  DcId dc_id = 0;
  std::size_t num_dcs = 1;
  /// K-stability threshold: a transaction becomes visible to edge nodes
  /// only once >= K DCs know it (section 3.8). 1 <= K <= num_dcs.
  std::size_t k_stability = 1;
  SimTime gossip_interval = 100 * kMillisecond;
  /// Bake K-stable journal prefixes into base versions every N gossips.
  std::size_t base_advance_every = 50;
  /// Seed of the session-key service. All DCs of a deployment share it so
  /// a client can open a session at any DC (the authentication service is
  /// logically one, section 6.2).
  std::uint64_t key_seed = 0xC010;
  /// CPU cost of serving one client-facing RPC / one session push. Requests
  /// queue behind a single logical CPU, which is what saturates throughput
  /// in Figure 4. Scale rpc_service_time down for bigger DCs.
  SimTime rpc_service_time = 150 * kMicrosecond;
  SimTime push_service_time = 15 * kMicrosecond;
  /// A cloud-mode transaction execution (kDcExecute) costs more than a
  /// plain session RPC: it fans out shard reads and runs 2PC internally.
  SimTime execute_service_time = 225 * kMicrosecond;
  /// Durable write-ahead log, owned by the topology builder (the node only
  /// writes through the pointer). nullptr = no durability: such a node must
  /// never be crash-restarted (Cluster::crash_node degrades the fault to a
  /// plain outage instead).
  storage::Wal* disk = nullptr;
  /// Cadence of full-state checkpoints into the WAL (taken between
  /// handlers, where node state is consistent; skipped while no records
  /// accrued since the last one).
  SimTime checkpoint_interval = 400 * kMillisecond;
  /// Worker pool for parallel CRDT apply (DESIGN.md section 10), owned by
  /// the topology builder like `disk` and possibly shared with this DC's
  /// shard servers (handlers are serialised by the sim scheduler, so the
  /// pool's single-producer contract holds). nullptr = apply inline on the
  /// event thread; either way the observable state is byte-identical.
  ApplyPool* apply_pool = nullptr;
};

class DcNode final : public sim::RpcActor {
 public:
  /// `peers` are the other DC node ids; `shards` the shard-server node ids
  /// of this DC (the topology builder creates and links them).
  DcNode(sim::Network& net, NodeId id, DcConfig config,
         std::vector<NodeId> peers, std::vector<NodeId> shards);

  // --- introspection (tests & benches) -----------------------------------
  [[nodiscard]] const VersionVector& state_vector() const {
    return engine_.state_vector();
  }
  [[nodiscard]] VersionVector k_cut() const { return k_cut_; }
  [[nodiscard]] const JournalStore& store() const { return store_; }
  [[nodiscard]] const TxnStore& txns() const { return txns_; }
  [[nodiscard]] const VisibilityEngine& engine() const { return engine_; }
  [[nodiscard]] DcId dc_id() const { return config_.dc_id; }
  [[nodiscard]] std::uint64_t committed() const { return commit_counter_; }
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }

  /// The DC's current view of the policy object (nullptr = open policy).
  [[nodiscard]] const security::AclObject* acl() const;

  // --- durability (crash / restart) ---------------------------------------

  /// Kill the process: every piece of in-memory state is wiped and every
  /// outstanding RPC continuation forgotten. The node stays dead (traffic
  /// is dropped by the network, timers from the old incarnation die) until
  /// recover(). Requires a configured WAL — a node without one has nothing
  /// to come back from.
  void crash();

  /// Rebuild the node from its WAL: newest intact checkpoint, then tail
  /// replay through the same handler paths that produced the records. With
  /// `reconnect` (the live-restart path) the gossip and checkpoint timers
  /// restart and every session is rewound to its acknowledged prefix on
  /// the next push round; verify_recovery's offline replica passes false.
  void recover(bool reconnect = true);

  /// Prove recoverability in place: build an offline replica from a copy
  /// of the WAL and compare durable projections byte-for-byte.
  [[nodiscard]] bool verify_recovery(std::string* why = nullptr) const;

  /// The durable projection as bytes (the recovery invariant surface). The
  /// pool-size equivalence sweep byte-compares this across worker counts.
  [[nodiscard]] Bytes durable_bytes() const;

  [[nodiscard]] bool crashed() const { return crashed_; }

 protected:
  void on_message(NodeId from, std::uint32_t kind,
                  ByteView body) override;
  void on_request(NodeId from, std::uint32_t method,
                  ByteView payload, ReplyFn reply) override;

 private:
  void dispatch_request(NodeId from, std::uint32_t method,
                        const Bytes& payload, ReplyFn reply);
  struct EdgeSession {
    UserId user = 0;
    std::set<ObjectKey> interest;
    std::size_t cursor = 0;        // position in the DC visibility log
    VersionVector last_cut_sent;
    // Sender half of the acknowledged session channel (Go-Back-N): the
    // cursor above advances optimistically when a push is handed to the
    // network; the subscriber acks its contiguous receive prefix, and a
    // broken connection or an ack stall rewinds cursor and seq to the
    // acknowledged point. Dense sequence numbers (not log indices) let the
    // receiver tell a lost push from a merely-uninteresting log entry.
    std::uint64_t seq = 0;        // last session_seq handed to the network
    std::uint64_t acked_seq = 0;  // highest cumulative ack received
    std::size_t acked = 0;        // log position confirmed by those acks
    std::deque<std::pair<std::uint64_t, std::size_t>>
        outstanding;  // (seq, log index+1) of unacked pushes, seq order
    std::uint64_t acked_seq_last_tick = 0;  // stall-detection marker
    std::size_t stall_ticks = 0;
    bool connected = true;
  };

  // Handlers.
  void handle_edge_commit(NodeId from, const proto::EdgeCommitReq& req,
                          ReplyFn reply);
  void handle_subscribe(NodeId from, const proto::SubscribeReq& req,
                        ReplyFn reply);
  void handle_fetch(NodeId from, const proto::FetchReq& req, ReplyFn reply);
  void handle_migrate(NodeId from, const proto::MigrateReq& req,
                      ReplyFn reply);
  void handle_dc_execute(NodeId from, const proto::DcExecuteReq& req,
                         ReplyFn reply);
  void handle_replicate(const proto::ReplicateTxn& msg);
  void handle_gossip(NodeId from, const proto::DcGossip& msg);

  // Internals.
  void on_txn_visible(const Transaction& txn);
  void fan_out_to_shards(const Transaction& txn);
  void recompute_k_cut();
  void push_sessions();
  void push_session(NodeId node, EdgeSession& session);
  /// The cut this session may be told it covers: k_cut_ capped so that no
  /// log entry at or beyond the session cursor is inside it.
  [[nodiscard]] VersionVector session_cut(const EdgeSession& session) const;
  /// Rewind a session to its last acknowledged log position and force a
  /// fresh kStateUpdate: called when a broken connection (or a detected ack
  /// stall) may have dropped in-flight pushes. Replayed transactions are
  /// filtered by dot at the subscriber, so over-sending is safe.
  void resync_session(EdgeSession& session);
  void gossip_tick();
  [[nodiscard]] JournalStore::DotPredicate k_stable_predicate() const;
  [[nodiscard]] std::optional<ObjectSnapshot> export_k_stable(
      const ObjectKey& key) const;
  /// Assign this DC's next commit timestamp to a (new) transaction and make
  /// it visible. `txn.meta` must have a resolved concrete snapshot.
  Timestamp commit_here(Transaction txn);

  // --- durability internals ------------------------------------------------

  /// WAL record vocabulary. Every mutation of durable DC state is covered
  /// by exactly one record kind; session *progress* (cursor/seq/acks) is
  /// deliberately recordless — a restart rewinds each session to its
  /// acknowledged prefix through the same resync path a broken connection
  /// uses, and re-pushed entries are dot-filtered at the subscriber.
  enum DcWalRecord : std::uint32_t {
    kWalDcCommit = 1,       // Transaction sequenced here (commit assigned)
    kWalDcIngest = 2,       // Transaction learned from geo-replication
    kWalDcGossip = 3,       // proto::DcGossip merged into dc_states_
    kWalDcSession = 4,      // durable session snapshot after a mutation
    kWalDcAdvanceBase = 5,  // journal bases baked at the current K-cut
    kWalDcDot = 6,          // local_dot_counter_ after a bump
  };

  /// Should a mutation be logged right now? False without a disk, during
  /// WAL replay (records must not re-log themselves), and while crashed.
  [[nodiscard]] bool wal_enabled() const {
    return config_.disk != nullptr && !recovering_ && !crashed_;
  }
  void log_record(std::uint32_t type, const Encoder& payload);
  void log_session(NodeId node, const EdgeSession& session);
  void replay_record(std::uint32_t type, ByteView payload);
  void encode_checkpoint(Encoder& enc) const;
  void decode_checkpoint(ByteView snapshot);
  /// The recovery-invariant projection: every field the WAL contract
  /// promises to restore exactly. Excludes volatile fields (CPU queue,
  /// parked executions, gossip cadence) and session progress counters.
  void encode_durable(Encoder& enc) const;
  /// Bake K-stable journal prefixes into base versions (gossip cadence
  /// live; replayed at the logged point during recovery).
  void advance_bases();
  void schedule_gossip();
  void schedule_checkpoint();
  void checkpoint_tick();

  DcConfig config_;
  std::vector<NodeId> peers_;
  std::vector<NodeId> shard_nodes_;
  HashRing ring_;

  TxnStore txns_;
  JournalStore store_;
  VisibilityEngine engine_;
  HybridLogicalClock hlc_;
  security::KeyService keys_;

  Timestamp commit_counter_ = 0;
  std::vector<Dot> my_commits_;  // txns sequenced here, in ts order
  std::uint64_t local_dot_counter_ = 0;
  std::vector<VersionVector> dc_states_;
  VersionVector k_cut_;
  std::map<NodeId, EdgeSession> sessions_;
  std::size_t gossip_count_ = 0;
  SimTime busy_until_ = 0;  // single logical CPU; models saturation

  /// Migrated transactions waiting for their primed snapshot (section 3.9).
  struct WaitingExec {
    NodeId from;
    proto::DcExecuteReq req;
    ReplyFn reply;
  };
  std::vector<WaitingExec> waiting_execs_;

  // Durability state. `incarnation_` stamps every timer chain and deferred
  // dispatch this node schedules; crash() (and recover()) bump it so
  // callbacks from a dead incarnation self-cancel instead of mutating the
  // reborn node.
  bool crashed_ = false;
  bool recovering_ = false;  // replaying WAL: suppress logging & side effects
  std::uint64_t incarnation_ = 0;
};

}  // namespace colony
