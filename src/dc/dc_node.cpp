#include "dc/dc_node.hpp"

#include <algorithm>

#include "security/sealed.hpp"
#include "storage/apply_pool.hpp"
#include "util/assert.hpp"

namespace colony {

DcNode::DcNode(sim::Network& net, NodeId id, DcConfig config,
               std::vector<NodeId> peers, std::vector<NodeId> shards)
    : RpcActor(net, id),
      config_(config),
      peers_(std::move(peers)),
      shard_nodes_(std::move(shards)),
      engine_(txns_, store_, config.num_dcs),
      keys_(config.key_seed),
      dc_states_(config.num_dcs, VersionVector(config.num_dcs)),
      k_cut_(config.num_dcs) {
  security::register_acl_crdt();
  security::register_sealed_crdt();
  COLONY_ASSERT(config_.k_stability >= 1 &&
                    config_.k_stability <= config_.num_dcs,
                "K must be in [1, num_dcs]");
  COLONY_ASSERT(!shard_nodes_.empty(), "a DC needs at least one shard");
  for (std::uint32_t s = 0; s < shard_nodes_.size(); ++s) ring_.add_shard(s);
  if (config_.apply_pool != nullptr) {
    store_.set_apply_pool(config_.apply_pool);
  }

  // A DC applies the full commit stream of every peer, so its state-vector
  // components advance contiguously (see VisibilityEngine).
  engine_.set_sequential_components(true);
  engine_.set_visible_hook(
      [this](const Transaction& txn) { on_txn_visible(txn); });
  engine_.set_security_check([this](const Transaction& txn) {
    return security::txn_allowed(acl(), txn);
  });
  engine_.set_policy_key(security::acl_object_key());

  schedule_gossip();
  if (config_.disk != nullptr) schedule_checkpoint();
}

const security::AclObject* DcNode::acl() const {
  const Crdt* obj = store_.current(security::acl_object_key());
  return obj == nullptr ? nullptr
                        : dynamic_cast<const security::AclObject*>(obj);
}

// ---------------------------------------------------------------------------
// Visibility hook: shard fan-out, geo-replication, session pushes.
// ---------------------------------------------------------------------------

void DcNode::on_txn_visible(const Transaction& txn) {
  // A policy update re-evaluates the security mask over the history
  // (sections 5.3, 6.4): previously visible values may disappear and
  // previously masked ones may surface.
  for (const OpRecord& op : txn.ops) {
    if (op.key == security::acl_object_key()) {
      engine_.recompute_masks();
      break;
    }
  }
  fan_out_to_shards(txn);
  // Parked migrated transactions may now have their snapshot.
  if (!waiting_execs_.empty()) {
    std::vector<WaitingExec> ready;
    for (auto it = waiting_execs_.begin(); it != waiting_execs_.end();) {
      if (it->req.min_snapshot.leq(engine_.state_vector())) {
        ready.push_back(std::move(*it));
        it = waiting_execs_.erase(it);
      } else {
        ++it;
      }
    }
    for (WaitingExec& w : ready) {
      handle_dc_execute(w.from, w.req, std::move(w.reply));
    }
  }
  if (txn.meta.accepted_by(config_.dc_id) && !recovering_) {
    // This DC sequenced the transaction: replicate it over the mesh in
    // commit order (per-link FIFO preserves it). Suppressed during WAL
    // replay — the live run already replicated, and anti-entropy repairs
    // any peer that genuinely missed it.
    for (const NodeId peer : peers_) {
      tell(peer, proto::kReplicateTxn, proto::ReplicateTxn{txn});
    }
  }
  dc_states_[config_.dc_id] = engine_.state_vector();
  recompute_k_cut();
  push_sessions();
}

void DcNode::fan_out_to_shards(const Transaction& txn) {
  // WAL replay rebuilds only this node; shards keep (or separately rebuild)
  // their own state, and re-fanning the history out would double-apply.
  if (recovering_) return;
  const Timestamp seq = engine_.log().size();
  std::map<std::uint32_t, std::vector<OpRecord>> by_shard;
  for (const OpRecord& op : txn.ops) {
    by_shard[ring_.owner(op.key)].push_back(op);
  }
  for (std::uint32_t s = 0; s < shard_nodes_.size(); ++s) {
    proto::ShardApplyMsg msg;
    msg.seq = seq;
    msg.dot = txn.meta.dot;
    const auto it = by_shard.find(s);
    if (it != by_shard.end()) msg.ops = std::move(it->second);
    // Every shard gets the seq advance (even without ops) so ClockSI reads
    // at this snapshot do not stall on untouched shards.
    tell(shard_nodes_[s], proto::kShardApply, std::move(msg));
  }
}

void DcNode::recompute_k_cut() {
  k_cut_ = k_stable_cut(dc_states_, config_.k_stability);
  // Cap the cut by what this DC has itself applied: gossip can prove a
  // transaction K-replicated *elsewhere* while a partition still keeps it
  // from us. Announcing such a cut to a session would claim coverage of
  // values this DC never delivered — a subscriber would seed its state
  // past them and show their successors first. Our state components
  // advance contiguously (sequential mode), so a component-wise min is a
  // sound causal cut.
  const VersionVector& mine = engine_.state_vector();
  for (DcId dc = 0; dc < k_cut_.size(); ++dc) {
    k_cut_.set(dc, std::min(k_cut_.at(dc), mine.at(dc)));
  }
}

JournalStore::DotPredicate DcNode::k_stable_predicate() const {
  const VersionVector cut = k_cut_;
  return [this, cut](const Dot& dot) {
    return engine_.is_applied(dot) && !engine_.is_masked(dot) &&
           txns_.visible_at(dot, cut);
  };
}

std::optional<ObjectSnapshot> DcNode::export_k_stable(
    const ObjectKey& key) const {
  return store_.export_at(key, k_stable_predicate());
}

// ---------------------------------------------------------------------------
// Gossip / K-stability.
// ---------------------------------------------------------------------------

void DcNode::gossip_tick() {
  dc_states_[config_.dc_id] = engine_.state_vector();
  for (const NodeId peer : peers_) {
    tell(peer, proto::kDcGossip,
         proto::DcGossip{config_.dc_id, engine_.state_vector()});
  }
  recompute_k_cut();
  for (auto& [node, session] : sessions_) {
    // An outstanding push whose ack makes no progress for several ticks
    // means it (or its ack) was dropped in a crash window the liveness
    // poll never observed — the receiver withholds acks on a gap: resync.
    if (!session.outstanding.empty() &&
        session.acked_seq == session.acked_seq_last_tick) {
      if (++session.stall_ticks >= 5) resync_session(session);
    } else {
      session.stall_ticks = 0;
    }
    session.acked_seq_last_tick = session.acked_seq;
  }
  push_sessions();

  if (++gossip_count_ % config_.base_advance_every == 0) {
    // Baking bases folds K-stable journal prefixes into base versions —
    // a destructive, cut-dependent rewrite. Log it so replay re-bakes at
    // the same point with the same cut (gossip records restored it).
    log_record(kWalDcAdvanceBase, Encoder{});
    advance_bases();
  }
  schedule_gossip();
}

void DcNode::advance_bases() {
  const auto pred = k_stable_predicate();
  for (const ObjectKey& key : store_.keys()) {
    store_.advance_base(key, pred);
  }
}

void DcNode::handle_gossip(NodeId from, const proto::DcGossip& msg) {
  COLONY_ASSERT(msg.dc < dc_states_.size(), "gossip from unknown DC");
  if (wal_enabled()) {
    // Gossip advances dc_states_, which advance_bases() bakes into journal
    // base versions — so the merged vectors must be reproducible at each
    // logged base advance. Log the message, not the merged result: replay
    // re-runs this handler.
    Encoder rec;
    codec::write(rec, msg);
    log_record(kWalDcGossip, rec);
  }
  dc_states_[msg.dc].merge(msg.state);

  // Anti-entropy: replication is fire-and-forget, so a mesh partition can
  // lose transactions. The gossiped state vector exposes the gap — re-send
  // the suffix of our commit stream the peer is missing. Suppressed during
  // WAL replay (the peer is not actually behind; `from` is synthetic).
  const Timestamp peer_has = msg.state.at(config_.dc_id);
  if (peer_has < commit_counter_ && !recovering_) {
    for (std::size_t i = static_cast<std::size_t>(peer_has);
         i < my_commits_.size(); ++i) {
      const Transaction* txn = txns_.find(my_commits_[i]);
      COLONY_ASSERT(txn != nullptr, "commit stream references unknown txn");
      tell(from, proto::kReplicateTxn, proto::ReplicateTxn{*txn});
    }
  }

  recompute_k_cut();
  push_sessions();
}

// ---------------------------------------------------------------------------
// Session pushes.
// ---------------------------------------------------------------------------

void DcNode::push_sessions() {
  // No pushes during WAL replay: the sequence stream must not advance past
  // what the live run handed to the network (sessions resync on restart).
  if (recovering_) return;
  for (auto& [node, session] : sessions_) {
    push_session(node, session);
  }
}

void DcNode::push_session(NodeId node, EdgeSession& session) {
  // A down uplink — or a crashed endpoint — would silently swallow pushes
  // while the cursor advances, leaving the session permanently stale; pause
  // instead (TCP-like: the sender knows the connection is gone) and resume
  // on the next tick.
  if (!net_.link_up(id(), node) || !net_.node_up(node) ||
      !net_.node_up(id())) {
    session.connected = false;
    return;
  }
  if (!session.connected) {
    // The connection is back. Anything in flight when it broke was lost
    // after the cursor had already advanced past it — resync from the last
    // acknowledged position.
    session.connected = true;
    resync_session(session);
  }
  const auto& log = engine_.log().entries();
  // Push the K-stable prefix of the visibility log that intersects the
  // session's interest set, in log (causal) order.
  while (session.cursor < log.size()) {
    const Dot& dot = log[session.cursor];
    if (!txns_.visible_at(dot, k_cut_)) break;  // not K-stable yet
    const Transaction* txn = txns_.find(dot);
    COLONY_ASSERT(txn != nullptr, "log references unknown txn");
    if (!engine_.is_masked(dot)) {
      const bool interesting =
          std::any_of(txn->ops.begin(), txn->ops.end(),
                      [&](const OpRecord& op) {
                        return session.interest.contains(op.key) ||
                               op.key == security::acl_object_key();
                      });
      if (interesting) {
        proto::PushTxn push{*txn};
        push.session_seq = ++session.seq;
        session.outstanding.emplace_back(session.seq, session.cursor + 1);
        tell(node, proto::kPushTxn, std::move(push));
        // Pushes consume DC CPU; they delay later request processing.
        busy_until_ = std::max(busy_until_, net_.now()) +
                      config_.push_service_time;
      }
    }
    ++session.cursor;
  }
  const VersionVector cut = session_cut(session);
  if (!(cut == session.last_cut_sent)) {
    session.last_cut_sent = cut;
    tell(node, proto::kStateUpdate, proto::StateUpdate{cut, session.seq});
  }
}

VersionVector DcNode::session_cut(const EdgeSession& session) const {
  // A cut announced over a session asserts "everything interesting below
  // this has been delivered to you (or sits in the snapshots you were
  // given)". k_cut_ alone does not satisfy that premise: the push loop
  // stops at the first non-K-stable *log* entry, while later log entries
  // can already be K-stable (commit order differs from apply order across
  // sequencers) and hence inside k_cut_ — yet they were never pushed.
  // Cap each component so no log entry at or beyond the cursor is covered;
  // the subscriber would otherwise seed past values only a second channel
  // (after a migration) could show it first.
  VersionVector cut = k_cut_;
  const auto& log = engine_.log().entries();
  for (std::size_t i = session.cursor; i < log.size(); ++i) {
    const Transaction* txn = txns_.find(log[i]);
    if (txn == nullptr) continue;
    for (DcId dc = 0; dc < cut.size(); ++dc) {
      if (!txn->meta.accepted_by(dc)) continue;
      const Timestamp ts = txn->meta.commit.at(dc);
      if (ts != 0 && ts <= cut.at(dc)) cut.set(dc, ts - 1);
    }
  }
  return cut;
}

void DcNode::resync_session(EdgeSession& session) {
  session.cursor = std::min(session.cursor, session.acked);
  // Go-Back-N: restart the sequence stream at the acknowledged prefix so
  // re-pushed entries are contiguous with what the subscriber last
  // confirmed. Its dot filter drops anything it already had.
  session.seq = session.acked_seq;
  session.outstanding.clear();
  session.stall_ticks = 0;
  // Clear the cut memo so the next push round re-announces the K-stable
  // cut: a kStateUpdate lost with the connection would otherwise only be
  // repaired by the *next* cut advance, which may never come.
  session.last_cut_sent = VersionVector{};
}

// ---------------------------------------------------------------------------
// Commit paths.
// ---------------------------------------------------------------------------

Timestamp DcNode::commit_here(Transaction txn) {
  const Timestamp ts = ++commit_counter_;
  txn.meta.mark_accepted(config_.dc_id, ts);
  my_commits_.push_back(txn.meta.dot);
  if (wal_enabled()) {
    // Logged post-mark: the record carries the assigned timestamp, and
    // replay (which runs back through this function) asserts the counter
    // re-derives it.
    Encoder rec;
    txn.encode(rec);
    log_record(kWalDcCommit, rec);
  }
  engine_.ingest(std::move(txn));
  return ts;
}

void DcNode::handle_edge_commit(NodeId /*from*/,
                                const proto::EdgeCommitReq& req,
                                ReplyFn reply) {
  const Dot dot = req.txn.meta.dot;

  // Duplicate (e.g. re-sent after migration, section 3.8): answer with the
  // existing commit information instead of sequencing it twice.
  if (const Transaction* known = txns_.find(dot);
      known != nullptr && known->meta.concrete) {
    const DcId dc = known->meta.first_accepted();
    reply(codec::to_bytes(proto::EdgeCommitResp{
        dot, dc, known->meta.commit.at(dc), known->meta.snapshot}));
    return;
  }

  // Resolve the symbolic snapshot: all same-origin pending deps must be
  // known and concrete here.
  Transaction txn = req.txn;
  VersionVector eff = txn.meta.snapshot;
  for (const Dot& dep : txn.meta.pending_deps) {
    const Transaction* d = txns_.find(dep);
    if (d == nullptr || !d->meta.concrete) {
      reply(Error{Error::Code::kIncompatible,
                  "missing dependency " + dep.to_string()});
      return;
    }
    eff.merge(d->meta.commit_lub());
  }
  if (!eff.leq(engine_.state_vector())) {
    // The edge depends on transactions this DC has not seen (causal
    // incompatibility after migration, section 3.8).
    reply(Error{Error::Code::kIncompatible, "snapshot ahead of DC state"});
    return;
  }
  txn.meta.snapshot = eff;
  txn.meta.pending_deps.clear();
  const Timestamp ts = commit_here(std::move(txn));
  reply(codec::to_bytes(proto::EdgeCommitResp{dot, config_.dc_id, ts, eff}));
}

void DcNode::handle_dc_execute(NodeId from, const proto::DcExecuteReq& req,
                               ReplyFn reply) {
  // Migrated transaction (section 3.9): the client primed the snapshot
  // with its own state vector; wait until this DC's state covers it (the
  // client's own transactions arrive through the commit path first).
  if (!req.min_snapshot.leq(engine_.state_vector())) {
    waiting_execs_.push_back(WaitingExec{from, req, std::move(reply)});
    return;
  }
  // Cloud-mode / migrated transaction: read at the current snapshot via the
  // owning shards (ClockSI read rule), then commit updates with 2PC.
  struct Context {
    proto::DcExecuteResp resp;
    std::size_t awaited = 0;
    bool failed = false;
    ReplyFn reply;
    proto::DcExecuteReq req;
  };
  auto ctx = std::make_shared<Context>();
  ctx->reply = std::move(reply);
  ctx->req = req;
  ctx->resp.read_values.resize(req.reads.size());

  const Timestamp snapshot_seq = engine_.log().size();

  auto finish_reads = [this, ctx] {
    if (ctx->failed) {
      ctx->reply(Error{Error::Code::kUnavailable, "shard read failed"});
      return;
    }
    if (ctx->req.updates.empty()) {
      ctx->reply(codec::to_bytes(ctx->resp));
      return;
    }
    // Two-phase commit across the owning shards.
    std::map<std::uint32_t, std::vector<OpRecord>> by_shard;
    for (const OpRecord& op : ctx->req.updates) {
      by_shard[ring_.owner(op.key)].push_back(op);
    }
    const std::uint64_t txn_id = ++local_dot_counter_;
    if (wal_enabled()) {
      // The counter mints dots; reusing one after a restart would alias
      // two distinct transactions. Both bump sites log the new value.
      Encoder rec;
      rec.u64(local_dot_counter_);
      log_record(kWalDcDot, rec);
    }
    auto votes = std::make_shared<std::size_t>(by_shard.size());
    auto ok = std::make_shared<bool>(true);
    for (const auto& [shard, ops] : by_shard) {
      call(shard_nodes_[shard], proto::kShardPrepare,
           proto::ShardPrepareReq{txn_id, ops},
           [this, ctx, votes, ok, txn_id, by_shard](Result<Bytes> r) {
             if (!r.ok() ||
                 !codec::from_bytes<proto::ShardPrepareResp>(r.value())
                      .vote_commit) {
               *ok = false;
             }
             if (--*votes != 0) return;
             if (!*ok) {
               for (const auto& [shard2, _] : by_shard) {
                 tell(shard_nodes_[shard2], proto::kShardCommit,
                      proto::ShardCommitMsg{txn_id, false, 0, Dot{}});
               }
               ctx->reply(Error{Error::Code::kAborted, "2PC abort"});
               return;
             }
             // All voted commit: sequence the transaction.
             Transaction txn;
             txn.meta.dot = Dot{id(), ++local_dot_counter_};
             if (wal_enabled()) {
               Encoder rec;
               rec.u64(local_dot_counter_);
               log_record(kWalDcDot, rec);
             }
             txn.meta.origin = id();
             txn.meta.user = ctx->req.user;
             txn.meta.snapshot = engine_.state_vector();
             txn.ops = ctx->req.updates;
             ctx->resp.dot = txn.meta.dot;
             const Timestamp ts = commit_here(std::move(txn));
             for (const auto& [shard2, _] : by_shard) {
               tell(shard_nodes_[shard2], proto::kShardCommit,
                    proto::ShardCommitMsg{txn_id, true, ts,
                                          ctx->resp.dot});
             }
             ctx->reply(codec::to_bytes(ctx->resp));
           });
    }
  };

  if (req.reads.empty()) {
    finish_reads();
    return;
  }
  ctx->awaited = req.reads.size();
  for (std::size_t i = 0; i < req.reads.size(); ++i) {
    const ObjectKey& key = req.reads[i];
    call(shard_nodes_[ring_.owner(key)], proto::kShardRead,
         proto::ShardReadReq{key, snapshot_seq},
         [ctx, i, key, finish_reads](Result<Bytes> r) {
           if (!r.ok()) {
             ctx->failed = true;
           } else {
             const auto resp =
                 codec::from_bytes<proto::ShardReadResp>(r.value());
             ObjectSnapshot snap;
             snap.key = key;
             if (resp.found) {
               snap.type = resp.type;
               snap.state = resp.state;
             }
             ctx->resp.read_values[i] = std::move(snap);
           }
           if (--ctx->awaited == 0) finish_reads();
         });
  }
}

// ---------------------------------------------------------------------------
// Subscriptions, fetch, migration.
// ---------------------------------------------------------------------------

void DcNode::handle_subscribe(NodeId from, const proto::SubscribeReq& req,
                              ReplyFn reply) {
  EdgeSession& session = sessions_[from];
  session.user = req.user;
  if (session.cursor == 0) {
    // Fresh session: start pushing from the current K-stable boundary; the
    // snapshots below carry the history.
    const auto& log = engine_.log().entries();
    std::size_t boundary = 0;
    while (boundary < log.size() &&
           txns_.visible_at(log[boundary], k_cut_)) {
      ++boundary;
    }
    session.cursor = boundary;
    session.acked = boundary;
  }
  proto::SubscribeResp resp;
  resp.cut = session_cut(session);
  for (const ObjectKey& key : req.keys) {
    session.interest.insert(key);
    if (auto snap = export_k_stable(key)) {
      resp.snapshots.push_back(std::move(*snap));
    }
  }
  session.last_cut_sent = resp.cut;
  log_session(from, session);
  reply(codec::to_bytes(resp));
}

void DcNode::handle_fetch(NodeId from, const proto::FetchReq& req,
                          ReplyFn reply) {
  if (req.subscribe) {
    EdgeSession& session = sessions_[from];
    if (req.user != 0) session.user = req.user;
    session.interest.insert(req.key);
    if (session.cursor == 0) {
      const auto& log = engine_.log().entries();
      std::size_t boundary = 0;
      while (boundary < log.size() &&
             txns_.visible_at(log[boundary], k_cut_)) {
        ++boundary;
      }
      session.cursor = boundary;
      session.acked = boundary;
    }
    log_session(from, session);
  }
  auto snap = export_k_stable(req.key);
  if (!snap.has_value()) {
    reply(Error{Error::Code::kNotFound, "object unknown: " + req.key.full()});
    return;
  }
  // Cap by the session channel like push_session does; a fetch without a
  // session (req.subscribe == false) gets the uncapped cut only merged
  // into the snapshot import of this single key, which the snapshot
  // itself backs.
  const auto sit = sessions_.find(from);
  const VersionVector cut =
      sit == sessions_.end() ? k_cut_ : session_cut(sit->second);
  reply(codec::to_bytes(proto::FetchResp{std::move(*snap), cut}));
}

void DcNode::handle_migrate(NodeId from, const proto::MigrateReq& req,
                            ReplyFn reply) {
  proto::MigrateResp resp;
  resp.cut = k_cut_;  // informational; the edge seeds only session cuts
  // Causal compatibility (section 3.8): this DC's state must include the
  // edge node's dependencies.
  if (!req.state.leq(engine_.state_vector())) {
    resp.compatible = false;
    reply(codec::to_bytes(resp));
    return;
  }
  EdgeSession& session = sessions_[from];
  session.user = req.user;
  session.interest.insert(req.interest.begin(), req.interest.end());
  if (session.cursor == 0) {
    // Unlike a fresh subscription (which starts at the K-stable boundary
    // because the snapshots in the reply carry the history), a migrated
    // session must backfill from the first log entry the edge does not
    // provably possess: entries between that point and our boundary may
    // only ever arrive over this channel — the old DC can be partitioned,
    // crashed, or simply behind. The scan uses the edge's possessed cut,
    // not its state vector (which read-my-writes resolution inflates past
    // possession). Entries the edge did get over its old channel are
    // dropped by its dot filter.
    const auto& log = engine_.log().entries();
    std::size_t boundary = 0;
    while (boundary < log.size() &&
           txns_.visible_at(log[boundary], req.possessed)) {
      ++boundary;
    }
    session.cursor = boundary;
    session.acked = boundary;
  }
  log_session(from, session);
  resp.compatible = true;
  reply(codec::to_bytes(resp));
}

// ---------------------------------------------------------------------------
// Replication ingest.
// ---------------------------------------------------------------------------

void DcNode::handle_replicate(const proto::ReplicateTxn& msg) {
  if (wal_enabled()) {
    Encoder rec;
    msg.txn.encode(rec);
    log_record(kWalDcIngest, rec);
  }
  engine_.ingest(msg.txn);
  dc_states_[config_.dc_id] = engine_.state_vector();
  recompute_k_cut();
  push_sessions();
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

void DcNode::on_message(NodeId from, std::uint32_t kind,
                        ByteView body) {
  if (crashed_) return;  // dead process: frames fall on the floor
  switch (kind) {
    case proto::kReplicateTxn:
      handle_replicate(codec::from_bytes<proto::ReplicateTxn>(body));
      break;
    case proto::kDcGossip:
      handle_gossip(from, codec::from_bytes<proto::DcGossip>(body));
      break;
    case proto::kPushAck: {
      const auto msg = codec::from_bytes<proto::PushAck>(body);
      const auto it = sessions_.find(from);
      if (it != sessions_.end()) {
        EdgeSession& session = it->second;
        session.acked_seq = std::max(session.acked_seq, msg.seq);
        while (!session.outstanding.empty() &&
               session.outstanding.front().first <= msg.seq) {
          session.acked =
              std::max(session.acked, session.outstanding.front().second);
          session.outstanding.pop_front();
        }
      }
      break;
    }
    case proto::kUnsubscribe: {
      const auto msg = codec::from_bytes<proto::UnsubscribeMsg>(body);
      const auto it = sessions_.find(from);
      if (it != sessions_.end()) {
        for (const ObjectKey& key : msg.keys) it->second.interest.erase(key);
        log_session(from, it->second);
      }
      break;
    }
    default:
      break;  // unknown one-way messages are ignored (forward compat)
  }
}

void DcNode::on_request(NodeId from, std::uint32_t method,
                        ByteView payload, ReplyFn reply) {
  if (crashed_) return;  // dead process: the caller's RPC times out
  // Client-facing requests queue behind the DC's logical CPU; the queueing
  // delay under load is what bends the Figure 4 latency curve upward.
  const SimTime service = method == proto::kDcExecute
                              ? config_.execute_service_time
                              : config_.rpc_service_time;
  const SimTime start = std::max(net_.now(), busy_until_);
  busy_until_ = start + service;
  // The deferred dispatch outlives the delivered frame, so it owns a copy
  // of the payload (the one place the request path still materialises).
  // It is stamped with the incarnation: a request queued behind the CPU
  // when the node crashes must die with the old process image.
  net_.scheduler().at(
      busy_until_,
      [this, inc = incarnation_, from, method,
       payload = Bytes(payload.begin(), payload.end()),
       reply = std::move(reply)]() mutable {
        if (inc != incarnation_) return;
        dispatch_request(from, method, payload, std::move(reply));
      });
}

void DcNode::dispatch_request(NodeId from, std::uint32_t method,
                              const Bytes& payload, ReplyFn reply) {
  switch (method) {
    case proto::kEdgeCommit:
      handle_edge_commit(from,
                         codec::from_bytes<proto::EdgeCommitReq>(payload),
                         std::move(reply));
      break;
    case proto::kSubscribe:
      handle_subscribe(from, codec::from_bytes<proto::SubscribeReq>(payload),
                       std::move(reply));
      break;
    case proto::kFetchObject:
      handle_fetch(from, codec::from_bytes<proto::FetchReq>(payload),
                   std::move(reply));
      break;
    case proto::kMigrate:
      handle_migrate(from, codec::from_bytes<proto::MigrateReq>(payload),
                     std::move(reply));
      break;
    case proto::kDcExecute:
      handle_dc_execute(from,
                        codec::from_bytes<proto::DcExecuteReq>(payload),
                        std::move(reply));
      break;
    case proto::kOpenSession: {
      // Session opening (section 6.2): authenticate and hand out session
      // keys for the buckets the user may read. With an open policy (no
      // ACL installed) everyone is authorised.
      const auto req = codec::from_bytes<proto::OpenSessionReq>(payload);
      proto::OpenSessionResp resp;
      const security::AclObject* policy = acl();
      for (const std::string& bucket : req.buckets) {
        const bool authorised =
            policy == nullptr || policy->grant_count() == 0 ||
            policy->check(bucket, req.user, security::Permission::kRead);
        if (!authorised) continue;
        keys_.authorize(bucket, req.user);
        resp.keys.emplace_back(bucket, *keys_.key_for(bucket, req.user));
      }
      reply(codec::to_bytes(resp));
      break;
    }
    default:
      reply(Error{Error::Code::kInvalidArgument, "unknown DC method"});
  }
}

// ---------------------------------------------------------------------------
// Durability: WAL logging, checkpoints, crash, recovery.
// ---------------------------------------------------------------------------

void DcNode::log_record(std::uint32_t type, const Encoder& payload) {
  if (!wal_enabled()) return;
  config_.disk->append(type, payload.data());
}

void DcNode::log_session(NodeId node, const EdgeSession& session) {
  if (!wal_enabled()) return;
  // Durable session identity: who is subscribed to what, plus the channel
  // position at mutation time. The position goes stale as pushes and acks
  // advance it recordlessly — recovery compensates by reconnect-resyncing
  // every session, which rewinds to the acknowledged prefix and relies on
  // the subscriber's dot filter to drop re-pushed duplicates.
  Encoder rec;
  rec.u64(node);
  rec.u64(session.user);
  codec::write(rec, session.interest);
  rec.u64(session.cursor);
  rec.u64(session.acked);
  rec.u64(session.seq);
  rec.u64(session.acked_seq);
  log_record(kWalDcSession, rec);
}

void DcNode::replay_record(std::uint32_t type, ByteView payload) {
  Decoder dec(payload);
  switch (type) {
    case kWalDcCommit: {
      Transaction txn = Transaction::decode(dec);
      COLONY_ASSERT(dec.ok() && dec.done(), "torn kWalDcCommit payload");
      const Timestamp recorded = txn.meta.commit.at(config_.dc_id);
      // Re-sequencing through the live path re-derives the timestamp from
      // the restored counter; mark_accepted is idempotent on the replayed
      // metadata. A disagreement means the WAL is not a faithful prefix.
      const Timestamp ts = commit_here(std::move(txn));
      COLONY_ASSERT(ts == recorded, "WAL replay re-sequenced a commit");
      break;
    }
    case kWalDcIngest: {
      proto::ReplicateTxn msg{Transaction::decode(dec)};
      COLONY_ASSERT(dec.ok() && dec.done(), "torn kWalDcIngest payload");
      handle_replicate(msg);
      break;
    }
    case kWalDcGossip: {
      const auto msg = codec::read<proto::DcGossip>(dec);
      COLONY_ASSERT(dec.ok() && dec.done(), "torn kWalDcGossip payload");
      handle_gossip(/*from=*/0, msg);
      break;
    }
    case kWalDcSession: {
      const NodeId node = dec.u64();
      EdgeSession& session = sessions_[node];
      session.user = dec.u64();
      session.interest = codec::read<std::set<ObjectKey>>(dec);
      session.cursor = static_cast<std::size_t>(dec.u64());
      session.acked = static_cast<std::size_t>(dec.u64());
      session.seq = dec.u64();
      session.acked_seq = dec.u64();
      COLONY_ASSERT(dec.ok() && dec.done(), "torn kWalDcSession payload");
      break;
    }
    case kWalDcAdvanceBase: {
      COLONY_ASSERT(dec.done(), "kWalDcAdvanceBase carries no payload");
      // The live bake ran right after a gossip tick refreshed this DC's own
      // entry and the cut; reproduce both before re-baking.
      dc_states_[config_.dc_id] = engine_.state_vector();
      recompute_k_cut();
      advance_bases();
      break;
    }
    case kWalDcDot: {
      local_dot_counter_ = dec.u64();
      COLONY_ASSERT(dec.ok() && dec.done(), "torn kWalDcDot payload");
      break;
    }
    default:
      COLONY_ASSERT(false, "unknown DC WAL record type");
  }
}

void DcNode::encode_checkpoint(Encoder& enc) const {
  enc.u32(1);  // checkpoint layout version
  enc.u64(commit_counter_);
  enc.u64(local_dot_counter_);
  enc.u64(gossip_count_);
  enc.u64(hlc_.last());
  codec::write(enc, my_commits_);
  codec::write(enc, dc_states_);
  enc.u32(static_cast<std::uint32_t>(sessions_.size()));
  for (const auto& [node, session] : sessions_) {
    enc.u64(node);
    enc.u64(session.user);
    codec::write(enc, session.interest);
    enc.u64(session.cursor);
    enc.u64(session.acked);
    enc.u64(session.seq);
    enc.u64(session.acked_seq);
  }
  txns_.encode(enc);
  store_.encode(enc);
  engine_.encode_state(enc);
}

void DcNode::decode_checkpoint(ByteView snapshot) {
  Decoder dec(snapshot);
  const std::uint32_t version = dec.u32();
  COLONY_ASSERT(version == 1, "unknown DC checkpoint layout");
  commit_counter_ = dec.u64();
  local_dot_counter_ = dec.u64();
  gossip_count_ = dec.u64();
  hlc_.restore(dec.u64());
  my_commits_ = codec::read<std::vector<Dot>>(dec);
  dc_states_ = codec::read<std::vector<VersionVector>>(dec);
  COLONY_ASSERT(dc_states_.size() == config_.num_dcs,
                "checkpoint from a different topology");
  sessions_.clear();
  const std::uint32_t session_count = dec.u32();
  for (std::uint32_t i = 0; i < session_count && dec.ok(); ++i) {
    const NodeId node = dec.u64();
    EdgeSession& session = sessions_[node];
    session.user = dec.u64();
    session.interest = codec::read<std::set<ObjectKey>>(dec);
    session.cursor = static_cast<std::size_t>(dec.u64());
    session.acked = static_cast<std::size_t>(dec.u64());
    session.seq = dec.u64();
    session.acked_seq = dec.u64();
  }
  txns_.decode(dec);
  store_.decode(dec);
  engine_.decode_state(dec);
  recompute_k_cut();
  COLONY_ASSERT(dec.ok() && dec.done(), "DC checkpoint decode mismatch");
}

void DcNode::encode_durable(Encoder& enc) const {
  enc.u64(commit_counter_);
  enc.u64(local_dot_counter_);
  codec::write(enc, my_commits_);
  codec::write(enc, dc_states_);
  enc.u32(static_cast<std::uint32_t>(sessions_.size()));
  for (const auto& [node, session] : sessions_) {
    // Identity only: channel positions drift recordlessly between session
    // mutations (pushes, acks) and are re-established by the reconnect
    // resync, so they are outside the exact-restoration contract.
    enc.u64(node);
    enc.u64(session.user);
    codec::write(enc, session.interest);
  }
  txns_.encode(enc);
  store_.encode(enc);
  engine_.encode_state(enc);
}

void DcNode::schedule_gossip() {
  net_.scheduler().after(config_.gossip_interval,
                         [this, inc = incarnation_] {
                           if (inc == incarnation_) gossip_tick();
                         });
}

void DcNode::schedule_checkpoint() {
  net_.scheduler().after(config_.checkpoint_interval,
                         [this, inc = incarnation_] {
                           if (inc == incarnation_) checkpoint_tick();
                         });
}

void DcNode::checkpoint_tick() {
  if (config_.disk != nullptr && !crashed_ &&
      config_.disk->records_since_checkpoint() > 0) {
    // Between handlers the node is in a consistent state by construction
    // (the scheduler never preempts a handler), so the snapshot is a clean
    // cut of the record log.
    Encoder snapshot;
    encode_checkpoint(snapshot);
    config_.disk->write_checkpoint(snapshot.data());
    // The checkpoint makes every earlier record redundant: reclaim the log
    // prefix (and superseded checkpoints) behind it.
    config_.disk->truncate_to_checkpoint();
  }
  schedule_checkpoint();
}

void DcNode::crash() {
  COLONY_ASSERT(config_.disk != nullptr,
                "crash() on a node without durable storage");
  crashed_ = true;
  // Kill the old process image: timer chains and deferred dispatches check
  // the incarnation before touching the node, and in-flight RPC
  // continuations are forgotten outright.
  ++incarnation_;
  abort_pending_calls();
  busy_until_ = 0;
  waiting_execs_.clear();
  sessions_.clear();
  gossip_count_ = 0;
  commit_counter_ = 0;
  my_commits_.clear();
  local_dot_counter_ = 0;
  dc_states_.assign(config_.num_dcs, VersionVector(config_.num_dcs));
  k_cut_ = VersionVector(config_.num_dcs);
  hlc_.restore(0);
  txns_.clear();
  store_.clear();
  engine_.reset();
}

void DcNode::recover(bool reconnect) {
  COLONY_ASSERT(config_.disk != nullptr,
                "recover() on a node without durable storage");
  const storage::WalRecovery rec = config_.disk->recover();
  crashed_ = false;
  recovering_ = true;
  if (rec.checkpoint.has_value()) decode_checkpoint(*rec.checkpoint);
  for (const storage::WalRecord& record : rec.tail) {
    replay_record(record.type, record.payload);
  }
  // Re-establish the standing invariant that this DC's own dc_states_
  // entry tracks its state vector (every live handler maintains it).
  dc_states_[config_.dc_id] = engine_.state_vector();
  recompute_k_cut();
  recovering_ = false;
  if (rec.torn) config_.disk->truncate_to(rec.valid_bytes);
  if (reconnect) {
    // A second bump separates the restarted process from the recovery
    // itself: recover() on an already-running node (double restart) kills
    // the previous incarnation's timer chains instead of doubling them.
    ++incarnation_;
    for (auto& [node, session] : sessions_) session.connected = false;
    schedule_gossip();
    schedule_checkpoint();
  }
}

Bytes DcNode::durable_bytes() const {
  Encoder enc;
  encode_durable(enc);
  return enc.take();
}

bool DcNode::verify_recovery(std::string* why) const {
  if (config_.disk == nullptr || crashed_) return true;
  // Offline replica: a private scheduler and network so the probe cannot
  // interact with the live simulation, and a copy of the disk so recovery
  // cleanup cannot touch the real streams.
  sim::Scheduler scheduler;
  sim::Network net(scheduler, /*seed=*/1);
  storage::Wal disk(*config_.disk);
  DcConfig cfg = config_;
  cfg.disk = &disk;
  // The replica applies inline: matching durable bytes double as a live
  // pooled-vs-inline equivalence check on every probe.
  cfg.apply_pool = nullptr;
  DcNode replica(net, id(), cfg, peers_, shard_nodes_);
  replica.recover(/*reconnect=*/false);
  Encoder mine;
  Encoder theirs;
  encode_durable(mine);
  replica.encode_durable(theirs);
  if (mine.data() == theirs.data()) return true;
  if (why != nullptr) {
    *why = "DC " + std::to_string(config_.dc_id) +
           " durable projection diverges after recovery: live " +
           std::to_string(mine.size()) + "B vs replica " +
           std::to_string(theirs.size()) + "B (commit counters " +
           std::to_string(commit_counter_) + " vs " +
           std::to_string(replica.commit_counter_) + ")";
  }
  return false;
}

}  // namespace colony
