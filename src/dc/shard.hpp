// Intra-DC shard server.
//
// Data inside a DC is partitioned by consistent hashing across shard
// servers (paper section 6.3); transactions that span shards commit with a
// ClockSI-flavoured protocol (section 3.6): reads carry the coordinator's
// snapshot index and a shard defers the reply until it has applied at least
// that much (the ClockSI "wait until clock catches up" rule, expressed on
// the DC's dense apply index); multi-shard updates run two-phase commit.
//
// The shard holds the materialised current value of the objects it owns;
// the authoritative journal and visibility metadata live in the DC node,
// which fans applied operations out to owners via kShardApply in apply
// order.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "clock/dot_tracker.hpp"
#include "crdt/crdt.hpp"
#include "dc/messages.hpp"
#include "sim/rpc.hpp"

namespace colony {

class ApplyPool;

class ShardServer final : public sim::RpcActor {
 public:
  /// `pool` (optional) parallelises multi-op kShardApply batches across its
  /// workers, partitioned by object key. It is typically the owning DC's
  /// pool: the sim scheduler serialises handlers, so DC-side and shard-side
  /// submissions never overlap and the single-producer contract holds.
  explicit ShardServer(sim::Network& net, NodeId id,
                       ApplyPool* pool = nullptr);

  [[nodiscard]] Timestamp applied_seq() const { return applied_seq_; }
  [[nodiscard]] std::size_t object_count() const { return data_.size(); }
  /// Inspection: the materialised object, or nullptr if not owned here.
  [[nodiscard]] const Crdt* object(const ObjectKey& key) const {
    const auto it = data_.find(key);
    return it == data_.end() ? nullptr : it->second.second.get();
  }

 protected:
  void on_message(NodeId from, std::uint32_t kind,
                  ByteView body) override;
  void on_request(NodeId from, std::uint32_t method,
                  ByteView payload, ReplyFn reply) override;

 private:
  struct PendingRead {
    Timestamp min_seq;
    ObjectKey key;
    ReplyFn reply;
  };

  void apply_ops(const std::vector<OpRecord>& ops);
  void serve_ready_reads();
  proto::ShardReadResp read_value(const ObjectKey& key) const;

  std::map<ObjectKey, std::pair<CrdtType, std::unique_ptr<Crdt>>> data_;
  ApplyPool* pool_ = nullptr;
  std::map<std::uint64_t, std::vector<OpRecord>> prepared_;  // 2PC buffers
  std::vector<PendingRead> waiting_reads_;
  Timestamp applied_seq_ = 0;
  /// Duplicate filter for at-least-once kShardApply delivery: a re-sent
  /// (or chaos-duplicated) apply must not replay its operations.
  DotTracker seen_;
};

}  // namespace colony
