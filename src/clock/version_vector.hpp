// Version vectors with one component per data centre.
//
// This is the paper's central metadata object (sections 3.3-3.5): because
// each DC is an SI zone and hence externally sequential, a vector of size
// N = #DCs suffices to describe a point in the global causal order, no
// matter how many edge replicas exist. Components are 8 bytes wide so the
// clocks never wrap (footnote 2).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "util/binary_codec.hpp"
#include "util/types.hpp"

namespace colony {

class VersionVector {
 public:
  VersionVector() = default;
  explicit VersionVector(std::size_t num_dcs) : v_(num_dcs, 0) {}
  VersionVector(std::initializer_list<Timestamp> init) : v_(init) {}

  [[nodiscard]] std::size_t size() const { return v_.size(); }
  [[nodiscard]] Timestamp at(DcId dc) const;
  void set(DcId dc, Timestamp ts);

  /// Component-wise max, the least upper bound in the vector lattice.
  /// Each node's state vector is the LUB of the commit vectors it observed
  /// (section 3.4).
  void merge(const VersionVector& other);
  [[nodiscard]] static VersionVector lub(const VersionVector& a,
                                         const VersionVector& b);

  /// Partial order tests. `leq` is the "happens-before-or-equal" test used
  /// for dependency checks: T is before T' iff T.C <= T'.S (section 3.5).
  [[nodiscard]] bool leq(const VersionVector& other) const;
  [[nodiscard]] bool lt(const VersionVector& other) const;
  [[nodiscard]] bool concurrent_with(const VersionVector& other) const;

  bool operator==(const VersionVector& other) const { return v_ == other.v_; }

  /// Strict total order for use as a map key; NOT the causal order.
  [[nodiscard]] bool lexicographic_less(const VersionVector& other) const {
    return v_ < other.v_;
  }

  [[nodiscard]] std::string to_string() const;

  void encode(Encoder& enc) const;
  static VersionVector decode(Decoder& dec);

  /// Bytes this vector occupies on the wire (metadata ablation bench).
  [[nodiscard]] std::size_t wire_size() const {
    return sizeof(std::uint32_t) + v_.size() * sizeof(Timestamp);
  }

 private:
  std::vector<Timestamp> v_;
};

/// Compute the K-stable cut from per-DC state vectors (section 3.8): for
/// each component, the K-th largest value across the vectors. A transaction
/// with commit vector <= this cut is visible at >= K data centres.
[[nodiscard]] VersionVector k_stable_cut(
    const std::vector<VersionVector>& dc_states, std::size_t k);

}  // namespace colony
