#include "clock/dot_tracker.hpp"

#include <algorithm>
#include <vector>

#include "util/assert.hpp"

namespace colony {

bool DotTracker::record(const Dot& dot) {
  COLONY_ASSERT(dot.valid(), "recording invalid dot");
  PerOrigin& po = state_[dot.origin];
  if (dot.counter <= po.prefix) return false;
  if (!po.beyond.insert(dot.counter).second) return false;
  // Compact: absorb a now-contiguous run into the prefix.
  auto it = po.beyond.begin();
  while (it != po.beyond.end() && *it == po.prefix + 1) {
    po.prefix = *it;
    it = po.beyond.erase(it);
  }
  return true;
}

bool DotTracker::contains(const Dot& dot) const {
  const auto it = state_.find(dot.origin);
  if (it == state_.end()) return false;
  const PerOrigin& po = it->second;
  return dot.counter <= po.prefix || po.beyond.contains(dot.counter);
}

std::uint64_t DotTracker::prefix(NodeId origin) const {
  const auto it = state_.find(origin);
  return it == state_.end() ? 0 : it->second.prefix;
}

void DotTracker::encode(Encoder& enc) const {
  std::vector<NodeId> origins;
  origins.reserve(state_.size());
  for (const auto& [origin, _] : state_) origins.push_back(origin);
  std::sort(origins.begin(), origins.end());
  enc.u32(static_cast<std::uint32_t>(origins.size()));
  for (const NodeId origin : origins) {
    const PerOrigin& po = state_.at(origin);
    enc.u64(origin);
    enc.u64(po.prefix);
    enc.u32(static_cast<std::uint32_t>(po.beyond.size()));
    for (const std::uint64_t c : po.beyond) enc.u64(c);  // std::set: sorted
  }
}

void DotTracker::decode(Decoder& dec) {
  state_.clear();
  const std::uint32_t n = dec.u32();
  if (n > dec.remaining()) dec.fail();
  for (std::uint32_t i = 0; i < n && dec.ok(); ++i) {
    const NodeId origin = dec.u64();
    PerOrigin po;
    po.prefix = dec.u64();
    const std::uint32_t beyond = dec.u32();
    if (beyond > dec.remaining()) dec.fail();
    for (std::uint32_t j = 0; j < beyond && dec.ok(); ++j) {
      po.beyond.insert(dec.u64());
    }
    state_.emplace(origin, std::move(po));
  }
}

}  // namespace colony
