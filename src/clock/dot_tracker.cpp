#include "clock/dot_tracker.hpp"

#include "util/assert.hpp"

namespace colony {

bool DotTracker::record(const Dot& dot) {
  COLONY_ASSERT(dot.valid(), "recording invalid dot");
  PerOrigin& po = state_[dot.origin];
  if (dot.counter <= po.prefix) return false;
  if (!po.beyond.insert(dot.counter).second) return false;
  // Compact: absorb a now-contiguous run into the prefix.
  auto it = po.beyond.begin();
  while (it != po.beyond.end() && *it == po.prefix + 1) {
    po.prefix = *it;
    it = po.beyond.erase(it);
  }
  return true;
}

bool DotTracker::contains(const Dot& dot) const {
  const auto it = state_.find(dot.origin);
  if (it == state_.end()) return false;
  const PerOrigin& po = it->second;
  return dot.counter <= po.prefix || po.beyond.contains(dot.counter);
}

std::uint64_t DotTracker::prefix(NodeId origin) const {
  const auto it = state_.find(origin);
  return it == state_.end() ? 0 : it->second.prefix;
}

}  // namespace colony
