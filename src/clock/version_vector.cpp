#include "clock/version_vector.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace colony {

Timestamp VersionVector::at(DcId dc) const {
  return dc < v_.size() ? v_[dc] : 0;
}

void VersionVector::set(DcId dc, Timestamp ts) {
  if (dc >= v_.size()) v_.resize(dc + 1, 0);
  v_[dc] = ts;
}

void VersionVector::merge(const VersionVector& other) {
  if (other.v_.size() > v_.size()) v_.resize(other.v_.size(), 0);
  for (std::size_t i = 0; i < other.v_.size(); ++i) {
    v_[i] = std::max(v_[i], other.v_[i]);
  }
}

VersionVector VersionVector::lub(const VersionVector& a,
                                 const VersionVector& b) {
  VersionVector out = a;
  out.merge(b);
  return out;
}

bool VersionVector::leq(const VersionVector& other) const {
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] > other.at(static_cast<DcId>(i))) return false;
  }
  return true;
}

bool VersionVector::lt(const VersionVector& other) const {
  return leq(other) && !(*this == other) &&
         // Handle padding: equal up to trailing zeros counts as equal.
         !other.leq(*this);
}

bool VersionVector::concurrent_with(const VersionVector& other) const {
  return !leq(other) && !other.leq(*this);
}

std::string VersionVector::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(v_[i]);
  }
  out += "]";
  return out;
}

void VersionVector::encode(Encoder& enc) const {
  enc.u32(static_cast<std::uint32_t>(v_.size()));
  for (Timestamp t : v_) enc.u64(t);
}

VersionVector VersionVector::decode(Decoder& dec) {
  const std::uint32_t n = dec.u32();
  if (n > dec.remaining()) {  // hostile count: reject before allocating
    dec.fail();
    return VersionVector{};
  }
  VersionVector vv(n);
  for (std::uint32_t i = 0; i < n; ++i) vv.v_[i] = dec.u64();
  return vv;
}

VersionVector k_stable_cut(const std::vector<VersionVector>& dc_states,
                           std::size_t k) {
  COLONY_ASSERT(!dc_states.empty(), "k_stable_cut over no DCs");
  COLONY_ASSERT(k >= 1 && k <= dc_states.size(), "K out of range");
  std::size_t width = 0;
  for (const auto& vv : dc_states) width = std::max(width, vv.size());

  VersionVector cut(width);
  std::vector<Timestamp> column(dc_states.size());
  for (std::size_t c = 0; c < width; ++c) {
    for (std::size_t d = 0; d < dc_states.size(); ++d) {
      column[d] = dc_states[d].at(static_cast<DcId>(c));
    }
    // K-th largest: sort descending, take index k-1.
    std::nth_element(column.begin(), column.begin() + static_cast<long>(k - 1),
                     column.end(), std::greater<>());
    cut.set(static_cast<DcId>(c), column[k - 1]);
  }
  return cut;
}

}  // namespace colony
