#include "clock/hlc.hpp"

namespace colony {

// Timestamps pack the physical micros in the high bits and a 16-bit logical
// counter in the low bits, the standard HLC encoding.
namespace {
constexpr int kLogicalBits = 16;

Timestamp pack(SimTime physical) { return physical << kLogicalBits; }
}  // namespace

Timestamp HybridLogicalClock::tick(SimTime physical_now) {
  const Timestamp phys = pack(physical_now);
  last_ = std::max(phys, last_ + 1);
  return last_;
}

Timestamp HybridLogicalClock::witness(SimTime physical_now, Timestamp remote) {
  const Timestamp phys = pack(physical_now);
  last_ = std::max({phys, remote + 1, last_ + 1});
  return last_;
}

}  // namespace colony
