// DotTracker: duplicate filtering for at-least-once transaction delivery.
//
// After a migration an edge node re-sends unacknowledged transactions to its
// new DC, so a replica may receive the same transaction twice (section 3.8).
// Every node tracks, per origin, the contiguous prefix of applied dot
// counters plus any out-of-order dots beyond it, and ignores a transaction
// whose dot was already seen.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>

#include "clock/dot.hpp"

namespace colony {

class DotTracker {
 public:
  /// Record `dot` as seen. Returns false if it was already known
  /// (i.e. the caller must not replay the transaction).
  bool record(const Dot& dot);

  [[nodiscard]] bool contains(const Dot& dot) const;

  /// Highest contiguously-applied counter for an origin (0 if none).
  [[nodiscard]] std::uint64_t prefix(NodeId origin) const;

  /// Number of origins tracked (for introspection/tests).
  [[nodiscard]] std::size_t origins() const { return state_.size(); }

  /// Checkpoint serialization. Deterministic: origins encode in sorted
  /// order (the backing map is unordered). decode() replaces contents.
  void encode(Encoder& enc) const;
  void decode(Decoder& dec);
  void clear() { state_.clear(); }

 private:
  struct PerOrigin {
    std::uint64_t prefix = 0;         // all counters <= prefix are seen
    std::set<std::uint64_t> beyond;   // out-of-order counters > prefix
  };

  std::unordered_map<NodeId, PerOrigin> state_;
};

}  // namespace colony
