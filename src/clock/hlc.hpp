// Hybrid logical clock used by DC shards for ClockSI-style timestamping.
//
// ClockSI (Du et al., SRDS'13) assumes loosely synchronised physical clocks;
// the HLC combines the shard's (possibly skewed) physical clock with a
// logical component so that timestamps are monotonic and respect message
// causality even under skew.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/types.hpp"

namespace colony {

class HybridLogicalClock {
 public:
  /// `now()` must be supplied by the caller (the simulator's notion of this
  /// shard's physical clock, including its skew).
  Timestamp tick(SimTime physical_now);

  /// Witness a remote timestamp (message receipt): the clock advances past
  /// it so subsequent local events are ordered after it.
  Timestamp witness(SimTime physical_now, Timestamp remote);

  [[nodiscard]] Timestamp last() const { return last_; }

  /// Crash-recovery: reload the persisted high-water mark. Monotonicity is
  /// preserved because the durable value is at least as fresh as any
  /// timestamp this clock handed out before the crash.
  void restore(Timestamp last) { last_ = last; }

 private:
  Timestamp last_ = 0;
};

}  // namespace colony
