// Dots: globally unique transaction/operation identifiers.
//
// A dot is (origin node, per-origin sequence number) as in section 3.5.
// Dots serve three purposes in the protocol: unique identification,
// duplicate filtering after migration (section 3.8 "Avoiding Duplicates"),
// and a deterministic total arbitration order between concurrent
// transactions (used by LWW registers and strong convergence).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "util/binary_codec.hpp"
#include "util/types.hpp"

namespace colony {

struct Dot {
  NodeId origin = 0;
  std::uint64_t counter = 0;

  auto operator<=>(const Dot&) const = default;

  [[nodiscard]] bool valid() const { return counter != 0; }

  [[nodiscard]] std::string to_string() const {
    return "(" + std::to_string(origin) + ":" + std::to_string(counter) + ")";
  }

  void encode(Encoder& enc) const {
    enc.u64(origin);
    enc.u64(counter);
  }
  static Dot decode(Decoder& dec) {
    Dot d;
    d.origin = dec.u64();
    d.counter = dec.u64();
    return d;
  }
};

}  // namespace colony

template <>
struct std::hash<colony::Dot> {
  std::size_t operator()(const colony::Dot& d) const noexcept {
    return std::hash<std::uint64_t>{}(d.origin * 0x9e3779b97f4a7c15ULL ^
                                      d.counter);
  }
};
