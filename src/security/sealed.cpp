#include "security/sealed.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace colony::security {
namespace {

void encode_sealed(Encoder& enc, const SealedPayload& p) {
  enc.str(p.bucket);
  enc.u64(p.nonce);
  enc.bytes(p.ciphertext);
  enc.u64(p.mac);
}

SealedPayload decode_sealed(Decoder& dec) {
  SealedPayload p;
  p.bucket = dec.str();
  p.nonce = dec.u64();
  p.ciphertext = dec.bytes();
  p.mac = dec.u64();
  return p;
}

std::unique_ptr<Crdt> make_sealed() {
  return std::make_unique<SealedObject>();
}

}  // namespace

void register_sealed_crdt() {
  register_crdt_factory(CrdtType::kSealed, &make_sealed);
}

Bytes SealedObject::prepare_append(const SealedPayload& sealed) {
  Encoder enc;
  encode_sealed(enc, sealed);
  return enc.take();
}

void SealedObject::apply(const Bytes& op) {
  Decoder dec(op);
  SealedPayload entry = decode_sealed(dec);
  // Keep nonce order so all replicas hold identical state; drop duplicate
  // nonces (re-delivery).
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), entry.nonce,
      [](const SealedPayload& e, std::uint64_t n) { return e.nonce < n; });
  if (pos != entries_.end() && pos->nonce == entry.nonce) return;
  entries_.insert(pos, std::move(entry));
}

Bytes SealedObject::snapshot() const {
  Encoder enc;
  enc.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const SealedPayload& e : entries_) encode_sealed(enc, e);
  return enc.take();
}

void SealedObject::restore(const Bytes& snapshot) {
  entries_.clear();
  Decoder dec(snapshot);
  const std::uint32_t n = dec.u32();
  entries_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    entries_.push_back(decode_sealed(dec));
  }
}

std::unique_ptr<Crdt> SealedObject::clone() const {
  auto copy = std::make_unique<SealedObject>();
  copy->entries_ = entries_;
  return copy;
}

OpRecord seal_op(const ObjectKey& key, SessionKey session_key,
                 std::uint64_t nonce, CrdtType inner_type,
                 const Bytes& inner) {
  // Plaintext envelope: inner type tag + inner op payload.
  Encoder plain;
  plain.u8(static_cast<std::uint8_t>(inner_type));
  plain.bytes(inner);
  const SealedPayload sealed =
      seal(key.bucket, session_key, nonce, plain.data());
  return OpRecord{key, CrdtType::kSealed,
                  SealedObject::prepare_append(sealed)};
}

std::optional<std::unique_ptr<Crdt>> unseal(const SealedObject& sealed,
                                            SessionKey session_key,
                                            CrdtType expected_type) {
  auto value = make_crdt(expected_type);
  for (const SealedPayload& entry : sealed.entries()) {
    const auto plain = open(entry, session_key);
    if (!plain.has_value()) return std::nullopt;  // wrong key / tampered
    Decoder dec(*plain);
    const auto inner_type = static_cast<CrdtType>(dec.u8());
    if (inner_type != expected_type) return std::nullopt;
    value->apply(dec.bytes());
  }
  return value;
}

}  // namespace colony::security
