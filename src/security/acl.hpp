// Access control (paper sections 2.4, 5.3, 6.4).
//
// The security policy is a set of (object, user, permission) grants plus
// two right-inheritance (RI) forests — one over objects, one over users.
// Checking a permission evaluates the predicate "some ancestor-or-self of
// the user holds the permission on some ancestor-or-self of the object".
//
// The policy itself is replicated data: AclObject is an op-based CRDT
// (grants are an observed-remove set; forest edges are LWW) stored under a
// reserved key, so ACL updates flow through the same TCC+ machinery as data
// and "data and security metadata are mutually consistent". Enforcement is
// deferred to after commit: the visibility engine masks a committed
// transaction that fails its ACL check, transitively with its causal
// dependants.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "core/txn.hpp"
#include "crdt/crdt.hpp"
#include "util/types.hpp"

namespace colony::security {

enum class Permission : std::uint8_t {
  kRead = 1,
  kWrite = 2,
  kOwn = 3,
};

[[nodiscard]] const char* to_string(Permission p);

/// A grant tuple. `object` is an object name or a bucket name (the RI
/// forest lets a bucket act as parent of its objects).
struct AclTuple {
  std::string object;
  UserId user = 0;
  Permission permission{};

  auto operator<=>(const AclTuple&) const = default;
};

/// The reserved key under which the policy object lives.
[[nodiscard]] ObjectKey acl_object_key();

/// Register the ACL CRDT with the factory; call once at process start
/// (idempotent).
void register_acl_crdt();

class AclObject final : public Crdt {
 public:
  [[nodiscard]] CrdtType type() const override { return CrdtType::kAcl; }

  // --- prepare (downstream op construction) -------------------------------
  [[nodiscard]] static Bytes prepare_grant(const AclTuple& tuple,
                                           const Dot& dot);
  /// Observed-remove: revokes the grant tags currently visible here.
  [[nodiscard]] Bytes prepare_revoke(const AclTuple& tuple) const;
  [[nodiscard]] static Bytes prepare_set_user_parent(UserId user,
                                                     UserId parent,
                                                     const Arb& arb);
  [[nodiscard]] static Bytes prepare_set_object_parent(
      const std::string& object, const std::string& parent, const Arb& arb);

  // --- Crdt interface ------------------------------------------------------
  void apply(const Bytes& op) override;
  [[nodiscard]] Bytes snapshot() const override;
  void restore(const Bytes& snapshot) override;
  [[nodiscard]] std::unique_ptr<Crdt> clone() const override;

  // --- policy queries ------------------------------------------------------
  /// The predicate check of section 6.4: walks both RI forests.
  [[nodiscard]] bool check(const std::string& object, UserId user,
                           Permission permission) const;

  [[nodiscard]] bool has_grant(const AclTuple& tuple) const;
  [[nodiscard]] UserId user_parent(UserId user) const;
  [[nodiscard]] std::string object_parent(const std::string& object) const;
  [[nodiscard]] std::size_t grant_count() const { return grants_.size(); }

 private:
  enum class OpKind : std::uint8_t {
    kGrant = 1,
    kRevoke = 2,
    kSetUserParent = 3,
    kSetObjectParent = 4,
  };

  std::map<AclTuple, std::set<Dot>> grants_;
  std::map<UserId, std::pair<UserId, Arb>> user_parent_;
  std::map<std::string, std::pair<std::string, Arb>> object_parent_;
};

/// The deferred post-commit enforcement predicate (section 6.4): may the
/// values written by `txn` become visible under policy `acl`?
///
/// Rules: with no policy installed (null acl or zero grants) everything is
/// allowed (bootstrap). Otherwise a data update on key k requires kWrite on
/// k's name or its bucket; an update of the policy object itself requires
/// kOwn on the policy ("_sys" bucket).
[[nodiscard]] bool txn_allowed(const AclObject* acl, const Transaction& txn);

}  // namespace colony::security
