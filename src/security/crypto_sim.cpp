#include "security/crypto_sim.hpp"

namespace colony::security {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Bytes xor_keystream(SessionKey key, std::uint64_t nonce, const Bytes& input) {
  Bytes out = input;
  std::uint64_t stream_state = mix(key ^ mix(nonce));
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i % 8 == 0) {
      stream_state = mix(stream_state);
      word = stream_state;
    }
    out[i] ^= static_cast<std::uint8_t>(word >> ((i % 8) * 8));
  }
  return out;
}

std::uint64_t keyed_mac(SessionKey key, std::uint64_t nonce,
                        const Bytes& data) {
  std::uint64_t h = 14695981039346656037ULL ^ mix(key) ^ mix(nonce);
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

SealedPayload seal(const std::string& bucket, SessionKey key,
                   std::uint64_t nonce, const Bytes& plaintext) {
  SealedPayload out;
  out.bucket = bucket;
  out.nonce = nonce;
  out.ciphertext = xor_keystream(key, nonce, plaintext);
  out.mac = keyed_mac(key, nonce, plaintext);
  return out;
}

std::optional<Bytes> open(const SealedPayload& sealed, SessionKey key) {
  Bytes plaintext = xor_keystream(key, sealed.nonce, sealed.ciphertext);
  if (keyed_mac(key, sealed.nonce, plaintext) != sealed.mac) {
    return std::nullopt;
  }
  return plaintext;
}

void KeyService::authorize(const std::string& bucket, UserId user) {
  authorized_[bucket].insert(user);
}

void KeyService::deauthorize(const std::string& bucket, UserId user) {
  const auto it = authorized_.find(bucket);
  if (it == authorized_.end()) return;
  it->second.erase(user);
  if (it->second.empty()) authorized_.erase(it);
}

std::optional<SessionKey> KeyService::key_for(const std::string& bucket,
                                              UserId user) const {
  if (!authorized(bucket, user)) return std::nullopt;
  return derive(bucket);
}

bool KeyService::authorized(const std::string& bucket, UserId user) const {
  const auto it = authorized_.find(bucket);
  return it != authorized_.end() && it->second.contains(user);
}

SessionKey KeyService::derive(const std::string& bucket) const {
  std::uint64_t h = seed_;
  for (const char c : bucket) h = mix(h ^ static_cast<std::uint8_t>(c));
  return h;
}

}  // namespace colony::security
