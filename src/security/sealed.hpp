// End-to-end encrypted objects (paper section 2.4): "because it is the edge
// device that executes and merges updates, data can remain encrypted
// end-to-end; the untrusted cloud serves merely for transport and
// persistence".
//
// A sealed object is an append-only container of ciphertext operations.
// The cloud replicates, journals, K-stabilises and pushes it like any CRDT
// — but cannot materialise the plaintext. A client holding the bucket's
// session key decrypts the entries and replays them into the real CRDT
// locally. Convergence holds because the underlying operations are CRDT
// ops and every keyed client applies all of them.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/txn.hpp"
#include "crdt/crdt.hpp"
#include "security/crypto_sim.hpp"

namespace colony::security {

/// The opaque container the cloud sees. Ciphertext entries are kept in a
/// deterministic order (by the sealing nonce, which callers derive from a
/// fresh dot) so replicas converge on identical state.
class SealedObject final : public Crdt {
 public:
  [[nodiscard]] CrdtType type() const override { return CrdtType::kSealed; }

  [[nodiscard]] static Bytes prepare_append(const SealedPayload& sealed);

  void apply(const Bytes& op) override;
  [[nodiscard]] Bytes snapshot() const override;
  void restore(const Bytes& snapshot) override;
  [[nodiscard]] std::unique_ptr<Crdt> clone() const override;

  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }
  [[nodiscard]] const std::vector<SealedPayload>& entries() const {
    return entries_;
  }

 private:
  std::vector<SealedPayload> entries_;  // sorted by nonce
};

/// Register the sealed CRDT with the factory (idempotent).
void register_sealed_crdt();

/// Wrap a plaintext CRDT operation for a sealed object. `inner` is the op
/// that would have been applied to the real object of type `inner_type`;
/// `nonce` must be unique per op (use the dot counter).
[[nodiscard]] OpRecord seal_op(const ObjectKey& key, SessionKey session_key,
                               std::uint64_t nonce, CrdtType inner_type,
                               const Bytes& inner);

/// Decrypt a sealed object into the real CRDT. Returns nullopt if any
/// entry fails authentication (wrong key or tampering) or decodes to a
/// different inner type than expected.
[[nodiscard]] std::optional<std::unique_ptr<Crdt>> unseal(
    const SealedObject& sealed, SessionKey session_key,
    CrdtType expected_type);

}  // namespace colony::security
