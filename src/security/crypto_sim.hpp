// Session-key management and payload sealing (paper sections 2.4, 5.3, 6.4).
//
// The authentication service hands a client one symmetric session key per
// shared bucket; data is encrypted end-to-end so the cloud acts as
// transport and persistence only. This module reproduces that *structure*
// with a toy stream cipher and checksum MAC.
//
// ***NOT CRYPTOGRAPHICALLY SECURE.*** The cipher is a splitmix64 keystream
// and the MAC is a keyed FNV hash — stand-ins that preserve the protocol
// shape (who holds which key, what the cloud can read) for simulation, as
// documented in DESIGN.md. Swap in AES-GCM for real deployments.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "util/binary_codec.hpp"
#include "util/types.hpp"

namespace colony::security {

using SessionKey = std::uint64_t;

/// A sealed payload: only holders of the bucket's session key can open it.
struct SealedPayload {
  std::string bucket;
  std::uint64_t nonce = 0;
  Bytes ciphertext;
  std::uint64_t mac = 0;
};

/// Seal plaintext under `key`. `nonce` must be unique per (key, payload).
[[nodiscard]] SealedPayload seal(const std::string& bucket, SessionKey key,
                                 std::uint64_t nonce, const Bytes& plaintext);

/// Open a sealed payload; nullopt if the MAC does not verify (wrong key or
/// tampering).
[[nodiscard]] std::optional<Bytes> open(const SealedPayload& sealed,
                                        SessionKey key);

/// Key service run by the session manager in the core cloud: issues one
/// session key per bucket to authorised users; keys remain valid across
/// disconnection and reconnection (section 5.3).
class KeyService {
 public:
  explicit KeyService(std::uint64_t seed) : seed_(seed) {}

  /// Authorise a user for a bucket (done at group-membership time).
  void authorize(const std::string& bucket, UserId user);
  void deauthorize(const std::string& bucket, UserId user);

  /// The bucket's session key, if `user` is authorised.
  [[nodiscard]] std::optional<SessionKey> key_for(const std::string& bucket,
                                                  UserId user) const;

  [[nodiscard]] bool authorized(const std::string& bucket,
                                UserId user) const;

 private:
  [[nodiscard]] SessionKey derive(const std::string& bucket) const;

  std::uint64_t seed_;
  std::map<std::string, std::set<UserId>> authorized_;
};

}  // namespace colony::security
