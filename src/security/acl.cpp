#include "security/acl.hpp"

#include "util/assert.hpp"

namespace colony::security {

const char* to_string(Permission p) {
  switch (p) {
    case Permission::kRead: return "read";
    case Permission::kWrite: return "write";
    case Permission::kOwn: return "own";
  }
  return "unknown";
}

ObjectKey acl_object_key() { return ObjectKey{"_sys", "acl"}; }

namespace {
std::unique_ptr<Crdt> make_acl() { return std::make_unique<AclObject>(); }

void encode_tuple(Encoder& enc, const AclTuple& t) {
  enc.str(t.object);
  enc.u64(t.user);
  enc.u8(static_cast<std::uint8_t>(t.permission));
}

AclTuple decode_tuple(Decoder& dec) {
  AclTuple t;
  t.object = dec.str();
  t.user = dec.u64();
  t.permission = static_cast<Permission>(dec.u8());
  return t;
}
}  // namespace

void register_acl_crdt() { register_crdt_factory(CrdtType::kAcl, &make_acl); }

Bytes AclObject::prepare_grant(const AclTuple& tuple, const Dot& dot) {
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(OpKind::kGrant));
  encode_tuple(enc, tuple);
  dot.encode(enc);
  return enc.take();
}

Bytes AclObject::prepare_revoke(const AclTuple& tuple) const {
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(OpKind::kRevoke));
  encode_tuple(enc, tuple);
  const auto it = grants_.find(tuple);
  if (it == grants_.end()) {
    enc.u32(0);
  } else {
    enc.u32(static_cast<std::uint32_t>(it->second.size()));
    for (const Dot& tag : it->second) tag.encode(enc);
  }
  return enc.take();
}

Bytes AclObject::prepare_set_user_parent(UserId user, UserId parent,
                                         const Arb& arb) {
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(OpKind::kSetUserParent));
  enc.u64(user);
  enc.u64(parent);
  arb.encode(enc);
  return enc.take();
}

Bytes AclObject::prepare_set_object_parent(const std::string& object,
                                           const std::string& parent,
                                           const Arb& arb) {
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(OpKind::kSetObjectParent));
  enc.str(object);
  enc.str(parent);
  arb.encode(enc);
  return enc.take();
}

void AclObject::apply(const Bytes& op) {
  Decoder dec(op);
  const auto kind = static_cast<OpKind>(dec.u8());
  switch (kind) {
    case OpKind::kGrant: {
      const AclTuple tuple = decode_tuple(dec);
      grants_[tuple].insert(Dot::decode(dec));
      break;
    }
    case OpKind::kRevoke: {
      const AclTuple tuple = decode_tuple(dec);
      const auto it = grants_.find(tuple);
      const std::uint32_t n = dec.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        const Dot tag = Dot::decode(dec);
        if (it != grants_.end()) it->second.erase(tag);
      }
      if (it != grants_.end() && it->second.empty()) grants_.erase(it);
      break;
    }
    case OpKind::kSetUserParent: {
      const UserId user = dec.u64();
      const UserId parent = dec.u64();
      const Arb arb = Arb::decode(dec);
      auto& slot = user_parent_[user];
      if (arb > slot.second) slot = {parent, arb};
      break;
    }
    case OpKind::kSetObjectParent: {
      std::string object = dec.str();
      std::string parent = dec.str();
      const Arb arb = Arb::decode(dec);
      auto& slot = object_parent_[object];
      if (arb > slot.second) slot = {std::move(parent), arb};
      break;
    }
  }
}

Bytes AclObject::snapshot() const {
  Encoder enc;
  enc.u32(static_cast<std::uint32_t>(grants_.size()));
  for (const auto& [tuple, tags] : grants_) {
    encode_tuple(enc, tuple);
    enc.u32(static_cast<std::uint32_t>(tags.size()));
    for (const Dot& tag : tags) tag.encode(enc);
  }
  enc.u32(static_cast<std::uint32_t>(user_parent_.size()));
  for (const auto& [user, slot] : user_parent_) {
    enc.u64(user);
    enc.u64(slot.first);
    slot.second.encode(enc);
  }
  enc.u32(static_cast<std::uint32_t>(object_parent_.size()));
  for (const auto& [object, slot] : object_parent_) {
    enc.str(object);
    enc.str(slot.first);
    slot.second.encode(enc);
  }
  return enc.take();
}

void AclObject::restore(const Bytes& snapshot) {
  grants_.clear();
  user_parent_.clear();
  object_parent_.clear();
  Decoder dec(snapshot);
  const std::uint32_t g = dec.u32();
  for (std::uint32_t i = 0; i < g; ++i) {
    const AclTuple tuple = decode_tuple(dec);
    auto& tags = grants_[tuple];
    const std::uint32_t n = dec.u32();
    for (std::uint32_t j = 0; j < n; ++j) tags.insert(Dot::decode(dec));
  }
  const std::uint32_t u = dec.u32();
  for (std::uint32_t i = 0; i < u; ++i) {
    const UserId user = dec.u64();
    const UserId parent = dec.u64();
    user_parent_[user] = {parent, Arb::decode(dec)};
  }
  const std::uint32_t o = dec.u32();
  for (std::uint32_t i = 0; i < o; ++i) {
    std::string object = dec.str();
    std::string parent = dec.str();
    const Arb arb = Arb::decode(dec);
    object_parent_[std::move(object)] = {std::move(parent), arb};
  }
}

std::unique_ptr<Crdt> AclObject::clone() const {
  auto copy = std::make_unique<AclObject>();
  copy->grants_ = grants_;
  copy->user_parent_ = user_parent_;
  copy->object_parent_ = object_parent_;
  return copy;
}

bool AclObject::check(const std::string& object, UserId user,
                      Permission permission) const {
  // Walk object ancestors x user ancestors; both forests are shallow in
  // practice (bucket -> object, team -> user). Cycle guards bound the walk.
  constexpr int kMaxDepth = 32;

  std::string obj = object;
  for (int od = 0; od < kMaxDepth; ++od) {
    UserId usr = user;
    for (int ud = 0; ud < kMaxDepth; ++ud) {
      if (has_grant(AclTuple{obj, usr, permission})) return true;
      // kOwn implies kWrite implies kRead.
      if (permission != Permission::kOwn &&
          has_grant(AclTuple{obj, usr, Permission::kOwn})) {
        return true;
      }
      if (permission == Permission::kRead &&
          has_grant(AclTuple{obj, usr, Permission::kWrite})) {
        return true;
      }
      const UserId next = user_parent(usr);
      if (next == 0 || next == usr) break;
      usr = next;
    }
    const std::string next = object_parent(obj);
    if (next.empty() || next == obj) break;
    obj = next;
  }
  return false;
}

bool AclObject::has_grant(const AclTuple& tuple) const {
  const auto it = grants_.find(tuple);
  return it != grants_.end() && !it->second.empty();
}

UserId AclObject::user_parent(UserId user) const {
  const auto it = user_parent_.find(user);
  return it == user_parent_.end() ? 0 : it->second.first;
}

std::string AclObject::object_parent(const std::string& object) const {
  const auto it = object_parent_.find(object);
  return it == object_parent_.end() ? std::string{} : it->second.first;
}

bool txn_allowed(const AclObject* acl, const Transaction& txn) {
  if (acl == nullptr || acl->grant_count() == 0) return true;  // bootstrap
  const UserId user = txn.meta.user;
  for (const OpRecord& op : txn.ops) {
    if (op.key == acl_object_key()) {
      if (!acl->check("_sys", user, Permission::kOwn)) return false;
      continue;
    }
    const bool allowed = acl->check(op.key.name, user, Permission::kWrite) ||
                         acl->check(op.key.bucket, user, Permission::kWrite);
    if (!allowed) return false;
  }
  return true;
}

}  // namespace colony::security
