#include "sim/network.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace colony::sim {

namespace frame {

Bytes encode(std::uint32_t kind, ByteView payload) {
  Encoder enc;
  enc.reserve(kOverheadBytes + payload.size());
  enc.u32(kind);
  enc.u32(static_cast<std::uint32_t>(payload.size()));
  enc.raw(payload);
  enc.u32(crc32(enc.data()));  // trailer over header+payload, in place
  return enc.take();
}

std::optional<ViewRef> decode_view(ByteView frm) {
  if (frm.size() < kOverheadBytes) return std::nullopt;
  Decoder dec(frm);
  ViewRef view;
  view.kind = dec.u32();
  const std::uint32_t len = dec.u32();
  if (len != frm.size() - kOverheadBytes) return std::nullopt;
  const std::uint32_t expected = crc32(frm.data(), frm.size() - kTrailerBytes);
  std::uint32_t stored;
  std::memcpy(&stored, frm.data() + frm.size() - kTrailerBytes,
              sizeof(stored));
  if (stored != expected) return std::nullopt;
  view.payload = frm.subspan(kHeaderBytes, len);
  return view;
}

std::optional<View> decode(const Bytes& frm) {
  const auto ref = decode_view(frm);
  if (!ref) return std::nullopt;
  return View{ref->kind, Bytes(ref->payload.begin(), ref->payload.end())};
}

}  // namespace frame

SimTime LatencyModel::sample(Rng& rng) const {
  if (jitter == 0) return std::max<SimTime>(mean, 1);
  const SimTime lo = mean > jitter ? mean - jitter : 1;
  const SimTime hi = mean + jitter;
  return std::max<SimTime>(rng.between(lo, hi), 1);
}

SimTime LatencyModel::transmission_delay(std::size_t frame_bytes) const {
  if (bytes_per_us <= 0.0) return 0;
  return static_cast<SimTime>(
      std::ceil(static_cast<double>(frame_bytes) / bytes_per_us));
}

Actor::Actor(Network& net, NodeId id) : net_(net), id_(id) {
  net_.register_actor(this);
}

Actor::~Actor() { net_.unregister_actor(id_); }

void Network::register_actor(Actor* actor) {
  const auto [_, inserted] = actors_.emplace(actor->id(), actor);
  COLONY_ASSERT(inserted, "duplicate actor id registered");
}

void Network::unregister_actor(NodeId id) { actors_.erase(id); }

void Network::connect(NodeId a, NodeId b, LatencyModel model) {
  links_[{a, b}] = Link{model, true, 0};
  links_[{b, a}] = Link{model, true, 0};
}

void Network::set_link_up(NodeId a, NodeId b, bool up) {
  if (Link* l = find_link(a, b)) l->up = up;
  if (Link* l = find_link(b, a)) l->up = up;
}

void Network::set_node_up(NodeId node, bool up) {
  if (up) {
    down_nodes_.erase(node);
  } else {
    down_nodes_.insert(node);
  }
}

bool Network::node_up(NodeId node) const { return !down_nodes_.contains(node); }

void Network::set_clock_skew(NodeId node, SimTime offset) {
  if (offset == 0) {
    clock_skew_.erase(node);
  } else {
    clock_skew_[node] = offset;
  }
}

SimTime Network::local_now(NodeId node) const {
  const auto it = clock_skew_.find(node);
  return it == clock_skew_.end() ? sched_.now() : sched_.now() + it->second;
}

void Network::heal() {
  for (auto& [_, link] : links_) link.up = true;
  down_nodes_.clear();
}

Network::Link* Network::find_link(NodeId from, NodeId to) {
  const auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : &it->second;
}

const Network::Link* Network::find_link(NodeId from, NodeId to) const {
  const auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : &it->second;
}

bool Network::link_exists(NodeId a, NodeId b) const {
  return find_link(a, b) != nullptr;
}

bool Network::link_up(NodeId a, NodeId b) const {
  const Link* l = find_link(a, b);
  return l != nullptr && l->up;
}

void Network::send(NodeId from, NodeId to, std::uint32_t kind,
                   Bytes payload) {
  if (!node_up(from) || !node_up(to)) {
    ++dropped_;
    return;
  }
  Link* link = find_link(from, to);
  if (link == nullptr || !link->up) {
    ++dropped_;
    return;
  }

  Bytes frm = frame::encode(kind, payload);
  // Meter every frame handed to a live link, attributed to the protocol
  // kind (RPC envelope flags stripped). Loss/corruption happen in flight,
  // after the sender already paid the bytes.
  wire_stats_.record(from, to, kind & kRpcKindMask, frm.size());

  if (corrupt_rate_ > 0 && rng_.chance(corrupt_rate_)) {
    ++corrupted_;
    const std::uint64_t flips = rng_.between(1, 4);
    for (std::uint64_t i = 0; i < flips; ++i) {
      frm[rng_.below(frm.size())] ^=
          static_cast<std::uint8_t>(rng_.between(1, 255));
    }
  }

  if (link->model.loss_rate > 0 && rng_.chance(link->model.loss_rate)) {
    ++dropped_;
    return;
  }

  SimTime deliver_at = sched_.now() + link->model.sample(rng_) +
                       link->model.transmission_delay(frm.size());
  // FIFO per link: a later send is never delivered before an earlier one —
  // unless reorder injection exempts this message, in which case it is held
  // back without advancing the FIFO watermark so later sends overtake it.
  if (reorder_rate_ > 0 &&
      (!reorder_filter_ || reorder_filter_(from, to)) &&
      rng_.chance(reorder_rate_)) {
    ++reordered_;
    deliver_at = std::max(deliver_at, link->last_delivery) +
                 rng_.between(1, std::max<SimTime>(reorder_max_extra_, 1));
  } else {
    deliver_at = std::max(deliver_at, link->last_delivery);
    link->last_delivery = deliver_at;
  }

  if (duplicate_rate_ > 0 && rng_.chance(duplicate_rate_)) {
    ++duplicated_;
    const SimTime extra = rng_.between(1, 2 * link->model.mean);
    wire_stats_.record(from, to, kind & kRpcKindMask, frm.size());
    deliver(from, to, frm, deliver_at + extra);
  }
  deliver(from, to, std::move(frm), deliver_at);
}

void Network::deliver(NodeId from, NodeId to, Bytes frm, SimTime when) {
  sched_.at(when, [this, from, to, frm = std::move(frm)]() {
    // Re-check liveness at delivery time: a node that crashed in flight
    // does not receive the message.
    if (!node_up(to)) {
      ++dropped_;
      return;
    }
    const auto it = actors_.find(to);
    if (it == actors_.end()) {
      ++dropped_;
      return;
    }
    // Verify the checksum at the receiver: a frame damaged in flight is
    // detected and dropped — corruption degrades to loss, which the upper
    // layers already handle (timeouts, session rewind).
    const auto view = frame::decode_view(frm);
    if (!view) {
      ++dropped_;
      ++corruption_detected_;
      return;
    }
    ++delivered_;
    it->second->handle(from, view->kind, view->payload);
  });
}

}  // namespace colony::sim
