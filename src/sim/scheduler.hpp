// Discrete-event scheduler: the heartbeat of the simulated cluster.
//
// The whole distributed system (DCs, edge nodes, peer groups, links) runs
// single-threaded inside one Scheduler, which makes every experiment
// deterministic and exactly reproducible from the RNG seed. Wall-clock CPU
// costs are measured separately by the google-benchmark micro benches.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/types.hpp"

namespace colony::sim {

class Scheduler {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `when` (>= now).
  void at(SimTime when, Callback cb);

  /// Schedule `cb` after a relative delay.
  void after(SimTime delay, Callback cb) { at(now_ + delay, std::move(cb)); }

  /// Execute the next event; returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or simulated time reaches `deadline`.
  void run_until(SimTime deadline);

  /// Run until the queue drains completely.
  void run_all();

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO among same-time events
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace colony::sim
