#include "sim/scheduler.hpp"

#include "util/assert.hpp"

namespace colony::sim {

void Scheduler::at(SimTime when, Callback cb) {
  COLONY_ASSERT(when >= now_, "cannot schedule an event in the past");
  queue_.push(Event{when, next_seq_++, std::move(cb)});
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  // Moving out of a priority_queue requires const_cast; the element is
  // popped immediately after, so this is safe.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  ++executed_;
  ev.cb();
  return true;
}

void Scheduler::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    step();
  }
  now_ = std::max(now_, deadline);
}

void Scheduler::run_all() {
  while (step()) {
  }
}

}  // namespace colony::sim
