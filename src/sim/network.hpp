// Simulated network: point-to-point links with configurable latency,
// jitter, loss and partitions.
//
// This substitutes for the paper's testbed transport (RabbitMQ between DCs,
// WebRTC between peers, `tc`-shaped latencies; section 7.2). Links preserve
// per-link FIFO order (TCP-like); a downed link or node silently drops
// traffic, which upper layers detect via RPC timeouts — exactly the failure
// signal the real system would see.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace colony::sim {

/// Latency model of one link class.
struct LatencyModel {
  SimTime mean = kMillisecond;
  SimTime jitter = 0;      // +- uniform jitter, clamped at >= 1us
  double loss_rate = 0.0;  // independent per-message loss

  [[nodiscard]] SimTime sample(Rng& rng) const;
};

/// The paper's latency constants (section 7.2).
namespace latency {
/// Intra-cluster / intra-DC: 0.15 ms measured in the authors' cluster.
inline constexpr LatencyModel kIntraDc{150 * kMicrosecond, 50 * kMicrosecond};
/// Inter-DC (geo mesh): carrier-grade tens of ms.
inline constexpr LatencyModel kInterDc{30 * kMillisecond, 5 * kMillisecond};
/// Carrier Ethernet edge uplink: 10 ms mean.
inline constexpr LatencyModel kCarrierEthernet{10 * kMillisecond,
                                               2 * kMillisecond};
/// Mobile cellular uplink: 50 ms mean.
inline constexpr LatencyModel kCellular{50 * kMillisecond, 10 * kMillisecond};
/// Peer-to-peer WebRTC link inside a peer group (close proximity).
inline constexpr LatencyModel kPeerLink{2 * kMillisecond,
                                        500 * kMicrosecond};
/// Local loopback (a node talking to itself, e.g. cache hit path).
inline constexpr LatencyModel kLoopback{10 * kMicrosecond, 0};
}  // namespace latency

class Network;

/// Base class of every simulated process (DC server, edge device, group
/// parent...). Subclasses implement `handle` for one-way messages and
/// `handle_request` for RPCs.
class Actor {
 public:
  Actor(Network& net, NodeId id);
  virtual ~Actor();

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }

 protected:
  friend class Network;

  virtual void handle(NodeId from, std::uint32_t kind,
                      const std::any& body) = 0;

  Network& net_;

 private:
  NodeId id_;
};

/// The network fabric: actor registry, link table, message delivery.
class Network {
 public:
  Network(Scheduler& sched, std::uint64_t seed)
      : sched_(sched), rng_(seed) {}

  Scheduler& scheduler() { return sched_; }
  [[nodiscard]] SimTime now() const { return sched_.now(); }
  Rng& rng() { return rng_; }

  /// Configure the (bidirectional) link between two nodes. Links are
  /// implicitly up once configured.
  void connect(NodeId a, NodeId b, LatencyModel model);

  /// Take one direction or both down/up. Messages on a down link vanish.
  void set_link_up(NodeId a, NodeId b, bool up);

  /// Crash / recover a node: all its traffic is dropped while down.
  void set_node_up(NodeId node, bool up);
  [[nodiscard]] bool node_up(NodeId node) const;

  /// Send a one-way message. Drops silently if no link, link down, either
  /// endpoint down, or the loss dice say so.
  void send(NodeId from, NodeId to, std::uint32_t kind, std::any body);

  // --- fault injection (chaos testing) -----------------------------------

  /// Independently per message, deliver a second copy after an extra
  /// random delay. Models at-least-once transports / retransmit storms;
  /// upper layers must filter by dot (DotTracker) or correlation id.
  void set_duplicate_rate(double rate) { duplicate_rate_ = rate; }

  /// Independently per message, exempt it from the per-link FIFO rule and
  /// delay it by up to `max_extra`, letting later sends overtake it.
  void set_reorder_rate(double rate, SimTime max_extra = 20 * kMillisecond) {
    reorder_rate_ = rate;
    reorder_max_extra_ = max_extra;
  }

  /// Restrict reorder injection to links the filter admits. Edge sessions
  /// ride one FIFO channel (TCP/WebRTC) by the system's transport model,
  /// while the inter-DC mesh (AMQP over WAN) may genuinely reorder — the
  /// chaos harness admits only the mesh. nullptr admits every link.
  using LinkFilter = std::function<bool(NodeId from, NodeId to)>;
  void set_reorder_filter(LinkFilter filter) {
    reorder_filter_ = std::move(filter);
  }

  /// Skew a node's physical clock by `offset` sim-time units (only ever
  /// forward; the HLC tolerates arbitrary skew). Read via local_now().
  void set_clock_skew(NodeId node, SimTime offset);
  [[nodiscard]] SimTime local_now(NodeId node) const;

  /// Restore every link and node (fault-free fabric). Injection rates and
  /// clock skews are left to their owners (ChaosRunner resets them).
  void heal();

  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t messages_duplicated() const {
    return duplicated_;
  }
  [[nodiscard]] std::uint64_t messages_reordered() const { return reordered_; }

  [[nodiscard]] bool link_exists(NodeId a, NodeId b) const;
  [[nodiscard]] bool link_up(NodeId a, NodeId b) const;

 private:
  friend class Actor;

  struct Link {
    LatencyModel model;
    bool up = true;
    SimTime last_delivery = 0;  // enforces per-link FIFO
  };

  void register_actor(Actor* actor);
  void unregister_actor(NodeId id);

  Link* find_link(NodeId from, NodeId to);
  [[nodiscard]] const Link* find_link(NodeId from, NodeId to) const;

  void deliver(NodeId from, NodeId to, std::uint32_t kind, std::any body,
               SimTime when);

  Scheduler& sched_;
  Rng rng_;
  std::unordered_map<NodeId, Actor*> actors_;
  std::map<std::pair<NodeId, NodeId>, Link> links_;
  std::set<NodeId> down_nodes_;
  std::unordered_map<NodeId, SimTime> clock_skew_;
  double duplicate_rate_ = 0.0;
  double reorder_rate_ = 0.0;
  LinkFilter reorder_filter_;
  SimTime reorder_max_extra_ = 20 * kMillisecond;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
};

}  // namespace colony::sim
