// Simulated network: point-to-point links with configurable latency,
// jitter, bandwidth, loss and partitions.
//
// This substitutes for the paper's testbed transport (RabbitMQ between DCs,
// WebRTC between peers, `tc`-shaped latencies; section 7.2). Every message
// crosses a link as a length-prefixed, checksummed byte frame
// `[kind u32 | len u32 | payload | crc32 u32]`: senders encode, receivers
// decode, so wire sizes are measured truth (per-link and per-kind counters)
// and transmission delay can be charged as size/throughput. Links preserve
// per-link FIFO order (TCP-like); a downed link or node silently drops
// traffic, and a corrupted frame fails its checksum at delivery and is
// dropped too — upper layers see both as loss and recover via RPC timeouts
// or session-channel rewind, exactly the failure signal the real system
// would see.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "sim/scheduler.hpp"
#include "util/binary_codec.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace colony::sim {

/// RPC envelope flag bits, OR-ed onto the protocol kind by the RPC layer so
/// the transport can attribute request/response bytes to the real protocol
/// method (`kind & kRpcKindMask`) in its per-kind counters. Protocol kinds
/// must stay below both flags.
inline constexpr std::uint32_t kRpcRequestFlag = 0x8000'0000u;
inline constexpr std::uint32_t kRpcResponseFlag = 0x4000'0000u;
inline constexpr std::uint32_t kRpcKindMask = 0x3FFF'FFFFu;

/// Frame layout of the byte transport.
namespace frame {

inline constexpr std::size_t kHeaderBytes = 8;   // kind u32 + length u32
inline constexpr std::size_t kTrailerBytes = 4;  // crc32 of header+payload
inline constexpr std::size_t kOverheadBytes = kHeaderBytes + kTrailerBytes;

/// Seal a payload into a checksummed frame. One allocation: the buffer is
/// reserved at full frame size up front and the trailer is appended in
/// place (no second encoder, no insert-splice).
[[nodiscard]] Bytes encode(std::uint32_t kind, ByteView payload);

/// Owning decoded frame (stored/queued copies).
struct View {
  std::uint32_t kind = 0;
  Bytes payload;
};

/// Non-owning decoded frame: `payload` points into the frame buffer passed
/// to decode_view and is valid only as long as that buffer.
struct ViewRef {
  std::uint32_t kind = 0;
  ByteView payload;
};

/// Validate and open a frame: nullopt on truncation, a length prefix that
/// disagrees with the frame size, or a checksum mismatch — i.e. any flipped
/// bit is detected and surfaces as loss, never as a wrong value.
[[nodiscard]] std::optional<View> decode(const Bytes& frm);

/// Same validation, zero-copy: the hot delivery path opens the frame in
/// place and hands the payload view straight to the actor.
[[nodiscard]] std::optional<ViewRef> decode_view(ByteView frm);

}  // namespace frame

/// Latency/bandwidth model of one link class.
struct LatencyModel {
  SimTime mean = kMillisecond;
  SimTime jitter = 0;      // +- uniform jitter, clamped at >= 1us
  double loss_rate = 0.0;  // independent per-message loss
  /// Link throughput in bytes per microsecond; 0 models an unmetered link.
  /// Transmission delay = frame size / throughput, charged on top of the
  /// propagation latency above.
  double bytes_per_us = 0.0;

  [[nodiscard]] SimTime sample(Rng& rng) const;
  [[nodiscard]] SimTime transmission_delay(std::size_t frame_bytes) const;
};

/// The paper's link classes (section 7.2): latency as measured in the
/// authors' testbed, throughput from the corresponding transport class.
namespace latency {
/// Intra-cluster / intra-DC: 0.15 ms, 10 Gbps datacentre fabric.
inline constexpr LatencyModel kIntraDc{150 * kMicrosecond, 50 * kMicrosecond,
                                       0.0, 1250.0};
/// Inter-DC (geo mesh): carrier-grade tens of ms, ~1 Gbps WAN.
inline constexpr LatencyModel kInterDc{30 * kMillisecond, 5 * kMillisecond,
                                       0.0, 125.0};
/// Carrier Ethernet edge uplink: 10 ms mean, ~100 Mbps.
inline constexpr LatencyModel kCarrierEthernet{10 * kMillisecond,
                                               2 * kMillisecond, 0.0, 12.5};
/// Mobile cellular uplink: 50 ms mean, ~20 Mbps.
inline constexpr LatencyModel kCellular{50 * kMillisecond, 10 * kMillisecond,
                                        0.0, 2.5};
/// Peer-to-peer WebRTC link inside a peer group (close proximity, ~50 Mbps).
inline constexpr LatencyModel kPeerLink{2 * kMillisecond, 500 * kMicrosecond,
                                        0.0, 6.25};
/// Local loopback (a node talking to itself, e.g. cache hit path).
inline constexpr LatencyModel kLoopback{10 * kMicrosecond, 0};
}  // namespace latency

class Network;

/// Base class of every simulated process (DC server, edge device, group
/// parent...). Subclasses implement `handle` for decoded frames.
class Actor {
 public:
  Actor(Network& net, NodeId id);
  virtual ~Actor();

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }

 protected:
  friend class Network;

  /// A checksum-verified frame: `body` is a view of the payload bytes
  /// (valid for the duration of the call only), which the actor decodes
  /// according to `kind` (decode-at-receive on every hop). Anything kept
  /// past the call must be copied out explicitly.
  virtual void handle(NodeId from, std::uint32_t kind, ByteView body) = 0;

  Network& net_;

 private:
  NodeId id_;
};

/// The network fabric: actor registry, link table, frame delivery.
class Network {
 public:
  Network(Scheduler& sched, std::uint64_t seed)
      : sched_(sched), rng_(seed) {}

  Scheduler& scheduler() { return sched_; }
  [[nodiscard]] SimTime now() const { return sched_.now(); }
  Rng& rng() { return rng_; }

  /// Configure the (bidirectional) link between two nodes. Links are
  /// implicitly up once configured.
  void connect(NodeId a, NodeId b, LatencyModel model);

  /// Take one direction or both down/up. Messages on a down link vanish.
  void set_link_up(NodeId a, NodeId b, bool up);

  /// Crash / recover a node: all its traffic is dropped while down.
  void set_node_up(NodeId node, bool up);
  [[nodiscard]] bool node_up(NodeId node) const;

  /// Send a one-way message: the payload is sealed into a checksummed
  /// frame and metered. Drops silently if no link, link down, either
  /// endpoint down, or the loss dice say so.
  void send(NodeId from, NodeId to, std::uint32_t kind, Bytes payload);

  // --- fault injection (chaos testing) -----------------------------------

  /// Independently per message, deliver a second copy after an extra
  /// random delay. Models at-least-once transports / retransmit storms;
  /// upper layers must filter by dot (DotTracker) or correlation id.
  void set_duplicate_rate(double rate) { duplicate_rate_ = rate; }

  /// Independently per message, exempt it from the per-link FIFO rule and
  /// delay it by up to `max_extra`, letting later sends overtake it.
  void set_reorder_rate(double rate, SimTime max_extra = 20 * kMillisecond) {
    reorder_rate_ = rate;
    reorder_max_extra_ = max_extra;
  }

  /// Restrict reorder injection to links the filter admits. Edge sessions
  /// ride one FIFO channel (TCP/WebRTC) by the system's transport model,
  /// while the inter-DC mesh (AMQP over WAN) may genuinely reorder — the
  /// chaos harness admits only the mesh. nullptr admits every link.
  using LinkFilter = std::function<bool(NodeId from, NodeId to)>;
  void set_reorder_filter(LinkFilter filter) {
    reorder_filter_ = std::move(filter);
  }

  /// Independently per message, flip 1-4 random bytes of the frame in
  /// flight. The checksum catches the damage at delivery, so a corrupted
  /// frame surfaces to upper layers as loss — never as a wrong value.
  void set_corrupt_rate(double rate) { corrupt_rate_ = rate; }

  /// Skew a node's physical clock by `offset` sim-time units (only ever
  /// forward; the HLC tolerates arbitrary skew). Read via local_now().
  void set_clock_skew(NodeId node, SimTime offset);
  [[nodiscard]] SimTime local_now(NodeId node) const;

  /// Restore every link and node (fault-free fabric). Injection rates and
  /// clock skews are left to their owners (ChaosRunner resets them).
  void heal();

  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t messages_duplicated() const {
    return duplicated_;
  }
  [[nodiscard]] std::uint64_t messages_reordered() const { return reordered_; }
  /// Frames damaged by corruption injection (at send time).
  [[nodiscard]] std::uint64_t messages_corrupted() const { return corrupted_; }
  /// Frames rejected by the delivery-time checksum. Every detection also
  /// counts as a drop; detected <= corrupted (a corrupted frame may be
  /// lost or crash-dropped before its checksum is ever checked).
  [[nodiscard]] std::uint64_t corruptions_detected() const {
    return corruption_detected_;
  }

  /// Measured per-link / per-kind byte counters of every frame handed to a
  /// live link (duplicate copies included; they occupy the wire too).
  [[nodiscard]] const WireStats& wire_stats() const { return wire_stats_; }
  WireStats& wire_stats() { return wire_stats_; }

  [[nodiscard]] bool link_exists(NodeId a, NodeId b) const;
  [[nodiscard]] bool link_up(NodeId a, NodeId b) const;

 private:
  friend class Actor;

  struct Link {
    LatencyModel model;
    bool up = true;
    SimTime last_delivery = 0;  // enforces per-link FIFO
  };

  void register_actor(Actor* actor);
  void unregister_actor(NodeId id);

  Link* find_link(NodeId from, NodeId to);
  [[nodiscard]] const Link* find_link(NodeId from, NodeId to) const;

  void deliver(NodeId from, NodeId to, Bytes frm, SimTime when);

  Scheduler& sched_;
  Rng rng_;
  std::unordered_map<NodeId, Actor*> actors_;
  std::map<std::pair<NodeId, NodeId>, Link> links_;
  std::set<NodeId> down_nodes_;
  std::unordered_map<NodeId, SimTime> clock_skew_;
  double duplicate_rate_ = 0.0;
  double reorder_rate_ = 0.0;
  double corrupt_rate_ = 0.0;
  LinkFilter reorder_filter_;
  SimTime reorder_max_extra_ = 20 * kMillisecond;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t corruption_detected_ = 0;
  WireStats wire_stats_;
};

}  // namespace colony::sim
