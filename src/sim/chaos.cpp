#include "sim/chaos.hpp"

#include <algorithm>
#include <optional>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace colony::sim {

const char* to_string(ChaosEventType t) {
  switch (t) {
    case ChaosEventType::kLinkDown:
      return "link-down";
    case ChaosEventType::kLinkUp:
      return "link-up";
    case ChaosEventType::kNodeCrash:
      return "node-crash";
    case ChaosEventType::kNodeRecover:
      return "node-recover";
    case ChaosEventType::kDuplicateOn:
      return "duplicate-on";
    case ChaosEventType::kDuplicateOff:
      return "duplicate-off";
    case ChaosEventType::kReorderOn:
      return "reorder-on";
    case ChaosEventType::kReorderOff:
      return "reorder-off";
    case ChaosEventType::kClockSkew:
      return "clock-skew";
    case ChaosEventType::kMigrateEdge:
      return "migrate-edge";
    case ChaosEventType::kHealAll:
      return "heal-all";
    case ChaosEventType::kCorruptOn:
      return "corrupt-on";
    case ChaosEventType::kCorruptOff:
      return "corrupt-off";
    case ChaosEventType::kCrashRestart:
      return "crash-restart";
    case ChaosEventType::kRestart:
      return "restart";
  }
  return "?";
}

std::string ChaosEvent::to_string() const {
  std::string s = "@" + std::to_string(at) + "us " +
                  colony::sim::to_string(type);
  if (a != 0) s += " a=" + std::to_string(a);
  if (b != 0) s += " b=" + std::to_string(b);
  if (arg != 0) s += " arg=" + std::to_string(arg);
  return s;
}

namespace {

// Fault classes drawn inside an epoch's fault window, in weight order.
enum Class : std::size_t {
  kClassPartition = 0,
  kClassCrash,
  kClassDuplicate,
  kClassReorder,
  kClassCorrupt,
  kClassSkew,
  kClassMigrate,
  kClassCrashRestart,
  kNumClasses,
};

}  // namespace

ChaosSchedule ChaosSchedule::generate(const ChaosConfig& config,
                                      const ChaosTopology& topo) {
  COLONY_ASSERT(!topo.dcs.empty(), "chaos needs at least one DC");
  COLONY_ASSERT(config.epochs >= 1, "chaos needs at least one epoch");
  Rng rng(config.seed);
  ChaosSchedule schedule;
  schedule.seed = config.seed;

  std::vector<double> weights(kNumClasses, 0.0);
  weights[kClassPartition] =
      (topo.dcs.size() >= 2 || !topo.edges.empty()) ? config.w_partition : 0;
  weights[kClassCrash] = config.w_crash;
  weights[kClassDuplicate] = config.w_duplicate;
  weights[kClassReorder] = config.w_reorder;
  weights[kClassCorrupt] = config.w_corrupt;
  weights[kClassSkew] = topo.edges.empty() ? 0 : config.w_skew;
  weights[kClassMigrate] =
      (topo.dcs.size() >= 2 && !topo.edges.empty()) ? config.w_migrate : 0;
  weights[kClassCrashRestart] = config.w_crash_restart;
  const Weighted pick_class(weights);

  const double mean_gap_us =
      1e6 / std::max(config.faults_per_second, 1e-6);

  auto outage = [&](SimTime at, SimTime epoch_end) -> std::optional<SimTime> {
    const SimTime d = rng.between(config.min_outage, config.max_outage);
    // A repair landing past the barrier is subsumed by its heal-all; skip
    // it so shrunk schedules stay free of stray repair events.
    if (at + d >= epoch_end) return std::nullopt;
    return at + d;
  };
  auto pick_node = [&](const std::vector<NodeId>& v) {
    return v[rng.below(v.size())];
  };

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const SimTime start = epoch * config.epoch_length;
    const SimTime end = start + config.epoch_length;
    const SimTime window_end =
        start + static_cast<SimTime>(config.fault_fraction *
                                     static_cast<double>(config.epoch_length));
    SimTime t = start;
    while (true) {
      t += std::max<SimTime>(
          static_cast<SimTime>(rng.exponential(mean_gap_us)), 1);
      if (t >= window_end) break;

      switch (pick_class.sample(rng)) {
        case kClassPartition: {
          NodeId a, b;
          // Partition the DC mesh or an edge uplink, whichever the
          // topology offers (both: 50/50).
          const bool mesh =
              topo.dcs.size() >= 2 && (topo.edges.empty() || rng.chance(0.5));
          if (mesh) {
            const std::size_t i = rng.below(topo.dcs.size());
            std::size_t j = rng.below(topo.dcs.size() - 1);
            if (j >= i) ++j;
            a = topo.dcs[i];
            b = topo.dcs[j];
          } else {
            a = pick_node(topo.edges);
            b = pick_node(topo.dcs);
          }
          schedule.events.push_back(
              {t, ChaosEventType::kLinkDown, a, b, 0});
          if (const auto up = outage(t, end)) {
            schedule.events.push_back(
                {*up, ChaosEventType::kLinkUp, a, b, 0});
          }
          break;
        }
        case kClassCrash: {
          const bool dc = topo.edges.empty() || rng.chance(0.5);
          const NodeId node = dc ? pick_node(topo.dcs) : pick_node(topo.edges);
          schedule.events.push_back(
              {t, ChaosEventType::kNodeCrash, node, 0, 0});
          if (const auto up = outage(t, end)) {
            schedule.events.push_back(
                {*up, ChaosEventType::kNodeRecover, node, 0, 0});
          }
          break;
        }
        case kClassDuplicate: {
          const std::uint64_t ppm = rng.between(1, config.max_dup_ppm);
          schedule.events.push_back(
              {t, ChaosEventType::kDuplicateOn, 0, 0, ppm});
          if (const auto off = outage(t, end)) {
            schedule.events.push_back(
                {*off, ChaosEventType::kDuplicateOff, 0, 0, 0});
          }
          break;
        }
        case kClassReorder: {
          const std::uint64_t ppm = rng.between(1, config.max_reorder_ppm);
          schedule.events.push_back(
              {t, ChaosEventType::kReorderOn, 0, 0, ppm});
          if (const auto off = outage(t, end)) {
            schedule.events.push_back(
                {*off, ChaosEventType::kReorderOff, 0, 0, 0});
          }
          break;
        }
        case kClassCorrupt: {
          const std::uint64_t ppm = rng.between(1, config.max_corrupt_ppm);
          schedule.events.push_back(
              {t, ChaosEventType::kCorruptOn, 0, 0, ppm});
          if (const auto off = outage(t, end)) {
            schedule.events.push_back(
                {*off, ChaosEventType::kCorruptOff, 0, 0, 0});
          }
          break;
        }
        case kClassSkew: {
          schedule.events.push_back({t, ChaosEventType::kClockSkew,
                                     pick_node(topo.edges), 0,
                                     rng.between(1, config.max_skew_us)});
          break;
        }
        case kClassMigrate: {
          schedule.events.push_back({t, ChaosEventType::kMigrateEdge,
                                     pick_node(topo.edges), 0,
                                     rng.below(topo.dcs.size())});
          break;
        }
        case kClassCrashRestart: {
          const bool dc = topo.edges.empty() || rng.chance(0.5);
          const NodeId node = dc ? pick_node(topo.dcs) : pick_node(topo.edges);
          schedule.events.push_back(
              {t, ChaosEventType::kCrashRestart, node, 0, 0});
          if (const auto up = outage(t, end)) {
            schedule.events.push_back(
                {*up, ChaosEventType::kRestart, node, 0, 0});
          }
          break;
        }
        default:
          break;
      }
    }
    schedule.events.push_back({end, ChaosEventType::kHealAll, 0, 0, 0});
  }

  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const ChaosEvent& x, const ChaosEvent& y) {
                     return x.at < y.at;
                   });
  return schedule;
}

std::vector<SimTime> ChaosSchedule::barriers() const {
  std::vector<SimTime> out;
  for (const ChaosEvent& e : events) {
    if (e.type == ChaosEventType::kHealAll) out.push_back(e.at);
  }
  return out;
}

std::string ChaosSchedule::to_string() const {
  std::string s = "chaos-schedule seed=" + std::to_string(seed) +
                  " events=" + std::to_string(events.size()) + "\n";
  for (const ChaosEvent& e : events) {
    s += "  " + e.to_string() + "\n";
  }
  return s;
}

std::vector<ChaosEvent> shrink_schedule(
    std::vector<ChaosEvent> events,
    const std::function<bool(const std::vector<ChaosEvent>&)>& still_fails,
    std::size_t max_trials) {
  const auto fault_indexes = [](const std::vector<ChaosEvent>& ev) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < ev.size(); ++i) {
      if (ev[i].type != ChaosEventType::kHealAll) idx.push_back(i);
    }
    return idx;
  };

  std::size_t trials = 0;
  std::size_t chunk = std::max<std::size_t>(fault_indexes(events).size() / 2,
                                            1);
  while (trials < max_trials) {
    const auto faults = fault_indexes(events);
    if (faults.empty()) break;
    chunk = std::min(chunk, faults.size());

    bool removed = false;
    for (std::size_t pos = 0; pos < faults.size() && trials < max_trials;
         pos += chunk) {
      const std::size_t n = std::min(chunk, faults.size() - pos);
      // Drop fault events faults[pos..pos+n).
      std::vector<ChaosEvent> trial;
      trial.reserve(events.size() - n);
      std::size_t next = pos;
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (next < pos + n && i == faults[next]) {
          ++next;
          continue;
        }
        trial.push_back(events[i]);
      }
      ++trials;
      if (still_fails(trial)) {
        events = std::move(trial);
        removed = true;
        break;  // re-derive fault indexes against the smaller schedule
      }
    }
    if (!removed) {
      if (chunk == 1) break;
      chunk = std::max<std::size_t>(chunk / 2, 1);
    }
  }
  return events;
}

void ChaosRunner::arm() {
  const SimTime base = net_.now();
  for (const ChaosEvent& e : events_) {
    if (e.type == ChaosEventType::kHealAll) continue;
    net_.scheduler().at(base + e.at, [this, e] { apply(e); });
  }
}

void ChaosRunner::arm_window(SimTime origin, SimTime until) {
  const SimTime base = net_.now();
  for (const ChaosEvent& e : events_) {
    if (e.type == ChaosEventType::kHealAll) continue;
    if (e.at < origin || e.at >= until) continue;
    net_.scheduler().at(base + (e.at - origin), [this, e] { apply(e); });
  }
}

void ChaosRunner::apply(const ChaosEvent& event) {
  switch (event.type) {
    case ChaosEventType::kLinkDown:
      net_.set_link_up(event.a, event.b, false);
      break;
    case ChaosEventType::kLinkUp:
      net_.set_link_up(event.a, event.b, true);
      break;
    case ChaosEventType::kNodeCrash:
      net_.set_node_up(event.a, false);
      break;
    case ChaosEventType::kNodeRecover:
      net_.set_node_up(event.a, true);
      break;
    case ChaosEventType::kDuplicateOn:
      net_.set_duplicate_rate(static_cast<double>(event.arg) / 1e6);
      break;
    case ChaosEventType::kDuplicateOff:
      net_.set_duplicate_rate(0);
      break;
    case ChaosEventType::kReorderOn:
      net_.set_reorder_rate(static_cast<double>(event.arg) / 1e6);
      break;
    case ChaosEventType::kReorderOff:
      net_.set_reorder_rate(0);
      break;
    case ChaosEventType::kCorruptOn:
      net_.set_corrupt_rate(static_cast<double>(event.arg) / 1e6);
      break;
    case ChaosEventType::kCorruptOff:
      net_.set_corrupt_rate(0);
      break;
    case ChaosEventType::kClockSkew:
      net_.set_clock_skew(event.a, event.arg);
      skewed_.push_back(event.a);
      break;
    case ChaosEventType::kMigrateEdge:
      if (migrate_hook) migrate_hook(event.a, event.arg);
      break;
    case ChaosEventType::kCrashRestart:
      net_.set_node_up(event.a, false);
      if (crash_hook) {
        crash_hook(event.a);
        if (std::find(crashed_.begin(), crashed_.end(), event.a) ==
            crashed_.end()) {
          crashed_.push_back(event.a);
        }
      }
      break;
    case ChaosEventType::kRestart:
      if (restart_hook) {
        restart_hook(event.a);
        std::erase(crashed_, event.a);
      }
      net_.set_node_up(event.a, true);
      break;
    case ChaosEventType::kHealAll:
      reset();
      break;
  }
}

void ChaosRunner::reset() {
  // Restart crashed nodes BEFORE healing the fabric: recovery must work
  // from durable state alone, not from traffic that slips in first.
  for (const NodeId node : crashed_) {
    if (restart_hook) restart_hook(node);
    net_.set_node_up(node, true);
  }
  crashed_.clear();
  net_.heal();
  net_.set_duplicate_rate(0);
  net_.set_reorder_rate(0);
  net_.set_corrupt_rate(0);
  for (const NodeId node : skewed_) net_.set_clock_skew(node, 0);
  skewed_.clear();
}

}  // namespace colony::sim
