// Asynchronous RPC over the simulated byte transport.
//
// Request/response with correlation ids and timeouts. Servers may answer
// asynchronously (e.g. a DC coordinator replies only after 2PC finishes) by
// capturing the ReplyFn. A lost message or dead peer surfaces to the caller
// as Error::kUnavailable after the timeout — the same signal a TCP/WebRTC
// stack would deliver, which is what drives reconnection and migration.
//
// RPC traffic rides the same framed byte transport as one-way messages:
// the envelope sets a flag bit on the wire kind (`method | kRpcRequestFlag`
// or `| kRpcResponseFlag`) so per-kind byte metering attributes request and
// response bytes to the real protocol method, and the envelope body is
// `[rpc_id u64 | payload]` for requests, `[rpc_id u64 | ok u8 |
// payload-or-error-string]` for responses.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>

#include "sim/network.hpp"
#include "util/codec.hpp"
#include "util/result.hpp"

namespace colony::sim {

inline constexpr SimTime kDefaultRpcTimeout = 2 * kSecond;

class RpcActor : public Actor {
 public:
  using ResponseFn = std::function<void(Result<Bytes>)>;
  using ReplyFn = std::function<void(Result<Bytes>)>;

  RpcActor(Network& net, NodeId id) : Actor(net, id) {}

  /// Issue an RPC with pre-encoded payload bytes. `on_response` fires
  /// exactly once: with the reply payload, or with kUnavailable when the
  /// timeout elapses first.
  void call(NodeId to, std::uint32_t method, Bytes payload,
            ResponseFn on_response, SimTime timeout = kDefaultRpcTimeout);

  /// Issue an RPC with a typed request message (encoded via codec traits).
  template <typename Req>
  void call(NodeId to, std::uint32_t method, const Req& req,
            ResponseFn on_response, SimTime timeout = kDefaultRpcTimeout) {
    call(to, method, codec::to_bytes(req), std::move(on_response), timeout);
  }

  /// Fire-and-forget message with pre-encoded payload bytes.
  void tell(NodeId to, std::uint32_t kind, Bytes body) {
    net_.send(id(), to, kind, std::move(body));
  }

  /// Fire-and-forget message with a typed body.
  template <typename Msg>
  void tell(NodeId to, std::uint32_t kind, const Msg& msg) {
    tell(to, kind, codec::to_bytes(msg));
  }

 protected:
  /// One-way messages (no RPC envelope flag). `body` is a view of the
  /// payload of a checksum-verified frame, valid for the duration of the
  /// call; implementations decode it by `kind` and copy out anything they
  /// keep.
  virtual void on_message(NodeId from, std::uint32_t kind, ByteView body) = 0;

  /// Incoming RPC. `payload` is a view valid for the duration of the call.
  /// Implementations must eventually invoke `reply` with the encoded
  /// response (calling it after the client timed out is harmless — the
  /// client ignores it).
  virtual void on_request(NodeId from, std::uint32_t method, ByteView payload,
                          ReplyFn reply) = 0;

  /// Crash support: forget every outstanding call WITHOUT firing its
  /// callback (a crashed process loses its continuations). The timeout
  /// closures already scheduled look their rpc id up in the pending map
  /// and become no-ops. Late responses to dropped ids are ignored too.
  void abort_pending_calls() { pending_.clear(); }

 private:
  void handle(NodeId from, std::uint32_t kind, ByteView body) final;

  std::uint64_t next_rpc_id_ = 1;
  std::unordered_map<std::uint64_t, ResponseFn> pending_;
};

}  // namespace colony::sim
