// Asynchronous RPC over the simulated network.
//
// Request/response with correlation ids and timeouts. Servers may answer
// asynchronously (e.g. a DC coordinator replies only after 2PC finishes) by
// capturing the ReplyFn. A lost message or dead peer surfaces to the caller
// as Error::kUnavailable after the timeout — the same signal a TCP/WebRTC
// stack would deliver, which is what drives reconnection and migration.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "sim/network.hpp"
#include "util/result.hpp"

namespace colony::sim {

/// Message kinds reserved by the RPC plumbing; protocol kinds must be below.
inline constexpr std::uint32_t kRpcRequestKind = 0xFFFF0001;
inline constexpr std::uint32_t kRpcResponseKind = 0xFFFF0002;

inline constexpr SimTime kDefaultRpcTimeout = 2 * kSecond;

class RpcActor : public Actor {
 public:
  using ResponseFn = std::function<void(Result<std::any>)>;
  using ReplyFn = std::function<void(Result<std::any>)>;

  RpcActor(Network& net, NodeId id) : Actor(net, id) {}

  /// Issue an RPC. `on_response` fires exactly once: with the reply, or
  /// with kUnavailable when the timeout elapses first.
  void call(NodeId to, std::uint32_t method, std::any payload,
            ResponseFn on_response, SimTime timeout = kDefaultRpcTimeout);

  /// Fire-and-forget message.
  void tell(NodeId to, std::uint32_t kind, std::any body) {
    net_.send(id(), to, kind, std::move(body));
  }

 protected:
  /// One-way messages (kinds outside the RPC plumbing).
  virtual void on_message(NodeId from, std::uint32_t kind,
                          const std::any& body) = 0;

  /// Incoming RPC. Implementations must eventually invoke `reply` (calling
  /// it after the client timed out is harmless — the client ignores it).
  virtual void on_request(NodeId from, std::uint32_t method,
                          const std::any& payload, ReplyFn reply) = 0;

 private:
  struct RequestBody {
    std::uint64_t rpc_id;
    std::uint32_t method;
    std::any payload;
  };
  struct ResponseBody {
    std::uint64_t rpc_id;
    bool ok;
    std::any payload;       // valid when ok
    std::string error;      // valid when !ok
  };

  void handle(NodeId from, std::uint32_t kind, const std::any& body) final;

  std::uint64_t next_rpc_id_ = 1;
  std::unordered_map<std::uint64_t, ResponseFn> pending_;
};

}  // namespace colony::sim
