#include "sim/rpc.hpp"

#include "util/assert.hpp"

namespace colony::sim {

void RpcActor::call(NodeId to, std::uint32_t method, std::any payload,
                    ResponseFn on_response, SimTime timeout) {
  const std::uint64_t rpc_id = next_rpc_id_++;
  pending_.emplace(rpc_id, std::move(on_response));

  net_.send(id(), to, kRpcRequestKind,
            RequestBody{rpc_id, method, std::move(payload)});

  net_.scheduler().after(timeout, [this, rpc_id] {
    const auto it = pending_.find(rpc_id);
    if (it == pending_.end()) return;  // already answered
    ResponseFn cb = std::move(it->second);
    pending_.erase(it);
    cb(Error{Error::Code::kUnavailable, "rpc timeout"});
  });
}

void RpcActor::handle(NodeId from, std::uint32_t kind, const std::any& body) {
  if (kind == kRpcRequestKind) {
    const auto& req = std::any_cast<const RequestBody&>(body);
    const std::uint64_t rpc_id = req.rpc_id;
    const NodeId client = from;
    auto reply = [this, client, rpc_id](Result<std::any> result) {
      if (result.ok()) {
        net_.send(id(), client, kRpcResponseKind,
                  ResponseBody{rpc_id, true, std::move(result).value(), {}});
      } else {
        net_.send(id(), client, kRpcResponseKind,
                  ResponseBody{rpc_id, false, {}, result.error().message});
      }
    };
    on_request(from, req.method, req.payload, std::move(reply));
    return;
  }
  if (kind == kRpcResponseKind) {
    const auto& resp = std::any_cast<const ResponseBody&>(body);
    const auto it = pending_.find(resp.rpc_id);
    if (it == pending_.end()) return;  // timed out earlier; drop late reply
    ResponseFn cb = std::move(it->second);
    pending_.erase(it);
    if (resp.ok) {
      cb(resp.payload);
    } else {
      cb(Error{Error::Code::kUnavailable, resp.error});
    }
    return;
  }
  on_message(from, kind, body);
}

}  // namespace colony::sim
