#include "sim/rpc.hpp"

#include "util/assert.hpp"

namespace colony::sim {

void RpcActor::call(NodeId to, std::uint32_t method, Bytes payload,
                    ResponseFn on_response, SimTime timeout) {
  COLONY_ASSERT((method & ~kRpcKindMask) == 0, "method collides with flags");
  const std::uint64_t rpc_id = next_rpc_id_++;
  pending_.emplace(rpc_id, std::move(on_response));

  Encoder enc;
  enc.u64(rpc_id);
  enc.raw(payload);
  net_.send(id(), to, method | kRpcRequestFlag, enc.take());

  net_.scheduler().after(timeout, [this, rpc_id] {
    const auto it = pending_.find(rpc_id);
    if (it == pending_.end()) return;  // already answered
    ResponseFn cb = std::move(it->second);
    pending_.erase(it);
    cb(Error{Error::Code::kUnavailable, "rpc timeout"});
  });
}

void RpcActor::handle(NodeId from, std::uint32_t kind, ByteView body) {
  if ((kind & kRpcRequestFlag) != 0) {
    Decoder dec(body);
    const std::uint64_t rpc_id = dec.u64();
    const ByteView payload = dec.tail_view();
    COLONY_ASSERT(dec.ok(), "malformed rpc request envelope");
    const std::uint32_t method = kind & kRpcKindMask;
    const NodeId client = from;
    auto reply = [this, client, rpc_id, method](Result<Bytes> result) {
      Encoder enc;
      enc.u64(rpc_id);
      enc.boolean(result.ok());
      if (result.ok()) {
        enc.raw(result.value());
      } else {
        const std::string& msg = result.error().message;
        enc.raw(ByteView(reinterpret_cast<const std::uint8_t*>(msg.data()),
                         msg.size()));
      }
      net_.send(id(), client, method | kRpcResponseFlag, enc.take());
    };
    on_request(from, method, payload, std::move(reply));
    return;
  }
  if ((kind & kRpcResponseFlag) != 0) {
    Decoder dec(body);
    const std::uint64_t rpc_id = dec.u64();
    const bool ok = dec.boolean();
    Bytes payload = dec.tail();
    COLONY_ASSERT(dec.ok(), "malformed rpc response envelope");
    const auto it = pending_.find(rpc_id);
    if (it == pending_.end()) return;  // timed out earlier; drop late reply
    ResponseFn cb = std::move(it->second);
    pending_.erase(it);
    if (ok) {
      cb(std::move(payload));
    } else {
      cb(Error{Error::Code::kUnavailable,
               std::string(payload.begin(), payload.end())});
    }
    return;
  }
  on_message(from, kind, body);
}

}  // namespace colony::sim
