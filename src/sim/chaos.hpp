// Deterministic chaos scheduling: reproducible fault timelines for the
// simulated cluster.
//
// From a single 64-bit seed, ChaosSchedule::generate derives a timeline of
// fault events — link partitions/heals, node crash/recover, message
// duplication and reordering windows, clock skew, and edge migrations —
// split into epochs that each end with a kHealAll barrier. The harness
// driving the run interprets the barrier: heal the fabric, quiesce, and run
// the invariant checkers, so every epoch ends with a full TCC+ audit.
//
// The same seed always yields the byte-for-byte identical schedule
// (ChaosSchedule::to_string), which is what makes failures replayable: a
// failing run prints its seed and its (shrunk) schedule, and re-running the
// seed reproduces the exact interleaving.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/network.hpp"
#include "util/types.hpp"

namespace colony::sim {

enum class ChaosEventType : std::uint8_t {
  kLinkDown = 0,     // a <-> b partitioned
  kLinkUp = 1,       // a <-> b healed
  kNodeCrash = 2,    // node a crashes (all traffic dropped)
  kNodeRecover = 3,  // node a recovers
  kDuplicateOn = 4,  // duplication window opens; arg = rate in ppm
  kDuplicateOff = 5,
  kReorderOn = 6,  // reorder window opens; arg = rate in ppm
  kReorderOff = 7,
  kClockSkew = 8,    // node a's clock skewed forward by arg microseconds
  kMigrateEdge = 9,  // edge node a migrates to DC index arg
  kHealAll = 10,     // epoch barrier: heal, quiesce, audit invariants
  kCorruptOn = 11,   // payload-corruption window opens; arg = rate in ppm
  kCorruptOff = 12,
  kCrashRestart = 13,  // node a killed: volatile state wiped, traffic dropped
  kRestart = 14,       // node a restarted from its durable state (WAL)
};

[[nodiscard]] const char* to_string(ChaosEventType t);

struct ChaosEvent {
  SimTime at = 0;
  ChaosEventType type{};
  NodeId a = 0;
  NodeId b = 0;
  std::uint64_t arg = 0;

  [[nodiscard]] std::string to_string() const;
  bool operator==(const ChaosEvent&) const = default;
};

/// The node universe a schedule is generated against. Only ids are needed;
/// the generator never touches live objects.
struct ChaosTopology {
  std::vector<NodeId> dcs;    // DC node ids, indexed by DcId
  std::vector<NodeId> edges;  // edge client node ids
};

struct ChaosConfig {
  std::uint64_t seed = 1;

  /// Epoch structure: faults are injected in the first `fault_fraction` of
  /// each epoch; the rest is slack for in-flight outages to end before the
  /// kHealAll barrier closes the epoch.
  std::size_t epochs = 3;
  SimTime epoch_length = 4 * kSecond;
  double fault_fraction = 0.6;

  /// Mean fault-injection rate inside the fault window.
  double faults_per_second = 3.0;

  /// Relative weights of the fault vocabulary (0 disables a class).
  double w_partition = 4.0;  // link down/up: DC mesh or edge uplink
  double w_crash = 2.0;      // node crash/recover: DC or edge
  double w_duplicate = 2.0;  // message duplication window
  double w_reorder = 2.0;    // message reordering window
  double w_corrupt = 2.0;    // payload-corruption window (checksum drops)
  double w_skew = 1.0;       // clock skew on an edge
  double w_migrate = 1.0;    // edge migrates to another DC
  /// Crash-restart: the node's in-memory state is destroyed and later
  /// rebuilt from its write-ahead log + checkpoint (crash_hook /
  /// restart_hook). Non-zero by default so every chaos sweep exercises the
  /// recovery path; without hooks it degrades to a plain outage.
  double w_crash_restart = 1.5;

  /// Outage durations (partition, crash, injection windows).
  SimTime min_outage = 200 * kMillisecond;
  SimTime max_outage = 1500 * kMillisecond;

  /// Ceilings for the randomized injection parameters.
  std::uint64_t max_dup_ppm = 200'000;      // <= 20% duplication
  std::uint64_t max_reorder_ppm = 200'000;  // <= 20% reordering
  std::uint64_t max_corrupt_ppm = 100'000;  // <= 10% frame corruption
  std::uint64_t max_skew_us = 2'000'000;    // <= 2 s clock skew
};

class ChaosSchedule {
 public:
  /// Deterministically derive the fault timeline from config + topology.
  [[nodiscard]] static ChaosSchedule generate(const ChaosConfig& config,
                                              const ChaosTopology& topo);

  /// Events sorted by time (generation order breaks ties).
  std::vector<ChaosEvent> events;
  std::uint64_t seed = 0;

  /// Times of the kHealAll barriers, in order (the harness drives the run
  /// epoch by epoch up to each barrier).
  [[nodiscard]] std::vector<SimTime> barriers() const;

  /// Canonical dump: identical seeds yield identical strings, and a failing
  /// run's printed schedule can be diffed against a replay's.
  [[nodiscard]] std::string to_string() const;
};

/// Greedy schedule shrinking (delta debugging): drop chunks of fault events
/// of halving size while `still_fails` keeps reproducing the failure.
/// kHealAll barriers are never dropped (they define the audit points). At
/// most `max_trials` predicate evaluations are spent.
[[nodiscard]] std::vector<ChaosEvent> shrink_schedule(
    std::vector<ChaosEvent> events,
    const std::function<bool(const std::vector<ChaosEvent>&)>& still_fails,
    std::size_t max_trials = 256);

/// Applies fault events to a Network. The sim layer cannot reach the edge
/// runtime, so kMigrateEdge is delegated to a hook the harness wires up.
class ChaosRunner {
 public:
  ChaosRunner(Network& net, std::vector<ChaosEvent> events)
      : net_(net), events_(std::move(events)) {}

  /// Schedule every fault event at its absolute time. kHealAll barriers are
  /// not armed; the harness interprets them.
  void arm();

  /// Arm only the events with `origin <= at < until`, re-based so an event
  /// at schedule time `at` fires at `now + (at - origin)`. The epoch-driven
  /// harness uses this: quiescing past a barrier consumes real sim time, so
  /// each epoch's faults are re-based onto the clock when the epoch starts.
  void arm_window(SimTime origin, SimTime until);

  /// Apply one event immediately.
  void apply(const ChaosEvent& event);

  /// Clear every standing injection: heal links/nodes, zero the duplicate
  /// and reorder rates, remove clock skews, and restart any node still
  /// crashed (restart BEFORE healing, so the node rejoins from durable
  /// state exactly as it would mid-run). Called at each barrier.
  void reset();

  /// Invoked for kMigrateEdge events: (edge node id, target DC index).
  std::function<void(NodeId, std::size_t)> migrate_hook;

  /// Durability hooks, wired by the harness to Cluster::crash_node /
  /// Cluster::restart_node. kCrashRestart drops the node's traffic AND
  /// invokes crash_hook (wipe volatile state); kRestart invokes
  /// restart_hook (recover from WAL) then restores traffic. With no hooks
  /// the pair behaves exactly like kNodeCrash/kNodeRecover.
  std::function<void(NodeId)> crash_hook;
  std::function<void(NodeId)> restart_hook;

 private:
  Network& net_;
  std::vector<ChaosEvent> events_;
  std::vector<NodeId> skewed_;   // nodes with a standing clock skew
  std::vector<NodeId> crashed_;  // nodes awaiting a restart
};

}  // namespace colony::sim
