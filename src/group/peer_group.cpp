#include "group/peer_group.hpp"

#include <algorithm>

#include "security/acl.hpp"
#include "util/assert.hpp"

namespace colony {

PeerGroupParent::PeerGroupParent(sim::Network& net, NodeId id,
                                 GroupParentConfig config)
    : RpcActor(net, id),
      config_(config),
      keys_(config.session_key_seed),
      engine_(txns_, store_, config.num_dcs) {
  security::register_acl_crdt();
  engine_.set_security_check([this](const Transaction& txn) {
    const Crdt* obj = store_.current(security::acl_object_key());
    return security::txn_allowed(
        dynamic_cast<const security::AclObject*>(obj), txn);
  });
  engine_.set_policy_key(security::acl_object_key());
  engine_.set_visible_hook([this](const Transaction& txn) {
    for (const OpRecord& op : txn.ops) {
      if (op.key == security::acl_object_key()) {
        engine_.recompute_masks();
        break;
      }
    }
  });
  rebuild_epaxos();
  net.scheduler().after(config_.heartbeat_interval,
                        [this] { heartbeat_tick(); });
  // Open the DC session eagerly (empty interest): the DC then streams
  // K-stable cut advances, so the parent's state vector tracks the world
  // and joiners' causal-compatibility checks (section 5.2) pass without a
  // first cache miss having to create the session as a side effect.
  // Deferred one tick: the topology builder wires the uplink right after
  // this constructor returns.
  net.scheduler().after(10 * kMillisecond, [this] {
    call(config_.dc, proto::kSubscribe, proto::SubscribeReq{{}, 0},
         [this](Result<Bytes> r) {
           if (!r.ok()) return;
           const auto resp =
               codec::from_bytes<proto::SubscribeResp>(r.value());
           engine_.seed_state(resp.cut);
           engine_.drain();
         });
  });
}

void PeerGroupParent::heartbeat_tick() {
  for (const NodeId m : std::vector<NodeId>(members_.begin(),
                                            members_.end())) {
    call(m, proto::kGroupPing, Bytes{},
         [this, m](Result<Bytes> r) {
           if (r.ok()) {
             missed_heartbeats_[m] = 0;
             return;
           }
           if (++missed_heartbeats_[m] >= config_.heartbeat_misses) {
             // The member is unreachable: reconfigure so the group's
             // consensus regains a full quorum (section 5.1.1).
             missed_heartbeats_.erase(m);
             handle_leave(proto::GroupLeaveReq{m});
           }
         },
         /*timeout=*/config_.heartbeat_interval / 2);
  }
  net_.scheduler().after(config_.heartbeat_interval,
                         [this] { heartbeat_tick(); });
}

std::vector<NodeId> PeerGroupParent::members() const {
  std::vector<NodeId> out{id()};
  out.insert(out.end(), members_.begin(), members_.end());
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Membership.
// ---------------------------------------------------------------------------

void PeerGroupParent::broadcast_membership() {
  const proto::MembershipMsg msg{epoch_, members()};
  for (const NodeId m : members_) {
    tell(m, proto::kGroupMembership, msg);
  }
}

void PeerGroupParent::handle_join(NodeId from, const proto::GroupJoinReq& req,
                                  ReplyFn reply) {
  proto::GroupJoinResp resp;
  // Causal compatibility (section 5.2): the group must be able to satisfy
  // the joiner's dependencies. If the joiner is ahead of the parent the
  // join is refused; the client may retry once the parent catches up.
  if (!req.state.leq(engine_.state_vector())) {
    resp.accepted = false;
    reply(codec::to_bytes(resp));
    return;
  }
  members_.insert(req.node);
  missed_heartbeats_.erase(req.node);  // fresh start for a rejoiner
  auto& interest = member_interest_[req.node];
  for (const ObjectKey& key : req.interest) {
    interest.insert(key);
    ensure_dc_interest(key);
  }
  ++epoch_;
  resp.accepted = true;
  resp.epoch = epoch_;
  resp.members = members();
  keys_.authorize("_group", req.user);
  resp.session_key = keys_.key_for("_group", req.user).value_or(0);
  reply(codec::to_bytes(resp));
  broadcast_membership();
  rebuild_epaxos();
  (void)from;
}

void PeerGroupParent::handle_leave(const proto::GroupLeaveReq& req) {
  if (members_.erase(req.node) == 0) return;
  member_interest_.erase(req.node);
  ++epoch_;
  broadcast_membership();
  rebuild_epaxos();
}

// ---------------------------------------------------------------------------
// Consensus (the parent is a full EPaxos member).
// ---------------------------------------------------------------------------

void PeerGroupParent::rebuild_epaxos() {
  epaxos_ = std::make_unique<consensus::Epaxos>(
      id(), members(),
      [this](NodeId to, const consensus::EpaxosMsg& msg) {
        tell(to, proto::kEpaxos, proto::EpaxosEnvelope{epoch_, msg});
      },
      [this](const consensus::Command& cmd) { on_group_deliver(cmd); });
}

void PeerGroupParent::on_group_deliver(const consensus::Command& cmd) {
  const proto::GroupCommand gc = proto::GroupCommand::from_bytes(cmd.payload);
  const Dot dot = gc.txn.meta.dot;

  bool conflict = false;
  if (gc.ordered) {
    for (const auto& [key, expected] : gc.expected) {
      const auto it = seen_per_key_.find(key);
      if (it != seen_per_key_.end() && it->second > expected) {
        conflict = true;
        break;
      }
    }
  }
  for (const ObjectKey& key : cmd.keys) ++seen_per_key_[key];
  if (conflict) return;  // deterministically aborted at every member

  engine_.ingest(gc.txn);
  apply_queue_.push_back(dot);
  drain_apply_queue();

  if (!forwarded_.contains(dot)) {
    // A dot re-delivered across an epoch change may already be queued or
    // in flight: enqueue at most once.
    if (!forward_order_.contains(dot)) {
      forward_order_.emplace(dot, next_forward_order_++);
      forward_queue_.push_back(dot);
      pump_forward();
    }
  } else {
    // Re-proposed after an epoch change, but the DC already sequenced it
    // in a previous epoch: relay the known commit info so the origin's
    // unacked queue can drain.
    const Transaction* txn = txns_.find(dot);
    if (txn != nullptr && txn->meta.concrete) {
      const DcId dc = txn->meta.first_accepted();
      const proto::ResolutionMsg relay{dot, dc, txn->meta.commit.at(dc),
                                       txn->meta.snapshot};
      for (const NodeId m : members_) {
        tell(m, proto::kResolutionRelay, relay);
      }
    }
  }
}

void PeerGroupParent::drain_apply_queue() {
  while (!apply_queue_.empty()) {
    const Dot dot = apply_queue_.front();
    if (!engine_.apply_causal(dot)) break;
    apply_queue_.pop_front();
  }
}

// ---------------------------------------------------------------------------
// Sync point: hand the group's visibility order to the DC (section 5.1.3).
// ---------------------------------------------------------------------------

void PeerGroupParent::pump_forward() {
  // Pipelined, strictly in the EPaxos visibility order (section 5.1.3):
  // that is the only order the DC may observe, because a later entry can
  // causally depend on an earlier one in ways the vectors cannot express
  // while commits are symbolic. Up to a window of forwards ride the FIFO
  // uplink concurrently — the DC still receives and sequences them in
  // order. The per-origin interference key guarantees an entry's symbolic
  // deps are always *earlier* entries, so a dep is either resolved or in
  // flight ahead of us.
  constexpr std::size_t kForwardWindow = 16;

  while (in_flight_.size() < kForwardWindow && !forward_queue_.empty()) {
    const Dot dot = forward_queue_.front();
    const Transaction* txn = txns_.find(dot);
    COLONY_ASSERT(txn != nullptr, "forward queue references unknown txn");
    // Forward optimistically: a symbolic dependency is normally in flight
    // just ahead of us on the FIFO uplink, and an unknown one may have
    // reached the DC directly (the origin committed it outside the group,
    // e.g. while removed from the membership). If the DC truly lacks a
    // dependency it answers kIncompatible, which requeues this entry in
    // order and retries — self-healing even when epoch changes reordered
    // deliveries.
    forward_queue_.pop_front();
    in_flight_.insert(dot);
    call(config_.dc, proto::kEdgeCommit, proto::EdgeCommitReq{*txn},
         [this, dot](Result<Bytes> r) {
           in_flight_.erase(dot);
           if (r.ok()) {
             const auto resp =
                 codec::from_bytes<proto::EdgeCommitResp>(r.value());
             engine_.resolve_full(dot, resp.dc, resp.ts,
                                  resp.resolved_snapshot);
             forwarded_.insert(dot);
             forward_order_.erase(dot);
             drain_apply_queue();
             const proto::ResolutionMsg relay{dot, resp.dc, resp.ts,
                                              resp.resolved_snapshot};
             for (const NodeId m : members_) {
               tell(m, proto::kResolutionRelay, relay);
             }
             pump_forward();
             return;
           }
           // Offline (Figure 5) or transiently incompatible: requeue in
           // the original visibility order and retry later; the DC
           // deduplicates by dot.
           const auto pos = std::find_if(
               forward_queue_.begin(), forward_queue_.end(),
               [&](const Dot& other) {
                 return forward_order_.at(other) > forward_order_.at(dot);
               });
           forward_queue_.insert(pos, dot);
           if (!retry_scheduled_) {
             retry_scheduled_ = true;
             net_.scheduler().after(config_.retry_interval, [this] {
               retry_scheduled_ = false;
               pump_forward();
             });
           }
         });
  }
}

void PeerGroupParent::migrate_to_dc(NodeId new_dc, DoneCb done) {
  const NodeId old_dc = config_.dc;
  config_.dc = new_dc;
  std::vector<ObjectKey> interest(dc_interest_.begin(), dc_interest_.end());
  call(new_dc, proto::kMigrate,
       proto::MigrateReq{engine_.state_vector(), std::move(interest), 0,
                         engine_.seeded_cut()},
       [this, old_dc, done = std::move(done)](Result<Bytes> r) {
         if (!r.ok()) {
           config_.dc = old_dc;
           done(r.error());
           return;
         }
         const auto resp = codec::from_bytes<proto::MigrateResp>(r.value());
         if (!resp.compatible) {
           // The new DC lacks our causal past (section 3.8); stay put and
           // let the caller retry once replication catches up.
           config_.dc = old_dc;
           done(Error{Error::Code::kIncompatible,
                      "new DC lacks the group's causal dependencies"});
           return;
         }
         engine_.seed_state(resp.cut);
         engine_.drain();
         drain_apply_queue();
         // Anything the old DC never acknowledged goes again to the new
         // one; dots filter duplicates (section 3.8).
         pump_forward();
         done(Result<void>{});
       });
}

// ---------------------------------------------------------------------------
// DC-side session: union interest set, push relay.
// ---------------------------------------------------------------------------

void PeerGroupParent::ensure_dc_interest(const ObjectKey& key) {
  if (dc_interest_.contains(key)) return;
  dc_interest_.insert(key);
  call(config_.dc, proto::kFetchObject, proto::FetchReq{key, true, 0},
       [this, key](Result<Bytes> r) {
         if (!r.ok()) {
           if (r.error().code == Error::Code::kUnavailable) {
             // Offline: forget the registration so the next miss (or the
             // scheduled retry) re-subscribes once the uplink is back.
             dc_interest_.erase(key);
             net_.scheduler().after(config_.retry_interval, [this, key] {
               ensure_dc_interest(key);
             });
           }
           return;  // kNotFound: a fresh object, nothing to seed
         }
         const auto resp = codec::from_bytes<proto::FetchResp>(r.value());
         store_.import_snapshot(resp.snapshot);
         engine_.reapply_missing(resp.snapshot.key, resp.snapshot);
         engine_.seed_state(resp.cut);
         engine_.drain();
         drain_apply_queue();
       });
}

void PeerGroupParent::relay_push(const Transaction& txn) {
  for (const NodeId m : members_) {
    const auto it = member_interest_.find(m);
    if (it == member_interest_.end()) continue;
    const bool interesting =
        std::any_of(txn.ops.begin(), txn.ops.end(), [&](const OpRecord& op) {
          return it->second.contains(op.key) ||
                 op.key == security::acl_object_key();
        });
    if (interesting) {
      tell(m, proto::kPushTxn, proto::PushTxn{txn});
    }
  }
}

// ---------------------------------------------------------------------------
// Member-facing requests.
// ---------------------------------------------------------------------------

void PeerGroupParent::handle_member_subscribe(NodeId from,
                                              const proto::SubscribeReq& req,
                                              ReplyFn reply) {
  auto& interest = member_interest_[from];
  // Serve what the parent caches now; subscribe to the DC for the rest so
  // later reads become collaborative-cache hits.
  proto::SubscribeResp resp;
  resp.cut = engine_.state_vector();
  for (const ObjectKey& key : req.keys) {
    interest.insert(key);
    ensure_dc_interest(key);
    if (auto snap = store_.export_snapshot(key)) {
      resp.snapshots.push_back(std::move(*snap));
    }
  }
  reply(codec::to_bytes(resp));
}

void PeerGroupParent::handle_peer_fetch(NodeId from,
                                        const proto::PeerFetchReq& req,
                                        ReplyFn reply) {
  proto::PeerFetchResp resp;
  if (auto snap = store_.export_snapshot(req.key)) {
    resp.found = true;
    resp.snapshot = std::move(*snap);
  }
  if (req.subscribe) {
    member_interest_[req.member == 0 ? from : req.member].insert(req.key);
    ensure_dc_interest(req.key);  // background fill on a miss
  }
  reply(codec::to_bytes(resp));
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

void PeerGroupParent::on_message(NodeId from, std::uint32_t kind,
                                 ByteView body) {
  switch (kind) {
    case proto::kEpaxos: {
      const auto env = codec::from_bytes<proto::EpaxosEnvelope>(body);
      if (env.epoch != epoch_) break;
      epaxos_->on_message(from, env.msg);
      break;
    }
    case proto::kPushTxn: {
      const auto msg = codec::from_bytes<proto::PushTxn>(body);
      const auto push = dc_recv_.on_push(msg.session_seq);
      if (push.ack != 0) {
        tell(from, proto::kPushAck, proto::PushAck{push.ack});
      }
      if (!push.deliver) break;  // after-gap: await the sender's rewind
      engine_.ingest(msg.txn);
      drain_apply_queue();
      relay_push(msg.txn);
      break;
    }
    case proto::kStateUpdate: {
      const auto msg = codec::from_bytes<proto::StateUpdate>(body);
      if (!dc_recv_.covers(msg.seq_watermark)) break;  // lost-push window
      engine_.seed_state(msg.cut);
      engine_.drain();
      drain_apply_queue();
      for (const NodeId m : members_) {
        // Relay with a cleared watermark: the member's channel to the
        // parent has its own (unacked) sequence space, and the parent has
        // already verified coverage above.
        tell(m, proto::kStateUpdate, proto::StateUpdate{msg.cut});
      }
      pump_forward();
      break;
    }
    case proto::kUnsubscribe: {
      const auto msg = codec::from_bytes<proto::UnsubscribeMsg>(body);
      const auto it = member_interest_.find(from);
      if (it != member_interest_.end()) {
        for (const ObjectKey& key : msg.keys) it->second.erase(key);
      }
      break;
    }
    case proto::kInterestUpdate: {
      const auto msg = codec::from_bytes<proto::InterestUpdate>(body);
      auto& interest = member_interest_[msg.node];
      for (const ObjectKey& key : msg.keys) {
        interest.insert(key);
        ensure_dc_interest(key);
      }
      break;
    }
    default:
      break;
  }
}

void PeerGroupParent::on_request(NodeId from, std::uint32_t method,
                                 ByteView payload, ReplyFn reply) {
  switch (method) {
    case proto::kGroupJoin:
      handle_join(from, codec::from_bytes<proto::GroupJoinReq>(payload),
                  std::move(reply));
      break;
    case proto::kGroupLeave:
      handle_leave(codec::from_bytes<proto::GroupLeaveReq>(payload));
      reply(codec::to_bytes(true));
      break;
    case proto::kSubscribe:
      handle_member_subscribe(
          from, codec::from_bytes<proto::SubscribeReq>(payload),
          std::move(reply));
      break;
    case proto::kPeerFetch:
      handle_peer_fetch(from,
                        codec::from_bytes<proto::PeerFetchReq>(payload),
                        std::move(reply));
      break;
    case proto::kGroupCatchup: {
      proto::CatchupResp resp;
      resp.instances = epaxos_->committed_instances();
      resp.cut = engine_.state_vector();
      reply(codec::to_bytes(resp));
      break;
    }
    default:
      reply(Error{Error::Code::kInvalidArgument, "unknown parent method"});
  }
}

}  // namespace colony
