// Peer-group parent: membership manager, collaborative-cache hub, and sync
// point (paper sections 5.1-5.2).
//
// The parent seeds and manages membership (5.1.1), maintains the union of
// the members' interest sets and subscribes to the DC on their behalf
// (5.1.2-5.1.3), participates in EPaxos as an ordinary member (a node "may
// serve as a member and a parent at the same time"), and acts as the
// group's sync point: it forwards transactions to the connected DC in the
// EPaxos visibility order, and relays the DC's commit acknowledgements and
// pushes back to the members.
//
// Placement: a PoP server (border) or any well-connected node; the topology
// builder wires its uplink with the corresponding latency class.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "consensus/epaxos.hpp"
#include "core/txn.hpp"
#include "core/visibility.hpp"
#include "dc/messages.hpp"
#include "security/crypto_sim.hpp"
#include "sim/rpc.hpp"
#include "storage/journal_store.hpp"

namespace colony {

struct GroupParentConfig {
  NodeId dc = 0;  // connected DC
  std::size_t num_dcs = 1;
  SimTime retry_interval = 500 * kMillisecond;
  /// Member liveness probing: an unreachable member is removed from the
  /// membership (epoch change) so consensus regains its quorum; the member
  /// rejoins when it comes back (section 5.1.1).
  SimTime heartbeat_interval = 1 * kSecond;
  std::size_t heartbeat_misses = 2;
  std::uint64_t session_key_seed = 0x5eed;
};

class PeerGroupParent final : public sim::RpcActor {
 public:
  PeerGroupParent(sim::Network& net, NodeId id, GroupParentConfig config);

  /// Migrate the whole subtree — this parent and, implicitly, all its
  /// members — to a different DC (section 3.8: "a subtree may detach
  /// itself from its parent and migrate to a different tree"). Requires
  /// causal compatibility at the new DC; unacknowledged forwards are
  /// re-sent there and deduplicated by dot.
  using DoneCb = std::function<void(Result<void>)>;
  void migrate_to_dc(NodeId new_dc, DoneCb done);

  // --- introspection -------------------------------------------------------
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] NodeId connected_dc() const { return config_.dc; }
  [[nodiscard]] std::vector<NodeId> members() const;
  [[nodiscard]] std::size_t member_count() const { return members_.size(); }
  [[nodiscard]] const VersionVector& state_vector() const {
    return engine_.state_vector();
  }
  /// Transactions not yet acknowledged by the DC (queued + in flight).
  [[nodiscard]] std::size_t forward_backlog() const {
    return forward_queue_.size() + in_flight_.size();
  }
  [[nodiscard]] const JournalStore& store() const { return store_; }
  [[nodiscard]] const consensus::Epaxos* epaxos() const {
    return epaxos_.get();
  }

 protected:
  void on_message(NodeId from, std::uint32_t kind,
                  ByteView body) override;
  void on_request(NodeId from, std::uint32_t method,
                  ByteView payload, ReplyFn reply) override;

 private:
  void handle_join(NodeId from, const proto::GroupJoinReq& req, ReplyFn reply);
  void handle_leave(const proto::GroupLeaveReq& req);
  void handle_member_subscribe(NodeId from, const proto::SubscribeReq& req,
                               ReplyFn reply);
  void handle_peer_fetch(NodeId from, const proto::PeerFetchReq& req,
                         ReplyFn reply);

  void broadcast_membership();
  void rebuild_epaxos();
  void heartbeat_tick();
  void on_group_deliver(const consensus::Command& cmd);
  void drain_apply_queue();

  // Sync point: forward group transactions to the DC in visibility order,
  // skipping over entries whose dependencies are not yet resolved.
  void pump_forward();

  // DC-side session.
  void ensure_dc_interest(const ObjectKey& key);
  void relay_push(const Transaction& txn);

  GroupParentConfig config_;
  std::uint64_t epoch_ = 0;
  std::set<NodeId> members_;
  std::map<NodeId, std::set<ObjectKey>> member_interest_;
  security::KeyService keys_;

  TxnStore txns_;
  JournalStore store_;
  VisibilityEngine engine_;
  /// Receive state of the parent's acknowledged DC session channel.
  proto::PushChannelRecv dc_recv_;

  std::unique_ptr<consensus::Epaxos> epaxos_;
  std::map<ObjectKey, std::uint64_t> seen_per_key_;
  std::deque<Dot> apply_queue_;

  std::deque<Dot> forward_queue_;
  std::set<Dot> in_flight_;  // forwards awaiting their DC ack
  std::map<Dot, std::uint64_t> forward_order_;  // original visibility order
  std::uint64_t next_forward_order_ = 0;
  std::set<Dot> forwarded_;  // dots already acknowledged by the DC
  bool retry_scheduled_ = false;

  std::set<ObjectKey> dc_interest_;  // keys subscribed at the DC
  std::map<NodeId, std::size_t> missed_heartbeats_;
};

}  // namespace colony
