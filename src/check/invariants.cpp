#include "check/invariants.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "crdt/counter.hpp"

namespace colony::check {

namespace {

std::string replica_name(DcId dc) { return "dc" + std::to_string(dc); }

std::string replica_name(const EdgeNode& edge) {
  return "edge" + std::to_string(edge.id());
}

/// Byte-identical state comparison via the CRDT checkpoint encoding.
bool same_state(const Crdt& a, const Crdt& b) {
  return a.type() == b.type() && a.snapshot() == b.snapshot();
}

const PnCounter* as_counter(const Crdt* c) {
  return dynamic_cast<const PnCounter*>(c);
}

void check_no_duplicate_dots(const JournalStore& store,
                             const std::string& replica, Report& report) {
  for (const ObjectKey& key : store.keys()) {
    const std::vector<Dot> dots = store.applied_dots(key);
    std::unordered_set<Dot> unique(dots.begin(), dots.end());
    if (unique.size() != dots.size()) {
      report.add("exactly-once",
                 replica + " applied a dot twice into " + key.full() +
                     " (" + std::to_string(dots.size()) + " entries, " +
                     std::to_string(unique.size()) + " distinct)");
    }
  }
}

/// Per-origin dot counters must appear in strictly increasing order in any
/// causally-correct visibility log: same-origin transactions are chained by
/// their pending-dependency links (section 3.7).
void check_origin_order(const VisibilityLog& log, const std::string& replica,
                        Report& report) {
  std::unordered_map<NodeId, std::uint64_t> last;
  for (const Dot& dot : log.entries()) {
    auto [it, fresh] = last.try_emplace(dot.origin, dot.counter);
    if (!fresh) {
      if (dot.counter <= it->second) {
        report.add("causal-order",
                   replica + " log applies " + dot.to_string() +
                       " after counter " + std::to_string(it->second) +
                       " of the same origin");
      }
      it->second = dot.counter;
    }
  }
}

}  // namespace

std::string Report::to_string() const {
  std::string s;
  for (const Violation& v : violations_) {
    s += v.invariant + ": " + v.detail + "\n";
  }
  return s;
}

void check_convergence(const Cluster& cluster, Report& report) {
  const DcNode& reference = cluster.dc(0);

  // DC state vectors must agree at quiescence.
  for (DcId d = 1; d < cluster.num_dcs(); ++d) {
    if (!(cluster.dc(d).state_vector() == reference.state_vector())) {
      report.add("convergence",
                 replica_name(d) + " state vector " +
                     cluster.dc(d).state_vector().to_string() +
                     " != dc0 " + reference.state_vector().to_string());
    }
  }

  // Union of keys over all DCs; every DC must hold every key, byte-equal.
  std::vector<ObjectKey> all_keys;
  {
    std::unordered_set<ObjectKey> seen;
    for (DcId d = 0; d < cluster.num_dcs(); ++d) {
      for (const ObjectKey& key : cluster.dc(d).store().keys()) {
        if (seen.insert(key).second) all_keys.push_back(key);
      }
    }
    std::sort(all_keys.begin(), all_keys.end());
  }
  for (const ObjectKey& key : all_keys) {
    const Crdt* ref = reference.store().current(key);
    for (DcId d = 0; d < cluster.num_dcs(); ++d) {
      const Crdt* val = cluster.dc(d).store().current(key);
      if (val == nullptr) {
        report.add("convergence",
                   replica_name(d) + " is missing object " + key.full());
        continue;
      }
      if (ref != nullptr && !same_state(*ref, *val)) {
        report.add("convergence", replica_name(d) + " diverges from dc0 on " +
                                      key.full());
      }
    }
  }

  // Every cached edge object agrees with the DCs.
  for (std::size_t i = 0; i < cluster.num_edges(); ++i) {
    const EdgeNode& edge = cluster.edge(i);
    for (const ObjectKey& key : edge.store().keys()) {
      const Crdt* local = edge.store().current(key);
      const Crdt* ref = reference.store().current(key);
      if (local == nullptr) continue;
      if (ref == nullptr) {
        report.add("convergence", replica_name(edge) + " caches " +
                                      key.full() + " unknown to dc0");
        continue;
      }
      if (!same_state(*ref, *local)) {
        report.add("convergence", replica_name(edge) +
                                      " diverges from the DCs on " +
                                      key.full());
      }
    }
  }
}

void check_causal_order(const Cluster& cluster, Report& report) {
  // Exact audit at each DC: a DC starts from the empty causal cut and its
  // state advances only by applying transactions, so every log entry's
  // effective snapshot must be covered by its predecessors' commits.
  for (DcId d = 0; d < cluster.num_dcs(); ++d) {
    const DcNode& dc = cluster.dc(d);
    VersionVector running(cluster.num_dcs());
    std::size_t position = 0;
    for (const Dot& dot : dc.engine().log().entries()) {
      const Transaction* txn = dc.txns().find(dot);
      if (txn == nullptr) {
        report.add("causal-order", replica_name(d) + " log entry " +
                                       dot.to_string() + " has no record");
        ++position;
        continue;
      }
      VersionVector effective;
      if (!dc.txns().effective_snapshot(dot, effective)) {
        report.add("causal-order",
                   replica_name(d) + " applied " + dot.to_string() +
                       " with an unresolvable snapshot");
      } else if (!effective.leq(running)) {
        report.add("causal-order",
                   replica_name(d) + " applied " + dot.to_string() +
                       " at position " + std::to_string(position) +
                       " with snapshot " + effective.to_string() +
                       " not covered by prior commits " +
                       running.to_string());
      }
      running.merge(txn->meta.commit_lub());
      ++position;
    }
    check_origin_order(dc.engine().log(), replica_name(d), report);
  }

  // Edges seed their baseline from checkout/fetch cuts, so the running-
  // vector audit does not apply; instead assert the log is inversion-free:
  // no entry causally depends on a later entry.
  for (std::size_t i = 0; i < cluster.num_edges(); ++i) {
    const EdgeNode& edge = cluster.edge(i);
    const auto& entries = edge.engine().log().entries();
    check_origin_order(edge.engine().log(), replica_name(edge), report);

    std::vector<const Transaction*> txns(entries.size(), nullptr);
    std::vector<VersionVector> snapshots(entries.size());
    std::vector<bool> resolved(entries.size(), false);
    for (std::size_t j = 0; j < entries.size(); ++j) {
      txns[j] = edge.txns().find(entries[j]);
      if (txns[j] != nullptr) {
        resolved[j] = edge.txns().effective_snapshot(entries[j], snapshots[j]);
      }
    }
    for (std::size_t a = 0; a < entries.size(); ++a) {
      if (!resolved[a]) continue;
      // Read-my-writes exemption: the edge applies its own commits eagerly
      // against its local view, but their *concrete* snapshot is resolved
      // later by the DC and may legitimately cover foreign transactions
      // the edge only displays once they are K-stable.
      if (entries[a].origin == edge.id()) continue;
      for (std::size_t b = a + 1; b < entries.size(); ++b) {
        if (txns[b] == nullptr || !txns[b]->meta.concrete) continue;
        if (txns[b]->meta.commit_lub().leq(snapshots[a])) {
          report.add("causal-order",
                     replica_name(edge) + " applied " +
                         entries[a].to_string() + " before " +
                         entries[b].to_string() +
                         " it causally depends on");
        }
      }
    }
  }
}

void check_atomic_visibility(const Cluster& cluster, Report& report) {
  for (DcId d = 0; d < cluster.num_dcs(); ++d) {
    const DcNode& dc = cluster.dc(d);
    // Per-key dot index, to answer "is this dot reflected in that key?".
    std::unordered_map<ObjectKey, std::unordered_set<Dot>> reflected;
    for (const ObjectKey& key : dc.store().keys()) {
      const std::vector<Dot> dots = dc.store().applied_dots(key);
      reflected.emplace(key,
                        std::unordered_set<Dot>(dots.begin(), dots.end()));
    }
    for (const Dot& dot : dc.engine().applied_set()) {
      if (dc.engine().is_masked(dot)) continue;
      const Transaction* txn = dc.txns().find(dot);
      if (txn == nullptr) {
        report.add("atomic-visibility", replica_name(d) + " applied " +
                                            dot.to_string() +
                                            " without a record");
        continue;
      }
      for (const OpRecord& op : txn->ops) {
        const auto it = reflected.find(op.key);
        if (it == reflected.end() || !it->second.contains(dot)) {
          report.add("atomic-visibility",
                     replica_name(d) + " applied " + dot.to_string() +
                         " but its update to " + op.key.full() +
                         " is missing — partial transaction");
        }
      }
    }
  }
}

void check_k_stability(const Cluster& cluster, Report& report) {
  // Ground truth: the DCs' actual engine state vectors (not the gossiped
  // views, which lag). State vectors only grow, so any transaction visible
  // at an edge must already be K-stable under them. A crash-restarted DC
  // breaks that monotonicity *in memory only* — its knowledge survives on
  // disk and comes back at recovery — so a sample taken while a DC is down
  // is unsound and is skipped (the quiescent audit restarts every node
  // before the barrier, so the invariant is still enforced end-to-end).
  std::vector<VersionVector> states;
  states.reserve(cluster.num_dcs());
  for (DcId d = 0; d < cluster.num_dcs(); ++d) {
    if (cluster.dc(d).crashed()) return;
    states.push_back(cluster.dc(d).state_vector());
  }
  const VersionVector cut =
      k_stable_cut(states, cluster.config().k_stability);

  for (std::size_t i = 0; i < cluster.num_edges(); ++i) {
    const EdgeNode& edge = cluster.edge(i);
    // Peer groups propagate member commits below the threshold by design.
    if (edge.in_group()) continue;
    for (const Dot& dot : edge.engine().applied_set()) {
      if (dot.origin == edge.id()) continue;  // read-my-writes exemption
      const Transaction* txn = edge.txns().find(dot);
      if (txn == nullptr) continue;
      if (!txn->meta.concrete) {
        report.add("k-stability",
                   replica_name(edge) + " shows foreign txn " +
                       dot.to_string() + " without a concrete commit");
        continue;
      }
      if (!edge.txns().visible_at(dot, cut)) {
        report.add("k-stability",
                   replica_name(edge) + " shows " + dot.to_string() +
                       " which is not K-stable (K=" +
                       std::to_string(cluster.config().k_stability) +
                       ", cut " + cut.to_string() + ")");
      }
    }
  }
}

void check_exactly_once(const Cluster& cluster, Report& report) {
  for (DcId d = 0; d < cluster.num_dcs(); ++d) {
    check_no_duplicate_dots(cluster.dc(d).store(), replica_name(d), report);
  }
  for (std::size_t i = 0; i < cluster.num_edges(); ++i) {
    check_no_duplicate_dots(cluster.edge(i).store(),
                            replica_name(cluster.edge(i)), report);
  }
}

void check_durability(const Cluster& cluster, Report& report) {
  std::string why;
  for (DcId d = 0; d < cluster.num_dcs(); ++d) {
    if (!cluster.dc(d).verify_recovery(&why)) {
      report.add("durability",
                 replica_name(d) + " recovery diverges: " + why);
    }
  }
  for (std::size_t i = 0; i < cluster.num_edges(); ++i) {
    const EdgeNode& edge = cluster.edge(i);
    if (!edge.verify_recovery(&why)) {
      report.add("durability",
                 replica_name(edge) + " recovery diverges: " + why);
    }
  }
}

void check_counter_totals(const Cluster& cluster,
                          const std::map<ObjectKey, std::int64_t>& expected,
                          Report& report) {
  for (const auto& [key, total] : expected) {
    for (DcId d = 0; d < cluster.num_dcs(); ++d) {
      const PnCounter* c = as_counter(cluster.dc(d).store().current(key));
      const std::int64_t got = c == nullptr ? 0 : c->value();
      if (got != total) {
        report.add("counter-ledger",
                   replica_name(d) + " has " + key.full() + " = " +
                       std::to_string(got) + ", workload committed " +
                       std::to_string(total));
      }
    }
    for (std::size_t i = 0; i < cluster.num_edges(); ++i) {
      const EdgeNode& edge = cluster.edge(i);
      if (!edge.is_cached(key)) continue;
      const PnCounter* c = as_counter(edge.cached(key));
      const std::int64_t got = c == nullptr ? 0 : c->value();
      if (got != total) {
        report.add("counter-ledger",
                   replica_name(edge) + " has " + key.full() + " = " +
                       std::to_string(got) + ", workload committed " +
                       std::to_string(total));
      }
    }
  }
}

void check_safety(const Cluster& cluster, Report& report) {
  check_causal_order(cluster, report);
  check_k_stability(cluster, report);
  check_exactly_once(cluster, report);
}

void check_quiescent(const Cluster& cluster,
                     const std::map<ObjectKey, std::int64_t>& expected,
                     Report& report) {
  check_safety(cluster, report);
  check_convergence(cluster, report);
  check_atomic_visibility(cluster, report);
  check_durability(cluster, report);
  check_counter_totals(cluster, expected, report);
}

}  // namespace colony::check
