// TCC+ invariant checkers over a live simulated cluster.
//
// The chaos harness drives the cluster through adversarial fault schedules
// and, at audit points, asserts the paper's headline guarantees end-to-end:
//
//   * strong convergence  — after a quiescent heal, every replica of an
//     object holds the byte-identical state (Letia/Preguiça/Shapiro);
//   * causal order        — no transaction became visible before its
//     effective snapshot was covered (version-vector audit of the
//     visibility log);
//   * atomic visibility   — a transaction's operations are reflected
//     all-or-nothing in the journals of the keys it touched;
//   * K-stability         — nothing is visible at a client-cache edge
//     unless >= K data centres know it (checkable mid-run);
//   * exactly-once        — no dot is applied twice into any journal, even
//     under duplicated delivery (DotTracker's contract).
//
// Checkers append human-readable violations to a Report instead of
// asserting, so the harness can dump the full fault schedule + seed and
// shrink it before failing the test.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "colony/cluster.hpp"

namespace colony::check {

struct Violation {
  std::string invariant;
  std::string detail;
};

class Report {
 public:
  void add(std::string invariant, std::string detail) {
    violations_.push_back({std::move(invariant), std::move(detail)});
  }

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Violation> violations_;
};

/// Strong convergence (quiescent cluster only): all DCs agree byte-for-byte
/// on every object either of them stores, every edge cache agrees with the
/// DCs on the objects it holds, and all DC state vectors are equal.
void check_convergence(const Cluster& cluster, Report& report);

/// Causal order. At each DC, replay the visibility log against a running
/// version vector: every transaction's effective snapshot must be covered
/// by the commits that became visible before it (DCs start from the empty
/// cut, so the audit is exact). At each edge — whose baseline shifts with
/// checkout/fetch seeding — audit (a) per-origin dot counters appear in
/// increasing order in the log, and (b) no pairwise inversion: a log entry
/// never causally depends on a later entry.
void check_causal_order(const Cluster& cluster, Report& report);

/// Atomic visibility at each DC (which materialises every key): an applied,
/// unmasked transaction's dot must be reflected in the journal of every key
/// it updated — all-or-nothing, never a partial application.
void check_atomic_visibility(const Cluster& cluster, Report& report);

/// K-stability (callable mid-run, partitions standing): any transaction
/// visible at a client-cache edge that the edge did not originate must be
/// K-stable under the DCs' *current, ground-truth* state vectors. Sound
/// because state vectors only grow. Peer-group edges are exempt (groups
/// propagate member commits below the stability threshold by design).
void check_k_stability(const Cluster& cluster, Report& report);

/// Exactly-once application (callable mid-run): no replica's journal
/// reflects the same dot twice — the DotTracker contract under duplicated
/// delivery.
void check_exactly_once(const Cluster& cluster, Report& report);

/// Durability (quiescent cluster only): every WAL-backed replica must be
/// recoverable in place — an offline twin rebuilt from a copy of its log
/// matches the live node's durable projection byte-for-byte. Nodes without
/// a disk, crashed nodes, and edges whose state includes unlogged inputs
/// (peer-group consensus, LRU cache eviction order) are skipped; see
/// DcNode::verify_recovery / EdgeNode::verify_recovery.
void check_durability(const Cluster& cluster, Report& report);

/// End-to-end counter ledger (quiescent cluster only): each PN-counter in
/// `expected` must have converged to exactly the total the workload
/// committed — a lost increment (dropped txn) or an extra one (double
/// apply) both surface here.
void check_counter_totals(const Cluster& cluster,
                          const std::map<ObjectKey, std::int64_t>& expected,
                          Report& report);

/// Convenience: every mid-run-safe checker (causal order, K-stability,
/// exactly-once).
void check_safety(const Cluster& cluster, Report& report);

/// Convenience: the full quiescent audit — safety plus convergence, atomic
/// visibility, and the counter ledger.
void check_quiescent(const Cluster& cluster,
                     const std::map<ObjectKey, std::int64_t>& expected,
                     Report& report);

}  // namespace colony::check
