// The codec is header-only; this translation unit pins the library's symbols
// and compiles the header standalone as a hygiene check.
#include "util/binary_codec.hpp"
