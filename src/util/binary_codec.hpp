// Binary serialization used for wire messages and journal persistence.
//
// Little-endian, varint-free fixed-width encoding: the paper sizes vector
// components at 8 bytes (footnote 2) so we keep the same accounting, and
// message sizes reported by the metadata ablation bench reflect it.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace colony {

using Bytes = std::vector<std::uint8_t>;

/// Non-owning view of encoded bytes. The receive hot path decodes straight
/// out of the delivered frame: a ByteView never copies, so anything that
/// must outlive the handler call (a stored payload, a queued message) has
/// to be materialised into Bytes explicitly.
using ByteView = std::span<const std::uint8_t>;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `n` bytes.
/// Used as the frame checksum of the simulated transport: flipped bits on a
/// link must be *detected* and surface as loss, never as a wrong value.
[[nodiscard]] inline std::uint32_t crc32(const std::uint8_t* data,
                                         std::size_t n) {
  static constexpr auto kTable = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

[[nodiscard]] inline std::uint32_t crc32(ByteView data) {
  return crc32(data.data(), data.size());
}

/// Append-only encoder.
class Encoder {
 public:
  /// Ensure capacity for `n` more bytes beyond what is already buffered.
  /// Frame encoders size the whole message up front so header, payload and
  /// trailer land in one allocation.
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { fixed(v); }
  void u32(std::uint32_t v) { fixed(v); }
  void u64(std::uint64_t v) { fixed(v); }
  void i64(std::int64_t v) { fixed(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    fixed(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    COLONY_ASSERT(s.size() <= UINT32_MAX, "string exceeds u32 length prefix");
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void bytes(ByteView b) {
    COLONY_ASSERT(b.size() <= UINT32_MAX, "buffer exceeds u32 length prefix");
    reserve(sizeof(std::uint32_t) + b.size());
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Append raw bytes with no length prefix (framing owns the length).
  void raw(ByteView b) {
    reserve(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  [[nodiscard]] const Bytes& data() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void fixed(T v) {
    std::uint8_t raw[sizeof(T)];
    std::memcpy(raw, &v, sizeof(T));
    buf_.insert(buf_.end(), raw, raw + sizeof(T));
  }

  Bytes buf_;
};

/// Sequential decoder over a byte buffer. Bounds-checked: a read past the
/// end (truncated input, or an oversized length prefix) latches a failure
/// flag instead of touching out-of-bounds memory; from then on every read
/// returns a zero value. Callers check `ok()` when the input is untrusted —
/// dispatchers assert it, since checksum-verified frames cannot be
/// malformed unless encode and decode disagree.
class Decoder {
 public:
  /// The view (and therefore the buffer behind it) must outlive the
  /// decoder AND any view handed out by bytes_view()/tail_view().
  explicit Decoder(ByteView data) : data_(data) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(take<std::uint64_t>()); }
  double f64() {
    const std::uint64_t bits = take<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint32_t n = u32();
    if (!require(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  Bytes bytes() {
    const ByteView v = bytes_view();
    return Bytes(v.begin(), v.end());
  }

  /// Length-prefixed payload as a view into the underlying buffer (no
  /// copy). Valid only as long as the buffer the decoder reads from.
  ByteView bytes_view() {
    const std::uint32_t n = u32();
    if (!require(n)) return {};
    const ByteView v = data_.subspan(pos_, n);
    pos_ += n;
    return v;
  }

  /// Consume and return everything left (unprefixed trailing payload).
  Bytes tail() {
    const ByteView v = tail_view();
    return Bytes(v.begin(), v.end());
  }

  /// Remaining bytes as a view into the underlying buffer (no copy).
  ByteView tail_view() {
    const ByteView v = data_.subspan(pos_);
    pos_ = data_.size();
    return v;
  }

  /// False once any read ran past the end of the buffer.
  [[nodiscard]] bool ok() const { return !failed_; }
  /// Latch the failure flag (container codecs reject absurd length
  /// prefixes before allocating).
  void fail() { failed_ = true; }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T take() {
    if (!require(sizeof(T))) return T{};
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  bool require(std::size_t n) {
    // pos_ <= size always holds, so the subtraction cannot underflow.
    if (failed_ || n > data_.size() - pos_) {
      failed_ = true;
      return false;
    }
    return true;
  }

  ByteView data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace colony
