// Binary serialization used for wire messages and journal persistence.
//
// Little-endian, varint-free fixed-width encoding: the paper sizes vector
// components at 8 bytes (footnote 2) so we keep the same accounting, and
// message sizes reported by the metadata ablation bench reflect it.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace colony {

using Bytes = std::vector<std::uint8_t>;

/// Append-only encoder.
class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { fixed(v); }
  void u32(std::uint32_t v) { fixed(v); }
  void u64(std::uint64_t v) { fixed(v); }
  void i64(std::int64_t v) { fixed(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    fixed(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void bytes(const Bytes& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  [[nodiscard]] const Bytes& data() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void fixed(T v) {
    std::uint8_t raw[sizeof(T)];
    std::memcpy(raw, &v, sizeof(T));
    buf_.insert(buf_.end(), raw, raw + sizeof(T));
  }

  Bytes buf_;
};

/// Sequential decoder over a byte buffer. Out-of-bounds reads are protocol
/// corruption and abort.
class Decoder {
 public:
  explicit Decoder(const Bytes& data) : data_(data) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(take<std::uint64_t>()); }
  double f64() {
    const std::uint64_t bits = take<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint32_t n = u32();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  Bytes bytes() {
    const std::uint32_t n = u32();
    require(n);
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T take() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void require(std::size_t n) const {
    COLONY_ASSERT(pos_ + n <= data_.size(), "decoder ran past end of buffer");
  }

  const Bytes& data_;
  std::size_t pos_ = 0;
};

}  // namespace colony
