// Minimal expected-style result type used for fallible protocol operations
// where exceptions would obscure control flow (e.g. transaction commit
// outcomes that are part of the normal protocol, not programming errors).
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/assert.hpp"

namespace colony {

/// Error payload: a machine-readable code plus a human-readable message.
struct Error {
  enum class Code {
    kUnavailable,      // required data or peer cannot be reached
    kAborted,          // transaction aborted (conflict or semantic)
    kIncompatible,     // causal incompatibility (migration, section 3.8)
    kNotFound,         // object or entity does not exist
    kPermissionDenied, // ACL check failed
    kInvalidArgument,  // caller misuse detected at run time
  };

  Code code;
  std::string message;
};

[[nodiscard]] constexpr const char* to_string(Error::Code c) {
  switch (c) {
    case Error::Code::kUnavailable: return "unavailable";
    case Error::Code::kAborted: return "aborted";
    case Error::Code::kIncompatible: return "incompatible";
    case Error::Code::kNotFound: return "not-found";
    case Error::Code::kPermissionDenied: return "permission-denied";
    case Error::Code::kInvalidArgument: return "invalid-argument";
  }
  return "unknown";
}

/// Result<T> holds either a value or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : payload_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(payload_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    COLONY_ASSERT(ok(), "Result::value on error");
    return std::get<T>(payload_);
  }
  [[nodiscard]] T& value() & {
    COLONY_ASSERT(ok(), "Result::value on error");
    return std::get<T>(payload_);
  }
  [[nodiscard]] T&& value() && {
    COLONY_ASSERT(ok(), "Result::value on error");
    return std::get<T>(std::move(payload_));
  }

  [[nodiscard]] const Error& error() const {
    COLONY_ASSERT(!ok(), "Result::error on value");
    return std::get<Error>(payload_);
  }

 private:
  std::variant<T, Error> payload_;
};

/// Result<void> specialisation: success carries no payload.
template <>
class Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)), has_error_(true) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return !has_error_; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    COLONY_ASSERT(has_error_, "Result::error on value");
    return error_;
  }

 private:
  Error error_{};
  bool has_error_ = false;
};

}  // namespace colony
