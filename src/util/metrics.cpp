#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace colony {

void LatencyHistogram::record(SimTime latency_us) {
  samples_.push_back(latency_us);
  sorted_ = false;
}

void LatencyHistogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencyHistogram::mean_us() const {
  if (samples_.empty()) return 0.0;
  const auto sum = std::accumulate(samples_.begin(), samples_.end(),
                                   static_cast<double>(0));
  return sum / static_cast<double>(samples_.size());
}

SimTime LatencyHistogram::percentile_us(double p) const {
  COLONY_ASSERT(p >= 0 && p <= 100, "percentile out of range");
  if (samples_.empty()) return 0;
  ensure_sorted();
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(rank));
  return samples_[std::min(idx, samples_.size() - 1)];
}

SimTime LatencyHistogram::min_us() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return samples_.front();
}

SimTime LatencyHistogram::max_us() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return samples_.back();
}

void ThroughputCounter::record(SimTime now) {
  ++windows_[now / window_];
  ++total_;
}

std::vector<double> ThroughputCounter::rates_per_second() const {
  if (windows_.empty()) return {};
  std::vector<double> rates;
  const auto first = windows_.begin()->first;
  const auto last = windows_.rbegin()->first;
  const double scale =
      static_cast<double>(kSecond) / static_cast<double>(window_);
  for (std::uint64_t w = first; w <= last; ++w) {
    const auto it = windows_.find(w);
    rates.push_back(it == windows_.end()
                        ? 0.0
                        : static_cast<double>(it->second) * scale);
  }
  return rates;
}

double ThroughputCounter::steady_rate_per_second() const {
  const auto rates = rates_per_second();
  if (rates.empty()) return 0.0;
  if (rates.size() < 4) {
    return std::accumulate(rates.begin(), rates.end(), 0.0) /
           static_cast<double>(rates.size());
  }
  const std::size_t lo = rates.size() / 4;
  const std::size_t hi = rates.size() - rates.size() / 4;
  double sum = 0;
  for (std::size_t i = lo; i < hi; ++i) sum += rates[i];
  return sum / static_cast<double>(hi - lo);
}

void WireStats::record(NodeId from, NodeId to, std::uint32_t kind,
                       std::size_t frame_bytes) {
  const auto n = static_cast<std::uint64_t>(frame_bytes);
  ++total_.frames;
  total_.bytes += n;
  auto& k = per_kind_[kind];
  ++k.frames;
  k.bytes += n;
  auto& l = per_link_[{from, to}];
  ++l.frames;
  l.bytes += n;
}

WireStats::Counter WireStats::for_kind(std::uint32_t kind) const {
  const auto it = per_kind_.find(kind);
  return it == per_kind_.end() ? Counter{} : it->second;
}

WireStats::Counter WireStats::for_link(NodeId from, NodeId to) const {
  const auto it = per_link_.find({from, to});
  return it == per_link_.end() ? Counter{} : it->second;
}

void WireStats::clear() {
  total_ = Counter{};
  per_kind_.clear();
  per_link_.clear();
}

double Series::mean_in(SimTime from, SimTime to) const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& pt : points_) {
    if (pt.at >= from && pt.at < to) {
      sum += pt.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::size_t Series::count_in(SimTime from, SimTime to) const {
  std::size_t n = 0;
  for (const auto& pt : points_) {
    if (pt.at >= from && pt.at < to) ++n;
  }
  return n;
}

}  // namespace colony
