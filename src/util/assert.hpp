// Invariant checking helpers.
//
// COLONY_ASSERT is active in all build types: the protocol invariants it
// guards (causal cuts, vector monotonicity, quorum arithmetic) are cheap to
// check and a violation means state corruption, so failing fast is always
// preferable to continuing.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace colony::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "colony: assertion `%s` failed at %s:%d: %s\n", expr,
               file, line, msg);
  std::abort();
}

}  // namespace colony::detail

#define COLONY_ASSERT(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::colony::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
    }                                                                \
  } while (false)
