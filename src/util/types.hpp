// Strong identifier types shared across the Colony code base.
//
// Every entity in the topology (data centres, edge nodes, peer groups,
// users) and every datum (objects, buckets, transactions) is referenced by
// a distinct strong type so that ids cannot be mixed up across layers.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <tuple>

namespace colony {

/// Index of a data centre in the core mesh. Version vectors carry one
/// component per DcId, which is what bounds metadata to O(#DCs).
using DcId = std::uint32_t;

/// Upper bound on the number of data centres. Commit metadata stores the
/// set of accepting DCs as a fixed-width bitmask (TxnMeta::accepted_mask),
/// so this constant and that mask width must agree — a static_assert next
/// to the mask ties them together. Every "for each DC" loop derives its
/// bound from the mask or the vector at hand, never from this literal.
inline constexpr DcId kMaxDcs = 32;

/// Globally unique identifier of a node (DC, border PoP, or far-edge
/// device). DCs occupy the low range [0, kMaxDcs); edge nodes are assigned
/// ids above it by the topology builder.
using NodeId = std::uint64_t;

/// Identifier of a peer group. A peer group counts as a single logical node
/// in the tree (paper footnote 3).
using GroupId = std::uint64_t;

/// A user principal for access control.
using UserId = std::uint64_t;

/// Logical clock value; 8 bytes so it never wraps (paper footnote 2).
using Timestamp = std::uint64_t;

/// Simulated time in microseconds since the start of the run.
using SimTime = std::uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

/// Name of an object within a bucket. Buckets namespace objects
/// (paper section 6.1); the full key is bucket + "/" + name.
struct ObjectKey {
  std::string bucket;
  std::string name;

  auto operator<=>(const ObjectKey&) const = default;

  [[nodiscard]] std::string full() const { return bucket + "/" + name; }

  auto fields() { return std::tie(bucket, name); }
};

}  // namespace colony

template <>
struct std::hash<colony::ObjectKey> {
  std::size_t operator()(const colony::ObjectKey& k) const noexcept {
    std::size_t h1 = std::hash<std::string>{}(k.bucket);
    std::size_t h2 = std::hash<std::string>{}(k.name);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};
