// Deterministic random number generation and workload distributions.
//
// All randomness in the simulator and the workload generator flows through
// Rng so that every experiment is exactly reproducible from its seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace colony {

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform over the full 64-bit range.
  std::uint64_t next();

  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Uniform real in [0, 1).
  double uniform();

  /// Bernoulli trial.
  bool chance(double probability);

  /// Exponential with the given mean (for inter-arrival times).
  double exponential(double mean);

  /// Normal via Box-Muller.
  double normal(double mean, double stddev);

  /// Pareto (type I) sample with scale x_m and shape alpha. The paper's
  /// workload uses Pareto 80/20 skew (section 7.1); shape ~1.16 yields it.
  double pareto(double x_min, double alpha);

  /// Zipf-like pick: index in [0, n) where low indices are favoured with
  /// Pareto-derived skew. Used to pick "hot" users/channels.
  std::size_t skewed_index(std::size_t n, double alpha);

 private:
  std::uint64_t s_[4];
};

/// Weighted discrete distribution over indices (alias-free linear scan;
/// fine for the small category counts used in the workload).
class Weighted {
 public:
  explicit Weighted(std::vector<double> weights);

  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cumulative_;
};

}  // namespace colony
