// Generic codec over the binary Encoder/Decoder: one declaration per
// message instead of hand-rolled to_bytes/from_bytes boilerplate.
//
// A wire struct opts in by exposing its members as a tie:
//
//   struct PushAck {
//     std::uint64_t seq = 0;
//     bool operator==(const PushAck&) const = default;
//     auto fields() { return std::tie(seq); }
//   };
//
// `codec::write`/`codec::read` then recurse over the tuple, dispatching on
// type: primitives and enums are fixed-width little-endian, strings and
// byte buffers are u32-length-prefixed, containers/pairs/optionals/variants
// recurse, and types with their own `encode`/`decode` members (Transaction,
// VersionVector, Dot...) use those — so the hand-tuned encodings the
// metadata ablation measures stay byte-identical.
//
// Decoding is bounds-checked end to end: the Decoder latches its failure
// flag on truncated input, and container reads reject length prefixes that
// could not possibly fit the remaining bytes before allocating.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "util/assert.hpp"
#include "util/binary_codec.hpp"

namespace colony::codec {

/// Types carrying their own codec members (`void encode(Encoder&) const`
/// plus `static T decode(Decoder&)`). Preferred over `fields()` so types
/// with invariants keep their hand-written encoding.
template <typename T>
concept SelfCodec = requires(const T& t, Encoder& enc, Decoder& dec) {
  t.encode(enc);
  { T::decode(dec) } -> std::same_as<T>;
};

/// Wire structs exposing their members as `std::tie(...)`.
template <typename T>
concept FieldTuple = requires(T& t) { t.fields(); };

namespace detail {

template <typename T>
inline constexpr bool is_vector_v = false;
template <typename U>
inline constexpr bool is_vector_v<std::vector<U>> = true;

template <typename T>
inline constexpr bool is_set_v = false;
template <typename U>
inline constexpr bool is_set_v<std::set<U>> = true;

template <typename T>
inline constexpr bool is_pair_v = false;
template <typename A, typename B>
inline constexpr bool is_pair_v<std::pair<A, B>> = true;

template <typename T>
inline constexpr bool is_optional_v = false;
template <typename U>
inline constexpr bool is_optional_v<std::optional<U>> = true;

template <typename T>
inline constexpr bool is_variant_v = false;
template <typename... Ts>
inline constexpr bool is_variant_v<std::variant<Ts...>> = true;

}  // namespace detail

template <typename T>
void write(Encoder& enc, const T& v);
template <typename T>
[[nodiscard]] T read(Decoder& dec);

namespace detail {

template <typename V, std::size_t... Is>
V read_variant(Decoder& dec, std::uint8_t index,
               std::index_sequence<Is...> /*alts*/) {
  V out{};
  bool matched = false;
  auto try_alt = [&]<std::size_t I>() {
    if (I == index) {
      out = codec::read<std::variant_alternative_t<I, V>>(dec);
      matched = true;
    }
  };
  (try_alt.template operator()<Is>(), ...);
  if (!matched) dec.fail();  // index beyond the alternatives: corrupt input
  return out;
}

}  // namespace detail

template <typename T>
void write(Encoder& enc, const T& v) {
  if constexpr (std::is_same_v<T, bool>) {
    enc.boolean(v);
  } else if constexpr (std::is_enum_v<T>) {
    write(enc, static_cast<std::underlying_type_t<T>>(v));
  } else if constexpr (std::is_integral_v<T>) {
    if constexpr (sizeof(T) == 1) {
      enc.u8(static_cast<std::uint8_t>(v));
    } else if constexpr (sizeof(T) == 2) {
      enc.u16(static_cast<std::uint16_t>(v));
    } else if constexpr (sizeof(T) == 4) {
      enc.u32(static_cast<std::uint32_t>(v));
    } else {
      enc.u64(static_cast<std::uint64_t>(v));
    }
  } else if constexpr (std::is_floating_point_v<T>) {
    enc.f64(static_cast<double>(v));
  } else if constexpr (std::is_same_v<T, std::string>) {
    enc.str(v);
  } else if constexpr (std::is_same_v<T, Bytes>) {
    enc.bytes(v);
  } else if constexpr (SelfCodec<T>) {
    v.encode(enc);
  } else if constexpr (detail::is_vector_v<T> || detail::is_set_v<T>) {
    COLONY_ASSERT(v.size() <= UINT32_MAX, "container exceeds u32 prefix");
    enc.u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& elem : v) write(enc, elem);
  } else if constexpr (detail::is_pair_v<T>) {
    write(enc, v.first);
    write(enc, v.second);
  } else if constexpr (detail::is_optional_v<T>) {
    enc.boolean(v.has_value());
    if (v.has_value()) write(enc, *v);
  } else if constexpr (detail::is_variant_v<T>) {
    static_assert(std::variant_size_v<T> <= 255);
    enc.u8(static_cast<std::uint8_t>(v.index()));
    std::visit([&enc](const auto& alt) { write(enc, alt); }, v);
  } else if constexpr (FieldTuple<T>) {
    // Messages declare a single non-const fields(); writing does not
    // mutate, so shedding constness here is safe.
    std::apply([&enc](const auto&... f) { (write(enc, f), ...); },
               const_cast<T&>(v).fields());
  } else {
    static_assert(!sizeof(T*), "type has no codec mapping");
  }
}

template <typename T>
T read(Decoder& dec) {
  if constexpr (std::is_same_v<T, bool>) {
    return dec.boolean();
  } else if constexpr (std::is_enum_v<T>) {
    return static_cast<T>(read<std::underlying_type_t<T>>(dec));
  } else if constexpr (std::is_integral_v<T>) {
    if constexpr (sizeof(T) == 1) {
      return static_cast<T>(dec.u8());
    } else if constexpr (sizeof(T) == 2) {
      return static_cast<T>(dec.u16());
    } else if constexpr (sizeof(T) == 4) {
      return static_cast<T>(dec.u32());
    } else {
      return static_cast<T>(dec.u64());
    }
  } else if constexpr (std::is_floating_point_v<T>) {
    return static_cast<T>(dec.f64());
  } else if constexpr (std::is_same_v<T, std::string>) {
    return dec.str();
  } else if constexpr (std::is_same_v<T, Bytes>) {
    return dec.bytes();
  } else if constexpr (SelfCodec<T>) {
    return T::decode(dec);
  } else if constexpr (detail::is_vector_v<T>) {
    T out;
    const std::uint32_t n = dec.u32();
    // Every element encodes to >= 1 byte, so a count beyond the remaining
    // bytes is a corrupt/hostile prefix: reject before allocating.
    if (n > dec.remaining()) {
      dec.fail();
      return out;
    }
    out.reserve(n);
    for (std::uint32_t i = 0; i < n && dec.ok(); ++i) {
      out.push_back(read<typename T::value_type>(dec));
    }
    return out;
  } else if constexpr (detail::is_set_v<T>) {
    T out;
    const std::uint32_t n = dec.u32();
    if (n > dec.remaining()) {
      dec.fail();
      return out;
    }
    for (std::uint32_t i = 0; i < n && dec.ok(); ++i) {
      out.insert(read<typename T::value_type>(dec));
    }
    return out;
  } else if constexpr (detail::is_pair_v<T>) {
    auto first = read<typename T::first_type>(dec);
    auto second = read<typename T::second_type>(dec);
    return T{std::move(first), std::move(second)};
  } else if constexpr (detail::is_optional_v<T>) {
    if (!dec.boolean()) return std::nullopt;
    return read<typename T::value_type>(dec);
  } else if constexpr (detail::is_variant_v<T>) {
    const std::uint8_t index = dec.u8();
    return detail::read_variant<T>(
        dec, index, std::make_index_sequence<std::variant_size_v<T>>{});
  } else if constexpr (FieldTuple<T>) {
    T out{};
    std::apply(
        [&dec](auto&... f) {
          ((f = read<std::decay_t<decltype(f)>>(dec)), ...);
        },
        out.fields());
    return out;
  } else {
    static_assert(!sizeof(T*), "type has no codec mapping");
  }
}

template <typename T>
[[nodiscard]] Bytes to_bytes(const T& msg) {
  Encoder enc;
  write(enc, msg);
  return enc.take();
}

/// Decode from untrusted bytes; nullopt on truncation, trailing garbage,
/// or any malformed length prefix. Accepts a view: the receive path hands
/// in the delivered frame's payload without copying it first.
template <typename T>
[[nodiscard]] std::optional<T> try_from_bytes(ByteView bytes) {
  Decoder dec(bytes);
  T out = read<T>(dec);
  if (!dec.ok() || !dec.done()) return std::nullopt;
  return out;
}

/// Decode from trusted bytes (a checksum-verified frame): a decode failure
/// here means encode and decode disagree, which is a bug, so it asserts.
template <typename T>
[[nodiscard]] T from_bytes(ByteView bytes) {
  Decoder dec(bytes);
  T out = read<T>(dec);
  COLONY_ASSERT(dec.ok() && dec.done(), "message codec round-trip mismatch");
  return out;
}

}  // namespace colony::codec
