#include "util/rng.hpp"

#include <numbers>

namespace colony {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64 expands the seed into the full xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  COLONY_ASSERT(bound > 0, "Rng::below(0)");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) {
  COLONY_ASSERT(lo <= hi, "Rng::between: lo > hi");
  return lo + below(hi - lo + 1);
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double probability) { return uniform() < probability; }

double Rng::exponential(double mean) {
  COLONY_ASSERT(mean > 0, "exponential mean must be positive");
  double u = uniform();
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  if (u1 <= 0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::pareto(double x_min, double alpha) {
  COLONY_ASSERT(x_min > 0 && alpha > 0, "pareto parameters must be positive");
  double u = uniform();
  if (u <= 0) u = 0x1.0p-53;
  return x_min / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::skewed_index(std::size_t n, double alpha) {
  COLONY_ASSERT(n > 0, "skewed_index over empty range");
  // Map a Pareto sample onto [0, n): sample >= 1, subtract 1, clamp.
  const double p = pareto(1.0, alpha) - 1.0;
  // Scale so most mass lands on small indices regardless of n.
  auto idx = static_cast<std::size_t>(p * static_cast<double>(n) * 0.25);
  return idx < n ? idx : n - 1;
}

Weighted::Weighted(std::vector<double> weights) {
  COLONY_ASSERT(!weights.empty(), "Weighted needs at least one weight");
  double total = 0;
  cumulative_.reserve(weights.size());
  for (double w : weights) {
    COLONY_ASSERT(w >= 0, "Weighted weights must be non-negative");
    total += w;
    cumulative_.push_back(total);
  }
  COLONY_ASSERT(total > 0, "Weighted weights must not all be zero");
}

std::size_t Weighted::sample(Rng& rng) const {
  const double target = rng.uniform() * cumulative_.back();
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (target < cumulative_[i]) return i;
  }
  return cumulative_.size() - 1;
}

}  // namespace colony
