// Measurement helpers for the evaluation harness: latency histograms with
// percentile extraction, windowed throughput counters, and labelled
// time-series used to regenerate the paper's figures.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace colony {

/// Collects latency samples (microseconds) and reports summary statistics.
class LatencyHistogram {
 public:
  void record(SimTime latency_us);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean_us() const;
  [[nodiscard]] SimTime percentile_us(double p) const;  // p in [0, 100]
  [[nodiscard]] SimTime min_us() const;
  [[nodiscard]] SimTime max_us() const;

  void clear() { samples_.clear(); sorted_ = true; }

 private:
  void ensure_sorted() const;

  mutable std::vector<SimTime> samples_;
  mutable bool sorted_ = true;
};

/// Counts events per fixed window of simulated time; reports a rate series.
class ThroughputCounter {
 public:
  explicit ThroughputCounter(SimTime window = kSecond) : window_(window) {}

  void record(SimTime now);

  /// Events per second for each completed window.
  [[nodiscard]] std::vector<double> rates_per_second() const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Steady-state throughput: mean of the middle half of the windows,
  /// discarding warm-up and cool-down.
  [[nodiscard]] double steady_rate_per_second() const;

 private:
  SimTime window_;
  std::map<std::uint64_t, std::uint64_t> windows_;
  std::uint64_t total_ = 0;
};

/// A labelled (time, value) series, e.g. "peer-group hit" latencies over the
/// run. Printing them row-by-row regenerates the dots of figures 5-7.
struct SeriesPoint {
  SimTime at;
  double value;
};

/// Byte accounting of the framed transport. The network records every
/// frame it accepts for transmission (including duplicate copies — they
/// occupy the wire too), keyed by directed link and by protocol kind; RPC
/// envelope flag bits are stripped by the recorder so request and response
/// traffic of a method aggregate under its protocol kind. This is what
/// makes the metadata ablation's numbers *measured* sizes rather than
/// offline re-encodings.
class WireStats {
 public:
  struct Counter {
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
  };

  void record(NodeId from, NodeId to, std::uint32_t kind,
              std::size_t frame_bytes);

  [[nodiscard]] const Counter& total() const { return total_; }
  [[nodiscard]] Counter for_kind(std::uint32_t kind) const;
  [[nodiscard]] Counter for_link(NodeId from, NodeId to) const;
  [[nodiscard]] const std::map<std::uint32_t, Counter>& per_kind() const {
    return per_kind_;
  }
  [[nodiscard]] const std::map<std::pair<NodeId, NodeId>, Counter>& per_link()
      const {
    return per_link_;
  }

  void clear();

 private:
  Counter total_;
  std::map<std::uint32_t, Counter> per_kind_;
  std::map<std::pair<NodeId, NodeId>, Counter> per_link_;
};

class Series {
 public:
  explicit Series(std::string label) : label_(std::move(label)) {}

  void add(SimTime at, double value) { points_.push_back({at, value}); }

  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] const std::vector<SeriesPoint>& points() const { return points_; }

  /// Mean of values with `at` inside [from, to).
  [[nodiscard]] double mean_in(SimTime from, SimTime to) const;
  [[nodiscard]] std::size_t count_in(SimTime from, SimTime to) const;

 private:
  std::string label_;
  std::vector<SeriesPoint> points_;
};

}  // namespace colony
