#include "consensus/epaxos.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace colony::consensus {

bool Command::interferes(const Command& other) const {
  for (const ObjectKey& a : keys) {
    for (const ObjectKey& b : other.keys) {
      if (a == b) return true;
    }
  }
  return false;
}

Epaxos::Epaxos(NodeId self, std::vector<NodeId> members, SendFn send,
               DeliverFn deliver)
    : self_(self),
      members_(std::move(members)),
      send_(std::move(send)),
      deliver_(std::move(deliver)) {
  COLONY_ASSERT(std::find(members_.begin(), members_.end(), self_) !=
                    members_.end(),
                "self must be a member");
}

void Epaxos::broadcast(const EpaxosMsg& msg) {
  for (const NodeId m : members_) {
    if (m != self_) send_(m, msg);
  }
}

void Epaxos::local_attributes(const Command& cmd, std::uint64_t& seq,
                              std::set<InstanceId>& deps,
                              const InstanceId& self_inst) const {
  // Deps are per-row watermarks: keep only the highest interfering slot of
  // each replica row. A dep on (q, j) orders this command after all of row
  // q up to j (within-row interference is chained by q itself).
  std::map<NodeId, std::uint64_t> watermark;
  for (const auto& [inst, record] : instances_) {
    if (inst == self_inst) continue;
    if (!record.cmd.id.valid()) continue;
    if (!record.cmd.interferes(cmd)) continue;
    seq = std::max(seq, record.seq + 1);
    auto& w = watermark[inst.replica];
    w = std::max(w, inst.slot);
  }
  for (const auto& [replica, slot] : watermark) {
    deps.insert(InstanceId{replica, slot});
  }
}

InstanceId Epaxos::propose(Command cmd) {
  const InstanceId inst{self_, next_slot_++};
  Instance& record = instances_[inst];
  record.cmd = cmd;
  record.seq = 1;
  record.leading = true;
  local_attributes(cmd, record.seq, record.deps, inst);
  record.status = InstanceStatus::kPreAccepted;
  record.merged_seq = record.seq;
  record.merged_deps = record.deps;

  if (members_.size() == 1) {
    commit_instance(inst, record.cmd, record.seq, record.deps,
                    /*broadcast_commit=*/false);
    ++fast_;
    return inst;
  }

  broadcast(PreAcceptMsg{inst, std::move(cmd), record.seq, record.deps});
  return inst;
}

void Epaxos::on_message(NodeId from, const EpaxosMsg& msg) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, PreAcceptMsg>) {
          handle_pre_accept(from, m);
        } else if constexpr (std::is_same_v<T, PreAcceptReplyMsg>) {
          handle_pre_accept_reply(m);
        } else if constexpr (std::is_same_v<T, AcceptMsg>) {
          handle_accept(from, m);
        } else if constexpr (std::is_same_v<T, AcceptReplyMsg>) {
          handle_accept_reply(m);
        } else if constexpr (std::is_same_v<T, CommitMsg>) {
          handle_commit(m);
        }
      },
      msg);
}

void Epaxos::handle_pre_accept(NodeId from, const PreAcceptMsg& msg) {
  Instance& record = instances_[msg.inst];
  if (record.status >= InstanceStatus::kAccepted) {
    // Already past pre-accept (e.g. commit raced ahead); ignore.
    return;
  }
  record.cmd = msg.cmd;
  std::uint64_t seq = msg.seq;
  std::set<InstanceId> deps = msg.deps;
  local_attributes(msg.cmd, seq, deps, msg.inst);
  const bool changed = seq != msg.seq || deps != msg.deps;
  record.seq = seq;
  record.deps = deps;
  record.status = InstanceStatus::kPreAccepted;
  send_(from, PreAcceptReplyMsg{msg.inst, seq, std::move(deps), changed});
  try_execute();
}

void Epaxos::handle_pre_accept_reply(const PreAcceptReplyMsg& msg) {
  const auto it = instances_.find(msg.inst);
  if (it == instances_.end()) return;
  Instance& record = it->second;
  if (!record.leading || record.decided) return;

  ++record.pre_accept_replies;
  record.merged_seq = std::max(record.merged_seq, msg.seq);
  record.merged_deps.insert(msg.deps.begin(), msg.deps.end());
  record.any_changed = record.any_changed || msg.changed;

  if (record.pre_accept_replies >= fast_quorum() && !record.any_changed) {
    // Fast path: every replica agreed with the leader's attributes.
    record.decided = true;
    ++fast_;
    commit_instance(msg.inst, record.cmd, record.merged_seq,
                    record.merged_deps, /*broadcast_commit=*/true);
    return;
  }
  if (record.pre_accept_replies >= fast_quorum() && record.any_changed) {
    // Slow path: fix the merged attributes via an accept round.
    record.decided = true;
    record.accept_replies = 0;
    record.seq = record.merged_seq;
    record.deps = record.merged_deps;
    record.status = InstanceStatus::kAccepted;
    broadcast(AcceptMsg{msg.inst, record.cmd, record.seq, record.deps});
  }
}

bool Epaxos::nudge(const InstanceId& inst) {
  const auto it = instances_.find(inst);
  if (it == instances_.end()) return false;
  Instance& record = it->second;
  if (!record.leading || record.decided ||
      record.status != InstanceStatus::kPreAccepted) {
    return false;
  }
  // Leader counts itself towards the slow quorum.
  if (record.pre_accept_replies + 1 < slow_quorum()) return false;
  record.decided = true;
  record.accept_replies = 0;
  record.seq = record.merged_seq;
  record.deps = record.merged_deps;
  record.status = InstanceStatus::kAccepted;
  broadcast(AcceptMsg{inst, record.cmd, record.seq, record.deps});
  return true;
}

void Epaxos::handle_accept(NodeId from, const AcceptMsg& msg) {
  Instance& record = instances_[msg.inst];
  if (record.status < InstanceStatus::kCommitted) {
    record.cmd = msg.cmd;
    record.seq = msg.seq;
    record.deps = msg.deps;
    record.status = InstanceStatus::kAccepted;
  }
  send_(from, AcceptReplyMsg{msg.inst});
}

void Epaxos::handle_accept_reply(const AcceptReplyMsg& msg) {
  const auto it = instances_.find(msg.inst);
  if (it == instances_.end()) return;
  Instance& record = it->second;
  if (!record.leading || record.status >= InstanceStatus::kCommitted) return;
  ++record.accept_replies;
  // Leader counts itself: accept_replies + 1 >= slow quorum.
  if (record.accept_replies + 1 >= slow_quorum()) {
    ++slow_;
    commit_instance(msg.inst, record.cmd, record.seq, record.deps,
                    /*broadcast_commit=*/true);
  }
}

void Epaxos::handle_commit(const CommitMsg& msg) {
  commit_instance(msg.inst, msg.cmd, msg.seq, msg.deps,
                  /*broadcast_commit=*/false);
}

void Epaxos::commit_instance(const InstanceId& inst, const Command& cmd,
                             std::uint64_t seq,
                             const std::set<InstanceId>& deps,
                             bool broadcast_commit) {
  Instance& record = instances_[inst];
  if (record.status >= InstanceStatus::kCommitted) return;
  record.cmd = cmd;
  record.seq = seq;
  record.deps = deps;
  record.status = InstanceStatus::kCommitted;
  ++committed_count_;
  if (broadcast_commit) {
    broadcast(CommitMsg{inst, cmd, seq, deps});
  }
  try_execute();
}

std::vector<CommitMsg> Epaxos::committed_instances() const {
  std::vector<CommitMsg> out;
  for (const auto& [inst, record] : instances_) {
    if (record.status >= InstanceStatus::kCommitted) {
      out.push_back(CommitMsg{inst, record.cmd, record.seq, record.deps});
    }
  }
  return out;
}

void Epaxos::install_committed(const std::vector<CommitMsg>& instances) {
  for (const CommitMsg& msg : instances) {
    next_slot_ = std::max(
        next_slot_, msg.inst.replica == self_ ? msg.inst.slot + 1 : next_slot_);
    commit_instance(msg.inst, msg.cmd, msg.seq, msg.deps,
                    /*broadcast_commit=*/false);
  }
}

InstanceStatus Epaxos::status(const InstanceId& inst) const {
  const auto it = instances_.find(inst);
  return it == instances_.end() ? InstanceStatus::kNone : it->second.status;
}

// ---------------------------------------------------------------------------
// Execution: Tarjan SCC over committed-but-unexecuted instances, components
// in reverse-topological completion order; within a component, commands run
// in (seq, instance id) order. A component touching an unknown or
// uncommitted dependency is deferred until that dependency commits.
// ---------------------------------------------------------------------------

namespace {

struct TarjanState {
  std::map<InstanceId, int> index;
  std::map<InstanceId, int> low;
  std::set<InstanceId> on_stack;
  std::vector<InstanceId> stack;
  int next_index = 0;
};

}  // namespace

void Epaxos::try_execute() {
  // Iterate to a fixpoint: executing one batch can unblock another.
  bool progress = true;
  while (progress) {
    progress = false;

    // Expand watermark deps into edges among committed-unexecuted
    // instances. blocked(inst) = some dep slot unknown or uncommitted.
    std::map<InstanceId, std::vector<InstanceId>> edges;
    std::set<InstanceId> blocked;
    std::vector<InstanceId> nodes;

    for (const auto& [inst, record] : instances_) {
      if (record.status != InstanceStatus::kCommitted) continue;
      nodes.push_back(inst);
      auto& out = edges[inst];
      for (const InstanceId& dep : record.deps) {
        for (std::uint64_t s = dep.slot; s >= 1; --s) {
          const InstanceId d{dep.replica, s};
          const auto dit = instances_.find(d);
          if (dit == instances_.end() ||
              dit->second.status < InstanceStatus::kCommitted) {
            blocked.insert(inst);
            break;
          }
          if (dit->second.status == InstanceStatus::kExecuted) {
            // Everything below is executed too (rows execute bottom-up in
            // this loop because lower slots are deps of higher ones via the
            // leader's own chaining; treat as satisfied).
            break;
          }
          out.push_back(d);
        }
      }
    }

    // Iterative Tarjan.
    TarjanState ts;
    std::vector<std::vector<InstanceId>> components;  // completion order

    for (const InstanceId& root : nodes) {
      if (ts.index.contains(root)) continue;

      struct Frame {
        InstanceId v;
        std::size_t child = 0;
      };
      std::vector<Frame> call_stack{{root, 0}};
      ts.index[root] = ts.low[root] = ts.next_index++;
      ts.stack.push_back(root);
      ts.on_stack.insert(root);

      while (!call_stack.empty()) {
        Frame& frame = call_stack.back();
        const auto& out = edges[frame.v];
        if (frame.child < out.size()) {
          const InstanceId w = out[frame.child++];
          if (!ts.index.contains(w)) {
            ts.index[w] = ts.low[w] = ts.next_index++;
            ts.stack.push_back(w);
            ts.on_stack.insert(w);
            call_stack.push_back({w, 0});
          } else if (ts.on_stack.contains(w)) {
            ts.low[frame.v] = std::min(ts.low[frame.v], ts.index[w]);
          }
        } else {
          if (ts.low[frame.v] == ts.index[frame.v]) {
            std::vector<InstanceId> component;
            for (;;) {
              const InstanceId w = ts.stack.back();
              ts.stack.pop_back();
              ts.on_stack.erase(w);
              component.push_back(w);
              if (w == frame.v) break;
            }
            components.push_back(std::move(component));
          }
          const InstanceId v = frame.v;
          call_stack.pop_back();
          if (!call_stack.empty()) {
            ts.low[call_stack.back().v] =
                std::min(ts.low[call_stack.back().v], ts.low[v]);
          }
        }
      }
    }

    // Components complete in reverse topological order (dependencies
    // first). Execute each component whose members are all unblocked and
    // whose external deps are executed; since dependencies complete first,
    // a linear pass suffices. A blocked member poisons its component and,
    // transitively, the components that depend on it.
    std::set<InstanceId> poisoned;
    for (const auto& component : components) {
      bool ok = true;
      for (const InstanceId& inst : component) {
        if (blocked.contains(inst) || poisoned.contains(inst)) {
          ok = false;
          break;
        }
        for (const InstanceId& dep : edges[inst]) {
          const bool internal =
              std::find(component.begin(), component.end(), dep) !=
              component.end();
          if (internal) continue;
          if (poisoned.contains(dep) ||
              instances_.at(dep).status != InstanceStatus::kExecuted) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
      if (!ok) {
        poisoned.insert(component.begin(), component.end());
        continue;
      }
      std::vector<InstanceId> ordered = component;
      std::sort(ordered.begin(), ordered.end(),
                [this](const InstanceId& a, const InstanceId& b) {
                  const Instance& ia = instances_.at(a);
                  const Instance& ib = instances_.at(b);
                  if (ia.seq != ib.seq) return ia.seq < ib.seq;
                  return a < b;
                });
      for (const InstanceId& inst : ordered) {
        Instance& record = instances_.at(inst);
        record.status = InstanceStatus::kExecuted;
        ++executed_count_;
        deliver_(record.cmd);
        progress = true;
      }
    }
  }
}

}  // namespace colony::consensus
