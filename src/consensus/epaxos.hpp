// EPaxos (Egalitarian Paxos, Moraru et al. SOSP'13) — leaderless consensus
// used inside peer groups (paper section 5.1.4).
//
// Any member can act as command leader, and non-interfering commands commit
// in parallel; this is why the paper picks EPaxos over leader-based
// protocols at the edge. This implementation covers the commit protocol
// (pre-accept fast path, accept slow path) and dependency-ordered execution
// via Tarjan SCCs. Commands interfere when they touch a common object key.
//
// The class is transport-agnostic: the owner supplies a `send` function and
// feeds incoming messages to `on_message`; committed commands surface
// through the `deliver` callback in execution order — the peer group's
// *visibility order* (identical at every member).
//
// Scope notes (documented simplifications):
//  * Fast quorum is N-1 (the "basic", non-thrifty variant); with a full
//    fast quorum the fast path is safe for any f.
//  * Explicit-prepare failure recovery is replaced by group epochs: on a
//    membership change the parent restarts consensus in a new epoch and
//    members exchange committed instances (catch-up), which matches how
//    Colony reconfigures groups via the parent (section 5.1.1).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <tuple>
#include <variant>
#include <vector>

#include "clock/dot.hpp"
#include "util/types.hpp"

namespace colony::consensus {

/// A command submitted to the group: the transaction's dot plus the keys it
/// touches (interference) and an opaque payload the group layer interprets.
struct Command {
  Dot id;
  std::vector<ObjectKey> keys;
  Bytes payload;

  [[nodiscard]] bool interferes(const Command& other) const;

  bool operator==(const Command&) const = default;
  auto fields() { return std::tie(id, keys, payload); }
};

struct InstanceId {
  NodeId replica = 0;
  std::uint64_t slot = 0;

  auto operator<=>(const InstanceId&) const = default;

  auto fields() { return std::tie(replica, slot); }
};

enum class InstanceStatus : std::uint8_t {
  kNone = 0,
  kPreAccepted,
  kAccepted,
  kCommitted,
  kExecuted,
};

struct PreAcceptMsg {
  InstanceId inst;
  Command cmd;
  std::uint64_t seq = 0;
  std::set<InstanceId> deps;

  bool operator==(const PreAcceptMsg&) const = default;
  auto fields() { return std::tie(inst, cmd, seq, deps); }
};
struct PreAcceptReplyMsg {
  InstanceId inst;
  std::uint64_t seq = 0;
  std::set<InstanceId> deps;
  bool changed = false;

  bool operator==(const PreAcceptReplyMsg&) const = default;
  auto fields() { return std::tie(inst, seq, deps, changed); }
};
struct AcceptMsg {
  InstanceId inst;
  Command cmd;
  std::uint64_t seq = 0;
  std::set<InstanceId> deps;

  bool operator==(const AcceptMsg&) const = default;
  auto fields() { return std::tie(inst, cmd, seq, deps); }
};
struct AcceptReplyMsg {
  InstanceId inst;

  bool operator==(const AcceptReplyMsg&) const = default;
  auto fields() { return std::tie(inst); }
};
struct CommitMsg {
  InstanceId inst;
  Command cmd;
  std::uint64_t seq = 0;
  std::set<InstanceId> deps;

  bool operator==(const CommitMsg&) const = default;
  auto fields() { return std::tie(inst, cmd, seq, deps); }
};

using EpaxosMsg = std::variant<PreAcceptMsg, PreAcceptReplyMsg, AcceptMsg,
                               AcceptReplyMsg, CommitMsg>;

class Epaxos {
 public:
  using SendFn = std::function<void(NodeId to, const EpaxosMsg& msg)>;
  using DeliverFn = std::function<void(const Command&)>;

  Epaxos(NodeId self, std::vector<NodeId> members, SendFn send,
         DeliverFn deliver);

  /// Submit a command with this replica as command leader. Returns the
  /// instance id. With a single member, commits (and executes) inline.
  InstanceId propose(Command cmd);

  /// Feed a message received from `from`.
  void on_message(NodeId from, const EpaxosMsg& msg);

  /// Force the slow path for a stalled instance this replica leads (e.g. a
  /// member died before the fast quorum completed, so N-1 pre-accept
  /// replies will never arrive). Safe once a majority of replies is in —
  /// the accept round itself only needs a slow quorum. Owners call this
  /// from a timer. Returns true if the instance transitioned.
  bool nudge(const InstanceId& inst);

  /// Committed-but-possibly-unexecuted instances, for catch-up transfer to
  /// a (re)joining member.
  [[nodiscard]] std::vector<CommitMsg> committed_instances() const;

  /// Install instances learned via catch-up (idempotent).
  void install_committed(const std::vector<CommitMsg>& instances);

  [[nodiscard]] std::size_t executed_count() const { return executed_count_; }
  [[nodiscard]] std::size_t committed_count() const {
    return committed_count_;
  }
  [[nodiscard]] InstanceStatus status(const InstanceId& inst) const;

  /// Statistics for the ablation bench.
  [[nodiscard]] std::uint64_t fast_path_commits() const { return fast_; }
  [[nodiscard]] std::uint64_t slow_path_commits() const { return slow_; }

  [[nodiscard]] const std::vector<NodeId>& members() const { return members_; }

 private:
  struct Instance {
    Command cmd;
    std::uint64_t seq = 0;
    std::set<InstanceId> deps;
    InstanceStatus status = InstanceStatus::kNone;

    // Leader-side bookkeeping.
    bool leading = false;
    std::size_t pre_accept_replies = 0;
    bool any_changed = false;
    std::uint64_t merged_seq = 0;
    std::set<InstanceId> merged_deps;
    std::size_t accept_replies = 0;
    bool decided = false;  // pre-accept phase closed (fast or slow chosen)
  };

  void handle_pre_accept(NodeId from, const PreAcceptMsg& msg);
  void handle_pre_accept_reply(const PreAcceptReplyMsg& msg);
  void handle_accept(NodeId from, const AcceptMsg& msg);
  void handle_accept_reply(const AcceptReplyMsg& msg);
  void handle_commit(const CommitMsg& msg);

  /// Interference scan: seq/deps a command picks up from this replica's
  /// instance table (excluding `self_inst`).
  void local_attributes(const Command& cmd, std::uint64_t& seq,
                        std::set<InstanceId>& deps,
                        const InstanceId& self_inst) const;

  void commit_instance(const InstanceId& inst, const Command& cmd,
                       std::uint64_t seq, const std::set<InstanceId>& deps,
                       bool broadcast_commit);
  void try_execute();

  [[nodiscard]] std::size_t slow_quorum() const {
    return members_.size() / 2 + 1;
  }
  /// Fast quorum: every other replica (basic EPaxos, thrifty off).
  [[nodiscard]] std::size_t fast_quorum() const {
    return members_.size() - 1;
  }

  void broadcast(const EpaxosMsg& msg);

  NodeId self_;
  std::vector<NodeId> members_;
  SendFn send_;
  DeliverFn deliver_;

  std::uint64_t next_slot_ = 1;
  std::map<InstanceId, Instance> instances_;
  std::size_t executed_count_ = 0;
  std::size_t committed_count_ = 0;
  std::uint64_t fast_ = 0;
  std::uint64_t slow_ = 0;
};

}  // namespace colony::consensus
