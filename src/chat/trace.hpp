// Synthetic ColonyChat trace generator.
//
// Substitutes for the paper's 40-day Mattermost trace (section 7.1) using
// its published statistics: ~2000 users over 3 workspaces (20 channels
// each), ~10% bots, 90/10 read/write per regular action, Pareto 80/20
// activity skew, a channel refresh every 5 transactions, and a diurnal
// cycle. Experiments accelerate the trace to minutes, as the paper does.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace colony::chat {

struct TraceConfig {
  std::size_t num_users = 36;
  std::size_t num_workspaces = 3;
  std::size_t channels_per_workspace = 20;
  double bot_fraction = 0.10;
  double write_ratio = 0.10;      // regular users
  double bot_write_ratio = 0.40;  // bots "act upon messages": write-heavy
  std::size_t refresh_every = 5;  // switch channel every N actions
  double pareto_alpha = 1.16;     // 80/20 activity skew
  bool diurnal = false;           // modulate think time over the run
};

enum class ActionKind : std::uint8_t {
  kReadChannel,   // open a channel and read its recent messages
  kPostMessage,   // read then append a message
  kUpdateProfile, // occasional profile write
};

struct Action {
  ActionKind kind{};
  std::size_t workspace = 0;
  std::size_t channel = 0;
  bool channel_switch = false;  // a "refresh": likely cache miss
};

/// Per-user stationary state + action sampling.
class UserScript {
 public:
  UserScript(const TraceConfig& config, UserId user, Rng& rng);

  [[nodiscard]] UserId user() const { return user_; }
  [[nodiscard]] bool is_bot() const { return bot_; }
  /// Relative activity weight (Pareto-skewed; 20% of users do 80%).
  [[nodiscard]] double activity() const { return activity_; }
  [[nodiscard]] std::size_t home_workspace() const { return workspace_; }
  [[nodiscard]] std::size_t home_channel() const { return channel_; }

  /// Sample the next action; mutates the per-user counters.
  Action next(Rng& rng);

  /// Keys this user wants cached up-front (its interest set).
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  subscribed_channels() const {
    return subscribed_;
  }

 private:
  const TraceConfig& config_;
  UserId user_;
  bool bot_;
  double activity_;
  std::size_t workspace_;
  std::size_t channel_;  // current channel
  std::vector<std::pair<std::size_t, std::size_t>> subscribed_;
  std::uint64_t actions_ = 0;
};

/// Diurnal modulation factor in (0.25, 1.75]: multiply think time by it.
[[nodiscard]] double diurnal_factor(SimTime now, SimTime day_length);

}  // namespace colony::chat
