// ColonyChat workload driver: runs the synthetic Mattermost-style trace
// against a Cluster in one of the three client configurations and collects
// the metrics the paper's figures plot (latency by hit class, throughput,
// time series).
//
// Closed-loop load: every client thinks, performs an action (open/read a
// channel, possibly post), waits for the response, and repeats. Activity is
// Pareto-skewed across clients; bots are write-heavy.
#pragma once

#include <memory>
#include <vector>

#include "chat/model.hpp"
#include "chat/trace.hpp"
#include "colony/cluster.hpp"
#include "colony/session.hpp"
#include "util/metrics.hpp"

namespace colony::chat {

struct ChatDriverConfig {
  ClientMode mode = ClientMode::kPeerGroup;
  std::size_t clients = 36;
  /// Peer-group mode: members per group (0 = all clients in one group).
  std::size_t group_size = 12;
  TraceConfig trace;
  SimTime think_time = 100 * kMillisecond;
  SimTime day_length = 60 * kSecond;  // diurnal period when trace.diurnal
  std::size_t cache_capacity = 64;    // objects per client cache
  std::uint64_t seed = 7;
};

class ChatDriver {
 public:
  ChatDriver(Cluster& cluster, ChatDriverConfig config);

  /// Subscribe, join groups, and start the action loops.
  void start();
  /// Stop issuing new actions (in-flight ones finish).
  void stop() { stopped_ = true; }

  // --- metrics ---------------------------------------------------------------

  [[nodiscard]] const LatencyHistogram& latency(ReadSource src) const {
    return latency_[static_cast<std::size_t>(src)];
  }
  [[nodiscard]] const LatencyHistogram& overall_latency() const {
    return overall_;
  }
  [[nodiscard]] const ThroughputCounter& throughput() const {
    return throughput_;
  }
  [[nodiscard]] const Series& series(ReadSource src) const {
    return series_[static_cast<std::size_t>(src)];
  }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t failed_reads() const { return failed_reads_; }
  [[nodiscard]] std::uint64_t stalled_commits() const {
    return stalled_commits_;
  }

  /// Restrict metric recording to one client (Figures 6/7 plot the joiner
  /// separately); SIZE_MAX = record everyone.
  void record_only(std::size_t client_index) { record_only_ = client_index; }
  void record_all() { record_only_ = SIZE_MAX; }
  void clear_metrics();

  /// Route one client's latencies into a separate series (the migrating /
  /// disconnected user of Figures 6-7), leaving the rest in the normal
  /// per-source series.
  void spotlight(std::size_t client_index) { spotlight_ = client_index; }
  [[nodiscard]] const Series& spotlight_series() const {
    return spotlight_series_;
  }
  [[nodiscard]] const LatencyHistogram& spotlight_latency() const {
    return spotlight_latency_;
  }

  /// Delay one client's session setup (a user who joins mid-run, Fig. 7).
  void set_start_delay(std::size_t client_index, SimTime delay);

  /// The channel keys a client's script subscribes to (for re-subscribing
  /// after a rejoin).
  [[nodiscard]] std::vector<ObjectKey> client_interest(std::size_t i) const;

  /// Re-attach a client to its group and refresh its cache (reconnection in
  /// Figure 6).
  void rejoin_group(std::size_t client_index);

  // --- topology access (failure injection in the figures) --------------------

  [[nodiscard]] std::size_t group_count() const { return parents_.size(); }
  PeerGroupParent& parent(std::size_t g) { return *parents_.at(g); }
  EdgeNode& client(std::size_t i) { return clients_.at(i).session->node(); }
  [[nodiscard]] std::vector<NodeId> group_node_ids(std::size_t g) const;
  [[nodiscard]] std::size_t group_of(std::size_t client_index) const;

 private:
  struct ClientState {
    std::unique_ptr<Session> session;
    std::unique_ptr<UserScript> script;
    std::size_t group = SIZE_MAX;
    bool running = false;
    SimTime start_delay = 0;
    bool reaction_pending = false;  // bot debounce
  };

  void setup_client(std::size_t i);
  void seed_entities(std::size_t i);
  void install_bot_reactions(std::size_t i);
  void bot_react(std::size_t i, const ObjectKey& channel);
  void schedule_next(std::size_t i);
  void act(std::size_t i);
  void act_cached(std::size_t i, const Action& action);
  void act_cloud(std::size_t i, const Action& action);
  void finish_action(std::size_t i, SimTime started, ReadSource src,
                     bool ok);
  void record_latency(std::size_t i, SimTime started, ReadSource src);

  Cluster& cluster_;
  ChatDriverConfig config_;
  Rng rng_;
  std::vector<ClientState> clients_;
  std::vector<PeerGroupParent*> parents_;
  bool stopped_ = false;

  LatencyHistogram latency_[3];
  LatencyHistogram overall_;
  ThroughputCounter throughput_;
  Series series_[3] = {Series{"client-hit"}, Series{"peer-group-hit"},
                       Series{"dc-hit"}};
  std::uint64_t completed_ = 0;
  std::uint64_t failed_reads_ = 0;
  std::uint64_t stalled_commits_ = 0;
  std::size_t record_only_ = SIZE_MAX;
  std::size_t spotlight_ = SIZE_MAX;
  Series spotlight_series_{"spotlight"};
  LatencyHistogram spotlight_latency_;
};

}  // namespace colony::chat
