#include "chat/trace.hpp"

#include <cmath>
#include <numbers>

namespace colony::chat {

UserScript::UserScript(const TraceConfig& config, UserId user, Rng& rng)
    : config_(config), user_(user) {
  bot_ = rng.uniform() < config.bot_fraction;
  activity_ = rng.pareto(1.0, config.pareto_alpha);
  workspace_ = rng.below(config.num_workspaces);
  channel_ = rng.below(config.channels_per_workspace);
  // Subscribe to a handful of channels in the home workspace; the current
  // channel is always among them.
  subscribed_.emplace_back(workspace_, channel_);
  const std::size_t extra = 2 + rng.below(3);
  for (std::size_t i = 0; i < extra; ++i) {
    subscribed_.emplace_back(workspace_,
                             rng.below(config.channels_per_workspace));
  }
}

Action UserScript::next(Rng& rng) {
  ++actions_;
  Action action;
  action.workspace = workspace_;

  // Every refresh_every-th action the user opens a different channel
  // (paper: "a user refreshes its local copy of a channel every 5
  // transactions") — the main source of cache misses.
  if (config_.refresh_every != 0 && actions_ % config_.refresh_every == 0) {
    channel_ = rng.below(config_.channels_per_workspace);
    action.channel_switch = true;
  }
  action.channel = channel_;

  const double write_ratio =
      bot_ ? config_.bot_write_ratio : config_.write_ratio;
  if (rng.uniform() < write_ratio) {
    action.kind = ActionKind::kPostMessage;
  } else if (rng.uniform() < 0.02) {
    action.kind = ActionKind::kUpdateProfile;
  } else {
    action.kind = ActionKind::kReadChannel;
  }
  return action;
}

double diurnal_factor(SimTime now, SimTime day_length) {
  const double phase = static_cast<double>(now % day_length) /
                       static_cast<double>(day_length);
  // Peak activity mid-"day": factor < 1 (short think time); trough at
  // "night": factor > 1.
  return 1.0 - 0.75 * std::sin(2.0 * std::numbers::pi * phase);
}

}  // namespace colony::chat
