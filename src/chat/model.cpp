// Key builders are header-only; this TU compiles the header standalone as a
// hygiene check and anchors the library.
#include "chat/model.hpp"
