#include "chat/driver.hpp"

#include <algorithm>

#include "crdt/rga.hpp"
#include "util/assert.hpp"

namespace colony::chat {

ChatDriver::ChatDriver(Cluster& cluster, ChatDriverConfig config)
    : cluster_(cluster), config_(config), rng_(config.seed) {
  // Peer-group parents, one per group, round-robin across DCs.
  std::size_t groups = 0;
  if (config_.mode == ClientMode::kPeerGroup) {
    const std::size_t size =
        config_.group_size == 0 ? config_.clients : config_.group_size;
    groups = (config_.clients + size - 1) / size;
    for (std::size_t g = 0; g < groups; ++g) {
      parents_.push_back(&cluster_.add_group_parent(
          static_cast<DcId>(g % cluster_.num_dcs())));
    }
  }

  clients_.resize(config_.clients);
  for (std::size_t i = 0; i < config_.clients; ++i) {
    const UserId user = 1000 + i;
    std::size_t group = SIZE_MAX;
    DcId dc = static_cast<DcId>(i % cluster_.num_dcs());
    if (config_.mode == ClientMode::kPeerGroup) {
      const std::size_t size =
          config_.group_size == 0 ? config_.clients : config_.group_size;
      group = i / size;
      dc = static_cast<DcId>(group % cluster_.num_dcs());
    }
    EdgeNode& node = cluster_.add_edge(config_.mode, dc, user,
                                       config_.cache_capacity);
    clients_[i].session = std::make_unique<Session>(node);
    clients_[i].script = std::make_unique<UserScript>(config_.trace, user,
                                                      rng_);
    clients_[i].group = group;
  }

  // Wire peer links inside each group (members + parent).
  for (std::size_t g = 0; g < parents_.size(); ++g) {
    cluster_.wire_peer_links(group_node_ids(g));
  }
}

std::vector<NodeId> ChatDriver::group_node_ids(std::size_t g) const {
  std::vector<NodeId> out{parents_.at(g)->id()};
  for (const ClientState& c : clients_) {
    if (c.group == g) out.push_back(c.session->node().id());
  }
  return out;
}

std::size_t ChatDriver::group_of(std::size_t client_index) const {
  return clients_.at(client_index).group;
}

void ChatDriver::clear_metrics() {
  for (auto& h : latency_) h.clear();
  overall_.clear();
}

void ChatDriver::start() {
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (clients_[i].start_delay > 0) {
      cluster_.scheduler().after(clients_[i].start_delay,
                                 [this, i] { setup_client(i); });
    } else {
      setup_client(i);
    }
  }
}

void ChatDriver::seed_entities(std::size_t i) {
  // Register the user in its workspace and the workspace in the user's
  // profile — atomically, the invariant the paper highlights in section
  // 7.1 ("a user is in a workspace iff the workspace is in the user's
  // profile").
  ClientState& st = clients_[i];
  Session& session = *st.session;
  const UserId user = st.script->user();
  const std::size_t ws = st.script->home_workspace();
  auto txn = session.begin();
  session.add_to_set(txn, workspace_members_key(ws),
                     member_element(user, MemberStatus::kOrdinary));
  session.add_to_set(txn, user_workspaces_key(user), std::to_string(ws));
  session.map_assign(txn, user_profile_key(user), "name",
                     "user" + std::to_string(user));
  (void)session.commit(std::move(txn));
}

void ChatDriver::install_bot_reactions(std::size_t i) {
  // Bots "act randomly upon receiving a message on the channel they have
  // subscribed to" (section 7.1): a reactive watch on the home channel
  // triggers a reply with some probability, debounced so a bot storm
  // cannot run away.
  ClientState& st = clients_[i];
  if (!st.script->is_bot()) return;
  const ObjectKey channel = channel_messages_key(st.script->home_workspace(),
                                                 st.script->home_channel());
  st.session->watch(channel, [this, i, channel](const ObjectKey&) {
    ClientState& bot = clients_[i];
    if (stopped_ || !bot.running || bot.reaction_pending) return;
    if (!rng_.chance(0.3)) return;
    bot.reaction_pending = true;
    cluster_.scheduler().after(rng_.between(10, 200) * kMillisecond,
                               [this, i, channel] { bot_react(i, channel); });
  });
}

void ChatDriver::bot_react(std::size_t i, const ObjectKey& channel) {
  ClientState& bot = clients_[i];
  bot.reaction_pending = false;
  if (stopped_ || !bot.running) return;
  Session& session = *bot.session;
  auto txn = session.begin();
  session.append(txn, channel,
                 "bot" + std::to_string(bot.script->user()) + ": ack");
  if (session.commit(std::move(txn)).ok()) {
    ++completed_;
    throughput_.record(cluster_.now());
  } else {
    ++stalled_commits_;
  }
}

void ChatDriver::set_start_delay(std::size_t client_index, SimTime delay) {
  clients_.at(client_index).start_delay = delay;
}

std::vector<ObjectKey> ChatDriver::client_interest(std::size_t i) const {
  std::vector<ObjectKey> interest;
  for (const auto& [ws, ch] : clients_.at(i).script->subscribed_channels()) {
    interest.push_back(channel_messages_key(ws, ch));
  }
  interest.push_back(user_profile_key(clients_.at(i).script->user()));
  return interest;
}

void ChatDriver::rejoin_group(std::size_t client_index) {
  ClientState& st = clients_.at(client_index);
  if (st.group == SIZE_MAX) return;
  const NodeId parent = parents_.at(st.group)->id();
  EdgeNode& node = st.session->node();
  auto interest = client_interest(client_index);
  node.join_group(parent, [&node, interest](Result<void>) {
    node.subscribe(interest, [](Result<void>) {});
  });
}

void ChatDriver::setup_client(std::size_t i) {
  ClientState& st = clients_[i];
  if (config_.mode == ClientMode::kCloudOnly) {
    st.running = true;
    schedule_next(i);
    return;
  }
  std::vector<ObjectKey> interest;
  for (const auto& [ws, ch] : st.script->subscribed_channels()) {
    interest.push_back(channel_messages_key(ws, ch));
  }
  interest.push_back(user_profile_key(st.script->user()));

  auto begin_loop = [this, i] {
    clients_[i].running = true;
    seed_entities(i);
    install_bot_reactions(i);
    schedule_next(i);
  };

  if (config_.mode == ClientMode::kPeerGroup) {
    const NodeId parent = parents_.at(st.group)->id();
    st.session->join_group(parent, [this, i, interest,
                                    begin_loop](Result<void> r) {
      // Subscribe through the group whether or not the join succeeded (a
      // refused join degrades to direct DC attachment).
      (void)r;
      clients_[i].session->subscribe(interest,
                                     [begin_loop](Result<void>) {
                                       begin_loop();
                                     });
    });
    return;
  }
  st.session->subscribe(interest,
                        [begin_loop](Result<void>) { begin_loop(); });
}

void ChatDriver::schedule_next(std::size_t i) {
  if (stopped_) return;
  ClientState& st = clients_[i];
  // More active users think less (Pareto skew); bots are quick. The clamp
  // keeps even the hottest user at human-scale action rates, so offered
  // load is think-time-bound, as in the paper's trace.
  double think = static_cast<double>(config_.think_time);
  think /= std::clamp(st.script->activity(), 1.0, 3.0);
  if (config_.trace.diurnal) {
    think *= diurnal_factor(cluster_.now(), config_.day_length);
  }
  const double delay = rng_.exponential(std::max(think, 1.0));
  cluster_.scheduler().after(static_cast<SimTime>(delay),
                             [this, i] { act(i); });
}

void ChatDriver::act(std::size_t i) {
  if (stopped_) return;
  const Action action = clients_[i].script->next(rng_);
  if (config_.mode == ClientMode::kCloudOnly) {
    act_cloud(i, action);
  } else {
    act_cached(i, action);
  }
}

void ChatDriver::record_latency(std::size_t i, SimTime started,
                                ReadSource src) {
  if (record_only_ != SIZE_MAX && record_only_ != i) return;
  const SimTime latency = cluster_.now() - started;
  if (spotlight_ == i) {
    spotlight_latency_.record(latency);
    spotlight_series_.add(cluster_.now(),
                          static_cast<double>(latency) / kMillisecond);
    return;
  }
  latency_[static_cast<std::size_t>(src)].record(latency);
  overall_.record(latency);
  series_[static_cast<std::size_t>(src)].add(
      cluster_.now(), static_cast<double>(latency) / kMillisecond);
}

void ChatDriver::finish_action(std::size_t i, SimTime /*started*/,
                               ReadSource /*src*/, bool ok) {
  if (ok) {
    ++completed_;
    throughput_.record(cluster_.now());
  }
  schedule_next(i);
}

void ChatDriver::act_cached(std::size_t i, const Action& action) {
  ClientState& st = clients_[i];
  Session& session = *st.session;
  const SimTime started = cluster_.now();
  const ObjectKey key = channel_messages_key(action.workspace,
                                             action.channel);

  auto txn = std::make_shared<Session::Txn>(session.begin());
  session.read_sequence(
      *txn, key,
      [this, i, txn, key, action, started](
          Result<std::vector<std::string>> r, ReadSource src) {
        ClientState& client = clients_[i];
        if (!r.ok()) {
          ++failed_reads_;
          schedule_next(i);
          return;
        }
        record_latency(i, started, src);

        Session& session = *client.session;
        if (action.kind == ActionKind::kPostMessage) {
          session.append(*txn, key,
                         "u" + std::to_string(client.script->user()) + ":" +
                             std::to_string(completed_));
        } else if (action.kind == ActionKind::kUpdateProfile) {
          session.map_assign(*txn,
                             user_profile_key(client.script->user()),
                             "status", "s" + std::to_string(completed_));
        }
        const Result<Dot> c = session.commit(std::move(*txn));
        if (!c.ok()) {
          // Commit backlog full ("out of storage"): back off.
          ++stalled_commits_;
          schedule_next(i);
          return;
        }
        finish_action(i, started, src, true);
      });
}

void ChatDriver::act_cloud(std::size_t i, const Action& action) {
  ClientState& st = clients_[i];
  EdgeNode& node = st.session->node();
  const SimTime started = cluster_.now();
  const ObjectKey key = channel_messages_key(action.workspace,
                                             action.channel);

  node.cloud_execute(
      {key}, {},
      [this, i, key, action, started](Result<proto::DcExecuteResp> r) {
        if (!r.ok()) {
          ++failed_reads_;
          schedule_next(i);
          return;
        }
        if (action.kind != ActionKind::kPostMessage) {
          record_latency(i, started, ReadSource::kDc);
          finish_action(i, started, ReadSource::kDc, true);
          return;
        }
        // Interactive update: prepare the append against the value just
        // read, then a second round trip to commit it at the DC.
        EdgeNode& node = clients_[i].session->node();
        Rga sequence;
        const ObjectSnapshot& snap = r.value().read_values[0];
        if (!snap.state.empty()) sequence.restore(snap.state);
        OpRecord op{key, CrdtType::kRga,
                    Rga::prepare_insert(
                        sequence.last_id(),
                        "u" + std::to_string(clients_[i].script->user()),
                        node.make_arb())};
        node.cloud_execute(
            {}, {op},
            [this, i, started](Result<proto::DcExecuteResp> r2) {
              if (!r2.ok()) {
                ++failed_reads_;
                schedule_next(i);
                return;
              }
              record_latency(i, started, ReadSource::kDc);
              finish_action(i, started, ReadSource::kDc, true);
            });
      });
}

}  // namespace colony::chat
