// ColonyChat entity model (paper section 7.1).
//
// A Slack/Mattermost-like application over Colony CRDTs:
//   * a user has a profile (gmap), a friends set, an events sequence and a
//     set of workspaces she belongs to;
//   * a workspace has a member set (with status) and a set of channels;
//   * a channel has a description register and a message sequence (RGA);
//   * bots are users that react to channel traffic.
#pragma once

#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace colony::chat {

/// Object-key builders (all ColonyChat data lives in the "chat" bucket).
[[nodiscard]] inline ObjectKey user_profile_key(UserId user) {
  return ObjectKey{"chat", "user." + std::to_string(user) + ".profile"};
}
[[nodiscard]] inline ObjectKey user_friends_key(UserId user) {
  return ObjectKey{"chat", "user." + std::to_string(user) + ".friends"};
}
[[nodiscard]] inline ObjectKey user_events_key(UserId user) {
  return ObjectKey{"chat", "user." + std::to_string(user) + ".events"};
}
[[nodiscard]] inline ObjectKey user_workspaces_key(UserId user) {
  return ObjectKey{"chat", "user." + std::to_string(user) + ".ws"};
}
[[nodiscard]] inline ObjectKey workspace_members_key(std::size_t ws) {
  return ObjectKey{"chat", "ws." + std::to_string(ws) + ".members"};
}
[[nodiscard]] inline ObjectKey workspace_channels_key(std::size_t ws) {
  return ObjectKey{"chat", "ws." + std::to_string(ws) + ".channels"};
}
[[nodiscard]] inline ObjectKey channel_desc_key(std::size_t ws,
                                                std::size_t ch) {
  return ObjectKey{"chat", "ws." + std::to_string(ws) + ".ch." +
                               std::to_string(ch) + ".desc"};
}
[[nodiscard]] inline ObjectKey channel_messages_key(std::size_t ws,
                                                    std::size_t ch) {
  return ObjectKey{"chat", "ws." + std::to_string(ws) + ".ch." +
                               std::to_string(ch) + ".msgs"};
}

/// Member status inside a workspace (encoded into the member-set element).
enum class MemberStatus : std::uint8_t {
  kOwner,
  kOrdinary,
  kInvited,
  kDeleted,
};

[[nodiscard]] inline std::string member_element(UserId user,
                                                MemberStatus status) {
  return std::to_string(user) + ":" + std::to_string(static_cast<int>(status));
}

}  // namespace colony::chat
