# Empty dependencies file for group_game.
# This may be replaced when dependencies are built.
