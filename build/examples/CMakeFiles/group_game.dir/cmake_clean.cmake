file(REMOVE_RECURSE
  "CMakeFiles/group_game.dir/group_game.cpp.o"
  "CMakeFiles/group_game.dir/group_game.cpp.o.d"
  "group_game"
  "group_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
