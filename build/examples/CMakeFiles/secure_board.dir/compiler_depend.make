# Empty compiler generated dependencies file for secure_board.
# This may be replaced when dependencies are built.
