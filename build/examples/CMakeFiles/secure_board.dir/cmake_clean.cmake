file(REMOVE_RECURSE
  "CMakeFiles/secure_board.dir/secure_board.cpp.o"
  "CMakeFiles/secure_board.dir/secure_board.cpp.o.d"
  "secure_board"
  "secure_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
