
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/analytics_offload.cpp" "examples/CMakeFiles/analytics_offload.dir/analytics_offload.cpp.o" "gcc" "examples/CMakeFiles/analytics_offload.dir/analytics_offload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/colony_chat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_group.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_dc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_security.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_crdt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
