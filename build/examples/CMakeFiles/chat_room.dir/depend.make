# Empty dependencies file for chat_room.
# This may be replaced when dependencies are built.
