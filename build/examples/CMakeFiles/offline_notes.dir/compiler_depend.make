# Empty compiler generated dependencies file for offline_notes.
# This may be replaced when dependencies are built.
