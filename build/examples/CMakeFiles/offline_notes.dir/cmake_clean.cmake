file(REMOVE_RECURSE
  "CMakeFiles/offline_notes.dir/offline_notes.cpp.o"
  "CMakeFiles/offline_notes.dir/offline_notes.cpp.o.d"
  "offline_notes"
  "offline_notes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_notes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
