
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_acl.cpp" "tests/CMakeFiles/colony_tests.dir/test_acl.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_acl.cpp.o.d"
  "/root/repo/tests/test_binary_codec.cpp" "tests/CMakeFiles/colony_tests.dir/test_binary_codec.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_binary_codec.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/colony_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_chat_bots.cpp" "tests/CMakeFiles/colony_tests.dir/test_chat_bots.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_chat_bots.cpp.o.d"
  "/root/repo/tests/test_chat_workload.cpp" "tests/CMakeFiles/colony_tests.dir/test_chat_workload.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_chat_workload.cpp.o.d"
  "/root/repo/tests/test_cluster_topology.cpp" "tests/CMakeFiles/colony_tests.dir/test_cluster_topology.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_cluster_topology.cpp.o.d"
  "/root/repo/tests/test_crdt_counter.cpp" "tests/CMakeFiles/colony_tests.dir/test_crdt_counter.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_crdt_counter.cpp.o.d"
  "/root/repo/tests/test_crdt_maps.cpp" "tests/CMakeFiles/colony_tests.dir/test_crdt_maps.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_crdt_maps.cpp.o.d"
  "/root/repo/tests/test_crdt_properties.cpp" "tests/CMakeFiles/colony_tests.dir/test_crdt_properties.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_crdt_properties.cpp.o.d"
  "/root/repo/tests/test_crdt_registers.cpp" "tests/CMakeFiles/colony_tests.dir/test_crdt_registers.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_crdt_registers.cpp.o.d"
  "/root/repo/tests/test_crdt_rga.cpp" "tests/CMakeFiles/colony_tests.dir/test_crdt_rga.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_crdt_rga.cpp.o.d"
  "/root/repo/tests/test_crdt_sets.cpp" "tests/CMakeFiles/colony_tests.dir/test_crdt_sets.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_crdt_sets.cpp.o.d"
  "/root/repo/tests/test_crypto_sim.cpp" "tests/CMakeFiles/colony_tests.dir/test_crypto_sim.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_crypto_sim.cpp.o.d"
  "/root/repo/tests/test_dc_basic.cpp" "tests/CMakeFiles/colony_tests.dir/test_dc_basic.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_dc_basic.cpp.o.d"
  "/root/repo/tests/test_determinism.cpp" "tests/CMakeFiles/colony_tests.dir/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_determinism.cpp.o.d"
  "/root/repo/tests/test_dot_tracker.cpp" "tests/CMakeFiles/colony_tests.dir/test_dot_tracker.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_dot_tracker.cpp.o.d"
  "/root/repo/tests/test_edge_basic.cpp" "tests/CMakeFiles/colony_tests.dir/test_edge_basic.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_edge_basic.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/colony_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_edge_offline.cpp" "tests/CMakeFiles/colony_tests.dir/test_edge_offline.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_edge_offline.cpp.o.d"
  "/root/repo/tests/test_epaxos.cpp" "tests/CMakeFiles/colony_tests.dir/test_epaxos.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_epaxos.cpp.o.d"
  "/root/repo/tests/test_epaxos_recovery.cpp" "tests/CMakeFiles/colony_tests.dir/test_epaxos_recovery.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_epaxos_recovery.cpp.o.d"
  "/root/repo/tests/test_group_migration.cpp" "tests/CMakeFiles/colony_tests.dir/test_group_migration.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_group_migration.cpp.o.d"
  "/root/repo/tests/test_group_properties.cpp" "tests/CMakeFiles/colony_tests.dir/test_group_properties.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_group_properties.cpp.o.d"
  "/root/repo/tests/test_hash_ring.cpp" "tests/CMakeFiles/colony_tests.dir/test_hash_ring.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_hash_ring.cpp.o.d"
  "/root/repo/tests/test_hlc.cpp" "tests/CMakeFiles/colony_tests.dir/test_hlc.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_hlc.cpp.o.d"
  "/root/repo/tests/test_journal_store.cpp" "tests/CMakeFiles/colony_tests.dir/test_journal_store.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_journal_store.cpp.o.d"
  "/root/repo/tests/test_kstability.cpp" "tests/CMakeFiles/colony_tests.dir/test_kstability.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_kstability.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/colony_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_migration.cpp" "tests/CMakeFiles/colony_tests.dir/test_migration.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_migration.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/colony_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_peer_group.cpp" "tests/CMakeFiles/colony_tests.dir/test_peer_group.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_peer_group.cpp.o.d"
  "/root/repo/tests/test_rga_orphans.cpp" "tests/CMakeFiles/colony_tests.dir/test_rga_orphans.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_rga_orphans.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/colony_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_rpc.cpp" "tests/CMakeFiles/colony_tests.dir/test_rpc.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_rpc.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/colony_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_sealed_e2e.cpp" "tests/CMakeFiles/colony_tests.dir/test_sealed_e2e.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_sealed_e2e.cpp.o.d"
  "/root/repo/tests/test_security_e2e.cpp" "tests/CMakeFiles/colony_tests.dir/test_security_e2e.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_security_e2e.cpp.o.d"
  "/root/repo/tests/test_session_api.cpp" "tests/CMakeFiles/colony_tests.dir/test_session_api.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_session_api.cpp.o.d"
  "/root/repo/tests/test_shard.cpp" "tests/CMakeFiles/colony_tests.dir/test_shard.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_shard.cpp.o.d"
  "/root/repo/tests/test_tcc_properties.cpp" "tests/CMakeFiles/colony_tests.dir/test_tcc_properties.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_tcc_properties.cpp.o.d"
  "/root/repo/tests/test_txn_meta.cpp" "tests/CMakeFiles/colony_tests.dir/test_txn_meta.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_txn_meta.cpp.o.d"
  "/root/repo/tests/test_txn_migration.cpp" "tests/CMakeFiles/colony_tests.dir/test_txn_migration.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_txn_migration.cpp.o.d"
  "/root/repo/tests/test_version_vector.cpp" "tests/CMakeFiles/colony_tests.dir/test_version_vector.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_version_vector.cpp.o.d"
  "/root/repo/tests/test_visibility.cpp" "tests/CMakeFiles/colony_tests.dir/test_visibility.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_visibility.cpp.o.d"
  "/root/repo/tests/test_watch_versioning.cpp" "tests/CMakeFiles/colony_tests.dir/test_watch_versioning.cpp.o" "gcc" "tests/CMakeFiles/colony_tests.dir/test_watch_versioning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/colony_chat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_group.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_dc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_security.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_crdt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
