# Empty compiler generated dependencies file for colony_tests.
# This may be replaced when dependencies are built.
