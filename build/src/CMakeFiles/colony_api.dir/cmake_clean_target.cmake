file(REMOVE_RECURSE
  "libcolony_api.a"
)
