# Empty dependencies file for colony_api.
# This may be replaced when dependencies are built.
