file(REMOVE_RECURSE
  "CMakeFiles/colony_api.dir/colony/cluster.cpp.o"
  "CMakeFiles/colony_api.dir/colony/cluster.cpp.o.d"
  "CMakeFiles/colony_api.dir/colony/session.cpp.o"
  "CMakeFiles/colony_api.dir/colony/session.cpp.o.d"
  "libcolony_api.a"
  "libcolony_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colony_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
