
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/cache.cpp" "src/CMakeFiles/colony_storage.dir/storage/cache.cpp.o" "gcc" "src/CMakeFiles/colony_storage.dir/storage/cache.cpp.o.d"
  "/root/repo/src/storage/hash_ring.cpp" "src/CMakeFiles/colony_storage.dir/storage/hash_ring.cpp.o" "gcc" "src/CMakeFiles/colony_storage.dir/storage/hash_ring.cpp.o.d"
  "/root/repo/src/storage/journal_store.cpp" "src/CMakeFiles/colony_storage.dir/storage/journal_store.cpp.o" "gcc" "src/CMakeFiles/colony_storage.dir/storage/journal_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/colony_crdt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
