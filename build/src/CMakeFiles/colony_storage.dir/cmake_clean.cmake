file(REMOVE_RECURSE
  "CMakeFiles/colony_storage.dir/storage/cache.cpp.o"
  "CMakeFiles/colony_storage.dir/storage/cache.cpp.o.d"
  "CMakeFiles/colony_storage.dir/storage/hash_ring.cpp.o"
  "CMakeFiles/colony_storage.dir/storage/hash_ring.cpp.o.d"
  "CMakeFiles/colony_storage.dir/storage/journal_store.cpp.o"
  "CMakeFiles/colony_storage.dir/storage/journal_store.cpp.o.d"
  "libcolony_storage.a"
  "libcolony_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colony_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
