file(REMOVE_RECURSE
  "libcolony_storage.a"
)
