# Empty compiler generated dependencies file for colony_storage.
# This may be replaced when dependencies are built.
