
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clock/dot_tracker.cpp" "src/CMakeFiles/colony_clock.dir/clock/dot_tracker.cpp.o" "gcc" "src/CMakeFiles/colony_clock.dir/clock/dot_tracker.cpp.o.d"
  "/root/repo/src/clock/hlc.cpp" "src/CMakeFiles/colony_clock.dir/clock/hlc.cpp.o" "gcc" "src/CMakeFiles/colony_clock.dir/clock/hlc.cpp.o.d"
  "/root/repo/src/clock/version_vector.cpp" "src/CMakeFiles/colony_clock.dir/clock/version_vector.cpp.o" "gcc" "src/CMakeFiles/colony_clock.dir/clock/version_vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/colony_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
