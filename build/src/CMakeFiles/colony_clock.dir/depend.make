# Empty dependencies file for colony_clock.
# This may be replaced when dependencies are built.
