file(REMOVE_RECURSE
  "libcolony_clock.a"
)
