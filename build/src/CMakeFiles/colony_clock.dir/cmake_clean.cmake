file(REMOVE_RECURSE
  "CMakeFiles/colony_clock.dir/clock/dot_tracker.cpp.o"
  "CMakeFiles/colony_clock.dir/clock/dot_tracker.cpp.o.d"
  "CMakeFiles/colony_clock.dir/clock/hlc.cpp.o"
  "CMakeFiles/colony_clock.dir/clock/hlc.cpp.o.d"
  "CMakeFiles/colony_clock.dir/clock/version_vector.cpp.o"
  "CMakeFiles/colony_clock.dir/clock/version_vector.cpp.o.d"
  "libcolony_clock.a"
  "libcolony_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colony_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
