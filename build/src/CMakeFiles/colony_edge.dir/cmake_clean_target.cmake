file(REMOVE_RECURSE
  "libcolony_edge.a"
)
