# Empty dependencies file for colony_edge.
# This may be replaced when dependencies are built.
