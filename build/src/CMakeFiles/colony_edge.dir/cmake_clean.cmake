file(REMOVE_RECURSE
  "CMakeFiles/colony_edge.dir/edge/edge_node.cpp.o"
  "CMakeFiles/colony_edge.dir/edge/edge_node.cpp.o.d"
  "libcolony_edge.a"
  "libcolony_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colony_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
