file(REMOVE_RECURSE
  "libcolony_sim.a"
)
