# Empty dependencies file for colony_sim.
# This may be replaced when dependencies are built.
