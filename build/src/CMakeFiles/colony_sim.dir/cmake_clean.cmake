file(REMOVE_RECURSE
  "CMakeFiles/colony_sim.dir/sim/network.cpp.o"
  "CMakeFiles/colony_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/colony_sim.dir/sim/rpc.cpp.o"
  "CMakeFiles/colony_sim.dir/sim/rpc.cpp.o.d"
  "CMakeFiles/colony_sim.dir/sim/scheduler.cpp.o"
  "CMakeFiles/colony_sim.dir/sim/scheduler.cpp.o.d"
  "libcolony_sim.a"
  "libcolony_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colony_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
