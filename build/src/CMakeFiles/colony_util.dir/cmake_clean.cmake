file(REMOVE_RECURSE
  "CMakeFiles/colony_util.dir/util/binary_codec.cpp.o"
  "CMakeFiles/colony_util.dir/util/binary_codec.cpp.o.d"
  "CMakeFiles/colony_util.dir/util/metrics.cpp.o"
  "CMakeFiles/colony_util.dir/util/metrics.cpp.o.d"
  "CMakeFiles/colony_util.dir/util/rng.cpp.o"
  "CMakeFiles/colony_util.dir/util/rng.cpp.o.d"
  "libcolony_util.a"
  "libcolony_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colony_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
