file(REMOVE_RECURSE
  "libcolony_util.a"
)
