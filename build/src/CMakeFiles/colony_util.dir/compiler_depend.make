# Empty compiler generated dependencies file for colony_util.
# This may be replaced when dependencies are built.
