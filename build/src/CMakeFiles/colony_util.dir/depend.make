# Empty dependencies file for colony_util.
# This may be replaced when dependencies are built.
