file(REMOVE_RECURSE
  "CMakeFiles/colony_consensus.dir/consensus/epaxos.cpp.o"
  "CMakeFiles/colony_consensus.dir/consensus/epaxos.cpp.o.d"
  "libcolony_consensus.a"
  "libcolony_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colony_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
