# Empty dependencies file for colony_consensus.
# This may be replaced when dependencies are built.
