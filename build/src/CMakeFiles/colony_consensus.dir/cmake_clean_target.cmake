file(REMOVE_RECURSE
  "libcolony_consensus.a"
)
