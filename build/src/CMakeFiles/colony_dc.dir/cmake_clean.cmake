file(REMOVE_RECURSE
  "CMakeFiles/colony_dc.dir/dc/dc_node.cpp.o"
  "CMakeFiles/colony_dc.dir/dc/dc_node.cpp.o.d"
  "CMakeFiles/colony_dc.dir/dc/shard.cpp.o"
  "CMakeFiles/colony_dc.dir/dc/shard.cpp.o.d"
  "libcolony_dc.a"
  "libcolony_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colony_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
