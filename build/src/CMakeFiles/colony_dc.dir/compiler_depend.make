# Empty compiler generated dependencies file for colony_dc.
# This may be replaced when dependencies are built.
