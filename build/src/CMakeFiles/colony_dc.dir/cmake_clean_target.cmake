file(REMOVE_RECURSE
  "libcolony_dc.a"
)
