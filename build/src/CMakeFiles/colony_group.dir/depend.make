# Empty dependencies file for colony_group.
# This may be replaced when dependencies are built.
