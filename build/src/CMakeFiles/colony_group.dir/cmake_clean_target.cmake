file(REMOVE_RECURSE
  "libcolony_group.a"
)
