file(REMOVE_RECURSE
  "CMakeFiles/colony_group.dir/group/peer_group.cpp.o"
  "CMakeFiles/colony_group.dir/group/peer_group.cpp.o.d"
  "libcolony_group.a"
  "libcolony_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colony_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
