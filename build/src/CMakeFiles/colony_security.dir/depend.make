# Empty dependencies file for colony_security.
# This may be replaced when dependencies are built.
