file(REMOVE_RECURSE
  "CMakeFiles/colony_security.dir/security/acl.cpp.o"
  "CMakeFiles/colony_security.dir/security/acl.cpp.o.d"
  "CMakeFiles/colony_security.dir/security/crypto_sim.cpp.o"
  "CMakeFiles/colony_security.dir/security/crypto_sim.cpp.o.d"
  "CMakeFiles/colony_security.dir/security/sealed.cpp.o"
  "CMakeFiles/colony_security.dir/security/sealed.cpp.o.d"
  "libcolony_security.a"
  "libcolony_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colony_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
