
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/acl.cpp" "src/CMakeFiles/colony_security.dir/security/acl.cpp.o" "gcc" "src/CMakeFiles/colony_security.dir/security/acl.cpp.o.d"
  "/root/repo/src/security/crypto_sim.cpp" "src/CMakeFiles/colony_security.dir/security/crypto_sim.cpp.o" "gcc" "src/CMakeFiles/colony_security.dir/security/crypto_sim.cpp.o.d"
  "/root/repo/src/security/sealed.cpp" "src/CMakeFiles/colony_security.dir/security/sealed.cpp.o" "gcc" "src/CMakeFiles/colony_security.dir/security/sealed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/colony_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_crdt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
