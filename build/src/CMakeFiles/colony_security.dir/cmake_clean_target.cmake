file(REMOVE_RECURSE
  "libcolony_security.a"
)
